// Package repro is the public facade of the hybrid-CNN reproduction: it
// re-exports the types and constructors a downstream user needs to build,
// train and run a hybrid (reliable/non-reliable) convolutional neural
// network with a deterministic shape qualifier and an analytic reliability
// guarantee, as described in
//
//	H. D. Doran, S. Veljanovska — "Hybrid Convolutional Neural Networks
//	with Reliability Guarantee", DSN-W 2024 (arXiv:2405.05146).
//
// The implementation lives in the internal packages:
//
//	internal/tensor      dense float32 tensors
//	internal/mathx       numerics (softmax, quantiles, Welford)
//	internal/fault       SEU models, ALUs (incl. a bit-exact soft-float
//	                     IEEE-754 emulation), injection campaigns, ECC
//	internal/reliable    Algorithms 1–3: overloaded operators, leaky
//	                     bucket, reliable convolution, checkpoint/rollback
//	internal/nn          CNN framework (conv, pool, LRN, dense, dropout)
//	                     with full backpropagation; AlexNet constructors
//	internal/train       SGD, filter-freeze policies, metrics
//	internal/sax         Symbolic Aggregate approXimation
//	internal/shape       Sobel, segmentation, radial series, qualifier
//	internal/gtsrb       synthetic traffic-sign dataset
//	internal/core        the hybrid network and the reliability guarantee
//	internal/onnxlite    platform-agnostic hybrid model description
//	internal/experiments regeneration of every table/figure of the paper
//
// See the runnable examples under examples/ and the CLIs under cmd/.
package repro

import (
	"repro/internal/core"
	"repro/internal/gtsrb"
	"repro/internal/infer"
	"repro/internal/nn"
	"repro/internal/reliable"
	"repro/internal/shape"
)

// Re-exported core types: the hybrid network and its configuration.
type (
	// HybridNetwork is the paper's contribution: a CNN partitioned into a
	// reliably executed part and a conventional part, with a qualifier
	// gating safety-critical classifications.
	HybridNetwork = core.HybridNetwork
	// HybridConfig assembles a HybridNetwork.
	HybridConfig = core.Config
	// HybridResult is a classification with its qualification verdict and
	// reliable-execution statistics.
	HybridResult = core.Result
	// RedundancyMode selects plain / temporal-DMR / spatial-DMR / TMR
	// execution of the reliable part.
	RedundancyMode = core.RedundancyMode
	// Guarantee is the analytic reliability guarantee.
	Guarantee = core.Guarantee
	// GuaranteeParams parameterises the guarantee computation.
	GuaranteeParams = core.GuaranteeParams
	// ShapeClass is the qualifier's deterministic shape taxonomy.
	ShapeClass = shape.Class
	// Network is the underlying sequential CNN.
	Network = nn.Sequential
	// LeakyBucket is the Algorithm 3 error counter.
	LeakyBucket = reliable.LeakyBucket
	// Dataset is a labelled synthetic traffic-sign collection.
	Dataset = gtsrb.Dataset
	// BatchEngine is the worker-pool execution layer for batched,
	// concurrency-safe shared-weight inference.
	BatchEngine = infer.BatchEngine
	// BatchConfig parameterises a BatchEngine.
	BatchConfig = infer.Config
	// ForwardContext carries the per-goroutine mutable state of a
	// forward/backward pass (one per worker).
	ForwardContext = nn.Context
)

// Re-exported enumerations.
const (
	ModePlain       = core.ModePlain
	ModeTemporalDMR = core.ModeTemporalDMR
	ModeSpatialDMR  = core.ModeSpatialDMR
	ModeTMR         = core.ModeTMR

	WiringParallel   = core.WiringParallel
	WiringBifurcated = core.WiringBifurcated

	DecisionQualified         = core.DecisionQualified
	DecisionRejected          = core.DecisionRejected
	DecisionNotSafetyRelevant = core.DecisionNotSafetyRelevant
	DecisionExecutionFailed   = core.DecisionExecutionFailed

	ClassOctagon  = shape.ClassOctagon
	ClassTriangle = shape.ClassTriangle
	ClassSquare   = shape.ClassSquare
	ClassCircle   = shape.ClassCircle
	ClassUnknown  = shape.ClassUnknown

	// StopClass is the safety-critical class index of the standard
	// synthetic dataset.
	StopClass = gtsrb.StopClass
)

// NewHybridNetwork wraps a trained CNN into a hybrid network.
func NewHybridNetwork(cfg HybridConfig, net *Network) (*HybridNetwork, error) {
	return core.NewHybridNetwork(cfg, net)
}

// ComputeGuarantee derives the analytic reliability guarantee for a fault
// environment and protection configuration.
func ComputeGuarantee(params GuaranteeParams) (Guarantee, error) {
	return core.ComputeGuarantee(params)
}

// NewBatchEngine builds a worker pool over net for batched shared-weight
// inference (see internal/infer). Workers 0 defaults to GOMAXPROCS.
func NewBatchEngine(net *Network, cfg BatchConfig) (*BatchEngine, error) {
	return infer.New(net, cfg)
}
