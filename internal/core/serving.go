package core

import (
	"repro/internal/infer"
	"repro/internal/tensor"
)

// BatchClassifier is a persistent pooled hybrid classifier: the worker pool
// — one forward context and one reliable engine per worker — is built once
// and reused across every batch, so a serving layer pays the engine
// construction cost at startup instead of per call. It is safe for
// concurrent use: overlapping ClassifyBatch calls serialize through the
// engine's exclusive entry point, each batch running with the full pool.
type BatchClassifier struct {
	h    *HybridNetwork
	pool *infer.BatchEngine
}

// NewBatchClassifier builds the persistent pool (workers <= 0 defaults to
// GOMAXPROCS) over the hybrid network's shared weights.
func (h *HybridNetwork) NewBatchClassifier(workers int) (*BatchClassifier, error) {
	if workers < 0 {
		workers = 0
	}
	pool, err := infer.New(h.net, infer.Config{Workers: workers, EngineFactory: h.newEngine})
	if err != nil {
		return nil, err
	}
	return &BatchClassifier{h: h, pool: pool}, nil
}

// Workers returns the pool size.
func (c *BatchClassifier) Workers() int { return c.pool.Workers() }

// ClassifyBatch classifies every image across the pool, returning results
// in input order. Each worker's leaky bucket is reset between images and
// the reliable-work counters are reported as per-inference deltas, so every
// result keeps the per-execution semantics of Classify.
func (c *BatchClassifier) ClassifyBatch(imgs []*tensor.Tensor) ([]Result, error) {
	results := make([]Result, len(imgs))
	err := c.pool.RunExclusive(len(imgs), func(w *infer.Worker, i int) error {
		w.Engine.Bucket().Reset()
		before := w.Engine.Stats()
		res, err := c.h.classify(w.Ctx, w.Engine, imgs[i])
		if err != nil {
			return err
		}
		// The engine accumulates across the worker's items; report the
		// per-inference delta, matching Classify's fresh-engine counters.
		res.Stats.Sub(before)
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}
