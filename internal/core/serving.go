package core

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/infer"
	"repro/internal/tensor"
)

// ClassifierConfig parameterises a BatchClassifier.
type ClassifierConfig struct {
	// Workers is the pool size (<= 0 defaults to GOMAXPROCS).
	Workers int
	// SubBatch caps how many images one worker packs into an NCHW
	// micro-batch for the CNN stage (one GEMM per layer per sub-batch).
	// 0 defaults to ⌈batch/workers⌉ — see infer.Config.SubBatch.
	SubBatch int
}

// BatchClassifier is a persistent pooled hybrid classifier: the worker pool
// — one forward context and one reliable engine per worker — is built once
// and reused across every batch, so a serving layer pays the engine
// construction cost at startup instead of per call. It is safe for
// concurrent use: overlapping ClassifyBatch calls serialize through the
// engine's exclusive entry point, each batch running with the full pool.
//
// Execution is sub-batch native: each worker claims contiguous sub-batches
// of the incoming batch, runs the reliable stage and qualifier per image
// (per-execution bucket/counter semantics) and the non-reliable CNN portion
// as ONE NCHW micro-batch — so the serve tier's MaxBatch directly sets how
// much weight-streaming the GEMMs amortise.
type BatchClassifier struct {
	h    *HybridNetwork
	pool *infer.BatchEngine
}

// NewBatchClassifier builds the persistent pool (workers <= 0 defaults to
// GOMAXPROCS) over the hybrid network's shared weights, with the default
// sub-batch policy.
func (h *HybridNetwork) NewBatchClassifier(workers int) (*BatchClassifier, error) {
	return h.NewBatchClassifierConfig(ClassifierConfig{Workers: workers})
}

// NewBatchClassifierConfig is NewBatchClassifier with an explicit sub-batch
// cap.
func (h *HybridNetwork) NewBatchClassifierConfig(cfg ClassifierConfig) (*BatchClassifier, error) {
	if cfg.Workers < 0 {
		cfg.Workers = 0
	}
	if cfg.SubBatch < 0 {
		cfg.SubBatch = 0
	}
	pool, err := infer.New(h.net, infer.Config{
		Workers: cfg.Workers, SubBatch: cfg.SubBatch, EngineFactory: h.newEngine,
	})
	if err != nil {
		return nil, err
	}
	return &BatchClassifier{h: h, pool: pool}, nil
}

// Workers returns the pool size.
func (c *BatchClassifier) Workers() int { return c.pool.Workers() }

// SubBatch returns the configured sub-batch cap (0 = ⌈batch/workers⌉).
func (c *BatchClassifier) SubBatch() int { return c.pool.SubBatch() }

// ClassifyBatch classifies every image across the pool, returning results
// in input order. Workers claim per-worker sub-batches (ragged tails
// rebalance through work stealing); within a sub-batch the reliable stage
// runs per image — each worker's leaky bucket is reset between images and
// the reliable-work counters are reported as per-inference deltas, so every
// result keeps the per-execution semantics of Classify — while the CNN
// stage runs the whole sub-batch through one batched forward pass.
func (c *BatchClassifier) ClassifyBatch(imgs []*tensor.Tensor) ([]Result, error) {
	results, _, err := c.ClassifyBatchTimed(imgs)
	return results, err
}

// ClassifyBatchTimed is ClassifyBatch plus the batch's per-stage wall-time
// breakdown (reliable stage, qualifier, batched CNN), summed across the
// workers that processed the batch's chunks — the observability layer's
// view into where backend time goes. The timing costs a handful of
// monotonic clock reads per chunk, nothing per image beyond stage 1's.
func (c *BatchClassifier) ClassifyBatchTimed(imgs []*tensor.Tensor) ([]Result, StageTimes, error) {
	return c.ClassifyBatchPipelined(imgs, nil)
}

// ClassifyBatchPipelined is ClassifyBatchTimed with a per-image pipeline
// selection: pipes[i] == PipelineCNN runs image i through the batched CNN
// only (no reliable stage, no qualifier — its Result carries a zero
// Qualifier and safety-critical classes decide Rejected), PipelineFull
// keeps the full hybrid semantics. nil pipes means PipelineFull for every
// image. Mixed sub-batches coalesce: within a chunk the fast images run
// the non-reliable prefix batched and then join the full images' feature
// maps in one batched CNN continuation, so full-pipeline results are
// bit-identical whatever the batch mix (the GEMM kernels are batch-width
// independent).
func (c *BatchClassifier) ClassifyBatchPipelined(imgs []*tensor.Tensor, pipes []Pipeline) ([]Result, StageTimes, error) {
	if pipes != nil && len(pipes) != len(imgs) {
		return nil, StageTimes{}, fmt.Errorf("core: %d pipelines for %d images", len(pipes), len(imgs))
	}
	results := make([]Result, len(imgs))
	// Chunks complete on concurrent pool workers; fold their per-chunk
	// stage times atomically.
	var reliableNS, qualifierNS, cnnNS atomic.Int64
	err := c.pool.RunSubExclusive(len(imgs), func(w *infer.Worker, lo, hi int) error {
		var st StageTimes
		var chunkPipes []Pipeline
		if pipes != nil {
			chunkPipes = pipes[lo:hi]
		}
		err := c.h.classifyChunkPipelined(w.Ctx, w.Engine, imgs[lo:hi], chunkPipes, results[lo:hi], &st)
		reliableNS.Add(int64(st.Reliable))
		qualifierNS.Add(int64(st.Qualifier))
		cnnNS.Add(int64(st.CNN))
		return err
	})
	times := StageTimes{
		Reliable:  time.Duration(reliableNS.Load()),
		Qualifier: time.Duration(qualifierNS.Load()),
		CNN:       time.Duration(cnnNS.Load()),
	}
	if err != nil {
		return nil, times, err
	}
	return results, times, nil
}
