package core

import (
	"fmt"
	"math"
	"strings"
)

// GuaranteeParams characterises the fault environment and the protection
// configuration for the analytic reliability guarantee.
type GuaranteeParams struct {
	// PerOpFaultProb (p) is the probability that a single execution of one
	// arithmetic operation returns a corrupted result (the SEU rate per
	// operation; independent across executions).
	PerOpFaultProb float64
	// CollisionProb (q) is the probability that two independently
	// corrupted executions of the same operation return the SAME wrong
	// value, in which case comparison cannot detect the pair. For a
	// uniform single-bit flip q = 1/32; for whole-word randomisation
	// q ≈ 2⁻³².
	CollisionProb float64
	// Mode is the redundancy mode of the DCNN operators.
	Mode RedundancyMode
	// BucketFactor and BucketCeiling are the leaky-bucket parameters.
	BucketFactor, BucketCeiling int
	// OpsPerInference (N) is the number of overloaded operations one DCNN
	// inference executes (use reliable.MACCount × 2 for a convolution).
	OpsPerInference uint64
}

// Validate checks the parameters.
func (g GuaranteeParams) Validate() error {
	if g.PerOpFaultProb < 0 || g.PerOpFaultProb > 1 {
		return fmt.Errorf("core: per-op fault probability %v out of [0,1]", g.PerOpFaultProb)
	}
	if g.CollisionProb < 0 || g.CollisionProb > 1 {
		return fmt.Errorf("core: collision probability %v out of [0,1]", g.CollisionProb)
	}
	if _, err := g.Mode.PEs(); err != nil {
		return err
	}
	if g.BucketFactor < 1 || g.BucketCeiling < 1 {
		return fmt.Errorf("core: bucket (factor=%d, ceiling=%d) must be >= 1",
			g.BucketFactor, g.BucketCeiling)
	}
	if g.OpsPerInference < 1 {
		return fmt.Errorf("core: ops per inference must be >= 1")
	}
	return nil
}

// Guarantee is the analytic reliability guarantee: exact per-attempt outcome
// probabilities and first-order per-operation / per-inference bounds.
type Guarantee struct {
	Params GuaranteeParams

	// Per single attempt of one operation:
	PCorrectAttempt  float64 // returns the correct value, qualifier true
	PSDCAttempt      float64 // returns a wrong value, qualifier true (undetected)
	PDetectedAttempt float64 // qualifier false (triggers retry/rollback)

	// Per operation, under the retry/bucket protocol (maxRetries =
	// consecutive failures the bucket allows before tripping):
	MaxConsecutiveFailures int
	PUndetectedPerOp       float64 // SDC on any attempt before success/abort
	PAbortPerOp            float64 // bucket trips (detected unrecoverable)
	ExpectedAttemptsPerOp  float64

	// Per inference of N operations:
	PUndetectedPerInference float64 // ≥1 silent corruption
	PAbortPerInference      float64 // ≥1 bucket trip (availability loss)
	ExpectedExtraWork       float64 // expected re-executed attempts
}

// ComputeGuarantee derives the guarantee from the parameters.
//
// Attempt-level derivation (p = fault prob per execution, q = collision):
//
//	Plain:        correct (1−p);            SDC p;                 detected 0
//	DMR (2 exec): correct (1−p)²;           SDC p²·q;              detected 2p(1−p) + p²(1−q)
//	TMR (3 exec): correct (1−p)³+3p(1−p)²;  SDC 3p²(1−p)q + p²… ;  detected = remainder
//
// For TMR, a single corrupted execution is out-voted (counted correct); two
// corruptions agreeing with each other (probability q) out-vote the correct
// one (SDC); three-way disagreement or two disagreeing corruptions yield no
// majority among wrong values only when the two corrupted executions differ
// AND differ from the correct execution — the correct value then still wins
// only if the third agrees, so two differing corruptions leave all three
// distinct: detected. Three corruptions: majority only if at least two agree
// (probability ≈ 3q−2q², wrong value): SDC; else detected.
func ComputeGuarantee(params GuaranteeParams) (Guarantee, error) {
	var g Guarantee
	if err := params.Validate(); err != nil {
		return g, err
	}
	g.Params = params
	p, q := params.PerOpFaultProb, params.CollisionProb

	switch params.Mode {
	case ModePlain:
		g.PCorrectAttempt = 1 - p
		g.PSDCAttempt = p
		g.PDetectedAttempt = 0
	case ModeTemporalDMR, ModeSpatialDMR:
		g.PCorrectAttempt = (1 - p) * (1 - p)
		g.PSDCAttempt = p * p * q
		g.PDetectedAttempt = 2*p*(1-p) + p*p*(1-q)
	case ModeTMR:
		pc := (1-p)*(1-p)*(1-p) + 3*p*(1-p)*(1-p) // 0 or 1 corruption
		twoAgree := 3 * p * p * (1 - p) * q       // 2 corruptions, identical
		// 3 corruptions with ≥2 identical: inclusion–exclusion over the
		// three pairs with the q²-independence approximation, clamped —
		// the approximation exceeds 1 for q near 0.75.
		agree3 := 3*q - 2*q*q
		if agree3 > 1 {
			agree3 = 1
		}
		threeAgree := p * p * p * agree3
		g.PCorrectAttempt = pc
		g.PSDCAttempt = twoAgree + threeAgree
		g.PDetectedAttempt = 1 - pc - g.PSDCAttempt
	}

	// The bucket trips after ceil(ceiling/factor) consecutive failures
	// starting from an empty bucket.
	g.MaxConsecutiveFailures = (params.BucketCeiling + params.BucketFactor - 1) / params.BucketFactor
	k := g.MaxConsecutiveFailures

	d := g.PDetectedAttempt
	s := g.PSDCAttempt
	// Per operation: attempts repeat while detected, up to k consecutive
	// failures. SDC escapes on any attempt; abort after k detections.
	// P[SDC per op] = Σ_{i=0}^{k-1} d^i · s ; P[abort] = d^k.
	var sdc float64
	di := 1.0
	for i := 0; i < k; i++ {
		sdc += di * s
		di *= d
	}
	g.PUndetectedPerOp = sdc
	g.PAbortPerOp = di // d^k
	// Expected attempts: 1 + d + d² + … + d^{k-1} truncated geometric.
	ea := 0.0
	di = 1.0
	for i := 0; i < k; i++ {
		ea += di
		di *= d
	}
	g.ExpectedAttemptsPerOp = ea

	n := float64(params.OpsPerInference)
	g.PUndetectedPerInference = -math.Expm1(n * math.Log1p(-clampProb(g.PUndetectedPerOp)))
	g.PAbortPerInference = -math.Expm1(n * math.Log1p(-clampProb(g.PAbortPerOp)))
	g.ExpectedExtraWork = n * (g.ExpectedAttemptsPerOp - 1)
	return g, nil
}

func clampProb(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1-1e-15 {
		return 1 - 1e-15
	}
	return x
}

// String renders the guarantee as a compact report.
func (g Guarantee) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "reliability guarantee (%s, p=%.2e, q=%.2e, bucket %d/%d, N=%d)\n",
		g.Params.Mode, g.Params.PerOpFaultProb, g.Params.CollisionProb,
		g.Params.BucketFactor, g.Params.BucketCeiling, g.Params.OpsPerInference)
	fmt.Fprintf(&b, "  per attempt:   correct %.6g  sdc %.3e  detected %.3e\n",
		g.PCorrectAttempt, g.PSDCAttempt, g.PDetectedAttempt)
	fmt.Fprintf(&b, "  per op:        sdc %.3e  abort %.3e  E[attempts] %.6g (max %d consecutive failures)\n",
		g.PUndetectedPerOp, g.PAbortPerOp, g.ExpectedAttemptsPerOp, g.MaxConsecutiveFailures)
	fmt.Fprintf(&b, "  per inference: P[silent corruption] %.3e  P[abort] %.3e  E[extra attempts] %.4g\n",
		g.PUndetectedPerInference, g.PAbortPerInference, g.ExpectedExtraWork)
	return b.String()
}
