package core

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/gtsrb"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// TestClassifyBatchMatchesSerial: pooled hybrid classification must agree
// with per-call Classify — classes, decisions, qualifier verdicts AND the
// per-inference reliable-work counters — for both wirings and any worker
// count. Run with -race this exercises concurrent shared-weight hybrid
// inference end to end.
func TestClassifyBatchMatchesSerial(t *testing.T) {
	net := trainedMicroNet(t)
	for _, wiring := range []Wiring{WiringParallel, WiringBifurcated} {
		cfg := Config{
			Wiring: wiring, Mode: ModeTemporalDMR,
			SafetyClasses: defaultSafety(),
		}
		imgSize := 32
		if wiring == WiringParallel {
			cfg.DownsampleFactor = 3
			imgSize = 96
		} else {
			conv1, err := nn.FirstConv(net)
			if err != nil {
				t.Fatal(err)
			}
			pair, err := InstallSobelPair(conv1, 0, 1)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Pair = pair
		}
		h, err := NewHybridNetwork(cfg, net)
		if err != nil {
			t.Fatal(err)
		}

		rng := rand.New(rand.NewSource(91))
		gcfg, err := gtsrb.Config{Size: imgSize}.Normalize()
		if err != nil {
			t.Fatal(err)
		}
		imgs := make([]*tensor.Tensor, 9)
		for i := range imgs {
			spec := gtsrb.StandardClasses()[i%len(gtsrb.StandardClasses())]
			img, err := gtsrb.Render(gtsrb.RandomParams(gcfg, spec, rng), rng)
			if err != nil {
				t.Fatal(err)
			}
			imgs[i] = img
		}

		want := make([]Result, len(imgs))
		for i, img := range imgs {
			res, err := h.Classify(img)
			if err != nil {
				t.Fatal(err)
			}
			want[i] = res
		}

		for _, workers := range []int{1, 4} {
			got, err := h.ClassifyBatch(imgs, workers)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("wiring=%v workers=%d: %d results", wiring, workers, len(got))
			}
			for i := range got {
				if got[i].Class != want[i].Class || got[i].Decision != want[i].Decision ||
					got[i].Qualifier.Class != want[i].Qualifier.Class {
					t.Errorf("wiring=%v workers=%d img %d: (%d,%v,%v) != serial (%d,%v,%v)",
						wiring, workers, i,
						got[i].Class, got[i].Decision, got[i].Qualifier.Class,
						want[i].Class, want[i].Decision, want[i].Qualifier.Class)
				}
				if got[i].Stats != want[i].Stats {
					t.Errorf("wiring=%v workers=%d img %d: stats %+v != serial %+v",
						wiring, workers, i, got[i].Stats, want[i].Stats)
				}
			}
		}
	}
}

// TestBatchClassifierReuse: one persistent pool serves many batches —
// including overlapping batches from concurrent goroutines, which serialize
// through the engine's exclusive entry point — and every result matches the
// fresh-engine Classify path. Run with -race this is the serving-layer gate.
func TestBatchClassifierReuse(t *testing.T) {
	net := trainedMicroNet(t)
	conv1, err := nn.FirstConv(net)
	if err != nil {
		t.Fatal(err)
	}
	pair, err := InstallSobelPair(conv1, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewHybridNetwork(Config{
		Wiring: WiringBifurcated, Mode: ModeTemporalDMR,
		Pair: pair, SafetyClasses: defaultSafety(),
	}, net)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	gcfg, err := gtsrb.Config{Size: 32}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	imgs := make([]*tensor.Tensor, 6)
	want := make([]Result, len(imgs))
	for i := range imgs {
		spec := gtsrb.StandardClasses()[i%len(gtsrb.StandardClasses())]
		img, err := gtsrb.Render(gtsrb.RandomParams(gcfg, spec, rng), rng)
		if err != nil {
			t.Fatal(err)
		}
		imgs[i] = img
		res, err := h.Classify(img)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res
	}

	c, err := h.NewBatchClassifier(2)
	if err != nil {
		t.Fatal(err)
	}
	if c.Workers() != 2 {
		t.Fatalf("workers = %d", c.Workers())
	}
	const rounds = 4
	var wg sync.WaitGroup
	wg.Add(rounds)
	errs := make(chan error, rounds)
	for r := 0; r < rounds; r++ {
		go func() {
			defer wg.Done()
			got, err := c.ClassifyBatch(imgs)
			if err != nil {
				errs <- err
				return
			}
			for i := range got {
				if got[i].Class != want[i].Class || got[i].Decision != want[i].Decision ||
					got[i].Stats != want[i].Stats {
					errs <- fmt.Errorf("img %d: (%d,%v,%+v) != serial (%d,%v,%+v)",
						i, got[i].Class, got[i].Decision, got[i].Stats,
						want[i].Class, want[i].Decision, want[i].Stats)
					return
				}
			}
			errs <- nil
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestClassifyBatchSubBatchEquivalence: the batched CNN stage — one NCHW
// micro-batch per worker sub-batch — must reproduce per-call Classify
// bit-for-bit in classes, probabilities, decisions, qualifier verdicts and
// per-inference reliable counters, for every sub-batch size (1 degenerates
// to per-sample; sizes ragged against the batch exercise the tail chunks).
// Run with -race this is the golden-equivalence gate of the serving path.
func TestClassifyBatchSubBatchEquivalence(t *testing.T) {
	net := trainedMicroNet(t)
	for _, wiring := range []Wiring{WiringParallel, WiringBifurcated} {
		cfg := Config{
			Wiring: wiring, Mode: ModeTemporalDMR,
			SafetyClasses: defaultSafety(),
		}
		imgSize := 32
		if wiring == WiringParallel {
			cfg.DownsampleFactor = 3
			imgSize = 96
		} else {
			conv1, err := nn.FirstConv(net)
			if err != nil {
				t.Fatal(err)
			}
			pair, err := InstallSobelPair(conv1, 0, 1)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Pair = pair
		}
		h, err := NewHybridNetwork(cfg, net)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(93))
		gcfg, err := gtsrb.Config{Size: imgSize}.Normalize()
		if err != nil {
			t.Fatal(err)
		}
		imgs := make([]*tensor.Tensor, 11)
		want := make([]Result, len(imgs))
		for i := range imgs {
			spec := gtsrb.StandardClasses()[i%len(gtsrb.StandardClasses())]
			img, err := gtsrb.Render(gtsrb.RandomParams(gcfg, spec, rng), rng)
			if err != nil {
				t.Fatal(err)
			}
			imgs[i] = img
			res, err := h.Classify(img)
			if err != nil {
				t.Fatal(err)
			}
			want[i] = res
		}
		for _, ccfg := range []ClassifierConfig{
			{Workers: 1},              // whole batch in one sub-batch
			{Workers: 3},              // default ceil(11/3)=4 → ragged tail of 3
			{Workers: 2, SubBatch: 1}, // per-sample degenerate
			{Workers: 2, SubBatch: 4}, // explicit cap, ragged
		} {
			c, err := h.NewBatchClassifierConfig(ccfg)
			if err != nil {
				t.Fatal(err)
			}
			if ccfg.SubBatch != 0 && c.SubBatch() != ccfg.SubBatch {
				t.Fatalf("sub-batch = %d, want %d", c.SubBatch(), ccfg.SubBatch)
			}
			got, err := c.ClassifyBatch(imgs)
			if err != nil {
				t.Fatal(err)
			}
			for i := range got {
				if got[i].Class != want[i].Class || got[i].Decision != want[i].Decision ||
					got[i].Qualifier.Class != want[i].Qualifier.Class ||
					got[i].Confidence != want[i].Confidence {
					t.Errorf("wiring=%v cfg=%+v img %d: (%d,%v,%v,%v) != serial (%d,%v,%v,%v)",
						wiring, ccfg, i,
						got[i].Class, got[i].Decision, got[i].Qualifier.Class, got[i].Confidence,
						want[i].Class, want[i].Decision, want[i].Qualifier.Class, want[i].Confidence)
				}
				if got[i].Stats != want[i].Stats {
					t.Errorf("wiring=%v cfg=%+v img %d: stats %+v != serial %+v",
						wiring, ccfg, i, got[i].Stats, want[i].Stats)
				}
				for cls := range got[i].Probs {
					if got[i].Probs[cls] != want[i].Probs[cls] {
						t.Errorf("wiring=%v cfg=%+v img %d: probs[%d] %v != %v",
							wiring, ccfg, i, cls, got[i].Probs[cls], want[i].Probs[cls])
					}
				}
			}
		}
	}
}

func TestClassifyBatchEmpty(t *testing.T) {
	net := trainedMicroNet(t)
	h, err := NewHybridNetwork(Config{
		Wiring: WiringParallel, Mode: ModeTemporalDMR,
		SafetyClasses: defaultSafety(), DownsampleFactor: 3,
	}, net)
	if err != nil {
		t.Fatal(err)
	}
	res, err := h.ClassifyBatch(nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 {
		t.Errorf("empty batch returned %d results", len(res))
	}
}
