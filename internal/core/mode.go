// Package core implements the paper's primary contribution: the hybrid
// (convolutional) neural network that partitions execution into a reliably
// executed dependable part (the DCNN) and a conventional, non-reliable CNN,
// qualifies safety-critical classifications with a deterministic SAX-based
// shape qualifier, and carries an analytic reliability guarantee derived
// from the redundancy mode and the leaky-bucket parameters.
package core

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/reliable"
)

// RedundancyMode selects how the DCNN's overloaded operators execute.
type RedundancyMode int

const (
	// ModePlain is Algorithm 1: single execution, qualifier constant true.
	ModePlain RedundancyMode = iota + 1
	// ModeTemporalDMR is Algorithm 2: execute twice on one PE, compare.
	ModeTemporalDMR
	// ModeSpatialDMR executes on two PEs and compares.
	ModeSpatialDMR
	// ModeTMR executes on three PEs and votes.
	ModeTMR
)

// String implements fmt.Stringer.
func (m RedundancyMode) String() string {
	switch m {
	case ModePlain:
		return "plain"
	case ModeTemporalDMR:
		return "temporal-dmr"
	case ModeSpatialDMR:
		return "spatial-dmr"
	case ModeTMR:
		return "tmr"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// PEs returns how many processing elements the mode occupies.
func (m RedundancyMode) PEs() (int, error) {
	switch m {
	case ModePlain, ModeTemporalDMR:
		return 1, nil
	case ModeSpatialDMR:
		return 2, nil
	case ModeTMR:
		return 3, nil
	default:
		return 0, fmt.Errorf("core: unknown redundancy mode %d", int(m))
	}
}

// ExecutionsPerOp returns how many times each operation executes (the
// computational-expense multiplier Table 1 measures).
func (m RedundancyMode) ExecutionsPerOp() (int, error) {
	switch m {
	case ModePlain:
		return 1, nil
	case ModeTemporalDMR, ModeSpatialDMR:
		return 2, nil
	case ModeTMR:
		return 3, nil
	default:
		return 0, fmt.Errorf("core: unknown redundancy mode %d", int(m))
	}
}

// ALUFactory produces the processing elements the DCNN executes on. The
// default (nil) factory yields ideal fault-free ALUs; fault campaigns supply
// factories producing injected ALUs.
type ALUFactory func() fault.ALU

func defaultALUFactory() fault.ALU { return fault.Ideal{} }

// NewOps builds the overloaded operators for the mode, drawing the required
// number of PEs from the factory.
func (m RedundancyMode) NewOps(factory ALUFactory) (reliable.Ops, error) {
	if factory == nil {
		factory = defaultALUFactory
	}
	switch m {
	case ModePlain:
		return reliable.NewPlain(factory())
	case ModeTemporalDMR:
		return reliable.NewTemporalDMR(factory())
	case ModeSpatialDMR:
		return reliable.NewSpatialDMR(factory(), factory())
	case ModeTMR:
		return reliable.NewTMR(factory(), factory(), factory())
	default:
		return nil, fmt.Errorf("core: unknown redundancy mode %d", int(m))
	}
}
