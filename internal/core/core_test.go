package core

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/fault"
	"repro/internal/gtsrb"
	"repro/internal/nn"
	"repro/internal/shape"
	"repro/internal/tensor"
	"repro/internal/train"
)

func TestModeAccessors(t *testing.T) {
	cases := []struct {
		mode RedundancyMode
		pes  int
		exec int
	}{
		{ModePlain, 1, 1},
		{ModeTemporalDMR, 1, 2},
		{ModeSpatialDMR, 2, 2},
		{ModeTMR, 3, 3},
	}
	for _, c := range cases {
		pes, err := c.mode.PEs()
		if err != nil || pes != c.pes {
			t.Errorf("%v PEs = %d, %v; want %d", c.mode, pes, err, c.pes)
		}
		ex, err := c.mode.ExecutionsPerOp()
		if err != nil || ex != c.exec {
			t.Errorf("%v execs = %d, %v; want %d", c.mode, ex, err, c.exec)
		}
		if c.mode.String() == "" {
			t.Error("empty mode string")
		}
		ops, err := c.mode.NewOps(nil)
		if err != nil || ops == nil {
			t.Errorf("%v NewOps: %v", c.mode, err)
		}
		v, ok := ops.Mul(3, 4)
		if v != 12 || !ok {
			t.Errorf("%v ideal Mul = %v,%v", c.mode, v, ok)
		}
	}
	bad := RedundancyMode(0)
	if _, err := bad.PEs(); err == nil {
		t.Error("unknown mode PEs should fail")
	}
	if _, err := bad.ExecutionsPerOp(); err == nil {
		t.Error("unknown mode execs should fail")
	}
	if _, err := bad.NewOps(nil); err == nil {
		t.Error("unknown mode NewOps should fail")
	}
	if bad.String() == "" || Wiring(9).String() == "" || Decision(9).String() == "" {
		t.Error("fallback strings empty")
	}
}

func TestPaperSobelFilter(t *testing.T) {
	f, err := PaperSobelFilter(11)
	if err != nil {
		t.Fatal(err)
	}
	if f.Dim(0) != 3 || f.Dim(1) != 11 || f.Dim(2) != 11 {
		t.Fatalf("shape %v", f.Shape())
	}
	// Channel 0 and 2 are Sobel-x (identical); channel 1 is Sobel-y.
	c0, _ := f.Channel(0)
	c1, _ := f.Channel(1)
	c2, _ := f.Channel(2)
	if !c0.Equal(c2) {
		t.Error("channels 0 and 2 should both be Sobel-x")
	}
	if c0.Equal(c1) {
		t.Error("channel 1 should be Sobel-y, not Sobel-x")
	}
	if _, err := PaperSobelFilter(4); err == nil {
		t.Error("even kernel should fail")
	}
}

func TestMakeSobelFilterValidation(t *testing.T) {
	if _, err := MakeSobelFilter(); err == nil {
		t.Error("no kernels should fail")
	}
	a := tensor.MustNew(3, 3)
	b := tensor.MustNew(5, 5)
	if _, err := MakeSobelFilter(a, b); err == nil {
		t.Error("mismatched kernel sizes should fail")
	}
	if _, err := MakeSobelFilter(tensor.MustNew(3)); err == nil {
		t.Error("rank-1 kernel should fail")
	}
}

func TestUniformSobel(t *testing.T) {
	fx, err := UniformSobelX(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Each channel is Sobel-x / 3.
	c0, _ := fx.Channel(0)
	c1, _ := fx.Channel(1)
	if !c0.Equal(c1) {
		t.Error("uniform channels should be identical")
	}
	sx3, _ := shape.SobelX(3)
	scaled := sx3.Clone()
	scaled.Scale(1.0 / 3)
	if !c0.AllClose(scaled, 1e-6) {
		t.Error("channel should be Sobel-x / channels")
	}
	if _, err := UniformSobelX(3, 0); err == nil {
		t.Error("zero channels should fail")
	}
	fy, err := UniformSobelY(3, 2)
	if err != nil || fy.Dim(0) != 2 {
		t.Errorf("UniformSobelY: %v %v", fy, err)
	}
}

func TestReplaceRestoreFilter(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	conv, err := nn.NewConv2D("c", 3, 4, 5, 1, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	conv.Bias().Data()[1] = 7
	orig, _ := conv.Weight().Filter(1)
	origCopy := orig.Clone()

	f, err := PaperSobelFilter(5)
	if err != nil {
		t.Fatal(err)
	}
	prev, prevBias, err := ReplaceFilter(conv, 1, f)
	if err != nil {
		t.Fatal(err)
	}
	if !prev.Equal(origCopy) || prevBias != 7 {
		t.Error("ReplaceFilter should return the previous state")
	}
	now, _ := conv.Weight().Filter(1)
	if !now.Equal(f) {
		t.Error("filter not replaced")
	}
	if conv.Bias().Data()[1] != 0 {
		t.Error("bias should be zeroed")
	}
	if err := RestoreFilter(conv, 1, prev, prevBias); err != nil {
		t.Fatal(err)
	}
	restored, _ := conv.Weight().Filter(1)
	if !restored.Equal(origCopy) || conv.Bias().Data()[1] != 7 {
		t.Error("RestoreFilter did not restore")
	}

	if _, _, err := ReplaceFilter(nil, 0, f); err == nil {
		t.Error("nil conv should fail")
	}
	if _, _, err := ReplaceFilter(conv, 9, f); err == nil {
		t.Error("out-of-range filter should fail")
	}
	wrong := tensor.MustNew(3, 3, 3)
	if _, _, err := ReplaceFilter(conv, 0, wrong); err == nil {
		t.Error("shape mismatch should fail")
	}
	if err := RestoreFilter(nil, 0, prev, 0); err == nil {
		t.Error("nil conv restore should fail")
	}
	if err := RestoreFilter(conv, 9, prev, 0); err == nil {
		t.Error("out-of-range restore should fail")
	}
}

func TestInstallSobelPair(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	conv, _ := nn.NewConv2D("c", 3, 4, 5, 1, 0, rng)
	pair, err := InstallSobelPair(conv, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if pair.XIdx != 0 || pair.YIdx != 1 {
		t.Errorf("pair = %+v", pair)
	}
	fx, _ := conv.Weight().Filter(0)
	want, _ := UniformSobelX(5, 3)
	if !fx.Equal(want) {
		t.Error("filter 0 should be uniform Sobel-x")
	}
	if _, err := InstallSobelPair(conv, 2, 2); err == nil {
		t.Error("identical indices should fail")
	}
	if _, err := InstallSobelPair(nil, 0, 1); err == nil {
		t.Error("nil conv should fail")
	}
}

func TestEdgeMagnitudeFromChannels(t *testing.T) {
	f := tensor.MustNew(2, 2, 2)
	f.Set3(3, 0, 0, 0)
	f.Set3(4, 1, 0, 0)
	mag, err := EdgeMagnitudeFromChannels(f, SobelPair{XIdx: 0, YIdx: 1})
	if err != nil {
		t.Fatal(err)
	}
	if mag.At(0, 0) != 5 {
		t.Errorf("magnitude = %v, want 5", mag.At(0, 0))
	}
	if _, err := EdgeMagnitudeFromChannels(tensor.MustNew(4), SobelPair{}); err == nil {
		t.Error("rank-1 features should fail")
	}
	if _, err := EdgeMagnitudeFromChannels(f, SobelPair{XIdx: 0, YIdx: 5}); err == nil {
		t.Error("out-of-range channel should fail")
	}
}

func TestBoxDownsample(t *testing.T) {
	img := tensor.MustFromSlice([]float32{
		1, 2, 3, 4,
		5, 6, 7, 8,
		9, 10, 11, 12,
		13, 14, 15, 16,
	}, 1, 4, 4)
	out, err := BoxDownsample(img, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := []float32{3.5, 5.5, 11.5, 13.5}
	for i, w := range want {
		if out.Data()[i] != w {
			t.Errorf("down[%d] = %v, want %v", i, out.Data()[i], w)
		}
	}
	id, err := BoxDownsample(img, 1)
	if err != nil || !id.Equal(img) {
		t.Error("factor 1 should be a copy")
	}
	id.Set3(99, 0, 0, 0)
	if img.At3(0, 0, 0) == 99 {
		t.Error("factor 1 must copy, not alias")
	}
	if _, err := BoxDownsample(img, 3); err == nil {
		t.Error("non-divisible factor should fail")
	}
	if _, err := BoxDownsample(img, 0); err == nil {
		t.Error("factor 0 should fail")
	}
	if _, err := BoxDownsample(tensor.MustNew(4, 4), 2); err == nil {
		t.Error("rank-2 should fail")
	}
}

var (
	trainedNetOnce sync.Once
	trainedNet     *nn.Sequential
	trainedNetErr  error
)

// trainedMicroNet trains a small classifier once and shares it across the
// hybrid tests (they only read it).
func trainedMicroNet(t *testing.T) *nn.Sequential {
	t.Helper()
	trainedNetOnce.Do(func() { trainedNet, trainedNetErr = buildTrainedMicroNet() })
	if trainedNetErr != nil {
		t.Fatal(trainedNetErr)
	}
	return trainedNet
}

func buildTrainedMicroNet() (*nn.Sequential, error) {
	rng := rand.New(rand.NewSource(33))
	net, err := nn.NewMicroAlexNet(nn.MicroConfig{
		InputSize: 32, Conv1Filters: 8, Conv1Kernel: 5,
		Conv2Filters: 12, Hidden: 32, Classes: 6, UseLRN: false,
	}, rng)
	if err != nil {
		return nil, err
	}
	ds, err := gtsrb.Generate(gtsrb.Config{Size: 32, PerClass: 15, Clutter: 1}, rand.New(rand.NewSource(34)))
	if err != nil {
		return nil, err
	}
	opt, err := train.NewSGD(0.03, 0.9, 1e-4)
	if err != nil {
		return nil, err
	}
	tr := &train.Trainer{Net: net, Opt: opt, BatchSize: 8, Epochs: 8, Rng: rng}
	if _, err := tr.Fit(ds); err != nil {
		return nil, err
	}
	return net, nil
}

func defaultSafety() map[int]shape.Class {
	return map[int]shape.Class{gtsrb.StopClass: shape.ClassOctagon}
}

func TestHybridConfigValidation(t *testing.T) {
	net := trainedMicroNet(t)
	good := Config{
		Wiring: WiringParallel, Mode: ModeTemporalDMR,
		SafetyClasses: defaultSafety(), DownsampleFactor: 3,
	}
	if _, err := NewHybridNetwork(good, nil); err == nil {
		t.Error("nil net should fail")
	}
	bad := good
	bad.Wiring = Wiring(0)
	if _, err := NewHybridNetwork(bad, net); err == nil {
		t.Error("unknown wiring should fail")
	}
	bad = good
	bad.Mode = RedundancyMode(0)
	if _, err := NewHybridNetwork(bad, net); err == nil {
		t.Error("unknown mode should fail")
	}
	bad = good
	bad.SafetyClasses = nil
	if _, err := NewHybridNetwork(bad, net); err == nil {
		t.Error("no safety classes should fail")
	}
	bad = good
	bad.Wiring = WiringBifurcated
	bad.Pair = SobelPair{XIdx: 0, YIdx: 0}
	if _, err := NewHybridNetwork(bad, net); err == nil {
		t.Error("degenerate sobel pair should fail")
	}
	bad.Pair = SobelPair{XIdx: 0, YIdx: 99}
	if _, err := NewHybridNetwork(bad, net); err == nil {
		t.Error("out-of-range sobel pair should fail")
	}
	bad = good
	qc := shape.DefaultQualifierConfig()
	qc.SmoothWindow = 2
	bad.Qualifier = &qc
	if _, err := NewHybridNetwork(bad, net); err == nil {
		t.Error("invalid qualifier config should fail")
	}
}

func TestHybridParallelStopSignQualified(t *testing.T) {
	net := trainedMicroNet(t)
	h, err := NewHybridNetwork(Config{
		Wiring: WiringParallel, Mode: ModeTemporalDMR,
		SafetyClasses: defaultSafety(), DownsampleFactor: 3,
	}, net)
	if err != nil {
		t.Fatal(err)
	}
	if h.Net() != net || h.Qualifier() == nil {
		t.Error("accessors broken")
	}

	// A clean, well-centred stop sign at 96×96 (CNN sees 32×32).
	rng := rand.New(rand.NewSource(35))
	spec := gtsrb.StandardClasses()[gtsrb.StopClass]
	img, err := gtsrb.Render(gtsrb.SignParams{
		Shape: spec.Shape, Fill: spec.Fill, Size: 96,
		CenterX: 48, CenterY: 48, Radius: 36, Rotation: 0.1,
		Background: 0.1, NoiseSigma: 0.01, Brightness: 1,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	res, err := h.Classify(img)
	if err != nil {
		t.Fatal(err)
	}
	if res.Qualifier.Class != shape.ClassOctagon {
		t.Errorf("qualifier = %v (peaks=%d round=%.3f), want octagon",
			res.Qualifier.Class, res.Qualifier.Peaks, res.Qualifier.Round)
	}
	if res.Class == gtsrb.StopClass {
		if res.Decision != DecisionQualified {
			t.Errorf("decision = %v, want qualified", res.Decision)
		}
	} else {
		t.Logf("CNN misclassified stop as %d; decision = %v", res.Class, res.Decision)
		if res.Decision == DecisionQualified {
			t.Error("non-stop classification must not be stop-qualified")
		}
	}
	if res.Stats.Ops == 0 {
		t.Error("reliable stage executed no operations")
	}
	if res.Bucket.Tripped {
		t.Error("bucket tripped on fault-free hardware")
	}
}

func TestHybridParallelNonSafetyClassSkipsQualification(t *testing.T) {
	net := trainedMicroNet(t)
	h, err := NewHybridNetwork(Config{
		Wiring: WiringParallel, Mode: ModePlain,
		SafetyClasses: defaultSafety(), DownsampleFactor: 3,
	}, net)
	if err != nil {
		t.Fatal(err)
	}
	// A parking sign (blue square): whatever the CNN says, as long as it is
	// not the stop class the decision must be not-safety-relevant.
	rng := rand.New(rand.NewSource(36))
	spec := gtsrb.StandardClasses()[3] // parking
	img, err := gtsrb.Render(gtsrb.SignParams{
		Shape: spec.Shape, Fill: spec.Fill, Size: 96,
		CenterX: 48, CenterY: 48, Radius: 34,
		Background: 0.1, NoiseSigma: 0.01, Brightness: 1,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	res, err := h.Classify(img)
	if err != nil {
		t.Fatal(err)
	}
	if res.Class != gtsrb.StopClass && res.Decision != DecisionNotSafetyRelevant {
		t.Errorf("decision = %v, want not-safety-relevant for class %d", res.Decision, res.Class)
	}
	if res.Class == gtsrb.StopClass && res.Decision != DecisionRejected {
		t.Errorf("square misclassified as stop must be rejected, got %v", res.Decision)
	}
}

func TestHybridRejectsMismatchedShape(t *testing.T) {
	net := trainedMicroNet(t)
	// Demand a triangle for the stop class: a real octagonal stop sign must
	// now be rejected whenever the CNN claims "stop".
	h, err := NewHybridNetwork(Config{
		Wiring: WiringParallel, Mode: ModePlain,
		SafetyClasses:    map[int]shape.Class{gtsrb.StopClass: shape.ClassTriangle},
		DownsampleFactor: 3,
	}, net)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(37))
	img, err := gtsrb.AngledStopSign(96, rng)
	if err != nil {
		t.Fatal(err)
	}
	res, err := h.Classify(img)
	if err != nil {
		t.Fatal(err)
	}
	if res.Class == gtsrb.StopClass && res.Decision != DecisionRejected {
		t.Errorf("decision = %v, want rejected (qualifier saw %v)", res.Decision, res.Qualifier.Class)
	}
}

func TestHybridExecutionFailure(t *testing.T) {
	net := trainedMicroNet(t)
	seed := int64(0)
	h, err := NewHybridNetwork(Config{
		Wiring: WiringParallel, Mode: ModeTemporalDMR,
		SafetyClasses: defaultSafety(), DownsampleFactor: 3,
		ALUs: func() fault.ALU {
			seed++
			rng := rand.New(rand.NewSource(seed))
			alu, err := fault.NewTransient(1, fault.WordRandom{}, rng)
			if err != nil {
				panic(err)
			}
			return alu
		},
	}, net)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(38))
	img, err := gtsrb.AngledStopSign(96, rng)
	if err != nil {
		t.Fatal(err)
	}
	res, err := h.Classify(img)
	if err != nil {
		t.Fatal(err)
	}
	if res.Decision != DecisionExecutionFailed {
		t.Errorf("decision = %v, want execution-failed under saturating faults", res.Decision)
	}
	if res.ExecErr == nil {
		t.Error("ExecErr should carry the bucket trip")
	}
	if !res.Bucket.Tripped {
		t.Error("bucket snapshot should show the trip")
	}
}

func TestHybridSingleTransientFaultIsCorrected(t *testing.T) {
	net := trainedMicroNet(t)
	mk := func(f ALUFactory) *HybridNetwork {
		h, err := NewHybridNetwork(Config{
			Wiring: WiringParallel, Mode: ModeTemporalDMR,
			SafetyClasses: defaultSafety(), DownsampleFactor: 3, ALUs: f,
		}, net)
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	rng := rand.New(rand.NewSource(39))
	img, err := gtsrb.AngledStopSign(96, rng)
	if err != nil {
		t.Fatal(err)
	}
	clean, err := mk(nil).Classify(img)
	if err != nil {
		t.Fatal(err)
	}
	faultRng := rand.New(rand.NewSource(40))
	faulty := mk(func() fault.ALU {
		alu, err := fault.NewOnceAfter(1000, fault.BitFlip{Bit: 28}, faultRng)
		if err != nil {
			panic(err)
		}
		return alu
	})
	res, err := faulty.Classify(img)
	if err != nil {
		t.Fatal(err)
	}
	if res.Decision != clean.Decision || res.Qualifier.Class != clean.Qualifier.Class {
		t.Errorf("single corrected fault changed the verdict: %v/%v vs %v/%v",
			res.Decision, res.Qualifier.Class, clean.Decision, clean.Qualifier.Class)
	}
	if res.Stats.Retries != 1 {
		t.Errorf("retries = %d, want exactly 1", res.Stats.Retries)
	}
}

func TestHybridBifurcated(t *testing.T) {
	// Untrained net at 64×64: the CNN classification is meaningless, but
	// the bifurcated data path must deliver the conv1 Sobel channels to the
	// qualifier, which must still recognise the octagon.
	rng := rand.New(rand.NewSource(41))
	net, err := nn.NewMicroAlexNet(nn.MicroConfig{
		InputSize: 64, Conv1Filters: 8, Conv1Kernel: 5,
		Conv2Filters: 8, Hidden: 16, Classes: 6, UseLRN: false,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	conv1, err := nn.FirstConv(net)
	if err != nil {
		t.Fatal(err)
	}
	pair, err := InstallSobelPair(conv1, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewHybridNetwork(Config{
		Wiring: WiringBifurcated, Mode: ModeTemporalDMR,
		SafetyClasses: defaultSafety(), Pair: pair,
	}, net)
	if err != nil {
		t.Fatal(err)
	}
	img, err := gtsrb.AngledStopSign(64, rand.New(rand.NewSource(42)))
	if err != nil {
		t.Fatal(err)
	}
	res, err := h.Classify(img)
	if err != nil {
		t.Fatal(err)
	}
	if res.Qualifier.Class != shape.ClassOctagon {
		t.Errorf("bifurcated qualifier = %v (peaks=%d round=%.3f dist=%.2f), want octagon",
			res.Qualifier.Class, res.Qualifier.Peaks, res.Qualifier.Round, res.Qualifier.WordDist)
	}
	if res.Stats.Ops == 0 {
		t.Error("no reliable operations executed")
	}
	// Consistency of the decision logic.
	if res.Class == gtsrb.StopClass && res.Decision != DecisionQualified {
		t.Errorf("stop + octagon should be qualified, got %v", res.Decision)
	}
	if res.Class != gtsrb.StopClass && res.Decision != DecisionNotSafetyRelevant {
		t.Errorf("non-stop class should be not-safety-relevant, got %v", res.Decision)
	}
}

func TestGuaranteeValidation(t *testing.T) {
	good := GuaranteeParams{
		PerOpFaultProb: 1e-6, CollisionProb: 1.0 / 32,
		Mode: ModeTemporalDMR, BucketFactor: 2, BucketCeiling: 3,
		OpsPerInference: 1000,
	}
	if _, err := ComputeGuarantee(good); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.PerOpFaultProb = -1
	if _, err := ComputeGuarantee(bad); err == nil {
		t.Error("negative p should fail")
	}
	bad = good
	bad.CollisionProb = 2
	if _, err := ComputeGuarantee(bad); err == nil {
		t.Error("q > 1 should fail")
	}
	bad = good
	bad.Mode = RedundancyMode(0)
	if _, err := ComputeGuarantee(bad); err == nil {
		t.Error("unknown mode should fail")
	}
	bad = good
	bad.BucketFactor = 0
	if _, err := ComputeGuarantee(bad); err == nil {
		t.Error("bucket factor 0 should fail")
	}
	bad = good
	bad.OpsPerInference = 0
	if _, err := ComputeGuarantee(bad); err == nil {
		t.Error("zero ops should fail")
	}
}

func TestGuaranteePlainVsDMR(t *testing.T) {
	// p = 1e-9 keeps the plain-mode per-inference probability away from
	// saturation so the DMR-vs-plain ratio is meaningful.
	base := GuaranteeParams{
		PerOpFaultProb: 1e-9, CollisionProb: 1.0 / 32,
		BucketFactor: 2, BucketCeiling: 3, OpsPerInference: 210_000_000,
	}
	plain := base
	plain.Mode = ModePlain
	gp, err := ComputeGuarantee(plain)
	if err != nil {
		t.Fatal(err)
	}
	if gp.PSDCAttempt != base.PerOpFaultProb {
		t.Errorf("plain SDC per attempt = %v, want p", gp.PSDCAttempt)
	}
	if gp.PDetectedAttempt != 0 {
		t.Error("plain mode detects nothing")
	}

	dmr := base
	dmr.Mode = ModeTemporalDMR
	gd, err := ComputeGuarantee(dmr)
	if err != nil {
		t.Fatal(err)
	}
	// DMR per-attempt SDC = p²q.
	want := 1e-9 * 1e-9 / 32
	if math.Abs(gd.PSDCAttempt-want)/want > 1e-9 {
		t.Errorf("DMR SDC per attempt = %v, want %v", gd.PSDCAttempt, want)
	}
	// The guarantee: DMR cuts the silent-corruption probability by orders
	// of magnitude relative to plain execution.
	if gd.PUndetectedPerInference >= gp.PUndetectedPerInference/1000 {
		t.Errorf("DMR per-inference SDC %v not ≪ plain %v",
			gd.PUndetectedPerInference, gp.PUndetectedPerInference)
	}
	// Bucket 2/3 allows ceil(3/2)=2 consecutive failures.
	if gd.MaxConsecutiveFailures != 2 {
		t.Errorf("max consecutive failures = %d, want 2", gd.MaxConsecutiveFailures)
	}
	if gd.String() == "" {
		t.Error("empty guarantee string")
	}
}

func TestGuaranteeTMRMasksSingleFaults(t *testing.T) {
	params := GuaranteeParams{
		PerOpFaultProb: 1e-3, CollisionProb: 1.0 / 32,
		Mode: ModeTMR, BucketFactor: 2, BucketCeiling: 3, OpsPerInference: 1000,
	}
	g, err := ComputeGuarantee(params)
	if err != nil {
		t.Fatal(err)
	}
	// TMR's correct probability includes the single-fault mask term:
	// (1−p)³ + 3p(1−p)² ≈ 1 − 3p² for small p.
	if g.PCorrectAttempt < 1-4e-6 {
		t.Errorf("TMR correct per attempt = %v, want ≈ 1−3p²", g.PCorrectAttempt)
	}
	// TMR detects less than DMR (it masks instead).
	dmrParams := params
	dmrParams.Mode = ModeTemporalDMR
	gd, _ := ComputeGuarantee(dmrParams)
	if g.PDetectedAttempt >= gd.PDetectedAttempt {
		t.Errorf("TMR detected %v should be below DMR %v (masking)", g.PDetectedAttempt, gd.PDetectedAttempt)
	}
}

// Property: per-attempt outcome probabilities always sum to 1.
func TestQuickGuaranteeProbabilitiesSum(t *testing.T) {
	f := func(pRaw, qRaw uint16, modeRaw uint8) bool {
		p := float64(pRaw) / 65535
		q := float64(qRaw) / 65535
		mode := []RedundancyMode{ModePlain, ModeTemporalDMR, ModeSpatialDMR, ModeTMR}[modeRaw%4]
		g, err := ComputeGuarantee(GuaranteeParams{
			PerOpFaultProb: p, CollisionProb: q, Mode: mode,
			BucketFactor: 2, BucketCeiling: 3, OpsPerInference: 100,
		})
		if err != nil {
			return false
		}
		sum := g.PCorrectAttempt + g.PSDCAttempt + g.PDetectedAttempt
		if math.Abs(sum-1) > 1e-9 {
			return false
		}
		return g.PSDCAttempt >= 0 && g.PDetectedAttempt >= -1e-12 &&
			g.PUndetectedPerInference >= 0 && g.PUndetectedPerInference <= 1 &&
			g.PAbortPerInference >= 0 && g.PAbortPerInference <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: the guarantee is monotone in p — more faults, more risk.
func TestGuaranteeMonotoneInFaultRate(t *testing.T) {
	prev := -1.0
	for _, p := range []float64{1e-8, 1e-6, 1e-4, 1e-2} {
		g, err := ComputeGuarantee(GuaranteeParams{
			PerOpFaultProb: p, CollisionProb: 1.0 / 32,
			Mode: ModeTemporalDMR, BucketFactor: 2, BucketCeiling: 3,
			OpsPerInference: 1_000_000,
		})
		if err != nil {
			t.Fatal(err)
		}
		if g.PUndetectedPerInference < prev {
			t.Fatalf("SDC probability decreased as p grew at p=%v", p)
		}
		prev = g.PUndetectedPerInference
	}
}
