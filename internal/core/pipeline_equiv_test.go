package core

import (
	"math/rand"
	"testing"

	"repro/internal/gtsrb"
	"repro/internal/nn"
	"repro/internal/reliable"
	"repro/internal/tensor"
)

// TestClassifyBatchPipelinedEquivalence is the service-class pinning test:
//
//   - Full-pipeline riders of a mixed batch must be bit-identical to the
//     nil-pipes path every request took before service classes existed —
//     class, decision, qualifier, reliable-work counters AND every softmax
//     probability. Mixing fast riders into the batch changes the CNN
//     continuation's batch width, and the GEMM kernels are batch-width
//     independent, so nothing may move.
//   - Fast (CNN-only) riders must be bit-identical to the all-CNN batched
//     pipeline, must agree with an independent whole-net forward of the
//     (downsampled) image, and must carry the degraded contract: zero
//     qualifier, zero reliable-work counters, and DecisionRejected for
//     safety-critical argmax classes (no qualifier ran, so the reliable
//     guarantee cannot be claimed).
func TestClassifyBatchPipelinedEquivalence(t *testing.T) {
	net := trainedMicroNet(t)
	for _, wiring := range []Wiring{WiringParallel, WiringBifurcated} {
		cfg := Config{
			Wiring: wiring, Mode: ModeTemporalDMR,
			SafetyClasses: defaultSafety(),
		}
		imgSize := 32
		if wiring == WiringParallel {
			cfg.DownsampleFactor = 3
			imgSize = 96
		} else {
			conv1, err := nn.FirstConv(net)
			if err != nil {
				t.Fatal(err)
			}
			pair, err := InstallSobelPair(conv1, 0, 1)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Pair = pair
		}
		h, err := NewHybridNetwork(cfg, net)
		if err != nil {
			t.Fatal(err)
		}

		rng := rand.New(rand.NewSource(23))
		gcfg, err := gtsrb.Config{Size: imgSize}.Normalize()
		if err != nil {
			t.Fatal(err)
		}
		imgs := make([]*tensor.Tensor, 8)
		for i := range imgs {
			spec := gtsrb.StandardClasses()[i%len(gtsrb.StandardClasses())]
			img, err := gtsrb.Render(gtsrb.RandomParams(gcfg, spec, rng), rng)
			if err != nil {
				t.Fatal(err)
			}
			imgs[i] = img
		}

		c, err := h.NewBatchClassifier(1)
		if err != nil {
			t.Fatal(err)
		}
		// The pre-class path: nil pipes, every image full pipeline.
		wantFull, _, err := c.ClassifyBatchTimed(imgs)
		if err != nil {
			t.Fatal(err)
		}
		// The degraded/fast path: every image batched CNN only.
		allCNN := make([]Pipeline, len(imgs))
		for i := range allCNN {
			allCNN[i] = PipelineCNN
		}
		wantFast, fastStages, err := c.ClassifyBatchPipelined(imgs, allCNN)
		if err != nil {
			t.Fatal(err)
		}
		if fastStages.Reliable != 0 || fastStages.Qualifier != 0 {
			t.Errorf("wiring=%v: all-CNN batch booked reliable=%v qualifier=%v, want zero",
				wiring, fastStages.Reliable, fastStages.Qualifier)
		}
		if fastStages.CNN <= 0 {
			t.Errorf("wiring=%v: all-CNN batch booked no CNN time", wiring)
		}

		// Independent fast reference: a whole-net forward of the (possibly
		// downsampled) image — the bifurcated prefix+continuation and the
		// parallel raw-input entry both reduce to exactly this. Probabilities
		// compare within the batched-vs-per-sample kernel tolerance.
		ctx := nn.NewContext()
		for i, img := range imgs {
			in := img
			if cfg.DownsampleFactor > 1 {
				if in, err = BoxDownsample(img, cfg.DownsampleFactor); err != nil {
					t.Fatal(err)
				}
			}
			logits, err := h.Net().Forward(ctx, in)
			if err != nil {
				t.Fatal(err)
			}
			probs, class, err := nn.SoftmaxArgmax(logits)
			if err != nil {
				t.Fatal(err)
			}
			fr := wantFast[i]
			if fr.Class != class {
				t.Errorf("wiring=%v img %d: fast class %d != whole-net forward %d", wiring, i, fr.Class, class)
			}
			for k := range probs {
				d := float64(probs[k] - fr.Probs[k])
				if d < 0 {
					d = -d
				}
				if d > 1e-5 {
					t.Errorf("wiring=%v img %d: fast prob[%d]=%g vs forward %g", wiring, i, k, fr.Probs[k], probs[k])
				}
			}
			// The degraded contract: no qualifier ran, no reliable work was
			// counted, and the decision is what decide() rules with a zero
			// qualifier — Rejected for safety-critical classes.
			if fr.Qualifier.Class != 0 || fr.Qualifier.Series != nil {
				t.Errorf("wiring=%v img %d: fast result carries a qualifier verdict %+v", wiring, i, fr.Qualifier)
			}
			if fr.Stats != (reliable.Stats{}) {
				t.Errorf("wiring=%v img %d: fast result counted reliable work %+v", wiring, i, fr.Stats)
			}
			wantRes := Result{Class: class}
			h.decide(&wantRes)
			if fr.Decision != wantRes.Decision {
				t.Errorf("wiring=%v img %d: fast decision %v, want %v", wiring, i, fr.Decision, wantRes.Decision)
			}
			if _, critical := cfg.SafetyClasses[class]; critical && fr.Decision != DecisionRejected {
				t.Errorf("wiring=%v img %d: unqualified safety-critical class %d decided %v, want rejected",
					wiring, i, class, fr.Decision)
			}
		}

		// Mixed batches: alternate full/fast riders through both a
		// single-worker and a multi-worker pool. Full riders must match the
		// pre-class path and fast riders the all-CNN path, bit for bit.
		pipes := make([]Pipeline, len(imgs))
		for i := range pipes {
			if i%2 == 1 {
				pipes[i] = PipelineCNN
			}
		}
		for _, workers := range []int{1, 3} {
			cw, err := h.NewBatchClassifier(workers)
			if err != nil {
				t.Fatal(err)
			}
			got, _, err := cw.ClassifyBatchPipelined(imgs, pipes)
			if err != nil {
				t.Fatal(err)
			}
			for i := range got {
				want := wantFull[i]
				kind := "full"
				if pipes[i] == PipelineCNN {
					want = wantFast[i]
					kind = "fast"
				}
				if got[i].Class != want.Class || got[i].Decision != want.Decision ||
					got[i].Confidence != want.Confidence ||
					got[i].Qualifier.Class != want.Qualifier.Class ||
					got[i].Stats != want.Stats {
					t.Errorf("wiring=%v workers=%d img %d (%s rider): (%d,%v,%g,%v,%+v) != unmixed (%d,%v,%g,%v,%+v)",
						wiring, workers, i, kind,
						got[i].Class, got[i].Decision, got[i].Confidence, got[i].Qualifier.Class, got[i].Stats,
						want.Class, want.Decision, want.Confidence, want.Qualifier.Class, want.Stats)
				}
				for k := range want.Probs {
					if got[i].Probs[k] != want.Probs[k] {
						t.Errorf("wiring=%v workers=%d img %d (%s rider): prob[%d] %g != unmixed %g — mixing the batch moved a probability",
							wiring, workers, i, kind, k, got[i].Probs[k], want.Probs[k])
					}
				}
			}
		}
	}
}
