package core

import (
	"fmt"
	"math"

	"repro/internal/nn"
	"repro/internal/shape"
	"repro/internal/tensor"
)

// This file implements Section III-B's data-set integration workflow: the
// replacement or pre-initialisation of first-layer CNN filters with Sobel
// kernels, so that "any data used to train or otherwise modify the model
// weights for reliability purposes should benefit the other segments of the
// model".

// MakeSobelFilter assembles a (channels, k, k) filter from per-channel 2-D
// kernels.
func MakeSobelFilter(kernels ...*tensor.Tensor) (*tensor.Tensor, error) {
	if len(kernels) == 0 {
		return nil, fmt.Errorf("core: sobel filter needs at least one channel kernel")
	}
	k := kernels[0].Dim(0)
	for i, kn := range kernels {
		if kn.Rank() != 2 || kn.Dim(0) != k || kn.Dim(1) != k {
			return nil, fmt.Errorf("core: channel kernel %d has shape %v, want (%d,%d)",
				i, kn.Shape(), k, k)
		}
	}
	out, err := tensor.New(len(kernels), k, k)
	if err != nil {
		return nil, err
	}
	for c, kn := range kernels {
		ch, err := out.Channel(c)
		if err != nil {
			return nil, err
		}
		if err := ch.CopyFrom(kn); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// PaperSobelFilter builds the paper's exact replacement filter: "we naively
// replace the first of the filters with a Sobel-x, Sobel-y, Sobel-x filter"
// — channel 0 Sobel-x, channel 1 Sobel-y, channel 2 Sobel-x, extended to the
// layer's k×k kernel size.
func PaperSobelFilter(k int) (*tensor.Tensor, error) {
	sx, err := shape.SobelX(k)
	if err != nil {
		return nil, err
	}
	sy, err := shape.SobelY(k)
	if err != nil {
		return nil, err
	}
	return MakeSobelFilter(sx, sy, sx)
}

// UniformSobelX builds a filter whose every channel is the Sobel-x kernel
// scaled by 1/channels, so the filter output is the Sobel-x response of the
// channel-mean (≈ luminance) image. Together with UniformSobelY it gives the
// qualifier an orientation-complete edge pair.
func UniformSobelX(k, channels int) (*tensor.Tensor, error) {
	return uniformSobel(k, channels, shape.SobelX)
}

// UniformSobelY is UniformSobelX for the vertical gradient.
func UniformSobelY(k, channels int) (*tensor.Tensor, error) {
	return uniformSobel(k, channels, shape.SobelY)
}

func uniformSobel(k, channels int, gen func(int) (*tensor.Tensor, error)) (*tensor.Tensor, error) {
	if channels < 1 {
		return nil, fmt.Errorf("core: sobel filter needs >= 1 channel, got %d", channels)
	}
	kn, err := gen(k)
	if err != nil {
		return nil, err
	}
	kn.Scale(1 / float32(channels))
	kernels := make([]*tensor.Tensor, channels)
	for i := range kernels {
		kernels[i] = kn
	}
	return MakeSobelFilter(kernels...)
}

// ReplaceFilter overwrites filter idx of conv with the given (C, k, k)
// filter and zeroes its bias — the Figure 4 sweep operation. It returns the
// previous filter values so the caller can restore them.
func ReplaceFilter(conv *nn.Conv2D, idx int, filter *tensor.Tensor) (previous *tensor.Tensor, prevBias float32, err error) {
	if conv == nil {
		return nil, 0, fmt.Errorf("core: replace filter needs a conv layer")
	}
	view, err := conv.Weight().Filter(idx)
	if err != nil {
		return nil, 0, err
	}
	if !view.SameShape(filter) {
		return nil, 0, fmt.Errorf("core: filter shape %v does not match conv filter shape %v",
			filter.Shape(), view.Shape())
	}
	previous = view.Clone()
	prevBias = conv.Bias().Data()[idx]
	if err := view.CopyFrom(filter); err != nil {
		return nil, 0, err
	}
	conv.Bias().Data()[idx] = 0
	return previous, prevBias, nil
}

// RestoreFilter undoes a ReplaceFilter.
func RestoreFilter(conv *nn.Conv2D, idx int, previous *tensor.Tensor, prevBias float32) error {
	if conv == nil {
		return fmt.Errorf("core: restore filter needs a conv layer")
	}
	view, err := conv.Weight().Filter(idx)
	if err != nil {
		return err
	}
	if err := view.CopyFrom(previous); err != nil {
		return err
	}
	conv.Bias().Data()[idx] = prevBias
	return nil
}

// SobelPair records where the orientation-complete Sobel pair lives in the
// first convolution layer.
type SobelPair struct {
	XIdx, YIdx int
}

// InstallSobelPair pre-initialises filters xIdx and yIdx of conv to the
// uniform Sobel-x and Sobel-y kernels (biases zeroed) and returns the pair
// descriptor. This is the pre-initialisation step of Section III-B; keep the
// filters fixed during training with train.FilterFreeze.
func InstallSobelPair(conv *nn.Conv2D, xIdx, yIdx int) (SobelPair, error) {
	if conv == nil {
		return SobelPair{}, fmt.Errorf("core: install needs a conv layer")
	}
	if xIdx == yIdx {
		return SobelPair{}, fmt.Errorf("core: sobel pair indices must differ, both %d", xIdx)
	}
	fx, err := UniformSobelX(conv.Kernel(), conv.InChannels())
	if err != nil {
		return SobelPair{}, err
	}
	fy, err := UniformSobelY(conv.Kernel(), conv.InChannels())
	if err != nil {
		return SobelPair{}, err
	}
	if _, _, err := ReplaceFilter(conv, xIdx, fx); err != nil {
		return SobelPair{}, err
	}
	if _, _, err := ReplaceFilter(conv, yIdx, fy); err != nil {
		return SobelPair{}, err
	}
	return SobelPair{XIdx: xIdx, YIdx: yIdx}, nil
}

// EdgeMagnitudeFromChannels combines the Sobel pair's output channels of a
// CHW feature map into an edge-magnitude map.
func EdgeMagnitudeFromChannels(features *tensor.Tensor, pair SobelPair) (*tensor.Tensor, error) {
	if features.Rank() != 3 {
		return nil, fmt.Errorf("core: edge magnitude needs CHW features, got %v", features.Shape())
	}
	gx, err := features.Channel(pair.XIdx)
	if err != nil {
		return nil, err
	}
	gy, err := features.Channel(pair.YIdx)
	if err != nil {
		return nil, err
	}
	out := tensor.MustNew(features.Dim(1), features.Dim(2))
	gxd, gyd, od := gx.Data(), gy.Data(), out.Data()
	for i := range od {
		od[i] = float32(math.Hypot(float64(gxd[i]), float64(gyd[i])))
	}
	return out, nil
}
