package core

import (
	"fmt"

	"repro/internal/nn"
	"repro/internal/reliable"
	"repro/internal/tensor"
)

// This file generalises the DCNN from "the first convolution layer" (the
// paper's implementation) to an arbitrary prefix of the network — the
// Section V future-work question of "under what conditions subsequent layers
// of the CNN can be harnessed". ExecutePrefix runs the first depth layers
// through the reliable engine: convolutions and dense layers via the
// overloaded multiply/accumulate protocol, activations and pooling via
// redundant comparisons, LRN via protected sums and products.

// ExecutePrefix reliably executes layers [0, depth) of net on x and returns
// the intermediate activation. Dropout layers are the identity (inference
// semantics). The engine accumulates work statistics and bucket state across
// the whole prefix.
func ExecutePrefix(e *reliable.Engine, net *nn.Sequential, depth int, x *tensor.Tensor) (*tensor.Tensor, error) {
	if e == nil {
		return nil, fmt.Errorf("core: prefix execution needs an engine")
	}
	if net == nil {
		return nil, fmt.Errorf("core: prefix execution needs a network")
	}
	if depth < 0 || depth > net.Len() {
		return nil, fmt.Errorf("core: prefix depth %d out of [0,%d]", depth, net.Len())
	}
	var err error
	for i := 0; i < depth; i++ {
		layer, lerr := net.Layer(i)
		if lerr != nil {
			return nil, lerr
		}
		x, err = executeLayer(e, layer, x)
		if err != nil {
			return nil, fmt.Errorf("core: reliable layer %d (%s): %w", i, layer.Name(), err)
		}
	}
	return x, nil
}

func executeLayer(e *reliable.Engine, layer nn.Layer, x *tensor.Tensor) (*tensor.Tensor, error) {
	switch l := layer.(type) {
	case *nn.Conv2D:
		return reliable.Conv2D(e, x, l.Weight(), l.Bias().Data(),
			reliable.ConvSpec{Stride: l.Stride(), Pad: l.Pad()})
	case *nn.Dense:
		return reliable.Dense(e, x, l.Weight(), l.Bias().Data())
	case *nn.ReLU:
		return reliable.ReLU(e, x)
	case *nn.MaxPool2D:
		return reliable.MaxPool2D(e, x, l.Kernel(), l.Stride())
	case *nn.LRN:
		k, alpha, beta := l.Constants()
		return reliable.LRN(e, x, l.Window(), k, alpha, beta)
	case *nn.Flatten:
		return x.Reshape(x.Len())
	case *nn.Dropout:
		return x, nil // inference: identity
	default:
		return nil, fmt.Errorf("core: no reliable executor for layer type %T", layer)
	}
}

// PrefixCost estimates the overloaded-operation count of reliably executing
// layers [0, depth) of net on an input of the given CHW shape, without
// running anything — the planning input for the partition trade-off the
// paper's conclusion frames as "prima facie an optimization problem":
// balancing the qualifier's complexity against the reliably executed portion
// of the CNN.
func PrefixCost(net *nn.Sequential, depth int, inputShape []int) (ops uint64, err error) {
	if net == nil {
		return 0, fmt.Errorf("core: prefix cost needs a network")
	}
	if depth < 0 || depth > net.Len() {
		return 0, fmt.Errorf("core: prefix depth %d out of [0,%d]", depth, net.Len())
	}
	shape := append([]int(nil), inputShape...)
	elems := func() uint64 {
		n := uint64(1)
		for _, d := range shape {
			n *= uint64(d)
		}
		return n
	}
	for i := 0; i < depth; i++ {
		layer, lerr := net.Layer(i)
		if lerr != nil {
			return 0, lerr
		}
		switch l := layer.(type) {
		case *nn.Conv2D:
			if len(shape) != 3 {
				return 0, fmt.Errorf("core: layer %d (conv) needs CHW input, tracking %v", i, shape)
			}
			outH := (shape[1]+2*l.Pad()-l.Kernel())/l.Stride() + 1
			outW := (shape[2]+2*l.Pad()-l.Kernel())/l.Stride() + 1
			if outH < 1 || outW < 1 {
				return 0, fmt.Errorf("core: layer %d (conv) does not fit input %v", i, shape)
			}
			macs := uint64(l.Filters()) * uint64(outH) * uint64(outW) *
				uint64(l.InChannels()) * uint64(l.Kernel()) * uint64(l.Kernel())
			ops += 2 * macs
			shape = []int{l.Filters(), outH, outW}
		case *nn.Dense:
			ops += 2 * uint64(l.Out()) * uint64(l.In())
			shape = []int{l.Out()}
		case *nn.ReLU:
			ops += elems() // one redundant comparison per element
		case *nn.MaxPool2D:
			if len(shape) != 3 {
				return 0, fmt.Errorf("core: layer %d (pool) needs CHW input, tracking %v", i, shape)
			}
			outH := (shape[1]-l.Kernel())/l.Stride() + 1
			outW := (shape[2]-l.Kernel())/l.Stride() + 1
			if outH < 1 || outW < 1 {
				return 0, fmt.Errorf("core: layer %d (pool) does not fit input %v", i, shape)
			}
			ops += uint64(shape[0]) * uint64(outH) * uint64(outW) *
				uint64(l.Kernel()) * uint64(l.Kernel())
			shape = []int{shape[0], outH, outW}
		case *nn.LRN:
			// One square per element, ≤ window sums per element, one scale.
			ops += elems() * uint64(2+l.Window())
		case *nn.Flatten:
			shape = []int{int(elems())}
		case *nn.Dropout:
			// identity at inference
		default:
			return 0, fmt.Errorf("core: no cost model for layer type %T", layer)
		}
	}
	return ops, nil
}

// ExecutePrefixFrom reliably executes layers [from, to) of net — used by the
// bifurcated hybrid to continue the DCNN past the already-executed conv1.
func ExecutePrefixFrom(e *reliable.Engine, net *nn.Sequential, from, to int, x *tensor.Tensor) (*tensor.Tensor, error) {
	if e == nil || net == nil {
		return nil, fmt.Errorf("core: prefix execution needs an engine and a network")
	}
	if from < 0 || to < from || to > net.Len() {
		return nil, fmt.Errorf("core: prefix range [%d,%d) out of [0,%d]", from, to, net.Len())
	}
	var err error
	for i := from; i < to; i++ {
		layer, lerr := net.Layer(i)
		if lerr != nil {
			return nil, lerr
		}
		x, err = executeLayer(e, layer, x)
		if err != nil {
			return nil, fmt.Errorf("core: reliable layer %d (%s): %w", i, layer.Name(), err)
		}
	}
	return x, nil
}
