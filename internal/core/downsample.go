package core

import (
	"fmt"

	"repro/internal/tensor"
)

// BoxDownsample reduces a CHW image by an integer factor with box (mean)
// filtering. The hybrid pipeline qualifies shapes at full resolution — the
// paper picks AlexNet precisely because "shape recognition requires an
// appreciable image size with a clearly definable edge" — while the CNN may
// classify a downsampled view.
func BoxDownsample(img *tensor.Tensor, factor int) (*tensor.Tensor, error) {
	if img.Rank() != 3 {
		return nil, fmt.Errorf("core: downsample needs CHW image, got %v", img.Shape())
	}
	if factor < 1 {
		return nil, fmt.Errorf("core: downsample factor %d must be >= 1", factor)
	}
	if factor == 1 {
		return img.Clone(), nil
	}
	c, h, w := img.Dim(0), img.Dim(1), img.Dim(2)
	if h%factor != 0 || w%factor != 0 {
		return nil, fmt.Errorf("core: image %dx%d not divisible by factor %d", h, w, factor)
	}
	oh, ow := h/factor, w/factor
	out := tensor.MustNew(c, oh, ow)
	inv := 1 / float32(factor*factor)
	for ch := 0; ch < c; ch++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				var s float32
				for dy := 0; dy < factor; dy++ {
					for dx := 0; dx < factor; dx++ {
						s += img.At3(ch, oy*factor+dy, ox*factor+dx)
					}
				}
				out.Set3(s*inv, ch, oy, ox)
			}
		}
	}
	return out, nil
}
