package core

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/fault"
	"repro/internal/gtsrb"
	"repro/internal/nn"
	"repro/internal/reliable"
	"repro/internal/shape"
	"repro/internal/tensor"
)

func prefixNet(t *testing.T, useLRN bool) *nn.Sequential {
	t.Helper()
	rng := rand.New(rand.NewSource(55))
	net, err := nn.NewMicroAlexNet(nn.MicroConfig{
		InputSize: 16, Conv1Filters: 4, Conv1Kernel: 3,
		Conv2Filters: 4, Hidden: 8, Classes: 3, UseLRN: useLRN,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func idealEngine(t *testing.T) *reliable.Engine {
	t.Helper()
	ops, err := reliable.NewPlain(fault.Ideal{})
	if err != nil {
		t.Fatal(err)
	}
	e, err := reliable.NewEngine(ops, nil)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// The load-bearing equivalence: on fault-free hardware the reliable prefix
// computes exactly what the plain framework computes, for EVERY depth and
// every layer type (conv, relu, lrn, pool, flatten, dense).
func TestExecutePrefixMatchesPlainForward(t *testing.T) {
	for _, useLRN := range []bool{false, true} {
		net := prefixNet(t, useLRN)
		rng := rand.New(rand.NewSource(56))
		x := tensor.MustNew(3, 16, 16)
		x.FillUniform(rng, 0, 1)
		for depth := 0; depth <= net.Len(); depth++ {
			e := idealEngine(t)
			got, err := ExecutePrefix(e, net, depth, x)
			if err != nil {
				t.Fatalf("lrn=%v depth %d: %v", useLRN, depth, err)
			}
			// Plain reference: forward the first depth layers.
			nctx := nn.NewContext()
			want := x
			for i := 0; i < depth; i++ {
				layer, err := net.Layer(i)
				if err != nil {
					t.Fatal(err)
				}
				want, err = layer.Forward(nctx, want)
				if err != nil {
					t.Fatal(err)
				}
			}
			if !want.AllClose(got, 2e-5) {
				d, _ := want.MaxAbsDiff(got)
				t.Fatalf("lrn=%v depth %d: reliable prefix diverges by %v", useLRN, depth, d)
			}
			if depth > 0 && e.Stats().Ops == 0 {
				t.Fatalf("depth %d executed no reliable operations", depth)
			}
		}
	}
}

func TestExecutePrefixValidation(t *testing.T) {
	net := prefixNet(t, false)
	e := idealEngine(t)
	x := tensor.MustNew(3, 16, 16)
	if _, err := ExecutePrefix(nil, net, 1, x); err == nil {
		t.Error("nil engine should fail")
	}
	if _, err := ExecutePrefix(e, nil, 1, x); err == nil {
		t.Error("nil net should fail")
	}
	if _, err := ExecutePrefix(e, net, -1, x); err == nil {
		t.Error("negative depth should fail")
	}
	if _, err := ExecutePrefix(e, net, 99, x); err == nil {
		t.Error("excess depth should fail")
	}
	if _, err := ExecutePrefixFrom(e, net, 3, 1, x); err == nil {
		t.Error("inverted range should fail")
	}
	if _, err := ExecutePrefixFrom(nil, net, 0, 1, x); err == nil {
		t.Error("nil engine range should fail")
	}
}

func TestReliableLayersDetectFaults(t *testing.T) {
	// A single transient fault anywhere in the prefix is corrected; the
	// output still matches a fault-free reliable execution exactly. (The
	// reference is the reliable engine itself, not nn.Forward: the SIMD
	// GEMM path's fused multiply-adds round differently from the reliable
	// ops' scalar MAC chain, so plain-forward equality is only ever
	// tolerance-based — see TestExecutePrefixMatchesPlainForward.)
	net := prefixNet(t, false)
	rng := rand.New(rand.NewSource(57))
	x := tensor.MustNew(3, 16, 16)
	x.FillUniform(rng, 0, 1)
	want, err := ExecutePrefix(idealEngine(t), net, net.Len(), x)
	if err != nil {
		t.Fatal(err)
	}

	alu, err := fault.NewOnceAfter(3000, fault.BitFlip{Bit: 29}, rand.New(rand.NewSource(58)))
	if err != nil {
		t.Fatal(err)
	}
	ops, err := reliable.NewTemporalDMR(alu)
	if err != nil {
		t.Fatal(err)
	}
	e, err := reliable.NewEngine(ops, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ExecutePrefix(e, net, net.Len(), x)
	if err != nil {
		t.Fatal(err)
	}
	if !want.Equal(got) {
		t.Error("corrected fault should leave the full reliable forward exact")
	}
	if e.Stats().Retries != 1 {
		t.Errorf("retries = %d, want 1", e.Stats().Retries)
	}
	if !alu.Fired() {
		t.Error("fault never injected — test is vacuous")
	}
}

func TestReliablePrefixAbortsUnderSaturation(t *testing.T) {
	net := prefixNet(t, false)
	rng := rand.New(rand.NewSource(59))
	x := tensor.MustNew(3, 16, 16)
	x.FillUniform(rng, 0, 1)
	alu, err := fault.NewTransient(1, fault.WordRandom{}, rand.New(rand.NewSource(60)))
	if err != nil {
		t.Fatal(err)
	}
	ops, err := reliable.NewTemporalDMR(alu)
	if err != nil {
		t.Fatal(err)
	}
	e, err := reliable.NewEngine(ops, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ExecutePrefix(e, net, net.Len(), x); !errors.Is(err, reliable.ErrBucketTripped) {
		t.Fatalf("want bucket trip, got %v", err)
	}
}

func TestPrefixCostMatchesMeasuredOps(t *testing.T) {
	net := prefixNet(t, true)
	rng := rand.New(rand.NewSource(61))
	x := tensor.MustNew(3, 16, 16)
	x.FillUniform(rng, 0, 1)
	for depth := 1; depth <= net.Len(); depth++ {
		predicted, err := PrefixCost(net, depth, []int{3, 16, 16})
		if err != nil {
			t.Fatalf("depth %d: %v", depth, err)
		}
		e := idealEngine(t)
		if _, err := ExecutePrefix(e, net, depth, x); err != nil {
			t.Fatal(err)
		}
		measured := e.Stats().Ops
		// The cost model is an upper-bound estimate for LRN (window
		// clipping at channel edges) — allow 30% slack there, exactness
		// elsewhere would require modelling the clipping.
		lo := float64(predicted) * 0.7
		if float64(measured) > float64(predicted) || float64(measured) < lo {
			t.Errorf("depth %d: predicted %d ops, measured %d", depth, predicted, measured)
		}
	}
	if _, err := PrefixCost(nil, 1, nil); err == nil {
		t.Error("nil net should fail")
	}
	if _, err := PrefixCost(net, 99, []int{3, 16, 16}); err == nil {
		t.Error("excess depth should fail")
	}
	if _, err := PrefixCost(net, 1, []int{16, 16}); err == nil {
		t.Error("rank-2 input for conv should fail")
	}
}

func TestHybridDeepDCNN(t *testing.T) {
	// Bifurcated hybrid with the DCNN extended through conv1→relu→pool:
	// the verdicts must agree with the depth-1 hybrid on fault-free
	// hardware (the extra depth changes cost, not results).
	rng := rand.New(rand.NewSource(62))
	net, err := nn.NewMicroAlexNet(nn.MicroConfig{
		InputSize: 64, Conv1Filters: 6, Conv1Kernel: 5,
		Conv2Filters: 6, Hidden: 12, Classes: 6, UseLRN: false,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	conv1, err := nn.FirstConv(net)
	if err != nil {
		t.Fatal(err)
	}
	pair, err := InstallSobelPair(conv1, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(depth int) *HybridNetwork {
		h, err := NewHybridNetwork(Config{
			Wiring: WiringBifurcated, Mode: ModeTemporalDMR,
			Pair: pair, DCNNDepth: depth,
			SafetyClasses: defaultSafety(),
		}, net)
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	img, err := gtsrb.AngledStopSign(64, rand.New(rand.NewSource(63)))
	if err != nil {
		t.Fatal(err)
	}
	shallow, err := mk(1).Classify(img)
	if err != nil {
		t.Fatal(err)
	}
	deep, err := mk(3).Classify(img)
	if err != nil {
		t.Fatal(err)
	}
	if shallow.Class != deep.Class || shallow.Decision != deep.Decision {
		t.Errorf("depth changed the verdict: (%d,%v) vs (%d,%v)",
			shallow.Class, shallow.Decision, deep.Class, deep.Decision)
	}
	if deep.Stats.Ops <= shallow.Stats.Ops {
		t.Errorf("deeper DCNN should cost more: %d vs %d ops", deep.Stats.Ops, shallow.Stats.Ops)
	}
	if shallow.Qualifier.Class != shape.ClassOctagon {
		t.Errorf("qualifier = %v, want octagon", shallow.Qualifier.Class)
	}
	// Depth out of range is rejected.
	if _, err := NewHybridNetwork(Config{
		Wiring: WiringBifurcated, Mode: ModePlain, Pair: pair,
		DCNNDepth: 99, SafetyClasses: defaultSafety(),
	}, net); err == nil {
		t.Error("excess DCNN depth should fail")
	}
}

func TestReliableLayerPrimitivesValidation(t *testing.T) {
	e := idealEngine(t)
	x := tensor.MustNew(4)
	w := tensor.MustNew(2, 4)
	if _, err := reliable.Dense(nil, x, w, nil); err == nil {
		t.Error("nil engine dense should fail")
	}
	if _, err := reliable.Dense(e, tensor.MustNew(3), w, nil); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := reliable.Dense(e, x, tensor.MustNew(4), nil); err == nil {
		t.Error("rank-1 weight should fail")
	}
	if _, err := reliable.Dense(e, x, w, []float32{1}); err == nil {
		t.Error("short bias should fail")
	}
	if _, err := reliable.ReLU(nil, x); err == nil {
		t.Error("nil engine relu should fail")
	}
	chw := tensor.MustNew(1, 4, 4)
	if _, err := reliable.MaxPool2D(nil, chw, 2, 2); err == nil {
		t.Error("nil engine pool should fail")
	}
	if _, err := reliable.MaxPool2D(e, x, 2, 2); err == nil {
		t.Error("rank-1 pool input should fail")
	}
	if _, err := reliable.MaxPool2D(e, chw, 0, 2); err == nil {
		t.Error("window 0 should fail")
	}
	if _, err := reliable.MaxPool2D(e, chw, 8, 2); err == nil {
		t.Error("oversized window should fail")
	}
	if _, err := reliable.LRN(nil, chw, 3, 1, 1, 1); err == nil {
		t.Error("nil engine lrn should fail")
	}
	if _, err := reliable.LRN(e, x, 3, 1, 1, 1); err == nil {
		t.Error("rank-1 lrn input should fail")
	}
	if _, err := reliable.LRN(e, chw, 0, 1, 1, 1); err == nil {
		t.Error("window 0 lrn should fail")
	}
}
