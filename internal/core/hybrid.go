package core

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/nn"
	"repro/internal/reliable"
	"repro/internal/shape"
	"repro/internal/tensor"
)

// StageTimes is the per-stage wall-time breakdown of the classify
// pipeline: the reliable stage (edge convolution or DCNN prefix), the
// shape qualifier, and the batched non-reliable CNN. Each worker measures
// the chunks it processes, so across a pooled batch the fields are
// summed per-worker wall time — they can exceed the batch's wall clock
// when workers run in parallel, the same way CPU time can. Zero-valued
// when the caller did not ask for timing.
type StageTimes struct {
	Reliable  time.Duration `json:"reliable_ns"`
	Qualifier time.Duration `json:"qualifier_ns"`
	CNN       time.Duration `json:"cnn_ns"`
}

// Add accumulates other into s.
func (s *StageTimes) Add(other StageTimes) {
	s.Reliable += other.Reliable
	s.Qualifier += other.Qualifier
	s.CNN += other.CNN
}

// Wiring selects between the paper's two hybrid architectures.
type Wiring int

const (
	// WiringParallel is Figure 1: "maintain a shape-recognition functional
	// block in parallel with a CNN for a general classification". The
	// qualifier path is a reliably executed Sobel convolution on the
	// full-resolution input, independent of the CNN's weights.
	WiringParallel Wiring = iota + 1
	// WiringBifurcated is Figure 2: the first convolution layer (with its
	// Sobel-pre-initialised filters) IS the DCNN; it executes reliably,
	// and its output bifurcates into the remaining CNN layers and the
	// qualifier.
	WiringBifurcated
)

// String implements fmt.Stringer.
func (w Wiring) String() string {
	switch w {
	case WiringParallel:
		return "parallel"
	case WiringBifurcated:
		return "bifurcated"
	default:
		return fmt.Sprintf("wiring(%d)", int(w))
	}
}

// Decision is the verdict of the Reliable Result block.
type Decision int

const (
	// DecisionQualified: a safety-critical classification whose qualifier
	// confirmed the expected shape. Safe to act on.
	DecisionQualified Decision = iota + 1
	// DecisionRejected: a safety-critical classification the qualifier
	// did NOT confirm — "any shape recognised by a CNN is not a Stop sign
	// unless the shape has been confirmed as octagonal".
	DecisionRejected
	// DecisionNotSafetyRelevant: a class that needs no qualification
	// ("e.g., a parking prohibition can be used without qualification").
	DecisionNotSafetyRelevant
	// DecisionExecutionFailed: the reliable execution itself reported a
	// persistent error (bucket trip) — a detected unrecoverable error.
	DecisionExecutionFailed
)

// String implements fmt.Stringer.
func (d Decision) String() string {
	switch d {
	case DecisionQualified:
		return "qualified"
	case DecisionRejected:
		return "rejected"
	case DecisionNotSafetyRelevant:
		return "not-safety-relevant"
	case DecisionExecutionFailed:
		return "execution-failed"
	default:
		return fmt.Sprintf("decision(%d)", int(d))
	}
}

// Config assembles a hybrid network.
type Config struct {
	// Wiring selects Figure 1 (parallel) or Figure 2 (bifurcated).
	Wiring Wiring
	// Mode is the DCNN redundancy mode.
	Mode RedundancyMode
	// BucketFactor and BucketCeiling parameterise the leaky bucket
	// (defaults: the paper's 2 and 3).
	BucketFactor, BucketCeiling int
	// SafetyClasses maps a class label to the shape the qualifier must
	// confirm before the classification may be used.
	SafetyClasses map[int]shape.Class
	// Pair locates the Sobel filters in the first convolution layer
	// (bifurcated wiring only).
	Pair SobelPair
	// DCNNDepth is how many leading layers execute reliably in the
	// bifurcated wiring (default 1 — the paper's "one convolution layer";
	// deeper prefixes answer the Section V question of harnessing
	// subsequent layers, at the cost PrefixCost quantifies).
	DCNNDepth int
	// SobelKernel is the kernel size of the parallel wiring's standalone
	// edge stage (default 3).
	SobelKernel int
	// DownsampleFactor reduces the full-resolution input before the CNN
	// (parallel wiring only; default 1 = none).
	DownsampleFactor int
	// ALUs produces the processing elements for the reliable stage
	// (default: ideal).
	ALUs ALUFactory
	// Qualifier overrides the shape qualifier configuration (default:
	// shape.DefaultQualifierConfig).
	Qualifier *shape.QualifierConfig
}

// Result is the hybrid network's full output for one input, retaining every
// artefact a safety case would want to inspect.
type Result struct {
	// Class is the CNN's argmax class; Confidence its softmax probability.
	Class      int
	Confidence float32
	Probs      []float32
	// Decision is the Reliable Result verdict.
	Decision Decision
	// Qualifier is the shape qualifier's full result (zero when execution
	// failed before qualification).
	Qualifier shape.Result
	// Stats counts the reliable-execution work; Bucket snapshots the error
	// counter after the run.
	Stats  reliable.Stats
	Bucket reliable.Snapshot
	// ExecErr is the reliable-execution error for DecisionExecutionFailed.
	ExecErr error
}

// HybridNetwork is the assembled hybrid CNN.
type HybridNetwork struct {
	cfg       Config
	net       *nn.Sequential
	conv1     *nn.Conv2D
	qualifier *shape.Qualifier
	sobelBank *tensor.Tensor // parallel wiring edge stage (2, C, k, k)
}

// NewHybridNetwork wraps a trained CNN into a hybrid network.
func NewHybridNetwork(cfg Config, net *nn.Sequential) (*HybridNetwork, error) {
	if net == nil {
		return nil, fmt.Errorf("core: hybrid needs a CNN")
	}
	if cfg.Wiring != WiringParallel && cfg.Wiring != WiringBifurcated {
		return nil, fmt.Errorf("core: unknown wiring %d", int(cfg.Wiring))
	}
	if _, err := cfg.Mode.PEs(); err != nil {
		return nil, err
	}
	if cfg.BucketFactor == 0 {
		cfg.BucketFactor = reliable.DefaultFactor
	}
	if cfg.BucketCeiling == 0 {
		cfg.BucketCeiling = reliable.DefaultCeiling
	}
	if cfg.SobelKernel == 0 {
		cfg.SobelKernel = 3
	}
	if cfg.DownsampleFactor == 0 {
		cfg.DownsampleFactor = 1
	}
	if cfg.DCNNDepth == 0 {
		cfg.DCNNDepth = 1
	}
	if cfg.DCNNDepth < 1 || cfg.DCNNDepth > net.Len() {
		return nil, fmt.Errorf("core: DCNN depth %d out of [1,%d]", cfg.DCNNDepth, net.Len())
	}
	if len(cfg.SafetyClasses) == 0 {
		return nil, fmt.Errorf("core: hybrid needs at least one safety-critical class")
	}
	conv1, err := nn.FirstConv(net)
	if err != nil {
		return nil, err
	}
	if cfg.Wiring == WiringBifurcated {
		if cfg.Pair.XIdx == cfg.Pair.YIdx {
			return nil, fmt.Errorf("core: bifurcated wiring needs a Sobel pair with distinct indices")
		}
		if cfg.Pair.XIdx < 0 || cfg.Pair.XIdx >= conv1.Filters() ||
			cfg.Pair.YIdx < 0 || cfg.Pair.YIdx >= conv1.Filters() {
			return nil, fmt.Errorf("core: Sobel pair (%d,%d) out of range [0,%d)",
				cfg.Pair.XIdx, cfg.Pair.YIdx, conv1.Filters())
		}
	}
	qcfg := shape.DefaultQualifierConfig()
	if cfg.Qualifier != nil {
		qcfg = *cfg.Qualifier
	}
	q, err := shape.NewQualifier(qcfg)
	if err != nil {
		return nil, fmt.Errorf("core: hybrid qualifier: %w", err)
	}
	h := &HybridNetwork{cfg: cfg, net: net, conv1: conv1, qualifier: q}
	if cfg.Wiring == WiringParallel {
		// The parallel edge stage convolves the single-channel saliency
		// (colourfulness) image, so the bank has one input channel.
		fx, err := shape.SobelX(cfg.SobelKernel)
		if err != nil {
			return nil, err
		}
		fy, err := shape.SobelY(cfg.SobelKernel)
		if err != nil {
			return nil, err
		}
		bank, err := tensor.New(2, 1, cfg.SobelKernel, cfg.SobelKernel)
		if err != nil {
			return nil, err
		}
		for i, f := range []*tensor.Tensor{fx, fy} {
			view, err := bank.Filter(i)
			if err != nil {
				return nil, err
			}
			ch, err := view.Channel(0)
			if err != nil {
				return nil, err
			}
			if err := ch.CopyFrom(f); err != nil {
				return nil, err
			}
		}
		h.sobelBank = bank
	}
	return h, nil
}

// Net returns the wrapped CNN.
func (h *HybridNetwork) Net() *nn.Sequential { return h.net }

// Qualifier returns the shape qualifier.
func (h *HybridNetwork) Qualifier() *shape.Qualifier { return h.qualifier }

// Config returns the (normalised) configuration.
func (h *HybridNetwork) Config() Config { return h.cfg }

// newEngine builds a fresh reliable engine (ops + bucket) for one inference.
func (h *HybridNetwork) newEngine() (*reliable.Engine, error) {
	ops, err := h.cfg.Mode.NewOps(h.cfg.ALUs)
	if err != nil {
		return nil, err
	}
	bucket, err := reliable.NewLeakyBucket(h.cfg.BucketFactor, h.cfg.BucketCeiling)
	if err != nil {
		return nil, err
	}
	return reliable.NewEngine(ops, bucket)
}

// Classify runs the hybrid pipeline on a full-resolution CHW image with a
// fresh context and reliable engine. It is safe to call concurrently on a
// shared HybridNetwork; for batches prefer ClassifyBatch, which shares
// each worker's context and engine across the images of that batch.
func (h *HybridNetwork) Classify(img *tensor.Tensor) (Result, error) {
	engine, err := h.newEngine()
	if err != nil {
		return Result{}, err
	}
	return h.classify(nn.NewContext(), engine, img)
}

func (h *HybridNetwork) classify(ctx *nn.Context, engine *reliable.Engine, img *tensor.Tensor) (Result, error) {
	results := make([]Result, 1)
	if err := h.classifyChunk(ctx, engine, []*tensor.Tensor{img}, results, nil); err != nil {
		return Result{}, err
	}
	return results[0], nil
}

// classifyChunk classifies a sub-batch of images through one worker's
// context and reliable engine, writing one Result per image. The pipeline
// splits into two stages:
//
//  1. Per sample: the reliable stage (edge convolution or the DCNN prefix,
//     whose overloaded MAC protocol is inherently per-image) and the shape
//     qualifier, with the leaky bucket reset before every image and the
//     work counters reported as per-image deltas — the per-execution
//     semantics of Classify.
//  2. Batched: the non-reliable CNN portion of every image that survived
//     stage 1 runs as ONE NCHW micro-batch through ForwardBatchFrom — one
//     blocked GEMM per layer for the whole sub-batch instead of one per
//     image.
//
// A single-image chunk skips the pack and runs the per-sample CNN path;
// both paths compute identical logits.
//
// When st is non-nil the chunk's per-stage wall time is accumulated into
// it (reliable stage, qualifier, batched CNN) — one goroutine owns a chunk
// end to end, so plain additions suffice.
func (h *HybridNetwork) classifyChunk(ctx *nn.Context, engine *reliable.Engine, imgs []*tensor.Tensor, results []Result, st *StageTimes) error {
	return h.classifyChunkPipelined(ctx, engine, imgs, nil, results, st)
}

// classifyChunkPipelined is classifyChunk with a per-image pipeline
// selection: pipes[i] == PipelineCNN skips stage 1 (no reliable execution,
// no qualifier) for image i and routes it straight into the batched CNN.
// Fast images run the non-reliable prefix (the layers the reliable stage
// would have computed) as one micro-batch, then every surviving image —
// full and fast alike — coalesces into the SAME batched CNN continuation,
// so a mixed chunk still costs one GEMM per layer. nil pipes means
// PipelineFull for every image.
func (h *HybridNetwork) classifyChunkPipelined(ctx *nn.Context, engine *reliable.Engine, imgs []*tensor.Tensor, pipes []Pipeline, results []Result, st *StageTimes) error {
	if h.cfg.Wiring != WiringParallel && h.cfg.Wiring != WiringBifurcated {
		return fmt.Errorf("core: unknown wiring %d", int(h.cfg.Wiring))
	}
	if len(imgs) != len(results) {
		return fmt.Errorf("core: classify chunk has %d images for %d results", len(imgs), len(results))
	}
	if pipes != nil && len(pipes) != len(imgs) {
		return fmt.Errorf("core: classify chunk has %d pipelines for %d images", len(pipes), len(imgs))
	}
	if st == nil {
		st = &StageTimes{} // timing always measured into somewhere; discarded when unwanted
	}
	// Stage 1: reliable execution + qualifier, per sample — full-pipeline
	// images only.
	cnnIns := make([]*tensor.Tensor, 0, len(imgs))
	idxs := make([]int, 0, len(imgs))
	fastIdxs := make([]int, 0)
	for i, img := range imgs {
		if pipes != nil && pipes[i] == PipelineCNN {
			fastIdxs = append(fastIdxs, i)
			continue
		}
		engine.Bucket().Reset()
		before := engine.Stats()
		qBefore := st.Qualifier
		stageStart := time.Now()
		cnnIn, err := h.reliableStage(engine, img, &results[i], st)
		// The qualifier ran inside reliableStage and booked its own time;
		// the reliable span is the remainder.
		st.Reliable += time.Since(stageStart) - (st.Qualifier - qBefore)
		// The engine accumulates across the chunk; report the per-inference
		// delta, matching Classify's fresh-engine counters.
		results[i].Stats.Sub(before)
		if err != nil {
			return err
		}
		if cnnIn != nil {
			cnnIns = append(cnnIns, cnnIn)
			idxs = append(idxs, i)
		}
	}
	// Stage 2: the CNN portion, micro-batched. Fast images first run the
	// non-reliable prefix so they enter the continuation at the same layer
	// as the reliably computed feature maps; the prefix is CNN work and is
	// booked as such.
	cnnStart := time.Now()
	err := h.fastEntries(ctx, imgs, fastIdxs, &cnnIns, &idxs)
	if err == nil {
		err = h.cnnStage(ctx, cnnIns, idxs, results)
	}
	st.CNN += time.Since(cnnStart)
	return err
}

// fastEntries computes the CNN-stage entry tensor for every fast-pipeline
// image and appends them (with their result indices) to cnnIns/idxs.
// Parallel wiring: the (possibly downsampled) image itself — the CNN
// consumes the raw input. Bifurcated wiring: the image is run through the
// non-reliable batched prefix [0, DCNNDepth) so it arrives at the same
// layer as the reliable stage's output; same-shaped fast images share one
// batched prefix pass.
func (h *HybridNetwork) fastEntries(ctx *nn.Context, imgs []*tensor.Tensor, fastIdxs []int, cnnIns *[]*tensor.Tensor, idxs *[]int) error {
	if len(fastIdxs) == 0 {
		return nil
	}
	if h.cfg.Wiring == WiringParallel {
		for _, i := range fastIdxs {
			in := imgs[i]
			if h.cfg.DownsampleFactor > 1 {
				var err error
				in, err = BoxDownsample(in, h.cfg.DownsampleFactor)
				if err != nil {
					return err
				}
			}
			*cnnIns = append(*cnnIns, in)
			*idxs = append(*idxs, i)
		}
		return nil
	}
	// Bifurcated: batch the prefix across same-shaped fast images; ragged
	// shapes each run a batch of one.
	rest := fastIdxs
	for len(rest) > 0 {
		group := []*tensor.Tensor{imgs[rest[0]]}
		groupIdxs := []int{rest[0]}
		pending := make([]int, 0, len(rest))
		for _, i := range rest[1:] {
			if imgs[i].SameShape(imgs[rest[0]]) {
				group = append(group, imgs[i])
				groupIdxs = append(groupIdxs, i)
			} else {
				pending = append(pending, i)
			}
		}
		batch, err := tensor.Stack(group)
		if err != nil {
			return err
		}
		out, err := h.net.ForwardBatchRange(ctx, 0, h.cfg.DCNNDepth, batch)
		if err != nil {
			return fmt.Errorf("core: fast prefix: %w", err)
		}
		for j, i := range groupIdxs {
			fm, err := out.Sample(j)
			if err != nil {
				return err
			}
			*cnnIns = append(*cnnIns, fm)
			*idxs = append(*idxs, i)
		}
		rest = pending
	}
	return nil
}

// reliableStage runs everything except the non-reliable CNN for one image:
// the reliably executed portion (parallel wiring: the Sobel edge stage;
// bifurcated wiring: the DCNN prefix) and, when execution succeeds, the
// shape qualifier. It fills res.Stats/Bucket/Qualifier and, on a bucket
// trip, res.Decision/ExecErr. It returns the tensor the CNN stage should
// consume: the (possibly downsampled) input image (parallel — returned even
// after an execution failure, whose Result still reports the CNN's opinion)
// or the reliably computed feature map (bifurcated; nil after a failure,
// because the CNN cannot run without it). Qualifier wall time is booked
// into st.Qualifier so the caller can split it out of the stage total.
func (h *HybridNetwork) reliableStage(engine *reliable.Engine, img *tensor.Tensor, res *Result, st *StageTimes) (*tensor.Tensor, error) {
	if h.cfg.Wiring == WiringParallel {
		// Deterministic saliency preprocessing: traffic-sign faces are
		// saturated, so the colourfulness channel separates the sign from
		// grey background and clutter. It is a bounded per-pixel min/max
		// with no accumulation — the class of operation the paper's
		// qualifier is allowed to treat as deterministically verifiable.
		saliency := img
		if img.Rank() == 3 && img.Dim(0) == 3 {
			col, err := shape.Colorfulness(img)
			if err != nil {
				return nil, err
			}
			saliency, err = col.Reshape(1, col.Dim(0), col.Dim(1))
			if err != nil {
				return nil, err
			}
		}
		// Reliable edge stage on the full-resolution saliency channel.
		edges, execErr := reliable.Conv2D(engine, saliency, h.sobelBank, nil,
			reliable.ConvSpec{Stride: 1, Pad: h.cfg.SobelKernel / 2})
		res.Stats = engine.Stats()
		res.Bucket = engine.Bucket().Snapshot()

		cnnIn := img
		if h.cfg.DownsampleFactor > 1 {
			var err error
			cnnIn, err = BoxDownsample(img, h.cfg.DownsampleFactor)
			if err != nil {
				return nil, err
			}
		}
		if execErr != nil {
			if errors.Is(execErr, reliable.ErrBucketTripped) {
				res.Decision = DecisionExecutionFailed
				res.ExecErr = execErr
				return cnnIn, nil
			}
			return nil, execErr
		}
		qStart := time.Now()
		mag, err := EdgeMagnitudeFromChannels(edges, SobelPair{XIdx: 0, YIdx: 1})
		if err != nil {
			return nil, err
		}
		qres, err := h.qualifier.QualifyEdgeMap(mag)
		st.Qualifier += time.Since(qStart)
		if err != nil {
			return nil, fmt.Errorf("core: qualifier: %w", err)
		}
		res.Qualifier = qres
		return cnnIn, nil
	}

	// Bifurcated wiring: conv1 executes reliably; its output feeds both the
	// qualifier (via the Sobel channels) and the rest of the CNN.
	features, execErr := reliable.Conv2D(engine, img, h.conv1.Weight(), h.conv1.Bias().Data(),
		reliable.ConvSpec{Stride: h.conv1.Stride(), Pad: h.conv1.Pad()})
	res.Stats = engine.Stats()
	res.Bucket = engine.Bucket().Snapshot()
	if execErr != nil {
		if errors.Is(execErr, reliable.ErrBucketTripped) {
			res.Decision = DecisionExecutionFailed
			res.ExecErr = execErr
			return nil, nil
		}
		return nil, execErr
	}

	// Continue the reliable prefix beyond conv1 if configured (the
	// generalised DCNN), then hand over to the non-reliable CNN.
	tail := features
	if h.cfg.DCNNDepth > 1 {
		tail, execErr = ExecutePrefixFrom(engine, h.net, 1, h.cfg.DCNNDepth, features)
		res.Stats = engine.Stats()
		res.Bucket = engine.Bucket().Snapshot()
		if execErr != nil {
			if errors.Is(execErr, reliable.ErrBucketTripped) {
				res.Decision = DecisionExecutionFailed
				res.ExecErr = execErr
				return nil, nil
			}
			return nil, execErr
		}
	}

	// Qualifier path: edge magnitude from the reliably computed Sobel
	// channels of the SAME feature map the CNN consumes.
	qStart := time.Now()
	mag, err := EdgeMagnitudeFromChannels(features, h.cfg.Pair)
	if err != nil {
		return nil, err
	}
	qres, err := h.qualifier.QualifyEdgeMap(mag)
	st.Qualifier += time.Since(qStart)
	if err != nil {
		return nil, fmt.Errorf("core: qualifier: %w", err)
	}
	res.Qualifier = qres
	return tail, nil
}

// cnnStage runs the non-reliable CNN portion over the surviving images of a
// chunk — idxs[j] is the position of cnnIns[j] in results — filling
// class/confidence/probs and the Reliable Result decision. Multi-image
// chunks with one common shape pack into a single NCHW micro-batch (one
// GEMM per layer); single images and ragged shapes take the per-sample
// path, which computes identical logits.
func (h *HybridNetwork) cnnStage(ctx *nn.Context, cnnIns []*tensor.Tensor, idxs []int, results []Result) error {
	if len(cnnIns) == 0 {
		return nil
	}
	from := 0
	if h.cfg.Wiring == WiringBifurcated {
		from = h.cfg.DCNNDepth
	}
	sameShape := true
	for _, in := range cnnIns[1:] {
		if !in.SameShape(cnnIns[0]) {
			sameShape = false
			break
		}
	}
	if len(cnnIns) > 1 && sameShape {
		batch, err := tensor.Stack(cnnIns)
		if err != nil {
			return err
		}
		blogits, err := h.net.ForwardBatchFrom(ctx, from, batch)
		if err != nil {
			return fmt.Errorf("core: CNN path: %w", err)
		}
		for j, i := range idxs {
			logits, err := blogits.Sample(j)
			if err != nil {
				return err
			}
			if err := h.finishResult(logits, &results[i]); err != nil {
				return err
			}
		}
		return nil
	}
	for j, i := range idxs {
		logits, err := h.net.ForwardFrom(ctx, from, cnnIns[j])
		if err != nil {
			return fmt.Errorf("core: CNN path: %w", err)
		}
		if err := h.finishResult(logits, &results[i]); err != nil {
			return err
		}
	}
	return nil
}

// finishResult turns one logits row into class/confidence/probs and, unless
// the reliable stage already ruled (execution failure), the decision.
func (h *HybridNetwork) finishResult(logits *tensor.Tensor, res *Result) error {
	probs, class, err := nn.SoftmaxArgmax(logits)
	if err != nil {
		return err
	}
	res.Probs, res.Class, res.Confidence = probs, class, probs[class]
	if res.Decision != DecisionExecutionFailed {
		h.decide(res)
	}
	return nil
}

// ClassifyBatch classifies every image through a worker pool (workers <= 0
// defaults to GOMAXPROCS), returning results in input order. The CNN's
// weights are shared across workers; each worker owns its forward context
// and reliable engine, whose leaky bucket is reset between images so every
// inference gets the per-execution error-counter semantics of Classify.
// The pool is built per call; long-lived callers (serving layers) should
// hold a BatchClassifier instead.
func (h *HybridNetwork) ClassifyBatch(imgs []*tensor.Tensor, workers int) ([]Result, error) {
	c, err := h.NewBatchClassifier(workers)
	if err != nil {
		return nil, err
	}
	return c.ClassifyBatch(imgs)
}

// decide implements the Reliable Result block.
func (h *HybridNetwork) decide(res *Result) {
	required, critical := h.cfg.SafetyClasses[res.Class]
	if !critical {
		res.Decision = DecisionNotSafetyRelevant
		return
	}
	if res.Qualifier.Class == required {
		res.Decision = DecisionQualified
		return
	}
	res.Decision = DecisionRejected
}
