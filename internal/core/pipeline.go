package core

import "fmt"

// Pipeline selects how much of the hybrid classify pipeline one image runs.
// The serving tier maps service classes onto pipelines: guaranteed (and
// non-degraded budget) requests run PipelineFull, fast and degraded-budget
// requests run PipelineCNN. Mixed-pipeline micro-batches still coalesce
// into one GEMM per layer — fast images run the non-reliable prefix
// batched, then join the reliably computed feature maps in a single
// batched continuation — and the batch-width independence of the GEMM
// kernels keeps the full-pipeline riders' results bit-identical to a
// uniform batch.
type Pipeline uint8

const (
	// PipelineFull is the paper's hybrid: reliable stage + qualifier +
	// batched CNN, with per-execution bucket/counter semantics.
	PipelineFull Pipeline = iota
	// PipelineCNN runs the batched CNN only: no reliable execution, no
	// qualifier. The result carries a zero Qualifier, so safety-critical
	// classes come back DecisionRejected — a fast-pipeline answer is never
	// mistaken for a qualified one.
	PipelineCNN
)

// String implements fmt.Stringer.
func (p Pipeline) String() string {
	switch p {
	case PipelineFull:
		return "full"
	case PipelineCNN:
		return "cnn"
	default:
		return fmt.Sprintf("pipeline(%d)", int(p))
	}
}
