package sim

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"
	"time"

	"repro/internal/shard"
)

// TestScenarioValidate pins the scripting error paths.
func TestScenarioValidate(t *testing.T) {
	base := func() Scenario {
		return Scenario{
			Name: "ok", Seed: 1, Duration: time.Second,
			Arrivals: []Phase{{Until: time.Second, RPS: 10}},
			Shards:   []ShardScript{{Curve: []Segment{{Service: time.Millisecond}}}},
		}
	}
	if err := base().Validate(); err != nil {
		t.Fatalf("valid scenario rejected: %v", err)
	}
	for name, breakIt := range map[string]func(*Scenario){
		"no name":          func(s *Scenario) { s.Name = "" },
		"no duration":      func(s *Scenario) { s.Duration = 0 },
		"no arrivals":      func(s *Scenario) { s.Arrivals = nil },
		"no shards":        func(s *Scenario) { s.Shards = nil },
		"rps negative":     func(s *Scenario) { s.Arrivals[0].RPS = -1 },
		"until regression": func(s *Scenario) { s.Arrivals = append(s.Arrivals, Phase{Until: time.Millisecond}) },
		"empty curve":      func(s *Scenario) { s.Shards[0].Curve = nil },
		"zero service":     func(s *Scenario) { s.Shards[0].Curve[0].Service = 0 },
	} {
		sc := base()
		breakIt(&sc)
		if err := sc.Validate(); err == nil {
			t.Errorf("%s: validated", name)
		}
	}
}

// TestBuiltinsValid checks every CI scenario is runnable and the suite is
// big enough to mean something.
func TestBuiltinsValid(t *testing.T) {
	builtins := Builtins()
	if len(builtins) < 6 {
		t.Fatalf("want ≥ 6 builtin scenarios, have %d", len(builtins))
	}
	seen := map[string]bool{}
	for _, sc := range builtins {
		if err := sc.Validate(); err != nil {
			t.Errorf("builtin %s: %v", sc.Name, err)
		}
		if seen[sc.Name] {
			t.Errorf("duplicate builtin name %s", sc.Name)
		}
		seen[sc.Name] = true
		if got, err := Builtin(sc.Name); err != nil || got.Name != sc.Name {
			t.Errorf("Builtin(%s): %v", sc.Name, err)
		}
	}
	if _, err := Builtin("no-such-scenario"); err == nil {
		t.Error("Builtin(no-such-scenario) did not fail")
	}
}

// TestScenarioJSONRoundTrip: scenarios survive the file format loadgen
// replays from.
func TestScenarioJSONRoundTrip(t *testing.T) {
	for _, sc := range Builtins() {
		data, err := json.Marshal(sc)
		if err != nil {
			t.Fatalf("%s: marshal: %v", sc.Name, err)
		}
		var back Scenario
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("%s: unmarshal: %v", sc.Name, err)
		}
		again, err := json.Marshal(back)
		if err != nil {
			t.Fatalf("%s: re-marshal: %v", sc.Name, err)
		}
		if !bytes.Equal(data, again) {
			t.Errorf("%s: JSON round trip changed the scenario", sc.Name)
		}
	}
}

// TestDeterministic is the core guarantee: the same seed produces a
// byte-identical scenario report, twice, for every (scenario, policy).
func TestDeterministic(t *testing.T) {
	scenarios := Builtins()
	a, err := Matrix(scenarios, Policies())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Matrix(scenarios, Policies())
	if err != nil {
		t.Fatal(err)
	}
	ra, err := Report(a)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := Report(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ra, rb) {
		t.Fatal("same seeds produced different reports")
	}
}

// TestConservation: every arrival resolves to exactly one of completed or
// shed, and per-shard completions sum to the total.
func TestConservation(t *testing.T) {
	for _, sc := range Builtins() {
		for _, pol := range Policies() {
			r, err := Run(sc, pol)
			if err != nil {
				t.Fatalf("%s/%s: %v", sc.Name, pol, err)
			}
			if r.Arrivals == 0 || r.Completed == 0 {
				t.Errorf("%s/%s: empty run (arrivals=%d completed=%d)", sc.Name, pol, r.Arrivals, r.Completed)
			}
			if r.Completed+r.Shed != r.Arrivals {
				t.Errorf("%s/%s: completed %d + shed %d != arrivals %d", sc.Name, pol, r.Completed, r.Shed, r.Arrivals)
			}
			var sum uint64
			for _, c := range r.ShardCompleted {
				sum += c
			}
			if sum != r.Completed {
				t.Errorf("%s/%s: shard completions sum %d != completed %d", sc.Name, pol, sum, r.Completed)
			}
		}
	}
}

// TestMatrix prints the full comparison table (go test -v) and enforces
// the CI tail-latency gates:
//
//   - minmax p99 ≤ weighted-p2c p99 on the heterogeneous and adversarial
//     scenarios (the regression gate from the roadmap);
//   - capacity-aware policies beat blind p2c on the extreme heterogeneous
//     fleet, the sanity check that the simulator can tell policies apart.
func TestMatrix(t *testing.T) {
	comps, err := Matrix(Builtins(), Policies())
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range comps {
		for _, r := range c.Results {
			t.Logf("%-22s %-13s p50=%-8v p99=%-9v p999=%-9v shed=%-5d completed=%d",
				c.Scenario, r.Policy, r.P50.Round(time.Microsecond), r.P99.Round(time.Microsecond),
				r.P999.Round(time.Microsecond), r.Shed, r.Completed)
		}
	}
	gate := func(scenario string) {
		t.Helper()
		var comp *Comparison
		for i := range comps {
			if comps[i].Scenario == scenario {
				comp = &comps[i]
			}
		}
		if comp == nil {
			t.Fatalf("scenario %s missing from the matrix", scenario)
		}
		mm, ok1 := comp.Find(shard.PlacementMinMax)
		wp, ok2 := comp.Find(shard.PlacementWeightedP2C)
		if !ok1 || !ok2 {
			t.Fatalf("%s: policies missing from comparison", scenario)
		}
		if mm.P99 > wp.P99 {
			t.Errorf("%s: minmax p99 %v > weighted-p2c p99 %v", scenario, mm.P99, wp.P99)
		}
		if mm.Shed > wp.Shed {
			t.Errorf("%s: minmax shed %d > weighted-p2c shed %d", scenario, mm.Shed, wp.Shed)
		}
	}
	gate("heterogeneous")
	gate("heterogeneous-extreme")
	gate("adversarial-flap")
	gate("step-degradation")

	// Sanity: on the heterogeneous fleet, blind p2c must lose to both
	// capacity-aware policies — otherwise the simulator cannot
	// distinguish policies and the gates above are vacuous. (The extreme
	// fleet is the wrong place for this check: there the tail is set by
	// forced {slow,slow} sample pairs that pin the slow queues at cap
	// under every policy, so p99s converge.)
	for i := range comps {
		if comps[i].Scenario != "heterogeneous" {
			continue
		}
		p2c, _ := comps[i].Find(shard.PlacementP2C)
		mm, _ := comps[i].Find(shard.PlacementMinMax)
		wp, _ := comps[i].Find(shard.PlacementWeightedP2C)
		if p2c.P99 <= wp.P99 || p2c.P99 <= mm.P99 {
			t.Errorf("heterogeneous: p2c p99 %v should exceed weighted %v and minmax %v",
				p2c.P99, wp.P99, mm.P99)
		}
	}
}

// ExampleReport keeps the report shape stable for doc readers.
func ExampleReport() {
	sc := Scenario{
		Name: "tiny", Seed: 7, Duration: 500 * time.Millisecond,
		Arrivals: []Phase{{Until: 500 * time.Millisecond, RPS: 100}},
		Shards: []ShardScript{
			{Curve: []Segment{{Service: 2 * time.Millisecond}}},
			{Curve: []Segment{{Service: 2 * time.Millisecond}}},
		},
	}
	r, err := Run(sc, shard.PlacementMinMax)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(r.Scenario, r.Policy, r.Arrivals == r.Completed+r.Shed)
	// Output: tiny minmax true
}
