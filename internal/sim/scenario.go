// Package sim is the deterministic fleet simulator behind placement
// development: scripted fake shards (piecewise service-time curves — step
// changes, ramps, adversarial flapping, heterogeneous fleets), a seeded
// virtual clock, and the *real* placement code (shard.Placer, fed by the
// real serve.WeightTracker) driven through discrete-event simulation. A
// full multi-second scenario runs in milliseconds of wall time, so
// head-to-head policy comparisons (p50/p99/p999 from the real mergeable
// histograms) run in CI on every build, and the same seed always produces
// a byte-identical report.
//
// The model mirrors the router faithfully where it matters for placement
// and stays simple everywhere else: each fake shard is a single-server
// FIFO queue with an admission bound; the simulated router sees each
// shard's live outstanding count (its own inflight bookkeeping) but only
// probe-stale service-time and advertised-weight signals, refreshed every
// ProbeInterval like the real health loop; a request refused by a full
// shard gets exactly one failover attempt before it is shed, like
// handleClassify.
package sim

import (
	"encoding/json"
	"fmt"
	"os"
	"time"
)

// Scenario scripts one simulated run: an arrival schedule against a fleet
// of scripted shards. Scenarios are plain JSON (durations in nanoseconds)
// so the same files drive the simulator and `loadgen -scenario` replays
// against a real fleet.
type Scenario struct {
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`
	// Seed feeds every random stream of the run (arrival spacing, service
	// jitter, the placer's two-choices sampling). Same seed, same report.
	Seed int64 `json:"seed"`
	// Duration is how long arrivals keep coming; in-flight requests drain
	// past it.
	Duration time.Duration `json:"duration_ns"`
	// Warmup excludes requests arriving before this offset from the
	// latency histogram (they are still simulated and still count in the
	// arrival/shed totals): placement comparisons measure steady-state
	// behaviour, not the cold start where no shard has a service estimate
	// yet and every policy is equally blind.
	Warmup time.Duration `json:"warmup_ns,omitempty"`
	// ProbeInterval is the simulated health-probe period: how often the
	// router's view of service time and advertised weight refreshes.
	// 0 selects 250ms, the router default.
	ProbeInterval time.Duration `json:"probe_interval_ns,omitempty"`
	// Arrivals is the piecewise-constant arrival schedule: phase i applies
	// until its Until offset. Arrival spacing within a phase is
	// exponential (Poisson) from the seeded stream.
	Arrivals []Phase `json:"arrivals"`
	// Shards scripts the fleet.
	Shards []ShardScript `json:"shards"`
}

// Phase is one arrival-schedule segment: RPS applies until Until.
type Phase struct {
	Until time.Duration `json:"until_ns"`
	RPS   float64       `json:"rps"`
}

// ShardScript scripts one fake shard.
type ShardScript struct {
	// Weight is the static placement weight (0 = 1).
	Weight float64 `json:"weight,omitempty"`
	// QueueCap bounds outstanding requests (in service + waiting); an
	// arrival beyond it is refused, mirroring worker admission control.
	// 0 selects 32.
	QueueCap int `json:"queue_cap,omitempty"`
	// Curve is the piecewise-constant service-time script: segment i's
	// Service applies until its Until offset; the last segment extends to
	// the end of the run. Service jitter (±10%, seeded) is applied on top.
	Curve []Segment `json:"curve"`
}

// Segment is one service-time segment.
type Segment struct {
	Until   time.Duration `json:"until_ns"`
	Service time.Duration `json:"service_ns"`
}

// serviceAt returns the scripted base service time at offset t.
func (s ShardScript) serviceAt(t time.Duration) time.Duration {
	for _, seg := range s.Curve {
		if t < seg.Until {
			return seg.Service
		}
	}
	if len(s.Curve) == 0 {
		return time.Millisecond
	}
	return s.Curve[len(s.Curve)-1].Service
}

// RPSAt returns the scripted arrival rate at offset t, and the offset at
// which the current phase ends (Duration if t is past every phase).
// Exported so `loadgen -scenario` replays the same schedule against a real
// fleet.
func (sc Scenario) RPSAt(t time.Duration) (float64, time.Duration) {
	for _, p := range sc.Arrivals {
		if t < p.Until {
			return p.RPS, p.Until
		}
	}
	return 0, sc.Duration
}

// Validate checks a scenario is runnable.
func (sc Scenario) Validate() error {
	if sc.Name == "" {
		return fmt.Errorf("sim: scenario needs a name")
	}
	if sc.Duration <= 0 {
		return fmt.Errorf("sim: scenario %s: duration must be > 0", sc.Name)
	}
	if sc.Warmup < 0 || sc.Warmup >= sc.Duration {
		return fmt.Errorf("sim: scenario %s: warmup %v outside [0, duration)", sc.Name, sc.Warmup)
	}
	if len(sc.Arrivals) == 0 {
		return fmt.Errorf("sim: scenario %s: needs at least one arrival phase", sc.Name)
	}
	if len(sc.Shards) == 0 {
		return fmt.Errorf("sim: scenario %s: needs at least one shard", sc.Name)
	}
	last := time.Duration(0)
	for i, p := range sc.Arrivals {
		if p.Until <= last {
			return fmt.Errorf("sim: scenario %s: arrival phase %d: until %v not increasing", sc.Name, i, p.Until)
		}
		if p.RPS < 0 {
			return fmt.Errorf("sim: scenario %s: arrival phase %d: negative rps", sc.Name, i)
		}
		last = p.Until
	}
	for i, sh := range sc.Shards {
		if len(sh.Curve) == 0 {
			return fmt.Errorf("sim: scenario %s: shard %d: empty service curve", sc.Name, i)
		}
		if sh.Weight < 0 || sh.QueueCap < 0 {
			return fmt.Errorf("sim: scenario %s: shard %d: negative weight or queue cap", sc.Name, i)
		}
		for j, seg := range sh.Curve {
			if seg.Service <= 0 {
				return fmt.Errorf("sim: scenario %s: shard %d segment %d: service must be > 0", sc.Name, i, j)
			}
		}
	}
	return nil
}

// LoadScenario reads a Scenario from a JSON file.
func LoadScenario(path string) (Scenario, error) {
	var sc Scenario
	data, err := os.ReadFile(path)
	if err != nil {
		return sc, err
	}
	if err := json.Unmarshal(data, &sc); err != nil {
		return sc, fmt.Errorf("sim: parse %s: %w", path, err)
	}
	return sc, sc.Validate()
}

// Builtin returns the named builtin scenario.
func Builtin(name string) (Scenario, error) {
	for _, sc := range Builtins() {
		if sc.Name == name {
			return sc, nil
		}
	}
	return Scenario{}, fmt.Errorf("sim: no builtin scenario %q (have %s)", name, builtinNames())
}

func builtinNames() string {
	names := ""
	for i, sc := range Builtins() {
		if i > 0 {
			names += ", "
		}
		names += sc.Name
	}
	return names
}

// ms is a readability helper for the builtin scripts.
func ms(n float64) time.Duration { return time.Duration(n * float64(time.Millisecond)) }

// Builtins is the CI scenario suite: the fleet shapes placement has to
// survive. Each run lasts a few simulated seconds and executes in
// milliseconds.
func Builtins() []Scenario {
	sec := time.Second
	return []Scenario{
		{
			Name:        "uniform",
			Description: "4 identical shards at moderate load; any sane policy ties here",
			Seed:        1, Duration: 8 * sec, Warmup: 2 * sec,
			Arrivals: []Phase{{Until: 8 * sec, RPS: 400}},
			Shards: []ShardScript{
				{Curve: []Segment{{Service: ms(5)}}},
				{Curve: []Segment{{Service: ms(5)}}},
				{Curve: []Segment{{Service: ms(5)}}},
				{Curve: []Segment{{Service: ms(5)}}},
			},
		},
		{
			Name:        "heterogeneous",
			Description: "2×fast + 1×medium + 1×slow near saturation; capacity-blind placement queues on the slow shard",
			Seed:        1, Duration: 8 * sec, Warmup: 2 * sec,
			Arrivals: []Phase{{Until: 8 * sec, RPS: 450}},
			Shards: []ShardScript{
				{Curve: []Segment{{Service: ms(3)}}},
				{Curve: []Segment{{Service: ms(3)}}},
				{Curve: []Segment{{Service: ms(6)}}},
				{Curve: []Segment{{Service: ms(20)}}},
			},
		},
		{
			Name:        "heterogeneous-extreme",
			Description: "2×1ms + 2×25ms: a 25× capacity spread, sustained",
			Seed:        1, Duration: 8 * sec, Warmup: 2 * sec,
			Arrivals: []Phase{{Until: 8 * sec, RPS: 1200}},
			Shards: []ShardScript{
				{Curve: []Segment{{Service: ms(1)}}},
				{Curve: []Segment{{Service: ms(1)}}},
				{Curve: []Segment{{Service: ms(25)}}},
				{Curve: []Segment{{Service: ms(25)}}},
			},
		},
		{
			Name:        "step-degradation",
			Description: "one of 4 shards degrades 10× for the middle third, then recovers",
			Seed:        1, Duration: 9 * sec, Warmup: 2 * sec,
			Arrivals: []Phase{{Until: 9 * sec, RPS: 500}},
			Shards: []ShardScript{
				{Curve: []Segment{{Until: 3 * sec, Service: ms(4)}, {Until: 6 * sec, Service: ms(40)}, {Service: ms(4)}}},
				{Curve: []Segment{{Service: ms(4)}}},
				{Curve: []Segment{{Service: ms(4)}}},
				{Curve: []Segment{{Service: ms(4)}}},
			},
		},
		{
			Name:        "adversarial-flap",
			Description: "one shard flaps 2ms↔30ms every 750ms — stale signals chase it; another is steadily slow",
			Seed:        1, Duration: 9 * sec, Warmup: 2 * sec,
			Arrivals: []Phase{{Until: 9 * sec, RPS: 450}},
			Shards: []ShardScript{
				{Curve: flapCurve(9*sec, 750*time.Millisecond, ms(2), ms(30))},
				{Curve: []Segment{{Service: ms(10)}}},
				{Curve: []Segment{{Service: ms(4)}}},
				{Curve: []Segment{{Service: ms(4)}}},
			},
		},
		{
			Name:        "ramp",
			Description: "one shard ramps 3ms→30ms in 9 steps while the rest hold; gradual drift, no clean step to latch onto",
			Seed:        1, Duration: 9 * sec, Warmup: 2 * sec,
			Arrivals: []Phase{{Until: 9 * sec, RPS: 450}},
			Shards: []ShardScript{
				{Curve: rampCurve(9*sec, 9, ms(3), ms(30))},
				{Curve: []Segment{{Service: ms(4)}}},
				{Curve: []Segment{{Service: ms(4)}}},
				{Curve: []Segment{{Service: ms(4)}}},
			},
		},
		{
			Name:        "overload-burst",
			Description: "heterogeneous fleet hit by a 2.5s burst beyond fleet capacity; shedding and recovery behaviour",
			Seed:        1, Duration: 9 * sec, Warmup: 2 * sec,
			Arrivals: []Phase{
				{Until: 3 * sec, RPS: 300},
				{Until: 5500 * time.Millisecond, RPS: 1100},
				{Until: 9 * sec, RPS: 300},
			},
			Shards: []ShardScript{
				{Curve: []Segment{{Service: ms(3)}}},
				{Curve: []Segment{{Service: ms(3)}}},
				{Curve: []Segment{{Service: ms(8)}}},
				{Curve: []Segment{{Service: ms(8)}}},
			},
		},
	}
}

// flapCurve scripts a square wave between lo and hi with the given half
// period, long enough to cover total.
func flapCurve(total, half time.Duration, lo, hi time.Duration) []Segment {
	var segs []Segment
	svc := lo
	for at := half; at < total+half; at += half {
		segs = append(segs, Segment{Until: at, Service: svc})
		if svc == lo {
			svc = hi
		} else {
			svc = lo
		}
	}
	return segs
}

// rampCurve scripts a staircase from lo to hi in steps equal segments.
func rampCurve(total time.Duration, steps int, lo, hi time.Duration) []Segment {
	segs := make([]Segment, steps)
	for i := 0; i < steps; i++ {
		frac := float64(i) / float64(steps-1)
		segs[i] = Segment{
			Until:   total * time.Duration(i+1) / time.Duration(steps),
			Service: lo + time.Duration(frac*float64(hi-lo)),
		}
	}
	return segs
}
