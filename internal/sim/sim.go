package sim

import (
	"container/heap"
	"encoding/json"
	"math/rand"
	"time"

	"repro/internal/serve"
	"repro/internal/shard"
)

// Result is one (scenario, policy) run's report. All latency fields come
// from a serve.Histogram over completed requests — the same mergeable
// log-bucketed histogram the serving plane reports — so simulated and
// production quantiles share bucket semantics. Runs are deterministic:
// same scenario, same policy → a byte-identical marshaled Result.
type Result struct {
	Scenario string `json:"scenario"`
	Policy   string `json:"policy"`

	Arrivals  uint64 `json:"arrivals"`  // requests offered to the fleet
	Completed uint64 `json:"completed"` // served
	Shed      uint64 `json:"shed"`      // refused by both attempts
	Failovers uint64 `json:"failovers"` // saved by the second attempt

	P50  time.Duration `json:"p50_ns"`
	P99  time.Duration `json:"p99_ns"`
	P999 time.Duration `json:"p999_ns"`
	Max  time.Duration `json:"max_ns"`

	// ShardCompleted is the per-shard completion split — how the policy
	// actually spread the work.
	ShardCompleted []uint64 `json:"shard_completed"`
}

// event kinds, processed in (at, seq) order so simultaneous events keep
// their scheduling order and every run replays identically.
const (
	evArrival = iota
	evDeparture
	evProbe
)

type event struct {
	at    time.Duration
	seq   uint64
	kind  int
	shard int           // evDeparture: which shard finishes its head request
	enq   time.Duration // evDeparture: when the finishing request arrived
	svc   time.Duration // evDeparture: the request's drawn service time
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// simShard is one scripted fake worker: a single-server FIFO queue with
// an admission bound, a per-completion service-time EWMA (α=1/8, exactly
// statsState.batchDone), and the real serve.WeightTracker computing its
// advertised min-max weight. The wrapping simulation keeps the router's
// view of serviceEWMA/advertised weight probe-stale.
type simShard struct {
	id     int
	script ShardScript
	cap    int

	waiting []time.Duration // admission times of queued (not in service) requests
	busy    bool
	ewma    time.Duration // per-request service EWMA, the worker-local estimate

	submitted, rejected uint64 // cumulative, for the tracker's shed-rate delta
	completed           uint64
	tracker             *serve.WeightTracker

	// The router's probe-stale view, refreshed at probe events.
	probedService int64
	probedAdvW    float64
}

// outstanding is what the simulated router has in flight to this shard:
// queued plus in-service. This is live (the router's own bookkeeping),
// unlike the probed signals.
func (s *simShard) outstanding() int64 {
	n := int64(len(s.waiting))
	if s.busy {
		n++
	}
	return n
}

// admit tries to accept a request arriving at now; reports success.
func (s *simShard) admit(now time.Duration) bool {
	if s.outstanding() >= int64(s.cap) {
		s.rejected++
		return false
	}
	s.submitted++
	s.waiting = append(s.waiting, now)
	return true
}

// observe folds one completed request's service time into the worker-local
// EWMA, mirroring statsState.batchDone for batch size 1.
func (s *simShard) observe(svc time.Duration) {
	if s.ewma == 0 {
		s.ewma = svc
	} else {
		s.ewma += (svc - s.ewma) / 8
	}
}

func (s *simShard) candidate() shard.Candidate {
	return shard.Candidate{
		ID:               s.id,
		StaticWeight:     s.script.Weight,
		Load:             s.outstanding(),
		Service:          s.probedService,
		AdvertisedWeight: s.probedAdvW,
	}
}

// Run simulates one scenario under one placement policy and returns its
// report. The virtual clock is a Duration offset from a fixed epoch; no
// wall-clock reads happen anywhere, so a (scenario, policy) pair always
// produces the identical Result.
func Run(sc Scenario, policy string) (Result, error) {
	if err := sc.Validate(); err != nil {
		return Result{}, err
	}
	placer, err := shard.NewPlacer(policy, shard.PlacerOptions{
		Seed: sc.Seed,
		// The weighted policy runs with its service-time term on — the
		// strongest baseline; p2c ignores it, minmax falls back to it.
		AdaptiveWeights: true,
	})
	if err != nil {
		return Result{}, err
	}
	probeEvery := sc.ProbeInterval
	if probeEvery == 0 {
		probeEvery = 250 * time.Millisecond
	}
	epoch := time.Unix(0, 0).UTC() // WeightTracker timestamps, virtual

	shards := make([]*simShard, len(sc.Shards))
	for i, script := range sc.Shards {
		if script.Weight == 0 {
			script.Weight = 1
		}
		capacity := script.QueueCap
		if capacity == 0 {
			capacity = 32
		}
		shards[i] = &simShard{
			id: i, script: script, cap: capacity,
			tracker: serve.NewWeightTracker(serve.WeightConfig{}),
		}
	}

	// Independent seeded streams so arrival spacing, service jitter and
	// the placer's sampling cannot perturb each other across policies.
	arrivalRng := rand.New(rand.NewSource(sc.Seed + 1))
	serviceRng := rand.New(rand.NewSource(sc.Seed + 2))

	res := Result{Scenario: sc.Name, Policy: placer.Name()}
	lat := serve.NewHistogram()

	var events eventHeap
	var seq uint64
	push := func(e event) {
		seq++
		e.seq = seq
		heap.Push(&events, e)
	}

	// scheduleArrival books the next arrival at or after t: exponential
	// spacing at the phase's rate, skipping zero-rate phases.
	var scheduleArrival func(t time.Duration)
	scheduleArrival = func(t time.Duration) {
		for t < sc.Duration {
			rps, phaseEnd := sc.RPSAt(t)
			if rps <= 0 {
				t = phaseEnd
				continue
			}
			gap := time.Duration(arrivalRng.ExpFloat64() / rps * float64(time.Second))
			next := t + gap
			if next >= sc.Duration {
				return
			}
			// A gap crossing into the next phase is re-drawn from the
			// boundary at the new rate — close enough to an inhomogeneous
			// Poisson process for scripting purposes, and deterministic.
			if next > phaseEnd {
				t = phaseEnd
				continue
			}
			push(event{at: next, kind: evArrival})
			return
		}
	}

	// startService begins serving the shard's queue head, drawing the
	// scripted service time at start-of-service with ±10% seeded jitter.
	startService := func(s *simShard, now time.Duration) {
		enq := s.waiting[0]
		s.waiting = s.waiting[1:]
		s.busy = true
		svc := s.script.serviceAt(now)
		jitter := 0.9 + 0.2*serviceRng.Float64()
		svc = time.Duration(float64(svc) * jitter)
		if svc <= 0 {
			svc = time.Nanosecond
		}
		push(event{at: now + svc, kind: evDeparture, shard: s.id, enq: enq, svc: svc})
	}

	// probe refreshes the router's stale view of every shard, driving the
	// real WeightTracker with the worker-local signals — exactly what a
	// /healthz probe round does to Scheduler.Stats().
	probe := func(now time.Duration) {
		for _, s := range shards {
			s.probedService = int64(s.ewma)
			s.probedAdvW = s.tracker.Observe(epoch.Add(now), serve.WeightSignals{
				Service:    s.ewma,
				QueueDepth: len(s.waiting),
				QueueCap:   s.cap,
				Submitted:  s.submitted,
				Rejected:   s.rejected,
			})
		}
	}

	// place picks a target like Router.pick: every sim shard is healthy,
	// so the routable set is the fleet minus the failed first attempt.
	place := func(exclude int) *simShard {
		cands := make([]shard.Candidate, 0, len(shards))
		idx := make([]int, 0, len(shards))
		for _, s := range shards {
			if s.id == exclude {
				continue
			}
			cands = append(cands, s.candidate())
			idx = append(idx, s.id)
		}
		if len(cands) == 0 {
			return nil
		}
		return shards[idx[placer.Pick(cands)]]
	}

	probe(0) // the router probes before serving, like WaitReady
	push(event{at: probeEvery, kind: evProbe})
	scheduleArrival(0)

	for events.Len() > 0 {
		e := heap.Pop(&events).(event)
		switch e.kind {
		case evProbe:
			probe(e.at)
			if e.at < sc.Duration {
				push(event{at: e.at + probeEvery, kind: evProbe})
			}
		case evArrival:
			res.Arrivals++
			first := place(-1)
			target := first
			if !first.admit(e.at) {
				// One failover, mirroring handleClassify: a refused
				// arrival gets a second pick excluding the full shard.
				target = nil
				if second := place(first.id); second != nil && second.admit(e.at) {
					res.Failovers++
					target = second
				}
			}
			if target == nil {
				res.Shed++
			} else if !target.busy {
				startService(target, e.at)
			}
			scheduleArrival(e.at)
		case evDeparture:
			s := shards[e.shard]
			s.busy = false
			s.completed++
			res.Completed++
			if e.enq >= sc.Warmup {
				lat.Observe(e.at - e.enq)
			}
			s.observe(e.svc) // the worker measures its own actual speed
			if len(s.waiting) > 0 {
				startService(s, e.at)
			}
		}
	}

	if lat.Count() > 0 {
		res.P50 = lat.Quantile(0.50)
		res.P99 = lat.Quantile(0.99)
		res.P999 = lat.Quantile(0.999)
		res.Max = lat.Max()
	}
	res.ShardCompleted = make([]uint64, len(shards))
	for i, s := range shards {
		res.ShardCompleted[i] = s.completed
	}
	return res, nil
}

// Comparison is one scenario's head-to-head policy results.
type Comparison struct {
	Scenario    string   `json:"scenario"`
	Description string   `json:"description,omitempty"`
	Results     []Result `json:"results"`
}

// Policies is the comparison set every scenario runs under.
func Policies() []string {
	return []string{shard.PlacementP2C, shard.PlacementWeightedP2C, shard.PlacementMinMax}
}

// Matrix runs every scenario under every policy: the CI comparison table.
func Matrix(scenarios []Scenario, policies []string) ([]Comparison, error) {
	comps := make([]Comparison, 0, len(scenarios))
	for _, sc := range scenarios {
		comp := Comparison{Scenario: sc.Name, Description: sc.Description}
		for _, pol := range policies {
			r, err := Run(sc, pol)
			if err != nil {
				return nil, err
			}
			comp.Results = append(comp.Results, r)
		}
		comps = append(comps, comp)
	}
	return comps, nil
}

// Report marshals comparisons deterministically (indented JSON): the
// byte-identical scenario report the determinism guarantee is stated over.
func Report(comps []Comparison) ([]byte, error) {
	return json.MarshalIndent(comps, "", "  ")
}

// Find returns the named policy's result within a comparison.
func (c Comparison) Find(policy string) (Result, bool) {
	for _, r := range c.Results {
		if r.Policy == policy {
			return r, true
		}
	}
	return Result{}, false
}
