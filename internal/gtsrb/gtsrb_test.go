package gtsrb

import (
	"bytes"
	"io"
	"math"
	"math/rand"
	"testing"

	"repro/internal/shape"
	"repro/internal/tensor"
)

func TestStandardClasses(t *testing.T) {
	classes := StandardClasses()
	if len(classes) != 6 {
		t.Fatalf("want 6 classes, got %d", len(classes))
	}
	if classes[StopClass].Name != "stop" || classes[StopClass].Shape != ShapeOctagon {
		t.Error("StopClass must be the red octagon")
	}
	seen := map[string]bool{}
	for _, c := range classes {
		if c.Name == "" {
			t.Error("class with empty name")
		}
		if seen[c.Name] {
			t.Errorf("duplicate class name %q", c.Name)
		}
		seen[c.Name] = true
	}
}

func TestSignShapeString(t *testing.T) {
	for _, s := range []SignShape{ShapeOctagon, ShapeTriangleDown, ShapeTriangleUp, ShapeCircle, ShapeSquare, SignShape(99)} {
		if s.String() == "" {
			t.Error("empty shape string")
		}
	}
}

func TestRenderBasics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := SignParams{
		Shape: ShapeOctagon, Fill: RGB{0.8, 0.1, 0.1}, Size: 32,
		CenterX: 16, CenterY: 16, Radius: 12,
		Background: 0.1, NoiseSigma: 0, Brightness: 1,
	}
	img, err := Render(p, rng)
	if err != nil {
		t.Fatal(err)
	}
	if img.Dim(0) != 3 || img.Dim(1) != 32 || img.Dim(2) != 32 {
		t.Fatalf("image shape %v", img.Shape())
	}
	// Centre pixel is sign-coloured, corner is background.
	if math.Abs(float64(img.At3(0, 16, 16))-0.8) > 1e-5 {
		t.Errorf("centre red = %v, want 0.8", img.At3(0, 16, 16))
	}
	if math.Abs(float64(img.At3(0, 0, 0))-0.1) > 1e-5 {
		t.Errorf("corner = %v, want background 0.1", img.At3(0, 0, 0))
	}
	// All values in [0,1].
	for _, v := range img.Data() {
		if v < 0 || v > 1 {
			t.Fatalf("pixel %v out of range", v)
		}
	}
}

func TestRenderValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	good := SignParams{Shape: ShapeCircle, Size: 32, CenterX: 16, CenterY: 16, Radius: 10}
	if _, err := Render(good, nil); err == nil {
		t.Error("nil rng should fail")
	}
	bad := good
	bad.Size = 4
	if _, err := Render(bad, rng); err == nil {
		t.Error("tiny size should fail")
	}
	bad = good
	bad.Radius = 0
	if _, err := Render(bad, rng); err == nil {
		t.Error("zero radius should fail")
	}
	bad = good
	bad.Shape = SignShape(0)
	if _, err := Render(bad, rng); err == nil {
		t.Error("unknown shape should fail")
	}
}

func TestRenderDeterministic(t *testing.T) {
	p := SignParams{
		Shape: ShapeSquare, Fill: RGB{0.2, 0.3, 0.9}, Size: 24,
		CenterX: 12, CenterY: 12, Radius: 8,
		Background: 0.15, NoiseSigma: 0.02, Brightness: 1, Clutter: 2,
	}
	a, err := Render(p, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Render(p, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Error("same seed must render identical images")
	}
}

func TestRenderedShapesQualify(t *testing.T) {
	// The rendered signs must be recognisable by the deterministic shape
	// qualifier — this is the contract the hybrid architecture rests on.
	q, err := shape.NewQualifier(shape.DefaultQualifierConfig())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	cases := []struct {
		sp   SignShape
		want shape.Class
	}{
		{ShapeOctagon, shape.ClassOctagon},
		{ShapeTriangleDown, shape.ClassTriangle},
		{ShapeTriangleUp, shape.ClassTriangle},
		{ShapeSquare, shape.ClassSquare},
		{ShapeCircle, shape.ClassCircle},
	}
	for _, c := range cases {
		p := SignParams{
			Shape: c.sp, Fill: RGB{0.85, 0.1, 0.1}, Size: 96,
			CenterX: 48, CenterY: 48, Radius: 38,
			Rotation: 0.1, Background: 0.1, NoiseSigma: 0.005, Brightness: 1,
		}
		img, err := Render(p, rng)
		if err != nil {
			t.Fatal(err)
		}
		res, err := q.QualifyImage(img)
		if err != nil {
			t.Fatalf("%v: %v", c.sp, err)
		}
		if res.Class != c.want {
			t.Errorf("%v qualified as %v (peaks=%d round=%.3f dist=%.2f), want %v",
				c.sp, res.Class, res.Peaks, res.Round, res.WordDist, c.want)
		}
	}
}

func TestAngledStopSignQualifiesAsOctagon(t *testing.T) {
	// Figure 3's subject: a slightly angled stop sign still shows eight
	// corners.
	img, err := AngledStopSign(96, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	q, _ := shape.NewQualifier(shape.DefaultQualifierConfig())
	res, err := q.QualifyImage(img)
	if err != nil {
		t.Fatal(err)
	}
	if res.Class != shape.ClassOctagon {
		t.Errorf("angled stop sign = %v (peaks=%d round=%.3f dist=%.2f), want octagon",
			res.Class, res.Peaks, res.Round, res.WordDist)
	}
	if res.Peaks != 8 {
		t.Errorf("peaks = %d, want 8 (\"the eight corners can be clearly identified\")", res.Peaks)
	}
	if _, err := AngledStopSign(96, nil); err == nil {
		t.Error("nil rng should fail")
	}
}

func TestConfigNormalize(t *testing.T) {
	cfg, err := Config{}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Size != 32 || cfg.PerClass != 40 {
		t.Errorf("defaults wrong: %+v", cfg)
	}
	if _, err := (Config{Size: 4}).Normalize(); err == nil {
		t.Error("tiny size should fail")
	}
	if _, err := (Config{PerClass: -1}).Normalize(); err == nil {
		t.Error("negative per-class should fail")
	}
	if _, err := (Config{ScaleMin: 0.9, ScaleMax: 0.5}).Normalize(); err == nil {
		t.Error("inverted scale range should fail")
	}
}

func TestGenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ds, err := Generate(Config{Size: 24, PerClass: 5}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 30 {
		t.Fatalf("len = %d, want 30", ds.Len())
	}
	if ds.NumClasses() != 6 {
		t.Fatalf("classes = %d", ds.NumClasses())
	}
	counts := ds.CountByLabel()
	for label, n := range counts {
		if n != 5 {
			t.Errorf("class %d has %d examples, want 5", label, n)
		}
	}
	for _, ex := range ds.Examples {
		if ex.Image.Dim(1) != 24 {
			t.Fatalf("example image size %v", ex.Image.Shape())
		}
		if ex.Label < 0 || ex.Label > 5 {
			t.Fatalf("label %d out of range", ex.Label)
		}
	}
	if _, err := Generate(Config{}, nil); err == nil {
		t.Error("nil rng should fail")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(Config{Size: 16, PerClass: 2}, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(Config{Size: 16, PerClass: 2}, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Examples {
		if a.Examples[i].Label != b.Examples[i].Label {
			t.Fatal("labels differ across identical seeds")
		}
		if !a.Examples[i].Image.Equal(b.Examples[i].Image) {
			t.Fatal("images differ across identical seeds")
		}
	}
}

func TestSplit(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	ds, err := Generate(Config{Size: 16, PerClass: 5}, rng)
	if err != nil {
		t.Fatal(err)
	}
	train, test, err := ds.Split(0.8)
	if err != nil {
		t.Fatal(err)
	}
	if train.Len() != 24 || test.Len() != 6 {
		t.Errorf("split sizes %d/%d, want 24/6", train.Len(), test.Len())
	}
	if _, _, err := ds.Split(0); err == nil {
		t.Error("frac 0 should fail")
	}
	if _, _, err := ds.Split(1); err == nil {
		t.Error("frac 1 should fail")
	}
}

func TestRandomParamsWithinBounds(t *testing.T) {
	cfg, _ := Config{Size: 32}.Normalize()
	rng := rand.New(rand.NewSource(8))
	spec := StandardClasses()[0]
	for i := 0; i < 100; i++ {
		p := RandomParams(cfg, spec, rng)
		if p.Radius <= 0 || p.Radius > float64(cfg.Size)/2 {
			t.Fatalf("radius %v out of bounds", p.Radius)
		}
		if p.Tilt < 0 || p.Tilt > cfg.TiltMax {
			t.Fatalf("tilt %v out of bounds", p.Tilt)
		}
		if math.Abs(p.Rotation) > cfg.RotJitter {
			t.Fatalf("rotation %v out of bounds", p.Rotation)
		}
		if err := p.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestPNGRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	img, err := AngledStopSign(32, rng)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WritePNG(img, &buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadPNG(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !back.SameShape(img) {
		t.Fatalf("round-trip shape %v != %v", back.Shape(), img.Shape())
	}
	// 8-bit quantisation: within 1/255 plus rounding.
	if !img.AllClose(back, 1.0/255+1e-4) {
		d, _ := img.MaxAbsDiff(back)
		t.Errorf("round-trip error %v exceeds quantisation bound", d)
	}
}

func TestPNGValidation(t *testing.T) {
	if err := WritePNG(tensor.MustNew(2, 4, 4), io.Discard); err == nil {
		t.Error("2-channel tensor should fail")
	}
	if _, err := ToImage(tensor.MustNew(4)); err == nil {
		t.Error("rank-1 tensor should fail")
	}
	if _, err := ReadPNG(bytes.NewReader([]byte("not a png"))); err == nil {
		t.Error("garbage PNG should fail")
	}
	if _, err := FromImage(nil); err == nil {
		t.Error("nil image should fail")
	}
}
