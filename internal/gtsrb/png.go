package gtsrb

import (
	"fmt"
	"image"
	"image/color"
	"image/png"
	"io"

	"repro/internal/tensor"
)

// ToImage converts a 3×H×W tensor with values in [0,1] to an image.Image
// (values are clamped).
func ToImage(img *tensor.Tensor) (image.Image, error) {
	if img.Rank() != 3 || img.Dim(0) != 3 {
		return nil, fmt.Errorf("gtsrb: ToImage needs a 3×H×W tensor, got %v", img.Shape())
	}
	h, w := img.Dim(1), img.Dim(2)
	out := image.NewRGBA(image.Rect(0, 0, w, h))
	to8 := func(v float32) uint8 {
		if v < 0 {
			v = 0
		}
		if v > 1 {
			v = 1
		}
		return uint8(v*255 + 0.5)
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			out.SetRGBA(x, y, color.RGBA{
				R: to8(img.At3(0, y, x)),
				G: to8(img.At3(1, y, x)),
				B: to8(img.At3(2, y, x)),
				A: 255,
			})
		}
	}
	return out, nil
}

// WritePNG encodes a 3×H×W tensor as PNG.
func WritePNG(img *tensor.Tensor, w io.Writer) error {
	im, err := ToImage(img)
	if err != nil {
		return err
	}
	if err := png.Encode(w, im); err != nil {
		return fmt.Errorf("gtsrb: png encode: %w", err)
	}
	return nil
}

// FromImage converts an image.Image to a 3×H×W tensor with values in [0,1],
// so externally supplied pictures can be pushed through the hybrid pipeline.
func FromImage(im image.Image) (*tensor.Tensor, error) {
	if im == nil {
		return nil, fmt.Errorf("gtsrb: FromImage needs an image")
	}
	b := im.Bounds()
	h, w := b.Dy(), b.Dx()
	if h < 1 || w < 1 {
		return nil, fmt.Errorf("gtsrb: empty image bounds %v", b)
	}
	out, err := tensor.New(3, h, w)
	if err != nil {
		return nil, err
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			r, g, bl, _ := im.At(b.Min.X+x, b.Min.Y+y).RGBA()
			out.Set3(float32(r)/0xFFFF, 0, y, x)
			out.Set3(float32(g)/0xFFFF, 1, y, x)
			out.Set3(float32(bl)/0xFFFF, 2, y, x)
		}
	}
	return out, nil
}

// ReadPNG decodes a PNG into a 3×H×W tensor.
func ReadPNG(r io.Reader) (*tensor.Tensor, error) {
	im, err := png.Decode(r)
	if err != nil {
		return nil, fmt.Errorf("gtsrb: png decode: %w", err)
	}
	return FromImage(im)
}
