package gtsrb

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/tensor"
)

// ClassSpec ties a label to its geometry and colour. The six classes mirror
// the sign families of GTSRB that the paper's running example draws on; the
// "Stop" class is the safety-critical one, and "Parking" is the paper's
// example of a classification that needs no qualification.
type ClassSpec struct {
	Name  string
	Shape SignShape
	Fill  RGB
}

// StandardClasses returns the six-class taxonomy used by all experiments.
// Index 0 is the "Stop" class throughout the repository.
func StandardClasses() []ClassSpec {
	return []ClassSpec{
		{Name: "stop", Shape: ShapeOctagon, Fill: RGB{0.85, 0.10, 0.12}},
		{Name: "yield", Shape: ShapeTriangleDown, Fill: RGB{0.90, 0.25, 0.20}},
		{Name: "prohibition", Shape: ShapeCircle, Fill: RGB{0.80, 0.15, 0.25}},
		{Name: "parking", Shape: ShapeSquare, Fill: RGB{0.15, 0.25, 0.85}},
		{Name: "mandatory", Shape: ShapeCircle, Fill: RGB{0.10, 0.35, 0.90}},
		{Name: "warning", Shape: ShapeTriangleUp, Fill: RGB{0.90, 0.80, 0.15}},
	}
}

// StopClass is the label index of the "Stop" sign in StandardClasses.
const StopClass = 0

// Example is one labelled image.
type Example struct {
	Image *tensor.Tensor // 3×Size×Size, values in [0,1]
	Label int
}

// Dataset is a labelled image collection.
type Dataset struct {
	Examples []Example
	Classes  []ClassSpec
	Size     int
}

// Len returns the number of examples.
func (d *Dataset) Len() int { return len(d.Examples) }

// NumClasses returns the number of classes.
func (d *Dataset) NumClasses() int { return len(d.Classes) }

// Config controls dataset generation. Zero fields take the documented
// defaults via Normalize.
type Config struct {
	// Size is the square image side (default 32).
	Size int
	// PerClass is the number of examples per class (default 40).
	PerClass int
	// RotJitter is the maximum |in-plane rotation| in radians
	// (default 0.20 ≈ 11°).
	RotJitter float64
	// TiltMax is the maximum out-of-plane tilt in radians
	// (default 0.35 ≈ 20°).
	TiltMax float64
	// ScaleMin and ScaleMax bound the circumradius as a fraction of
	// Size/2 (defaults 0.55 and 0.85).
	ScaleMin, ScaleMax float64
	// CenterJitter is the maximum centre offset as a fraction of Size
	// (default 0.06).
	CenterJitter float64
	// NoiseSigma is the per-pixel Gaussian noise std (default 0.02).
	NoiseSigma float32
	// Clutter is the number of background rectangles (default 3).
	Clutter int
}

// Normalize fills zero fields with defaults and validates the rest.
func (c Config) Normalize() (Config, error) {
	if c.Size == 0 {
		c.Size = 32
	}
	if c.PerClass == 0 {
		c.PerClass = 40
	}
	if c.RotJitter == 0 {
		c.RotJitter = 0.20
	}
	if c.TiltMax == 0 {
		c.TiltMax = 0.35
	}
	if c.ScaleMin == 0 {
		c.ScaleMin = 0.55
	}
	if c.ScaleMax == 0 {
		c.ScaleMax = 0.85
	}
	if c.CenterJitter == 0 {
		c.CenterJitter = 0.06
	}
	if c.NoiseSigma == 0 {
		c.NoiseSigma = 0.02
	}
	if c.Clutter == 0 {
		c.Clutter = 3
	}
	if c.Size < 8 {
		return c, fmt.Errorf("gtsrb: size %d too small", c.Size)
	}
	if c.PerClass < 1 {
		return c, fmt.Errorf("gtsrb: per-class count %d must be >= 1", c.PerClass)
	}
	if c.ScaleMin <= 0 || c.ScaleMax < c.ScaleMin || c.ScaleMax > 1 {
		return c, fmt.Errorf("gtsrb: scale range [%v,%v] invalid", c.ScaleMin, c.ScaleMax)
	}
	return c, nil
}

// RandomParams draws one sign's rendering parameters for the given class.
func RandomParams(cfg Config, spec ClassSpec, rng *rand.Rand) SignParams {
	half := float64(cfg.Size) / 2
	scale := cfg.ScaleMin + (cfg.ScaleMax-cfg.ScaleMin)*rng.Float64()
	return SignParams{
		Shape:      spec.Shape,
		Fill:       spec.Fill,
		Size:       cfg.Size,
		CenterX:    half + (2*rng.Float64()-1)*cfg.CenterJitter*float64(cfg.Size),
		CenterY:    half + (2*rng.Float64()-1)*cfg.CenterJitter*float64(cfg.Size),
		Radius:     scale * half,
		Rotation:   (2*rng.Float64() - 1) * cfg.RotJitter,
		Tilt:       rng.Float64() * cfg.TiltMax,
		Background: 0.05 + 0.20*rng.Float32(),
		NoiseSigma: cfg.NoiseSigma,
		Brightness: 0.85 + 0.30*rng.Float32(),
		Clutter:    cfg.Clutter,
	}
}

// Generate produces a balanced dataset with cfg.PerClass examples of each
// standard class, deterministically from rng.
func Generate(cfg Config, rng *rand.Rand) (*Dataset, error) {
	cfg, err := cfg.Normalize()
	if err != nil {
		return nil, err
	}
	if rng == nil {
		return nil, fmt.Errorf("gtsrb: generate needs an rng")
	}
	classes := StandardClasses()
	ds := &Dataset{
		Examples: make([]Example, 0, cfg.PerClass*len(classes)),
		Classes:  classes,
		Size:     cfg.Size,
	}
	for label, spec := range classes {
		for i := 0; i < cfg.PerClass; i++ {
			img, err := Render(RandomParams(cfg, spec, rng), rng)
			if err != nil {
				return nil, fmt.Errorf("gtsrb: render class %q example %d: %w", spec.Name, i, err)
			}
			ds.Examples = append(ds.Examples, Example{Image: img, Label: label})
		}
	}
	ds.Shuffle(rng)
	return ds, nil
}

// Shuffle permutes the examples in place.
func (d *Dataset) Shuffle(rng *rand.Rand) {
	rng.Shuffle(len(d.Examples), func(i, j int) {
		d.Examples[i], d.Examples[j] = d.Examples[j], d.Examples[i]
	})
}

// Split partitions the dataset into train and test parts with the given
// train fraction (0 < frac < 1). The split preserves order (shuffle first).
func (d *Dataset) Split(frac float64) (train, test *Dataset, err error) {
	if frac <= 0 || frac >= 1 {
		return nil, nil, fmt.Errorf("gtsrb: split fraction %v out of (0,1)", frac)
	}
	n := int(math.Round(frac * float64(len(d.Examples))))
	if n < 1 || n >= len(d.Examples) {
		return nil, nil, fmt.Errorf("gtsrb: split of %d examples at %v leaves an empty part",
			len(d.Examples), frac)
	}
	train = &Dataset{Examples: d.Examples[:n], Classes: d.Classes, Size: d.Size}
	test = &Dataset{Examples: d.Examples[n:], Classes: d.Classes, Size: d.Size}
	return train, test, nil
}

// CountByLabel returns a histogram of labels.
func (d *Dataset) CountByLabel() []int {
	counts := make([]int, len(d.Classes))
	for _, ex := range d.Examples {
		if ex.Label >= 0 && ex.Label < len(counts) {
			counts[ex.Label]++
		}
	}
	return counts
}

// AngledStopSign renders the Figure 3 subject: a slightly angled (rotated
// and tilted) stop sign at the given image size with mild noise.
func AngledStopSign(size int, rng *rand.Rand) (*tensor.Tensor, error) {
	if rng == nil {
		return nil, fmt.Errorf("gtsrb: angled stop sign needs an rng")
	}
	spec := StandardClasses()[StopClass]
	half := float64(size) / 2
	p := SignParams{
		Shape:      spec.Shape,
		Fill:       spec.Fill,
		Size:       size,
		CenterX:    half,
		CenterY:    half,
		Radius:     0.8 * half,
		Rotation:   0.17, // ~10°: "slightly angled"
		Tilt:       0.30, // ~17° out-of-plane
		Background: 0.10,
		NoiseSigma: 0.01,
		Brightness: 1,
		Clutter:    2,
	}
	return Render(p, rng)
}
