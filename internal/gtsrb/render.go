// Package gtsrb generates a synthetic stand-in for the German Traffic Sign
// Recognition Benchmark used by the paper. Real GTSRB photographs are not
// redistributable inside this repository, so the generator rasterises the
// geometric/colour structure the paper's argument actually relies on: a
// "Stop" sign is a red octagon — "it contains redundant information
// including the shape", and "any shape recognised by a CNN is not a Stop
// sign unless the shape has been confirmed as octagonal".
//
// Signs are rendered as anti-aliased convex shapes (octagon, triangle,
// circle, square) with randomised position, scale, in-plane rotation,
// out-of-plane tilt (the "slightly angled" sign of Figure 3), brightness and
// pixel noise, on cluttered backgrounds. All randomness comes from
// caller-provided *rand.Rand values.
package gtsrb

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/tensor"
)

// RGB is a colour with components in [0, 1].
type RGB struct {
	R, G, B float32
}

// SignShape is the geometric outline of a sign face.
type SignShape int

// Supported sign outlines.
const (
	ShapeOctagon SignShape = iota + 1
	ShapeTriangleDown
	ShapeTriangleUp
	ShapeCircle
	ShapeSquare
)

// String implements fmt.Stringer.
func (s SignShape) String() string {
	switch s {
	case ShapeOctagon:
		return "octagon"
	case ShapeTriangleDown:
		return "triangle-down"
	case ShapeTriangleUp:
		return "triangle-up"
	case ShapeCircle:
		return "circle"
	case ShapeSquare:
		return "square"
	default:
		return fmt.Sprintf("shape(%d)", int(s))
	}
}

// sides returns the polygon vertex count (0 for a circle) and the base
// angular offset that puts the shape in its canonical orientation.
func (s SignShape) sides() (k int, offset float64) {
	switch s {
	case ShapeOctagon:
		// Flat-top octagon: vertices offset by π/8 from the x-axis.
		return 8, math.Pi / 8
	case ShapeTriangleDown:
		return 3, math.Pi / 2 // one vertex pointing down (+y is down)
	case ShapeTriangleUp:
		return 3, -math.Pi / 2
	case ShapeSquare:
		return 4, math.Pi / 4 // axis-aligned square
	default:
		return 0, 0
	}
}

// SignParams fully determines one rendered sign. Deterministic given the
// params and the rng used for noise.
type SignParams struct {
	Shape SignShape
	Fill  RGB
	// Size is the square image side in pixels.
	Size int
	// CenterX, CenterY are the sign centre in pixels.
	CenterX, CenterY float64
	// Radius is the circumradius in pixels.
	Radius float64
	// Rotation is the in-plane rotation in radians.
	Rotation float64
	// Tilt is the out-of-plane viewing angle in radians: the sign's x
	// extent is foreshortened by cos(Tilt), producing the "slightly
	// angled" sign of Figure 3.
	Tilt float64
	// Background is the base background luminance in [0,1].
	Background float32
	// NoiseSigma is the per-pixel Gaussian noise standard deviation.
	NoiseSigma float32
	// Brightness multiplies the final image.
	Brightness float32
	// Clutter adds this many random dim rectangles behind the sign.
	Clutter int
}

// Validate checks the parameters.
func (p SignParams) Validate() error {
	if p.Size < 8 {
		return fmt.Errorf("gtsrb: image size %d too small", p.Size)
	}
	if p.Radius <= 0 {
		return fmt.Errorf("gtsrb: radius %v must be positive", p.Radius)
	}
	if p.Shape < ShapeOctagon || p.Shape > ShapeSquare {
		return fmt.Errorf("gtsrb: unknown shape %d", int(p.Shape))
	}
	return nil
}

// inside reports whether the (possibly tilted, rotated) shape contains the
// point (x, y) in image coordinates.
func (p SignParams) inside(x, y float64) bool {
	// Undo tilt (x foreshortening) and rotation to test in canonical space.
	dx := x - p.CenterX
	dy := y - p.CenterY
	ct := math.Cos(p.Tilt)
	if ct < 0.1 {
		ct = 0.1
	}
	dx /= ct
	sin, cos := math.Sincos(-p.Rotation)
	rx := dx*cos - dy*sin
	ry := dx*sin + dy*cos

	k, off := p.Shape.sides()
	if k == 0 { // circle
		return rx*rx+ry*ry <= p.Radius*p.Radius
	}
	// Convex polygon: the point is inside iff it is on the inner side of
	// every edge. Vertices in canonical orientation.
	prevX := p.Radius * math.Cos(off)
	prevY := p.Radius * math.Sin(off)
	for i := 1; i <= k; i++ {
		a := off + 2*math.Pi*float64(i)/float64(k)
		vx := p.Radius * math.Cos(a)
		vy := p.Radius * math.Sin(a)
		// Cross product (edge × point-relative-to-edge-start).
		cross := (vx-prevX)*(ry-prevY) - (vy-prevY)*(rx-prevX)
		if cross < 0 {
			return false
		}
		prevX, prevY = vx, vy
	}
	return true
}

// Render rasterises the sign into a 3×Size×Size tensor with 2×2
// supersampled anti-aliasing. rng supplies background clutter and pixel
// noise only; geometry is fully determined by the params.
func Render(p SignParams, rng *rand.Rand) (*tensor.Tensor, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if rng == nil {
		return nil, fmt.Errorf("gtsrb: render needs an rng (pass a seeded rand.New)")
	}
	img := tensor.MustNew(3, p.Size, p.Size)
	// Background.
	for y := 0; y < p.Size; y++ {
		for x := 0; x < p.Size; x++ {
			for c := 0; c < 3; c++ {
				img.Set3(p.Background, c, y, x)
			}
		}
	}
	// Clutter rectangles (dim, behind the sign).
	for i := 0; i < p.Clutter; i++ {
		rw := 2 + rng.Intn(p.Size/3)
		rh := 2 + rng.Intn(p.Size/3)
		rx := rng.Intn(p.Size)
		ry := rng.Intn(p.Size)
		col := RGB{
			R: p.Background + 0.15*rng.Float32(),
			G: p.Background + 0.15*rng.Float32(),
			B: p.Background + 0.15*rng.Float32(),
		}
		for y := ry; y < ry+rh && y < p.Size; y++ {
			for x := rx; x < rx+rw && x < p.Size; x++ {
				img.Set3(col.R, 0, y, x)
				img.Set3(col.G, 1, y, x)
				img.Set3(col.B, 2, y, x)
			}
		}
	}
	// Sign with 2×2 supersampling.
	sub := [2]float64{0.25, 0.75}
	for y := 0; y < p.Size; y++ {
		for x := 0; x < p.Size; x++ {
			hits := 0
			for _, sy := range sub {
				for _, sx := range sub {
					if p.inside(float64(x)+sx, float64(y)+sy) {
						hits++
					}
				}
			}
			if hits == 0 {
				continue
			}
			a := float32(hits) / 4
			img.Set3(img.At3(0, y, x)*(1-a)+p.Fill.R*a, 0, y, x)
			img.Set3(img.At3(1, y, x)*(1-a)+p.Fill.G*a, 1, y, x)
			img.Set3(img.At3(2, y, x)*(1-a)+p.Fill.B*a, 2, y, x)
		}
	}
	// Brightness and noise, clamped to [0,1].
	bright := p.Brightness
	if bright == 0 {
		bright = 1
	}
	data := img.Data()
	for i := range data {
		v := data[i]*bright + p.NoiseSigma*float32(rng.NormFloat64())
		if v < 0 {
			v = 0
		}
		if v > 1 {
			v = 1
		}
		data[i] = v
	}
	return img, nil
}
