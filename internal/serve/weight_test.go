package serve

import (
	"context"
	"testing"
	"time"
)

func TestWeightTrackerNotAdvertisingWithoutService(t *testing.T) {
	tr := NewWeightTracker(WeightConfig{})
	now := time.Unix(0, 0)
	if w := tr.Observe(now, WeightSignals{QueueDepth: 1, QueueCap: 8}); w != 0 {
		t.Fatalf("advertised %v with no service estimate", w)
	}
	if tr.Weight() != 0 {
		t.Fatalf("Weight() = %v, want 0", tr.Weight())
	}
	now = now.Add(time.Second)
	if w := tr.Observe(now, WeightSignals{Service: 10 * time.Millisecond}); w <= 0 {
		t.Fatalf("not advertising once service is known: %v", w)
	}
}

func TestWeightTrackerPressureAdaptation(t *testing.T) {
	tr := NewWeightTracker(WeightConfig{})
	now := time.Unix(0, 0)
	svc := 10 * time.Millisecond
	base := tr.Observe(now, WeightSignals{Service: svc, QueueDepth: 0, QueueCap: 32})
	// Idle shard (pressure < low): the factor climbs, so the advertised
	// weight rises observation over observation until the clamp.
	prev := base
	for i := 0; i < 30; i++ {
		now = now.Add(time.Second)
		w := tr.Observe(now, WeightSignals{Service: svc, QueueDepth: 0, QueueCap: 32})
		if w < prev {
			t.Fatalf("idle weight fell: %v -> %v", prev, w)
		}
		prev = w
	}
	maxW := prev
	if maxW <= base {
		t.Fatalf("idle weight never rose above %v", base)
	}
	// The clamp: factor ≤ 8 means weight ≤ 8/serviceSeconds.
	if lim := 8 / svc.Seconds(); maxW > lim+1e-9 {
		t.Fatalf("weight %v exceeds MaxFactor bound %v", maxW, lim)
	}
	// Saturated shard (pressure > high): the weight collapses below where
	// it started, down to the MinFactor bound.
	for i := 0; i < 60; i++ {
		now = now.Add(time.Second)
		prev = tr.Observe(now, WeightSignals{Service: svc, QueueDepth: 30, QueueCap: 32})
	}
	if prev >= base {
		t.Fatalf("saturated weight %v did not fall below baseline %v", prev, base)
	}
	if lim := (1.0 / 8) / svc.Seconds(); prev < lim-1e-9 {
		t.Fatalf("weight %v below MinFactor bound %v", prev, lim)
	}
}

func TestWeightTrackerShedRateRaisesPressure(t *testing.T) {
	// Two trackers see the same queue but one also sheds: the shedding one
	// must advertise less.
	calm := NewWeightTracker(WeightConfig{})
	shedding := NewWeightTracker(WeightConfig{})
	now := time.Unix(0, 0)
	svc := 5 * time.Millisecond
	var sub, rej uint64
	var wCalm, wShed float64
	for i := 0; i < 20; i++ {
		now = now.Add(time.Second)
		sub += 100
		rej += 30 // 23% of offered load shed
		wCalm = calm.Observe(now, WeightSignals{Service: svc, QueueDepth: 8, QueueCap: 32, Submitted: sub})
		wShed = shedding.Observe(now, WeightSignals{Service: svc, QueueDepth: 8, QueueCap: 32, Submitted: sub, Rejected: rej})
	}
	if wShed >= wCalm {
		t.Fatalf("shedding shard advertises %v ≥ calm shard %v", wShed, wCalm)
	}
}

func TestWeightTrackerRateLimit(t *testing.T) {
	tr := NewWeightTracker(WeightConfig{})
	now := time.Unix(0, 0)
	w1 := tr.Observe(now, WeightSignals{Service: time.Millisecond, QueueDepth: 0, QueueCap: 32})
	// Observations inside MinInterval return the same weight: the factor
	// must not compound on snapshot frequency.
	for i := 0; i < 10; i++ {
		now = now.Add(time.Millisecond)
		if w := tr.Observe(now, WeightSignals{Service: time.Millisecond, QueueDepth: 0, QueueCap: 32}); w != w1 {
			t.Fatalf("weight moved %v -> %v within MinInterval", w1, w)
		}
	}
	now = now.Add(200 * time.Millisecond)
	if w := tr.Observe(now, WeightSignals{Service: time.Millisecond, QueueDepth: 0, QueueCap: 32}); w == w1 {
		t.Fatal("weight frozen after MinInterval elapsed")
	}
}

func TestSchedulerStatsAdvertisesWeight(t *testing.T) {
	backend := newFakeBackend(nil)
	s, err := New(backend, Config{MaxBatch: 4, MaxDelay: 0, QueueSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	// Before any batch completes there is no service estimate, so the
	// scheduler must not advertise.
	if st := s.Stats(); st.AdvertisedWeight != 0 {
		t.Fatalf("advertised %v before first batch", st.AdvertisedWeight)
	}
	for i := 0; i < 8; i++ {
		if _, err := s.Submit(context.Background(), backend.img(i)); err != nil {
			t.Fatal(err)
		}
	}
	// The tracker rate-limits to one update per 100ms; keep snapshotting
	// until a post-batch observation lands.
	waitFor(t, "advertised weight", func() bool {
		return s.Stats().AdvertisedWeight > 0
	})
	shutdownOK(t, s)
}
