package serve

import (
	"testing"
	"time"
)

// TestHistogramQuantileEdges is the table of boundary behaviours the
// quantile path promises: empty histograms report 0, a single sample is
// every quantile, overflow-bucket samples fall back to the exact max,
// p outside (0,1] clamps, and mid-bucket samples round up to their bucket
// bound but never past the observed maximum.
func TestHistogramQuantileEdges(t *testing.T) {
	bounds := HistogramBounds()
	lastBound := bounds[len(bounds)-1]
	cases := []struct {
		name    string
		samples []time.Duration
		p       float64
		want    time.Duration
	}{
		{"empty p50", nil, 0.50, 0},
		{"empty p1", nil, 1, 0},
		{"single sample is p50", []time.Duration{5 * time.Millisecond}, 0.50, 5 * time.Millisecond},
		{"single sample is p999", []time.Duration{5 * time.Millisecond}, 0.999, 5 * time.Millisecond},
		{"single sample at q=0 clamps to rank 1", []time.Duration{5 * time.Millisecond}, 0, 5 * time.Millisecond},
		{"q=0 clamps to the min bucket", []time.Duration{time.Microsecond, time.Second}, 0, time.Microsecond},
		{"q<0 clamps like q=0", []time.Duration{time.Microsecond, time.Second}, -3, time.Microsecond},
		{"q=1 is the exact max", []time.Duration{3 * time.Millisecond, 41 * time.Millisecond}, 1, 41 * time.Millisecond},
		{"q>1 clamps to the exact max", []time.Duration{3 * time.Millisecond, 41 * time.Millisecond}, 7, 41 * time.Millisecond},
		{"zero-duration samples report 0", []time.Duration{0, 0, 0}, 0.99, 0},
		{"negative samples clamp to 0", []time.Duration{-time.Second}, 0.50, 0},
		// Both samples share the single overflow bucket, so every quantile
		// collapses onto the tracked exact max — the bucket has no interior.
		{"overflow p50 collapses to the exact max", []time.Duration{2 * lastBound, 3 * lastBound}, 0.50, 3 * lastBound},
		{"overflow p99 collapses to the exact max", []time.Duration{2 * lastBound, 3 * lastBound}, 0.99, 3 * lastBound},
	}
	for _, c := range cases {
		h := NewHistogram()
		for _, d := range c.samples {
			h.Observe(d)
		}
		if got := h.Quantile(c.p); got != c.want {
			t.Errorf("%s: Quantile(%v) = %v, want %v", c.name, c.p, got, c.want)
		}
	}

	// Mid-bucket rounding: with a larger sample present, a quantile landing
	// on a mid-bucket sample reports that sample's bucket upper bound —
	// at or above the true value, within the 2^(1/4) relative width.
	h := NewHistogram()
	h.Observe(ms(1.1)) // strictly inside a bucket
	h.Observe(time.Second)
	p50 := h.Quantile(0.50)
	if p50 < ms(1.1) || p50 > ms(1.1*1.19) {
		t.Errorf("mid-bucket p50 = %v, want within one bucket above 1.1ms", p50)
	}
	found := false
	for _, b := range bounds {
		if p50 == b {
			found = true
			break
		}
	}
	if !found {
		t.Errorf("mid-bucket p50 %v is not a bucket bound", p50)
	}

	// The rank walk and the overflow fallback agree with Max() as samples
	// straddle the last bound.
	h = NewHistogram()
	h.Observe(lastBound) // exactly on the last bound: NOT overflow
	if got := h.Quantile(0.99); got != lastBound {
		t.Errorf("sample on the last bound: %v, want %v", got, lastBound)
	}
	h.Observe(lastBound + 1) // one past: overflow bucket
	if got := h.Quantile(1); got != lastBound+1 {
		t.Errorf("overflow max: %v, want %v", got, lastBound+1)
	}
}

// ms mirrors the sim package helper for fractional milliseconds.
func ms(n float64) time.Duration { return time.Duration(n * float64(time.Millisecond)) }
