package serve

import (
	"fmt"
	"strconv"
	"strings"
)

// Class is the per-request service class — the product tier a request buys
// into. It selects the execution pipeline, the queue the request waits in,
// its share of dispatch slots, and what overload does to it:
//
//   - ClassGuaranteed: the full reliable pipeline (reliable stage +
//     qualifier + CNN), the paper's reliability guarantee. Highest dispatch
//     weight; overload sheds with ErrQueueFull so latency stays bounded.
//   - ClassFast: the batched-CNN-only pipeline — no reliable execution, no
//     qualifier, so safety-critical classes come back unqualified
//     (rejected). Sheds under overload like guaranteed.
//   - ClassBudget: the full reliable pipeline at the lowest dispatch
//     weight, with degradation instead of shedding: when the budget queue
//     is full the request is re-admitted into the fast (CNN-only) pipeline
//     and marked degraded rather than rejected.
//
// The zero value is ClassGuaranteed, so class-unaware callers keep the
// full-pipeline semantics they had before classes existed.
type Class uint8

const (
	// ClassGuaranteed is the reliability-guaranteed tier (full pipeline).
	ClassGuaranteed Class = iota
	// ClassFast is the latency tier (batched CNN only).
	ClassFast
	// ClassBudget is the degradable tier (full pipeline until overload).
	ClassBudget
	// NumClasses is the number of service classes.
	NumClasses = 3
)

// Classes lists every service class in priority order (the order Stats and
// metrics report them).
var Classes = [NumClasses]Class{ClassGuaranteed, ClassFast, ClassBudget}

// String implements fmt.Stringer; the names are the wire values of the
// X-Hybridnet-Class header and the Prometheus class label.
func (c Class) String() string {
	switch c {
	case ClassGuaranteed:
		return "guaranteed"
	case ClassFast:
		return "fast"
	case ClassBudget:
		return "budget"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// ParseClass parses a wire-format class name ("guaranteed", "fast",
// "budget").
func ParseClass(s string) (Class, error) {
	switch s {
	case "guaranteed":
		return ClassGuaranteed, nil
	case "fast":
		return ClassFast, nil
	case "budget":
		return ClassBudget, nil
	default:
		return ClassGuaranteed, fmt.Errorf("serve: unknown service class %q (want guaranteed|fast|budget)", s)
	}
}

// Valid reports whether c is one of the defined classes.
func (c Class) Valid() bool { return c < NumClasses }

// ParseClassInts parses a per-class integer spec like
// "guaranteed=64,fast=128,budget=32" (any subset of classes, in any order;
// empty input is the zero vector). Unset classes stay zero, which Config
// treats as "inherit the default". It backs the daemons' -class-queues
// flag.
func ParseClassInts(s string) ([NumClasses]int, error) {
	var out [NumClasses]int
	if strings.TrimSpace(s) == "" {
		return out, nil
	}
	for _, part := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return out, fmt.Errorf("serve: class spec %q is not name=value", part)
		}
		c, err := ParseClass(strings.TrimSpace(name))
		if err != nil {
			return out, err
		}
		n, err := strconv.Atoi(strings.TrimSpace(val))
		if err != nil {
			return out, fmt.Errorf("serve: class spec %q: %v", part, err)
		}
		out[c] = n
	}
	return out, nil
}

// ParseClassFloats parses a per-class float spec like
// "guaranteed=0.2,fast=0.5,budget=0.3" — the loadgen -class-mix format.
// Unset classes stay zero.
func ParseClassFloats(s string) ([NumClasses]float64, error) {
	var out [NumClasses]float64
	if strings.TrimSpace(s) == "" {
		return out, nil
	}
	for _, part := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return out, fmt.Errorf("serve: class spec %q is not name=value", part)
		}
		c, err := ParseClass(strings.TrimSpace(name))
		if err != nil {
			return out, err
		}
		f, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
		if err != nil {
			return out, fmt.Errorf("serve: class spec %q: %v", part, err)
		}
		out[c] = f
	}
	return out, nil
}
