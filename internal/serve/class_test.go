package serve

import "testing"

// TestClassRoundTrip pins the wire names: String and ParseClass are
// inverses over the defined classes, the zero value is guaranteed (so
// class-unaware callers keep full-pipeline semantics), and unknown names
// are rejected.
func TestClassRoundTrip(t *testing.T) {
	if Class(0) != ClassGuaranteed {
		t.Fatal("zero Class must be guaranteed")
	}
	for _, c := range Classes {
		got, err := ParseClass(c.String())
		if err != nil || got != c {
			t.Errorf("ParseClass(%q) = %v, %v", c.String(), got, err)
		}
		if !c.Valid() {
			t.Errorf("%v not valid", c)
		}
	}
	for _, bad := range []string{"", "Guaranteed", "premium", "fast "} {
		if _, err := ParseClass(bad); err == nil {
			t.Errorf("ParseClass(%q) accepted", bad)
		}
	}
	if Class(NumClasses).Valid() {
		t.Error("out-of-range class reported valid")
	}
}

func TestParseClassInts(t *testing.T) {
	got, err := ParseClassInts("guaranteed=64, fast=128 ,budget=32")
	if err != nil {
		t.Fatal(err)
	}
	if want := [NumClasses]int{64, 128, 32}; got != want {
		t.Errorf("got %v, want %v", got, want)
	}
	// Subsets leave unset classes zero (Config treats zero as "inherit").
	got, err = ParseClassInts("budget=5")
	if err != nil {
		t.Fatal(err)
	}
	if want := [NumClasses]int{ClassBudget: 5}; got != want {
		t.Errorf("subset: got %v, want %v", got, want)
	}
	if got, err := ParseClassInts(""); err != nil || got != ([NumClasses]int{}) {
		t.Errorf("empty spec: %v, %v", got, err)
	}
	for _, bad := range []string{"guaranteed", "premium=1", "fast=x", "fast=1;budget=2"} {
		if _, err := ParseClassInts(bad); err == nil {
			t.Errorf("ParseClassInts(%q) accepted", bad)
		}
	}
}

func TestParseClassFloats(t *testing.T) {
	got, err := ParseClassFloats("guaranteed=0.2,fast=0.5,budget=0.3")
	if err != nil {
		t.Fatal(err)
	}
	if want := [NumClasses]float64{0.2, 0.5, 0.3}; got != want {
		t.Errorf("got %v, want %v", got, want)
	}
	if got, err := ParseClassFloats(""); err != nil || got != ([NumClasses]float64{}) {
		t.Errorf("empty spec: %v, %v", got, err)
	}
	for _, bad := range []string{"=1", "fast=", "fast=0.5,"} {
		if _, err := ParseClassFloats(bad); err == nil {
			t.Errorf("ParseClassFloats(%q) accepted", bad)
		}
	}
}
