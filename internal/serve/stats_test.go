package serve

import (
	"testing"
	"time"
)

// TestNearestRankSmallWindows pins the quantile rule on exactly the windows
// the old floor indexing got wrong: under ~50 samples, (n-1)*99/100 floors
// to (n-1)/2-ish indices and P99 collapsed onto P50. Nearest-rank keeps P99
// at the window maximum for any n < 100.
func TestNearestRankSmallWindows(t *testing.T) {
	mk := func(n int) []time.Duration {
		w := make([]time.Duration, n)
		for i := range w {
			w[i] = time.Duration(i+1) * time.Millisecond
		}
		return w
	}
	cases := []struct {
		n        int
		p        float64
		wantIdx  int
		scenario string
	}{
		{1, 0.50, 0, "singleton p50"},
		{1, 0.99, 0, "singleton p99"},
		{2, 0.50, 0, "n=2 p50 is the lower sample"},
		{2, 0.99, 1, "n=2 p99 is the max"},
		{10, 0.50, 4, "n=10 p50"},
		{10, 0.99, 9, "n=10 p99 is the max (floor gave index 8)"},
		{49, 0.99, 48, "n=49 p99 is the max (floor collapsed to p50 territory)"},
		{100, 0.99, 98, "n=100 p99 leaves the max out"},
		{101, 0.50, 50, "n=101 median"},
	}
	for _, c := range cases {
		w := mk(c.n)
		if got := NearestRank(w, c.p); got != w[c.wantIdx] {
			t.Errorf("%s: NearestRank(n=%d, p=%v) = %v, want %v", c.scenario, c.n, c.p, got, w[c.wantIdx])
		}
	}
	if got := NearestRank(nil, 0.99); got != 0 {
		t.Errorf("empty window: %v, want 0", got)
	}
	w := mk(5)
	if got := NearestRank(w, -1); got != w[0] {
		t.Errorf("p<=0 clamps to min: %v", got)
	}
	if got := NearestRank(w, 2); got != w[4] {
		t.Errorf("p>1 clamps to max: %v", got)
	}
}

// TestSnapshotQuantiles drives the stats state directly: quantiles are
// exact-to-bucket (a nearest-rank selection rounded up to the bucket bound,
// never past the exact max), the histogram rides along in the snapshot, and
// the service-time EWMA tracks backend time per image.
func TestSnapshotQuantiles(t *testing.T) {
	var st statsState
	st.init(10)
	// Timings with Done-Enqueued spanning 1..10ms; queue wait and backend
	// time ride along as fixed fractions so the per-stage histograms fill.
	base := time.Now()
	timings := make([]Timing, 10)
	for i := range timings {
		lat := time.Duration(i+1) * time.Millisecond
		timings[i] = Timing{
			Enqueued:   base,
			Picked:     base.Add(lat / 4),
			Dispatched: base.Add(lat / 2),
			Done:       base.Add(lat),
			BatchSize:  len(timings),
		}
	}
	st.batchDone(len(timings), 10*time.Millisecond)
	st.completed(timings)
	s := st.snapshot([NumClasses]int{}, [NumClasses]int{})
	if s.LatencyCount != 10 {
		t.Fatalf("latency count %d", s.LatencyCount)
	}
	// True p50 is 5ms; the bucketed estimate rounds up to the bucket bound,
	// at most 2^(1/4)-1 ≈ 19% above.
	if s.LatencyP50 < 5*time.Millisecond || s.LatencyP50 > 5*time.Millisecond*119/100 {
		t.Errorf("p50 = %v, want within one bucket above 5ms", s.LatencyP50)
	}
	// p99 of 10 samples is the max, and the quantile clamps to the exact max.
	if s.LatencyP99 != 10*time.Millisecond {
		t.Errorf("p99 = %v, want the exact 10ms max", s.LatencyP99)
	}
	if s.LatencyMax != 10*time.Millisecond {
		t.Errorf("max = %v", s.LatencyMax)
	}
	if s.LatencyHist == nil || s.LatencyHist.Count() != 10 {
		t.Fatalf("snapshot histogram missing or wrong count: %+v", s.LatencyHist)
	}
	if s.ServiceTime != time.Millisecond {
		t.Errorf("service time EWMA = %v, want 1ms (10ms busy over 10 images)", s.ServiceTime)
	}
	if s.Shards != 1 {
		t.Errorf("scheduler snapshot covers %d shards, want 1", s.Shards)
	}
}

// TestMergeStats pins the fleet-aggregation rules on histogram-less inputs
// (the legacy fallback): counters sum, the batch histogram is an
// element-wise sum over the longest length, MeanBatch is recomputed from
// merged totals, quantiles fall back to count-weighted means, Uptime and
// LatencyMax take the max. TestMergeStatsHistogramExact covers the exact
// path.
func TestMergeStats(t *testing.T) {
	a := Stats{
		Submitted: 100, Rejected: 5, Expired: 2, ExpiredDispatched: 1,
		Completed: 90, Failed: 7,
		Batches: 20, BatchHist: []uint64{2, 3, 15},
		QueueDepth: 1, QueueCap: 64,
		LatencyCount: 90, LatencyP50: 10 * time.Millisecond,
		LatencyP99: 30 * time.Millisecond, LatencyMax: 40 * time.Millisecond,
		BackendBusy: time.Second, Uptime: 10 * time.Second,
	}
	b := Stats{
		Submitted: 50, Completed: 45, Expired: 5,
		Batches: 15, BatchHist: []uint64{5, 10},
		QueueDepth: 2, QueueCap: 32,
		LatencyCount: 45, LatencyP50: 20 * time.Millisecond,
		LatencyP99: 60 * time.Millisecond, LatencyMax: 35 * time.Millisecond,
		BackendBusy: 2 * time.Second, Uptime: 8 * time.Second,
	}
	m := Merge(a, b)
	if m.Submitted != 150 || m.Rejected != 5 || m.Expired != 7 ||
		m.ExpiredDispatched != 1 || m.Completed != 135 || m.Failed != 7 {
		t.Fatalf("counter sums wrong: %+v", m)
	}
	if m.Batches != 35 {
		t.Fatalf("batches %d", m.Batches)
	}
	wantHist := []uint64{7, 13, 15}
	if len(m.BatchHist) != len(wantHist) {
		t.Fatalf("hist %v, want %v", m.BatchHist, wantHist)
	}
	for i := range wantHist {
		if m.BatchHist[i] != wantHist[i] {
			t.Fatalf("hist %v, want %v", m.BatchHist, wantHist)
		}
	}
	wantMean := float64(m.Dispatched()) / float64(m.Batches)
	if m.MeanBatch != wantMean {
		t.Errorf("mean batch %v, want %v recomputed from totals", m.MeanBatch, wantMean)
	}
	if m.QueueDepth != 3 || m.QueueCap != 96 {
		t.Errorf("queue %d/%d", m.QueueDepth, m.QueueCap)
	}
	if m.LatencyCount != 135 {
		t.Errorf("latency count %d", m.LatencyCount)
	}
	// Weighted p50: (10ms*90 + 20ms*45) / 135
	p50Num := float64(10*time.Millisecond)*90 + float64(20*time.Millisecond)*45
	wantP50 := time.Duration(p50Num / 135)
	if m.LatencyP50 != wantP50 {
		t.Errorf("p50 %v, want count-weighted %v", m.LatencyP50, wantP50)
	}
	if m.LatencyMax != 40*time.Millisecond {
		t.Errorf("max %v", m.LatencyMax)
	}
	if m.Uptime != 10*time.Second {
		t.Errorf("uptime %v, want the oldest shard's", m.Uptime)
	}
	if m.BackendBusy != 3*time.Second {
		t.Errorf("busy %v", m.BackendBusy)
	}
	if m.Shards != 2 {
		t.Errorf("merged shard count %d, want 2 (fleet size, not live-shard count)", m.Shards)
	}

	if z := Merge(); z.Submitted != 0 || z.BatchHist != nil {
		t.Errorf("empty merge not zero: %+v", z)
	}
	if h := MergeBatchHist(nil, nil); h != nil {
		t.Errorf("nil hist merge: %v", h)
	}
	if h := MergeBatchHist([]uint64{1}, []uint64{0, 2}); len(h) != 2 || h[0] != 1 || h[1] != 2 {
		t.Errorf("uneven hist merge: %v", h)
	}
}
