package serve

import (
	"encoding/json"
	"math"
	"math/rand"
	"sort"
	"testing"
	"time"
)

// TestHistogramBucketPlacement pins the (lo, hi] bucket rule against the
// exported bounds: every bound itself lands in its own bucket, one
// nanosecond above lands in the next, and out-of-range samples hit the
// underflow/overflow buckets.
func TestHistogramBucketPlacement(t *testing.T) {
	bounds := HistogramBounds()
	if len(bounds) != histBoundCount {
		t.Fatalf("exported %d bounds, layout has %d", len(bounds), histBoundCount)
	}
	for i, b := range bounds {
		if got := histIndex(b); got != i {
			t.Fatalf("bound %d (%v) placed in bucket %d", i, b, got)
		}
		if got := histIndex(b + 1); got != i+1 {
			t.Fatalf("bound %d (%v)+1ns placed in bucket %d, want %d", i, b, got, i+1)
		}
	}
	if got := histIndex(0); got != 0 {
		t.Errorf("0 placed in bucket %d", got)
	}
	if got := histIndex(bounds[len(bounds)-1] * 10); got != histBoundCount {
		t.Errorf("huge sample placed in bucket %d, want overflow %d", got, histBoundCount)
	}
	// Bounds strictly increase — the cumulative walk in Quantile relies on it.
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			t.Fatalf("bounds not strictly increasing at %d: %v <= %v", i, bounds[i], bounds[i-1])
		}
	}
}

// TestHistogramQuantileErrorBound: against a reference nearest-rank over the
// raw samples, the bucketed quantile never under-reports and overestimates
// by at most one bucket's relative width.
func TestHistogramQuantileErrorBound(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	h := NewHistogram()
	samples := make([]time.Duration, 0, 5000)
	for i := 0; i < 5000; i++ {
		// Log-uniform over ~6 decades, the shape serving latencies take.
		d := time.Duration(float64(time.Microsecond) * math.Pow(10, rng.Float64()*6))
		samples = append(samples, d)
		h.Observe(d)
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	for _, p := range []float64{0.5, 0.9, 0.99, 0.999, 1.0} {
		exact := NearestRank(samples, p)
		got := h.Quantile(p)
		if got < exact {
			t.Errorf("p=%v: bucketed %v under-reports exact %v", p, got, exact)
		}
		if limit := time.Duration(float64(exact) * 1.19); got > limit {
			t.Errorf("p=%v: bucketed %v exceeds exact %v by more than a bucket (%v)", p, got, exact, limit)
		}
	}
	if h.Quantile(1.0) != h.Max() {
		t.Errorf("p100 %v != exact max %v", h.Quantile(1.0), h.Max())
	}
	if e := NewHistogram(); e.Quantile(0.99) != 0 || e.Max() != 0 || e.Count() != 0 {
		t.Error("empty histogram not zero-valued")
	}
}

// TestHistogramMergeExact is the acceptance property for fleet quantiles:
// observing a sample set split across N histograms and merging them yields
// bit-identical quantiles to observing the whole set in one histogram.
func TestHistogramMergeExact(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	single := NewHistogram()
	parts := []*Histogram{NewHistogram(), NewHistogram(), NewHistogram()}
	for i := 0; i < 3000; i++ {
		d := time.Duration(rng.Int63n(int64(5 * time.Second)))
		single.Observe(d)
		parts[rng.Intn(len(parts))].Observe(d)
	}
	merged := NewHistogram()
	for _, p := range parts {
		merged.Merge(p)
	}
	merged.Merge(nil) // no-op
	if merged.Count() != single.Count() || merged.Max() != single.Max() {
		t.Fatalf("merged count/max %d/%v != single %d/%v",
			merged.Count(), merged.Max(), single.Count(), single.Max())
	}
	for _, p := range []float64{0.5, 0.9, 0.99, 0.999} {
		if m, s := merged.Quantile(p), single.Quantile(p); m != s {
			t.Errorf("p=%v: merged %v != single-process %v", p, m, s)
		}
	}
}

// TestHistogramJSONRoundTrip: the stats API ships histograms as JSON; decode
// must reconstruct counts, total, and max exactly (the shard router depends
// on this to merge what workers report).
func TestHistogramJSONRoundTrip(t *testing.T) {
	h := NewHistogram()
	for _, d := range []time.Duration{0, time.Microsecond, 3 * time.Millisecond,
		3 * time.Millisecond, time.Second, 2 * time.Hour} {
		h.Observe(d)
	}
	data, err := json.Marshal(h)
	if err != nil {
		t.Fatal(err)
	}
	var back Histogram
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Count() != h.Count() || back.Max() != h.Max() {
		t.Fatalf("round-trip count/max %d/%v != %d/%v", back.Count(), back.Max(), h.Count(), h.Max())
	}
	for _, p := range []float64{0.5, 0.99, 1.0} {
		if back.Quantile(p) != h.Quantile(p) {
			t.Errorf("p=%v: %v != %v after round trip", p, back.Quantile(p), h.Quantile(p))
		}
	}
	var bad Histogram
	tooMany, _ := json.Marshal(histogramJSON{Counts: make([]uint64, histBoundCount+2)})
	if err := json.Unmarshal(tooMany, &bad); err == nil {
		t.Error("oversized bucket array accepted")
	}
}

// TestMergeStatsHistogramExact: Stats carrying histograms merge to exact
// fleet quantiles — identical to one scheduler observing every sample — and
// zero-valued stats (dead shards) change nothing except the shard count.
func TestMergeStatsHistogramExact(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	all := NewHistogram()
	shards := make([]Stats, 3)
	for i := range shards {
		h := NewHistogram()
		for j := 0; j < 500*(i+1); j++ {
			d := time.Duration(rng.Int63n(int64(200 * time.Millisecond)))
			h.Observe(d)
			all.Observe(d)
		}
		shards[i] = Stats{
			Shards:       1,
			Completed:    h.Count(),
			LatencyCount: int(h.Count()),
			LatencyP50:   h.Quantile(0.50),
			LatencyP99:   h.Quantile(0.99),
			LatencyMax:   h.Max(),
			LatencyHist:  h,
		}
	}
	// A dead shard merged as zero-valued stats with an empty histogram.
	shards = append(shards, Stats{LatencyHist: NewHistogram()})
	m := Merge(shards...)
	if m.Shards != 4 {
		t.Errorf("fleet size %d, want 4 including the dead shard", m.Shards)
	}
	if m.LatencyHist == nil || m.LatencyHist.Count() != all.Count() {
		t.Fatalf("merged histogram missing or short: %+v", m.LatencyHist)
	}
	if m.LatencyP50 != all.Quantile(0.50) || m.LatencyP99 != all.Quantile(0.99) {
		t.Errorf("merged p50/p99 %v/%v != single-process %v/%v",
			m.LatencyP50, m.LatencyP99, all.Quantile(0.50), all.Quantile(0.99))
	}
	if m.LatencyMax != all.Max() {
		t.Errorf("merged max %v != %v", m.LatencyMax, all.Max())
	}
}
