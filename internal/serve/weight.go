package serve

import (
	"sync"
	"time"
)

// WeightTracker computes a worker's advertised placement weight online —
// the worker-side half of the distributed min-max placement policy
// (the frame of "Gradient and Projection Free Distributed Online Min-Max
// Resource Optimization", arXiv:2112.03896): minimize the worst shard's
// expected completion time with no gradients, no projections and no
// central coordinator. Each worker adapts a single scalar from purely
// local observations; routers consume the advertised weights through
// ordinary weighted power-of-two-choices scoring, so the fleet converges
// toward equalized expected completion times without any coordination
// hop.
//
// The update is gradient-free (a sign test on a local pressure signal,
// not a derivative) and projection-free (feasibility is kept by a
// multiplicative clamp instead of projecting onto a constraint set):
//
//	pressure = queueDepth/queueCap + shedPenalty · shedRate
//	factor  *= (1+eta)  when pressure < low   (capacity to spare: invite load)
//	factor  *= (1-eta)  when pressure > high  (overloaded: back off)
//	factor   = clamp(factor, min, max)
//	weight   = factor / serviceSeconds
//
// Dividing by the per-image service-time EWMA makes the advertised weight
// an offered service *rate*: a router scoring (load+1)/weight compares
// expected completion times directly, which is exactly what the static
// Weights × AdaptiveWeights heuristic approximates — except here the
// capacity estimate adapts online. The pressure term is the worker's
// early-warning channel: a queue builds (and admission control sheds)
// well before the service-time EWMA of a degrading shard converges, so
// the advertised weight collapses multiplicatively within a few update
// intervals while a router-side service signal is still catching up.
//
// Until the first batch completes there is no service estimate and
// Weight reports 0 — "not advertising" — so routers fall back to the
// static-weight comparison rather than mix units.
//
// WeightTracker is safe for concurrent use. Updates are rate-limited by
// MinInterval; the simulator drives Observe on a virtual clock, the
// Scheduler on the wall clock at every Stats snapshot (i.e. at the
// router's probe cadence).
type WeightTracker struct {
	cfg WeightConfig

	mu       sync.Mutex
	factor   float64 // adapted capacity multiplier, starts at 1
	shed     float64 // EWMA of the shed fraction between updates
	lastSub  uint64
	lastRej  uint64
	last     time.Time
	weight   float64 // current advertised weight (0 = not advertising)
	observed bool
}

// WeightConfig tunes a WeightTracker. The zero value selects the
// defaults listed on each field.
type WeightConfig struct {
	// Eta is the multiplicative step size of one update. Default 0.15.
	Eta float64
	// HighPressure opens the back-off regime. Default 0.5.
	HighPressure float64
	// LowPressure opens the invite regime. Default 0.2.
	LowPressure float64
	// ShedPenalty scales the shed-rate term of the pressure signal: a
	// worker shedding 10% of its offered load with ShedPenalty 4 reads as
	// 0.4 pressure before any queue depth. Default 4.
	ShedPenalty float64
	// MinFactor/MaxFactor clamp the adapted multiplier (the
	// projection-free feasibility bound). Defaults 1/8 and 8.
	MinFactor, MaxFactor float64
	// MinInterval rate-limits updates; observations arriving earlier
	// return the current weight unchanged. Default 100ms.
	MinInterval time.Duration
	// ShedAlpha is the EWMA coefficient of the shed-rate estimate.
	// Default 0.25.
	ShedAlpha float64
	// ServiceFloor bounds the service-time divisor away from zero.
	// Default 1µs.
	ServiceFloor time.Duration
}

func (c WeightConfig) withDefaults() WeightConfig {
	if c.Eta == 0 {
		c.Eta = 0.15
	}
	if c.HighPressure == 0 {
		c.HighPressure = 0.5
	}
	if c.LowPressure == 0 {
		c.LowPressure = 0.2
	}
	if c.ShedPenalty == 0 {
		c.ShedPenalty = 4
	}
	if c.MinFactor == 0 {
		c.MinFactor = 1.0 / 8
	}
	if c.MaxFactor == 0 {
		c.MaxFactor = 8
	}
	if c.MinInterval == 0 {
		c.MinInterval = 100 * time.Millisecond
	}
	if c.ShedAlpha == 0 {
		c.ShedAlpha = 0.25
	}
	if c.ServiceFloor == 0 {
		c.ServiceFloor = time.Microsecond
	}
	return c
}

// WeightSignals is one local observation: the worker's own view of its
// speed and backlog, plus the cumulative admission counters the tracker
// differentiates into a shed rate.
type WeightSignals struct {
	// Service is the per-image backend service-time EWMA (Stats.ServiceTime).
	// 0 means "no estimate yet" and keeps the tracker from advertising.
	Service time.Duration
	// QueueDepth and QueueCap are the scheduler's live backlog and bound.
	QueueDepth, QueueCap int
	// Submitted and Rejected are cumulative admission counters
	// (Stats.Submitted / Stats.Rejected); the tracker uses the deltas
	// between observations.
	Rejected, Submitted uint64
}

// NewWeightTracker returns a tracker with the given configuration (zero
// value = defaults).
func NewWeightTracker(cfg WeightConfig) *WeightTracker {
	return &WeightTracker{cfg: cfg.withDefaults(), factor: 1}
}

// Observe folds one observation in and returns the advertised weight.
// Observations closer together than MinInterval are ignored (the current
// weight is returned), so the adaptation rate is set by the observation
// cadence, not by how often callers happen to snapshot.
func (t *WeightTracker) Observe(now time.Time, sig WeightSignals) float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.observed && now.Sub(t.last) < t.cfg.MinInterval {
		return t.weight
	}
	// Shed rate over the window since the last update: rejected / offered.
	dSub := sig.Submitted - t.lastSub
	dRej := sig.Rejected - t.lastRej
	if t.observed {
		inst := 0.0
		if dSub+dRej > 0 {
			inst = float64(dRej) / float64(dSub+dRej)
		}
		t.shed += (inst - t.shed) * t.cfg.ShedAlpha
	}
	t.lastSub, t.lastRej = sig.Submitted, sig.Rejected
	t.last = now
	t.observed = true

	pressure := 0.0
	if sig.QueueCap > 0 {
		pressure = float64(sig.QueueDepth) / float64(sig.QueueCap)
	}
	pressure += t.cfg.ShedPenalty * t.shed
	switch {
	case pressure > t.cfg.HighPressure:
		t.factor *= 1 - t.cfg.Eta
	case pressure < t.cfg.LowPressure:
		t.factor *= 1 + t.cfg.Eta
	}
	if t.factor < t.cfg.MinFactor {
		t.factor = t.cfg.MinFactor
	}
	if t.factor > t.cfg.MaxFactor {
		t.factor = t.cfg.MaxFactor
	}
	if sig.Service <= 0 {
		t.weight = 0 // no speed estimate yet: don't advertise
		return t.weight
	}
	svc := sig.Service
	if svc < t.cfg.ServiceFloor {
		svc = t.cfg.ServiceFloor
	}
	t.weight = t.factor / svc.Seconds()
	return t.weight
}

// Weight returns the current advertised weight without folding in a new
// observation. 0 means the tracker is not advertising yet.
func (t *WeightTracker) Weight() float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.weight
}
