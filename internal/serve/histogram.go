package serve

import (
	"encoding/json"
	"fmt"
	"math"
	"time"
)

// The latency histogram is log-bucketed with a fixed, package-wide layout:
// bucket upper bounds grow geometrically by 2^(1/histBucketsPerDoubling)
// starting at histMin. Because every process uses the same layout, two
// histograms merge by element-wise count addition — which is what makes
// fleet-level quantiles exact-to-bucket instead of count-weighted means of
// per-shard quantiles: merging then taking a quantile gives bit-identical
// results to observing all samples in one process.
const (
	// histMin is the upper bound of the first bucket: everything at or
	// below 1µs lands in bucket 0.
	histMin = time.Microsecond
	// histBucketsPerDoubling sets resolution: 4 buckets per power of two
	// keeps the relative width of any bucket under 2^(1/4)-1 ≈ 19%, so a
	// bucketed quantile overestimates the true sample by at most that.
	histBucketsPerDoubling = 4
	// histBoundCount bounds cover histMin·2^(128/4) ≈ 71.6 minutes; beyond
	// that, samples land in the overflow bucket and quantiles fall back to
	// the tracked exact maximum.
	histBoundCount = 128
)

// histBounds[i] is the inclusive upper bound of bucket i; bucket
// histBoundCount is the overflow bucket (no upper bound).
var histBounds = func() [histBoundCount]time.Duration {
	var b [histBoundCount]time.Duration
	for i := range b {
		b[i] = time.Duration(math.Round(float64(histMin) * math.Pow(2, float64(i)/histBucketsPerDoubling)))
	}
	return b
}()

// HistogramBounds returns a copy of the fixed bucket upper bounds shared by
// every Histogram: bucket i counts samples in (bounds[i-1], bounds[i]]
// (bucket 0 counts everything at or below bounds[0]), and one extra overflow
// bucket counts samples above the last bound.
func HistogramBounds() []time.Duration {
	out := make([]time.Duration, histBoundCount)
	copy(out, histBounds[:])
	return out
}

// Histogram is a mergeable log-bucketed latency histogram. Observe records
// samples, Quantile answers nearest-rank quantiles exact-to-bucket, and
// Merge folds another histogram in exactly (same fixed bucket layout
// everywhere), so per-shard histograms can be summed into a fleet histogram
// whose quantiles match a single-process run over the same samples.
//
// The exact maximum is tracked alongside the buckets, so Quantile never
// reports above the largest observed sample and the overflow bucket still
// has a meaningful representative.
//
// Histogram round-trips through JSON (trailing empty buckets are elided) and
// is not safe for concurrent use — callers hold their own lock (statsState
// does for the Scheduler's histogram).
type Histogram struct {
	counts [histBoundCount + 1]uint64
	total  uint64
	sum    time.Duration
	max    time.Duration
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// histIndex maps a sample to its bucket. The float log gets within one
// bucket of the right answer; the integer fix-up makes the boundary
// placement exact ((lo, hi] buckets) regardless of rounding.
func histIndex(d time.Duration) int {
	if d <= histMin {
		return 0
	}
	i := int(math.Ceil(histBucketsPerDoubling * math.Log2(float64(d)/float64(histMin))))
	if i > histBoundCount {
		i = histBoundCount
	}
	for i > 0 && d <= histBounds[i-1] {
		i--
	}
	for i < histBoundCount && d > histBounds[i] {
		i++
	}
	return i
}

// Observe records one sample. Negative durations are clamped to zero.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.counts[histIndex(d)]++
	h.total++
	h.sum += d
	if d > h.max {
		h.max = d
	}
}

// Merge adds other's counts into h. A nil other is a no-op. Merging is
// exact: quantiles of the merged histogram equal quantiles of a histogram
// that observed both sample sets directly.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil {
		return
	}
	for i, c := range other.counts {
		h.counts[i] += c
	}
	h.total += other.total
	h.sum += other.sum
	if other.max > h.max {
		h.max = other.max
	}
}

// Clone returns an independent copy.
func (h *Histogram) Clone() *Histogram {
	c := *h
	return &c
}

// Count returns the number of observed samples.
func (h *Histogram) Count() uint64 { return h.total }

// Max returns the exact largest observed sample (0 when empty).
func (h *Histogram) Max() time.Duration { return h.max }

// Sum returns the exact total of all observed samples — the numerator a
// Prometheus histogram's _sum line wants. Like the counts it merges by
// addition.
func (h *Histogram) Sum() time.Duration { return h.sum }

// Counts returns a copy of the bucket counts; the last entry is the
// overflow bucket above HistogramBounds()'s final bound.
func (h *Histogram) Counts() []uint64 {
	return append([]uint64(nil), h.counts[:]...)
}

// Quantile returns the nearest-rank p-quantile, rounded up to its bucket's
// upper bound (never above the exact observed maximum). The overestimate is
// bounded by the bucket's relative width, 2^(1/4)-1 ≈ 19%. p outside (0,1]
// is clamped; an empty histogram reports 0.
func (h *Histogram) Quantile(p float64) time.Duration {
	if h.total == 0 {
		return 0
	}
	// Clamp in float space: converting a negative product to uint64 would
	// wrap to a huge rank and silently report the max instead of the min.
	fr := math.Ceil(p * float64(h.total))
	if fr < 1 {
		fr = 1
	}
	if fr > float64(h.total) {
		fr = float64(h.total)
	}
	rank := uint64(fr)
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			if i == histBoundCount || histBounds[i] > h.max {
				return h.max
			}
			return histBounds[i]
		}
	}
	return h.max // unreachable: cum reaches total
}

// histogramJSON is the wire form: bucket counts with trailing zeros elided,
// plus the exact max. The sample total is derived from the counts on decode,
// so the two cannot disagree.
type histogramJSON struct {
	Counts []uint64 `json:"counts"`
	Total  uint64   `json:"total"`
	SumNS  int64    `json:"sum_ns,omitempty"` // absent in snapshots from older workers
	MaxNS  int64    `json:"max_ns"`
}

// MarshalJSON implements json.Marshaler.
func (h *Histogram) MarshalJSON() ([]byte, error) {
	n := len(h.counts)
	for n > 0 && h.counts[n-1] == 0 {
		n--
	}
	return json.Marshal(histogramJSON{
		Counts: h.counts[:n],
		Total:  h.total,
		SumNS:  h.sum.Nanoseconds(),
		MaxNS:  h.max.Nanoseconds(),
	})
}

// UnmarshalJSON implements json.Unmarshaler.
func (h *Histogram) UnmarshalJSON(data []byte) error {
	var w histogramJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	if len(w.Counts) > len(h.counts) {
		return fmt.Errorf("serve: histogram has %d buckets, layout allows %d", len(w.Counts), len(h.counts))
	}
	*h = Histogram{sum: time.Duration(w.SumNS), max: time.Duration(w.MaxNS)}
	copy(h.counts[:], w.Counts)
	for _, c := range w.Counts {
		h.total += c
	}
	return nil
}
