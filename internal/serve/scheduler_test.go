package serve

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/gtsrb"
	"repro/internal/nn"
	"repro/internal/shape"
	"repro/internal/tensor"
)

// fakeBackend records every batch it sees and answers each image with a
// Result whose Class encodes the image's identity, so tests can check
// per-request routing. When gate is non-nil every ClassifyBatch blocks
// until the gate yields (one token per call, or a close for "open forever").
type fakeBackend struct {
	gate chan struct{}
	ids  map[*tensor.Tensor]int

	mu      sync.Mutex
	batches [][]*tensor.Tensor
}

func newFakeBackend(gate chan struct{}) *fakeBackend {
	return &fakeBackend{gate: gate, ids: make(map[*tensor.Tensor]int)}
}

func (f *fakeBackend) img(id int) *tensor.Tensor {
	t := tensor.MustNew(1, 1, 1)
	f.ids[t] = id
	return t
}

func (f *fakeBackend) ClassifyBatch(imgs []*tensor.Tensor) ([]core.Result, error) {
	if f.gate != nil {
		<-f.gate
	}
	f.mu.Lock()
	f.batches = append(f.batches, append([]*tensor.Tensor(nil), imgs...))
	f.mu.Unlock()
	results := make([]core.Result, len(imgs))
	for i, img := range imgs {
		results[i] = core.Result{Class: f.ids[img]}
	}
	return results, nil
}

func (f *fakeBackend) batchSizes() []int {
	f.mu.Lock()
	defer f.mu.Unlock()
	sizes := make([]int, len(f.batches))
	for i, b := range f.batches {
		sizes[i] = len(b)
	}
	return sizes
}

// waitFor polls cond for up to 5s.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func shutdownOK(t *testing.T, s *Scheduler) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// TestSchedulerCoalesces is the acceptance gate: N concurrent submissions
// against a real hybrid backend must be served in strictly fewer backend
// invocations than N with mean batch size > 1, and every per-request result
// must be identical to the sequential Classify path.
func TestSchedulerCoalesces(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	net, err := nn.NewMicroAlexNet(nn.MicroConfig{
		InputSize: 32, Conv1Filters: 8, Conv1Kernel: 5,
		Conv2Filters: 8, Hidden: 16, Classes: 6, UseLRN: false,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	conv1, err := nn.FirstConv(net)
	if err != nil {
		t.Fatal(err)
	}
	pair, err := core.InstallSobelPair(conv1, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	h, err := core.NewHybridNetwork(core.Config{
		Wiring: core.WiringBifurcated, Mode: core.ModeTemporalDMR, Pair: pair,
		SafetyClasses: map[int]shape.Class{gtsrb.StopClass: shape.ClassOctagon},
	}, net)
	if err != nil {
		t.Fatal(err)
	}

	gcfg, err := gtsrb.Config{Size: 32}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	specs := gtsrb.StandardClasses()
	imgs := make([]*tensor.Tensor, 3)
	want := make([]core.Result, len(imgs))
	for i := range imgs {
		img, err := gtsrb.Render(gtsrb.RandomParams(gcfg, specs[i], rng), rng)
		if err != nil {
			t.Fatal(err)
		}
		imgs[i] = img
		want[i], err = h.Classify(img)
		if err != nil {
			t.Fatal(err)
		}
	}

	bc, err := h.NewBatchClassifier(2)
	if err != nil {
		t.Fatal(err)
	}
	// Hold the backend until every request is queued, so coalescing is
	// deterministic rather than a race against backend speed.
	hold := make(chan struct{})
	backend := &holdingBackend{inner: bc, hold: hold}
	s, err := New(backend, Config{MaxBatch: 8, MaxDelay: 50 * time.Millisecond, QueueSize: 64})
	if err != nil {
		t.Fatal(err)
	}

	const n = 24
	var wg sync.WaitGroup
	wg.Add(n)
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			img := imgs[i%len(imgs)]
			got, err := s.Submit(context.Background(), img)
			if err != nil {
				errs <- fmt.Errorf("submit %d: %w", i, err)
				return
			}
			ref := want[i%len(imgs)]
			if got.Class != ref.Class || got.Decision != ref.Decision ||
				got.Qualifier.Class != ref.Qualifier.Class || got.Stats != ref.Stats {
				errs <- fmt.Errorf("request %d: (%d,%v,%v,%+v) != sequential (%d,%v,%v,%+v)",
					i, got.Class, got.Decision, got.Qualifier.Class, got.Stats,
					ref.Class, ref.Decision, ref.Qualifier.Class, ref.Stats)
				return
			}
			errs <- nil
		}(i)
	}
	waitFor(t, "all requests queued", func() bool { return s.Stats().Submitted == n })
	close(hold)
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	shutdownOK(t, s)

	st := s.Stats()
	if st.Completed != n {
		t.Fatalf("completed %d of %d", st.Completed, n)
	}
	if st.Batches >= n {
		t.Fatalf("backend invocations %d not < %d submissions — no coalescing", st.Batches, n)
	}
	if st.MeanBatch <= 1 {
		t.Fatalf("mean batch %.2f not > 1", st.MeanBatch)
	}
	if backend.calls.Load() != int64(st.Batches) {
		t.Fatalf("stats batches %d != backend calls %d", st.Batches, backend.calls.Load())
	}
	t.Logf("coalescing: %d requests in %d batches (mean %.2f, p99 %v)",
		n, st.Batches, st.MeanBatch, st.LatencyP99)
}

// TestSchedulerZeroDelay: MaxDelay == 0 must flush immediately with
// whatever is queued — sequential submissions each ride a batch of one and
// never wait on a timer.
func TestSchedulerZeroDelay(t *testing.T) {
	backend := newFakeBackend(nil)
	s, err := New(backend, Config{MaxBatch: 64, MaxDelay: 0, QueueSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	const n = 5
	for i := 0; i < n; i++ {
		res, err := s.Submit(context.Background(), backend.img(i))
		if err != nil {
			t.Fatal(err)
		}
		if res.Class != i {
			t.Fatalf("request %d routed result %d", i, res.Class)
		}
	}
	shutdownOK(t, s)
	st := s.Stats()
	if st.Batches != n || st.BatchHist[0] != n {
		t.Fatalf("expected %d singleton batches, got batches=%d hist=%v", n, st.Batches, st.BatchHist)
	}
}

// TestSchedulerDeadlineWhileQueued: a request whose context expires while
// it waits in the queue returns ctx.Err() to the caller and is dropped
// before it costs backend work.
func TestSchedulerDeadlineWhileQueued(t *testing.T) {
	gate := make(chan struct{})
	backend := newFakeBackend(gate)
	s, err := New(backend, Config{MaxBatch: 1, QueueSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	// First request occupies the flusher inside the gated backend.
	firstDone := make(chan error, 1)
	go func() {
		_, err := s.Submit(context.Background(), backend.img(0))
		firstDone <- err
	}()
	waitFor(t, "flusher to take first request", func() bool {
		return s.Stats().Submitted == 1 && s.Stats().QueueDepth == 0
	})
	// Second request waits in the queue past its deadline.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := s.Submit(ctx, backend.img(1)); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("queued-past-deadline submit = %v, want DeadlineExceeded", err)
	}
	close(gate)
	if err := <-firstDone; err != nil {
		t.Fatal(err)
	}
	shutdownOK(t, s)
	if sizes := backend.batchSizes(); len(sizes) != 1 || sizes[0] != 1 {
		t.Fatalf("backend saw batches %v, want just the live request", sizes)
	}
	if st := s.Stats(); st.Expired != 1 || st.Completed != 1 {
		t.Fatalf("expired=%d completed=%d, want 1/1", st.Expired, st.Completed)
	}
}

// TestSchedulerShutdownDrainsInFlight: Shutdown must stop admission
// immediately but wait for the in-flight batch and every queued request.
func TestSchedulerShutdownDrainsInFlight(t *testing.T) {
	gate := make(chan struct{})
	backend := newFakeBackend(gate)
	s, err := New(backend, Config{MaxBatch: 1, QueueSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	inFlight := make(chan error, 1)
	queued := make(chan error, 1)
	go func() {
		_, err := s.Submit(context.Background(), backend.img(0))
		inFlight <- err
	}()
	waitFor(t, "first request in flight", func() bool {
		return s.Stats().Submitted == 1 && s.Stats().QueueDepth == 0
	})
	go func() {
		_, err := s.Submit(context.Background(), backend.img(1))
		queued <- err
	}()
	waitFor(t, "second request queued", func() bool { return s.Stats().QueueDepth == 1 })

	shutdownErr := make(chan error, 1)
	go func() { shutdownErr <- s.Shutdown(context.Background()) }()
	// Admission is closed while the batch is still in flight. Probes need
	// a deadline: one issued before Shutdown wins the race would otherwise
	// queue behind the gated backend forever.
	waitFor(t, "admission to close", func() bool {
		pctx, pcancel := context.WithTimeout(context.Background(), 2*time.Millisecond)
		defer pcancel()
		_, err := s.Submit(pctx, backend.img(2))
		return errors.Is(err, ErrClosed)
	})
	select {
	case err := <-shutdownErr:
		t.Fatalf("shutdown returned %v with a batch still in flight", err)
	default:
	}
	// ...and a bounded shutdown context times out rather than abandoning it.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := s.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("bounded shutdown = %v, want DeadlineExceeded", err)
	}
	close(gate)
	if err := <-shutdownErr; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-inFlight; err != nil {
		t.Fatalf("in-flight request: %v", err)
	}
	if err := <-queued; err != nil {
		t.Fatalf("queued request dropped at shutdown: %v", err)
	}
	if st := s.Stats(); st.Completed != 2 {
		t.Fatalf("completed %d of 2 across shutdown", st.Completed)
	}
}

// TestSchedulerDelayCountsQueueTime: MaxDelay is measured from submission,
// so a request that already waited behind an in-flight batch longer than
// MaxDelay flushes immediately when the flusher frees — it does not pay a
// full extra MaxDelay on top of its queue time.
func TestSchedulerDelayCountsQueueTime(t *testing.T) {
	const delay = 500 * time.Millisecond
	gate := make(chan struct{})
	backend := newFakeBackend(gate)
	s, err := New(backend, Config{MaxBatch: 2, MaxDelay: delay, QueueSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 3)
	submit := func(id int) {
		img := backend.img(id)
		go func() {
			_, err := s.Submit(context.Background(), img)
			done <- err
		}()
	}
	// First batch fills instantly (MaxBatch=2) and blocks in the backend.
	submit(0)
	submit(1)
	waitFor(t, "first batch in flight", func() bool {
		return s.Stats().Submitted == 2 && s.Stats().QueueDepth == 0
	})
	// Third request queues behind it for longer than MaxDelay.
	submit(2)
	time.Sleep(delay + 100*time.Millisecond)
	gate <- struct{}{} // release first batch
	released := time.Now()
	gate <- struct{}{} // second batch: must be armed with an exhausted timer
	for i := 0; i < 3; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if waited := time.Since(released); waited >= delay {
		t.Fatalf("stale request waited %v more after the flusher freed — MaxDelay restarted", waited)
	}
	shutdownOK(t, s)
}

// TestSchedulerQueueFull: admission control rejects immediately when the
// bounded queue is full, without blocking the caller.
func TestSchedulerQueueFull(t *testing.T) {
	gate := make(chan struct{})
	backend := newFakeBackend(gate)
	s, err := New(backend, Config{MaxBatch: 1, QueueSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 3)
	for i := 0; i < 3; i++ {
		img := backend.img(i)
		go func() {
			_, err := s.Submit(context.Background(), img)
			done <- err
		}()
		if i == 0 {
			// Ensure the first request is the one in flight, so exactly
			// two occupy the queue.
			waitFor(t, "first request in flight", func() bool {
				return s.Stats().Submitted == 1 && s.Stats().QueueDepth == 0
			})
		}
	}
	waitFor(t, "queue to fill", func() bool { return s.Stats().QueueDepth == 2 })
	start := time.Now()
	if _, err := s.Submit(context.Background(), backend.img(9)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("submit against full queue = %v, want ErrQueueFull", err)
	}
	if waited := time.Since(start); waited > time.Second {
		t.Fatalf("rejection blocked for %v", waited)
	}
	close(gate)
	for i := 0; i < 3; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	shutdownOK(t, s)
	if st := s.Stats(); st.Rejected != 1 || st.Completed != 3 {
		t.Fatalf("rejected=%d completed=%d, want 1/3", st.Rejected, st.Completed)
	}
}

// TestSchedulerBackendError: a failing batch fails every rider with the
// backend's error; the scheduler keeps serving afterwards.
func TestSchedulerBackendError(t *testing.T) {
	boom := errors.New("boom")
	fb := newFakeBackend(nil)
	backend := &flakyBackend{inner: fb, err: boom, failFirst: 1}
	s, err := New(backend, Config{MaxBatch: 4, MaxDelay: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(context.Background(), fb.img(0)); !errors.Is(err, boom) {
		t.Fatalf("submit over failing backend = %v, want boom", err)
	}
	res, err := s.Submit(context.Background(), fb.img(1))
	if err != nil || res.Class != 1 {
		t.Fatalf("recovery submit = (%d, %v), want (1, nil)", res.Class, err)
	}
	shutdownOK(t, s)
	if st := s.Stats(); st.Failed != 1 || st.Completed != 1 {
		t.Fatalf("failed=%d completed=%d, want 1/1", st.Failed, st.Completed)
	}
}

// TestSchedulerValidation covers constructor and Submit argument checks.
func TestSchedulerValidation(t *testing.T) {
	if _, err := New(nil, Config{}); err == nil {
		t.Error("nil backend accepted")
	}
	bad := []Config{
		{MaxBatch: -1},
		{MaxDelay: -time.Second},
		{QueueSize: -1},
	}
	fb := newFakeBackend(nil)
	for _, cfg := range bad {
		if _, err := New(fb, cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
	s, err := New(fb, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Config(); got.MaxBatch != 8 || got.QueueSize != 64 {
		t.Fatalf("defaults not applied: %+v", got)
	}
	if _, err := s.Submit(context.Background(), nil); err == nil {
		t.Error("nil image accepted")
	}
	shutdownOK(t, s)
	shutdownOK(t, s) // idempotent
	if _, err := s.Submit(context.Background(), fb.img(0)); !errors.Is(err, ErrClosed) {
		t.Errorf("post-shutdown submit = %v, want ErrClosed", err)
	}
}

// TestSchedulerExpiryInFlightSingleOutcome is the double-accounting
// regression: a request whose context expires while its batch is inside the
// backend must resolve to exactly one outcome. The caller gets ctx.Err(),
// the buffered result is discarded, and the stats count it as
// ExpiredDispatched — never Completed, and its latency never enters the
// histogram.
func TestSchedulerExpiryInFlightSingleOutcome(t *testing.T) {
	backend := &blockingBackend{
		entered: make(chan int, 4),
		release: make(chan struct{}),
	}
	s, err := New(backend, Config{MaxBatch: 1, QueueSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	submitErr := make(chan error, 1)
	go func() {
		_, err := s.Submit(ctx, tensor.MustNew(1, 1, 1))
		submitErr <- err
	}()
	<-backend.entered // the request's batch is now inside the backend
	cancel()
	if err := <-submitErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("in-flight expiry returned %v, want context.Canceled", err)
	}
	close(backend.release) // backend finishes; the flusher must discard the result

	// The scheduler keeps serving: a healthy follow-up completes normally.
	res, err := s.Submit(context.Background(), tensor.MustNew(1, 1, 1))
	<-backend.entered
	if err != nil || res.Class != 0 {
		t.Fatalf("follow-up submit = (%d, %v)", res.Class, err)
	}
	shutdownOK(t, s)

	st := s.Stats()
	if st.Submitted != 2 || st.ExpiredDispatched != 1 || st.Completed != 1 ||
		st.Expired != 0 || st.Failed != 0 {
		t.Fatalf("counters submitted=%d expired=%d expired_dispatched=%d completed=%d failed=%d, want 2/0/1/1/0",
			st.Submitted, st.Expired, st.ExpiredDispatched, st.Completed, st.Failed)
	}
	if st.LatencyCount != 1 {
		t.Fatalf("latency histogram holds %d samples; the expired request's latency leaked in", st.LatencyCount)
	}
	if st.Batches != 2 {
		t.Fatalf("batches %d, want 2 (the expired request's batch still ran)", st.Batches)
	}
}

// TestSchedulerAccountingUnderChurn hammers the delivery/expiry race from
// many goroutines (run under -race) and pins the global invariant: every
// submitted request lands in exactly one outcome bucket, the client-observed
// outcomes match the counters exactly, and the latency histogram only ever
// holds completed requests.
func TestSchedulerAccountingUnderChurn(t *testing.T) {
	backend := &slowBackend{delay: 500 * time.Microsecond}
	s, err := New(backend, Config{MaxBatch: 4, MaxDelay: 100 * time.Microsecond, QueueSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	const n = 400
	var ok, ctxErr atomic.Int64
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			// Deadlines straddle the backend delay so expiry lands before,
			// during, and after dispatch.
			timeout := time.Duration(i%5) * 300 * time.Microsecond
			ctx, cancel := context.WithTimeout(context.Background(), timeout)
			defer cancel()
			_, err := s.Submit(ctx, tensor.MustNew(1, 1, 1))
			switch {
			case err == nil:
				ok.Add(1)
			case errors.Is(err, context.DeadlineExceeded):
				ctxErr.Add(1)
			default:
				t.Errorf("unexpected submit error: %v", err)
			}
		}(i)
	}
	wg.Wait()
	shutdownOK(t, s)

	st := s.Stats()
	if st.Submitted != n {
		t.Fatalf("submitted %d of %d", st.Submitted, n)
	}
	total := st.Completed + st.Failed + st.Expired + st.ExpiredDispatched
	if total != n {
		t.Fatalf("outcome buckets sum to %d, want %d: %+v", total, n, st)
	}
	if got := uint64(ok.Load()); got != st.Completed {
		t.Fatalf("clients saw %d results but Completed=%d — a request was double-accounted", got, st.Completed)
	}
	if got := uint64(ctxErr.Load()); got != st.Expired+st.ExpiredDispatched {
		t.Fatalf("clients saw %d ctx errors but expired=%d+%d", got, st.Expired, st.ExpiredDispatched)
	}
	if uint64(st.LatencyCount) > st.Completed {
		t.Fatalf("latency histogram %d > completed %d", st.LatencyCount, st.Completed)
	}
	t.Logf("churn: %d completed, %d expired queued, %d expired in flight (%d batches)",
		st.Completed, st.Expired, st.ExpiredDispatched, st.Batches)
}

// blockingBackend signals batch entry and holds every call until released.
type blockingBackend struct {
	entered chan int
	release chan struct{}
}

func (b *blockingBackend) ClassifyBatch(imgs []*tensor.Tensor) ([]core.Result, error) {
	b.entered <- len(imgs)
	<-b.release
	return make([]core.Result, len(imgs)), nil
}

// slowBackend spends a fixed delay per batch so in-flight expiry is common.
type slowBackend struct{ delay time.Duration }

func (b *slowBackend) ClassifyBatch(imgs []*tensor.Tensor) ([]core.Result, error) {
	time.Sleep(b.delay)
	return make([]core.Result, len(imgs)), nil
}

// holdingBackend delegates after a one-time hold, counting invocations.
type holdingBackend struct {
	inner Backend
	hold  chan struct{}
	calls atomic.Int64
}

func (b *holdingBackend) ClassifyBatch(imgs []*tensor.Tensor) ([]core.Result, error) {
	<-b.hold
	b.calls.Add(1)
	return b.inner.ClassifyBatch(imgs)
}

// flakyBackend fails the first failFirst calls, then delegates.
type flakyBackend struct {
	inner     Backend
	err       error
	mu        sync.Mutex
	failFirst int
}

func (b *flakyBackend) ClassifyBatch(imgs []*tensor.Tensor) ([]core.Result, error) {
	b.mu.Lock()
	fail := b.failFirst > 0
	if fail {
		b.failFirst--
	}
	b.mu.Unlock()
	if fail {
		return nil, b.err
	}
	return b.inner.ClassifyBatch(imgs)
}
