package serve

import (
	"math"
	"sync"
	"time"
)

// Stats is a point-in-time snapshot of a Scheduler's counters. Latency
// quantiles are nearest-rank selections over a cumulative log-bucketed
// histogram (LatencyHist) — exact-to-bucket, see Histogram — and durations
// are nanoseconds in JSON.
//
// Every submitted request resolves to exactly one of Expired,
// ExpiredDispatched, Completed or Failed, so once the queue is drained
// Submitted equals their sum.
type Stats struct {
	// Shards is how many schedulers this snapshot covers: 1 for a
	// Scheduler's own stats, the fleet size for a Merge aggregate
	// (unreachable shards merged as zero-valued stats still count).
	Shards int `json:"shards,omitempty"`

	// Admission counters.
	Submitted uint64 `json:"submitted"` // accepted into the queue
	Rejected  uint64 `json:"rejected"`  // ErrQueueFull admissions
	Expired   uint64 `json:"expired"`   // context expired while queued
	// ExpiredDispatched counts requests whose context expired after their
	// batch was handed to the backend: the backend work is wasted, the
	// result is discarded, and the request is NOT counted Completed.
	ExpiredDispatched uint64 `json:"expired_dispatched"`
	Completed         uint64 `json:"completed"` // classified successfully
	Failed            uint64 `json:"failed"`    // failed with the batch's backend error

	// Batching. The histogram and mean reflect what the backend saw
	// (dispatched sizes), including riders that later expired mid-flight.
	Batches   uint64   `json:"batches"`    // backend invocations
	MeanBatch float64  `json:"mean_batch"` // dispatched images over Batches
	BatchHist []uint64 `json:"batch_hist"` // BatchHist[i] = batches of size i+1

	// Queue occupancy (live).
	QueueDepth int `json:"queue_depth"`
	QueueCap   int `json:"queue_cap"`

	// End-to-end latency (enqueue → response) since process start.
	// LatencyHist is the full mergeable histogram; the quantile fields are
	// derived from it at snapshot time for convenience.
	LatencyCount int           `json:"latency_count"`
	LatencyP50   time.Duration `json:"latency_p50_ns"`
	LatencyP99   time.Duration `json:"latency_p99_ns"`
	LatencyMax   time.Duration `json:"latency_max_ns"`
	LatencyHist  *Histogram    `json:"latency_hist,omitempty"`

	// Per-stage latency, same mergeable bucket layout as LatencyHist:
	// QueueHist is enqueue → picked into a batch; BackendHist is the wall
	// time of the request's batch inside the backend. Together with the
	// stage counters below they are the substrate of the /metrics
	// per-stage breakdown.
	QueueHist   *Histogram `json:"queue_hist,omitempty"`
	BackendHist *Histogram `json:"backend_hist,omitempty"`

	// Cumulative backend pipeline stage time (per-worker wall time summed
	// across the pool — can exceed wall clock under parallelism, like CPU
	// time). Zero when the backend does not report stage timing.
	StageReliable  time.Duration `json:"stage_reliable_ns"`
	StageQualifier time.Duration `json:"stage_qualifier_ns"`
	StageCNN       time.Duration `json:"stage_cnn_ns"`

	// ServiceTime is a rolling (EWMA, α=1/8) estimate of backend time per
	// image — the shard's speed, independent of queueing. The shard router
	// uses it for heterogeneity-aware weighted placement.
	ServiceTime time.Duration `json:"service_ns"`

	// BackendBusy is cumulative wall time spent inside the backend; over
	// uptime it gives backend utilisation.
	BackendBusy time.Duration `json:"backend_busy_ns"`
	Uptime      time.Duration `json:"uptime_ns"`
}

// Dispatched is the number of images the backend has been asked to classify:
// every terminal outcome downstream of a backend invocation.
func (s Stats) Dispatched() uint64 {
	return s.Completed + s.Failed + s.ExpiredDispatched
}

// NearestRank is the quantile rule used throughout the serving stats: the
// nearest-rank (ceil) selection q = sorted[ceil(p·n)-1] over a sorted,
// ascending window. Unlike floor indexing it never collapses a high
// quantile onto the median for small windows — for n < 100, P99 is the
// window maximum. p outside (0,1] is clamped. Histogram.Quantile applies
// the same rule over bucket counts.
func NearestRank(sorted []time.Duration, p float64) time.Duration {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	rank := int(math.Ceil(p * float64(n)))
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	return sorted[rank-1]
}

// statsState is the mutable, mutex-guarded side of Stats.
type statsState struct {
	mu          sync.Mutex
	start       time.Time
	nSubmitted  uint64
	nRejected   uint64
	nExpired    uint64
	nExpiredDis uint64
	nCompleted  uint64
	nFailed     uint64
	nBatches    uint64
	nDispatched uint64
	batchHist   []uint64
	busy        time.Duration
	service     time.Duration // EWMA backend time per image
	lat         *Histogram
	queueWait   *Histogram
	backendLat  *Histogram
	stages      [3]time.Duration // reliable, qualifier, cnn
}

func (st *statsState) init(maxBatch int) {
	st.start = time.Now()
	st.batchHist = make([]uint64, maxBatch)
	st.lat = NewHistogram()
	st.queueWait = NewHistogram()
	st.backendLat = NewHistogram()
}

func (st *statsState) submitted() {
	st.mu.Lock()
	st.nSubmitted++
	st.mu.Unlock()
}

func (st *statsState) rejected() {
	st.mu.Lock()
	st.nRejected++
	st.mu.Unlock()
}

func (st *statsState) expired() {
	st.mu.Lock()
	st.nExpired++
	st.mu.Unlock()
}

func (st *statsState) expiredDispatched() {
	st.mu.Lock()
	st.nExpiredDis++
	st.mu.Unlock()
}

// batchDone records one backend invocation of n images taking busy wall
// time, and folds busy/n into the rolling per-image service-time estimate.
func (st *statsState) batchDone(n int, busy time.Duration) {
	st.mu.Lock()
	st.nBatches++
	st.nDispatched += uint64(n)
	st.batchHist[n-1]++
	st.busy += busy
	perImage := busy / time.Duration(n)
	if st.service == 0 {
		st.service = perImage
	} else {
		st.service += (perImage - st.service) / 8
	}
	st.mu.Unlock()
}

func (st *statsState) failed(n int) {
	st.mu.Lock()
	st.nFailed += uint64(n)
	st.mu.Unlock()
}

// completed records the delivered requests of one batch: end-to-end
// latency plus the per-stage observations (queue wait, backend wall time)
// and the batch's backend stage breakdown.
func (st *statsState) completed(timings []Timing) {
	st.mu.Lock()
	st.nCompleted += uint64(len(timings))
	for _, tm := range timings {
		st.lat.Observe(tm.Done.Sub(tm.Enqueued))
		st.queueWait.Observe(tm.Picked.Sub(tm.Enqueued))
		st.backendLat.Observe(tm.Done.Sub(tm.Dispatched))
	}
	st.mu.Unlock()
}

// stageTimes folds one batch's backend pipeline breakdown into the
// cumulative per-stage counters.
func (st *statsState) stageTimes(reliable, qualifier, cnn time.Duration) {
	st.mu.Lock()
	st.stages[0] += reliable
	st.stages[1] += qualifier
	st.stages[2] += cnn
	st.mu.Unlock()
}

func (st *statsState) snapshot(depth, capacity int) Stats {
	st.mu.Lock()
	defer st.mu.Unlock()
	s := Stats{
		Shards:            1,
		Submitted:         st.nSubmitted,
		Rejected:          st.nRejected,
		Expired:           st.nExpired,
		ExpiredDispatched: st.nExpiredDis,
		Completed:         st.nCompleted,
		Failed:            st.nFailed,
		Batches:           st.nBatches,
		BatchHist:         append([]uint64(nil), st.batchHist...),
		QueueDepth:        depth,
		QueueCap:          capacity,
		ServiceTime:       st.service,
		BackendBusy:       st.busy,
		Uptime:            time.Since(st.start),
	}
	if st.nBatches > 0 {
		s.MeanBatch = float64(st.nDispatched) / float64(st.nBatches)
	}
	s.LatencyHist = st.lat.Clone()
	s.QueueHist = st.queueWait.Clone()
	s.BackendHist = st.backendLat.Clone()
	s.StageReliable, s.StageQualifier, s.StageCNN = st.stages[0], st.stages[1], st.stages[2]
	if n := st.lat.Count(); n > 0 {
		s.LatencyCount = int(n)
		s.LatencyP50 = st.lat.Quantile(0.50)
		s.LatencyP99 = st.lat.Quantile(0.99)
		s.LatencyMax = st.lat.Max()
	}
	return s
}
