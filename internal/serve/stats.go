package serve

import (
	"sort"
	"sync"
	"time"
)

// Stats is a point-in-time snapshot of a Scheduler's counters. Latency
// quantiles are computed over a rolling window of recent requests
// (Config.LatencyWindow); durations are nanoseconds in JSON.
type Stats struct {
	// Admission counters.
	Submitted uint64 `json:"submitted"` // accepted into the queue
	Rejected  uint64 `json:"rejected"`  // ErrQueueFull admissions
	Expired   uint64 `json:"expired"`   // context expired while queued
	Completed uint64 `json:"completed"` // classified successfully
	Failed    uint64 `json:"failed"`    // failed with the batch's backend error

	// Batching.
	Batches   uint64   `json:"batches"`    // backend invocations
	MeanBatch float64  `json:"mean_batch"` // Completed+Failed over Batches
	BatchHist []uint64 `json:"batch_hist"` // BatchHist[i] = batches of size i+1

	// Queue occupancy (live).
	QueueDepth int `json:"queue_depth"`
	QueueCap   int `json:"queue_cap"`

	// Rolling end-to-end latency (enqueue → response) over the window.
	LatencyCount int           `json:"latency_count"`
	LatencyP50   time.Duration `json:"latency_p50_ns"`
	LatencyP99   time.Duration `json:"latency_p99_ns"`
	LatencyMax   time.Duration `json:"latency_max_ns"`

	// BackendBusy is cumulative wall time spent inside the backend; over
	// uptime it gives backend utilisation.
	BackendBusy time.Duration `json:"backend_busy_ns"`
	Uptime      time.Duration `json:"uptime_ns"`
}

// statsState is the mutable, mutex-guarded side of Stats.
type statsState struct {
	mu         sync.Mutex
	start      time.Time
	nSubmitted uint64
	nRejected  uint64
	nExpired   uint64
	nCompleted uint64
	nFailed    uint64
	nBatches   uint64
	batchHist  []uint64
	busy       time.Duration

	// lat is a ring buffer of the most recent request latencies.
	lat     []time.Duration
	latNext int
	latLen  int
}

func (st *statsState) init(maxBatch, window int) {
	st.start = time.Now()
	st.batchHist = make([]uint64, maxBatch)
	st.lat = make([]time.Duration, window)
}

func (st *statsState) submitted() {
	st.mu.Lock()
	st.nSubmitted++
	st.mu.Unlock()
}

func (st *statsState) rejected() {
	st.mu.Lock()
	st.nRejected++
	st.mu.Unlock()
}

func (st *statsState) expired() {
	st.mu.Lock()
	st.nExpired++
	st.mu.Unlock()
}

func (st *statsState) failed(n int, busy time.Duration) {
	st.mu.Lock()
	st.nFailed += uint64(n)
	st.nBatches++
	st.batchHist[n-1]++
	st.busy += busy
	st.mu.Unlock()
}

func (st *statsState) completed(n int, lats []time.Duration, busy time.Duration) {
	st.mu.Lock()
	st.nCompleted += uint64(n)
	st.nBatches++
	st.batchHist[n-1]++
	st.busy += busy
	for _, l := range lats {
		st.lat[st.latNext] = l
		st.latNext = (st.latNext + 1) % len(st.lat)
		if st.latLen < len(st.lat) {
			st.latLen++
		}
	}
	st.mu.Unlock()
}

func (st *statsState) snapshot(depth, capacity int) Stats {
	st.mu.Lock()
	defer st.mu.Unlock()
	s := Stats{
		Submitted:   st.nSubmitted,
		Rejected:    st.nRejected,
		Expired:     st.nExpired,
		Completed:   st.nCompleted,
		Failed:      st.nFailed,
		Batches:     st.nBatches,
		BatchHist:   append([]uint64(nil), st.batchHist...),
		QueueDepth:  depth,
		QueueCap:    capacity,
		BackendBusy: st.busy,
		Uptime:      time.Since(st.start),
	}
	if st.nBatches > 0 {
		s.MeanBatch = float64(st.nCompleted+st.nFailed) / float64(st.nBatches)
	}
	if st.latLen > 0 {
		window := append([]time.Duration(nil), st.lat[:st.latLen]...)
		sort.Slice(window, func(i, j int) bool { return window[i] < window[j] })
		s.LatencyCount = st.latLen
		s.LatencyP50 = window[(st.latLen-1)/2]
		s.LatencyP99 = window[(st.latLen-1)*99/100]
		s.LatencyMax = window[st.latLen-1]
	}
	return s
}
