package serve

import (
	"math"
	"sync"
	"time"
)

// Stats is a point-in-time snapshot of a Scheduler's counters. Latency
// quantiles are nearest-rank selections over a cumulative log-bucketed
// histogram (LatencyHist) — exact-to-bucket, see Histogram — and durations
// are nanoseconds in JSON.
//
// Every submitted request resolves to exactly one of Expired,
// ExpiredDispatched, Completed or Failed, so once the queue is drained
// Submitted equals their sum. Every counter and histogram also splits per
// service class in Classes; the per-class values sum to the aggregate
// fields by construction (both are updated under the same lock from the
// same events).
type Stats struct {
	// Shards is how many schedulers this snapshot covers: 1 for a
	// Scheduler's own stats, the fleet size for a Merge aggregate
	// (unreachable shards merged as zero-valued stats still count).
	Shards int `json:"shards,omitempty"`

	// Admission counters.
	Submitted uint64 `json:"submitted"` // accepted into a queue
	Rejected  uint64 `json:"rejected"`  // ErrQueueFull admissions
	Expired   uint64 `json:"expired"`   // context expired while queued
	// ExpiredDispatched counts requests whose context expired after their
	// batch was handed to the backend: the backend work is wasted, the
	// result is discarded, and the request is NOT counted Completed.
	ExpiredDispatched uint64 `json:"expired_dispatched"`
	Completed         uint64 `json:"completed"` // classified successfully
	Failed            uint64 `json:"failed"`    // failed with the batch's backend error
	// Degraded counts budget requests re-admitted into the fast (CNN-only)
	// pipeline because the budget queue was full. Counted exactly once, at
	// admission; a degraded request still resolves to exactly one of the
	// outcome counters above.
	Degraded uint64 `json:"degraded"`

	// Batching. The histogram and mean reflect what the backend saw
	// (dispatched sizes), including riders that later expired mid-flight.
	Batches   uint64   `json:"batches"`    // backend invocations
	MeanBatch float64  `json:"mean_batch"` // dispatched images over Batches
	BatchHist []uint64 `json:"batch_hist"` // BatchHist[i] = batches of size i+1

	// Queue occupancy (live, summed across the class queues).
	QueueDepth int `json:"queue_depth"`
	QueueCap   int `json:"queue_cap"`

	// End-to-end latency (enqueue → response) since process start.
	// LatencyHist is the full mergeable histogram; the quantile fields are
	// derived from it at snapshot time for convenience.
	LatencyCount int           `json:"latency_count"`
	LatencyP50   time.Duration `json:"latency_p50_ns"`
	LatencyP99   time.Duration `json:"latency_p99_ns"`
	LatencyMax   time.Duration `json:"latency_max_ns"`
	LatencyHist  *Histogram    `json:"latency_hist,omitempty"`

	// Per-stage latency, same mergeable bucket layout as LatencyHist:
	// QueueHist is enqueue → picked into a batch; BackendHist is the wall
	// time of the request's batch inside the backend. Together with the
	// stage counters below they are the substrate of the /metrics
	// per-stage breakdown.
	QueueHist   *Histogram `json:"queue_hist,omitempty"`
	BackendHist *Histogram `json:"backend_hist,omitempty"`

	// Cumulative backend pipeline stage time (per-worker wall time summed
	// across the pool — can exceed wall clock under parallelism, like CPU
	// time). Zero when the backend does not report stage timing.
	StageReliable  time.Duration `json:"stage_reliable_ns"`
	StageQualifier time.Duration `json:"stage_qualifier_ns"`
	StageCNN       time.Duration `json:"stage_cnn_ns"`

	// ServiceTime is a rolling (EWMA, α=1/8) estimate of backend time per
	// image — the shard's speed, independent of queueing. The shard router
	// uses it for heterogeneity-aware weighted placement.
	ServiceTime time.Duration `json:"service_ns"`

	// AdvertisedWeight is the shard's self-computed min-max placement
	// weight (see WeightTracker): an offered service rate in images/sec,
	// adapted online from local queue pressure and shed rate. 0 means the
	// shard is not advertising (no service estimate yet, or the policy is
	// disabled); routers then fall back to static-weight scoring. In a
	// Merge aggregate it is the fleet sum — total advertised capacity.
	AdvertisedWeight float64 `json:"advertised_weight,omitempty"`

	// BackendBusy is cumulative wall time spent inside the backend; over
	// uptime it gives backend utilisation.
	BackendBusy time.Duration `json:"backend_busy_ns"`
	Uptime      time.Duration `json:"uptime_ns"`

	// Classes is the per-service-class split, in Classes order
	// (guaranteed, fast, budget). Always length NumClasses for a live
	// snapshot; empty only for zero-valued placeholder Stats.
	Classes []ClassStats `json:"classes,omitempty"`
}

// ClassStats is one service class's slice of the scheduler counters. The
// same outcome invariant holds per class: Submitted resolves to exactly
// one of Expired, ExpiredDispatched, Completed or Failed. QueueDepth
// counts requests waiting in this class's queue — a degraded budget
// request occupies (and is counted in) the fast queue, while its
// Submitted/Completed/… accounting stays under budget.
type ClassStats struct {
	Class             string `json:"class"`
	Submitted         uint64 `json:"submitted"`
	Rejected          uint64 `json:"rejected"`
	Expired           uint64 `json:"expired"`
	ExpiredDispatched uint64 `json:"expired_dispatched"`
	Completed         uint64 `json:"completed"`
	Failed            uint64 `json:"failed"`
	Degraded          uint64 `json:"degraded"`

	QueueDepth int `json:"queue_depth"`
	QueueCap   int `json:"queue_cap"`

	LatencyCount int           `json:"latency_count"`
	LatencyP50   time.Duration `json:"latency_p50_ns"`
	LatencyP99   time.Duration `json:"latency_p99_ns"`
	LatencyMax   time.Duration `json:"latency_max_ns"`
	LatencyHist  *Histogram    `json:"latency_hist,omitempty"`
	QueueHist    *Histogram    `json:"queue_hist,omitempty"`

	// Per-class share of the backend stage-busy time: reliable + qualifier
	// time is apportioned among the batch's full-pipeline riders, CNN time
	// among all riders, by rider count. The per-class sums equal the
	// aggregate stage counters exactly (remainders are assigned, not
	// dropped).
	StageReliable  time.Duration `json:"stage_reliable_ns"`
	StageQualifier time.Duration `json:"stage_qualifier_ns"`
	StageCNN       time.Duration `json:"stage_cnn_ns"`
}

// Dispatched is the number of images the backend has been asked to classify:
// every terminal outcome downstream of a backend invocation.
func (s Stats) Dispatched() uint64 {
	return s.Completed + s.Failed + s.ExpiredDispatched
}

// Class returns the snapshot's stats for one service class (zero-valued if
// the snapshot carries no class split, e.g. a placeholder from an
// unreachable shard).
func (s Stats) Class(c Class) ClassStats {
	name := c.String()
	for _, cs := range s.Classes {
		if cs.Class == name {
			return cs
		}
	}
	return ClassStats{Class: name}
}

// NearestRank is the quantile rule used throughout the serving stats: the
// nearest-rank (ceil) selection q = sorted[ceil(p·n)-1] over a sorted,
// ascending window. Unlike floor indexing it never collapses a high
// quantile onto the median for small windows — for n < 100, P99 is the
// window maximum. p outside (0,1] is clamped. Histogram.Quantile applies
// the same rule over bucket counts.
func NearestRank(sorted []time.Duration, p float64) time.Duration {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	rank := int(math.Ceil(p * float64(n)))
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	return sorted[rank-1]
}

// classState is the mutable per-class slice of statsState.
type classState struct {
	nSubmitted  uint64
	nRejected   uint64
	nExpired    uint64
	nExpiredDis uint64
	nCompleted  uint64
	nFailed     uint64
	nDegraded   uint64
	lat         *Histogram
	queueWait   *Histogram
	stages      [3]time.Duration
}

// statsState is the mutable, mutex-guarded side of Stats. The aggregate
// fields and the per-class fields are updated together under the same
// lock, so per-class sums equal the aggregates in every snapshot.
type statsState struct {
	mu          sync.Mutex
	start       time.Time
	nSubmitted  uint64
	nRejected   uint64
	nExpired    uint64
	nExpiredDis uint64
	nCompleted  uint64
	nFailed     uint64
	nDegraded   uint64
	nBatches    uint64
	nDispatched uint64
	batchHist   []uint64
	busy        time.Duration
	service     time.Duration // EWMA backend time per image
	lat         *Histogram
	queueWait   *Histogram
	backendLat  *Histogram
	stages      [3]time.Duration // reliable, qualifier, cnn
	classes     [NumClasses]classState
}

func (st *statsState) init(maxBatch int) {
	st.start = time.Now()
	st.batchHist = make([]uint64, maxBatch)
	st.lat = NewHistogram()
	st.queueWait = NewHistogram()
	st.backendLat = NewHistogram()
	for c := range st.classes {
		st.classes[c].lat = NewHistogram()
		st.classes[c].queueWait = NewHistogram()
	}
}

func (st *statsState) submitted(c Class, degraded bool) {
	st.mu.Lock()
	st.nSubmitted++
	st.classes[c].nSubmitted++
	if degraded {
		st.nDegraded++
		st.classes[c].nDegraded++
	}
	st.mu.Unlock()
}

func (st *statsState) rejected(c Class) {
	st.mu.Lock()
	st.nRejected++
	st.classes[c].nRejected++
	st.mu.Unlock()
}

func (st *statsState) expired(c Class) {
	st.mu.Lock()
	st.nExpired++
	st.classes[c].nExpired++
	st.mu.Unlock()
}

func (st *statsState) expiredDispatched(c Class) {
	st.mu.Lock()
	st.nExpiredDis++
	st.classes[c].nExpiredDis++
	st.mu.Unlock()
}

// batchDone records one backend invocation of n images taking busy wall
// time, and folds busy/n into the rolling per-image service-time estimate.
func (st *statsState) batchDone(n int, busy time.Duration) {
	st.mu.Lock()
	st.nBatches++
	st.nDispatched += uint64(n)
	st.batchHist[n-1]++
	st.busy += busy
	perImage := busy / time.Duration(n)
	if st.service == 0 {
		st.service = perImage
	} else {
		st.service += (perImage - st.service) / 8
	}
	st.mu.Unlock()
}

// serviceEstimate returns the current EWMA backend time per image.
func (st *statsState) serviceEstimate() time.Duration {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.service
}

func (st *statsState) failed(byClass [NumClasses]int) {
	st.mu.Lock()
	for c, n := range byClass {
		st.nFailed += uint64(n)
		st.classes[c].nFailed += uint64(n)
	}
	st.mu.Unlock()
}

// completed records the delivered requests of one batch: end-to-end
// latency plus the per-stage observations (queue wait, backend wall time)
// and the same observations under each request's class.
func (st *statsState) completed(timings []Timing) {
	st.mu.Lock()
	st.nCompleted += uint64(len(timings))
	for _, tm := range timings {
		lat := tm.Done.Sub(tm.Enqueued)
		wait := tm.Picked.Sub(tm.Enqueued)
		st.lat.Observe(lat)
		st.queueWait.Observe(wait)
		st.backendLat.Observe(tm.Done.Sub(tm.Dispatched))
		cs := &st.classes[tm.Class]
		cs.nCompleted++
		cs.lat.Observe(lat)
		cs.queueWait.Observe(wait)
	}
	st.mu.Unlock()
}

// stageTimes folds one batch's backend pipeline breakdown into the
// cumulative per-stage counters, apportioning each stage across the
// classes that rode the batch: reliable + qualifier time among the
// full-pipeline riders, CNN time among all riders, proportional to rider
// count with the integer remainder assigned to the last participating
// class — so the per-class stage sums equal the aggregates exactly.
func (st *statsState) stageTimes(stages [3]time.Duration, fullRiders, allRiders [NumClasses]int) {
	st.mu.Lock()
	for i := range stages {
		st.stages[i] += stages[i]
		riders := fullRiders
		if i == 2 { // CNN runs for every rider
			riders = allRiders
		}
		total := 0
		for _, n := range riders {
			total += n
		}
		if total == 0 || stages[i] == 0 {
			continue
		}
		var assigned time.Duration
		last := -1
		for c, n := range riders {
			if n > 0 {
				last = c
			}
		}
		for c, n := range riders {
			if n == 0 {
				continue
			}
			share := stages[i] * time.Duration(n) / time.Duration(total)
			if c == last {
				share = stages[i] - assigned
			}
			st.classes[c].stages[i] += share
			assigned += share
		}
	}
	st.mu.Unlock()
}

func (st *statsState) snapshot(depths, caps [NumClasses]int) Stats {
	st.mu.Lock()
	defer st.mu.Unlock()
	depth, capacity := 0, 0
	for c := range depths {
		depth += depths[c]
		capacity += caps[c]
	}
	s := Stats{
		Shards:            1,
		Submitted:         st.nSubmitted,
		Rejected:          st.nRejected,
		Expired:           st.nExpired,
		ExpiredDispatched: st.nExpiredDis,
		Completed:         st.nCompleted,
		Failed:            st.nFailed,
		Degraded:          st.nDegraded,
		Batches:           st.nBatches,
		BatchHist:         append([]uint64(nil), st.batchHist...),
		QueueDepth:        depth,
		QueueCap:          capacity,
		ServiceTime:       st.service,
		BackendBusy:       st.busy,
		Uptime:            time.Since(st.start),
	}
	if st.nBatches > 0 {
		s.MeanBatch = float64(st.nDispatched) / float64(st.nBatches)
	}
	s.LatencyHist = st.lat.Clone()
	s.QueueHist = st.queueWait.Clone()
	s.BackendHist = st.backendLat.Clone()
	s.StageReliable, s.StageQualifier, s.StageCNN = st.stages[0], st.stages[1], st.stages[2]
	if n := st.lat.Count(); n > 0 {
		s.LatencyCount = int(n)
		s.LatencyP50 = st.lat.Quantile(0.50)
		s.LatencyP99 = st.lat.Quantile(0.99)
		s.LatencyMax = st.lat.Max()
	}
	s.Classes = make([]ClassStats, NumClasses)
	for i, c := range Classes {
		src := &st.classes[c]
		cs := ClassStats{
			Class:             c.String(),
			Submitted:         src.nSubmitted,
			Rejected:          src.nRejected,
			Expired:           src.nExpired,
			ExpiredDispatched: src.nExpiredDis,
			Completed:         src.nCompleted,
			Failed:            src.nFailed,
			Degraded:          src.nDegraded,
			QueueDepth:        depths[c],
			QueueCap:          caps[c],
			StageReliable:     src.stages[0],
			StageQualifier:    src.stages[1],
			StageCNN:          src.stages[2],
		}
		cs.LatencyHist = src.lat.Clone()
		cs.QueueHist = src.queueWait.Clone()
		if n := src.lat.Count(); n > 0 {
			cs.LatencyCount = int(n)
			cs.LatencyP50 = src.lat.Quantile(0.50)
			cs.LatencyP99 = src.lat.Quantile(0.99)
			cs.LatencyMax = src.lat.Max()
		}
		s.Classes[i] = cs
	}
	return s
}
