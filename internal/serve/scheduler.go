// Package serve is the asynchronous serving front-end over the pooled
// inference stack: many goroutines submit single images, a Scheduler
// coalesces them into micro-batches and flushes each batch to a shared
// backend (core.BatchClassifier in production, anything implementing
// Backend in tests).
//
// The scheduling policy is the classic latency/occupancy trade: a batch is
// flushed as soon as it reaches MaxBatch images OR the oldest queued image
// has waited MaxDelay since submission (queue time behind an in-flight
// batch counts), whichever comes first. MaxDelay == 0 degenerates to
// "flush whatever is instantaneously queued" — minimal added latency, with
// coalescing only under concurrent load. Overload is handled by admission
// control, not buffering: the queue is bounded and a Submit against a full
// queue fails immediately with ErrQueueFull, so callers can shed load or
// retry with backoff. Per-request context deadlines are honoured both while
// queued (an expired request is dropped before it costs backend work) and
// while waiting for the batch to complete.
//
// # Concurrency contract
//
// Submit is safe from any number of goroutines; a single flusher goroutine
// owns batch formation and is the only caller of the backend. Every request
// resolves through a single-outcome CAS state machine
// (pending → dispatched → delivered | expired), so the delivery/expiry race
// lands each request in exactly one stats bucket no matter how it falls.
//
// # Observability
//
// Stats() snapshots the counters plus a cumulative log-bucketed latency
// Histogram; histograms from many schedulers Merge exactly, which is how
// the shard router computes fleet quantiles that match a single-process
// run bucket-for-bucket.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/tensor"
)

// Backend consumes the micro-batches the Scheduler forms. Implementations
// must return one result per image, in input order. The Scheduler issues
// calls from a single flusher goroutine, so implementations need not be
// safe for concurrent use (core.BatchClassifier is anyway).
type Backend interface {
	ClassifyBatch(imgs []*tensor.Tensor) ([]core.Result, error)
}

// TimedBackend is the optional richer contract: a backend that also
// reports the batch's per-stage wall-time breakdown. The Scheduler uses it
// when available (core.BatchClassifier implements it), so per-stage
// observability costs nothing to backends that don't care.
type TimedBackend interface {
	Backend
	ClassifyBatchTimed(imgs []*tensor.Tensor) ([]core.Result, core.StageTimes, error)
}

// Timing is the per-request stage-timestamp breakdown SubmitTraced
// returns: the scheduler's contribution to a request trace. Timestamps are
// monotonic and ordered Enqueued ≤ Picked ≤ Dispatched ≤ Done; the HTTP
// edge turns their deltas into spans (queue wait, batch assembly, backend)
// and prepends/appends its own.
type Timing struct {
	// Enqueued is when Submit accepted the request into the queue.
	Enqueued time.Time
	// Picked is when the flusher pulled the request into a forming batch.
	Picked time.Time
	// Dispatched is when the request's batch was handed to the backend.
	Dispatched time.Time
	// Done is when the backend returned the batch.
	Done time.Time
	// BatchSize is how many live requests shared the batch.
	BatchSize int
	// Stages is the batch-level backend pipeline breakdown (zero unless
	// the backend implements TimedBackend). Batch-level: shared by every
	// rider of the batch, and summed per-worker wall time under a parallel
	// pool.
	Stages core.StageTimes
}

var (
	// ErrQueueFull is the admission-control rejection: the bounded queue is
	// full and the request was not accepted. The caller owns the retry
	// policy.
	ErrQueueFull = errors.New("serve: queue full")
	// ErrClosed is returned by Submit after Shutdown has begun.
	ErrClosed = errors.New("serve: scheduler closed")
)

// Config parameterises a Scheduler.
type Config struct {
	// MaxBatch is the flush threshold (and the largest batch the backend
	// will see). Default 8.
	MaxBatch int
	// MaxDelay bounds how long the oldest queued request waits for the
	// batch to fill. 0 means flush immediately with whatever is queued.
	MaxDelay time.Duration
	// QueueSize bounds the number of accepted-but-unflushed requests;
	// Submit fails with ErrQueueFull beyond it. Default 8 × MaxBatch.
	QueueSize int
}

func (c Config) withDefaults() (Config, error) {
	if c.MaxBatch == 0 {
		c.MaxBatch = 8
	}
	if c.MaxBatch < 1 {
		return c, fmt.Errorf("serve: MaxBatch %d must be >= 1", c.MaxBatch)
	}
	if c.MaxDelay < 0 {
		return c, fmt.Errorf("serve: negative MaxDelay %v", c.MaxDelay)
	}
	if c.QueueSize == 0 {
		c.QueueSize = 8 * c.MaxBatch
	}
	if c.QueueSize < 1 {
		return c, fmt.Errorf("serve: QueueSize %d must be >= 1", c.QueueSize)
	}
	return c, nil
}

// Request lifecycle states. Every request resolves to exactly one terminal
// state — stateDelivered (the flusher committed a response to done) or
// stateExpired (the submitter claimed its context error) — via CAS, so a
// request is counted in the stats exactly once no matter how the
// delivery/expiry race falls.
const (
	statePending    int32 = iota // queued, not yet picked into a batch
	stateDispatched              // in a batch handed to the backend
	stateDelivered               // terminal: response committed by the flusher
	stateExpired                 // terminal: context error claimed by the submitter (or flusher pre-dispatch)
)

// request is one queued classification.
type request struct {
	img    *tensor.Tensor
	ctx    context.Context
	enq    time.Time
	picked time.Time // set by the flusher when pulled into a batch
	// state is the single-outcome arbiter between the flusher delivering a
	// response and the submitter abandoning on context expiry.
	state atomic.Int32
	// done is buffered so the flusher never blocks on a caller that gave up.
	done chan response
}

// abandon is the submitter's side of the delivery/expiry race: it tries to
// claim the request's single outcome as "expired". It reports whether the
// claim won; on a lost race the response is committed (or imminently so) on
// r.done. The winner does the stats accounting: expired() if the request was
// still queued, expiredDispatched() if its batch had already been handed to
// the backend (the backend work is wasted, but the result is not delivered
// and not counted completed).
func (r *request) abandon(st *statsState) bool {
	if r.state.CompareAndSwap(statePending, stateExpired) {
		st.expired()
		return true
	}
	if r.state.CompareAndSwap(stateDispatched, stateExpired) {
		st.expiredDispatched()
		return true
	}
	return false
}

type response struct {
	res    core.Result
	timing Timing
	err    error
}

// Scheduler coalesces concurrent single-image submissions into
// micro-batches. Build with New, serve with Submit from any number of
// goroutines, stop with Shutdown.
type Scheduler struct {
	cfg     Config
	backend Backend

	// mu guards closed and makes Submit's enqueue atomic with respect to
	// Shutdown's close(queue).
	mu     sync.RWMutex
	closed bool

	queue   chan *request
	drained chan struct{} // closed when the flusher has flushed everything

	stats statsState
}

// New starts a Scheduler (and its flusher goroutine) over backend.
func New(backend Backend, cfg Config) (*Scheduler, error) {
	if backend == nil {
		return nil, fmt.Errorf("serve: scheduler needs a backend")
	}
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	s := &Scheduler{
		cfg:     cfg,
		backend: backend,
		queue:   make(chan *request, cfg.QueueSize),
		drained: make(chan struct{}),
	}
	s.stats.init(cfg.MaxBatch)
	go s.run()
	return s, nil
}

// Config returns the normalised configuration.
func (s *Scheduler) Config() Config { return s.cfg }

// Submit queues one image and blocks until its batch completes, the context
// is done, or admission control rejects it. Safe for any number of
// concurrent callers. The context deadline covers the whole request
// lifetime: a request that expires while still queued is dropped without
// costing backend work.
func (s *Scheduler) Submit(ctx context.Context, img *tensor.Tensor) (core.Result, error) {
	res, _, err := s.SubmitTraced(ctx, img)
	return res, err
}

// SubmitTraced is Submit plus the request's stage-timestamp breakdown —
// the scheduler's half of a request trace. The Timing is meaningful only
// on success; expired or rejected requests return a zero Timing.
func (s *Scheduler) SubmitTraced(ctx context.Context, img *tensor.Tensor) (core.Result, Timing, error) {
	if img == nil {
		return core.Result{}, Timing{}, fmt.Errorf("serve: nil image")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	r := &request{img: img, ctx: ctx, enq: time.Now(), done: make(chan response, 1)}
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return core.Result{}, Timing{}, ErrClosed
	}
	select {
	case s.queue <- r:
		s.mu.RUnlock()
		s.stats.submitted()
	default:
		s.mu.RUnlock()
		s.stats.rejected()
		return core.Result{}, Timing{}, ErrQueueFull
	}
	select {
	case resp := <-r.done:
		return resp.res, resp.timing, resp.err
	case <-ctx.Done():
		if r.abandon(&s.stats) {
			// Claimed: the flusher will skip this request (still queued) or
			// discard its result (already dispatched); either way it is
			// counted exactly once, as expired.
			return core.Result{}, Timing{}, ctx.Err()
		}
		// Lost the race: the flusher committed a response concurrently with
		// the context firing. Honour the committed outcome — it is the one
		// the stats counted.
		resp := <-r.done
		return resp.res, resp.timing, resp.err
	}
}

// Shutdown stops admission (Submit fails with ErrClosed), drains every
// already-accepted request — including the in-flight batch — and returns
// when the flusher has exited, or with ctx's error if the deadline passes
// first. Idempotent.
func (s *Scheduler) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.queue)
	}
	s.mu.Unlock()
	if ctx == nil {
		ctx = context.Background()
	}
	select {
	case <-s.drained:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("serve: shutdown: %w", ctx.Err())
	}
}

// run is the flusher: it owns batch formation and is the only goroutine
// that calls the backend, so batches are naturally serialized.
func (s *Scheduler) run() {
	defer close(s.drained)
	for {
		r, ok := <-s.queue
		if !ok {
			return
		}
		r.picked = time.Now()
		batch := append(make([]*request, 0, s.cfg.MaxBatch), r)
		batch = s.collect(batch)
		s.flush(batch)
	}
}

// collect fills the batch up to MaxBatch, waiting until the batch's first
// request has been queued for MaxDelay — time already spent waiting behind
// an in-flight batch counts, so a request never pays queue-wait plus a full
// extra MaxDelay. Once the queue is closed the remaining buffered requests
// drain without waiting on the timer.
func (s *Scheduler) collect(batch []*request) []*request {
	if s.cfg.MaxBatch <= 1 {
		return batch
	}
	remaining := s.cfg.MaxDelay - time.Since(batch[0].enq)
	if s.cfg.MaxDelay <= 0 || remaining <= 0 {
		for len(batch) < s.cfg.MaxBatch {
			select {
			case r, ok := <-s.queue:
				if !ok {
					return batch
				}
				r.picked = time.Now()
				batch = append(batch, r)
			default:
				return batch
			}
		}
		return batch
	}
	timer := time.NewTimer(remaining)
	defer timer.Stop()
	for len(batch) < s.cfg.MaxBatch {
		select {
		case r, ok := <-s.queue:
			if !ok {
				return batch
			}
			r.picked = time.Now()
			batch = append(batch, r)
		case <-timer.C:
			return batch
		}
	}
	return batch
}

// flush drops requests whose context already expired, runs the survivors
// through the backend as one batch, and delivers per-request responses.
// Every transition out of statePending/stateDispatched is a CAS against the
// submitter's abandon, so each request lands in exactly one stats bucket.
func (s *Scheduler) flush(batch []*request) {
	live := batch[:0]
	for _, r := range batch {
		if r.ctx.Err() != nil {
			if r.state.CompareAndSwap(statePending, stateExpired) {
				r.done <- response{err: r.ctx.Err()}
				s.stats.expired()
			}
			// On a lost CAS the submitter already claimed (and counted) the
			// expiry; nothing to deliver.
			continue
		}
		if !r.state.CompareAndSwap(statePending, stateDispatched) {
			// The context fired between the check above and the CAS and the
			// submitter claimed the request.
			continue
		}
		live = append(live, r)
	}
	if len(live) == 0 {
		return
	}
	imgs := make([]*tensor.Tensor, len(live))
	for i, r := range live {
		imgs[i] = r.img
	}
	start := time.Now()
	var results []core.Result
	var stages core.StageTimes
	var err error
	if tb, ok := s.backend.(TimedBackend); ok {
		results, stages, err = tb.ClassifyBatchTimed(imgs)
	} else {
		results, err = s.backend.ClassifyBatch(imgs)
	}
	if err == nil && len(results) != len(imgs) {
		err = fmt.Errorf("serve: backend returned %d results for %d images", len(results), len(imgs))
	}
	now := time.Now()
	// The batch-level accounting (invocation count, size histogram, busy
	// time) reflects what the backend actually saw, independent of how the
	// per-request outcomes resolve.
	s.stats.batchDone(len(live), now.Sub(start))
	s.stats.stageTimes(stages.Reliable, stages.Qualifier, stages.CNN)
	if err != nil {
		nFailed := 0
		for _, r := range live {
			if r.state.CompareAndSwap(stateDispatched, stateDelivered) {
				r.done <- response{err: err}
				nFailed++
			}
		}
		s.stats.failed(nFailed)
		return
	}
	timings := make([]Timing, 0, len(live))
	for i, r := range live {
		tm := Timing{
			Enqueued:   r.enq,
			Picked:     r.picked,
			Dispatched: start,
			Done:       now,
			BatchSize:  len(live),
			Stages:     stages,
		}
		if r.state.CompareAndSwap(stateDispatched, stateDelivered) {
			r.done <- response{res: results[i], timing: tm}
			timings = append(timings, tm)
		}
		// A lost CAS means the submitter expired the request mid-batch: the
		// result is discarded and its latency stays out of the histogram.
	}
	s.stats.completed(timings)
}

// Stats snapshots the scheduler counters. QueueDepth is read live; the rest
// is consistent at a single instant.
func (s *Scheduler) Stats() Stats {
	return s.stats.snapshot(len(s.queue), cap(s.queue))
}
