// Package serve is the asynchronous serving front-end over the pooled
// inference stack: many goroutines submit single images, a Scheduler
// coalesces them into micro-batches and flushes each batch to a shared
// backend (core.BatchClassifier in production, anything implementing
// Backend in tests).
//
// Every request carries a service Class (guaranteed | fast | budget) that
// selects its queue, its execution pipeline and its overload behaviour.
// The scheduler keeps one bounded queue per class, ordered by deadline
// within the class (earliest context deadline first, FIFO among requests
// without one), and fills batches by smooth weighted round-robin across
// the non-empty classes (default weights 16:4:1), so a budget backlog can
// never starve guaranteed traffic. Mixed-class batches still reach the
// backend as ONE batch — the per-request pipeline split happens inside the
// backend (see PipelinedBackend), not by fragmenting the batch.
//
// The flush policy is the classic latency/occupancy trade: a batch is
// flushed as soon as it reaches MaxBatch images OR the oldest pulled image
// has waited MaxDelay since submission (queue time behind an in-flight
// batch counts), whichever comes first. MaxDelay == 0 degenerates to
// "flush whatever is instantaneously queued".
//
// Overload is class-dependent admission control, not buffering: guaranteed
// and fast requests against a full class queue fail immediately with
// ErrQueueFull, so callers can shed load or retry with backoff (RetryAfter
// turns the class's queue depth × EWMA service time into a backoff hint).
// A budget request against a full budget queue DEGRADES instead: it is
// re-admitted into the fast queue, runs the CNN-only pipeline, and its
// response is marked Degraded — the tier trades the reliability guarantee
// for availability. Per-request context deadlines are honoured both while
// queued (an expired request is dropped before it costs backend work) and
// while waiting for the batch to complete.
//
// # Concurrency contract
//
// Submit is safe from any number of goroutines; a single flusher goroutine
// owns batch formation and is the only caller of the backend. Every request
// resolves through a single-outcome CAS state machine
// (pending → dispatched → delivered | expired), so the delivery/expiry race
// lands each request in exactly one stats bucket.
//
// # Observability
//
// Stats() snapshots the counters plus cumulative log-bucketed latency
// Histograms — aggregate and per class, the per-class sums equalling the
// aggregates by construction. Histograms from many schedulers Merge
// exactly, which is how the shard router computes fleet quantiles that
// match a single-process run bucket-for-bucket.
package serve

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/tensor"
)

// Backend consumes the micro-batches the Scheduler forms. Implementations
// must return one result per image, in input order. The Scheduler issues
// calls from a single flusher goroutine, so implementations need not be
// safe for concurrent use (core.BatchClassifier is anyway).
type Backend interface {
	ClassifyBatch(imgs []*tensor.Tensor) ([]core.Result, error)
}

// TimedBackend is the optional richer contract: a backend that also
// reports the batch's per-stage wall-time breakdown. The Scheduler uses it
// when available (core.BatchClassifier implements it), so per-stage
// observability costs nothing to backends that don't care.
type TimedBackend interface {
	Backend
	ClassifyBatchTimed(imgs []*tensor.Tensor) ([]core.Result, core.StageTimes, error)
}

// PipelinedBackend is the per-request pipeline contract: pipes[i] selects
// which execution pipeline image i runs (core.PipelineFull for guaranteed
// and non-degraded budget riders, core.PipelineCNN for fast and degraded
// riders) while the whole mixed batch still coalesces into one GEMM per
// layer. Backends that don't implement it run every rider through the full
// pipeline — correct, just without the fast path.
type PipelinedBackend interface {
	Backend
	ClassifyBatchPipelined(imgs []*tensor.Tensor, pipes []core.Pipeline) ([]core.Result, core.StageTimes, error)
}

// Timing is the per-request stage-timestamp breakdown SubmitTraced
// returns: the scheduler's contribution to a request trace. Timestamps are
// monotonic and ordered Enqueued ≤ Picked ≤ Dispatched ≤ Done; the HTTP
// edge turns their deltas into spans (queue wait, batch assembly, backend)
// and prepends/appends its own.
type Timing struct {
	// Enqueued is when Submit accepted the request into the queue.
	Enqueued time.Time
	// Picked is when the flusher pulled the request into a forming batch.
	Picked time.Time
	// Dispatched is when the request's batch was handed to the backend.
	Dispatched time.Time
	// Done is when the backend returned the batch.
	Done time.Time
	// BatchSize is how many live requests shared the batch.
	BatchSize int
	// Class is the service class the request was submitted under.
	Class Class
	// Degraded reports that this was a budget request re-admitted into the
	// fast (CNN-only) pipeline because the budget queue was full.
	Degraded bool
	// Stages is the batch-level backend pipeline breakdown (zero unless
	// the backend implements TimedBackend). Batch-level: shared by every
	// rider of the batch, and summed per-worker wall time under a parallel
	// pool.
	Stages core.StageTimes
}

var (
	// ErrQueueFull is the admission-control rejection: the request's class
	// queue is full and the request was not accepted (for budget requests,
	// only after degradation into the fast queue also failed). The caller
	// owns the retry policy; RetryAfter suggests the backoff.
	ErrQueueFull = errors.New("serve: queue full")
	// ErrClosed is returned by Submit after Shutdown has begun.
	ErrClosed = errors.New("serve: scheduler closed")
)

// DefaultClassWeights is the dispatch weight vector applied when Config
// leaves ClassWeights zero: guaranteed 16, fast 4, budget 1 — under full
// backlog a MaxBatch=8 batch carries ~6 guaranteed riders, and no class
// with queued work ever gets zero slots.
var DefaultClassWeights = [NumClasses]int{16, 4, 1}

// Config parameterises a Scheduler.
type Config struct {
	// MaxBatch is the flush threshold (and the largest batch the backend
	// will see). Default 8.
	MaxBatch int
	// MaxDelay bounds how long the oldest queued request waits for the
	// batch to fill. 0 means flush immediately with whatever is queued.
	MaxDelay time.Duration
	// QueueSize bounds the number of accepted-but-unflushed requests PER
	// CLASS (the default for any ClassQueues entry left zero); Submit
	// fails with ErrQueueFull beyond it. Default 8 × MaxBatch.
	QueueSize int
	// ClassQueues optionally overrides the per-class queue bound; a zero
	// entry inherits QueueSize.
	ClassQueues [NumClasses]int
	// ClassWeights are the smooth weighted-round-robin dispatch weights; a
	// zero vector inherits DefaultClassWeights. Every weight must be ≥ 1,
	// so no class can be configured into starvation.
	ClassWeights [NumClasses]int
}

func (c Config) withDefaults() (Config, error) {
	if c.MaxBatch == 0 {
		c.MaxBatch = 8
	}
	if c.MaxBatch < 1 {
		return c, fmt.Errorf("serve: MaxBatch %d must be >= 1", c.MaxBatch)
	}
	if c.MaxDelay < 0 {
		return c, fmt.Errorf("serve: negative MaxDelay %v", c.MaxDelay)
	}
	if c.QueueSize == 0 {
		c.QueueSize = 8 * c.MaxBatch
	}
	if c.QueueSize < 1 {
		return c, fmt.Errorf("serve: QueueSize %d must be >= 1", c.QueueSize)
	}
	for i := range c.ClassQueues {
		if c.ClassQueues[i] == 0 {
			c.ClassQueues[i] = c.QueueSize
		}
		if c.ClassQueues[i] < 1 {
			return c, fmt.Errorf("serve: ClassQueues[%s] %d must be >= 1", Class(i), c.ClassQueues[i])
		}
	}
	if c.ClassWeights == ([NumClasses]int{}) {
		c.ClassWeights = DefaultClassWeights
	}
	for i, w := range c.ClassWeights {
		if w < 1 {
			return c, fmt.Errorf("serve: ClassWeights[%s] %d must be >= 1", Class(i), w)
		}
	}
	return c, nil
}

// Request lifecycle states. Every request resolves to exactly one terminal
// state — stateDelivered (the flusher committed a response to done) or
// stateExpired (the submitter claimed its context error) — via CAS, so a
// request is counted in the stats exactly once no matter how the
// delivery/expiry race falls.
const (
	statePending    int32 = iota // queued, not yet picked into a batch
	stateDispatched              // in a batch handed to the backend
	stateDelivered               // terminal: response committed by the flusher
	stateExpired                 // terminal: context error claimed by the submitter (or flusher pre-dispatch)
)

// request is one queued classification.
type request struct {
	img      *tensor.Tensor
	ctx      context.Context
	class    Class
	degraded bool // budget request re-admitted into the fast queue
	enq      time.Time
	picked   time.Time // set by the flusher when pulled into a batch
	// deadline orders the request within its class queue (EDF); seq
	// tie-breaks FIFO and orders deadline-less requests among themselves.
	deadline    time.Time
	hasDeadline bool
	seq         uint64
	// state is the single-outcome arbiter between the flusher delivering a
	// response and the submitter abandoning on context expiry.
	state atomic.Int32
	// done is buffered so the flusher never blocks on a caller that gave up.
	done chan response
}

// abandon is the submitter's side of the delivery/expiry race: it tries to
// claim the request's single outcome as "expired". It reports whether the
// claim won; on a lost race the response is committed (or imminently so) on
// r.done. The winner does the stats accounting: expired() if the request was
// still queued, expiredDispatched() if its batch had already been handed to
// the backend (the backend work is wasted, but the result is not delivered
// and not counted completed).
func (r *request) abandon(st *statsState) bool {
	if r.state.CompareAndSwap(statePending, stateExpired) {
		st.expired(r.class)
		return true
	}
	if r.state.CompareAndSwap(stateDispatched, stateExpired) {
		st.expiredDispatched(r.class)
		return true
	}
	return false
}

// pipeline is the execution pipeline the request's class (and degradation
// state) selects.
func (r *request) pipeline() core.Pipeline {
	if r.class == ClassFast || r.degraded {
		return core.PipelineCNN
	}
	return core.PipelineFull
}

type response struct {
	res    core.Result
	timing Timing
	err    error
}

// reqHeap orders one class's queue for dispatch: deadline-bearing requests
// first in earliest-deadline order, then deadline-less requests, FIFO (by
// admission sequence) within any tie.
type reqHeap []*request

func (h reqHeap) Len() int { return len(h) }
func (h reqHeap) Less(i, j int) bool {
	a, b := h[i], h[j]
	if a.hasDeadline != b.hasDeadline {
		return a.hasDeadline
	}
	if a.hasDeadline && !a.deadline.Equal(b.deadline) {
		return a.deadline.Before(b.deadline)
	}
	return a.seq < b.seq
}
func (h reqHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *reqHeap) Push(x any)   { *h = append(*h, x.(*request)) }
func (h *reqHeap) Pop() any {
	old := *h
	n := len(old)
	r := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return r
}

// Scheduler coalesces concurrent single-image submissions into
// micro-batches across per-class queues. Build with New, serve with
// Submit/SubmitClass from any number of goroutines, stop with Shutdown.
type Scheduler struct {
	cfg     Config
	backend Backend

	// mu guards the queues, the WRR state, seq and closed.
	mu     sync.Mutex
	closed bool
	queues [NumClasses]reqHeap
	wrr    [NumClasses]int
	seq    uint64

	// notify is the flusher's wake-up: buffered so a signal is never lost
	// while the flusher is between waits.
	notify  chan struct{}
	drained chan struct{} // closed when the flusher has flushed everything

	stats  statsState
	weight *WeightTracker // advertised min-max placement weight
}

// New starts a Scheduler (and its flusher goroutine) over backend.
func New(backend Backend, cfg Config) (*Scheduler, error) {
	if backend == nil {
		return nil, fmt.Errorf("serve: scheduler needs a backend")
	}
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	s := &Scheduler{
		cfg:     cfg,
		backend: backend,
		notify:  make(chan struct{}, 1),
		drained: make(chan struct{}),
		weight:  NewWeightTracker(WeightConfig{}),
	}
	s.stats.init(cfg.MaxBatch)
	go s.run()
	return s, nil
}

// Config returns the normalised configuration.
func (s *Scheduler) Config() Config { return s.cfg }

// signal wakes the flusher; the buffered channel absorbs a signal issued
// while the flusher is not waiting, so no wake-up is ever lost.
func (s *Scheduler) signal() {
	select {
	case s.notify <- struct{}{}:
	default:
	}
}

// Submit queues one guaranteed-class image and blocks until its batch
// completes, the context is done, or admission control rejects it. Safe for
// any number of concurrent callers. The context deadline both orders the
// request within its class queue (earliest first) and covers the whole
// request lifetime: a request that expires while still queued is dropped
// without costing backend work.
func (s *Scheduler) Submit(ctx context.Context, img *tensor.Tensor) (core.Result, error) {
	res, _, err := s.SubmitTraced(ctx, img, ClassGuaranteed)
	return res, err
}

// SubmitClass is Submit under an explicit service class.
func (s *Scheduler) SubmitClass(ctx context.Context, img *tensor.Tensor, class Class) (core.Result, error) {
	res, _, err := s.SubmitTraced(ctx, img, class)
	return res, err
}

// SubmitTraced is SubmitClass plus the request's stage-timestamp breakdown
// — the scheduler's half of a request trace. The Timing is meaningful only
// on success; expired or rejected requests return a zero Timing.
func (s *Scheduler) SubmitTraced(ctx context.Context, img *tensor.Tensor, class Class) (core.Result, Timing, error) {
	if img == nil {
		return core.Result{}, Timing{}, fmt.Errorf("serve: nil image")
	}
	if !class.Valid() {
		return core.Result{}, Timing{}, fmt.Errorf("serve: invalid service class %v", class)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	r := &request{img: img, ctx: ctx, class: class, enq: time.Now(), done: make(chan response, 1)}
	if dl, ok := ctx.Deadline(); ok {
		r.deadline, r.hasDeadline = dl, true
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return core.Result{}, Timing{}, ErrClosed
	}
	q := class // the queue the request joins
	if len(s.queues[q]) >= s.cfg.ClassQueues[q] {
		if class == ClassBudget && len(s.queues[ClassFast]) < s.cfg.ClassQueues[ClassFast] {
			// Budget degradation: re-admit into the fast (CNN-only)
			// pipeline instead of shedding. Accounting stays under the
			// budget class; degraded is counted exactly once, here.
			q, r.degraded = ClassFast, true
		} else {
			s.mu.Unlock()
			s.stats.rejected(class)
			return core.Result{}, Timing{}, ErrQueueFull
		}
	}
	r.seq = s.seq
	s.seq++
	heap.Push(&s.queues[q], r)
	s.mu.Unlock()
	s.stats.submitted(class, r.degraded)
	s.signal()

	select {
	case resp := <-r.done:
		return resp.res, resp.timing, resp.err
	case <-ctx.Done():
		if r.abandon(&s.stats) {
			// Claimed: the flusher will skip this request (still queued) or
			// discard its result (already dispatched); either way it is
			// counted exactly once, as expired.
			return core.Result{}, Timing{}, ctx.Err()
		}
		// Lost the race: the flusher committed a response concurrently with
		// the context firing. Honour the committed outcome — it is the one
		// the stats counted.
		resp := <-r.done
		return resp.res, resp.timing, resp.err
	}
}

// RetryAfter estimates how long a rejected request of the given class
// should back off: the class's current queue depth × the EWMA per-image
// service time, floored at one second. The HTTP edge rounds it up into the
// Retry-After header, so clients behind a deep queue back off
// proportionally instead of hammering a fixed interval.
func (s *Scheduler) RetryAfter(class Class) time.Duration {
	if !class.Valid() {
		class = ClassGuaranteed
	}
	s.mu.Lock()
	depth := len(s.queues[class])
	s.mu.Unlock()
	d := time.Duration(depth) * s.stats.serviceEstimate()
	if d < time.Second {
		d = time.Second
	}
	return d
}

// Shutdown stops admission (Submit fails with ErrClosed), drains every
// already-accepted request — including the in-flight batch — and returns
// when the flusher has exited, or with ctx's error if the deadline passes
// first. Idempotent.
func (s *Scheduler) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
	}
	s.mu.Unlock()
	s.signal()
	if ctx == nil {
		ctx = context.Background()
	}
	select {
	case <-s.drained:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("serve: shutdown: %w", ctx.Err())
	}
}

// tryPop removes and returns the next request to dispatch, or nil if every
// queue is empty. Across classes it advances the smooth weighted
// round-robin over the non-empty queues, so under backlog each batch slot
// honours ClassWeights; within a class the heap yields EDF order.
func (s *Scheduler) tryPop() *request {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.popLocked()
}

func (s *Scheduler) popLocked() *request {
	total := 0
	for c := range s.queues {
		if len(s.queues[c]) > 0 {
			total += s.cfg.ClassWeights[c]
		}
	}
	if total == 0 {
		return nil
	}
	best := -1
	for c := range s.queues {
		if len(s.queues[c]) == 0 {
			continue
		}
		s.wrr[c] += s.cfg.ClassWeights[c]
		if best < 0 || s.wrr[c] > s.wrr[best] {
			best = c
		}
	}
	s.wrr[best] -= total
	return heap.Pop(&s.queues[best]).(*request)
}

// next blocks until a request is available (returning it) or the scheduler
// is closed with every queue drained (returning nil).
func (s *Scheduler) next() *request {
	for {
		s.mu.Lock()
		r := s.popLocked()
		closed := s.closed
		s.mu.Unlock()
		if r != nil {
			return r
		}
		if closed {
			return nil
		}
		<-s.notify
	}
}

func (s *Scheduler) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// run is the flusher: it owns batch formation and is the only goroutine
// that calls the backend, so batches are naturally serialized.
func (s *Scheduler) run() {
	defer close(s.drained)
	for {
		r := s.next()
		if r == nil {
			return
		}
		r.picked = time.Now()
		batch := append(make([]*request, 0, s.cfg.MaxBatch), r)
		batch = s.collect(batch)
		s.flush(batch)
	}
}

// collect fills the batch up to MaxBatch, waiting until the batch's first
// request has been queued for MaxDelay — time already spent waiting behind
// an in-flight batch counts, so a request never pays queue-wait plus a full
// extra MaxDelay. Once the scheduler is closed the remaining queued
// requests drain without waiting on the timer.
func (s *Scheduler) collect(batch []*request) []*request {
	if s.cfg.MaxBatch <= 1 {
		return batch
	}
	for len(batch) < s.cfg.MaxBatch {
		r := s.tryPop()
		if r == nil {
			break
		}
		r.picked = time.Now()
		batch = append(batch, r)
	}
	if len(batch) >= s.cfg.MaxBatch || s.cfg.MaxDelay <= 0 {
		return batch
	}
	remaining := s.cfg.MaxDelay - time.Since(batch[0].enq)
	if remaining <= 0 {
		return batch
	}
	timer := time.NewTimer(remaining)
	defer timer.Stop()
	for {
		select {
		case <-s.notify:
			for len(batch) < s.cfg.MaxBatch {
				r := s.tryPop()
				if r == nil {
					break
				}
				r.picked = time.Now()
				batch = append(batch, r)
			}
			if len(batch) >= s.cfg.MaxBatch || s.isClosed() {
				return batch
			}
		case <-timer.C:
			return batch
		}
	}
}

// flush drops requests whose context already expired, runs the survivors
// through the backend as one batch, and delivers per-request responses.
// Every transition out of statePending/stateDispatched is a CAS against the
// submitter's abandon, so each request lands in exactly one stats bucket.
func (s *Scheduler) flush(batch []*request) {
	live := batch[:0]
	for _, r := range batch {
		if r.ctx.Err() != nil {
			if r.state.CompareAndSwap(statePending, stateExpired) {
				r.done <- response{err: r.ctx.Err()}
				s.stats.expired(r.class)
			}
			// On a lost CAS the submitter already claimed (and counted) the
			// expiry; nothing to deliver.
			continue
		}
		if !r.state.CompareAndSwap(statePending, stateDispatched) {
			// The context fired between the check above and the CAS and the
			// submitter claimed the request.
			continue
		}
		live = append(live, r)
	}
	if len(live) == 0 {
		return
	}
	imgs := make([]*tensor.Tensor, len(live))
	mixed := false
	for i, r := range live {
		imgs[i] = r.img
		if r.pipeline() != core.PipelineFull {
			mixed = true
		}
	}
	start := time.Now()
	var results []core.Result
	var stages core.StageTimes
	var pipes []core.Pipeline
	var err error
	if pb, ok := s.backend.(PipelinedBackend); ok && mixed {
		pipes = make([]core.Pipeline, len(live))
		for i, r := range live {
			pipes[i] = r.pipeline()
		}
		results, stages, err = pb.ClassifyBatchPipelined(imgs, pipes)
	} else if tb, ok := s.backend.(TimedBackend); ok {
		results, stages, err = tb.ClassifyBatchTimed(imgs)
	} else {
		results, err = s.backend.ClassifyBatch(imgs)
	}
	if err == nil && len(results) != len(imgs) {
		err = fmt.Errorf("serve: backend returned %d results for %d images", len(results), len(imgs))
	}
	now := time.Now()
	// The batch-level accounting (invocation count, size histogram, busy
	// time) reflects what the backend actually saw, independent of how the
	// per-request outcomes resolve. Per-class stage attribution: reliable +
	// qualifier time belongs to the full-pipeline riders, CNN time to every
	// rider, apportioned by rider count.
	var fullRiders, allRiders [NumClasses]int
	for i, r := range live {
		allRiders[r.class]++
		if pipes == nil || pipes[i] == core.PipelineFull {
			fullRiders[r.class]++
		}
	}
	s.stats.batchDone(len(live), now.Sub(start))
	s.stats.stageTimes([3]time.Duration{stages.Reliable, stages.Qualifier, stages.CNN}, fullRiders, allRiders)
	if err != nil {
		var nFailed [NumClasses]int
		for _, r := range live {
			if r.state.CompareAndSwap(stateDispatched, stateDelivered) {
				r.done <- response{err: err}
				nFailed[r.class]++
			}
		}
		s.stats.failed(nFailed)
		return
	}
	timings := make([]Timing, 0, len(live))
	for i, r := range live {
		tm := Timing{
			Enqueued:   r.enq,
			Picked:     r.picked,
			Dispatched: start,
			Done:       now,
			BatchSize:  len(live),
			Class:      r.class,
			Degraded:   r.degraded,
			Stages:     stages,
		}
		if r.state.CompareAndSwap(stateDispatched, stateDelivered) {
			r.done <- response{res: results[i], timing: tm}
			timings = append(timings, tm)
		}
		// A lost CAS means the submitter expired the request mid-batch: the
		// result is discarded and its latency stays out of the histogram.
	}
	s.stats.completed(timings)
}

// Stats snapshots the scheduler counters. Queue depths are read live; the
// rest is consistent at a single instant. Per-class depths count requests
// by the queue they wait in, so a degraded budget request counts toward
// the fast queue it actually occupies.
func (s *Scheduler) Stats() Stats {
	var depths, caps [NumClasses]int
	s.mu.Lock()
	for c := range s.queues {
		depths[c] = len(s.queues[c])
	}
	s.mu.Unlock()
	for c := range caps {
		caps[c] = s.cfg.ClassQueues[c]
	}
	st := s.stats.snapshot(depths, caps)
	// Fold this snapshot into the min-max weight tracker: snapshots are
	// taken at the router's probe cadence, which is exactly the update
	// cadence the distributed policy wants (rate-limited internally).
	st.AdvertisedWeight = s.weight.Observe(time.Now(), WeightSignals{
		Service:    st.ServiceTime,
		QueueDepth: st.QueueDepth,
		QueueCap:   st.QueueCap,
		Submitted:  st.Submitted,
		Rejected:   st.Rejected,
	})
	return st
}
