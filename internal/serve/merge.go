package serve

import "time"

// Merge folds per-shard Stats snapshots into one fleet-level view, the
// aggregation the shard router serves on its own GET /stats. The rules:
//
//   - Counters (Submitted, Rejected, Expired, ExpiredDispatched, Completed,
//     Failed, Batches), queue occupancy, and BackendBusy are sums, so the
//     merged totals equal the sum of the per-shard counters.
//   - Shards sums so the aggregate reports fleet size; a zero-valued Stats
//     (an unreachable or idle shard) still counts one shard.
//   - BatchHist is the element-wise sum via MergeBatchHist (shards may run
//     different MaxBatch; the merged histogram takes the longest length).
//   - MeanBatch is recomputed from the merged totals (dispatched images over
//     batches), not averaged — averaging per-shard means would weight an
//     idle shard equally with a busy one.
//   - Latency quantiles come from the element-wise sum of the per-shard
//     LatencyHist histograms, so the fleet p50/p99 are exact-to-bucket:
//     identical to a single process observing every sample. Only when some
//     shard carries samples but no histogram (an older worker) does the
//     merge fall back to the historical count-weighted mean of per-shard
//     quantiles. LatencyMax is the exact max either way.
//   - ServiceTime is the dispatched-weighted mean of the shard estimates.
//   - AdvertisedWeight sums: each shard advertises an offered service rate,
//     so the fleet-level value is total advertised capacity.
//   - Uptime is the max: the fleet has been up as long as its oldest shard.
//   - The per-class splits merge by class name under the same rules
//     (counter sums, exact histogram merges), so fleet-level per-class
//     sums still equal the fleet-level aggregates. Shards without a class
//     split (older workers) contribute only to the aggregates.
func Merge(shards ...Stats) Stats {
	var m Stats
	hist := NewHistogram()
	queueHist := NewHistogram()
	backendHist := NewHistogram()
	classes := make(map[string]*ClassStats)
	var classOrder []string
	exact := true
	var p50w, p99w float64
	var svcW float64
	var svcN uint64
	for _, s := range shards {
		if s.Shards > 0 {
			m.Shards += s.Shards
		} else {
			m.Shards++
		}
		m.Submitted += s.Submitted
		m.Rejected += s.Rejected
		m.Expired += s.Expired
		m.ExpiredDispatched += s.ExpiredDispatched
		m.Completed += s.Completed
		m.Failed += s.Failed
		m.Degraded += s.Degraded
		m.Batches += s.Batches
		for _, cs := range s.Classes {
			agg, ok := classes[cs.Class]
			if !ok {
				agg = &ClassStats{Class: cs.Class, LatencyHist: NewHistogram(), QueueHist: NewHistogram()}
				classes[cs.Class] = agg
				classOrder = append(classOrder, cs.Class)
			}
			agg.Submitted += cs.Submitted
			agg.Rejected += cs.Rejected
			agg.Expired += cs.Expired
			agg.ExpiredDispatched += cs.ExpiredDispatched
			agg.Completed += cs.Completed
			agg.Failed += cs.Failed
			agg.Degraded += cs.Degraded
			agg.QueueDepth += cs.QueueDepth
			agg.QueueCap += cs.QueueCap
			agg.StageReliable += cs.StageReliable
			agg.StageQualifier += cs.StageQualifier
			agg.StageCNN += cs.StageCNN
			agg.LatencyHist.Merge(cs.LatencyHist) // nil-safe no-op
			agg.QueueHist.Merge(cs.QueueHist)
			if cs.LatencyMax > agg.LatencyMax {
				agg.LatencyMax = cs.LatencyMax
			}
		}
		m.BatchHist = MergeBatchHist(m.BatchHist, s.BatchHist)
		m.QueueDepth += s.QueueDepth
		m.QueueCap += s.QueueCap
		m.BackendBusy += s.BackendBusy
		if s.Uptime > m.Uptime {
			m.Uptime = s.Uptime
		}
		if s.LatencyMax > m.LatencyMax {
			m.LatencyMax = s.LatencyMax
		}
		m.LatencyCount += s.LatencyCount
		if s.LatencyHist != nil {
			hist.Merge(s.LatencyHist)
		} else if s.LatencyCount > 0 {
			exact = false
		}
		queueHist.Merge(s.QueueHist) // nil-safe no-ops for older workers
		backendHist.Merge(s.BackendHist)
		m.StageReliable += s.StageReliable
		m.StageQualifier += s.StageQualifier
		m.StageCNN += s.StageCNN
		m.AdvertisedWeight += s.AdvertisedWeight
		p50w += float64(s.LatencyP50) * float64(s.LatencyCount)
		p99w += float64(s.LatencyP99) * float64(s.LatencyCount)
		if d := s.Dispatched(); s.ServiceTime > 0 && d > 0 {
			svcW += float64(s.ServiceTime) * float64(d)
			svcN += d
		}
	}
	if m.Batches > 0 {
		m.MeanBatch = float64(m.Dispatched()) / float64(m.Batches)
	}
	if svcN > 0 {
		m.ServiceTime = time.Duration(svcW / float64(svcN))
	}
	if queueHist.Count() > 0 {
		m.QueueHist = queueHist
	}
	if backendHist.Count() > 0 {
		m.BackendHist = backendHist
	}
	switch {
	case exact:
		m.LatencyHist = hist
		if hist.Count() > 0 {
			m.LatencyCount = int(hist.Count())
			m.LatencyP50 = hist.Quantile(0.50)
			m.LatencyP99 = hist.Quantile(0.99)
		}
	case m.LatencyCount > 0:
		m.LatencyP50 = time.Duration(p50w / float64(m.LatencyCount))
		m.LatencyP99 = time.Duration(p99w / float64(m.LatencyCount))
	}
	for _, name := range classOrder {
		agg := classes[name]
		if n := agg.LatencyHist.Count(); n > 0 {
			agg.LatencyCount = int(n)
			agg.LatencyP50 = agg.LatencyHist.Quantile(0.50)
			agg.LatencyP99 = agg.LatencyHist.Quantile(0.99)
		}
		m.Classes = append(m.Classes, *agg)
	}
	return m
}

// MergeBatchHist element-wise sums two batch-size histograms, extending to
// the longer of the two (shards may be configured with different MaxBatch).
// A fresh slice is returned; neither argument is modified.
func MergeBatchHist(a, b []uint64) []uint64 {
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	if n == 0 {
		return nil
	}
	out := make([]uint64, n)
	copy(out, a)
	for i, v := range b {
		out[i] += v
	}
	return out
}
