package serve

import "time"

// Merge folds per-shard Stats snapshots into one fleet-level view, the
// aggregation the shard router serves on its own GET /stats. The rules:
//
//   - Counters (Submitted, Rejected, Expired, ExpiredDispatched, Completed,
//     Failed, Batches), queue occupancy, and BackendBusy are sums, so the
//     merged totals equal the sum of the per-shard counters.
//   - BatchHist is the element-wise sum via MergeBatchHist (shards may run
//     different MaxBatch; the merged histogram takes the longest length).
//   - MeanBatch is recomputed from the merged totals (dispatched images over
//     batches), not averaged — averaging per-shard means would weight an
//     idle shard equally with a busy one.
//   - LatencyMax is the max; LatencyCount is the sum. LatencyP50/P99 are
//     LatencyCount-weighted means of the per-shard quantiles — an
//     approximation (exact fleet quantiles need the raw windows), biased
//     toward the busy shards, which is the fleet question being asked.
//   - Uptime is the max: the fleet has been up as long as its oldest shard.
//
// Shards with no latency samples contribute nothing to the quantile merge.
func Merge(shards ...Stats) Stats {
	var m Stats
	var p50w, p99w float64
	for _, s := range shards {
		m.Submitted += s.Submitted
		m.Rejected += s.Rejected
		m.Expired += s.Expired
		m.ExpiredDispatched += s.ExpiredDispatched
		m.Completed += s.Completed
		m.Failed += s.Failed
		m.Batches += s.Batches
		m.BatchHist = MergeBatchHist(m.BatchHist, s.BatchHist)
		m.QueueDepth += s.QueueDepth
		m.QueueCap += s.QueueCap
		m.BackendBusy += s.BackendBusy
		if s.Uptime > m.Uptime {
			m.Uptime = s.Uptime
		}
		if s.LatencyMax > m.LatencyMax {
			m.LatencyMax = s.LatencyMax
		}
		m.LatencyCount += s.LatencyCount
		p50w += float64(s.LatencyP50) * float64(s.LatencyCount)
		p99w += float64(s.LatencyP99) * float64(s.LatencyCount)
	}
	if m.Batches > 0 {
		m.MeanBatch = float64(m.Dispatched()) / float64(m.Batches)
	}
	if m.LatencyCount > 0 {
		m.LatencyP50 = time.Duration(p50w / float64(m.LatencyCount))
		m.LatencyP99 = time.Duration(p99w / float64(m.LatencyCount))
	}
	return m
}

// MergeBatchHist element-wise sums two batch-size histograms, extending to
// the longer of the two (shards may be configured with different MaxBatch).
// A fresh slice is returned; neither argument is modified.
func MergeBatchHist(a, b []uint64) []uint64 {
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	if n == 0 {
		return nil
	}
	out := make([]uint64, n)
	copy(out, a)
	for i, v := range b {
		out[i] += v
	}
	return out
}
