package serve

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"time"
)

// randHist fills a histogram with 0..n random observations up to ~1s.
func randHist(rng *rand.Rand, n int) *Histogram {
	h := NewHistogram()
	for i := 0; i < rng.Intn(n+1); i++ {
		h.Observe(time.Duration(1 + rng.Int63n(int64(time.Second))))
	}
	return h
}

// randStats generates one shard's plausible snapshot: per-class splits
// whose sums equal the aggregate fields by construction (the invariant a
// live snapshot holds), full histograms, and every merged signal
// populated — the richest input Merge ever sees.
func randStats(rng *rand.Rand) Stats {
	s := Stats{
		Shards:           1,
		Batches:          uint64(1 + rng.Intn(200)),
		ServiceTime:      time.Duration(1+rng.Intn(20)) * time.Millisecond,
		AdvertisedWeight: rng.Float64() * 500,
		BackendBusy:      time.Duration(rng.Int63n(int64(10 * time.Second))),
		Uptime:           time.Duration(rng.Int63n(int64(time.Hour))),
		BatchHist:        make([]uint64, 1+rng.Intn(8)),
		BackendHist:      randHist(rng, 60),
	}
	for i := range s.BatchHist {
		s.BatchHist[i] = uint64(rng.Intn(50))
	}
	lat := NewHistogram()
	queue := NewHistogram()
	for _, c := range Classes {
		cs := ClassStats{
			Class:             c.String(),
			Submitted:         uint64(rng.Intn(1000)),
			Rejected:          uint64(rng.Intn(100)),
			Expired:           uint64(rng.Intn(50)),
			ExpiredDispatched: uint64(rng.Intn(20)),
			Completed:         uint64(1 + rng.Intn(800)),
			Failed:            uint64(rng.Intn(30)),
			Degraded:          uint64(rng.Intn(40)),
			QueueDepth:        rng.Intn(64),
			QueueCap:          64 + rng.Intn(512),
			StageReliable:     time.Duration(rng.Int63n(int64(time.Second))),
			StageQualifier:    time.Duration(rng.Int63n(int64(time.Second))),
			StageCNN:          time.Duration(rng.Int63n(int64(time.Second))),
			LatencyHist:       randHist(rng, 80),
			QueueHist:         randHist(rng, 80),
		}
		if n := cs.LatencyHist.Count(); n > 0 {
			cs.LatencyCount = int(n)
			cs.LatencyP50 = cs.LatencyHist.Quantile(0.50)
			cs.LatencyP99 = cs.LatencyHist.Quantile(0.99)
			cs.LatencyMax = cs.LatencyHist.Max()
		}
		s.Submitted += cs.Submitted
		s.Rejected += cs.Rejected
		s.Expired += cs.Expired
		s.ExpiredDispatched += cs.ExpiredDispatched
		s.Completed += cs.Completed
		s.Failed += cs.Failed
		s.Degraded += cs.Degraded
		s.QueueDepth += cs.QueueDepth
		s.QueueCap += cs.QueueCap
		s.StageReliable += cs.StageReliable
		s.StageQualifier += cs.StageQualifier
		s.StageCNN += cs.StageCNN
		lat.Merge(cs.LatencyHist)
		queue.Merge(cs.QueueHist)
		s.Classes = append(s.Classes, cs)
	}
	s.LatencyHist = lat
	s.QueueHist = queue
	if n := lat.Count(); n > 0 {
		s.LatencyCount = int(n)
		s.LatencyP50 = lat.Quantile(0.50)
		s.LatencyP99 = lat.Quantile(0.99)
		s.LatencyMax = lat.Max()
	}
	if s.Batches > 0 {
		s.MeanBatch = float64(s.Dispatched()) / float64(s.Batches)
	}
	return s
}

func histsEqual(a, b *Histogram) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	if a.Count() != b.Count() || a.Max() != b.Max() || a.Sum() != b.Sum() {
		return false
	}
	ca, cb := a.Counts(), b.Counts()
	for i := range ca {
		if ca[i] != cb[i] {
			return false
		}
	}
	return true
}

// durClose allows the truncation error Duration arithmetic accumulates
// through nested weighted means.
func durClose(a, b time.Duration) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= time.Microsecond
}

func floatClose(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*(1+math.Abs(a)+math.Abs(b))
}

// mergesEquivalent compares two Merge results: exact on every integer
// counter and histogram, tolerant on the float/duration aggregates
// (weighted means and float sums are order-sensitive at rounding scale).
func mergesEquivalent(t *testing.T, label string, a, b Stats) {
	t.Helper()
	type check struct {
		name string
		ok   bool
	}
	checks := []check{
		{"shards", a.Shards == b.Shards},
		{"submitted", a.Submitted == b.Submitted},
		{"rejected", a.Rejected == b.Rejected},
		{"expired", a.Expired == b.Expired},
		{"expired_dispatched", a.ExpiredDispatched == b.ExpiredDispatched},
		{"completed", a.Completed == b.Completed},
		{"failed", a.Failed == b.Failed},
		{"degraded", a.Degraded == b.Degraded},
		{"batches", a.Batches == b.Batches},
		{"mean_batch", floatClose(a.MeanBatch, b.MeanBatch)},
		{"queue_depth", a.QueueDepth == b.QueueDepth},
		{"queue_cap", a.QueueCap == b.QueueCap},
		{"latency_count", a.LatencyCount == b.LatencyCount},
		{"latency_p50", a.LatencyP50 == b.LatencyP50},
		{"latency_p99", a.LatencyP99 == b.LatencyP99},
		{"latency_max", a.LatencyMax == b.LatencyMax},
		{"latency_hist", histsEqual(a.LatencyHist, b.LatencyHist)},
		{"queue_hist", histsEqual(a.QueueHist, b.QueueHist)},
		{"backend_hist", histsEqual(a.BackendHist, b.BackendHist)},
		{"stage_reliable", a.StageReliable == b.StageReliable},
		{"stage_qualifier", a.StageQualifier == b.StageQualifier},
		{"stage_cnn", a.StageCNN == b.StageCNN},
		{"service_time", durClose(a.ServiceTime, b.ServiceTime)},
		{"advertised_weight", floatClose(a.AdvertisedWeight, b.AdvertisedWeight)},
		{"backend_busy", a.BackendBusy == b.BackendBusy},
		{"uptime", a.Uptime == b.Uptime},
		{"batch_hist_len", len(a.BatchHist) == len(b.BatchHist)},
		{"class_count", len(a.Classes) == len(b.Classes)},
	}
	for i := range a.BatchHist {
		if i < len(b.BatchHist) && a.BatchHist[i] != b.BatchHist[i] {
			checks = append(checks, check{fmt.Sprintf("batch_hist[%d]", i), false})
		}
	}
	// Classes may come out in a different order (encounter order); compare
	// by name.
	for _, ca := range a.Classes {
		var cb *ClassStats
		for i := range b.Classes {
			if b.Classes[i].Class == ca.Class {
				cb = &b.Classes[i]
				break
			}
		}
		if cb == nil {
			checks = append(checks, check{"class " + ca.Class + " present", false})
			continue
		}
		checks = append(checks,
			check{"class " + ca.Class + " counters",
				ca.Submitted == cb.Submitted && ca.Rejected == cb.Rejected &&
					ca.Expired == cb.Expired && ca.ExpiredDispatched == cb.ExpiredDispatched &&
					ca.Completed == cb.Completed && ca.Failed == cb.Failed &&
					ca.Degraded == cb.Degraded && ca.QueueDepth == cb.QueueDepth &&
					ca.QueueCap == cb.QueueCap},
			check{"class " + ca.Class + " stages",
				ca.StageReliable == cb.StageReliable && ca.StageQualifier == cb.StageQualifier &&
					ca.StageCNN == cb.StageCNN},
			check{"class " + ca.Class + " hists",
				histsEqual(ca.LatencyHist, cb.LatencyHist) && histsEqual(ca.QueueHist, cb.QueueHist)},
			check{"class " + ca.Class + " quantiles",
				ca.LatencyCount == cb.LatencyCount && ca.LatencyP50 == cb.LatencyP50 &&
					ca.LatencyP99 == cb.LatencyP99 && ca.LatencyMax == cb.LatencyMax},
		)
	}
	for _, c := range checks {
		if !c.ok {
			t.Errorf("%s: %s differs", label, c.name)
		}
	}
}

// TestMergeCommutative: Merge(a, b) ≡ Merge(b, a) over randomized
// realistic snapshots — placement order of shards in a fleet must not
// change the aggregate.
func TestMergeCommutative(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		a, b := randStats(rng), randStats(rng)
		mergesEquivalent(t, fmt.Sprintf("seed %d", seed), Merge(a, b), Merge(b, a))
	}
}

// TestMergeAssociative: Merge(Merge(a,b), c) ≡ Merge(a, Merge(b,c)) —
// hierarchical aggregation (router-of-routers) must agree with flat
// aggregation. Integer counters and histograms are exact; weighted means
// carry a duration-truncation tolerance.
func TestMergeAssociative(t *testing.T) {
	for seed := int64(100); seed < 120; seed++ {
		rng := rand.New(rand.NewSource(seed))
		a, b, c := randStats(rng), randStats(rng), randStats(rng)
		left := Merge(Merge(a, b), c)
		right := Merge(a, Merge(b, c))
		mergesEquivalent(t, fmt.Sprintf("seed %d", seed), left, right)
		flat := Merge(a, b, c)
		mergesEquivalent(t, fmt.Sprintf("seed %d flat-vs-left", seed), flat, left)
	}
}

// TestMergeClassSplitSumsToAggregate: in any Merge result over inputs
// whose class splits tile their aggregates, the output class splits tile
// the output aggregates — counters, stage-busy time, and histogram counts.
func TestMergeClassSplitSumsToAggregate(t *testing.T) {
	for seed := int64(200); seed < 220; seed++ {
		rng := rand.New(rand.NewSource(seed))
		shards := make([]Stats, 2+rng.Intn(5))
		for i := range shards {
			shards[i] = randStats(rng)
		}
		m := Merge(shards...)
		var sum ClassStats
		var latN uint64
		var stageR, stageQ, stageC time.Duration
		for _, cs := range m.Classes {
			sum.Submitted += cs.Submitted
			sum.Rejected += cs.Rejected
			sum.Expired += cs.Expired
			sum.ExpiredDispatched += cs.ExpiredDispatched
			sum.Completed += cs.Completed
			sum.Failed += cs.Failed
			sum.Degraded += cs.Degraded
			sum.QueueDepth += cs.QueueDepth
			sum.QueueCap += cs.QueueCap
			stageR += cs.StageReliable
			stageQ += cs.StageQualifier
			stageC += cs.StageCNN
			if cs.LatencyHist != nil {
				latN += cs.LatencyHist.Count()
			}
			if cs.LatencyMax > m.LatencyMax {
				t.Errorf("seed %d: class %s max %v exceeds aggregate max %v", seed, cs.Class, cs.LatencyMax, m.LatencyMax)
			}
		}
		if sum.Submitted != m.Submitted || sum.Rejected != m.Rejected ||
			sum.Expired != m.Expired || sum.ExpiredDispatched != m.ExpiredDispatched ||
			sum.Completed != m.Completed || sum.Failed != m.Failed || sum.Degraded != m.Degraded {
			t.Errorf("seed %d: class counter sums do not tile the aggregate", seed)
		}
		if sum.QueueDepth != m.QueueDepth || sum.QueueCap != m.QueueCap {
			t.Errorf("seed %d: class queue sums %d/%d != aggregate %d/%d", seed, sum.QueueDepth, sum.QueueCap, m.QueueDepth, m.QueueCap)
		}
		if stageR != m.StageReliable || stageQ != m.StageQualifier || stageC != m.StageCNN {
			t.Errorf("seed %d: class stage-busy sums do not tile the aggregate", seed)
		}
		if m.LatencyHist != nil && latN != m.LatencyHist.Count() {
			t.Errorf("seed %d: class histogram counts sum %d != aggregate %d", seed, latN, m.LatencyHist.Count())
		}
	}
}

// TestMergeIdentity: merging with a zero-valued placeholder (an
// unreachable shard) adds a shard to the count and changes nothing else.
func TestMergeIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := randStats(rng)
	m := Merge(a, Stats{})
	if m.Shards != a.Shards+1 {
		t.Fatalf("shards %d, want %d", m.Shards, a.Shards+1)
	}
	m.Shards = a.Shards
	mergesEquivalent(t, "identity", m, Merge(a))
}
