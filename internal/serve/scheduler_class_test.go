package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/tensor"
)

// seqBackend records the identity of each dispatched image, one batch at a
// time: every ClassifyBatch call announces the first image's id on entered
// and holds until released. With MaxBatch 1 this exposes the scheduler's
// exact dispatch order.
type seqBackend struct {
	ids     map[*tensor.Tensor]int
	entered chan int
	release chan struct{}
}

func newSeqBackend() *seqBackend {
	return &seqBackend{
		ids:     make(map[*tensor.Tensor]int),
		entered: make(chan int, 64),
		release: make(chan struct{}),
	}
}

func (b *seqBackend) img(id int) *tensor.Tensor {
	t := tensor.MustNew(1, 1, 1)
	b.ids[t] = id
	return t
}

func (b *seqBackend) ClassifyBatch(imgs []*tensor.Tensor) ([]core.Result, error) {
	b.entered <- b.ids[imgs[0]]
	<-b.release
	results := make([]core.Result, len(imgs))
	for i, img := range imgs {
		results[i] = core.Result{Class: b.ids[img]}
	}
	return results, nil
}

// pipeRecordingBackend exposes the pipelined entry point and records the
// pipeline vector of every mixed batch, so tests can assert which pipeline
// each rider was dispatched under.
type pipeRecordingBackend struct {
	*fakeBackend
	mu    sync.Mutex
	pipes [][]core.Pipeline
}

func (p *pipeRecordingBackend) ClassifyBatchPipelined(imgs []*tensor.Tensor, pipes []core.Pipeline) ([]core.Result, core.StageTimes, error) {
	p.mu.Lock()
	p.pipes = append(p.pipes, append([]core.Pipeline(nil), pipes...))
	p.mu.Unlock()
	results, err := p.fakeBackend.ClassifyBatch(imgs)
	return results, core.StageTimes{}, err
}

func (p *pipeRecordingBackend) recorded() [][]core.Pipeline {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([][]core.Pipeline, len(p.pipes))
	copy(out, p.pipes)
	return out
}

// stageBackend answers like fakeBackend but reports a fixed per-batch stage
// breakdown, mimicking the real pipeline's invariant that a batch with no
// full-pipeline rider spends zero reliable/qualifier time.
type stageBackend struct {
	*fakeBackend
	stages core.StageTimes
}

func (b *stageBackend) ClassifyBatchTimed(imgs []*tensor.Tensor) ([]core.Result, core.StageTimes, error) {
	results, err := b.fakeBackend.ClassifyBatch(imgs)
	return results, b.stages, err
}

func (b *stageBackend) ClassifyBatchPipelined(imgs []*tensor.Tensor, pipes []core.Pipeline) ([]core.Result, core.StageTimes, error) {
	st := b.stages
	full := false
	for _, p := range pipes {
		if p == core.PipelineFull {
			full = true
		}
	}
	if !full {
		st.Reliable, st.Qualifier = 0, 0
	}
	results, err := b.fakeBackend.ClassifyBatch(imgs)
	return results, st, err
}

// bucketIdx maps a duration onto the shared log-bucket layout; "within one
// bucket" in the fairness assertions means these indices differ by ≤ 1.
func bucketIdx(d time.Duration) int {
	bounds := HistogramBounds()
	for i, b := range bounds {
		if d <= b {
			return i
		}
	}
	return len(bounds)
}

// TestSchedulerDeadlineOrderWithinClass pins EDF dispatch inside one class
// queue: with the flusher plugged, requests submitted in the order
// (+30s, +10s, +20s, no deadline) must dispatch as (+10s, +20s, +30s,
// no deadline) — earliest deadline first, deadline-less last.
func TestSchedulerDeadlineOrderWithinClass(t *testing.T) {
	backend := newSeqBackend()
	s, err := New(backend, Config{MaxBatch: 1, MaxDelay: 0})
	if err != nil {
		t.Fatal(err)
	}
	defer shutdownOK(t, s)

	var wg sync.WaitGroup
	submit := func(id int, ttl time.Duration) {
		img := backend.img(id)
		ctx := context.Background()
		var cancel context.CancelFunc = func() {}
		if ttl > 0 {
			ctx, cancel = context.WithTimeout(ctx, ttl)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer cancel()
			res, err := s.Submit(ctx, img)
			if err != nil {
				t.Errorf("submit %d: %v", id, err)
			} else if res.Class != id {
				t.Errorf("submit %d: routed result %d", id, res.Class)
			}
		}()
	}

	// Plug the flusher: request 0 is alone in the queue, gets popped, and
	// holds the backend while the test requests pile up behind it.
	submit(0, 0)
	if got := <-backend.entered; got != 0 {
		t.Fatalf("plug dispatch: got %d", got)
	}
	submit(1, 30*time.Second)
	submit(2, 10*time.Second)
	submit(3, 20*time.Second)
	submit(4, 0) // no deadline: sorts after every deadline-bearing request
	waitFor(t, "4 queued requests", func() bool { return s.Stats().QueueDepth == 4 })

	backend.release <- struct{}{} // let the plug finish
	want := []int{2, 3, 1, 4}
	for _, id := range want {
		if got := <-backend.entered; got != id {
			t.Fatalf("dispatch order: got %d, want %d (full order %v)", got, id, want)
		}
		backend.release <- struct{}{}
	}
	wg.Wait()
}

// TestSchedulerBudgetDegradesIntoFast pins the overload ladder for the
// budget class: full budget queue + room in fast → re-admitted as degraded
// (CNN-only pipeline, counted exactly once); both queues full → ErrQueueFull.
func TestSchedulerBudgetDegradesIntoFast(t *testing.T) {
	gate := make(chan struct{})
	backend := &pipeRecordingBackend{fakeBackend: newFakeBackend(gate)}
	s, err := New(backend, Config{
		MaxBatch:    4,
		QueueSize:   8,
		ClassQueues: [NumClasses]int{ClassFast: 2, ClassBudget: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer shutdownOK(t, s)

	var wg sync.WaitGroup
	// Plug the flusher so queue occupancy is observable.
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := s.Submit(context.Background(), backend.img(0)); err != nil {
			t.Errorf("plug: %v", err)
		}
	}()
	waitFor(t, "plug dispatched", func() bool { return s.Stats().QueueDepth == 0 && s.Stats().Submitted == 1 })

	var degradedTiming Timing
	submitBudget := func(id int, captureTiming bool) {
		img := backend.img(id)
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, tm, err := s.SubmitTraced(context.Background(), img, ClassBudget)
			if err != nil {
				t.Errorf("budget %d: %v", id, err)
				return
			}
			if res.Class != id {
				t.Errorf("budget %d: routed result %d", id, res.Class)
			}
			if captureTiming {
				degradedTiming = tm
			}
		}()
	}

	submitBudget(1, false) // fills the budget queue (cap 1)
	waitFor(t, "budget queue full", func() bool { return s.Stats().Class(ClassBudget).QueueDepth == 1 })
	submitBudget(2, true) // degrades into fast
	waitFor(t, "first degradation", func() bool { return s.Stats().Class(ClassFast).QueueDepth == 1 })
	submitBudget(3, false) // degrades, fills fast (cap 2)
	waitFor(t, "second degradation", func() bool { return s.Stats().Class(ClassFast).QueueDepth == 2 })

	// Both queues full: shed with ErrQueueFull, not a third degradation.
	if _, err := s.SubmitClass(context.Background(), backend.img(4), ClassBudget); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("over-full budget submit: err %v, want ErrQueueFull", err)
	}

	st := s.Stats()
	bc := st.Class(ClassBudget)
	if st.Degraded != 2 || bc.Degraded != 2 {
		t.Errorf("degraded counted %d aggregate / %d budget, want 2/2 (exactly once per degradation)", st.Degraded, bc.Degraded)
	}
	if st.Rejected != 1 || bc.Rejected != 1 {
		t.Errorf("rejected %d/%d, want 1/1", st.Rejected, bc.Rejected)
	}
	if fc := st.Class(ClassFast); fc.Submitted != 0 || fc.Degraded != 0 {
		t.Errorf("degraded accounting leaked into fast class: %+v", fc)
	}

	close(gate)
	wg.Wait()

	if tm := degradedTiming; !tm.Degraded || tm.Class != ClassBudget {
		t.Errorf("degraded timing = class %v degraded %v, want budget/true", tm.Class, tm.Degraded)
	}
	// The batch behind the plug was mixed (budget full rider + two degraded
	// CNN riders), so it must have gone through the pipelined entry point
	// with exactly one PipelineFull and two PipelineCNN.
	recorded := backend.recorded()
	if len(recorded) != 1 {
		t.Fatalf("pipelined batches %d, want 1 (plug batch is unmixed)", len(recorded))
	}
	var nFull, nCNN int
	for _, p := range recorded[0] {
		switch p {
		case core.PipelineFull:
			nFull++
		case core.PipelineCNN:
			nCNN++
		}
	}
	if nFull != 1 || nCNN != 2 {
		t.Errorf("mixed batch pipes %v, want 1 full + 2 cnn", recorded[0])
	}

	final := s.Stats()
	if final.Class(ClassBudget).Completed != 3 {
		t.Errorf("budget completed %d, want 3 (degraded requests stay budget-accounted)", final.Class(ClassBudget).Completed)
	}
}

// TestSchedulerWRRFairnessUnderBudgetFlood is the SLO-isolation acceptance
// gate: a saturating budget flood must not move the guaranteed class's p99
// by more than one log-bucket versus an uncontended run. The weighted
// round-robin keeps guaranteed riders on the next batch out regardless of
// budget backlog.
func TestSchedulerWRRFairnessUnderBudgetFlood(t *testing.T) {
	const (
		workers  = 4
		perWork  = 100
		flooders = 8
	)
	phase := func(flood bool) time.Duration {
		backend := &slowBackend{delay: 2 * time.Millisecond}
		s, err := New(backend, Config{MaxBatch: 8, MaxDelay: 5 * time.Millisecond, QueueSize: 64})
		if err != nil {
			t.Fatal(err)
		}
		var stop atomic.Bool
		var floodWG sync.WaitGroup
		if flood {
			img := tensor.MustNew(1, 1, 1)
			for i := 0; i < flooders; i++ {
				floodWG.Add(1)
				go func() {
					defer floodWG.Done()
					for !stop.Load() {
						if _, err := s.SubmitClass(context.Background(), img, ClassBudget); err != nil {
							t.Errorf("budget flooder: %v", err)
							return
						}
					}
				}()
			}
		}
		var wg sync.WaitGroup
		img := tensor.MustNew(1, 1, 1)
		for i := 0; i < workers; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for j := 0; j < perWork; j++ {
					if _, err := s.Submit(context.Background(), img); err != nil {
						t.Errorf("guaranteed submit: %v", err)
						return
					}
				}
			}()
		}
		wg.Wait()
		stop.Store(true)
		floodWG.Wait()
		st := s.Stats()
		shutdownOK(t, s)
		if flood && st.Rejected != 0 {
			t.Errorf("flood phase shed %d requests; the closed-loop flood should fit the budget queue", st.Rejected)
		}
		gc := st.Class(ClassGuaranteed)
		if gc.LatencyCount != workers*perWork {
			t.Fatalf("guaranteed completions %d, want %d", gc.LatencyCount, workers*perWork)
		}
		return gc.LatencyP99
	}

	quiet := phase(false)
	contended := phase(true)
	if q, c := bucketIdx(quiet), bucketIdx(contended); c > q+1 {
		t.Errorf("guaranteed p99 moved %v -> %v (bucket %d -> %d): budget flood displaced the guaranteed class by more than one log-bucket",
			quiet, contended, q, c)
	}
}

// TestSchedulerClassStatsSumsToAggregate churns a mixed-class workload —
// completions across every class, degradations, and expiries — and checks
// that every per-class counter, histogram count, and stage-time column sums
// exactly to its aggregate.
func TestSchedulerClassStatsSumsToAggregate(t *testing.T) {
	backend := &stageBackend{
		fakeBackend: newFakeBackend(nil),
		stages:      core.StageTimes{Reliable: 3 * time.Millisecond, Qualifier: time.Millisecond, CNN: 7 * time.Millisecond},
	}
	s, err := New(backend, Config{MaxBatch: 8, MaxDelay: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer shutdownOK(t, s)

	var wg sync.WaitGroup
	id := 0
	submit := func(class Class, n int) {
		for i := 0; i < n; i++ {
			img := backend.img(id)
			id++
			wg.Add(1)
			go func() {
				defer wg.Done()
				if _, err := s.SubmitClass(context.Background(), img, class); err != nil {
					t.Errorf("submit %v: %v", class, err)
				}
			}()
		}
	}
	submit(ClassGuaranteed, 6)
	submit(ClassFast, 5)
	submit(ClassBudget, 4)
	// Pre-cancelled contexts exercise the expiry counters; whether each one
	// lands in Expired or slips through to Completed, the class split must
	// still sum to the aggregate.
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	for _, c := range Classes {
		img := backend.img(id)
		id++
		wg.Add(1)
		go func(c Class) {
			defer wg.Done()
			_, _ = s.SubmitClass(cancelled, img, c) // outcome intentionally unasserted
		}(c)
	}
	wg.Wait()
	total := uint64(id)
	waitFor(t, "all requests resolved", func() bool {
		st := s.Stats()
		return st.Submitted == total && st.QueueDepth == 0 &&
			st.Completed+st.Expired+st.ExpiredDispatched+st.Failed == total
	})

	st := s.Stats()
	if len(st.Classes) != NumClasses {
		t.Fatalf("snapshot has %d class splits, want %d", len(st.Classes), NumClasses)
	}
	var sum ClassStats
	var latCount uint64
	var stageSum [3]time.Duration
	for _, cs := range st.Classes {
		sum.Submitted += cs.Submitted
		sum.Rejected += cs.Rejected
		sum.Expired += cs.Expired
		sum.ExpiredDispatched += cs.ExpiredDispatched
		sum.Completed += cs.Completed
		sum.Failed += cs.Failed
		sum.Degraded += cs.Degraded
		sum.QueueDepth += cs.QueueDepth
		sum.LatencyCount += cs.LatencyCount
		if cs.LatencyHist != nil {
			latCount += cs.LatencyHist.Count()
		}
		stageSum[0] += cs.StageReliable
		stageSum[1] += cs.StageQualifier
		stageSum[2] += cs.StageCNN
	}
	if sum.Submitted != st.Submitted || sum.Rejected != st.Rejected ||
		sum.Expired != st.Expired || sum.ExpiredDispatched != st.ExpiredDispatched ||
		sum.Completed != st.Completed || sum.Failed != st.Failed ||
		sum.Degraded != st.Degraded {
		t.Errorf("class counter sums %+v do not match aggregates %+v", sum, st)
	}
	if sum.QueueDepth != st.QueueDepth {
		t.Errorf("class queue depths sum to %d, aggregate %d", sum.QueueDepth, st.QueueDepth)
	}
	if sum.LatencyCount != st.LatencyCount || latCount != st.LatencyHist.Count() {
		t.Errorf("class latency counts sum to %d (hist %d), aggregate %d (hist %d)",
			sum.LatencyCount, latCount, st.LatencyCount, st.LatencyHist.Count())
	}
	if stageSum[0] != st.StageReliable || stageSum[1] != st.StageQualifier || stageSum[2] != st.StageCNN {
		t.Errorf("class stage sums %v do not match aggregates [%v %v %v]",
			stageSum, st.StageReliable, st.StageQualifier, st.StageCNN)
	}
}

// TestRetryAfter pins the backoff hint: class queue depth × the EWMA
// per-image service time, floored at one second.
func TestRetryAfter(t *testing.T) {
	gate := make(chan struct{})
	backend := newFakeBackend(gate)
	s, err := New(backend, Config{MaxBatch: 4, QueueSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer shutdownOK(t, s)

	if got := s.RetryAfter(ClassBudget); got != time.Second {
		t.Errorf("empty queue RetryAfter = %v, want the 1s floor", got)
	}

	var wg sync.WaitGroup
	// Plug the flusher so queued depth is stable.
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _ = s.Submit(context.Background(), backend.img(0))
	}()
	waitFor(t, "plug dispatched", func() bool { return s.Stats().QueueDepth == 0 && s.Stats().Submitted == 1 })

	// Seed the service-time EWMA directly: one 8s single-image batch.
	s.stats.batchDone(1, 8*time.Second)
	for i := 1; i <= 3; i++ {
		img := backend.img(i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _ = s.SubmitClass(context.Background(), img, ClassBudget)
		}()
	}
	waitFor(t, "3 queued budget requests", func() bool { return s.Stats().Class(ClassBudget).QueueDepth == 3 })

	if got := s.RetryAfter(ClassBudget); got != 24*time.Second {
		t.Errorf("RetryAfter(budget) = %v, want 3 × 8s", got)
	}
	if got := s.RetryAfter(ClassGuaranteed); got != time.Second {
		t.Errorf("RetryAfter(guaranteed) = %v, want the 1s floor (empty queue)", got)
	}
	if got := s.RetryAfter(Class(200)); got != time.Second {
		t.Errorf("RetryAfter(invalid) = %v, want guaranteed's floor", got)
	}

	close(gate)
	wg.Wait()
}
