// Package fault models the hardware failure mechanisms the paper's
// reliability machinery defends against: radiation-induced single event
// upsets (SEUs) flipping bits in arithmetic results or stored weights, and
// permanent (stuck-at) faults in individual processing elements.
//
// The package provides three building blocks:
//
//   - Model: how a 32-bit IEEE-754 word gets corrupted (bit flip, stuck-at,
//     random word replacement).
//   - ALU: the arithmetic abstraction the reliable operators of
//     internal/reliable execute on — an ideal ALU, and fault-injecting ALUs
//     with transient or permanent fault behaviour and a per-PE identity so
//     that spatial redundancy (two PEs) behaves differently from temporal
//     redundancy (one PE used twice).
//   - Campaign: statistical fault-injection runs that classify outcomes into
//     masked / corrected / detected-unrecoverable / silent-data-corruption,
//     reproducing the coverage arguments of Section II of the paper.
//
// All randomness is drawn from caller-supplied *rand.Rand values; the package
// holds no global state.
package fault

import (
	"fmt"
	"math"
	"math/rand"
)

// Model corrupts a 32-bit word. Implementations must be deterministic given
// the rng stream.
type Model interface {
	// Corrupt returns a corrupted version of bits.
	Corrupt(bits uint32, rng *rand.Rand) uint32
	// String describes the model for reports.
	String() string
}

// BitFlip flips one bit of the word. If Bit is negative a uniformly random
// bit position is chosen per corruption — the canonical SEU model.
type BitFlip struct {
	// Bit is the bit position to flip (0 = LSB of the mantissa, 31 = sign).
	// Negative selects a random position for each corruption.
	Bit int
}

var _ Model = BitFlip{}

// Corrupt implements Model.
func (m BitFlip) Corrupt(bits uint32, rng *rand.Rand) uint32 {
	b := m.Bit
	if b < 0 {
		b = rng.Intn(32)
	}
	return bits ^ (1 << uint(b%32))
}

func (m BitFlip) String() string {
	if m.Bit < 0 {
		return "bitflip(random)"
	}
	return fmt.Sprintf("bitflip(bit=%d)", m.Bit)
}

// StuckAt forces one bit of the word to a fixed value. Used with a permanent
// ALU it models a stuck-at fault in a processing element's output register.
type StuckAt struct {
	Bit   int  // bit position, 0..31
	Value bool // forced value
}

var _ Model = StuckAt{}

// Corrupt implements Model.
func (m StuckAt) Corrupt(bits uint32, _ *rand.Rand) uint32 {
	mask := uint32(1) << uint(m.Bit%32)
	if m.Value {
		return bits | mask
	}
	return bits &^ mask
}

func (m StuckAt) String() string {
	v := 0
	if m.Value {
		v = 1
	}
	return fmt.Sprintf("stuckat(bit=%d,val=%d)", m.Bit, v)
}

// WordRandom replaces the entire word with random bits — the most severe
// corruption, an upper bound on SEU damage (e.g. a corrupted bus transfer).
type WordRandom struct{}

var _ Model = WordRandom{}

// Corrupt implements Model.
func (WordRandom) Corrupt(_ uint32, rng *rand.Rand) uint32 { return rng.Uint32() }

func (WordRandom) String() string { return "wordrandom" }

// MultiBitFlip flips N distinct random bits, modelling multi-bit upsets from
// a single particle strike.
type MultiBitFlip struct {
	N int
}

var _ Model = MultiBitFlip{}

// Corrupt implements Model.
func (m MultiBitFlip) Corrupt(bits uint32, rng *rand.Rand) uint32 {
	n := m.N
	if n < 1 {
		n = 1
	}
	if n > 32 {
		n = 32
	}
	// Sample n distinct positions by partial Fisher-Yates over 0..31.
	var pos [32]int
	for i := range pos {
		pos[i] = i
	}
	for i := 0; i < n; i++ {
		j := i + rng.Intn(32-i)
		pos[i], pos[j] = pos[j], pos[i]
		bits ^= 1 << uint(pos[i])
	}
	return bits
}

func (m MultiBitFlip) String() string { return fmt.Sprintf("multibitflip(n=%d)", m.N) }

// CorruptFloat applies model to the IEEE-754 bit pattern of x.
func CorruptFloat(m Model, x float32, rng *rand.Rand) float32 {
	return math.Float32frombits(m.Corrupt(math.Float32bits(x), rng))
}
