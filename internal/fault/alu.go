package fault

import (
	"fmt"
	"math/rand"
)

// ALU is the arithmetic abstraction the reliable operators execute on. The
// paper's Algorithms 1–3 overload multiplication and addition; here the
// overloading point is the ALU implementation. An ALU corresponds to one
// processing element (PE) of a compute unit in the paper's (OpenCL)
// terminology.
type ALU interface {
	Mul(a, b float32) float32
	Add(a, b float32) float32
}

// Ideal is a fault-free ALU. The zero value is ready to use.
type Ideal struct{}

var _ ALU = Ideal{}

// Mul returns a*b.
func (Ideal) Mul(a, b float32) float32 { return a * b }

// Add returns a+b.
func (Ideal) Add(a, b float32) float32 { return a + b }

// Transient is an ALU whose results suffer independent, transient
// corruptions (SEUs): each operation's output is corrupted with probability
// Rate, and repeated executions of the same operation fail independently —
// the fault does not persist. This is the model under which temporal
// redundancy (execute twice, compare) is effective.
type Transient struct {
	rate  float64
	model Model
	rng   *rand.Rand

	injected uint64 // number of corruptions actually applied
	ops      uint64 // number of operations executed
}

var _ ALU = (*Transient)(nil)

// NewTransient returns a transient-fault ALU corrupting each operation's
// result with probability rate using model. rng must not be shared with
// other concurrent users.
func NewTransient(rate float64, model Model, rng *rand.Rand) (*Transient, error) {
	if rate < 0 || rate > 1 {
		return nil, fmt.Errorf("fault: transient rate %v out of [0,1]", rate)
	}
	if model == nil {
		return nil, fmt.Errorf("fault: transient model must not be nil")
	}
	if rng == nil {
		return nil, fmt.Errorf("fault: transient rng must not be nil")
	}
	return &Transient{rate: rate, model: model, rng: rng}, nil
}

func (t *Transient) apply(x float32) float32 {
	t.ops++
	if t.rng.Float64() < t.rate {
		t.injected++
		return CorruptFloat(t.model, x, t.rng)
	}
	return x
}

// Mul returns a*b, possibly corrupted.
func (t *Transient) Mul(a, b float32) float32 { return t.apply(a * b) }

// Add returns a+b, possibly corrupted.
func (t *Transient) Add(a, b float32) float32 { return t.apply(a + b) }

// Injected returns the number of corruptions applied so far.
func (t *Transient) Injected() uint64 { return t.injected }

// Ops returns the number of operations executed so far.
func (t *Transient) Ops() uint64 { return t.ops }

// Permanent is an ALU with a persistent defect: every result passes through
// the corruption model (typically StuckAt). Because the defect is a function
// of the operands only, re-executing an operation on the same ALU yields the
// same wrong answer — exactly the failure mode that defeats temporal
// redundancy and motivates spatial redundancy (Section II-B of the paper).
type Permanent struct {
	model Model
	ops   uint64
}

var _ ALU = (*Permanent)(nil)

// NewPermanent returns an ALU whose every result is passed through model.
// The model must be deterministic (its rng is never used).
func NewPermanent(model Model) (*Permanent, error) {
	if model == nil {
		return nil, fmt.Errorf("fault: permanent model must not be nil")
	}
	return &Permanent{model: model}, nil
}

func (p *Permanent) apply(x float32) float32 {
	p.ops++
	return CorruptFloat(p.model, x, nil)
}

// Mul returns the corrupted product.
func (p *Permanent) Mul(a, b float32) float32 { return p.apply(a * b) }

// Add returns the corrupted sum.
func (p *Permanent) Add(a, b float32) float32 { return p.apply(a + b) }

// Ops returns the number of operations executed so far.
func (p *Permanent) Ops() uint64 { return p.ops }

// Intermittent is an ALU with a permanent defect that manifests only
// intermittently (e.g. a marginal timing path): with probability Rate the
// deterministic defect applies, otherwise the result is correct.
type Intermittent struct {
	rate     float64
	model    Model
	rng      *rand.Rand
	injected uint64
}

var _ ALU = (*Intermittent)(nil)

// NewIntermittent returns an intermittently faulty ALU.
func NewIntermittent(rate float64, model Model, rng *rand.Rand) (*Intermittent, error) {
	if rate < 0 || rate > 1 {
		return nil, fmt.Errorf("fault: intermittent rate %v out of [0,1]", rate)
	}
	if model == nil || rng == nil {
		return nil, fmt.Errorf("fault: intermittent model and rng must not be nil")
	}
	return &Intermittent{rate: rate, model: model, rng: rng}, nil
}

func (p *Intermittent) apply(x float32) float32 {
	if p.rng.Float64() < p.rate {
		p.injected++
		return CorruptFloat(p.model, x, p.rng)
	}
	return x
}

// Mul returns a*b, intermittently corrupted.
func (p *Intermittent) Mul(a, b float32) float32 { return p.apply(a * b) }

// Add returns a+b, intermittently corrupted.
func (p *Intermittent) Add(a, b float32) float32 { return p.apply(a + b) }

// Injected returns the number of corruptions applied so far.
func (p *Intermittent) Injected() uint64 { return p.injected }

// OnceAfter is an ALU that executes exactly one corruption after skip
// fault-free operations, then behaves ideally again. It is the precision
// instrument used by targeted injection tests ("corrupt exactly the k-th
// multiply of this convolution") and by the rollback-distance ablation.
type OnceAfter struct {
	model Model
	rng   *rand.Rand
	skip  uint64
	ops   uint64
	fired bool
}

var _ ALU = (*OnceAfter)(nil)

// NewOnceAfter returns an ALU that corrupts the (skip+1)-th operation.
func NewOnceAfter(skip uint64, model Model, rng *rand.Rand) (*OnceAfter, error) {
	if model == nil {
		return nil, fmt.Errorf("fault: onceafter model must not be nil")
	}
	return &OnceAfter{model: model, rng: rng, skip: skip}, nil
}

func (o *OnceAfter) apply(x float32) float32 {
	o.ops++
	if !o.fired && o.ops > o.skip {
		o.fired = true
		return CorruptFloat(o.model, x, o.rng)
	}
	return x
}

// Mul returns a*b, corrupted exactly once at the programmed position.
func (o *OnceAfter) Mul(a, b float32) float32 { return o.apply(a * b) }

// Add returns a+b, corrupted exactly once at the programmed position.
func (o *OnceAfter) Add(a, b float32) float32 { return o.apply(a + b) }

// Fired reports whether the single programmed corruption has been applied.
func (o *OnceAfter) Fired() bool { return o.fired }

// Ops returns the number of operations executed so far.
func (o *OnceAfter) Ops() uint64 { return o.ops }
