package fault

import (
	"fmt"
	"math"
	"math/rand"
)

// Memory faults corrupt stored data (weights, input activations) rather than
// arithmetic. Section II of the paper cites data corruption of the weights
// and input data as a second mechanism by which SEUs critically alter CNN
// results; redundant *execution* does not protect against corrupted *storage*
// (both executions read the same wrong weight), which is why the hybrid
// architecture pairs reliable execution with an independent qualifier.

// InjectSlice corrupts each element of data independently with probability
// rate using model, returning the number of corrupted elements.
func InjectSlice(data []float32, rate float64, m Model, rng *rand.Rand) (int, error) {
	if rate < 0 || rate > 1 {
		return 0, fmt.Errorf("fault: inject rate %v out of [0,1]", rate)
	}
	if m == nil || rng == nil {
		return 0, fmt.Errorf("fault: inject model and rng must not be nil")
	}
	n := 0
	for i, x := range data {
		if rng.Float64() < rate {
			data[i] = CorruptFloat(m, x, rng)
			n++
		}
	}
	return n, nil
}

// InjectExactly corrupts exactly n distinct elements of data chosen uniformly
// at random, returning the chosen indices (sorted ascending is NOT
// guaranteed). It is used by deterministic fault campaigns.
func InjectExactly(data []float32, n int, m Model, rng *rand.Rand) ([]int, error) {
	if m == nil || rng == nil {
		return nil, fmt.Errorf("fault: inject model and rng must not be nil")
	}
	if n < 0 || n > len(data) {
		return nil, fmt.Errorf("fault: cannot inject %d faults into %d elements", n, len(data))
	}
	idx := rng.Perm(len(data))[:n]
	for _, i := range idx {
		data[i] = CorruptFloat(m, data[i], rng)
	}
	return idx, nil
}

// ECCMemory simulates a memory protected by single-error-correct /
// double-error-detect (SECDED) ECC, as deployed by GPU vendors on DRAM and
// cache SRAM (Section II-C). Reads correct single-bit upsets transparently
// and flag double-bit upsets.
//
// The simulation tracks, per word, how many bit flips have accumulated since
// the last scrub; it does not model the check-bit layout itself, only the
// correct/detect/escape semantics.
type ECCMemory struct {
	words []float32
	flips []uint8 // accumulated upset count per word

	corrected uint64
	detected  uint64
}

// NewECCMemory returns an ECC-protected copy of data.
func NewECCMemory(data []float32) *ECCMemory {
	return &ECCMemory{
		words: append([]float32(nil), data...),
		flips: make([]uint8, len(data)),
	}
}

// Len returns the number of words.
func (m *ECCMemory) Len() int { return len(m.words) }

// Upset injects a single-bit upset into word i.
func (m *ECCMemory) Upset(i int, rng *rand.Rand) error {
	if i < 0 || i >= len(m.words) {
		return fmt.Errorf("fault: ECC upset index %d out of range", i)
	}
	m.words[i] = CorruptFloat(BitFlip{Bit: -1}, m.words[i], rng)
	if m.flips[i] < math.MaxUint8 {
		m.flips[i]++
	}
	return nil
}

// Read returns word i. Single accumulated upsets are corrected (the stored
// value is NOT repaired — correction happens on the read path, as in real
// ECC; call Scrub to write back). ok is false when an uncorrectable
// (≥2-bit) upset is detected.
//
// Reads of uncorrupted words return the stored value with ok = true.
func (m *ECCMemory) Read(i int, original []float32) (v float32, ok bool, err error) {
	if i < 0 || i >= len(m.words) {
		return 0, false, fmt.Errorf("fault: ECC read index %d out of range", i)
	}
	switch {
	case m.flips[i] == 0:
		return m.words[i], true, nil
	case m.flips[i] == 1:
		m.corrected++
		return original[i], true, nil
	default:
		m.detected++
		return m.words[i], false, nil
	}
}

// Scrub repairs all correctable words from the original image and clears
// their upset counters, returning how many words were repaired. Words with
// uncorrectable upsets are left in place (and keep reporting !ok on read).
func (m *ECCMemory) Scrub(original []float32) int {
	n := 0
	for i := range m.words {
		if m.flips[i] == 1 {
			m.words[i] = original[i]
			m.flips[i] = 0
			n++
		}
	}
	return n
}

// Corrected returns the number of reads that were transparently corrected.
func (m *ECCMemory) Corrected() uint64 { return m.corrected }

// Detected returns the number of reads that flagged uncorrectable upsets.
func (m *ECCMemory) Detected() uint64 { return m.detected }
