package fault

import (
	"fmt"
	"runtime"
	"strings"

	"repro/internal/pool"
)

// Outcome classifies the result of one fault-injection trial, following the
// standard taxonomy of the dependability literature the paper builds on.
type Outcome int

const (
	// OutcomeMasked: a fault was injected but the final output is correct
	// and no error was signalled (the fault was architecturally masked,
	// e.g. voted away by TMR or numerically absorbed).
	OutcomeMasked Outcome = iota + 1
	// OutcomeCorrected: an error was detected and transparently repaired
	// (retry/rollback succeeded); the output is correct.
	OutcomeCorrected
	// OutcomeDetected: an error was detected but could not be repaired —
	// a detected unrecoverable error (DUE). The application sees a failure
	// signal, not wrong data.
	OutcomeDetected
	// OutcomeSDC: silent data corruption — the output is wrong and nothing
	// was signalled. The failure mode reliability engineering exists to
	// eliminate.
	OutcomeSDC
)

// String implements fmt.Stringer.
func (o Outcome) String() string {
	switch o {
	case OutcomeMasked:
		return "masked"
	case OutcomeCorrected:
		return "corrected"
	case OutcomeDetected:
		return "detected"
	case OutcomeSDC:
		return "sdc"
	default:
		return fmt.Sprintf("outcome(%d)", int(o))
	}
}

// Tally accumulates trial outcomes. The zero value is ready to use.
type Tally struct {
	Masked    int
	Corrected int
	Detected  int
	SDC       int
}

// Merge accumulates another tally into t — the reduction step of a
// parallel campaign.
func (t *Tally) Merge(o Tally) {
	t.Masked += o.Masked
	t.Corrected += o.Corrected
	t.Detected += o.Detected
	t.SDC += o.SDC
}

// Add records one outcome. Unknown outcomes are counted as SDC, the
// conservative choice.
func (t *Tally) Add(o Outcome) {
	switch o {
	case OutcomeMasked:
		t.Masked++
	case OutcomeCorrected:
		t.Corrected++
	case OutcomeDetected:
		t.Detected++
	default:
		t.SDC++
	}
}

// Total returns the number of recorded trials.
func (t Tally) Total() int { return t.Masked + t.Corrected + t.Detected + t.SDC }

// SDCRate returns the fraction of trials ending in silent data corruption.
func (t Tally) SDCRate() float64 {
	if t.Total() == 0 {
		return 0
	}
	return float64(t.SDC) / float64(t.Total())
}

// Coverage returns the fraction of trials in which the fault was either
// harmless or signalled — 1 − SDCRate. This is the quantity the paper's
// "reliability guarantee" bounds.
func (t Tally) Coverage() float64 { return 1 - t.SDCRate() }

// String renders the tally as a single report line.
func (t Tally) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "trials=%d masked=%d corrected=%d detected=%d sdc=%d coverage=%.4f",
		t.Total(), t.Masked, t.Corrected, t.Detected, t.SDC, t.Coverage())
	return b.String()
}

// Trial runs one injection experiment and reports its outcome. The run
// function executes the workload under injection and reports whether the
// output was correct and whether an error was signalled.
type Trial func() (correct, signalled bool, err error)

// Classify maps a trial's (correct, signalled) observation to an Outcome.
// Note that a signalled-and-correct run counts as Corrected (the machinery
// detected a fault and repaired or absorbed it), while signalled-and-wrong is
// Detected (DUE: wrong data, but flagged).
func Classify(correct, signalled bool) Outcome {
	switch {
	case correct && !signalled:
		return OutcomeMasked
	case correct && signalled:
		return OutcomeCorrected
	case !correct && signalled:
		return OutcomeDetected
	default:
		return OutcomeSDC
	}
}

// RunCampaign executes n independent trials and tallies the outcomes.
func RunCampaign(n int, trial Trial) (Tally, error) {
	var tally Tally
	if n < 0 {
		return tally, fmt.Errorf("fault: campaign size %d negative", n)
	}
	if trial == nil {
		return tally, fmt.Errorf("fault: campaign trial must not be nil")
	}
	for i := 0; i < n; i++ {
		correct, signalled, err := trial()
		if err != nil {
			return tally, fmt.Errorf("fault: trial %d: %w", i, err)
		}
		tally.Add(Classify(correct, signalled))
	}
	return tally, nil
}

// IndexedTrial runs injection trial i. The index is the trial's identity:
// implementations must derive all randomness (fault times, bit positions,
// workload) from it, so a campaign's outcome set is independent of worker
// count and schedule.
type IndexedTrial func(i int) (correct, signalled bool, err error)

// RunCampaignParallel executes n independent trials across a worker pool
// (workers <= 0 defaults to GOMAXPROCS) and tallies the outcomes. Trials
// are claimed with work stealing — injection trials have wildly uneven
// cost (retry storms, early bucket trips), so static sharding would stall
// on the unlucky shard. The tally is the same multiset RunCampaign would
// produce for the same IndexedTrial; the first trial error aborts the
// campaign.
func RunCampaignParallel(n, workers int, trial IndexedTrial) (Tally, error) {
	var tally Tally
	if n < 0 {
		return tally, fmt.Errorf("fault: campaign size %d negative", n)
	}
	if trial == nil {
		return tally, fmt.Errorf("fault: campaign trial must not be nil")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	// Per-worker tallies need no locking: the pool runs each worker index
	// on exactly one goroutine.
	locals := make([]Tally, workers)
	err := pool.Run(n, workers, func(worker, i int) error {
		correct, signalled, err := trial(i)
		if err != nil {
			return err
		}
		locals[worker].Add(Classify(correct, signalled))
		return nil
	})
	if err != nil {
		return Tally{}, fmt.Errorf("fault: %w", err)
	}
	for _, local := range locals {
		tally.Merge(local)
	}
	return tally, nil
}
