package fault

import (
	"fmt"
	"strings"
)

// Outcome classifies the result of one fault-injection trial, following the
// standard taxonomy of the dependability literature the paper builds on.
type Outcome int

const (
	// OutcomeMasked: a fault was injected but the final output is correct
	// and no error was signalled (the fault was architecturally masked,
	// e.g. voted away by TMR or numerically absorbed).
	OutcomeMasked Outcome = iota + 1
	// OutcomeCorrected: an error was detected and transparently repaired
	// (retry/rollback succeeded); the output is correct.
	OutcomeCorrected
	// OutcomeDetected: an error was detected but could not be repaired —
	// a detected unrecoverable error (DUE). The application sees a failure
	// signal, not wrong data.
	OutcomeDetected
	// OutcomeSDC: silent data corruption — the output is wrong and nothing
	// was signalled. The failure mode reliability engineering exists to
	// eliminate.
	OutcomeSDC
)

// String implements fmt.Stringer.
func (o Outcome) String() string {
	switch o {
	case OutcomeMasked:
		return "masked"
	case OutcomeCorrected:
		return "corrected"
	case OutcomeDetected:
		return "detected"
	case OutcomeSDC:
		return "sdc"
	default:
		return fmt.Sprintf("outcome(%d)", int(o))
	}
}

// Tally accumulates trial outcomes. The zero value is ready to use.
type Tally struct {
	Masked    int
	Corrected int
	Detected  int
	SDC       int
}

// Add records one outcome. Unknown outcomes are counted as SDC, the
// conservative choice.
func (t *Tally) Add(o Outcome) {
	switch o {
	case OutcomeMasked:
		t.Masked++
	case OutcomeCorrected:
		t.Corrected++
	case OutcomeDetected:
		t.Detected++
	default:
		t.SDC++
	}
}

// Total returns the number of recorded trials.
func (t Tally) Total() int { return t.Masked + t.Corrected + t.Detected + t.SDC }

// SDCRate returns the fraction of trials ending in silent data corruption.
func (t Tally) SDCRate() float64 {
	if t.Total() == 0 {
		return 0
	}
	return float64(t.SDC) / float64(t.Total())
}

// Coverage returns the fraction of trials in which the fault was either
// harmless or signalled — 1 − SDCRate. This is the quantity the paper's
// "reliability guarantee" bounds.
func (t Tally) Coverage() float64 { return 1 - t.SDCRate() }

// String renders the tally as a single report line.
func (t Tally) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "trials=%d masked=%d corrected=%d detected=%d sdc=%d coverage=%.4f",
		t.Total(), t.Masked, t.Corrected, t.Detected, t.SDC, t.Coverage())
	return b.String()
}

// Trial runs one injection experiment and reports its outcome. The run
// function executes the workload under injection and reports whether the
// output was correct and whether an error was signalled.
type Trial func() (correct, signalled bool, err error)

// Classify maps a trial's (correct, signalled) observation to an Outcome.
// Note that a signalled-and-correct run counts as Corrected (the machinery
// detected a fault and repaired or absorbed it), while signalled-and-wrong is
// Detected (DUE: wrong data, but flagged).
func Classify(correct, signalled bool) Outcome {
	switch {
	case correct && !signalled:
		return OutcomeMasked
	case correct && signalled:
		return OutcomeCorrected
	case !correct && signalled:
		return OutcomeDetected
	default:
		return OutcomeSDC
	}
}

// RunCampaign executes n independent trials and tallies the outcomes.
func RunCampaign(n int, trial Trial) (Tally, error) {
	var tally Tally
	if n < 0 {
		return tally, fmt.Errorf("fault: campaign size %d negative", n)
	}
	if trial == nil {
		return tally, fmt.Errorf("fault: campaign trial must not be nil")
	}
	for i := 0; i < n; i++ {
		correct, signalled, err := trial()
		if err != nil {
			return tally, fmt.Errorf("fault: trial %d: %w", i, err)
		}
		tally.Add(Classify(correct, signalled))
	}
	return tally, nil
}
