package fault

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBitFlipFixedBit(t *testing.T) {
	m := BitFlip{Bit: 0}
	if got := m.Corrupt(0, nil); got != 1 {
		t.Errorf("flip bit 0 of 0 = %d, want 1", got)
	}
	if got := m.Corrupt(1, nil); got != 0 {
		t.Errorf("flip bit 0 of 1 = %d, want 0", got)
	}
	sign := BitFlip{Bit: 31}
	x := float32(1.5)
	y := CorruptFloat(sign, x, nil)
	if y != -1.5 {
		t.Errorf("sign flip of 1.5 = %v, want -1.5", y)
	}
}

func TestBitFlipRandomChangesExactlyOneBit(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := BitFlip{Bit: -1}
	for i := 0; i < 100; i++ {
		in := rng.Uint32()
		out := m.Corrupt(in, rng)
		if popcount(in^out) != 1 {
			t.Fatalf("random bitflip changed %d bits", popcount(in^out))
		}
	}
}

func popcount(x uint32) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}

func TestStuckAt(t *testing.T) {
	hi := StuckAt{Bit: 3, Value: true}
	if got := hi.Corrupt(0, nil); got != 8 {
		t.Errorf("stuck-at-1 bit 3 of 0 = %d, want 8", got)
	}
	if got := hi.Corrupt(8, nil); got != 8 {
		t.Errorf("stuck-at-1 idempotence broken: %d", got)
	}
	lo := StuckAt{Bit: 3, Value: false}
	if got := lo.Corrupt(0xFF, nil); got != 0xF7 {
		t.Errorf("stuck-at-0 bit 3 of 0xFF = %#x, want 0xF7", got)
	}
}

func TestMultiBitFlip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{1, 2, 5, 32} {
		m := MultiBitFlip{N: n}
		in := rng.Uint32()
		out := m.Corrupt(in, rng)
		if popcount(in^out) != n {
			t.Errorf("MultiBitFlip(%d) changed %d bits", n, popcount(in^out))
		}
	}
	// Degenerate N values clamp.
	m := MultiBitFlip{N: 0}
	if popcount(m.Corrupt(0, rng)) != 1 {
		t.Error("N=0 should clamp to 1")
	}
	m = MultiBitFlip{N: 100}
	if popcount(m.Corrupt(0, rng)) != 32 {
		t.Error("N=100 should clamp to 32")
	}
}

func TestWordRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := WordRandom{}
	a := m.Corrupt(0, rng)
	b := m.Corrupt(0, rng)
	if a == b {
		t.Log("two random words collided (possible but unlikely); not failing")
	}
}

func TestModelStrings(t *testing.T) {
	for _, m := range []Model{
		BitFlip{Bit: -1}, BitFlip{Bit: 5}, StuckAt{Bit: 2, Value: true},
		WordRandom{}, MultiBitFlip{N: 3},
	} {
		if m.String() == "" {
			t.Errorf("%T has empty String()", m)
		}
	}
}

func TestIdealALU(t *testing.T) {
	var a Ideal
	if a.Mul(3, 4) != 12 || a.Add(3, 4) != 7 {
		t.Error("ideal ALU arithmetic wrong")
	}
}

func TestTransientRateZeroIsIdeal(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a, err := NewTransient(0, BitFlip{Bit: -1}, rng)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if a.Mul(2, 3) != 6 {
			t.Fatal("rate-0 transient ALU corrupted a result")
		}
	}
	if a.Injected() != 0 {
		t.Error("rate-0 ALU reported injections")
	}
	if a.Ops() != 1000 {
		t.Errorf("ops = %d, want 1000", a.Ops())
	}
}

func TestTransientRateOneAlwaysCorrupts(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a, err := NewTransient(1, BitFlip{Bit: -1}, rng)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for i := 0; i < 200; i++ {
		if a.Mul(2, 3) != 6 {
			n++
		}
	}
	// Every op is corrupted, but a mantissa-LSB flip of 6 still changes the
	// value, so nearly all should differ. Allow none to match exactly.
	if a.Injected() != 200 {
		t.Errorf("injected = %d, want 200", a.Injected())
	}
	if n == 0 {
		t.Error("rate-1 ALU never changed a value")
	}
}

func TestTransientValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	if _, err := NewTransient(-0.1, BitFlip{}, rng); err == nil {
		t.Error("negative rate should fail")
	}
	if _, err := NewTransient(1.1, BitFlip{}, rng); err == nil {
		t.Error("rate > 1 should fail")
	}
	if _, err := NewTransient(0.5, nil, rng); err == nil {
		t.Error("nil model should fail")
	}
	if _, err := NewTransient(0.5, BitFlip{}, nil); err == nil {
		t.Error("nil rng should fail")
	}
}

func TestPermanentIsDeterministic(t *testing.T) {
	a, err := NewPermanent(StuckAt{Bit: 20, Value: true})
	if err != nil {
		t.Fatal(err)
	}
	x := a.Mul(1.5, 2.5)
	y := a.Mul(1.5, 2.5)
	if x != y {
		t.Error("permanent fault must repeat identically — temporal redundancy must NOT detect it")
	}
	if a.Ops() != 2 {
		t.Errorf("ops = %d, want 2", a.Ops())
	}
	if _, err := NewPermanent(nil); err == nil {
		t.Error("nil model should fail")
	}
}

func TestPermanentDiffersFromIdealSometimes(t *testing.T) {
	a, _ := NewPermanent(StuckAt{Bit: 22, Value: true})
	var ideal Ideal
	diff := 0
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 100; i++ {
		x, y := rng.Float32(), rng.Float32()
		if a.Mul(x, y) != ideal.Mul(x, y) {
			diff++
		}
	}
	if diff == 0 {
		t.Error("stuck-at fault never changed any product")
	}
}

func TestIntermittent(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a, err := NewIntermittent(0.5, StuckAt{Bit: 20, Value: true}, rng)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		a.Add(1, 2)
	}
	inj := a.Injected()
	if inj < 180 || inj > 320 {
		t.Errorf("intermittent injected %d of 500 at rate 0.5", inj)
	}
	if _, err := NewIntermittent(2, StuckAt{}, rng); err == nil {
		t.Error("rate > 1 should fail")
	}
	if _, err := NewIntermittent(0.5, nil, rng); err == nil {
		t.Error("nil model should fail")
	}
}

func TestOnceAfter(t *testing.T) {
	a, err := NewOnceAfter(3, BitFlip{Bit: 31}, nil)
	if err != nil {
		t.Fatal(err)
	}
	results := make([]float32, 6)
	for i := range results {
		results[i] = a.Mul(2, 3)
	}
	for i, r := range results {
		want := float32(6)
		if i == 3 {
			want = -6 // sign-flipped at the programmed op
		}
		if r != want {
			t.Errorf("op %d = %v, want %v", i, r, want)
		}
	}
	if !a.Fired() {
		t.Error("OnceAfter should report fired")
	}
	if a.Ops() != 6 {
		t.Errorf("ops = %d", a.Ops())
	}
	if _, err := NewOnceAfter(0, nil, nil); err == nil {
		t.Error("nil model should fail")
	}
}

func TestInjectSlice(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	data := make([]float32, 1000)
	for i := range data {
		data[i] = 1
	}
	n, err := InjectSlice(data, 0.1, BitFlip{Bit: -1}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if n < 60 || n > 150 {
		t.Errorf("injected %d of 1000 at rate 0.1", n)
	}
	changed := 0
	for _, x := range data {
		if x != 1 {
			changed++
		}
	}
	if changed == 0 {
		t.Error("no elements changed")
	}
	if _, err := InjectSlice(data, -1, BitFlip{}, rng); err == nil {
		t.Error("bad rate should fail")
	}
	if _, err := InjectSlice(data, 0.5, nil, rng); err == nil {
		t.Error("nil model should fail")
	}
}

func TestInjectExactly(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	data := make([]float32, 50)
	idx, err := InjectExactly(data, 5, BitFlip{Bit: 30}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(idx) != 5 {
		t.Fatalf("returned %d indices, want 5", len(idx))
	}
	changed := 0
	for _, x := range data {
		if x != 0 {
			changed++
		}
	}
	if changed != 5 {
		t.Errorf("%d elements changed, want 5", changed)
	}
	if _, err := InjectExactly(data, 51, BitFlip{}, rng); err == nil {
		t.Error("n > len should fail")
	}
	if _, err := InjectExactly(data, -1, BitFlip{}, rng); err == nil {
		t.Error("negative n should fail")
	}
	if _, err := InjectExactly(data, 1, nil, rng); err == nil {
		t.Error("nil model should fail")
	}
}

func TestECCMemory(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	orig := []float32{1, 2, 3, 4}
	m := NewECCMemory(orig)
	if m.Len() != 4 {
		t.Fatalf("len = %d", m.Len())
	}

	// Clean read.
	v, ok, err := m.Read(0, orig)
	if err != nil || !ok || v != 1 {
		t.Fatalf("clean read = %v %v %v", v, ok, err)
	}

	// Single upset: corrected on read.
	if err := m.Upset(1, rng); err != nil {
		t.Fatal(err)
	}
	v, ok, err = m.Read(1, orig)
	if err != nil || !ok || v != 2 {
		t.Fatalf("single-upset read = %v %v %v, want corrected 2", v, ok, err)
	}
	if m.Corrected() != 1 {
		t.Errorf("corrected = %d", m.Corrected())
	}

	// Double upset: detected, not corrected.
	if err := m.Upset(2, rng); err != nil {
		t.Fatal(err)
	}
	if err := m.Upset(2, rng); err != nil {
		t.Fatal(err)
	}
	_, ok, err = m.Read(2, orig)
	if err != nil || ok {
		t.Fatalf("double-upset read ok=%v err=%v, want detected", ok, err)
	}
	if m.Detected() != 1 {
		t.Errorf("detected = %d", m.Detected())
	}

	// Scrub repairs the single-upset word only.
	repaired := m.Scrub(orig)
	if repaired != 1 {
		t.Errorf("scrub repaired %d, want 1", repaired)
	}
	v, ok, _ = m.Read(1, orig)
	if !ok || v != 2 {
		t.Error("scrubbed word should read clean")
	}
	_, ok, _ = m.Read(2, orig)
	if ok {
		t.Error("uncorrectable word should stay detected after scrub")
	}

	if err := m.Upset(99, rng); err == nil {
		t.Error("out-of-range upset should fail")
	}
	if _, _, err := m.Read(99, orig); err == nil {
		t.Error("out-of-range read should fail")
	}
}

func TestOutcomeClassify(t *testing.T) {
	cases := []struct {
		correct, signalled bool
		want               Outcome
	}{
		{true, false, OutcomeMasked},
		{true, true, OutcomeCorrected},
		{false, true, OutcomeDetected},
		{false, false, OutcomeSDC},
	}
	for _, c := range cases {
		if got := Classify(c.correct, c.signalled); got != c.want {
			t.Errorf("Classify(%v,%v) = %v, want %v", c.correct, c.signalled, got, c.want)
		}
	}
}

func TestOutcomeString(t *testing.T) {
	for _, o := range []Outcome{OutcomeMasked, OutcomeCorrected, OutcomeDetected, OutcomeSDC, Outcome(99)} {
		if o.String() == "" {
			t.Error("empty outcome string")
		}
	}
}

func TestTally(t *testing.T) {
	var tl Tally
	tl.Add(OutcomeMasked)
	tl.Add(OutcomeCorrected)
	tl.Add(OutcomeDetected)
	tl.Add(OutcomeSDC)
	tl.Add(Outcome(0)) // unknown counts as SDC
	if tl.Total() != 5 {
		t.Errorf("total = %d", tl.Total())
	}
	if math.Abs(tl.SDCRate()-0.4) > 1e-12 {
		t.Errorf("sdc rate = %v", tl.SDCRate())
	}
	if math.Abs(tl.Coverage()-0.6) > 1e-12 {
		t.Errorf("coverage = %v", tl.Coverage())
	}
	if tl.String() == "" {
		t.Error("tally string empty")
	}
	var empty Tally
	if empty.SDCRate() != 0 || empty.Coverage() != 1 {
		t.Error("empty tally rates wrong")
	}
}

func TestRunCampaign(t *testing.T) {
	i := 0
	tally, err := RunCampaign(4, func() (bool, bool, error) {
		i++
		return i%2 == 0, true, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if tally.Corrected != 2 || tally.Detected != 2 {
		t.Errorf("tally = %+v", tally)
	}
	if _, err := RunCampaign(-1, nil); err == nil {
		t.Error("negative n should fail")
	}
	if _, err := RunCampaign(1, nil); err == nil {
		t.Error("nil trial should fail")
	}
}

func TestRunCampaignParallel(t *testing.T) {
	// Outcome derived from the index only → worker-count invariant tally.
	trial := func(i int) (bool, bool, error) {
		return i%2 == 0, i%3 == 0, nil
	}
	want, err := RunCampaignParallel(60, 1, trial)
	if err != nil {
		t.Fatal(err)
	}
	if want.Total() != 60 {
		t.Fatalf("serial total = %d", want.Total())
	}
	for _, workers := range []int{0, 2, 4, 7} {
		got, err := RunCampaignParallel(60, workers, trial)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("workers=%d tally %+v != serial %+v", workers, got, want)
		}
	}

	// Errors abort.
	boom := fmt.Errorf("boom")
	if _, err := RunCampaignParallel(50, 4, func(i int) (bool, bool, error) {
		if i == 10 {
			return false, false, boom
		}
		return true, false, nil
	}); err == nil {
		t.Error("trial error should propagate")
	}
	if _, err := RunCampaignParallel(-1, 2, trial); err == nil {
		t.Error("negative n should fail")
	}
	// Zero trials succeed with an empty tally, matching RunCampaign(0).
	empty, err := RunCampaignParallel(0, 4, trial)
	if err != nil || empty.Total() != 0 {
		t.Errorf("zero-trial campaign: tally %+v, err %v", empty, err)
	}
	if _, err := RunCampaignParallel(1, 2, nil); err == nil {
		t.Error("nil trial should fail")
	}

	// Merge is plain component-wise addition.
	a := Tally{Masked: 1, Corrected: 2, Detected: 3, SDC: 4}
	a.Merge(Tally{Masked: 10, Corrected: 20, Detected: 30, SDC: 40})
	if a != (Tally{Masked: 11, Corrected: 22, Detected: 33, SDC: 44}) {
		t.Errorf("merge = %+v", a)
	}
}

// Property: flipping the same bit twice is the identity.
func TestQuickBitFlipInvolution(t *testing.T) {
	f := func(bits uint32, bit uint8) bool {
		m := BitFlip{Bit: int(bit % 32)}
		return m.Corrupt(m.Corrupt(bits, nil), nil) == bits
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: StuckAt is idempotent.
func TestQuickStuckAtIdempotent(t *testing.T) {
	f := func(bits uint32, bit uint8, val bool) bool {
		m := StuckAt{Bit: int(bit % 32), Value: val}
		once := m.Corrupt(bits, nil)
		return m.Corrupt(once, nil) == once
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: CorruptFloat with a random bit flip always changes the bit
// pattern (though possibly not the comparison value, e.g. -0 vs +0).
func TestQuickBitFlipChangesPattern(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	f := func(x float32) bool {
		y := CorruptFloat(BitFlip{Bit: -1}, x, rng)
		return math.Float32bits(x) != math.Float32bits(y)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
