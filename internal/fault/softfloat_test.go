package fault

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// agree reports whether the soft result matches the hardware result
// bit-for-bit, treating all NaNs as equal (payloads are canonicalised).
func agree(soft, hard float32) bool {
	if math.IsNaN(float64(soft)) && math.IsNaN(float64(hard)) {
		return true
	}
	return math.Float32bits(soft) == math.Float32bits(hard)
}

func TestSoftMulDirected(t *testing.T) {
	inf := float32(math.Inf(1))
	nan := float32(math.NaN())
	tiny := math.Float32frombits(1)          // smallest denormal
	denorm := math.Float32frombits(0x7FFFFF) // largest denormal
	maxf := math.MaxFloat32
	cases := [][2]float32{
		{0, 0}, {0, -0}, {-0, -0}, {1, 1}, {2, 3}, {-2, 3}, {1.5, 1.5},
		{0.1, 0.2}, {1e30, 1e30}, {1e30, 1e-30}, {-1e-30, 1e-30},
		{float32(maxf), 2}, {float32(maxf), float32(maxf)},
		{tiny, 0.5}, {tiny, tiny}, {denorm, 2}, {denorm, 0.5}, {denorm, denorm},
		{inf, 1}, {inf, -1}, {inf, 0}, {0, inf}, {inf, inf}, {inf, -inf},
		{nan, 1}, {1, nan}, {nan, inf}, {nan, 0},
		{1.0000001, 0.9999999}, {3, 1.0 / 3},
		{math.Float32frombits(0x00800000), 0.5}, // smallest normal × 0.5 → denormal
	}
	for _, c := range cases {
		soft := MulSoft(c[0], c[1])
		hard := c[0] * c[1]
		if !agree(soft, hard) {
			t.Errorf("MulSoft(%x, %x) = %x, hardware %x",
				math.Float32bits(c[0]), math.Float32bits(c[1]),
				math.Float32bits(soft), math.Float32bits(hard))
		}
	}
}

func TestSoftAddDirected(t *testing.T) {
	inf := float32(math.Inf(1))
	nan := float32(math.NaN())
	tiny := math.Float32frombits(1)
	denorm := math.Float32frombits(0x7FFFFF)
	maxf := float32(math.MaxFloat32)
	cases := [][2]float32{
		{0, 0}, {0, float32(math.Copysign(0, -1))},
		{float32(math.Copysign(0, -1)), float32(math.Copysign(0, -1))},
		{1, 1}, {1, -1}, {2, 3}, {-2, 3}, {0.1, 0.2},
		{1, 1e-10}, {1e10, -1e10}, {1e10, 1}, {1, -0.9999999},
		{1.0000001, -1}, {maxf, maxf}, {maxf, -maxf}, {maxf, maxf / 2},
		{tiny, tiny}, {tiny, -tiny}, {denorm, tiny}, {denorm, denorm},
		{denorm, -tiny}, {1, denorm}, {-1, denorm},
		{inf, 1}, {inf, inf}, {inf, -inf}, {-inf, 1}, {1, -inf},
		{nan, 1}, {1, nan}, {nan, inf},
		{1.5, 2.5}, {0.5, 0.25},
		{math.Float32frombits(0x00800000), -math.Float32frombits(0x00400000)},
	}
	for _, c := range cases {
		soft := AddSoft(c[0], c[1])
		hard := c[0] + c[1]
		if !agree(soft, hard) {
			t.Errorf("AddSoft(%x, %x) = %x, hardware %x",
				math.Float32bits(c[0]), math.Float32bits(c[1]),
				math.Float32bits(soft), math.Float32bits(hard))
		}
	}
}

// Property: the emulated multiplier is bit-exact against the FPU on
// arbitrary bit patterns (including denormals, infinities and NaNs).
func TestQuickSoftMulMatchesHardware(t *testing.T) {
	f := func(ab, bb uint32) bool {
		a := math.Float32frombits(ab)
		b := math.Float32frombits(bb)
		return agree(MulSoft(a, b), a*b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20000}); err != nil {
		t.Error(err)
	}
}

// Property: the emulated adder is bit-exact against the FPU.
func TestQuickSoftAddMatchesHardware(t *testing.T) {
	f := func(ab, bb uint32) bool {
		a := math.Float32frombits(ab)
		b := math.Float32frombits(bb)
		return agree(AddSoft(a, b), a+b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20000}); err != nil {
		t.Error(err)
	}
}

// Near-cancellation stress: differences of close numbers exercise the
// normalisation loop and the guard/round/sticky datapath.
func TestSoftAddCancellationSweep(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 20000; i++ {
		a := math.Float32frombits(rng.Uint32()&0x3FFFFFFF | 0x3F000000) // ~[0.5, 4)
		ulps := int32(rng.Intn(16)) - 8
		b := -math.Float32frombits(uint32(int32(math.Float32bits(a)) + ulps))
		soft := AddSoft(a, b)
		hard := a + b
		if !agree(soft, hard) {
			t.Fatalf("AddSoft(%x, %x) = %x, hardware %x",
				math.Float32bits(a), math.Float32bits(b),
				math.Float32bits(soft), math.Float32bits(hard))
		}
	}
}

// Denormal-range stress for both operators.
func TestSoftDenormalSweep(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for i := 0; i < 20000; i++ {
		a := math.Float32frombits(rng.Uint32() & 0x00FFFFFF) // denormal/small normal
		b := math.Float32frombits(rng.Uint32() & 0x40FFFFFF)
		if !agree(MulSoft(a, b), a*b) {
			t.Fatalf("mul mismatch at %x × %x", math.Float32bits(a), math.Float32bits(b))
		}
		if !agree(AddSoft(a, b), a+b) {
			t.Fatalf("add mismatch at %x + %x", math.Float32bits(a), math.Float32bits(b))
		}
	}
}

func TestSoftALUInterface(t *testing.T) {
	var alu Soft
	if alu.Mul(3, 4) != 12 || alu.Add(3, 4) != 7 {
		t.Error("Soft ALU arithmetic wrong")
	}
}
