package fault

import "math"

// This file implements a bit-level IEEE-754 binary32 multiplier and adder —
// the software stand-in for the FPGA-instantiable arithmetic operators the
// paper ultimately targets ("there are a substantial number of degrees of
// freedom when implementing arithmetic operations in an FPGA"). The Soft
// ALU executes every operation through these emulated circuits, which makes
// the *arithmetic* the dominant cost of an overloaded operation, exactly as
// in the paper's measurement setup, and gives the Table 1 benchmarks their
// cost structure (redundant execution ≈ 2× non-redundant, both ≫ native).
//
// The emulation is exact: results are bit-identical to hardware IEEE-754
// round-to-nearest-even arithmetic, including denormals, signed zeros and
// infinities (NaN payloads are canonicalised). Property tests compare it
// against the FPU on randomised and directed operand sets.

const (
	f32SignMask = 1 << 31
	f32ExpMask  = 0xFF << 23
	f32FracMask = 1<<23 - 1
	f32QNaN     = 0x7FC00000
)

// MulSoft returns a*b computed by the bit-level emulated multiplier.
func MulSoft(a, b float32) float32 {
	return math.Float32frombits(mulBits(math.Float32bits(a), math.Float32bits(b)))
}

// AddSoft returns a+b computed by the bit-level emulated adder.
func AddSoft(a, b float32) float32 {
	return math.Float32frombits(addBits(math.Float32bits(a), math.Float32bits(b)))
}

// Soft is an ALU computing through the emulated circuits. The zero value is
// ready to use.
type Soft struct{}

var _ ALU = Soft{}

// Mul implements ALU via the emulated multiplier.
func (Soft) Mul(a, b float32) float32 { return MulSoft(a, b) }

// Add implements ALU via the emulated adder.
func (Soft) Add(a, b float32) float32 { return AddSoft(a, b) }

// decompose splits bits into sign, unbiased exponent and a mantissa with the
// implicit bit applied (denormals get exponent −126 and their raw mantissa,
// which keeps alignment arithmetic uniform).
func decompose(bits uint32) (sign uint32, exp int, frac uint32) {
	sign = bits & f32SignMask
	e := int(bits >> 23 & 0xFF)
	frac = bits & f32FracMask
	if e == 0 {
		return sign, -126, frac // denormal (or zero): no implicit bit
	}
	return sign, e - 127, frac | 1<<23
}

// mulBits is the emulated binary32 multiplier.
func mulBits(a, b uint32) uint32 {
	ea := a & f32ExpMask
	eb := b & f32ExpMask
	sign := (a ^ b) & f32SignMask

	// Specials.
	if ea == f32ExpMask { // a is Inf or NaN
		if a&f32FracMask != 0 {
			return f32QNaN // NaN propagates (canonicalised)
		}
		if eb == f32ExpMask && b&f32FracMask != 0 {
			return f32QNaN
		}
		if b&^uint32(f32SignMask) == 0 {
			return f32QNaN // Inf × 0
		}
		return sign | f32ExpMask // Inf
	}
	if eb == f32ExpMask {
		if b&f32FracMask != 0 {
			return f32QNaN
		}
		if a&^uint32(f32SignMask) == 0 {
			return f32QNaN // 0 × Inf
		}
		return sign | f32ExpMask
	}
	if a&^uint32(f32SignMask) == 0 || b&^uint32(f32SignMask) == 0 {
		return sign // signed zero
	}

	_, expA, fa := decompose(a)
	_, expB, fb := decompose(b)
	// Normalise denormal inputs so both mantissas have bit 23 set.
	for fa&(1<<23) == 0 {
		fa <<= 1
		expA--
	}
	for fb&(1<<23) == 0 {
		fb <<= 1
		expB--
	}

	// 24×24 → 47- or 48-bit product; normalise the MSB to bit 47, so the
	// value is P/2^47 ∈ [1, 2).
	p := uint64(fa) * uint64(fb)
	e := expA + expB
	if p&(1<<47) != 0 {
		e++
	} else {
		p <<= 1
	}
	return roundPack(sign, e, p, 47)
}

// roundPack rounds a positive significand with its MSB at bit `msb`
// (value = p / 2^msb ∈ [1,2)) to 24 bits with round-to-nearest-even and
// encodes the float, handling overflow and gradual underflow.
func roundPack(sign uint32, e int, p uint64, msb uint) uint32 {
	shift := int(msb) - 23 // bits to drop for a 24-bit significand
	ebiased := e + 127
	if ebiased <= 0 {
		// Gradual underflow: shift further so the encoded exponent is 0.
		shift += 1 - ebiased
		ebiased = 0
		if shift > 62 {
			shift = 62 // everything becomes sticky
		}
	}
	m := p >> uint(shift)
	rem := p & (1<<uint(shift) - 1)
	half := uint64(1) << uint(shift-1)
	if rem > half || (rem == half && m&1 == 1) {
		m++
	}
	if m >= 1<<24 {
		m >>= 1
		ebiased++
	}
	if ebiased == 0 {
		// Denormal — or the round-up to the smallest normal, which the
		// encoding below handles naturally (m = 2^23 sets the exponent
		// field to 1 with a zero fraction).
		return sign | uint32(m)
	}
	if m&(1<<23) == 0 {
		// Unnormalised significand at the denormal boundary (the adder's
		// normalisation loop stops at e = −126, i.e. ebiased = 1): encode
		// as a denormal, whose exponent field 0 has the same 2^−126 scale.
		return sign | uint32(m)
	}
	if ebiased >= 0xFF {
		return sign | f32ExpMask // overflow → Inf
	}
	return sign | uint32(ebiased)<<23 | uint32(m)&f32FracMask
}

// addBits is the emulated binary32 adder (guard/round/sticky datapath).
func addBits(a, b uint32) uint32 {
	ea := a & f32ExpMask
	eb := b & f32ExpMask

	// Specials.
	if ea == f32ExpMask {
		if a&f32FracMask != 0 {
			return f32QNaN
		}
		if eb == f32ExpMask {
			if b&f32FracMask != 0 {
				return f32QNaN
			}
			if (a^b)&f32SignMask != 0 {
				return f32QNaN // Inf − Inf
			}
		}
		return a // Inf dominates
	}
	if eb == f32ExpMask {
		if b&f32FracMask != 0 {
			return f32QNaN
		}
		return b
	}
	if a&^uint32(f32SignMask) == 0 { // a is ±0
		if b&^uint32(f32SignMask) == 0 {
			// ±0 + ±0: −0 only when both are −0 (round-to-nearest).
			return a & b
		}
		return b
	}
	if b&^uint32(f32SignMask) == 0 {
		return a
	}

	signA, expA, fracA := decompose(a)
	signB, expB, fracB := decompose(b)

	// 3 extra bits: guard, round, sticky.
	fa := uint64(fracA) << 3
	fb := uint64(fracB) << 3
	// Align to the larger exponent, keeping a sticky bit.
	if expA < expB || (expA == expB && fa < fb) {
		signA, signB = signB, signA
		expA, expB = expB, expA
		fa, fb = fb, fa
	}
	d := expA - expB
	if d > 0 {
		if d > 31 {
			if fb != 0 {
				fb = 1 // pure sticky
			}
		} else {
			sticky := uint64(0)
			if fb&(1<<uint(d)-1) != 0 {
				sticky = 1
			}
			fb = fb>>uint(d) | sticky
		}
	}

	var sum uint64
	sign := signA
	if signA == signB {
		sum = fa + fb
	} else {
		sum = fa - fb // fa ≥ fb by the swap above
		if sum == 0 {
			return 0 // exact cancellation → +0 (round-to-nearest)
		}
	}

	// Normalise: significand should have its MSB at bit 26 (24 bits + 3
	// GRS − 1). After an add it may be at 27; after a subtract, lower.
	e := expA
	if sum&(1<<27) != 0 {
		sticky := sum & 1
		sum = sum>>1 | sticky
		e++
	}
	for sum&(1<<26) == 0 && e > -126 {
		sum <<= 1
		e--
	}
	return roundPack(sign, e, sum, 26)
}
