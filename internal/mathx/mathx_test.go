package mathx

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSoftmaxBasic(t *testing.T) {
	src := []float32{1, 2, 3}
	dst := make([]float32, 3)
	if err := Softmax(dst, src); err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, p := range dst {
		if p <= 0 || p >= 1 {
			t.Errorf("softmax value %v out of (0,1)", p)
		}
		sum += float64(p)
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Errorf("softmax sum = %v, want 1", sum)
	}
	if !(dst[2] > dst[1] && dst[1] > dst[0]) {
		t.Error("softmax should be monotone in its inputs")
	}
}

func TestSoftmaxStability(t *testing.T) {
	src := []float32{1000, 1001, 1002}
	dst := make([]float32, 3)
	if err := Softmax(dst, src); err != nil {
		t.Fatal(err)
	}
	for _, p := range dst {
		if math.IsNaN(float64(p)) || math.IsInf(float64(p), 0) {
			t.Fatalf("softmax overflow: %v", dst)
		}
	}
}

func TestSoftmaxAliasAndErrors(t *testing.T) {
	src := []float32{0, 0}
	if err := Softmax(src, src); err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(src[0])-0.5) > 1e-6 {
		t.Errorf("aliased softmax = %v, want 0.5", src[0])
	}
	if err := Softmax(make([]float32, 1), make([]float32, 2)); err == nil {
		t.Error("length mismatch should fail")
	}
	if err := Softmax(nil, nil); err == nil {
		t.Error("empty softmax should fail")
	}
}

func TestLogSumExp(t *testing.T) {
	got := LogSumExp([]float64{math.Log(1), math.Log(2), math.Log(3)})
	if math.Abs(got-math.Log(6)) > 1e-12 {
		t.Errorf("LogSumExp = %v, want log 6", got)
	}
	if !math.IsInf(LogSumExp(nil), -1) {
		t.Error("LogSumExp(empty) should be -Inf")
	}
	if !math.IsInf(LogSumExp([]float64{math.Inf(-1)}), -1) {
		t.Error("LogSumExp(-Inf) should be -Inf")
	}
	// Stability at large magnitudes.
	got = LogSumExp([]float64{1e4, 1e4})
	if math.Abs(got-(1e4+math.Log(2))) > 1e-9 {
		t.Errorf("LogSumExp large = %v", got)
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Error("Clamp misbehaves")
	}
}

func TestApproxEqual(t *testing.T) {
	if !ApproxEqual(1.0, 1.0+1e-12, 1e-9, 0) {
		t.Error("tiny absolute difference should be equal")
	}
	if ApproxEqual(1.0, 1.1, 1e-9, 1e-6) {
		t.Error("10% difference should not be equal")
	}
	if !ApproxEqual(1e9, 1e9+1, 0, 1e-6) {
		t.Error("relative tolerance should absorb large-magnitude slack")
	}
}

func TestWelford(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Var() != 0 || w.N() != 0 {
		t.Error("zero value should be ready to use")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if w.N() != 8 {
		t.Errorf("N = %d, want 8", w.N())
	}
	if math.Abs(w.Mean()-5) > 1e-12 {
		t.Errorf("Mean = %v, want 5", w.Mean())
	}
	if math.Abs(w.Var()-4) > 1e-12 {
		t.Errorf("Var = %v, want 4", w.Var())
	}
	if math.Abs(w.Std()-2) > 1e-12 {
		t.Errorf("Std = %v, want 2", w.Std())
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	for _, c := range []struct{ q, want float64 }{
		{0, 1}, {1, 4}, {0.5, 2.5}, {1.0 / 3.0, 2},
	} {
		got, err := Quantile(xs, c.q)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if _, err := Quantile(nil, 0.5); err == nil {
		t.Error("empty quantile should fail")
	}
	if _, err := Quantile(xs, 1.5); err == nil {
		t.Error("q out of range should fail")
	}
	one, err := Quantile([]float64{42}, 0.9)
	if err != nil || one != 42 {
		t.Errorf("singleton quantile = %v, %v", one, err)
	}
}

func TestMeanStd(t *testing.T) {
	m, s := MeanStd([]float64{1, 2, 3})
	if math.Abs(m-2) > 1e-12 {
		t.Errorf("mean = %v", m)
	}
	if math.Abs(s-math.Sqrt(2.0/3.0)) > 1e-12 {
		t.Errorf("std = %v", s)
	}
	m, s = MeanStd(nil)
	if m != 0 || s != 0 {
		t.Error("MeanStd(empty) should be 0,0")
	}
}

func TestLinspace(t *testing.T) {
	xs, err := Linspace(0, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 0.25, 0.5, 0.75, 1}
	for i, w := range want {
		if math.Abs(xs[i]-w) > 1e-12 {
			t.Errorf("Linspace[%d] = %v, want %v", i, xs[i], w)
		}
	}
	if _, err := Linspace(0, 1, 1); err == nil {
		t.Error("Linspace(n=1) should fail")
	}
}

func TestNormalQuantile(t *testing.T) {
	cases := []struct{ q, want float64 }{
		{0.5, 0},
		{0.8413447, 1.0},  // Φ(1) ≈ 0.8413
		{0.9772499, 2.0},  // Φ(2)
		{0.1586553, -1.0}, // Φ(-1)
		{0.0013499, -3.0}, // deep tail
	}
	for _, c := range cases {
		got, err := NormalQuantile(c.q)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-c.want) > 1e-4 {
			t.Errorf("NormalQuantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	for _, bad := range []float64{0, 1, -0.1, 1.1} {
		if _, err := NormalQuantile(bad); err == nil {
			t.Errorf("NormalQuantile(%v) should fail", bad)
		}
	}
}

// Property: softmax output always sums to ~1 and is a valid distribution.
func TestQuickSoftmaxDistribution(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		src := make([]float32, len(raw))
		for i, v := range raw {
			src[i] = float32(v) / 100
		}
		dst := make([]float32, len(src))
		if err := Softmax(dst, src); err != nil {
			return false
		}
		var sum float64
		for _, p := range dst {
			if p < 0 || math.IsNaN(float64(p)) {
				return false
			}
			sum += float64(p)
		}
		return math.Abs(sum-1) < 1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: NormalQuantile is monotone and antisymmetric about 0.5.
func TestQuickNormalQuantileShape(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 200; i++ {
		q := 0.001 + 0.998*rng.Float64()
		x1, err := NormalQuantile(q)
		if err != nil {
			t.Fatal(err)
		}
		x2, err := NormalQuantile(1 - q)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(x1+x2) > 1e-6 {
			t.Fatalf("antisymmetry violated at q=%v: %v vs %v", q, x1, x2)
		}
		q2 := q + 0.0005
		if q2 < 1 {
			y, err := NormalQuantile(q2)
			if err != nil {
				t.Fatal(err)
			}
			if y < x1 {
				t.Fatalf("monotonicity violated at q=%v", q)
			}
		}
	}
}

// Property: Welford matches the two-pass mean for arbitrary inputs.
func TestQuickWelfordMatchesTwoPass(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		var w Welford
		var sum float64
		for _, v := range raw {
			w.Add(float64(v))
			sum += float64(v)
		}
		return math.Abs(w.Mean()-sum/float64(len(raw))) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
