// Package mathx collects the small numerical routines shared across the
// repository: numerically stable softmax, running statistics, quantiles and
// tolerant float comparison. Everything is allocation-conscious and
// deterministic.
package mathx

import (
	"fmt"
	"math"
	"sort"
)

// Softmax writes the softmax of src into dst (which may alias src). It is
// numerically stable (max-subtraction) and returns an error if the lengths
// differ or src is empty.
func Softmax(dst, src []float32) error {
	if len(dst) != len(src) {
		return fmt.Errorf("mathx: softmax length mismatch %d != %d", len(dst), len(src))
	}
	if len(src) == 0 {
		return fmt.Errorf("mathx: softmax of empty slice")
	}
	m := src[0]
	for _, x := range src[1:] {
		if x > m {
			m = x
		}
	}
	var sum float64
	for i, x := range src {
		e := math.Exp(float64(x - m))
		dst[i] = float32(e)
		sum += e
	}
	inv := float32(1 / sum)
	for i := range dst {
		dst[i] *= inv
	}
	return nil
}

// LogSumExp returns log(Σ exp(x_i)) computed stably.
func LogSumExp(xs []float64) float64 {
	if len(xs) == 0 {
		return math.Inf(-1)
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	if math.IsInf(m, -1) {
		return m
	}
	var s float64
	for _, x := range xs {
		s += math.Exp(x - m)
	}
	return m + math.Log(s)
}

// Clamp limits v to [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// ApproxEqual reports |a-b| <= atol + rtol*max(|a|,|b|).
func ApproxEqual(a, b, atol, rtol float64) bool {
	d := math.Abs(a - b)
	m := math.Max(math.Abs(a), math.Abs(b))
	return d <= atol+rtol*m
}

// Welford accumulates mean and variance in a single numerically stable pass.
// The zero value is ready to use.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add folds x into the running statistics.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of samples seen.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean (0 before any sample).
func (w *Welford) Mean() float64 { return w.mean }

// Var returns the population variance (0 with fewer than 2 samples).
func (w *Welford) Var() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// Std returns the population standard deviation.
func (w *Welford) Std() float64 { return math.Sqrt(w.Var()) }

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics. It copies and sorts internally.
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, fmt.Errorf("mathx: quantile of empty slice")
	}
	if q < 0 || q > 1 {
		return 0, fmt.Errorf("mathx: quantile q=%v out of [0,1]", q)
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if len(s) == 1 {
		return s[0], nil
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo], nil
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac, nil
}

// MeanStd returns the mean and population standard deviation of xs
// (both 0 for an empty slice).
func MeanStd(xs []float64) (mean, std float64) {
	var w Welford
	for _, x := range xs {
		w.Add(x)
	}
	return w.Mean(), w.Std()
}

// Linspace returns n evenly spaced points from lo to hi inclusive.
// n must be >= 2.
func Linspace(lo, hi float64, n int) ([]float64, error) {
	if n < 2 {
		return nil, fmt.Errorf("mathx: linspace needs n >= 2, got %d", n)
	}
	out := make([]float64, n)
	step := (hi - lo) / float64(n-1)
	for i := range out {
		out[i] = lo + float64(i)*step
	}
	out[n-1] = hi // avoid accumulated rounding at the endpoint
	return out, nil
}

// NormalQuantile returns the q-quantile of the standard normal distribution
// (the probit function), using the Acklam rational approximation, which is
// accurate to about 1.15e-9 over (0,1). It is used to derive SAX breakpoints
// for arbitrary alphabet sizes.
func NormalQuantile(q float64) (float64, error) {
	if q <= 0 || q >= 1 {
		return 0, fmt.Errorf("mathx: normal quantile q=%v out of (0,1)", q)
	}
	// Coefficients for the Acklam approximation.
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
		1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
		6.680131188771972e+01, -1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
		-2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
		3.754408661907416e+00}
	const pLow = 0.02425
	var x float64
	switch {
	case q < pLow:
		u := math.Sqrt(-2 * math.Log(q))
		x = (((((c[0]*u+c[1])*u+c[2])*u+c[3])*u+c[4])*u + c[5]) /
			((((d[0]*u+d[1])*u+d[2])*u+d[3])*u + 1)
	case q <= 1-pLow:
		u := q - 0.5
		r := u * u
		x = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * u /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		u := math.Sqrt(-2 * math.Log(1-q))
		x = -(((((c[0]*u+c[1])*u+c[2])*u+c[3])*u+c[4])*u + c[5]) /
			((((d[0]*u+d[1])*u+d[2])*u+d[3])*u + 1)
	}
	return x, nil
}
