package shard

import (
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// supervisorTestConfig tightens the restart knobs so backoff-budget
// behaviour is observable in milliseconds.
func supervisorTestConfig(t *testing.T) Config {
	cfg := testConfig(t)
	cfg.RestartBackoff = 10 * time.Millisecond
	cfg.RestartBackoffMax = 100 * time.Millisecond
	cfg.RestartMax = 3
	return cfg
}

// writeWorkerScript creates a stand-in worker binary: a shell script that
// reports one of the given HTTP addresses (picked by run count, matching
// Spawn's sequential start order) and then idles until SIGTERM. The HTTP
// planes live in-process (testWorker), so the script is pure lifecycle —
// SIGKILLing it simulates worker death without the cost of real hybridnetd
// processes. Creating the "fail" file makes every later run exit before
// reporting, which is how the tests exhaust the restart budget.
func writeWorkerScript(t *testing.T, dir string, addrs ...string) string {
	t.Helper()
	script := filepath.Join(dir, "worker.sh")
	body := "#!/bin/sh\ntrap 'exit 0' TERM INT\n"
	body += fmt.Sprintf("n=$(cat %s/count 2>/dev/null || echo 0)\n", dir)
	body += fmt.Sprintf("echo $((n+1)) > %s/count\n", dir)
	body += fmt.Sprintf("if [ -e %s/fail ]; then exit 1; fi\n", dir)
	for i, a := range addrs {
		body += fmt.Sprintf("if [ \"$n\" = \"%d\" ]; then echo \"HYBRIDNETD_ADDR=%s\"; fi\n", i, a)
	}
	// Runs beyond the scripted list reuse the last address (respawns).
	body += fmt.Sprintf("if [ \"$n\" -ge \"%d\" ]; then echo \"HYBRIDNETD_ADDR=%s\"; fi\n",
		len(addrs), addrs[len(addrs)-1])
	body += "while :; do sleep 1; done\n"
	if err := os.WriteFile(script, []byte(body), 0o755); err != nil {
		t.Fatal(err)
	}
	return script
}

// TestSupervisorRespawnsKilledWorker: SIGKILL a spawned worker and the
// supervisor must bring it back within the backoff budget — the respawn
// counter ticks, the shard stays (or returns) healthy, and traffic flows.
// Run under -race: the supervisor rewrites shard state the proxy path reads.
func TestSupervisorRespawnsKilledWorker(t *testing.T) {
	w := startTestWorker(t)
	script := writeWorkerScript(t, t.TempDir(), w.addr)
	router, err := Spawn(script, 1, nil, supervisorTestConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	front := newSpawnedFront(t, router)

	client := &http.Client{Timeout: 5 * time.Second}
	if err := classifyOK(client, front); err != nil {
		t.Fatal(err)
	}

	for round := 1; round <= 2; round++ {
		victim := router.shards[0].currentProc()
		if err := victim.cmd.Process.Kill(); err != nil {
			t.Fatal(err)
		}
		waitFor(t, "victim reaped", victim.exited)
		waitFor(t, fmt.Sprintf("respawn %d", round), func() bool {
			return router.shards[0].restarts.Load() >= uint64(round)
		})
		if np := router.shards[0].currentProc(); np == victim {
			t.Fatal("shard still holds the dead process after respawn")
		}
		if err := classifyOK(client, front); err != nil {
			t.Fatalf("post-respawn request (round %d): %v", round, err)
		}
		rep := routerReport(t, front)
		if rep.Shards[0].Restarts != uint64(round) || rep.Shards[0].PermanentlyDown {
			t.Fatalf("round %d: shard status %+v", round, rep.Shards[0])
		}
	}
}

// TestSupervisorExhaustionMarksPermanentlyDown: when every respawn attempt
// fails, the shard must be marked permanently down after RestartMax
// consecutive attempts — without crashing the router, which keeps serving
// through the surviving shard, and without dropping the dead shard from the
// fleet aggregate.
func TestSupervisorExhaustionMarksPermanentlyDown(t *testing.T) {
	wA := startTestWorker(t)
	wB := startTestWorker(t)
	dir := t.TempDir()
	script := writeWorkerScript(t, dir, wA.addr, wB.addr)
	cfg := supervisorTestConfig(t)
	router, err := Spawn(script, 2, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	front := newSpawnedFront(t, router)

	client := &http.Client{Timeout: 5 * time.Second}
	if err := classifyOK(client, front); err != nil {
		t.Fatal(err)
	}

	// Every future script run dies before reporting an address, and shard
	// 0's HTTP plane goes with its process — a total worker loss.
	if err := os.WriteFile(filepath.Join(dir, "fail"), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	wA.Stop()
	victim := router.shards[0].currentProc()
	if err := victim.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}

	waitFor(t, "shard 0 permanently down", func() bool {
		return routerReport(t, front).Shards[0].PermanentlyDown
	})
	// The router keeps serving through shard 1.
	for i := 0; i < 5; i++ {
		if err := classifyOK(client, front); err != nil {
			t.Fatalf("request after exhaustion: %v", err)
		}
	}
	rep := routerReport(t, front)
	if rep.Shards[0].Healthy {
		t.Fatal("permanently-down shard still marked healthy")
	}
	if rep.Aggregate.Shards != 2 {
		t.Fatalf("aggregate shard count %d after worker loss, want the fleet size 2", rep.Aggregate.Shards)
	}
	// /healthz reports the loss without degrading (one shard is healthy).
	resp, err := client.Get(front + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Shards  int `json:"shards"`
		Healthy int `json:"healthy"`
		Down    int `json:"down"`
	}
	decodeJSONBody(t, resp, &health)
	if resp.StatusCode != http.StatusOK || health.Shards != 2 || health.Healthy != 1 || health.Down != 1 {
		t.Fatalf("healthz status %d body %+v, want 200 with 2 shards / 1 healthy / 1 down",
			resp.StatusCode, health)
	}
	// Replacement is the supervisor's job for spawned shards.
	if err := router.ReplaceShard(1, wB.addr); err == nil {
		t.Error("ReplaceShard accepted a spawned, supervised shard")
	}
}

// TestSupervisorDisabled: RestartMax < 0 restores the pre-supervisor
// behaviour — a killed worker stays dead and only the breaker reacts.
func TestSupervisorDisabled(t *testing.T) {
	w := startTestWorker(t)
	script := writeWorkerScript(t, t.TempDir(), w.addr)
	cfg := supervisorTestConfig(t)
	cfg.RestartMax = -1
	router, err := Spawn(script, 1, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	newSpawnedFront(t, router) // registers shutdown cleanup

	victim := router.shards[0].currentProc()
	if err := victim.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "victim reaped", victim.exited)
	// Give a would-be supervisor several backoff periods to act, then
	// confirm nothing did.
	time.Sleep(10 * cfg.RestartBackoff)
	if got := router.shards[0].restarts.Load(); got != 0 {
		t.Fatalf("respawns happened with supervision disabled: %d", got)
	}
	if router.shards[0].currentProc() != victim {
		t.Fatal("process replaced with supervision disabled")
	}
}
