package shard

import (
	"bufio"
	"context"
	"fmt"
	"os"
	"os/exec"
	"sync"
	"syscall"
	"time"

	"repro/internal/cli"
)

// spawnReportTimeout bounds how long a freshly started worker may take to
// bind its listener and report the address on stdout.
const spawnReportTimeout = 15 * time.Second

// workerProc supervises one spawned hybridnetd process.
type workerProc struct {
	cmd    *exec.Cmd
	waited chan struct{} // closed once Wait has returned (process reaped)

	mu      sync.Mutex
	waitErr error
}

// Spawn starts n hybridnetd worker processes from bin, each on a
// kernel-assigned port (`-addr 127.0.0.1:0` plus extraArgs, e.g. "-demo"),
// learns every bound address from the stdout report line, and returns a
// Router over the fleet. On any startup failure the already-started workers
// are killed. Each worker is supervised: if it exits, the router respawns
// it with exponential backoff until Config.RestartMax consecutive attempts
// fail (see Router docs). Shutdown parks the supervisors, then SIGTERMs the
// workers and waits for their drain.
func Spawn(bin string, n int, extraArgs []string, cfg Config) (*Router, error) {
	if n < 1 {
		return nil, fmt.Errorf("shard: need at least 1 worker, got %d", n)
	}
	if err := validateWeights(cfg.Weights, n); err != nil {
		return nil, err
	}
	if _, err := NewPlacer(cfg.Placement, PlacerOptions{}); err != nil {
		return nil, err
	}
	logf := cfg.withDefaults().Logf
	shards := make([]*shardState, 0, n)
	kill := func() {
		for _, s := range shards {
			s.proc.cmd.Process.Kill()
		}
	}
	for i := 0; i < n; i++ {
		proc, addr, err := startWorker(bin, extraArgs, i, logf, nil)
		if err != nil {
			kill()
			return nil, fmt.Errorf("shard: worker %d: %w", i, err)
		}
		u, err := normalizeURL(addr)
		if err != nil {
			kill()
			proc.cmd.Process.Kill()
			return nil, fmt.Errorf("shard: worker %d reported bad address %q: %w", i, addr, err)
		}
		logf("shard: worker %d up at %s (pid %d)", i, u, proc.cmd.Process.Pid)
		shards = append(shards, &shardState{id: i, url: u, proc: proc})
	}
	r := newRouter(shards, cfg)
	r.bin, r.binArgs = bin, extraArgs
	r.superviseSpawned()
	return r, nil
}

// startWorker launches one process and waits for its address report. A
// close of cancel (nil = never) abandons the wait and kills the fresh
// process — the supervisor passes the router's stop channel so a shutdown
// never blocks behind a slow-starting respawn.
func startWorker(bin string, extraArgs []string, id int, logf func(string, ...any), cancel <-chan struct{}) (*workerProc, string, error) {
	args := append([]string{"-addr", "127.0.0.1:0"}, extraArgs...)
	cmd := exec.Command(bin, args...)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, "", err
	}
	if err := cmd.Start(); err != nil {
		return nil, "", err
	}
	p := &workerProc{cmd: cmd, waited: make(chan struct{})}

	addrCh := make(chan string, 1)
	scanDone := make(chan struct{})
	go func() {
		defer close(scanDone)
		sc := bufio.NewScanner(stdout)
		reported := false
		for sc.Scan() {
			if addr, ok := cli.ParseAddrReport(sc.Text()); ok && !reported {
				reported = true
				addrCh <- addr
			}
		}
	}()
	go func() {
		<-scanDone // Wait closes the stdout pipe; only call it after EOF
		err := cmd.Wait()
		// Log before releasing waiters: once waited closes, a test-scoped
		// logf may already be out of scope.
		logf("shard: worker %d (pid %d) exited: %v", id, cmd.Process.Pid, err)
		p.mu.Lock()
		p.waitErr = err
		p.mu.Unlock()
		close(p.waited)
	}()

	select {
	case addr := <-addrCh:
		return p, addr, nil
	case <-p.waited:
		cmd.Process.Kill()
		return nil, "", fmt.Errorf("exited before reporting an address: %v", p.waitError())
	case <-cancel:
		cmd.Process.Kill()
		return nil, "", fmt.Errorf("spawn canceled")
	case <-time.After(spawnReportTimeout):
		cmd.Process.Kill()
		return nil, "", fmt.Errorf("no address report within %v", spawnReportTimeout)
	}
}

func (p *workerProc) waitError() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.waitErr
}

// exited reports whether the process has already been reaped.
func (p *workerProc) exited() bool {
	select {
	case <-p.waited:
		return true
	default:
		return false
	}
}

// drain asks the worker to shut down cleanly (SIGTERM → the daemon stops
// admission and drains its scheduler) and waits for the exit, escalating to
// SIGKILL when ctx expires. A worker that already died (e.g. the failover
// drill SIGKILLed it) drains trivially.
func (p *workerProc) drain(ctx context.Context, logf func(string, ...any)) error {
	if p.exited() {
		return nil
	}
	if err := p.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		// Exited between the check and the signal; the reaper will record it.
		<-p.waited
		return nil
	}
	select {
	case <-p.waited:
	case <-ctx.Done():
		logf("shard: drain deadline passed, killing pid %d", p.cmd.Process.Pid)
		p.cmd.Process.Kill()
		<-p.waited
		return fmt.Errorf("drain timed out, worker killed: %w", ctx.Err())
	}
	if err := p.waitError(); err != nil {
		return fmt.Errorf("worker exit: %w", err)
	}
	return nil
}
