package shard

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// scrapeMetrics GETs and parses the Prometheus exposition at base/metrics.
func scrapeMetrics(t *testing.T, base string) map[string]*obs.MetricFamily {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("/metrics Content-Type %q, want text/plain exposition", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	fams, err := obs.ParsePrometheus(string(raw))
	if err != nil {
		t.Fatalf("router /metrics does not parse: %v\n%s", err, raw)
	}
	return fams
}

// shardSample finds the series of family name whose "shard" label is id.
func shardSample(t *testing.T, fams map[string]*obs.MetricFamily, name, id string) float64 {
	t.Helper()
	f := fams[name]
	if f == nil {
		t.Fatalf("family %s missing", name)
	}
	for _, s := range f.Samples {
		if s.Labels["shard"] == id {
			return s.Value
		}
	}
	t.Fatalf("family %s has no series for shard=%q: %+v", name, id, f.Samples)
	return 0
}

func singleValue(t *testing.T, fams map[string]*obs.MetricFamily, name string) float64 {
	t.Helper()
	f := fams[name]
	if f == nil || len(f.Samples) == 0 {
		t.Fatalf("family %s missing from router /metrics", name)
	}
	return f.Samples[0].Value
}

// TestRouterTracePropagation pins the fleet-edge trace contract: the client's
// trace ID rides X-Hybridnet-Trace to the worker and back, the router's own
// attempt spans go out in X-Hybridnet-Router-Spans, and the winning worker's
// X-Hybridnet-Spans passes through untouched — so one request yields the
// full two-tier breakdown.
func TestRouterTracePropagation(t *testing.T) {
	a := startTestWorker(t)
	_, front := newTestRouter(t, testConfig(t), a)

	req, err := http.NewRequest(http.MethodPost, front.URL+"/classify",
		strings.NewReader(`{"sign":"stop","seed":1}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(obs.TraceHeader, "cli-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if got := resp.Header.Get(obs.TraceHeader); got != "cli-42" {
		t.Errorf("client trace not propagated back: %q", got)
	}
	if got, _ := a.lastTrace.Load().(string); got != "cli-42" {
		t.Errorf("worker received trace %q, want cli-42", got)
	}
	routerSpans, err := obs.ParseSpans(resp.Header.Get(obs.RouterSpansHeader))
	if err != nil {
		t.Fatalf("router spans %q: %v", resp.Header.Get(obs.RouterSpansHeader), err)
	}
	names := map[string]bool{}
	for _, s := range routerSpans {
		names[s.Name] = true
	}
	if !names["read"] || !names["attempt0"] {
		t.Errorf("router spans missing read/attempt0: %q", resp.Header.Get(obs.RouterSpansHeader))
	}
	workerSpans, err := obs.ParseSpans(resp.Header.Get(obs.SpansHeader))
	if err != nil || len(workerSpans) != 2 {
		t.Errorf("worker spans not forwarded: %q (%v)", resp.Header.Get(obs.SpansHeader), err)
	}

	// No client trace: the router mints a valid one at the fleet edge, and
	// that same ID reaches the worker.
	resp, err = http.Post(front.URL+"/classify", "application/json",
		strings.NewReader(`{"sign":"stop","seed":2}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	minted := resp.Header.Get(obs.TraceHeader)
	if !obs.ValidTraceID(minted) {
		t.Errorf("minted trace %q invalid", minted)
	}
	if got, _ := a.lastTrace.Load().(string); got != minted {
		t.Errorf("worker saw trace %q, router minted %q", got, minted)
	}
}

// TestRouterMetricsAndBreakerFlip is the Prometheus view of the failover
// drill: the fleet aggregate and router counters are exposed, per-shard
// series carry a shard label, and killing a worker flips its breaker gauges
// on the next scrape.
func TestRouterMetricsAndBreakerFlip(t *testing.T) {
	a := startTestWorker(t)
	b := startTestWorker(t)
	_, front := newTestRouter(t, testConfig(t), a, b)

	client := &http.Client{Timeout: 5 * time.Second}
	const n = 10
	for i := 0; i < n; i++ {
		if err := classifyOK(client, front.URL); err != nil {
			t.Fatal(err)
		}
	}

	fams := scrapeMetrics(t, front.URL)
	if got := singleValue(t, fams, "hybridnet_router_proxied_total"); got != n {
		t.Errorf("proxied_total = %v, want %d", got, n)
	}
	served := float64(a.classified.Load() + b.classified.Load())
	if got := singleValue(t, fams, "hybridnet_requests_completed_total"); got != served {
		t.Errorf("fleet completed_total = %v, workers served %v", got, served)
	}
	if got := singleValue(t, fams, "hybridnet_router_healthy_shards"); got != 2 {
		t.Errorf("healthy_shards = %v, want 2", got)
	}
	for _, id := range []string{"0", "1"} {
		if got := shardSample(t, fams, "hybridnet_shard_healthy", id); got != 1 {
			t.Errorf("shard %s healthy = %v, want 1", id, got)
		}
		if got := shardSample(t, fams, "hybridnet_shard_breaker_open", id); got != 0 {
			t.Errorf("shard %s breaker_open = %v, want 0", id, got)
		}
	}

	// Kill worker 0 and wait for its breaker to open; the scrape must show
	// the flip.
	a.Stop()
	waitFor(t, "breaker open on shard 0", func() bool {
		rep := routerReport(t, front.URL)
		return !rep.Shards[0].Healthy && rep.Shards[0].BreakerOpens >= 1
	})
	fams = scrapeMetrics(t, front.URL)
	if got := shardSample(t, fams, "hybridnet_shard_breaker_open", "0"); got != 1 {
		t.Errorf("dead shard breaker_open = %v, want 1", got)
	}
	if got := shardSample(t, fams, "hybridnet_shard_breaker_opens_total", "0"); got < 1 {
		t.Errorf("dead shard breaker_opens_total = %v, want >= 1", got)
	}
	if got := shardSample(t, fams, "hybridnet_shard_healthy", "1"); got != 1 {
		t.Errorf("surviving shard healthy = %v, want 1", got)
	}
	if got := singleValue(t, fams, "hybridnet_router_healthy_shards"); got != 1 {
		t.Errorf("healthy_shards after kill = %v, want 1", got)
	}
}

// TestRouterDebugRequestsMerged: the router's /debug/requests merges its own
// flight recorder with every reachable shard's dump — the worker sentinels
// dominate the slowest set while the router's own traces fill the recent
// ring.
func TestRouterDebugRequestsMerged(t *testing.T) {
	a := startTestWorker(t)
	b := startTestWorker(t)
	_, front := newTestRouter(t, testConfig(t), a, b)

	client := &http.Client{Timeout: 5 * time.Second}
	const n = 6
	for i := 0; i < n; i++ {
		if err := classifyOK(client, front.URL); err != nil {
			t.Fatal(err)
		}
	}

	resp, err := http.Get(front.URL + "/debug/requests")
	if err != nil {
		t.Fatal(err)
	}
	var dump obs.RecorderDump
	if err := json.NewDecoder(resp.Body).Decode(&dump); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	// Router recorded n traces; each worker dump contributes its 1 sentinel.
	if want := uint64(n + 2); dump.Total != want {
		t.Errorf("merged total %d, want %d", dump.Total, want)
	}
	if len(dump.Slowest) < 2 ||
		!strings.HasPrefix(dump.Slowest[0].ID, "wk-") || !strings.HasPrefix(dump.Slowest[1].ID, "wk-") {
		t.Errorf("worker sentinels (1h traces) not heading the merged slowest set: %+v", dump.Slowest)
	}
	routerTraces := 0
	for _, r := range dump.Recent {
		if obs.ValidTraceID(r.ID) && !strings.HasPrefix(r.ID, "wk-") {
			routerTraces++
			if len(r.Spans) == 0 || r.Status != http.StatusOK {
				t.Errorf("router trace %s incomplete: status=%d spans=%d", r.ID, r.Status, len(r.Spans))
			}
		}
	}
	if routerTraces == 0 {
		t.Error("merged recent ring has no router-side traces")
	}

	// A dead shard contributes nothing but does not break the merge.
	a.Stop()
	resp, err = http.Get(front.URL + "/debug/requests")
	if err != nil {
		t.Fatal(err)
	}
	var dump2 obs.RecorderDump
	if err := json.NewDecoder(resp.Body).Decode(&dump2); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if want := uint64(n + 1); dump2.Total != want {
		t.Errorf("merged total with one dead shard %d, want %d", dump2.Total, want)
	}
}
