package shard

import (
	"testing"
)

func TestNewPlacerNames(t *testing.T) {
	for _, name := range append(PlacementNames(), "") {
		p, err := NewPlacer(name, PlacerOptions{Seed: 1})
		if err != nil {
			t.Fatalf("NewPlacer(%q): %v", name, err)
		}
		if name != "" && p.Name() != name {
			t.Fatalf("NewPlacer(%q).Name() = %q", name, p.Name())
		}
	}
	if p, err := NewPlacer("", PlacerOptions{}); err != nil || p.Name() != PlacementWeightedP2C {
		t.Fatalf("empty policy: got (%v, %v), want weighted-p2c", p, err)
	}
	if _, err := NewPlacer("bogus", PlacerOptions{}); err == nil {
		t.Fatal("NewPlacer(bogus) did not fail")
	}
}

// pickCounts runs n picks over cands and tallies the winners.
func pickCounts(t *testing.T, p Placer, cands []Candidate, n int) []int {
	t.Helper()
	counts := make([]int, len(cands))
	for k := 0; k < n; k++ {
		i := p.Pick(cands)
		if i < 0 || i >= len(cands) {
			t.Fatalf("Pick returned %d for %d candidates", i, len(cands))
		}
		counts[i]++
	}
	return counts
}

func TestP2CIgnoresCapacitySignals(t *testing.T) {
	p, _ := NewPlacer(PlacementP2C, PlacerOptions{Seed: 1})
	// Same load everywhere: capacity signals must not matter, so picks
	// spread roughly evenly (ties round-robin across all three).
	cands := []Candidate{
		{ID: 0, StaticWeight: 8, Load: 5, Service: 100, AdvertisedWeight: 100},
		{ID: 1, StaticWeight: 1, Load: 5, Service: 900, AdvertisedWeight: 1},
		{ID: 2, StaticWeight: 1, Load: 5, Service: 900, AdvertisedWeight: 1},
	}
	counts := pickCounts(t, p, cands, 900)
	for i, c := range counts {
		if c < 200 {
			t.Fatalf("p2c skewed under equal load: counts=%v (shard %d)", counts, i)
		}
	}
	// Unequal load: the lightest shard must dominate.
	cands[0].Load = 0
	counts = pickCounts(t, p, cands, 900)
	if counts[0] < counts[1] || counts[0] < counts[2] {
		t.Fatalf("p2c did not prefer the lightest shard: %v", counts)
	}
}

func TestWeightedP2CUsesServiceOnlyWhenBothReport(t *testing.T) {
	p, _ := NewPlacer(PlacementWeightedP2C, PlacerOptions{Seed: 1, AdaptiveWeights: true})
	// Shard 0 is 10× slower by service time but unmeasured shard 1 exists:
	// a pair mixing measured and unmeasured compares on load/weight alone.
	mixed := []Candidate{
		{ID: 0, StaticWeight: 1, Load: 1, Service: 1000},
		{ID: 1, StaticWeight: 1, Load: 2, Service: 0},
	}
	counts := pickCounts(t, p, mixed, 200)
	if counts[0] == 0 || counts[1] != 0 {
		t.Fatalf("mixed pair should fall back to load/weight (0 wins): %v", counts)
	}
	// Both measured: the slow shard loses despite equal load.
	both := []Candidate{
		{ID: 0, StaticWeight: 1, Load: 1, Service: 1000},
		{ID: 1, StaticWeight: 1, Load: 1, Service: 10},
	}
	counts = pickCounts(t, p, both, 200)
	if counts[1] == 0 || counts[0] != 0 {
		t.Fatalf("measured pair should prefer the fast shard: %v", counts)
	}
}

func TestMinMaxPrefersAdvertisedCapacity(t *testing.T) {
	p, _ := NewPlacer(PlacementMinMax, PlacerOptions{Seed: 1})
	// Equal load, shard 1 advertises 10× the service rate: it must win
	// every sampled pair.
	cands := []Candidate{
		{ID: 0, StaticWeight: 1, Load: 3, AdvertisedWeight: 10},
		{ID: 1, StaticWeight: 1, Load: 3, AdvertisedWeight: 100},
	}
	counts := pickCounts(t, p, cands, 200)
	if counts[0] != 0 {
		t.Fatalf("minmax ignored the advertised weights: %v", counts)
	}
	// One shard not advertising: the pair falls back to weighted scoring
	// (equal here), so both get picked via the tie cursor.
	cands[0].AdvertisedWeight = 0
	counts = pickCounts(t, p, cands, 200)
	if counts[0] == 0 || counts[1] == 0 {
		t.Fatalf("minmax fallback pair should tie-break round-robin: %v", counts)
	}
}

func TestPlacerDeterministic(t *testing.T) {
	cands := []Candidate{
		{ID: 0, StaticWeight: 1, Load: 1},
		{ID: 1, StaticWeight: 1, Load: 2},
		{ID: 2, StaticWeight: 1, Load: 3},
		{ID: 3, StaticWeight: 1, Load: 1},
	}
	a, _ := NewPlacer(PlacementP2C, PlacerOptions{Seed: 42})
	b, _ := NewPlacer(PlacementP2C, PlacerOptions{Seed: 42})
	for k := 0; k < 1000; k++ {
		if ia, ib := a.Pick(cands), b.Pick(cands); ia != ib {
			t.Fatalf("pick %d diverged under the same seed: %d vs %d", k, ia, ib)
		}
	}
}
