package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/serve"
)

// classWorker is a worker stand-in for the service-class routing tests:
// it records the class header of every /classify, can be switched into
// load-shedding (503 + Retry-After) mode, and reports a configurable
// per-class queue split on /healthz.
type classWorker struct {
	t          *testing.T
	addr       string
	name       string
	classified atomic.Uint64
	lastClass  atomic.Value // string: most recent X-Hybridnet-Class seen
	shed       atomic.Bool
	depth      atomic.Int64
	classDepth [serve.NumClasses]atomic.Int64
	reportCls  atomic.Bool // include class_queue_depths in /healthz
}

func startClassWorker(t *testing.T, name string) *classWorker {
	t.Helper()
	w := &classWorker{t: t, name: name}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	w.addr = ln.Addr().String()
	mux := http.NewServeMux()
	mux.HandleFunc("/classify", func(rw http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		w.lastClass.Store(r.Header.Get(obs.ClassHeader))
		if w.shed.Load() {
			rw.Header().Set("Retry-After", "17")
			rw.Header().Set("Content-Type", "application/json")
			rw.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintf(rw, `{"error":"queue full","shed_by":%q}`, w.name)
			return
		}
		w.classified.Add(1)
		rw.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(rw, `{"class":14,"served_by":%q}`, w.name)
	})
	mux.HandleFunc("/healthz", func(rw http.ResponseWriter, r *http.Request) {
		rw.Header().Set("Content-Type", "application/json")
		if !w.reportCls.Load() {
			fmt.Fprintf(rw, `{"status":"ok","queue_depth":%d,"service_ns":0}`, w.depth.Load())
			return
		}
		fmt.Fprintf(rw, `{"status":"ok","queue_depth":%d,"service_ns":0,"class_queue_depths":{"guaranteed":%d,"fast":%d,"budget":%d}}`,
			w.depth.Load(),
			w.classDepth[serve.ClassGuaranteed].Load(),
			w.classDepth[serve.ClassFast].Load(),
			w.classDepth[serve.ClassBudget].Load())
	})
	mux.HandleFunc("/stats", func(rw http.ResponseWriter, r *http.Request) {
		rw.Header().Set("Content-Type", "application/json")
		json.NewEncoder(rw).Encode(serve.Stats{Shards: 1, Uptime: time.Second})
	})
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	return w
}

func postClass(t *testing.T, front, class string) (int, string, http.Header) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, front+"/classify",
		bytes.NewReader([]byte(`{"sign":"stop","seed":1}`)))
	if err != nil {
		t.Fatal(err)
	}
	if class != "" {
		req.Header.Set(obs.ClassHeader, class)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body), resp.Header
}

// TestRouterClassHeader: the class is resolved once at the fleet edge —
// absent header means -default-class, the resolved class is forwarded to
// the worker in canonical form, and an unknown class is a 400 before any
// shard is touched.
func TestRouterClassHeader(t *testing.T) {
	w := startClassWorker(t, "a")
	cfg := testConfig(t)
	cfg.DefaultClass = serve.ClassFast
	r, err := New([]string{w.addr}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer shutdownRouter(t, r)
	front := startFront(t, r)

	if status, _, _ := postClass(t, front, ""); status != http.StatusOK {
		t.Fatalf("default-class post: status %d", status)
	}
	if got := w.lastClass.Load(); got != "fast" {
		t.Errorf("worker saw class %q for headerless request, want the router default \"fast\"", got)
	}
	if status, _, _ := postClass(t, front, "budget"); status != http.StatusOK {
		t.Fatalf("budget post: status %d", status)
	}
	if got := w.lastClass.Load(); got != "budget" {
		t.Errorf("worker saw class %q, want \"budget\"", got)
	}
	before := w.classified.Load()
	status, body, _ := postClass(t, front, "premium")
	if status != http.StatusBadRequest || !strings.Contains(body, "premium") {
		t.Errorf("invalid class: status %d body %s, want 400 naming the class", status, body)
	}
	if w.classified.Load() != before {
		t.Errorf("invalid-class request reached a shard")
	}
}

// TestRouterBudgetNeverFailsOver: a shedding shard's 503 fails over for
// guaranteed traffic but is surfaced as-is (Retry-After included) for
// budget traffic — the worker already degraded the request once, and a
// second attempt would spend retry capacity the paying tiers rely on.
func TestRouterBudgetNeverFailsOver(t *testing.T) {
	shedding := startClassWorker(t, "shedder")
	shedding.shed.Store(true)
	healthy := startClassWorker(t, "server")
	r, err := New([]string{shedding.addr, healthy.addr}, testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	defer shutdownRouter(t, r)
	front := startFront(t, r)

	// Guaranteed: every request must land, whichever shard is tried first.
	for i := 0; i < 20; i++ {
		if status, body, _ := postClass(t, front, "guaranteed"); status != http.StatusOK {
			t.Fatalf("guaranteed request %d: status %d body %s", i, status, body)
		}
	}
	failoversAfterGuaranteed := r.failovers.Load()
	if failoversAfterGuaranteed == 0 {
		t.Fatalf("no guaranteed request was failed over; the shedding shard was never picked first")
	}

	// Budget: requests that hit the shedding shard must come back 503 with
	// the worker's own body and Retry-After — no second attempt.
	var shed, served int
	for i := 0; i < 20; i++ {
		status, body, hdr := postClass(t, front, "budget")
		switch status {
		case http.StatusOK:
			served++
		case http.StatusServiceUnavailable:
			shed++
			if !strings.Contains(body, "shedder") {
				t.Errorf("budget 503 body %q does not carry the worker's shed marker", body)
			}
			if got := hdr.Get("Retry-After"); got != "17" {
				t.Errorf("budget 503 lost the worker's Retry-After: %q", got)
			}
		default:
			t.Fatalf("budget request %d: status %d body %s", i, status, body)
		}
	}
	if shed == 0 || served == 0 {
		t.Fatalf("budget split shed=%d served=%d; want both behaviours exercised", shed, served)
	}
	if got := r.failovers.Load(); got != failoversAfterGuaranteed {
		t.Errorf("budget phase moved the failover counter %d -> %d; budget must never fail over",
			failoversAfterGuaranteed, got)
	}
}

// TestRouterClassAwarePlacement: placement scores on the class-effective
// backlog (same-or-higher-priority queue depth), so one fleet can look
// different to different tiers: a shard drowning in budget work stays the
// best target for guaranteed traffic while budget traffic steers away from
// it — the opposite of what total queue depth would choose. The fleet
// /healthz and /metrics must expose the per-class split that drives this.
func TestRouterClassAwarePlacement(t *testing.T) {
	// Shard A: huge budget backlog, idle premium queues. Total depth 50.
	a := startClassWorker(t, "a")
	a.depth.Store(50)
	a.classDepth[serve.ClassBudget].Store(50)
	a.reportCls.Store(true)
	// Shard B: modest guaranteed+fast backlog, no budget. Total depth 8.
	b := startClassWorker(t, "b")
	b.depth.Store(8)
	b.classDepth[serve.ClassGuaranteed].Store(4)
	b.classDepth[serve.ClassFast].Store(4)
	b.reportCls.Store(true)
	r, err := New([]string{a.addr, b.addr}, testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	defer shutdownRouter(t, r)
	front := startFront(t, r)

	// The router's own /healthz aggregates the split once probes land.
	waitFor(t, "fleet class_queue_depths", func() bool {
		resp, err := http.Get(front + "/healthz")
		if err != nil {
			return false
		}
		defer resp.Body.Close()
		var body struct {
			ClassQueueDepths map[string]int64 `json:"class_queue_depths"`
		}
		if json.NewDecoder(resp.Body).Decode(&body) != nil {
			return false
		}
		d := body.ClassQueueDepths
		return d["guaranteed"] == 4 && d["fast"] == 4 && d["budget"] == 50
	})

	// Guaranteed sees A at depth 0 vs B at 4 → all to A, despite A's far
	// larger total backlog.
	for i := 0; i < 10; i++ {
		if status, _, _ := postClass(t, front, "guaranteed"); status != http.StatusOK {
			t.Fatalf("guaranteed request %d failed", i)
		}
	}
	if got := a.classified.Load(); got != 10 {
		t.Errorf("guaranteed placement: shard a served %d of 10 (b: %d); class-effective load should send all to a",
			got, b.classified.Load())
	}
	// Budget sees A at 50 vs B at 8 → all to B.
	aBefore, bBefore := a.classified.Load(), b.classified.Load()
	for i := 0; i < 10; i++ {
		if status, _, _ := postClass(t, front, "budget"); status != http.StatusOK {
			t.Fatalf("budget request %d failed", i)
		}
	}
	if got := b.classified.Load() - bBefore; got != 10 {
		t.Errorf("budget placement: shard b served %d of 10 (a served %d); budget must steer off the budget-drowned shard",
			got, a.classified.Load()-aBefore)
	}

	// The per-shard split is exported for dashboards.
	resp, err := http.Get(front + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	text, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	fams, err := obs.ParsePrometheus(string(text))
	if err != nil {
		t.Fatalf("router /metrics does not parse: %v", err)
	}
	f := fams["hybridnet_shard_class_queue_depth"]
	if f == nil || len(f.Samples) != 2*serve.NumClasses {
		t.Fatalf("hybridnet_shard_class_queue_depth: want %d samples, have %+v", 2*serve.NumClasses, f)
	}
	var budgetSum float64
	for _, s := range f.Samples {
		if s.Labels["class"] == "budget" {
			budgetSum += s.Value
		}
	}
	if budgetSum != 50 {
		t.Errorf("per-shard budget depth sums to %v, want 50", budgetSum)
	}
}

func startFront(t *testing.T, r *Router) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: r.Mux()}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	waitReady(t, r)
	return "http://" + ln.Addr().String()
}

func waitReady(t *testing.T, r *Router) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := r.WaitReady(ctx); err != nil {
		t.Fatal(err)
	}
}

func shutdownRouter(t *testing.T, r *Router) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := r.Shutdown(ctx); err != nil {
		t.Errorf("router shutdown: %v", err)
	}
}
