package shard

import "time"

// healthyRunFactor × RestartBackoff is how long a respawned worker must
// stay up for the supervisor to consider the restart successful and reset
// the consecutive-restart budget. Shorter runs are crash loops: each one
// consumes an attempt, so a worker that dies RestartMax times in quick
// succession is marked permanently down instead of flapping forever.
const healthyRunFactor = 10

// superviseSpawned starts one supervisor goroutine per spawned shard.
// Called once by Spawn, after the router is constructed; attached shards
// (no process) are not supervised. RestartMax < 0 disables supervision —
// a dead worker then stays dead, as before the supervisor existed.
func (r *Router) superviseSpawned() {
	if r.cfg.RestartMax < 0 {
		return
	}
	for _, s := range r.shards {
		if s.currentProc() == nil {
			continue
		}
		r.superWG.Add(1)
		go r.supervise(s)
	}
}

// supervise watches one spawned worker and respawns it when it exits. The
// loop runs until the router shuts down or the shard exhausts its restart
// budget. Each death → backoff → respawn cycle consumes one attempt from a
// budget of RestartMax; a run longer than healthyRunFactor×RestartBackoff
// refills it. The respawned worker rejoins placement through the circuit
// breaker: the supervisor only installs the new process and URL, and the
// next successful health probe re-admits the shard.
func (r *Router) supervise(s *shardState) {
	defer r.superWG.Done()
	proc := s.currentProc()
	started := time.Now()
	attempts := 0
	for {
		select {
		case <-proc.waited:
		case <-r.stop:
			return
		}
		// stop wins ties: an exit caused by the shutdown drain is not a
		// crash, and respawning during drain would orphan a worker.
		select {
		case <-r.stop:
			return
		default:
		}
		if time.Since(started) >= healthyRunFactor*r.cfg.RestartBackoff {
			attempts = 0
		}
		r.cfg.Logf("shard: worker %d died (%v); supervisor taking over", s.id, proc.waitError())
		var ok bool
		proc, ok = r.respawn(s, &attempts)
		if !ok {
			return
		}
		started = time.Now()
	}
}

// respawn retries startWorker under exponential backoff until a fresh
// worker reports its address or the restart budget runs out — in which
// case the shard is marked permanently down and (nil, false) is returned.
// The router keeps serving through the remaining shards either way.
func (r *Router) respawn(s *shardState, attempts *int) (*workerProc, bool) {
	for {
		if *attempts >= r.cfg.RestartMax {
			s.markDown()
			r.cfg.Logf("shard: worker %d permanently down after %d consecutive restart attempts",
				s.id, *attempts)
			return nil, false
		}
		backoff := r.cfg.RestartBackoff << *attempts
		if backoff > r.cfg.RestartBackoffMax || backoff <= 0 {
			backoff = r.cfg.RestartBackoffMax
		}
		*attempts++
		r.cfg.Logf("shard: respawning worker %d in %v (attempt %d/%d)",
			s.id, backoff, *attempts, r.cfg.RestartMax)
		select {
		case <-time.After(backoff):
		case <-r.stop:
			return nil, false
		}
		proc, addr, err := startWorker(r.bin, r.binArgs, s.id, r.cfg.Logf, r.stop)
		if err != nil {
			select {
			case <-r.stop: // shutdown canceled the spawn; not a failed attempt
				return nil, false
			default:
			}
			r.cfg.Logf("shard: respawn of worker %d failed: %v", s.id, err)
			continue
		}
		u, err := normalizeURL(addr)
		if err != nil {
			proc.cmd.Process.Kill()
			r.cfg.Logf("shard: respawned worker %d reported bad address %q: %v", s.id, addr, err)
			continue
		}
		s.adopt(proc, u)
		s.restarts.Add(1)
		r.cfg.Logf("shard: worker %d respawned at %s (pid %d)", s.id, u, proc.cmd.Process.Pid)
		return proc, true
	}
}
