package shard

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Candidate is one routable shard's placement signals, as a Placer sees
// them: a snapshot assembled by the caller (the Router from its probe
// state, the simulator from its scripted fleet), so policies are pure
// decision logic with no knowledge of HTTP, probing, or virtual clocks.
type Candidate struct {
	// ID is the shard's stable identifier, for diagnostics only — Pick
	// returns an index into the candidate slice, not an ID.
	ID int
	// StaticWeight is the configured capacity weight (> 0; 1 = neutral).
	StaticWeight float64
	// Load is the class-effective backlog: requests the caller has in
	// flight to the shard plus the queue depth a request of the class
	// being placed would wait behind.
	Load int64
	// Service is the per-image service time (ns) the shard last reported;
	// 0 means no estimate yet.
	Service int64
	// AdvertisedWeight is the shard's self-computed min-max weight (an
	// offered service rate, see serve.WeightTracker); 0 means the shard is
	// not advertising.
	AdvertisedWeight float64
}

// Placer chooses one shard among the routable candidates. Implementations
// must be safe for concurrent use; Pick is called with len(cands) ≥ 1 and
// returns an index into cands.
//
// Placer is the seam between placement policy and everything else: the
// Router feeds it live probe state, internal/sim feeds it scripted fleets
// on a virtual clock, so a policy benchmarked in simulation is bit-for-bit
// the code that routes production traffic.
type Placer interface {
	// Name reports the policy name this placer was built from.
	Name() string
	// Pick returns the index of the chosen candidate.
	Pick(cands []Candidate) int
}

// Placement policy names accepted by NewPlacer and Config.Placement.
const (
	// PlacementP2C is unweighted power-of-two-choices: lowest
	// class-effective load wins, ignoring static weights and service
	// times. The PR-3 baseline.
	PlacementP2C = "p2c"
	// PlacementWeightedP2C scores (load+1)/staticWeight, multiplied by the
	// probed service time when PlacerOptions.AdaptiveWeights is set and
	// both candidates report one. The PR-4 heuristic and the default.
	PlacementWeightedP2C = "weighted-p2c"
	// PlacementMinMax scores (load+1)/advertisedWeight when both
	// candidates advertise a min-max weight, falling back to weighted-p2c
	// scoring otherwise (startup, old workers). Decentralized online
	// min-max: the weight itself adapts on the worker, the router just
	// consumes it.
	PlacementMinMax = "minmax"
)

// PlacementNames lists the accepted policy names, sorted.
func PlacementNames() []string {
	names := []string{PlacementP2C, PlacementWeightedP2C, PlacementMinMax}
	sort.Strings(names)
	return names
}

// PlacerOptions parameterise NewPlacer.
type PlacerOptions struct {
	// Seed feeds the two-choices sampling. Same seed, same candidate
	// sequence → same decisions: the simulator's determinism rests here.
	Seed int64
	// AdaptiveWeights enables the service-time term in weighted-p2c
	// scoring (and in minmax's fallback), mirroring Config.AdaptiveWeights.
	AdaptiveWeights bool
}

// NewPlacer builds the named placement policy. An empty name selects
// weighted-p2c (the historical default).
func NewPlacer(name string, opts PlacerOptions) (Placer, error) {
	switch name {
	case PlacementP2C:
		return newP2CPlacer(name, opts.Seed, scoreP2C), nil
	case "", PlacementWeightedP2C:
		return newP2CPlacer(PlacementWeightedP2C, opts.Seed, scoreWeighted(opts.AdaptiveWeights)), nil
	case PlacementMinMax:
		return newP2CPlacer(name, opts.Seed, scoreMinMax(opts.AdaptiveWeights)), nil
	default:
		return nil, fmt.Errorf("shard: unknown placement policy %q (have %s)",
			name, strings.Join(PlacementNames(), ", "))
	}
}

// scoreFunc scores a sampled pair. Lower wins; equal falls to the
// round-robin cursor. Scoring is pairwise (not per-candidate) because the
// unit-mixing rules are pairwise: a measured shard and an unmeasured one
// must be compared in common units, whatever each knows individually.
type scoreFunc func(a, b Candidate) (sa, sb float64)

// scoreP2C ignores every capacity signal: raw class-effective load.
func scoreP2C(a, b Candidate) (float64, float64) {
	return float64(a.Load + 1), float64(b.Load + 1)
}

// scoreWeighted is the PR-4 heuristic: load per static capacity, scaled by
// measured service time only when adaptive weighting is on and both
// candidates have an estimate (comparing a measured shard against an
// unmeasured one would mix units).
func scoreWeighted(adaptive bool) scoreFunc {
	return func(a, b Candidate) (float64, float64) {
		sa := float64(a.Load+1) / a.StaticWeight
		sb := float64(b.Load+1) / b.StaticWeight
		if adaptive && a.Service > 0 && b.Service > 0 {
			sa *= float64(a.Service)
			sb *= float64(b.Service)
		}
		return sa, sb
	}
}

// scoreMinMax consumes the worker-advertised min-max weight: load per
// offered service rate is expected completion time, so the pairwise winner
// is the shard that would finish the request sooner by its own account —
// and the advertisements adapt to equalise exactly that across the fleet.
// The same pairwise unit rule applies: both candidates must advertise, or
// the pair falls back to weighted scoring.
func scoreMinMax(adaptive bool) scoreFunc {
	weighted := scoreWeighted(adaptive)
	return func(a, b Candidate) (float64, float64) {
		if a.AdvertisedWeight > 0 && b.AdvertisedWeight > 0 {
			return float64(a.Load+1) / a.AdvertisedWeight, float64(b.Load+1) / b.AdvertisedWeight
		}
		return weighted(a, b)
	}
}

// p2cPlacer is the one sampling engine behind every policy: sample two
// distinct candidates, score the pair, lower score wins, ties fall to a
// shared round-robin cursor over the whole candidate slice. Policies
// differ only in the scoreFunc.
type p2cPlacer struct {
	name  string
	score scoreFunc

	mu  sync.Mutex
	rng *rand.Rand

	rr atomic.Uint64 // tie-break cursor
}

func newP2CPlacer(name string, seed int64, score scoreFunc) *p2cPlacer {
	return &p2cPlacer{name: name, score: score, rng: rand.New(rand.NewSource(seed))}
}

func (p *p2cPlacer) Name() string { return p.name }

func (p *p2cPlacer) Pick(cands []Candidate) int {
	if len(cands) <= 1 {
		return 0
	}
	p.mu.Lock()
	i := p.rng.Intn(len(cands))
	j := p.rng.Intn(len(cands) - 1)
	p.mu.Unlock()
	if j >= i {
		j++
	}
	sa, sb := p.score(cands[i], cands[j])
	switch {
	case sa < sb:
		return i
	case sb < sa:
		return j
	default:
		return int(p.rr.Add(1) % uint64(len(cands)))
	}
}
