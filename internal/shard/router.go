// Package shard is the multi-process serving plane: a Router spreads
// POST /classify traffic across N hybridnetd worker shards, each running
// its own model replica and serve.Scheduler, behind the same HTTP API a
// single daemon exposes.
//
// Placement is power-of-two-choices on live shard load (router-tracked
// in-flight requests plus the queue depth each shard last reported on
// /healthz), falling back to round-robin when the loads tie or only one
// shard is routable. Every shard is health-checked on an interval; a shard
// that fails BreakerThreshold consecutive probes or proxied requests is
// circuit-broken — taken out of placement — and re-admitted as soon as a
// probe succeeds again. A request that hits a dead or overloaded shard
// (connection error or 503) fails over to one other shard before the error
// reaches the client, so losing one worker of N is invisible to clients.
//
// GET /stats serves the fleet view: every reachable shard's serve.Stats
// merged with serve.Merge plus per-shard detail, so the aggregate counters
// equal the sum of the per-shard counters.
package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/serve"
)

// Config parameterises a Router.
type Config struct {
	// HealthInterval is the /healthz probe period. Default 250ms.
	HealthInterval time.Duration
	// BreakerThreshold is the number of consecutive failures (probes or
	// proxied requests) that opens a shard's circuit breaker. Default 3.
	BreakerThreshold int
	// RequestTimeout bounds one proxied request (per attempt). Default 30s —
	// comfortably above a worker's own per-request deadline, so the worker's
	// 504 wins over the router's.
	RequestTimeout time.Duration
	// Client overrides the HTTP client used for proxying and probing.
	Client *http.Client
	// Logf sinks router events (breaker transitions, failovers, worker
	// exits). Default log.Printf; set to a no-op in tests.
	Logf func(format string, args ...any)
	// Seed feeds the power-of-two-choices randomness. Default 1.
	Seed int64
}

// statusClientClosedRequest is the nginx-convention 499 for "client closed
// the connection before the server answered" — same convention hybridnetd
// uses, so client churn stays out of 502/503 accounting at both tiers.
const statusClientClosedRequest = 499

func (c Config) withDefaults() Config {
	if c.HealthInterval == 0 {
		c.HealthInterval = 250 * time.Millisecond
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 3
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.Logf == nil {
		c.Logf = log.Printf
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// shardState is one worker replica as the router sees it.
type shardState struct {
	id  int
	url string // base URL, no trailing slash

	proc *workerProc // non-nil only for spawned workers

	inflight atomic.Int64 // router-side requests currently proxied to this shard
	depth    atomic.Int64 // queue depth last reported by /healthz

	mu          sync.Mutex
	open        bool // circuit open: excluded from placement
	consecFails int
	opens       uint64 // breaker open transitions
	closes      uint64 // breaker close (re-admission) transitions
}

// load is the placement signal: what the router has in flight to the shard
// plus the scheduler backlog the shard last admitted to.
func (s *shardState) load() int64 { return s.inflight.Load() + s.depth.Load() }

func (s *shardState) isOpen() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.open
}

// recordFailure counts one probe/request failure toward the breaker and
// reports whether this failure opened it.
func (s *shardState) recordFailure(threshold int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.consecFails++
	if !s.open && s.consecFails >= threshold {
		s.open = true
		s.opens++
		return true
	}
	return false
}

// recordSuccess resets the failure streak and reports whether it re-admitted
// a circuit-broken shard.
func (s *shardState) recordSuccess() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.consecFails = 0
	if s.open {
		s.open = false
		s.closes++
		return true
	}
	return false
}

func (s *shardState) breakerCounts() (opens, closes uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.opens, s.closes
}

// Router load-balances the hybridnetd HTTP API across worker shards.
// Build with New (attach to running workers) or Spawn (supervise worker
// processes), mount Mux on an http.Server, stop with Shutdown.
type Router struct {
	cfg    Config
	client *http.Client
	shards []*shardState

	rr    atomic.Uint64 // round-robin cursor
	rngMu sync.Mutex
	rng   *rand.Rand

	proxied   atomic.Uint64 // client requests proxied (any outcome)
	failovers atomic.Uint64 // requests saved by the second attempt
	errored   atomic.Uint64 // requests that surfaced a transport error

	stopOnce sync.Once
	stop     chan struct{} // closes to stop the health loop
	probed   chan struct{} // closed after the first full probe round
	done     chan struct{} // health loop exited
}

// New attaches a Router to already-running workers at the given base URLs
// (e.g. "http://127.0.0.1:8081"). A scheme-less URL gets "http://".
func New(urls []string, cfg Config) (*Router, error) {
	if len(urls) == 0 {
		return nil, fmt.Errorf("shard: router needs at least one worker URL")
	}
	shards := make([]*shardState, len(urls))
	for i, u := range urls {
		nu, err := normalizeURL(u)
		if err != nil {
			return nil, fmt.Errorf("shard: worker %d: %w", i, err)
		}
		shards[i] = &shardState{id: i, url: nu}
	}
	return newRouter(shards, cfg), nil
}

func newRouter(shards []*shardState, cfg Config) *Router {
	cfg = cfg.withDefaults()
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: cfg.RequestTimeout}
	}
	r := &Router{
		cfg:    cfg,
		client: client,
		shards: shards,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		stop:   make(chan struct{}),
		probed: make(chan struct{}),
		done:   make(chan struct{}),
	}
	go r.healthLoop()
	return r
}

func normalizeURL(u string) (string, error) {
	u = strings.TrimRight(strings.TrimSpace(u), "/")
	if u == "" {
		return "", fmt.Errorf("empty URL")
	}
	if !strings.Contains(u, "://") {
		u = "http://" + u
	}
	parsed, err := url.Parse(u)
	if err != nil {
		return "", err
	}
	if parsed.Host == "" {
		return "", fmt.Errorf("URL %q has no host", u)
	}
	return u, nil
}

// Shards returns the number of worker shards (healthy or not).
func (r *Router) Shards() int { return len(r.shards) }

// WaitReady blocks until the first full health-probe round has completed
// (whatever its outcomes — an unreachable fleet still "readies" so the
// caller can start serving 502s rather than hang), or until ctx expires.
// After it returns, placement decisions rest on probed load data rather
// than zero-value guesses. Useful right after Spawn.
func (r *Router) WaitReady(ctx context.Context) error {
	select {
	case <-r.probed:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("shard: waiting for first probe round: %w", ctx.Err())
	}
}

// pick chooses a target shard, excluding `not` (the shard a failed first
// attempt used). Power-of-two-choices on load between two distinct random
// routable shards; equal loads fall back to the round-robin cursor. With
// every breaker open the router still picks (round-robin over what is
// left): a guess at a possibly-recovered shard beats a guaranteed error.
func (r *Router) pick(not *shardState) *shardState {
	routable := make([]*shardState, 0, len(r.shards))
	for _, s := range r.shards {
		if s != not && !s.isOpen() {
			routable = append(routable, s)
		}
	}
	if len(routable) == 0 {
		for _, s := range r.shards {
			if s != not {
				routable = append(routable, s)
			}
		}
	}
	switch len(routable) {
	case 0:
		return not // sole shard: retrying it is the only option
	case 1:
		return routable[0]
	}
	r.rngMu.Lock()
	i := r.rng.Intn(len(routable))
	j := r.rng.Intn(len(routable) - 1)
	r.rngMu.Unlock()
	if j >= i {
		j++
	}
	a, b := routable[i], routable[j]
	la, lb := a.load(), b.load()
	switch {
	case la < lb:
		return a
	case lb < la:
		return b
	default:
		return routable[r.rr.Add(1)%uint64(len(routable))]
	}
}

// Mux returns the router's HTTP API: the same three endpoints a single
// hybridnetd exposes, served by the fleet.
func (r *Router) Mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/classify", r.handleClassify)
	mux.HandleFunc("/healthz", r.handleHealthz)
	mux.HandleFunc("/stats", r.handleStats)
	return mux
}

// handleClassify proxies one classification to a picked shard, failing over
// to one other shard on a connection error or 503 before surfacing anything
// to the client. The worker's response is buffered before a byte reaches
// the client, so a mid-response worker death is retryable too.
func (r *Router) handleClassify(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, map[string]string{"error": "POST only"})
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, req.Body, 16<<20))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": fmt.Sprintf("read body: %v", err)})
		return
	}
	r.proxied.Add(1)
	first := r.pick(nil)
	status, hdr, respBody, err := r.forward(req.Context(), first, body)
	if err == nil && status != http.StatusServiceUnavailable {
		copyResponse(w, status, hdr, respBody)
		return
	}
	// First attempt lost to a dead or shedding shard: one failover — unless
	// the client itself aborted, in which case nobody is waiting for it.
	if req.Context().Err() == nil {
		if second := r.pick(first); second != first {
			s2, h2, b2, err2 := r.forward(req.Context(), second, body)
			if err2 == nil {
				if s2 < 500 {
					// Only a served response counts as "saved by failover";
					// a second 503 under fleet-wide shedding does not.
					r.failovers.Add(1)
				}
				copyResponse(w, s2, h2, b2)
				return
			}
		}
	}
	if err != nil {
		if req.Context().Err() != nil {
			// The client aborted; nobody reads this response and the shard
			// did not fail. Keep client churn out of the error stats.
			writeJSON(w, statusClientClosedRequest, map[string]string{
				"error": "client closed request",
			})
			return
		}
		r.errored.Add(1)
		writeJSON(w, http.StatusBadGateway, map[string]string{
			"error": fmt.Sprintf("shard %d unreachable: %v", first.id, err),
		})
		return
	}
	copyResponse(w, status, hdr, respBody) // surface the original 503
}

// forward issues one attempt against one shard and does the breaker
// bookkeeping: transport errors count toward opening, any response counts
// as shard liveness. A 503 is a live shard shedding load — failover-worthy
// but not breaker-worthy. An abort caused by the client (parent context
// done) is no evidence against the shard, so it never touches the breaker:
// otherwise a few impatient clients could circuit-break a healthy fleet.
func (r *Router) forward(parent context.Context, s *shardState, body []byte) (int, http.Header, []byte, error) {
	s.inflight.Add(1)
	defer s.inflight.Add(-1)
	ctx, cancel := context.WithTimeout(parent, r.cfg.RequestTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, s.url+"/classify", bytes.NewReader(body))
	if err != nil {
		return 0, nil, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := r.client.Do(req)
	if err != nil {
		if parent.Err() == nil {
			if opened := s.recordFailure(r.cfg.BreakerThreshold); opened {
				r.cfg.Logf("shard: circuit OPEN on shard %d (%s): %v", s.id, s.url, err)
			}
		}
		return 0, nil, nil, err
	}
	defer resp.Body.Close()
	respBody, err := io.ReadAll(resp.Body)
	if err != nil {
		if parent.Err() == nil {
			if opened := s.recordFailure(r.cfg.BreakerThreshold); opened {
				r.cfg.Logf("shard: circuit OPEN on shard %d (%s): %v", s.id, s.url, err)
			}
		}
		return 0, nil, nil, err
	}
	if readmitted := s.recordSuccess(); readmitted {
		r.cfg.Logf("shard: circuit CLOSED on shard %d (%s): request succeeded", s.id, s.url)
	}
	return resp.StatusCode, resp.Header, respBody, nil
}

func copyResponse(w http.ResponseWriter, status int, hdr http.Header, body []byte) {
	for _, k := range []string{"Content-Type", "Retry-After"} {
		if v := hdr.Get(k); v != "" {
			w.Header().Set(k, v)
		}
	}
	w.WriteHeader(status)
	w.Write(body)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// healthLoop probes every shard's /healthz each interval (in parallel, so a
// hung shard cannot delay the others), updating the load signal and the
// breaker: probe failures open it, one probe success re-admits the shard.
func (r *Router) healthLoop() {
	defer close(r.done)
	ticker := time.NewTicker(r.cfg.HealthInterval)
	defer ticker.Stop()
	first := true
	for {
		var wg sync.WaitGroup
		for _, s := range r.shards {
			wg.Add(1)
			go func(s *shardState) {
				defer wg.Done()
				r.probe(s)
			}(s)
		}
		wg.Wait()
		if first {
			first = false
			close(r.probed)
		}
		select {
		case <-r.stop:
			return
		case <-ticker.C:
		}
	}
}

func (r *Router) probe(s *shardState) {
	timeout := r.cfg.HealthInterval
	if timeout < 100*time.Millisecond {
		timeout = 100 * time.Millisecond
	}
	if timeout > 2*time.Second {
		timeout = 2 * time.Second
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, s.url+"/healthz", nil)
	if err != nil {
		return
	}
	resp, err := r.client.Do(req)
	if err == nil {
		var health struct {
			QueueDepth int64 `json:"queue_depth"`
		}
		decodeErr := json.NewDecoder(resp.Body).Decode(&health)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if decodeErr == nil && resp.StatusCode == http.StatusOK {
			s.depth.Store(health.QueueDepth)
			if readmitted := s.recordSuccess(); readmitted {
				r.cfg.Logf("shard: circuit CLOSED on shard %d (%s): probe succeeded", s.id, s.url)
			}
			return
		}
		err = fmt.Errorf("healthz status %d (decode: %v)", resp.StatusCode, decodeErr)
	}
	if opened := s.recordFailure(r.cfg.BreakerThreshold); opened {
		r.cfg.Logf("shard: circuit OPEN on shard %d (%s): %v", s.id, s.url, err)
	}
}

// ShardStatus is one shard's entry in the /stats report.
type ShardStatus struct {
	ID            int          `json:"id"`
	URL           string       `json:"url"`
	Healthy       bool         `json:"healthy"` // breaker closed
	Inflight      int64        `json:"inflight"`
	QueueDepth    int64        `json:"queue_depth"` // last /healthz report
	BreakerOpens  uint64       `json:"breaker_opens"`
	BreakerCloses uint64       `json:"breaker_closes"`
	Stats         *serve.Stats `json:"stats,omitempty"`
	Error         string       `json:"error,omitempty"` // why Stats is missing
}

// StatsReport is the router's GET /stats body: the serve.Merge aggregate of
// every reachable shard plus per-shard detail and router-level counters.
type StatsReport struct {
	Aggregate serve.Stats   `json:"aggregate"`
	Shards    []ShardStatus `json:"shards"`
	Proxied   uint64        `json:"proxied"`
	Failovers uint64        `json:"failovers"`
	Errors    uint64        `json:"errors"`
}

// Report fetches every shard's /stats (in parallel) and merges them.
func (r *Router) Report(ctx context.Context) StatsReport {
	statuses := make([]ShardStatus, len(r.shards))
	var wg sync.WaitGroup
	for i, s := range r.shards {
		wg.Add(1)
		go func(i int, s *shardState) {
			defer wg.Done()
			st := ShardStatus{
				ID: s.id, URL: s.url, Healthy: !s.isOpen(),
				Inflight: s.inflight.Load(), QueueDepth: s.depth.Load(),
			}
			st.BreakerOpens, st.BreakerCloses = s.breakerCounts()
			stats, err := r.fetchStats(ctx, s)
			if err != nil {
				st.Error = err.Error()
			} else {
				st.Stats = stats
			}
			statuses[i] = st
		}(i, s)
	}
	wg.Wait()
	var per []serve.Stats
	for _, st := range statuses {
		if st.Stats != nil {
			per = append(per, *st.Stats)
		}
	}
	return StatsReport{
		Aggregate: serve.Merge(per...),
		Shards:    statuses,
		Proxied:   r.proxied.Load(),
		Failovers: r.failovers.Load(),
		Errors:    r.errored.Load(),
	}
}

func (r *Router) fetchStats(ctx context.Context, s *shardState) (*serve.Stats, error) {
	ctx, cancel := context.WithTimeout(ctx, 2*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, s.url+"/stats", nil)
	if err != nil {
		return nil, err
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("stats status %d", resp.StatusCode)
	}
	var st serve.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}

func (r *Router) handleStats(w http.ResponseWriter, req *http.Request) {
	writeJSON(w, http.StatusOK, r.Report(req.Context()))
}

func (r *Router) handleHealthz(w http.ResponseWriter, req *http.Request) {
	healthy := 0
	for _, s := range r.shards {
		if !s.isOpen() {
			healthy++
		}
	}
	status := http.StatusOK
	body := map[string]any{
		"status": "ok", "shards": len(r.shards), "healthy": healthy,
	}
	if healthy == 0 {
		status = http.StatusServiceUnavailable
		body["status"] = "no healthy shards"
	}
	writeJSON(w, status, body)
}

// Shutdown stops the health loop and drains the fleet: spawned workers get
// SIGTERM (each drains its own scheduler before exiting) and are awaited
// until ctx expires, then killed. Attached workers are left running — the
// router does not own them. Idempotent.
func (r *Router) Shutdown(ctx context.Context) error {
	r.stopOnce.Do(func() { close(r.stop) })
	select {
	case <-r.done:
	case <-ctx.Done():
		return fmt.Errorf("shard: shutdown: %w", ctx.Err())
	}
	var errs []error
	for _, s := range r.shards {
		if s.proc == nil {
			continue
		}
		if err := s.proc.drain(ctx, r.cfg.Logf); err != nil {
			errs = append(errs, fmt.Errorf("shard %d: %w", s.id, err))
		}
	}
	return errors.Join(errs...)
}
