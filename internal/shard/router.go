// Package shard is the multi-process serving plane: a Router spreads
// POST /classify traffic across N hybridnetd worker shards, each running
// its own model replica and serve.Scheduler, behind the same HTTP API a
// single daemon exposes.
//
// # Placement
//
// Placement is power-of-two-choices behind a pluggable policy (the Placer
// interface, selected by Config.Placement): two distinct routable shards
// are sampled and the one with the lower score wins. A shard's load is
// what the router has in flight to it plus the queue depth it last
// reported on /healthz. The default weighted-p2c policy scores load per
// static capacity weight (Config.Weights), optionally scaled by the
// rolling per-image service time each worker exports
// (Config.AdaptiveWeights), so on heterogeneous hardware the router
// equalises expected completion time rather than raw queue depth. The
// minmax policy goes further: each worker adapts its own advertised
// weight online from local pressure (serve.WeightTracker) and the router
// scores load per advertised service rate — decentralized min-max
// placement with zero added coordination. Equal scores fall back to the
// round-robin cursor.
//
// Placement is service-class aware: workers report per-class queue depths
// on /healthz and a request's load signal counts only the backlog its
// class actually waits behind (same-or-higher priority), so guaranteed
// traffic routes around budget pile-ups. The class arrives on the
// X-Hybridnet-Class header (absent = Config.DefaultClass) and is forwarded
// to the worker in canonical form.
//
// # Failure handling
//
// Every shard is health-checked on an interval; a shard that fails
// BreakerThreshold consecutive probes or proxied requests is circuit-broken
// — taken out of placement — and re-admitted as soon as a probe succeeds
// again. A request that hits a dead or overloaded shard (connection error
// or 503) fails over to one other shard before the error reaches the
// client, so losing one worker of N is invisible to clients. Budget-class
// requests are the exception: they never fail over — the worker already
// degrades them instead of shedding, so a budget 503 means fleet-wide
// saturation and the retry capacity is reserved for guaranteed and fast.
//
// Spawned workers are additionally supervised: when one exits, the router
// respawns it with exponential backoff (RestartBackoff, doubling, capped at
// RestartBackoffMax), re-learns its kernel-assigned port from the stdout
// report, and lets the next successful health probe re-admit it through the
// breaker. RestartMax consecutive failed or short-lived restarts mark the
// shard permanently down: it leaves placement for good but stays in /stats
// so dashboards see fleet size. Attached (remote) workers have no process
// to watch; Config.OnShardDown fires after an outage outlasts DownAfter and
// ReplaceShard swaps in a replacement URL.
//
// # Stats
//
// GET /stats serves the fleet view: every shard's serve.Stats merged with
// serve.Merge plus per-shard detail. Shards that report nothing merge as
// zero-valued stats with empty histograms, so the aggregate's shard count
// is the fleet size, and fleet latency quantiles come from summed
// log-bucketed histograms — exact-to-bucket, not count-weighted means.
package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"math"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/logx"
	"repro/internal/serve"
)

// Config parameterises a Router.
type Config struct {
	// HealthInterval is the /healthz probe period. Default 250ms.
	HealthInterval time.Duration
	// BreakerThreshold is the number of consecutive failures (probes or
	// proxied requests) that opens a shard's circuit breaker. Default 3.
	BreakerThreshold int
	// RequestTimeout bounds one proxied request (per attempt). Default 30s —
	// comfortably above a worker's own per-request deadline, so the worker's
	// 504 wins over the router's.
	RequestTimeout time.Duration
	// Weights are static per-shard capacity weights for placement: a shard
	// with weight 2 is expected to absorb twice the load of a weight-1
	// shard. Nil means all 1; otherwise the length must equal the shard
	// count and every weight must be > 0.
	Weights []float64
	// AdaptiveWeights scales placement by each worker's rolling per-image
	// service-time estimate (the service_ns it reports on /healthz), so a
	// shard on slower hardware is offered proportionally less work even
	// with equal static weights. Shards that have not reported an estimate
	// yet are compared on load/weight alone.
	AdaptiveWeights bool
	// Placement selects the placement policy: "p2c", "weighted-p2c"
	// (default) or "minmax" — see the Placement constants and Placer. The
	// empty string means weighted-p2c, which with nil Weights and
	// AdaptiveWeights off behaves exactly like plain p2c.
	Placement string
	// RestartMax bounds consecutive restart attempts for a spawned worker
	// before its shard is marked permanently down. A run longer than
	// 10×RestartBackoff resets the budget. 0 selects the default (5);
	// negative disables respawn entirely, so "mark down on first death" is
	// not expressible — use RestartMax: 1 for the closest behaviour.
	RestartMax int
	// RestartBackoff is the delay before the first respawn attempt; it
	// doubles per consecutive attempt up to RestartBackoffMax.
	// Default 250ms.
	RestartBackoff time.Duration
	// RestartBackoffMax caps the exponential respawn backoff. Default 5s.
	RestartBackoffMax time.Duration
	// DownAfter is how long an attached shard's breaker must stay open
	// before OnShardDown fires (once per outage). 0 disables the callback.
	// Spawned shards are respawned instead and never trigger it.
	DownAfter time.Duration
	// OnShardDown is the replacement hook for attached workers: called (in
	// its own goroutine) when an attached shard has been unreachable for
	// DownAfter, so an operator or control plane can provision a
	// replacement and install it with ReplaceShard.
	OnShardDown func(id int, url string)
	// Client overrides the HTTP client used for proxying and probing.
	Client *http.Client
	// Logf sinks router events (breaker transitions, failovers, worker
	// exits, respawns). Default log.Printf; set to a no-op in tests.
	Logf func(format string, args ...any)
	// Log is the structured logger for per-request outcome lines (one
	// logfmt line per proxied request carrying the trace ID). Nil disables
	// them; event logging still flows through Logf.
	Log *logx.Logger
	// TraceDepth is the flight recorder's K (slowest + most recent traces
	// kept for GET /debug/requests). 0 selects obs.DefaultRecorderDepth.
	TraceDepth int
	// TraceSample promotes a deterministic fraction of per-request outcome
	// lines to info level with their full router span breakdown (0 = none,
	// 1 = all). Error outcomes are logged regardless.
	TraceSample float64
	// Seed feeds the power-of-two-choices randomness. Default 1.
	Seed int64
	// DefaultClass is the service class assumed for requests that arrive
	// without an X-Hybridnet-Class header. The zero value is
	// serve.ClassGuaranteed, matching the pre-class behaviour. The router
	// always forwards the canonical class name to the worker, so the fleet
	// default is decided once at the edge.
	DefaultClass serve.Class
}

// statusClientClosedRequest is the nginx-convention 499 for "client closed
// the connection before the server answered" — same convention hybridnetd
// uses, so client churn stays out of 502/503 accounting at both tiers.
const statusClientClosedRequest = 499

func (c Config) withDefaults() Config {
	if c.HealthInterval == 0 {
		c.HealthInterval = 250 * time.Millisecond
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 3
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.RestartMax == 0 {
		c.RestartMax = 5
	}
	if c.RestartBackoff == 0 {
		c.RestartBackoff = 250 * time.Millisecond
	}
	if c.RestartBackoffMax == 0 {
		c.RestartBackoffMax = 5 * time.Second
	}
	if c.Logf == nil {
		c.Logf = log.Printf
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// validateWeights checks a Config.Weights slice against the shard count.
func validateWeights(weights []float64, n int) error {
	if weights == nil {
		return nil
	}
	if len(weights) != n {
		return fmt.Errorf("shard: %d weights for %d shards", len(weights), n)
	}
	for i, w := range weights {
		if w <= 0 {
			return fmt.Errorf("shard: weight %d is %v, must be > 0", i, w)
		}
	}
	return nil
}

// shardState is one worker replica as the router sees it.
type shardState struct {
	id     int
	weight float64 // static capacity weight, immutable after construction

	inflight atomic.Int64  // router-side requests currently proxied to this shard
	depth    atomic.Int64  // queue depth last reported by /healthz
	service  atomic.Int64  // per-image service time (ns) last reported by /healthz
	advW     atomic.Uint64 // min-max advertised weight (float64 bits) last reported by /healthz
	restarts atomic.Uint64 // successful supervisor respawns

	// classDepth is the per-class queue depth the shard last reported on
	// /healthz (indexed by serve.Class); hasClassDepths records whether the
	// worker reports the split at all, so placement can fall back to the
	// total depth against an older worker.
	classDepth     [serve.NumClasses]atomic.Int64
	hasClassDepths atomic.Bool

	mu           sync.Mutex
	url          string      // base URL, no trailing slash; rewritten on respawn
	proc         *workerProc // non-nil only for spawned workers; rewritten on respawn
	open         bool        // circuit open: excluded from placement
	down         bool        // permanently down: restart budget exhausted
	consecFails  int
	opens        uint64    // breaker open transitions
	closes       uint64    // breaker close (re-admission) transitions
	openSince    time.Time // when the current outage opened the breaker
	downNotified bool      // OnShardDown already fired for this outage
}

// load is the class-blind placement signal: what the router has in flight
// to the shard plus the scheduler backlog the shard last admitted to.
func (s *shardState) load() int64 { return s.inflight.Load() + s.depth.Load() }

// classLoad is the placement signal for a request of class c: router
// inflight plus the backlog the shard will dispatch at the same or higher
// priority than c. A guaranteed request only competes with the guaranteed
// queue; a budget request waits behind everything, so its effective depth
// is the whole backlog. Workers that do not report the class split fall
// back to the total depth.
func (s *shardState) classLoad(c serve.Class) int64 {
	if !s.hasClassDepths.Load() {
		return s.load()
	}
	d := s.inflight.Load()
	for i := serve.ClassGuaranteed; i <= c && i.Valid(); i++ {
		d += s.classDepth[i].Load()
	}
	return d
}

func (s *shardState) base() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.url
}

func (s *shardState) currentProc() *workerProc {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.proc
}

// adopt installs a freshly respawned worker process and its new base URL.
// Breaker state is left alone: the next successful health probe re-admits
// the shard, so traffic only returns once the new process answers.
func (s *shardState) adopt(p *workerProc, url string) {
	s.mu.Lock()
	s.proc = p
	s.url = url
	s.mu.Unlock()
	s.resetLoadSignals()
}

// resetLoadSignals clears the probe-reported load state after the shard's
// worker is swapped out (respawn or replacement); the next probe of the new
// process repopulates it.
func (s *shardState) resetLoadSignals() {
	s.depth.Store(0)
	s.service.Store(0)
	s.setAdvWeight(0)
	s.hasClassDepths.Store(false)
	for i := range s.classDepth {
		s.classDepth[i].Store(0)
	}
}

// advWeight/setAdvWeight hold the float64 advertised weight in an atomic
// word, matching the other probe-updated load signals.
func (s *shardState) advWeight() float64     { return math.Float64frombits(s.advW.Load()) }
func (s *shardState) setAdvWeight(w float64) { s.advW.Store(math.Float64bits(w)) }

func (s *shardState) isOpen() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.open
}

func (s *shardState) isDown() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.down
}

func (s *shardState) markDown() {
	s.mu.Lock()
	s.down = true
	s.mu.Unlock()
}

// healthy is the /healthz and /stats notion of routable: breaker closed and
// not permanently down.
func (s *shardState) healthy() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return !s.open && !s.down
}

// recordFailure counts one probe/request failure toward the breaker and
// reports whether this failure opened it.
func (s *shardState) recordFailure(threshold int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.consecFails++
	if !s.open && s.consecFails >= threshold {
		s.open = true
		s.opens++
		s.openSince = time.Now()
		return true
	}
	return false
}

// recordSuccess resets the failure streak and reports whether it re-admitted
// a circuit-broken shard.
func (s *shardState) recordSuccess() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.consecFails = 0
	s.downNotified = false
	if s.open {
		s.open = false
		s.closes++
		return true
	}
	return false
}

// shouldNotifyDown reports (once per outage) that an attached shard's
// breaker has been open longer than after.
func (s *shardState) shouldNotifyDown(after time.Duration) bool {
	if after <= 0 {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.proc != nil || !s.open || s.downNotified || time.Since(s.openSince) < after {
		return false
	}
	s.downNotified = true
	return true
}

func (s *shardState) breakerCounts() (opens, closes uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.opens, s.closes
}

// Router load-balances the hybridnetd HTTP API across worker shards.
// Build with New (attach to running workers) or Spawn (supervise worker
// processes), mount Mux on an http.Server, stop with Shutdown.
type Router struct {
	cfg    Config
	client *http.Client
	shards []*shardState

	// bin/binArgs reproduce a spawned worker; set only by Spawn, read only
	// by the supervisor goroutines.
	bin     string
	binArgs []string
	superWG sync.WaitGroup

	placer Placer // placement policy (Config.Placement)

	proxied   atomic.Uint64 // client requests proxied (any outcome)
	failovers atomic.Uint64 // requests saved by the second attempt
	errored   atomic.Uint64 // requests that surfaced a transport error

	rec         *obs.Recorder // router-side flight recorder
	sampleEvery uint64        // log 1-in-N outcome lines at info (0 = never)
	sampleN     atomic.Uint64

	stopOnce sync.Once
	stop     chan struct{} // closes to stop the health loop and supervisors
	probed   chan struct{} // closed after the first full probe round
	done     chan struct{} // health loop exited
}

// New attaches a Router to already-running workers at the given base URLs
// (e.g. "http://127.0.0.1:8081"). A scheme-less URL gets "http://".
func New(urls []string, cfg Config) (*Router, error) {
	if len(urls) == 0 {
		return nil, fmt.Errorf("shard: router needs at least one worker URL")
	}
	if err := validateWeights(cfg.Weights, len(urls)); err != nil {
		return nil, err
	}
	if _, err := NewPlacer(cfg.Placement, PlacerOptions{}); err != nil {
		return nil, err
	}
	shards := make([]*shardState, len(urls))
	for i, u := range urls {
		nu, err := normalizeURL(u)
		if err != nil {
			return nil, fmt.Errorf("shard: worker %d: %w", i, err)
		}
		shards[i] = &shardState{id: i, url: nu}
	}
	return newRouter(shards, cfg), nil
}

func newRouter(shards []*shardState, cfg Config) *Router {
	cfg = cfg.withDefaults()
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: cfg.RequestTimeout}
	}
	for i, s := range shards {
		s.weight = 1
		if cfg.Weights != nil {
			s.weight = cfg.Weights[i]
		}
	}
	// Placement was validated by New/Spawn; an error here is internal
	// misuse of newRouter, so fail loud.
	placer, err := NewPlacer(cfg.Placement, PlacerOptions{Seed: cfg.Seed, AdaptiveWeights: cfg.AdaptiveWeights})
	if err != nil {
		panic(err)
	}
	r := &Router{
		cfg:    cfg,
		client: client,
		shards: shards,
		placer: placer,
		rec:    obs.NewRecorder(cfg.TraceDepth),
		stop:   make(chan struct{}),
		probed: make(chan struct{}),
		done:   make(chan struct{}),
	}
	if f := cfg.TraceSample; f > 0 {
		if f > 1 {
			f = 1
		}
		r.sampleEvery = uint64(1 / f)
		if r.sampleEvery < 1 {
			r.sampleEvery = 1
		}
	}
	go r.healthLoop()
	return r
}

func normalizeURL(u string) (string, error) {
	u = strings.TrimRight(strings.TrimSpace(u), "/")
	if u == "" {
		return "", fmt.Errorf("empty URL")
	}
	if !strings.Contains(u, "://") {
		u = "http://" + u
	}
	parsed, err := url.Parse(u)
	if err != nil {
		return "", err
	}
	if parsed.Host == "" {
		return "", fmt.Errorf("URL %q has no host", u)
	}
	return u, nil
}

// Shards returns the number of worker shards (healthy or not).
func (r *Router) Shards() int { return len(r.shards) }

// ReplaceShard points shard id at a replacement worker URL — the manual
// counterpart of the automatic respawn, for attached (remote) workers whose
// replacement the router cannot provision itself. The shard's
// permanently-down flag and failure streak are cleared; re-admission still
// goes through the circuit breaker, so traffic returns only after the
// replacement answers a probe. Spawned shards are supervised and refuse
// replacement.
func (r *Router) ReplaceShard(id int, newURL string) error {
	if id < 0 || id >= len(r.shards) {
		return fmt.Errorf("shard: no shard %d", id)
	}
	nu, err := normalizeURL(newURL)
	if err != nil {
		return fmt.Errorf("shard: replacement for shard %d: %w", id, err)
	}
	s := r.shards[id]
	s.mu.Lock()
	if s.proc != nil {
		s.mu.Unlock()
		return fmt.Errorf("shard: shard %d is a spawned worker; the supervisor owns its lifecycle", id)
	}
	old := s.url
	s.url = nu
	s.down = false
	s.consecFails = 0
	s.downNotified = false
	s.mu.Unlock()
	s.resetLoadSignals()
	r.cfg.Logf("shard: shard %d replaced: %s -> %s", id, old, nu)
	return nil
}

// WaitReady blocks until the first full health-probe round has completed
// (whatever its outcomes — an unreachable fleet still "readies" so the
// caller can start serving 502s rather than hang), or until ctx expires.
// After it returns, placement decisions rest on probed load data rather
// than zero-value guesses. Useful right after Spawn.
func (r *Router) WaitReady(ctx context.Context) error {
	select {
	case <-r.probed:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("shard: waiting for first probe round: %w", ctx.Err())
	}
}

// candidate snapshots one shard's placement signals for a request of class
// c. The load term is the class-effective backlog (same-or-higher-priority
// queue depth), so a shard drowning in budget work still looks cheap to a
// guaranteed request; how the signals combine into a score is the Placer's
// business.
func (s *shardState) candidate(c serve.Class) Candidate {
	return Candidate{
		ID:               s.id,
		StaticWeight:     s.weight,
		Load:             s.classLoad(c),
		Service:          s.service.Load(),
		AdvertisedWeight: s.advWeight(),
	}
}

// pick chooses a target shard for a request of class c, excluding `not`
// (the shard a failed first attempt used). The routable set goes to the
// configured Placer — power-of-two-choices under the selected scoring
// policy. With every breaker open the router still picks among
// non-permanently-down shards (whatever the placer makes of what is
// left): a guess at a possibly-recovered shard beats a guaranteed error.
// Returns nil only when every shard is permanently down.
func (r *Router) pick(not *shardState, c serve.Class) *shardState {
	routable := make([]*shardState, 0, len(r.shards))
	for _, s := range r.shards {
		if s != not && s.healthy() {
			routable = append(routable, s)
		}
	}
	if len(routable) == 0 {
		for _, s := range r.shards {
			if s != not && !s.isDown() {
				routable = append(routable, s)
			}
		}
	}
	switch len(routable) {
	case 0:
		// Sole remaining option is `not`: retrying it beats a guaranteed
		// error, unless it is permanently down.
		if not != nil && !not.isDown() {
			return not
		}
		return nil
	case 1:
		return routable[0]
	}
	cands := make([]Candidate, len(routable))
	for i, s := range routable {
		cands[i] = s.candidate(c)
	}
	return routable[r.placer.Pick(cands)]
}

// Mux returns the router's HTTP API: the same endpoints a single hybridnetd
// exposes, served by the fleet (metrics and flight-recorder dumps are the
// fleet-wide merge of every shard's view plus the router's own).
func (r *Router) Mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/classify", r.handleClassify)
	mux.HandleFunc("/healthz", r.handleHealthz)
	mux.HandleFunc("/stats", r.handleStats)
	mux.HandleFunc("/metrics", r.handleMetrics)
	mux.HandleFunc("/debug/requests", r.handleDebugRequests)
	return mux
}

// finishTrace files one proxied request with the router's flight recorder
// and, when Config.Log is wired, emits the structured outcome line: errors
// and shed/expired outcomes at warn, served requests at debug.
func (r *Router) finishTrace(rec obs.TraceRecord, errMsg string) {
	r.rec.Record(rec)
	l := r.cfg.Log
	if l == nil {
		return
	}
	sampled := r.sampleEvery > 0 && r.sampleN.Add(1)%r.sampleEvery == 0
	kvs := []any{"trace", rec.ID, "status", rec.Status,
		"total_ms", float64(rec.Total.Microseconds()) / 1000}
	if sh := rec.Attrs["shard"]; sh != "" {
		kvs = append(kvs, "shard", sh)
	}
	if errMsg != "" {
		kvs = append(kvs, "err", errMsg)
	}
	if sampled && len(rec.Spans) > 0 {
		kvs = append(kvs, "spans", obs.FormatSpans(rec.Spans))
	}
	switch {
	case rec.Status >= 400:
		l.Warn("proxy", kvs...)
	case sampled:
		l.Info("proxy", kvs...)
	default:
		l.Debug("proxy", kvs...)
	}
}

// handleClassify proxies one classification to a picked shard, failing over
// to one other shard on a connection error or 503 before surfacing anything
// to the client. The worker's response is buffered before a byte reaches
// the client, so a mid-response worker death is retryable too.
//
// The request's trace ID (propagated from the client or minted here at the
// fleet edge) rides the X-Hybridnet-Trace header to the worker and back; the
// router's own spans (body read, per-shard attempts) go out in
// X-Hybridnet-Router-Spans so they never collide with the worker's
// breakdown.
func (r *Router) handleClassify(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, map[string]string{"error": "POST only"})
		return
	}
	start := time.Now()
	trace := req.Header.Get(obs.TraceHeader)
	if !obs.ValidTraceID(trace) {
		trace = obs.NewTraceID()
	}
	w.Header().Set(obs.TraceHeader, trace)
	class := r.cfg.DefaultClass
	if h := req.Header.Get(obs.ClassHeader); h != "" {
		c, err := serve.ParseClass(h)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
			return
		}
		class = c
	}
	finish := func(status int, shard int, spans []obs.Span, errMsg string) {
		rec := obs.TraceRecord{
			ID: trace, Start: start, Status: status, Total: time.Since(start), Spans: spans,
			Attrs: map[string]string{"class": class.String()},
		}
		if shard >= 0 {
			rec.Attrs["shard"] = strconv.Itoa(shard)
		}
		w.Header().Set(obs.RouterSpansHeader, obs.FormatSpans(spans))
		r.finishTrace(rec, errMsg)
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, req.Body, 16<<20))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": fmt.Sprintf("read body: %v", err)})
		return
	}
	spans := []obs.Span{{Name: "read", Dur: time.Since(start)}}
	r.proxied.Add(1)
	first := r.pick(nil, class)
	if first == nil {
		r.errored.Add(1)
		finish(http.StatusBadGateway, -1, spans, "no shards available")
		writeJSON(w, http.StatusBadGateway, map[string]string{
			"error": "no shards available: every worker is permanently down",
		})
		return
	}
	attemptStart := time.Now()
	status, hdr, respBody, err := r.forward(req.Context(), first, trace, class, body)
	spans = append(spans, obs.Span{Name: "attempt0", Dur: time.Since(attemptStart)})
	if err == nil && status != http.StatusServiceUnavailable {
		finish(status, first.id, spans, "")
		copyResponse(w, status, hdr, respBody)
		return
	}
	// First attempt lost to a dead or shedding shard: one failover — unless
	// the client itself aborted (nobody is waiting for the retry) or the
	// request is budget class. Budget already has a degradation path on the
	// worker, and a 503 from it means even the fast queue is full; burning a
	// second attempt's capacity on the cheapest tier would steal it from the
	// classes that pay for retries.
	if req.Context().Err() == nil && class != serve.ClassBudget {
		if second := r.pick(first, class); second != nil && second != first {
			attemptStart = time.Now()
			s2, h2, b2, err2 := r.forward(req.Context(), second, trace, class, body)
			spans = append(spans, obs.Span{Name: "attempt1", Dur: time.Since(attemptStart)})
			if err2 == nil {
				if s2 < 500 {
					// Only a served response counts as "saved by failover";
					// a second 503 under fleet-wide shedding does not.
					r.failovers.Add(1)
				}
				finish(s2, second.id, spans, "")
				copyResponse(w, s2, h2, b2)
				return
			}
		}
	}
	if err != nil {
		if req.Context().Err() != nil {
			// The client aborted; nobody reads this response and the shard
			// did not fail. Keep client churn out of the error stats.
			finish(statusClientClosedRequest, first.id, spans, "client closed request")
			writeJSON(w, statusClientClosedRequest, map[string]string{
				"error": "client closed request",
			})
			return
		}
		r.errored.Add(1)
		finish(http.StatusBadGateway, first.id, spans, err.Error())
		writeJSON(w, http.StatusBadGateway, map[string]string{
			"error": fmt.Sprintf("shard %d unreachable: %v", first.id, err),
		})
		return
	}
	finish(status, first.id, spans, "")
	copyResponse(w, status, hdr, respBody) // surface the original 503
}

// forward issues one attempt against one shard and does the breaker
// bookkeeping: transport errors count toward opening, any response counts
// as shard liveness. A 503 is a live shard shedding load — failover-worthy
// but not breaker-worthy. An abort caused by the client (parent context
// done) is no evidence against the shard, so it never touches the breaker:
// otherwise a few impatient clients could circuit-break a healthy fleet.
func (r *Router) forward(parent context.Context, s *shardState, trace string, class serve.Class, body []byte) (int, http.Header, []byte, error) {
	s.inflight.Add(1)
	defer s.inflight.Add(-1)
	ctx, cancel := context.WithTimeout(parent, r.cfg.RequestTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, s.base()+"/classify", bytes.NewReader(body))
	if err != nil {
		return 0, nil, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(obs.TraceHeader, trace)
	// Always the canonical name, so the worker's -default-class never
	// second-guesses the router's: the class decision is made once, at the
	// fleet edge.
	req.Header.Set(obs.ClassHeader, class.String())
	resp, err := r.client.Do(req)
	if err != nil {
		if parent.Err() == nil {
			if opened := s.recordFailure(r.cfg.BreakerThreshold); opened {
				r.cfg.Logf("shard: circuit OPEN on shard %d (%s): %v", s.id, s.base(), err)
			}
		}
		return 0, nil, nil, err
	}
	defer resp.Body.Close()
	respBody, err := io.ReadAll(resp.Body)
	if err != nil {
		if parent.Err() == nil {
			if opened := s.recordFailure(r.cfg.BreakerThreshold); opened {
				r.cfg.Logf("shard: circuit OPEN on shard %d (%s): %v", s.id, s.base(), err)
			}
		}
		return 0, nil, nil, err
	}
	if readmitted := s.recordSuccess(); readmitted {
		r.cfg.Logf("shard: circuit CLOSED on shard %d (%s): request succeeded", s.id, s.base())
	}
	return resp.StatusCode, resp.Header, respBody, nil
}

func copyResponse(w http.ResponseWriter, status int, hdr http.Header, body []byte) {
	// SpansHeader carries the winning worker's stage breakdown through to
	// the client; the trace header is already set at the router edge (same
	// ID the worker echoed back).
	for _, k := range []string{"Content-Type", "Retry-After", obs.SpansHeader} {
		if v := hdr.Get(k); v != "" {
			w.Header().Set(k, v)
		}
	}
	w.WriteHeader(status)
	w.Write(body)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// healthLoop probes every shard's /healthz each interval (in parallel, so a
// hung shard cannot delay the others), updating the load signal and the
// breaker: probe failures open it, one probe success re-admits the shard.
// Permanently-down shards are skipped — there is nothing left to probe.
func (r *Router) healthLoop() {
	defer close(r.done)
	ticker := time.NewTicker(r.cfg.HealthInterval)
	defer ticker.Stop()
	first := true
	for {
		var wg sync.WaitGroup
		for _, s := range r.shards {
			if s.isDown() {
				continue
			}
			wg.Add(1)
			go func(s *shardState) {
				defer wg.Done()
				r.probe(s)
			}(s)
		}
		wg.Wait()
		if first {
			first = false
			close(r.probed)
		}
		select {
		case <-r.stop:
			return
		case <-ticker.C:
		}
	}
}

func (r *Router) probe(s *shardState) {
	timeout := r.cfg.HealthInterval
	if timeout < 100*time.Millisecond {
		timeout = 100 * time.Millisecond
	}
	if timeout > 2*time.Second {
		timeout = 2 * time.Second
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, s.base()+"/healthz", nil)
	if err != nil {
		return
	}
	resp, err := r.client.Do(req)
	if err == nil {
		var health struct {
			QueueDepth       int64            `json:"queue_depth"`
			ServiceNS        int64            `json:"service_ns"`
			AdvertisedWeight float64          `json:"advertised_weight"`
			ClassQueueDepths map[string]int64 `json:"class_queue_depths"`
		}
		decodeErr := json.NewDecoder(resp.Body).Decode(&health)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if decodeErr == nil && resp.StatusCode == http.StatusOK {
			s.depth.Store(health.QueueDepth)
			if health.ServiceNS > 0 {
				s.service.Store(health.ServiceNS)
			}
			if health.AdvertisedWeight >= 0 {
				s.setAdvWeight(health.AdvertisedWeight)
			}
			if health.ClassQueueDepths != nil {
				for _, c := range serve.Classes {
					s.classDepth[c].Store(health.ClassQueueDepths[c.String()])
				}
				s.hasClassDepths.Store(true)
			}
			if readmitted := s.recordSuccess(); readmitted {
				r.cfg.Logf("shard: circuit CLOSED on shard %d (%s): probe succeeded", s.id, s.base())
			}
			return
		}
		err = fmt.Errorf("healthz status %d (decode: %v)", resp.StatusCode, decodeErr)
	}
	if opened := s.recordFailure(r.cfg.BreakerThreshold); opened {
		r.cfg.Logf("shard: circuit OPEN on shard %d (%s): %v", s.id, s.base(), err)
	}
	if r.cfg.OnShardDown != nil && s.shouldNotifyDown(r.cfg.DownAfter) {
		r.cfg.Logf("shard: attached shard %d (%s) unreachable for %v — invoking OnShardDown",
			s.id, s.base(), r.cfg.DownAfter)
		go r.cfg.OnShardDown(s.id, s.base())
	}
}

// ShardStatus is one shard's entry in the /stats report.
type ShardStatus struct {
	ID      int     `json:"id"`
	URL     string  `json:"url"`
	Healthy bool    `json:"healthy"` // breaker closed and not permanently down
	Weight  float64 `json:"weight"`
	// ServiceTime is the per-image service time the shard last reported,
	// the adaptive-placement signal.
	ServiceTime time.Duration `json:"service_ns"`
	// AdvertisedWeight is the min-max placement weight the shard last
	// reported on /healthz (0 = not advertising), the `-placement minmax`
	// signal.
	AdvertisedWeight float64 `json:"advertised_weight,omitempty"`
	Inflight         int64   `json:"inflight"`
	QueueDepth       int64   `json:"queue_depth"` // last /healthz report
	// ClassQueueDepths is the per-class queue-depth split the shard last
	// reported on /healthz (absent against a worker that predates classes).
	ClassQueueDepths map[string]int64 `json:"class_queue_depths,omitempty"`
	BreakerOpens     uint64           `json:"breaker_opens"`
	BreakerCloses    uint64           `json:"breaker_closes"`
	// Restarts counts supervisor respawns of this shard's worker process.
	Restarts uint64 `json:"restarts"`
	// PermanentlyDown marks a spawned shard whose restart budget is
	// exhausted: it no longer receives traffic or probes.
	PermanentlyDown bool         `json:"permanently_down,omitempty"`
	Stats           *serve.Stats `json:"stats,omitempty"`
	Error           string       `json:"error,omitempty"` // why Stats is missing
}

// StatsReport is the router's GET /stats body: the serve.Merge aggregate of
// every shard plus per-shard detail and router-level counters. Shards that
// report no stats (dead, unreachable) merge as zero-valued stats, so
// Aggregate.Shards is the fleet size.
type StatsReport struct {
	Aggregate serve.Stats   `json:"aggregate"`
	Shards    []ShardStatus `json:"shards"`
	Proxied   uint64        `json:"proxied"`
	Failovers uint64        `json:"failovers"`
	Errors    uint64        `json:"errors"`

	// Fleet-level health and reliability counters, summed from the
	// per-shard detail so dashboards (and the Prometheus view) never have
	// to re-derive them: breaker churn, supervisor respawns, and how much
	// of the fleet is currently routable.
	HealthyShards   int    `json:"healthy_shards"`
	PermanentlyDown int    `json:"permanently_down"`
	Restarts        uint64 `json:"restarts"`
	BreakerOpens    uint64 `json:"breaker_opens"`
	BreakerCloses   uint64 `json:"breaker_closes"`
}

// Report fetches every shard's /stats (in parallel) and merges them.
func (r *Router) Report(ctx context.Context) StatsReport {
	statuses := make([]ShardStatus, len(r.shards))
	var wg sync.WaitGroup
	for i, s := range r.shards {
		wg.Add(1)
		go func(i int, s *shardState) {
			defer wg.Done()
			st := ShardStatus{
				ID: s.id, URL: s.base(), Healthy: s.healthy(),
				Weight:           s.weight,
				ServiceTime:      time.Duration(s.service.Load()),
				AdvertisedWeight: s.advWeight(),
				Inflight:         s.inflight.Load(), QueueDepth: s.depth.Load(),
				Restarts:        s.restarts.Load(),
				PermanentlyDown: s.isDown(),
			}
			if s.hasClassDepths.Load() {
				st.ClassQueueDepths = make(map[string]int64, serve.NumClasses)
				for _, c := range serve.Classes {
					st.ClassQueueDepths[c.String()] = s.classDepth[c].Load()
				}
			}
			st.BreakerOpens, st.BreakerCloses = s.breakerCounts()
			stats, err := r.fetchStats(ctx, s)
			if err != nil {
				st.Error = err.Error()
			} else {
				st.Stats = stats
			}
			statuses[i] = st
		}(i, s)
	}
	wg.Wait()
	// Every shard enters the merge: one that reported nothing contributes
	// zero-valued stats with an empty histogram, so the aggregate's shard
	// count is the fleet size, not the live-shard count.
	per := make([]serve.Stats, len(statuses))
	rep := StatsReport{
		Shards:    statuses,
		Proxied:   r.proxied.Load(),
		Failovers: r.failovers.Load(),
		Errors:    r.errored.Load(),
	}
	for i, st := range statuses {
		if st.Stats != nil {
			per[i] = *st.Stats
		} else {
			per[i] = serve.Stats{LatencyHist: serve.NewHistogram()}
		}
		if st.Healthy {
			rep.HealthyShards++
		}
		if st.PermanentlyDown {
			rep.PermanentlyDown++
		}
		rep.Restarts += st.Restarts
		rep.BreakerOpens += st.BreakerOpens
		rep.BreakerCloses += st.BreakerCloses
	}
	rep.Aggregate = serve.Merge(per...)
	return rep
}

func (r *Router) fetchStats(ctx context.Context, s *shardState) (*serve.Stats, error) {
	if s.isDown() {
		return nil, fmt.Errorf("shard permanently down")
	}
	ctx, cancel := context.WithTimeout(ctx, 2*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, s.base()+"/stats", nil)
	if err != nil {
		return nil, err
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("stats status %d", resp.StatusCode)
	}
	var st serve.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}

func (r *Router) handleStats(w http.ResponseWriter, req *http.Request) {
	writeJSON(w, http.StatusOK, r.Report(req.Context()))
}

// handleMetrics renders the fleet in Prometheus text format: the
// serve.Merge aggregate under the same hybridnet_* names a single worker
// exposes (so dashboards work against either tier), router-level proxy
// counters, and per-shard health/breaker/restart series keyed by a "shard"
// label — the machine-readable form of everything /stats reports.
func (r *Router) handleMetrics(w http.ResponseWriter, req *http.Request) {
	rep := r.Report(req.Context())
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	p := obs.NewPromWriter(w)
	obs.WriteServeStats(p, rep.Aggregate)
	p.Counter("hybridnet_router_proxied_total", "Client requests proxied by the router (any outcome).", float64(rep.Proxied))
	p.Counter("hybridnet_router_failovers_total", "Requests served by the second attempt after the first shard failed.", float64(rep.Failovers))
	p.Counter("hybridnet_router_errors_total", "Requests that surfaced a transport error to the client.", float64(rep.Errors))
	p.Gauge("hybridnet_router_shards", "Configured fleet size (healthy or not).", float64(len(rep.Shards)))
	p.Info("hybridnet_router_placement", "Active placement policy (label `policy`).", obs.Label{Name: "policy", Value: r.placer.Name()})
	p.Gauge("hybridnet_router_healthy_shards", "Shards currently routable (breaker closed, not permanently down).", float64(rep.HealthyShards))
	for _, sh := range rep.Shards {
		l := obs.Label{Name: "shard", Value: strconv.Itoa(sh.ID)}
		p.Gauge("hybridnet_shard_healthy", "1 when the shard is routable (breaker closed, not permanently down).", b2f(sh.Healthy), l)
		p.Gauge("hybridnet_shard_breaker_open", "1 when the shard's circuit breaker is open (excluded from placement).", b2f(!sh.Healthy), l)
		p.Gauge("hybridnet_shard_permanently_down", "1 when the shard's restart budget is exhausted.", b2f(sh.PermanentlyDown), l)
		p.Counter("hybridnet_shard_breaker_opens_total", "Breaker open transitions for this shard.", float64(sh.BreakerOpens), l)
		p.Counter("hybridnet_shard_breaker_closes_total", "Breaker close (re-admission) transitions for this shard.", float64(sh.BreakerCloses), l)
		p.Counter("hybridnet_shard_restarts_total", "Supervisor respawns of this shard's worker process.", float64(sh.Restarts), l)
		p.Gauge("hybridnet_shard_inflight", "Requests the router currently has in flight to this shard.", float64(sh.Inflight), l)
		p.Gauge("hybridnet_shard_queue_depth", "Queue depth the shard last reported on /healthz.", float64(sh.QueueDepth), l)
		for _, c := range serve.Classes {
			d, ok := sh.ClassQueueDepths[c.String()]
			if !ok {
				continue
			}
			p.Gauge("hybridnet_shard_class_queue_depth", "Per-class queue depth the shard last reported on /healthz.",
				float64(d), l, obs.Label{Name: "class", Value: c.String()})
		}
		p.Gauge("hybridnet_shard_weight", "Static placement capacity weight.", sh.Weight, l)
		p.Gauge("hybridnet_shard_service_time_seconds", "Per-image service time the shard last reported (adaptive-placement signal).", sh.ServiceTime.Seconds(), l)
		p.Gauge("hybridnet_shard_advertised_weight", "Min-max placement weight the shard last reported on /healthz (0 = not advertising).", sh.AdvertisedWeight, l)
	}
	if err := p.Err(); err != nil {
		r.cfg.Log.Warn("write metrics", "err", err)
	}
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// handleDebugRequests serves the fleet-wide flight recorder: every shard's
// /debug/requests dump (fetched in parallel) merged with the router's own,
// so one curl answers "what were the slowest requests anywhere".
func (r *Router) handleDebugRequests(w http.ResponseWriter, req *http.Request) {
	dumps := make([]obs.RecorderDump, len(r.shards)+1)
	dumps[len(r.shards)] = r.rec.Snapshot()
	var wg sync.WaitGroup
	for i, s := range r.shards {
		wg.Add(1)
		go func(i int, s *shardState) {
			defer wg.Done()
			d, err := r.fetchDump(req.Context(), s)
			if err != nil {
				return // an unreachable shard contributes nothing
			}
			dumps[i] = d
		}(i, s)
	}
	wg.Wait()
	writeJSON(w, http.StatusOK, obs.MergeDumps(dumps...))
}

func (r *Router) fetchDump(ctx context.Context, s *shardState) (obs.RecorderDump, error) {
	var dump obs.RecorderDump
	if s.isDown() {
		return dump, fmt.Errorf("shard permanently down")
	}
	ctx, cancel := context.WithTimeout(ctx, 2*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, s.base()+"/debug/requests", nil)
	if err != nil {
		return dump, err
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return dump, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return dump, fmt.Errorf("debug/requests status %d", resp.StatusCode)
	}
	err = json.NewDecoder(resp.Body).Decode(&dump)
	return dump, err
}

func (r *Router) handleHealthz(w http.ResponseWriter, req *http.Request) {
	healthy, down := 0, 0
	var classDepths map[string]int64
	for _, s := range r.shards {
		if s.healthy() {
			healthy++
		}
		if s.isDown() {
			down++
		}
		if s.hasClassDepths.Load() {
			if classDepths == nil {
				classDepths = make(map[string]int64, serve.NumClasses)
			}
			for _, c := range serve.Classes {
				classDepths[c.String()] += s.classDepth[c].Load()
			}
		}
	}
	status := http.StatusOK
	body := map[string]any{
		"status": "ok", "shards": len(r.shards), "healthy": healthy, "down": down,
	}
	if classDepths != nil {
		// Fleet-wide per-class backlog, same shape as a worker's report, so a
		// front tier can stack routers the way routers stack workers.
		body["class_queue_depths"] = classDepths
	}
	if healthy == 0 {
		status = http.StatusServiceUnavailable
		body["status"] = "no healthy shards"
	}
	writeJSON(w, status, body)
}

// Shutdown stops the health loop and supervisors, then drains the fleet:
// spawned workers get SIGTERM (each drains its own scheduler before
// exiting) and are awaited until ctx expires, then killed. Attached workers
// are left running — the router does not own them. Idempotent.
func (r *Router) Shutdown(ctx context.Context) error {
	r.stopOnce.Do(func() { close(r.stop) })
	select {
	case <-r.done:
	case <-ctx.Done():
		return fmt.Errorf("shard: shutdown: %w", ctx.Err())
	}
	// Supervisors must be parked before the drain SIGTERMs workers, or an
	// exiting worker would race its own respawn. The wait is bounded: a
	// supervisor mid-spawn finishes within spawnReportTimeout.
	r.superWG.Wait()
	var errs []error
	for _, s := range r.shards {
		proc := s.currentProc()
		if proc == nil {
			continue
		}
		if err := proc.drain(ctx, r.cfg.Logf); err != nil {
			errs = append(errs, fmt.Errorf("shard %d: %w", s.id, err))
		}
	}
	return errors.Join(errs...)
}
