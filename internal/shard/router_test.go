package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/serve"
)

// testWorker is an in-process stand-in for a hybridnetd worker: the same
// three endpoints, counters wired so /stats is internally consistent, and a
// Stop/Restart cycle on a stable address so breaker re-admission is
// testable.
type testWorker struct {
	t     *testing.T
	addr  string
	depth atomic.Int64 // queue depth reported by /healthz
	delay atomic.Int64 // per-classify latency, ns
	svc   atomic.Int64 // service_ns reported by /healthz (adaptive placement)

	mu  sync.Mutex
	srv *http.Server

	classified atomic.Uint64
	lastTrace  atomic.Value // last X-Hybridnet-Trace the worker received
}

func startTestWorker(t *testing.T) *testWorker {
	t.Helper()
	w := &testWorker{t: t}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	w.addr = ln.Addr().String()
	w.serveOn(ln)
	t.Cleanup(w.Stop)
	return w
}

func (w *testWorker) serveOn(ln net.Listener) {
	mux := http.NewServeMux()
	mux.HandleFunc("/classify", func(rw http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		if d := w.delay.Load(); d > 0 {
			time.Sleep(time.Duration(d))
		}
		w.classified.Add(1)
		// Echo the propagated trace and a worker span breakdown, like the
		// real hybridnetd does.
		if tr := r.Header.Get(obs.TraceHeader); tr != "" {
			w.lastTrace.Store(tr)
			rw.Header().Set(obs.TraceHeader, tr)
		}
		rw.Header().Set(obs.SpansHeader, "queue;dur=0.100,backend;dur=0.500")
		rw.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(rw, `{"class":14,"decision":"accept"}`)
	})
	mux.HandleFunc("/healthz", func(rw http.ResponseWriter, r *http.Request) {
		rw.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(rw, `{"status":"ok","queue_depth":%d,"service_ns":%d}`,
			w.depth.Load(), w.svc.Load())
	})
	mux.HandleFunc("/stats", func(rw http.ResponseWriter, r *http.Request) {
		n := w.classified.Load()
		hist := serve.NewHistogram()
		for i := uint64(0); i < n; i++ {
			hist.Observe(time.Millisecond)
		}
		st := serve.Stats{
			Shards:    1,
			Submitted: n, Completed: n, Batches: n,
			BatchHist:    []uint64{n},
			LatencyCount: int(n), LatencyP50: hist.Quantile(0.50),
			LatencyP99: hist.Quantile(0.99), LatencyMax: hist.Max(),
			LatencyHist: hist,
			Uptime:      time.Second,
		}
		rw.Header().Set("Content-Type", "application/json")
		json.NewEncoder(rw).Encode(st)
	})
	mux.HandleFunc("/debug/requests", func(rw http.ResponseWriter, r *http.Request) {
		// One very slow sentinel trace per worker, so a merged fleet dump
		// provably includes the shard-side recorders.
		sentinel := obs.TraceRecord{
			ID: "wk-" + w.addr, Start: time.Now().Add(-time.Minute),
			Status: 200, Total: time.Hour,
		}
		rw.Header().Set("Content-Type", "application/json")
		json.NewEncoder(rw).Encode(obs.RecorderDump{
			Depth: 1, Total: 1,
			Recent:  []obs.TraceRecord{sentinel},
			Slowest: []obs.TraceRecord{sentinel},
		})
	})
	srv := &http.Server{Handler: mux}
	w.mu.Lock()
	w.srv = srv
	w.mu.Unlock()
	go srv.Serve(ln)
}

// Stop kills the worker hard: listener and live connections close at once,
// like a SIGKILLed process.
func (w *testWorker) Stop() {
	w.mu.Lock()
	srv := w.srv
	w.srv = nil
	w.mu.Unlock()
	if srv != nil {
		srv.Close()
	}
}

// Restart rebinds the same address, like a supervisor bringing the worker
// back.
func (w *testWorker) Restart() {
	w.t.Helper()
	ln, err := net.Listen("tcp", w.addr)
	if err != nil {
		w.t.Fatalf("restart %s: %v", w.addr, err)
	}
	w.serveOn(ln)
}

func testConfig(t *testing.T) Config {
	return Config{
		HealthInterval:   20 * time.Millisecond,
		BreakerThreshold: 2,
		RequestTimeout:   5 * time.Second,
		Logf:             t.Logf,
	}
}

func newTestRouter(t *testing.T, cfg Config, workers ...*testWorker) (*Router, *httptest.Server) {
	t.Helper()
	urls := make([]string, len(workers))
	for i, w := range workers {
		urls[i] = w.addr
	}
	r, err := New(urls, cfg)
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(r.Mux())
	t.Cleanup(func() {
		front.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := r.Shutdown(ctx); err != nil {
			t.Errorf("router shutdown: %v", err)
		}
	})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := r.WaitReady(ctx); err != nil {
		t.Fatal(err)
	}
	return r, front
}

// newSpawnedFront mounts an already-Spawned router on a test front-end and
// registers shutdown cleanup, returning the front's base URL.
func newSpawnedFront(t *testing.T, router *Router) string {
	t.Helper()
	front := httptest.NewServer(router.Mux())
	t.Cleanup(func() {
		front.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := router.Shutdown(ctx); err != nil {
			t.Errorf("router shutdown: %v", err)
		}
	})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := router.WaitReady(ctx); err != nil {
		t.Fatal(err)
	}
	return front.URL
}

func decodeJSONBody(t *testing.T, resp *http.Response, v any) {
	t.Helper()
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

func classifyOK(client *http.Client, url string) error {
	resp, err := client.Post(url+"/classify", "application/json",
		bytes.NewReader([]byte(`{"sign":"stop","seed":1}`)))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d", resp.StatusCode)
	}
	return nil
}

func routerReport(t *testing.T, front string) StatsReport {
	t.Helper()
	resp, err := http.Get(front + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rep StatsReport
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	return rep
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestRouterFailover is the acceptance drill: two workers under load, one
// dies mid-load, and every client request still succeeds — the router fails
// the dead shard's traffic over, circuit-breaks it, re-admits it after it
// comes back, and the merged /stats stays the exact sum of the per-shard
// counters throughout. Run under -race.
func TestRouterFailover(t *testing.T) {
	a := startTestWorker(t)
	b := startTestWorker(t)
	router, front := newTestRouter(t, testConfig(t), a, b)

	client := &http.Client{Timeout: 10 * time.Second}
	const (
		goroutines = 8
		perG       = 40
		killAfter  = 10 // per-goroutine requests before the kill point
	)
	var failures atomic.Uint64
	var killOnce sync.Once
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				if i == killAfter {
					killOnce.Do(a.Stop) // worker A dies mid-load
				}
				if err := classifyOK(client, front.URL); err != nil {
					failures.Add(1)
					t.Errorf("client-visible failure: %v", err)
				}
			}
		}()
	}
	wg.Wait()
	if n := failures.Load(); n != 0 {
		t.Fatalf("%d client-visible failures across the worker loss, want 0", n)
	}

	// The breaker must have opened on the dead shard.
	waitFor(t, "breaker open on shard 0", func() bool {
		rep := routerReport(t, front.URL)
		return !rep.Shards[0].Healthy && rep.Shards[0].BreakerOpens >= 1
	})

	// Bring A back: the next successful probe re-admits it.
	a.Restart()
	waitFor(t, "breaker re-close on shard 0", func() bool {
		rep := routerReport(t, front.URL)
		return rep.Shards[0].Healthy && rep.Shards[0].BreakerCloses >= 1
	})

	// A few more requests — the fleet is whole again.
	for i := 0; i < 10; i++ {
		if err := classifyOK(client, front.URL); err != nil {
			t.Fatalf("post-recovery request: %v", err)
		}
	}

	// Aggregated stats are coherent: the merged totals equal the sum of the
	// per-shard counters, and all client successes are accounted for.
	rep := routerReport(t, front.URL)
	var sumCompleted, sumSubmitted uint64
	for _, s := range rep.Shards {
		if s.Stats == nil {
			t.Fatalf("shard %d missing stats: %s", s.ID, s.Error)
		}
		sumCompleted += s.Stats.Completed
		sumSubmitted += s.Stats.Submitted
	}
	if rep.Aggregate.Completed != sumCompleted || rep.Aggregate.Submitted != sumSubmitted {
		t.Fatalf("aggregate (%d submitted, %d completed) != shard sums (%d, %d)",
			rep.Aggregate.Submitted, rep.Aggregate.Completed, sumSubmitted, sumCompleted)
	}
	// The fleet quantiles come from merged histograms (exact path), and the
	// aggregate counts the whole fleet.
	if rep.Aggregate.LatencyHist == nil || rep.Aggregate.LatencyHist.Count() != sumCompleted {
		t.Fatalf("aggregate latency histogram missing or short: %+v", rep.Aggregate.LatencyHist)
	}
	if rep.Aggregate.Shards != 2 {
		t.Fatalf("aggregate shard count %d, want 2", rep.Aggregate.Shards)
	}
	const totalRequests = goroutines*perG + 10
	if got := a.classified.Load() + b.classified.Load(); got < totalRequests {
		t.Fatalf("workers served %d of %d client requests", got, totalRequests)
	}
	if rep.Failovers == 0 {
		t.Fatal("no failovers recorded — the kill never exercised the failover path")
	}
	if rep.Proxied < totalRequests {
		t.Fatalf("router proxied %d of %d", rep.Proxied, totalRequests)
	}
	t.Logf("failover drill: %d requests, %d failovers, shard0 served %d, shard1 served %d",
		rep.Proxied, rep.Failovers, a.classified.Load(), b.classified.Load())
	_ = router
}

// TestRouterP2CPrefersShortQueue: with one shard reporting a deep scheduler
// queue and the other idle, power-of-two-choices must send everything to
// the idle shard.
func TestRouterP2CPrefersShortQueue(t *testing.T) {
	a := startTestWorker(t)
	b := startTestWorker(t)
	a.depth.Store(50)
	_, front := newTestRouter(t, testConfig(t), a, b)

	// WaitReady guarantees one probe round, so the router has seen A's depth.
	client := &http.Client{Timeout: 5 * time.Second}
	const n = 40
	for i := 0; i < n; i++ {
		if err := classifyOK(client, front.URL); err != nil {
			t.Fatal(err)
		}
	}
	if got := a.classified.Load(); got != 0 {
		t.Fatalf("deep-queue shard served %d requests, want 0", got)
	}
	if got := b.classified.Load(); got != n {
		t.Fatalf("idle shard served %d of %d", got, n)
	}
}

// TestRouterRoundRobinOnTies: equal loads fall back to round-robin, so both
// shards share the traffic instead of one absorbing it all.
func TestRouterRoundRobinOnTies(t *testing.T) {
	a := startTestWorker(t)
	b := startTestWorker(t)
	_, front := newTestRouter(t, testConfig(t), a, b)

	client := &http.Client{Timeout: 5 * time.Second}
	const n = 40
	for i := 0; i < n; i++ {
		if err := classifyOK(client, front.URL); err != nil {
			t.Fatal(err)
		}
	}
	na, nb := a.classified.Load(), b.classified.Load()
	if na+nb != n {
		t.Fatalf("served %d+%d of %d", na, nb, n)
	}
	if na == 0 || nb == 0 {
		t.Fatalf("tie traffic not spread: %d vs %d", na, nb)
	}
}

// TestRouterClientAbortIsNotShardFailure: clients that hang up mid-request
// must not advance any circuit breaker — otherwise a few impatient clients
// could circuit-break a perfectly healthy fleet (the router-level twin of
// hybridnetd's 499-vs-503 separation).
func TestRouterClientAbortIsNotShardFailure(t *testing.T) {
	a := startTestWorker(t)
	b := startTestWorker(t)
	a.delay.Store(int64(300 * time.Millisecond))
	b.delay.Store(int64(300 * time.Millisecond))
	cfg := testConfig(t)
	// One initial probe round, then none: nothing resets consecFails behind
	// the test's back, so any breaker bump would stick and be visible.
	cfg.HealthInterval = time.Hour
	_, front := newTestRouter(t, cfg, a, b)

	impatient := &http.Client{Timeout: 25 * time.Millisecond}
	for i := 0; i < 3*cfg.BreakerThreshold; i++ {
		_, err := impatient.Post(front.URL+"/classify", "application/json",
			bytes.NewReader([]byte(`{"sign":"stop"}`)))
		if err == nil {
			t.Fatal("impatient client unexpectedly got a response")
		}
	}
	rep := routerReport(t, front.URL)
	for _, s := range rep.Shards {
		if !s.Healthy || s.BreakerOpens != 0 {
			t.Fatalf("shard %d: healthy=%v opens=%d after client aborts — breaker polluted",
				s.ID, s.Healthy, s.BreakerOpens)
		}
	}
	if rep.Errors != 0 {
		t.Fatalf("router errors %d after client aborts — error stats polluted", rep.Errors)
	}
}

// TestRouterAllShardsDown: with the whole fleet gone the client gets a 502
// (after the single failover attempt) and /healthz degrades to 503.
func TestRouterAllShardsDown(t *testing.T) {
	a := startTestWorker(t)
	b := startTestWorker(t)
	_, front := newTestRouter(t, testConfig(t), a, b)
	a.Stop()
	b.Stop()

	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Post(front.URL+"/classify", "application/json",
		bytes.NewReader([]byte(`{"sign":"stop"}`)))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("fleet-down classify status %d, want 502", resp.StatusCode)
	}

	waitFor(t, "healthz to degrade", func() bool {
		resp, err := client.Get(front.URL + "/healthz")
		if err != nil {
			return false
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode == http.StatusServiceUnavailable
	})
}

// TestRouterWeightedPlacement: with static capacity weights 1 vs 3 and no
// other load signal, sequential requests must all land on the heavier
// shard — (load+1)/weight is strictly lower there whenever both are idle.
func TestRouterWeightedPlacement(t *testing.T) {
	a := startTestWorker(t)
	b := startTestWorker(t)
	cfg := testConfig(t)
	cfg.Weights = []float64{1, 3}
	_, front := newTestRouter(t, cfg, a, b)

	client := &http.Client{Timeout: 5 * time.Second}
	const n = 30
	for i := 0; i < n; i++ {
		if err := classifyOK(client, front.URL); err != nil {
			t.Fatal(err)
		}
	}
	if got := b.classified.Load(); got != n {
		t.Fatalf("weight-3 shard served %d of %d", got, n)
	}
	if got := a.classified.Load(); got != 0 {
		t.Fatalf("weight-1 shard served %d, want 0 while the heavy shard is idle", got)
	}
}

// TestRouterAdaptivePlacement: with AdaptiveWeights on, a shard reporting
// 4× the per-image service time must lose every idle-fleet pick to the
// faster shard — the router equalises expected completion time, not queue
// depth. A shard without an estimate is compared on load alone, so a
// half-measured fleet keeps the old behaviour (pinned by the tie test).
func TestRouterAdaptivePlacement(t *testing.T) {
	slow := startTestWorker(t)
	fast := startTestWorker(t)
	slow.svc.Store(int64(4 * time.Millisecond))
	fast.svc.Store(int64(time.Millisecond))
	cfg := testConfig(t)
	cfg.AdaptiveWeights = true
	_, front := newTestRouter(t, cfg, slow, fast)

	client := &http.Client{Timeout: 5 * time.Second}
	const n = 30
	for i := 0; i < n; i++ {
		if err := classifyOK(client, front.URL); err != nil {
			t.Fatal(err)
		}
	}
	if got := fast.classified.Load(); got != n {
		t.Fatalf("fast shard served %d of %d", got, n)
	}
	if got := slow.classified.Load(); got != 0 {
		t.Fatalf("slow shard served %d, want 0 while the fast shard is idle", got)
	}
}

// TestRouterReplaceShard is the attached-worker half of self-healing: the
// router cannot respawn a remote process, so after DownAfter it fires
// OnShardDown, and ReplaceShard installs the replacement URL — which still
// rejoins through the circuit breaker.
func TestRouterReplaceShard(t *testing.T) {
	a := startTestWorker(t)
	b := startTestWorker(t)
	replacement := startTestWorker(t)
	notified := make(chan int, 1)
	cfg := testConfig(t)
	cfg.DownAfter = 50 * time.Millisecond
	cfg.OnShardDown = func(id int, url string) {
		select {
		case notified <- id:
		default:
		}
	}
	router, front := newTestRouter(t, cfg, a, b)

	client := &http.Client{Timeout: 5 * time.Second}
	a.Stop()
	waitFor(t, "OnShardDown for shard 0", func() bool {
		select {
		case id := <-notified:
			return id == 0
		default:
			return false
		}
	})
	// Traffic keeps flowing through the survivor meanwhile.
	if err := classifyOK(client, front.URL); err != nil {
		t.Fatal(err)
	}
	if err := router.ReplaceShard(0, replacement.addr); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "replacement re-admitted", func() bool {
		rep := routerReport(t, front.URL)
		return rep.Shards[0].Healthy && rep.Shards[0].URL == "http://"+replacement.addr
	})
	// Replacement shard serves: push traffic until it has handled some.
	waitFor(t, "replacement serving", func() bool {
		if err := classifyOK(client, front.URL); err != nil {
			t.Fatal(err)
		}
		return replacement.classified.Load() > 0
	})

	// Guard rails: bad ids and URLs are refused.
	if err := router.ReplaceShard(7, replacement.addr); err == nil {
		t.Error("out-of-range shard id accepted")
	}
	if err := router.ReplaceShard(0, ""); err == nil {
		t.Error("empty replacement URL accepted")
	}
}

// TestRouterValidation covers constructor argument checks.
func TestRouterValidation(t *testing.T) {
	if _, err := New(nil, Config{}); err == nil {
		t.Error("empty fleet accepted")
	}
	if _, err := New([]string{""}, Config{}); err == nil {
		t.Error("empty URL accepted")
	}
	if _, err := Spawn("/bin/true", 0, nil, Config{}); err == nil {
		t.Error("zero workers accepted")
	}
	if _, err := New([]string{"127.0.0.1:1", "127.0.0.1:2"}, Config{Weights: []float64{1}}); err == nil {
		t.Error("weight count mismatch accepted")
	}
	if _, err := New([]string{"127.0.0.1:1"}, Config{Weights: []float64{-1}}); err == nil {
		t.Error("non-positive weight accepted")
	}
	// Scheme-less URLs are normalised.
	r, err := New([]string{"127.0.0.1:9/"}, Config{Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if got := r.shards[0].url; got != "http://127.0.0.1:9" {
		t.Errorf("normalised URL %q", got)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := r.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
}
