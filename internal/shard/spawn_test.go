package shard

import (
	"context"
	"net/http/httptest"
	"os/exec"
	"path/filepath"
	"testing"
	"time"
)

// TestSpawnSupervisesRealWorkers is the process-level acceptance drill for
// the self-healing fleet: the router builds and spawns two real hybridnetd
// demo workers, learns their kernel-assigned ports from the stdout report,
// serves through them, and — after one worker is SIGKILLed — recovers to a
// 2-shard serving fleet without operator action: traffic fails over while
// the supervisor respawns the worker on a fresh port and the breaker
// re-admits it. SIGTERM then drains the whole fleet.
func TestSpawnSupervisesRealWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real worker processes")
	}
	bin := filepath.Join(t.TempDir(), "hybridnetd")
	build := exec.Command("go", "build", "-o", bin, "repro/cmd/hybridnetd")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build hybridnetd: %v\n%s", err, out)
	}

	cfg := testConfig(t)
	cfg.RestartBackoff = 50 * time.Millisecond
	router, err := Spawn(bin, 2, []string{"-demo", "-size", "32"}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	shutdown := func() error {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		return router.Shutdown(ctx)
	}
	defer shutdown()

	readyCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := router.WaitReady(readyCtx); err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(router.Mux())
	defer front.Close()

	client := front.Client()
	for i := 0; i < 6; i++ {
		if err := classifyOK(client, front.URL); err != nil {
			t.Fatalf("pre-kill request %d: %v", i, err)
		}
	}

	// SIGKILL one worker — no drain, no warning, like an OOM kill. Traffic
	// must keep succeeding throughout (failover covers the gap until the
	// supervisor's respawn rejoins).
	victim := router.shards[0].currentProc()
	oldURL := router.shards[0].base()
	if err := victim.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "victim reaped", victim.exited)
	for i := 0; i < 6; i++ {
		if err := classifyOK(client, front.URL); err != nil {
			t.Fatalf("post-kill request %d: %v", i, err)
		}
	}

	// Self-healing: the fleet returns to 2 serving shards on its own.
	waitFor(t, "killed worker respawned and re-admitted", func() bool {
		rep := router.Report(context.Background())
		return rep.Shards[0].Restarts >= 1 && rep.Shards[0].Healthy && rep.Shards[1].Healthy
	})
	if np := router.shards[0].currentProc(); np == victim {
		t.Fatal("shard 0 still holds the killed process")
	}
	if router.shards[0].base() == oldURL {
		t.Logf("respawned worker reused %s (kernel handed the port back)", oldURL)
	}
	for i := 0; i < 6; i++ {
		if err := classifyOK(client, front.URL); err != nil {
			t.Fatalf("post-respawn request %d: %v", i, err)
		}
	}

	// Both shards carry stats again, the aggregate covers the whole fleet,
	// and the fleet latency quantiles come from merged histograms.
	rep := router.Report(context.Background())
	for _, s := range rep.Shards {
		if s.Stats == nil {
			t.Fatalf("shard %d has no stats after recovery: %s", s.ID, s.Error)
		}
	}
	if rep.Aggregate.Shards != 2 {
		t.Fatalf("aggregate shard count %d, want 2", rep.Aggregate.Shards)
	}
	if rep.Aggregate.LatencyHist == nil ||
		rep.Aggregate.LatencyHist.Count() != rep.Aggregate.Completed {
		t.Fatalf("aggregate histogram missing or inconsistent: hist=%v completed=%d",
			rep.Aggregate.LatencyHist, rep.Aggregate.Completed)
	}

	// Clean SIGTERM drain of both (respawned) workers.
	if err := shutdown(); err != nil {
		t.Fatalf("fleet shutdown: %v", err)
	}
	for i, s := range router.shards {
		proc := s.currentProc()
		waitFor(t, "worker exited", proc.exited)
		if err := proc.waitError(); err != nil {
			t.Fatalf("worker %d exit status: %v", i, err)
		}
	}
}
