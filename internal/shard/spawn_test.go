package shard

import (
	"context"
	"net/http/httptest"
	"os/exec"
	"path/filepath"
	"testing"
	"time"
)

// TestSpawnSupervisesRealWorkers is the process-level end of the failover
// story: the router builds and spawns two real hybridnetd demo workers,
// learns their kernel-assigned ports from the stdout report, serves through
// them, survives a SIGKILL of one, and SIGTERM-drains the rest on shutdown.
func TestSpawnSupervisesRealWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real worker processes")
	}
	bin := filepath.Join(t.TempDir(), "hybridnetd")
	build := exec.Command("go", "build", "-o", bin, "repro/cmd/hybridnetd")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build hybridnetd: %v\n%s", err, out)
	}

	cfg := testConfig(t)
	router, err := Spawn(bin, 2, []string{"-demo", "-size", "32"}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	shutdown := func() error {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		return router.Shutdown(ctx)
	}
	defer shutdown()

	readyCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := router.WaitReady(readyCtx); err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(router.Mux())
	defer front.Close()

	client := front.Client()
	for i := 0; i < 6; i++ {
		if err := classifyOK(client, front.URL); err != nil {
			t.Fatalf("pre-kill request %d: %v", i, err)
		}
	}

	// SIGKILL one worker — no drain, no warning, like an OOM kill.
	victim := router.shards[0].proc
	if err := victim.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "victim reaped", victim.exited)
	for i := 0; i < 6; i++ {
		if err := classifyOK(client, front.URL); err != nil {
			t.Fatalf("post-kill request %d: %v", i, err)
		}
	}
	waitFor(t, "breaker open on killed worker", func() bool {
		rep := router.Report(context.Background())
		return !rep.Shards[0].Healthy
	})

	// The survivor's stats carry the whole fleet's aggregate now.
	rep := router.Report(context.Background())
	if rep.Shards[1].Stats == nil {
		t.Fatalf("surviving shard has no stats: %s", rep.Shards[1].Error)
	}
	if rep.Aggregate.Completed < 6 || rep.Aggregate.Completed != rep.Shards[1].Stats.Completed {
		t.Fatalf("aggregate completed %d, survivor completed %d",
			rep.Aggregate.Completed, rep.Shards[1].Stats.Completed)
	}

	// Clean SIGTERM drain of the survivor; the dead worker drains trivially.
	if err := shutdown(); err != nil {
		t.Fatalf("fleet shutdown: %v", err)
	}
	waitFor(t, "survivor exited", router.shards[1].proc.exited)
	if err := router.shards[1].proc.waitError(); err != nil {
		t.Fatalf("survivor exit status: %v", err)
	}
}
