package shape

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func TestDilateGrowsBlob(t *testing.T) {
	m := tensor.MustNew(5, 5)
	m.Set(1, 2, 2)
	d, err := Dilate(m, 1)
	if err != nil {
		t.Fatal(err)
	}
	// A single pixel dilates to a 3×3 block.
	if d.Sum() != 9 {
		t.Errorf("dilated mass = %v, want 9", d.Sum())
	}
	for y := 1; y <= 3; y++ {
		for x := 1; x <= 3; x++ {
			if d.At(y, x) != 1 {
				t.Errorf("dilated (%d,%d) = %v", y, x, d.At(y, x))
			}
		}
	}
	// r = 0 is the identity (a copy).
	id, err := Dilate(m, 0)
	if err != nil || !id.Equal(m) {
		t.Error("r=0 dilation should be identity")
	}
	id.Set(1, 0, 0)
	if m.At(0, 0) != 0 {
		t.Error("r=0 dilation must copy, not alias")
	}
}

func TestErodeShrinksBlob(t *testing.T) {
	m := tensor.MustNew(7, 7)
	for y := 2; y <= 4; y++ {
		for x := 2; x <= 4; x++ {
			m.Set(1, y, x)
		}
	}
	e, err := Erode(m, 1)
	if err != nil {
		t.Fatal(err)
	}
	// A 3×3 block erodes to its centre.
	if e.Sum() != 1 || e.At(3, 3) != 1 {
		t.Errorf("eroded mass = %v", e.Sum())
	}
}

func TestMorphologyValidation(t *testing.T) {
	if _, err := Dilate(tensor.MustNew(4), 1); err == nil {
		t.Error("rank-1 dilate should fail")
	}
	if _, err := Erode(tensor.MustNew(2, 2), -1); err == nil {
		t.Error("negative radius should fail")
	}
	if _, err := FillHoles(tensor.MustNew(4)); err == nil {
		t.Error("rank-1 fill should fail")
	}
}

func TestFillHolesClosedRing(t *testing.T) {
	// A closed square ring: the interior fills, the exterior does not.
	m := tensor.MustNew(9, 9)
	for i := 2; i <= 6; i++ {
		m.Set(1, 2, i)
		m.Set(1, 6, i)
		m.Set(1, i, 2)
		m.Set(1, i, 6)
	}
	f, err := FillHoles(m)
	if err != nil {
		t.Fatal(err)
	}
	if f.At(4, 4) != 1 {
		t.Error("interior should be filled")
	}
	if f.At(0, 0) != 0 || f.At(8, 8) != 0 {
		t.Error("exterior should stay empty")
	}
	// 5×5 solid block = 25 pixels.
	if f.Sum() != 25 {
		t.Errorf("filled mass = %v, want 25", f.Sum())
	}
}

func TestFillHolesOpenRingLeaks(t *testing.T) {
	// Break the ring: the "interior" connects to the border and must NOT
	// fill (this is what the dilation step in QualifyEdgeMap guards).
	m := tensor.MustNew(9, 9)
	for i := 2; i <= 6; i++ {
		m.Set(1, 2, i)
		m.Set(1, 6, i)
		m.Set(1, i, 2)
		m.Set(1, i, 6)
	}
	m.Set(0, 4, 2) // gap
	f, err := FillHoles(m)
	if err != nil {
		t.Fatal(err)
	}
	if f.At(4, 4) != 0 {
		t.Error("open ring interior should leak to the border")
	}
}

func TestColorfulness(t *testing.T) {
	img := tensor.MustNew(3, 1, 2)
	// Pixel 0: saturated red → range 0.8; pixel 1: grey → range 0.
	img.Set3(0.9, 0, 0, 0)
	img.Set3(0.1, 1, 0, 0)
	img.Set3(0.1, 2, 0, 0)
	img.Set3(0.5, 0, 0, 1)
	img.Set3(0.5, 1, 0, 1)
	img.Set3(0.5, 2, 0, 1)
	c, err := Colorfulness(img)
	if err != nil {
		t.Fatal(err)
	}
	if diff := float64(c.At(0, 0)) - 0.8; diff > 1e-6 || diff < -1e-6 {
		t.Errorf("saturated pixel = %v, want 0.8", c.At(0, 0))
	}
	if c.At(0, 1) != 0 {
		t.Errorf("grey pixel = %v, want 0", c.At(0, 1))
	}
	if _, err := Colorfulness(tensor.MustNew(2, 2, 2)); err == nil {
		t.Error("2-channel image should fail")
	}
	if _, err := Colorfulness(tensor.MustNew(4)); err == nil {
		t.Error("rank-1 image should fail")
	}
}

// Property: dilation never removes pixels; erosion never adds them; both are
// monotone in mass.
func TestQuickMorphologyMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := tensor.MustNew(8, 8)
		for i := range m.Data() {
			if r.Float32() < 0.3 {
				m.Data()[i] = 1
			}
		}
		d, err := Dilate(m, 1)
		if err != nil {
			return false
		}
		e, err := Erode(m, 1)
		if err != nil {
			return false
		}
		for i := range m.Data() {
			if m.Data()[i] == 1 && d.Data()[i] != 1 {
				return false // dilation removed a pixel
			}
			if m.Data()[i] == 0 && e.Data()[i] != 0 {
				return false // erosion added a pixel
			}
		}
		return true
	}
	_ = rng
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: FillHoles is idempotent and never removes foreground.
func TestQuickFillHolesIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := tensor.MustNew(8, 8)
		for i := range m.Data() {
			if r.Float32() < 0.4 {
				m.Data()[i] = 1
			}
		}
		f1, err := FillHoles(m)
		if err != nil {
			return false
		}
		f2, err := FillHoles(f1)
		if err != nil {
			return false
		}
		if !f1.Equal(f2) {
			return false
		}
		for i := range m.Data() {
			if m.Data()[i] == 1 && f1.Data()[i] != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
