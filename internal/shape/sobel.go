// Package shape implements the deterministic qualifier substrate of the
// hybrid CNN: Sobel edge detection, binary segmentation, contour tracing,
// the centroid-to-edge radial time series of Figure 3, and SAX-template
// shape classification. Every routine is a bounded surrogate function in the
// paper's sense — its output range can be determined a priori, "producing
// deterministic results that are fully explainable, for instance during a
// safety certification process".
package shape

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// SobelX3 returns the classic 3×3 horizontal-gradient Sobel kernel.
func SobelX3() *tensor.Tensor {
	return tensor.MustFromSlice([]float32{
		-1, 0, 1,
		-2, 0, 2,
		-1, 0, 1,
	}, 3, 3)
}

// SobelY3 returns the classic 3×3 vertical-gradient Sobel kernel.
func SobelY3() *tensor.Tensor {
	return tensor.MustFromSlice([]float32{
		-1, -2, -1,
		0, 0, 0,
		1, 2, 1,
	}, 3, 3)
}

// binomialRow returns the n-tap binomial smoothing vector (Pascal row),
// the building block of extended Sobel kernels.
func binomialRow(n int) []float64 {
	row := make([]float64, n)
	row[0] = 1
	for i := 1; i < n; i++ {
		for j := i; j > 0; j-- {
			row[j] += row[j-1]
		}
	}
	return row
}

// derivativeRow returns the n-tap central-difference derivative vector
// obtained by convolving the 2-tap derivative [-1, +1] with a binomial
// smoother, the standard construction of extended Sobel operators.
func derivativeRow(n int) []float64 {
	if n == 2 {
		return []float64{-1, 1}
	}
	base := derivativeRow(n - 1)
	out := make([]float64, n)
	for i, v := range base {
		out[i] += v
		out[i+1] += v
	}
	return out
}

// SobelX returns an n×n extended Sobel-x kernel (n odd, n ≥ 3): the outer
// product of an n-tap binomial smoother (columns) and an n-tap derivative
// (rows). SobelX(3) equals the classic kernel up to scale; kernels are
// normalised so the sum of positive entries is +2, matching the classic
// kernel's gain, which keeps the response magnitude comparable across sizes.
//
// The paper replaces 11×11 AlexNet filters with "a Sobel filter"; this
// constructor produces that 11×11 (or any odd-size) instantiation.
func SobelX(n int) (*tensor.Tensor, error) {
	if n < 3 || n%2 == 0 {
		return nil, fmt.Errorf("shape: Sobel size %d must be odd and >= 3", n)
	}
	smooth := binomialRow(n)
	deriv := derivativeRow(n)
	k := tensor.MustNew(n, n)
	var posSum float64
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			v := smooth[y] * deriv[x]
			k.Set(float32(v), y, x)
			if v > 0 {
				posSum += v
			}
		}
	}
	if posSum > 0 {
		k.Scale(float32(2 / posSum))
	}
	return k, nil
}

// SobelY returns the n×n extended Sobel-y kernel (the transpose of SobelX).
func SobelY(n int) (*tensor.Tensor, error) {
	kx, err := SobelX(n)
	if err != nil {
		return nil, err
	}
	ky := tensor.MustNew(n, n)
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			ky.Set(kx.At(x, y), y, x)
		}
	}
	return ky, nil
}

// Grayscale converts a 3×H×W RGB tensor (or passes through a 1×H×W or H×W
// tensor) to an H×W luminance tensor using the Rec. 601 weights.
func Grayscale(img *tensor.Tensor) (*tensor.Tensor, error) {
	switch img.Rank() {
	case 2:
		return img.Clone(), nil
	case 3:
		c, h, w := img.Dim(0), img.Dim(1), img.Dim(2)
		out := tensor.MustNew(h, w)
		switch c {
		case 1:
			copy(out.Data(), img.Data())
			return out, nil
		case 3:
			for y := 0; y < h; y++ {
				for x := 0; x < w; x++ {
					v := 0.299*img.At3(0, y, x) + 0.587*img.At3(1, y, x) + 0.114*img.At3(2, y, x)
					out.Set(v, y, x)
				}
			}
			return out, nil
		default:
			return nil, fmt.Errorf("shape: grayscale needs 1 or 3 channels, got %d", c)
		}
	default:
		return nil, fmt.Errorf("shape: grayscale needs rank 2 or 3, got rank %d", img.Rank())
	}
}

// Convolve2D convolves an H×W image with a k×k kernel ("same" output size,
// zero padding). It is a plain reference implementation — the reliable
// variant lives in internal/reliable.
func Convolve2D(img, kernel *tensor.Tensor) (*tensor.Tensor, error) {
	if img.Rank() != 2 || kernel.Rank() != 2 {
		return nil, fmt.Errorf("shape: convolve needs rank-2 image and kernel")
	}
	h, w := img.Dim(0), img.Dim(1)
	kh, kw := kernel.Dim(0), kernel.Dim(1)
	out := tensor.MustNew(h, w)
	oy, ox := kh/2, kw/2
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			var acc float32
			for ky := 0; ky < kh; ky++ {
				iy := y + ky - oy
				if iy < 0 || iy >= h {
					continue
				}
				for kx := 0; kx < kw; kx++ {
					ix := x + kx - ox
					if ix < 0 || ix >= w {
						continue
					}
					acc += img.At(iy, ix) * kernel.At(ky, kx)
				}
			}
			out.Set(acc, y, x)
		}
	}
	return out, nil
}

// EdgeMagnitude returns the Sobel gradient magnitude sqrt(gx²+gy²) of a
// grayscale image, the edge map the SAX qualifier consumes.
func EdgeMagnitude(gray *tensor.Tensor) (*tensor.Tensor, error) {
	gx, err := Convolve2D(gray, SobelX3())
	if err != nil {
		return nil, fmt.Errorf("shape: sobel x: %w", err)
	}
	gy, err := Convolve2D(gray, SobelY3())
	if err != nil {
		return nil, fmt.Errorf("shape: sobel y: %w", err)
	}
	out := tensor.MustNew(gray.Dim(0), gray.Dim(1))
	gxd, gyd, od := gx.Data(), gy.Data(), out.Data()
	for i := range od {
		od[i] = float32(math.Hypot(float64(gxd[i]), float64(gyd[i])))
	}
	return out, nil
}
