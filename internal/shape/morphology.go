package shape

import (
	"fmt"

	"repro/internal/tensor"
)

// Dilate returns the binary mask dilated by a 3×3 structuring element
// applied r times. Dilation closes small gaps in edge rings before hole
// filling.
func Dilate(mask *tensor.Tensor, r int) (*tensor.Tensor, error) {
	return morph(mask, r, true)
}

// Erode returns the binary mask eroded by a 3×3 structuring element applied
// r times (the inverse step of a morphological closing).
func Erode(mask *tensor.Tensor, r int) (*tensor.Tensor, error) {
	return morph(mask, r, false)
}

func morph(mask *tensor.Tensor, r int, dilate bool) (*tensor.Tensor, error) {
	if mask.Rank() != 2 {
		return nil, fmt.Errorf("shape: morphology needs rank-2 mask, got rank %d", mask.Rank())
	}
	if r < 0 {
		return nil, fmt.Errorf("shape: morphology radius %d must be >= 0", r)
	}
	cur := mask.Clone()
	h, w := mask.Dim(0), mask.Dim(1)
	for it := 0; it < r; it++ {
		next := tensor.MustNew(h, w)
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				hit := !dilate // erode: assume kept until a zero neighbour
				for dy := -1; dy <= 1; dy++ {
					for dx := -1; dx <= 1; dx++ {
						ny, nx := y+dy, x+dx
						inside := ny >= 0 && ny < h && nx >= 0 && nx < w
						var v float32
						if inside {
							v = cur.At(ny, nx)
						}
						if dilate && v != 0 {
							hit = true
						}
						if !dilate && v == 0 {
							hit = false
						}
					}
				}
				if hit {
					next.Set(1, y, x)
				}
			}
		}
		cur = next
	}
	return cur, nil
}

// FillHoles returns the mask with every background region NOT connected to
// the image border filled in — turning a closed edge ring into a solid
// blob. 4-connectivity on the background.
func FillHoles(mask *tensor.Tensor) (*tensor.Tensor, error) {
	if mask.Rank() != 2 {
		return nil, fmt.Errorf("shape: fill holes needs rank-2 mask, got rank %d", mask.Rank())
	}
	h, w := mask.Dim(0), mask.Dim(1)
	outside := make([]bool, h*w)
	var queue []int
	push := func(y, x int) {
		i := y*w + x
		if y >= 0 && y < h && x >= 0 && x < w && !outside[i] && mask.At(y, x) == 0 {
			outside[i] = true
			queue = append(queue, i)
		}
	}
	for x := 0; x < w; x++ {
		push(0, x)
		push(h-1, x)
	}
	for y := 0; y < h; y++ {
		push(y, 0)
		push(y, w-1)
	}
	for len(queue) > 0 {
		p := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		py, px := p/w, p%w
		push(py-1, px)
		push(py+1, px)
		push(py, px-1)
		push(py, px+1)
	}
	out := tensor.MustNew(h, w)
	for i := range outside {
		if !outside[i] {
			out.Data()[i] = 1
		}
	}
	return out, nil
}

// Colorfulness returns the per-pixel channel range (max − min) of a 3×H×W
// RGB image — a saturation measure that separates the strongly coloured sign
// face from grey backgrounds and clutter far more reliably than luminance.
func Colorfulness(img *tensor.Tensor) (*tensor.Tensor, error) {
	if img.Rank() != 3 || img.Dim(0) != 3 {
		return nil, fmt.Errorf("shape: colorfulness needs a 3×H×W image, got %v", img.Shape())
	}
	h, w := img.Dim(1), img.Dim(2)
	out := tensor.MustNew(h, w)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			r := img.At3(0, y, x)
			g := img.At3(1, y, x)
			b := img.At3(2, y, x)
			mx, mn := r, r
			if g > mx {
				mx = g
			}
			if g < mn {
				mn = g
			}
			if b > mx {
				mx = b
			}
			if b < mn {
				mn = b
			}
			out.Set(mx-mn, y, x)
		}
	}
	return out, nil
}
