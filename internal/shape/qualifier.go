package shape

import (
	"fmt"
	"math"

	"repro/internal/sax"
	"repro/internal/tensor"
)

// Class is the deterministic shape taxonomy of the qualifier. A diamond
// (rotated square) is radially indistinguishable from a square, so both map
// to ClassSquare; the safety argument of the paper only needs the octagon to
// be uniquely identifiable.
type Class int

// Shape classes. Start at 1 so the zero value is distinguishable from a
// deliberate "unknown" verdict.
const (
	ClassUnknown Class = iota + 1
	ClassCircle
	ClassTriangle
	ClassSquare
	ClassOctagon
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case ClassUnknown:
		return "unknown"
	case ClassCircle:
		return "circle"
	case ClassTriangle:
		return "triangle"
	case ClassSquare:
		return "square"
	case ClassOctagon:
		return "octagon"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// PolygonRadialSeries returns the analytic centroid-to-edge distance series
// of a regular k-gon with circumradius r, sampled at n equally spaced
// angles with the given angular offset (radians). It is the ground-truth
// template generator for the qualifier and for tests.
func PolygonRadialSeries(k, n int, r, offset float64) ([]float64, error) {
	if k < 3 {
		return nil, fmt.Errorf("shape: polygon needs k >= 3, got %d", k)
	}
	if n < 4 {
		return nil, fmt.Errorf("shape: series needs n >= 4, got %d", n)
	}
	if r <= 0 {
		return nil, fmt.Errorf("shape: radius %v must be positive", r)
	}
	series := make([]float64, n)
	sector := 2 * math.Pi / float64(k)
	apothem := r * math.Cos(math.Pi/float64(k))
	for i := 0; i < n; i++ {
		theta := 2*math.Pi*float64(i)/float64(n) + offset
		// Angle within the sector, measured from the sector's mid-edge.
		a := math.Mod(theta, sector)
		if a < 0 {
			a += sector
		}
		a -= sector / 2
		series[i] = apothem / math.Cos(a)
	}
	return series, nil
}

// CircleRadialSeries returns the constant series of a circle of radius r.
func CircleRadialSeries(n int, r float64) ([]float64, error) {
	if n < 4 {
		return nil, fmt.Errorf("shape: series needs n >= 4, got %d", n)
	}
	if r <= 0 {
		return nil, fmt.Errorf("shape: radius %v must be positive", r)
	}
	series := make([]float64, n)
	for i := range series {
		series[i] = r
	}
	return series, nil
}

// QualifierConfig parameterises the deterministic shape qualifier. The zero
// value is not usable; use DefaultQualifierConfig.
type QualifierConfig struct {
	// SeriesLen is the length of the radial time series (Figure 3 uses a
	// series long enough to show eight clear corners; 128 here).
	SeriesLen int
	// WordLen and Alphabet parameterise the SAX encoder.
	WordLen  int
	Alphabet int
	// SmoothWindow is the circular moving-average window applied to the
	// series before corner counting (odd).
	SmoothWindow int
	// Roundness is the (max−min)/mean ratio below which the blob is
	// declared a circle.
	Roundness float64
	// PeakFraction scales peak prominence: a corner must rise at least
	// PeakFraction × (max − mean) above the mean.
	PeakFraction float64
	// MaxWordDist is the maximum rotation-invariant MINDIST to a class
	// template for the SAX confirmation to pass. MINDIST charges nothing
	// for adjacent symbols, which makes the gate robust to PAA phase
	// aliasing while still rejecting grossly different series.
	MaxWordDist float64
}

// DefaultQualifierConfig returns the configuration used throughout the
// experiments.
func DefaultQualifierConfig() QualifierConfig {
	return QualifierConfig{
		SeriesLen:    128,
		WordLen:      16,
		Alphabet:     4,
		SmoothWindow: 3,
		// A regular octagon's radial series has (max−min)/mean ≈ 0.08, so
		// the circle cut-off must sit well below it; rasterised discs
		// measure ≈ 0.02–0.03 after smoothing.
		Roundness:    0.04,
		PeakFraction: 0.12,
		MaxWordDist:  3.0,
	}
}

// Result is the qualifier's verdict on one image. It retains the
// intermediate artefacts (series, word, peaks) because they are exactly what
// a certification reviewer would want to inspect — and what Figure 3 plots.
type Result struct {
	Class    Class
	Peaks    int
	Series   []float64
	Word     sax.Word
	WordDist float64 // rotation-invariant MINDIST to the class template
	Area     int     // pixels in the segmented blob
	Round    float64 // (max−min)/mean of the smoothed series
}

// Qualifier is the reliably executable shape-recognition block of Figures 1
// and 2: a bounded, deterministic surrogate function from image to shape
// class. It holds no mutable state after construction and is safe for
// concurrent use.
type Qualifier struct {
	cfg       QualifierConfig
	enc       *sax.Encoder
	templates map[Class]sax.Word
}

// NewQualifier builds a qualifier with analytic templates for the circle,
// triangle, square and octagon classes.
func NewQualifier(cfg QualifierConfig) (*Qualifier, error) {
	if cfg.SeriesLen < 16 {
		return nil, fmt.Errorf("shape: series length %d too short", cfg.SeriesLen)
	}
	if cfg.SmoothWindow < 1 || cfg.SmoothWindow%2 == 0 {
		return nil, fmt.Errorf("shape: smooth window %d must be odd and >= 1", cfg.SmoothWindow)
	}
	if cfg.Roundness <= 0 || cfg.PeakFraction <= 0 {
		return nil, fmt.Errorf("shape: roundness and peak fraction must be positive")
	}
	enc, err := sax.NewEncoder(cfg.WordLen, cfg.Alphabet)
	if err != nil {
		return nil, fmt.Errorf("shape: qualifier encoder: %w", err)
	}
	q := &Qualifier{cfg: cfg, enc: enc, templates: make(map[Class]sax.Word, 4)}
	for _, tc := range []struct {
		class Class
		k     int
	}{
		{ClassTriangle, 3}, {ClassSquare, 4}, {ClassOctagon, 8},
	} {
		series, err := PolygonRadialSeries(tc.k, cfg.SeriesLen, 1, 0)
		if err != nil {
			return nil, err
		}
		w, err := enc.Encode(series)
		if err != nil {
			return nil, fmt.Errorf("shape: template %v: %w", tc.class, err)
		}
		q.templates[tc.class] = w
	}
	// Circle template: flat series encodes to the mid symbol everywhere.
	circle, err := CircleRadialSeries(cfg.SeriesLen, 1)
	if err != nil {
		return nil, err
	}
	w, err := enc.Encode(circle)
	if err != nil {
		return nil, err
	}
	q.templates[ClassCircle] = w
	return q, nil
}

// Template returns the SAX template word of a class (zero Word when absent).
func (q *Qualifier) Template(c Class) sax.Word { return q.templates[c] }

// Encoder exposes the qualifier's SAX encoder (shared, read-only use).
func (q *Qualifier) Encoder() *sax.Encoder { return q.enc }

// ClassifySeries runs the decision procedure on a raw radial series:
// smooth, measure roundness, count corners, then confirm with the SAX
// template. The verdict is conservative: any disagreement yields
// ClassUnknown — for a safety qualifier a false "unknown" merely withholds
// qualification, whereas a false positive would defeat the guarantee.
func (q *Qualifier) ClassifySeries(series []float64) (Result, error) {
	var res Result
	res.Class = ClassUnknown
	if len(series) != q.cfg.SeriesLen {
		return res, fmt.Errorf("shape: series length %d != configured %d", len(series), q.cfg.SeriesLen)
	}
	sm, err := SmoothCircular(series, q.cfg.SmoothWindow)
	if err != nil {
		return res, err
	}
	res.Series = sm
	word, err := q.enc.Encode(sm)
	if err != nil {
		return res, err
	}
	res.Word = word

	mn, mx, mean := sm[0], sm[0], 0.0
	for _, v := range sm {
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
		mean += v
	}
	mean /= float64(len(sm))
	if mean <= 0 {
		return res, fmt.Errorf("shape: non-positive mean radius")
	}
	res.Round = (mx - mn) / mean
	if res.Round < q.cfg.Roundness {
		res.Class = ClassCircle
		res.Peaks = 0
		return res, nil
	}

	prom := q.cfg.PeakFraction * (mx - mean)
	spacing := q.cfg.SeriesLen / 20 // octagon corners are SeriesLen/8 apart
	peaks, err := CountPeaks(sm, prom, spacing)
	if err != nil {
		return res, err
	}
	res.Peaks = peaks
	candidate := ClassUnknown
	switch peaks {
	case 3:
		candidate = ClassTriangle
	case 4:
		candidate = ClassSquare
	case 8:
		candidate = ClassOctagon
	}
	if candidate == ClassUnknown {
		return res, nil
	}
	// SAX confirmation: the cheap string comparison of the paper.
	dist, err := q.enc.MinRotationMinDist(word, q.templates[candidate], q.cfg.SeriesLen)
	if err != nil {
		return res, err
	}
	res.WordDist = dist
	if dist <= q.cfg.MaxWordDist {
		res.Class = candidate
	}
	return res, nil
}

// QualifyImage runs the full qualifier pipeline on a 3×H×W RGB (or H×W
// grayscale) image. RGB images are segmented on the colourfulness channel
// (traffic-sign faces are saturated; grey backgrounds and clutter are not);
// grayscale images fall back to luminance. The segmented mask is hole-filled
// before the geometric pipeline runs.
func (q *Qualifier) QualifyImage(img *tensor.Tensor) (Result, error) {
	var res Result
	res.Class = ClassUnknown
	var salient *tensor.Tensor
	var err error
	if img.Rank() == 3 && img.Dim(0) == 3 {
		salient, err = Colorfulness(img)
	} else {
		salient, err = Grayscale(img)
	}
	if err != nil {
		return res, err
	}
	thresh, err := OtsuThreshold(salient)
	if err != nil {
		return res, err
	}
	bin, err := Binarize(salient, thresh)
	if err != nil {
		return res, err
	}
	filled, err := FillHoles(bin)
	if err != nil {
		return res, err
	}
	return q.qualifyMask(filled)
}

// QualifyEdgeMap runs the qualifier on an edge-magnitude map (the output of
// the Sobel-initialised DCNN channels): the edge map is thresholded, the
// ring is closed with one dilation, its interior filled, and the resulting
// solid blob classified. This is the Figure 2 data path, where the qualifier
// consumes the reliably executed convolution output rather than the raw
// image; the morphological closing makes it robust to small breaks in the
// edge ring.
func (q *Qualifier) QualifyEdgeMap(edges *tensor.Tensor) (Result, error) {
	var res Result
	res.Class = ClassUnknown
	if edges.Rank() != 2 {
		return res, fmt.Errorf("shape: edge map must be rank 2, got rank %d", edges.Rank())
	}
	// Normalise to [0,1] before Otsu.
	mx := edges.Max()
	norm := edges.Clone()
	if mx > 0 {
		norm.Scale(1 / mx)
	}
	// Zero a small border margin: zero-padded convolutions produce strong
	// spurious gradients along the frame, which would otherwise survive
	// thresholding, enclose the frame after closing, and flood the fill.
	const margin = 2
	h, w := norm.Dim(0), norm.Dim(1)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if y < margin || y >= h-margin || x < margin || x >= w-margin {
				norm.Set(0, y, x)
			}
		}
	}
	thresh, err := OtsuThreshold(norm)
	if err != nil {
		return res, err
	}
	bin, err := Binarize(norm, thresh)
	if err != nil {
		return res, err
	}
	closed, err := Dilate(bin, 1)
	if err != nil {
		return res, err
	}
	filled, err := FillHoles(closed)
	if err != nil {
		return res, err
	}
	// Undo the dilation so the blob geometry matches the true outline.
	solid, err := Erode(filled, 1)
	if err != nil {
		return res, err
	}
	return q.qualifyMask(solid)
}

// qualifyMask runs the geometric pipeline (largest component, centroid,
// boundary trace, radial series, series classification) on a binary
// foreground mask.
func (q *Qualifier) qualifyMask(mask *tensor.Tensor) (Result, error) {
	var res Result
	res.Class = ClassUnknown
	blob, area, err := LargestComponent(mask)
	if err != nil {
		return res, err
	}
	res.Area = area
	if area < 16 {
		return res, nil // nothing segmentable: withhold qualification
	}
	cx, cy, err := Centroid(blob)
	if err != nil {
		return res, err
	}
	contour, err := BoundaryTrace(blob)
	if err != nil {
		return res, err
	}
	series, err := RadialSeries(contour, cx, cy, q.cfg.SeriesLen)
	if err != nil {
		return res, err
	}
	out, err := q.ClassifySeries(series)
	out.Area = area
	return out, err
}
