package shape

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// Point is an integer pixel coordinate (x right, y down).
type Point struct {
	X, Y int
}

// Binarize thresholds a grayscale image: pixels > thresh become 1, the rest
// 0.
func Binarize(gray *tensor.Tensor, thresh float32) (*tensor.Tensor, error) {
	if gray.Rank() != 2 {
		return nil, fmt.Errorf("shape: binarize needs rank-2 image, got rank %d", gray.Rank())
	}
	out := gray.Clone()
	out.Apply(func(v float32) float32 {
		if v > thresh {
			return 1
		}
		return 0
	})
	return out, nil
}

// OtsuThreshold computes Otsu's optimal global threshold of a grayscale
// image whose values lie in [0, 1], using a 256-bin histogram. It makes the
// qualifier robust to the brightness variation of the synthetic dataset.
func OtsuThreshold(gray *tensor.Tensor) (float32, error) {
	if gray.Rank() != 2 {
		return 0, fmt.Errorf("shape: otsu needs rank-2 image, got rank %d", gray.Rank())
	}
	const bins = 256
	var hist [bins]int
	data := gray.Data()
	if len(data) == 0 {
		return 0, fmt.Errorf("shape: otsu of empty image")
	}
	for _, v := range data {
		b := int(v * (bins - 1))
		if b < 0 {
			b = 0
		}
		if b >= bins {
			b = bins - 1
		}
		hist[b]++
	}
	total := len(data)
	var sumAll float64
	for i, c := range hist {
		sumAll += float64(i) * float64(c)
	}
	var sumB, wB float64
	bestVar, bestT := -1.0, 0
	for t := 0; t < bins; t++ {
		wB += float64(hist[t])
		if wB == 0 {
			continue
		}
		wF := float64(total) - wB
		if wF == 0 {
			break
		}
		sumB += float64(t) * float64(hist[t])
		mB := sumB / wB
		mF := (sumAll - sumB) / wF
		between := wB * wF * (mB - mF) * (mB - mF)
		if between > bestVar {
			bestVar = between
			bestT = t
		}
	}
	// Split in the middle of the winning bin so that values quantised into
	// bin bestT land strictly below the threshold.
	return (float32(bestT) + 0.5) / (bins - 1), nil
}

// LargestComponent returns a mask containing only the largest 4-connected
// component of nonzero pixels in the binary image, together with its pixel
// count. It isolates the sign blob from background clutter.
func LargestComponent(bin *tensor.Tensor) (*tensor.Tensor, int, error) {
	if bin.Rank() != 2 {
		return nil, 0, fmt.Errorf("shape: components need rank-2 image, got rank %d", bin.Rank())
	}
	h, w := bin.Dim(0), bin.Dim(1)
	labels := make([]int, h*w)
	next := 0
	bestLabel, bestSize := -1, 0
	var queue []int
	for start := 0; start < h*w; start++ {
		if bin.Data()[start] == 0 || labels[start] != 0 {
			continue
		}
		next++
		size := 0
		queue = append(queue[:0], start)
		labels[start] = next
		for len(queue) > 0 {
			p := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			size++
			py, px := p/w, p%w
			for _, d := range [4][2]int{{0, 1}, {0, -1}, {1, 0}, {-1, 0}} {
				ny, nx := py+d[0], px+d[1]
				if ny < 0 || ny >= h || nx < 0 || nx >= w {
					continue
				}
				q := ny*w + nx
				if bin.Data()[q] != 0 && labels[q] == 0 {
					labels[q] = next
					queue = append(queue, q)
				}
			}
		}
		if size > bestSize {
			bestSize, bestLabel = size, next
		}
	}
	out := tensor.MustNew(h, w)
	if bestLabel < 0 {
		return out, 0, nil
	}
	for i, l := range labels {
		if l == bestLabel {
			out.Data()[i] = 1
		}
	}
	return out, bestSize, nil
}

// Centroid returns the centre of mass of the nonzero pixels of a binary
// mask. It returns an error if the mask is empty.
func Centroid(mask *tensor.Tensor) (cx, cy float64, err error) {
	if mask.Rank() != 2 {
		return 0, 0, fmt.Errorf("shape: centroid needs rank-2 mask, got rank %d", mask.Rank())
	}
	h, w := mask.Dim(0), mask.Dim(1)
	var sx, sy, n float64
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if mask.At(y, x) != 0 {
				sx += float64(x)
				sy += float64(y)
				n++
			}
		}
	}
	if n == 0 {
		return 0, 0, fmt.Errorf("shape: centroid of empty mask")
	}
	return sx / n, sy / n, nil
}

// mooreOffsets are the 8-neighbourhood in clockwise order starting east.
var mooreOffsets = [8][2]int{
	{1, 0}, {1, 1}, {0, 1}, {-1, 1}, {-1, 0}, {-1, -1}, {0, -1}, {1, -1},
}

// BoundaryTrace returns the closed outer boundary of the largest blob in a
// binary mask using Moore-neighbour tracing with Jacob's stopping criterion.
// The mask should contain a single component (use LargestComponent first).
func BoundaryTrace(mask *tensor.Tensor) ([]Point, error) {
	if mask.Rank() != 2 {
		return nil, fmt.Errorf("shape: boundary trace needs rank-2 mask, got rank %d", mask.Rank())
	}
	h, w := mask.Dim(0), mask.Dim(1)
	at := func(x, y int) bool {
		return x >= 0 && x < w && y >= 0 && y < h && mask.At(y, x) != 0
	}
	// Find the top-most, left-most foreground pixel (raster scan order).
	startX, startY := -1, -1
scan:
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if at(x, y) {
				startX, startY = x, y
				break scan
			}
		}
	}
	if startX < 0 {
		return nil, fmt.Errorf("shape: boundary trace of empty mask")
	}
	// Single-pixel blob.
	alone := true
	for _, d := range mooreOffsets {
		if at(startX+d[0], startY+d[1]) {
			alone = false
			break
		}
	}
	if alone {
		return []Point{{startX, startY}}, nil
	}

	contour := make([]Point, 0, 4*(h+w))
	cur := Point{startX, startY}
	contour = append(contour, cur)
	// The raster scan entered the start pixel from the west; begin the
	// neighbourhood search there (index 6 is west; start one past it).
	dir := 6
	maxSteps := 4 * h * w // safety bound; a contour cannot be longer
	for step := 0; step < maxSteps; step++ {
		found := false
		for i := 0; i < 8; i++ {
			d := (dir + 1 + i) % 8
			nx, ny := cur.X+mooreOffsets[d][0], cur.Y+mooreOffsets[d][1]
			if at(nx, ny) {
				// Back-track direction: where we came from relative to the
				// new pixel, so the search resumes just past it.
				dir = (d + 4) % 8
				cur = Point{nx, ny}
				found = true
				break
			}
		}
		if !found {
			return contour, nil // isolated after all (defensive)
		}
		if cur.X == startX && cur.Y == startY {
			return contour, nil
		}
		contour = append(contour, cur)
	}
	return nil, fmt.Errorf("shape: boundary trace did not close after %d steps", maxSteps)
}

// RadialSeries resamples a closed contour into n centroid-to-edge distances
// at equally spaced angles — the time series of Figure 3. Angular bins with
// no contour point are filled by linear interpolation between neighbouring
// bins; the maximum distance is taken within each bin (the outer edge).
func RadialSeries(contour []Point, cx, cy float64, n int) ([]float64, error) {
	if n < 4 {
		return nil, fmt.Errorf("shape: radial series needs n >= 4, got %d", n)
	}
	if len(contour) == 0 {
		return nil, fmt.Errorf("shape: radial series of empty contour")
	}
	series := make([]float64, n)
	filled := make([]bool, n)
	for _, p := range contour {
		dx := float64(p.X) - cx
		dy := float64(p.Y) - cy
		theta := math.Atan2(dy, dx)
		if theta < 0 {
			theta += 2 * math.Pi
		}
		bin := int(theta / (2 * math.Pi) * float64(n))
		if bin >= n {
			bin = n - 1
		}
		d := math.Hypot(dx, dy)
		if !filled[bin] || d > series[bin] {
			series[bin] = d
			filled[bin] = true
		}
	}
	// Interpolate empty bins (circularly).
	anyFilled := false
	for _, f := range filled {
		if f {
			anyFilled = true
			break
		}
	}
	if !anyFilled {
		return nil, fmt.Errorf("shape: no angular bins filled")
	}
	for i := 0; i < n; i++ {
		if filled[i] {
			continue
		}
		// Nearest filled neighbours left and right (circular).
		l := i
		for !filled[(l+n)%n] {
			l--
		}
		r := i
		for !filled[r%n] {
			r++
		}
		li, ri := (l+n)%n, r%n
		span := float64(r - l)
		frac := float64(i-l) / span
		series[i] = series[li]*(1-frac) + series[ri]*frac
	}
	return series, nil
}

// SmoothCircular applies a centred moving average of the given window
// (odd, >= 1) to a circular series.
func SmoothCircular(series []float64, window int) ([]float64, error) {
	if window < 1 || window%2 == 0 {
		return nil, fmt.Errorf("shape: smoothing window %d must be odd and >= 1", window)
	}
	n := len(series)
	if n == 0 {
		return nil, fmt.Errorf("shape: smoothing empty series")
	}
	out := make([]float64, n)
	half := window / 2
	for i := 0; i < n; i++ {
		var s float64
		for k := -half; k <= half; k++ {
			s += series[(i+k+n)%n]
		}
		out[i] = s / float64(window)
	}
	return out, nil
}

// CountPeaks counts local maxima of a circular series that rise at least
// minProminence above the series mean, separated by at least minSpacing
// samples. For the radial series of a regular k-gon this returns k: the
// paper's Figure 3 notes "the eight corners can be clearly identified".
func CountPeaks(series []float64, minProminence float64, minSpacing int) (int, error) {
	n := len(series)
	if n < 3 {
		return 0, fmt.Errorf("shape: peak counting needs >= 3 samples, got %d", n)
	}
	if minSpacing < 1 {
		minSpacing = 1
	}
	var mean float64
	for _, v := range series {
		mean += v
	}
	mean /= float64(n)

	type peak struct {
		idx int
		val float64
	}
	var peaks []peak
	for i := 0; i < n; i++ {
		prev := series[(i-1+n)%n]
		next := series[(i+1)%n]
		v := series[i]
		if v >= prev && v > next && v-mean >= minProminence {
			peaks = append(peaks, peak{i, v})
		}
	}
	// Enforce spacing circularly: greedily keep the highest peaks.
	kept := make([]peak, 0, len(peaks))
	for _, p := range peaks {
		ok := true
		for j, q := range kept {
			d := abs(p.idx - q.idx)
			if d > n/2 {
				d = n - d
			}
			if d < minSpacing {
				if p.val > q.val {
					kept[j] = p // replace the weaker peak
				}
				ok = false
				break
			}
		}
		if ok {
			kept = append(kept, p)
		}
	}
	return len(kept), nil
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
