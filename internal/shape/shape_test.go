package shape

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

func TestSobel3Kernels(t *testing.T) {
	kx := SobelX3()
	if kx.At(1, 0) != -2 || kx.At(1, 2) != 2 || kx.At(0, 1) != 0 {
		t.Error("SobelX3 entries wrong")
	}
	ky := SobelY3()
	if ky.At(0, 1) != -2 || ky.At(2, 1) != 2 || ky.At(1, 0) != 0 {
		t.Error("SobelY3 entries wrong")
	}
	// Zero DC response: kernel sums to zero.
	if kx.Sum() != 0 || ky.Sum() != 0 {
		t.Error("Sobel kernels must sum to zero")
	}
}

func TestExtendedSobelProperties(t *testing.T) {
	for _, n := range []int{3, 5, 7, 11} {
		kx, err := SobelX(n)
		if err != nil {
			t.Fatal(err)
		}
		if kx.Dim(0) != n || kx.Dim(1) != n {
			t.Fatalf("SobelX(%d) shape %v", n, kx.Shape())
		}
		if math.Abs(kx.Sum()) > 1e-5 {
			t.Errorf("SobelX(%d) sum = %v, want 0", n, kx.Sum())
		}
		// Antisymmetric in x: k[y][x] = -k[y][n-1-x]; middle column zero.
		for y := 0; y < n; y++ {
			if kx.At(y, n/2) != 0 {
				t.Errorf("SobelX(%d) centre column not zero", n)
			}
			for x := 0; x < n; x++ {
				if kx.At(y, x) != -kx.At(y, n-1-x) {
					t.Errorf("SobelX(%d) not antisymmetric at (%d,%d)", n, y, x)
				}
			}
		}
		ky, err := SobelY(n)
		if err != nil {
			t.Fatal(err)
		}
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				if ky.At(y, x) != kx.At(x, y) {
					t.Errorf("SobelY(%d) is not the transpose of SobelX", n)
				}
			}
		}
	}
	for _, bad := range []int{2, 4, 1, 0, -3} {
		if _, err := SobelX(bad); err == nil {
			t.Errorf("SobelX(%d) should fail", bad)
		}
	}
	if _, err := SobelY(4); err == nil {
		t.Error("SobelY(4) should fail")
	}
}

func TestSobelRespondsToEdges(t *testing.T) {
	// Vertical step edge: strong Sobel-x response, zero Sobel-y response.
	img := tensor.MustNew(9, 9)
	for y := 0; y < 9; y++ {
		for x := 5; x < 9; x++ {
			img.Set(1, y, x)
		}
	}
	gx, err := Convolve2D(img, SobelX3())
	if err != nil {
		t.Fatal(err)
	}
	gy, err := Convolve2D(img, SobelY3())
	if err != nil {
		t.Fatal(err)
	}
	if gx.At(4, 4) <= 0 {
		t.Error("Sobel-x should respond to a vertical edge")
	}
	if gy.At(4, 4) != 0 {
		t.Error("Sobel-y should not respond to a vertical edge in the interior")
	}
}

func TestGrayscale(t *testing.T) {
	img := tensor.MustNew(3, 2, 2)
	img.Set3(1, 0, 0, 0) // pure red pixel
	g, err := Grayscale(img)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(g.At(0, 0))-0.299) > 1e-6 {
		t.Errorf("red luminance = %v, want 0.299", g.At(0, 0))
	}
	// Rank-2 passes through as a copy.
	g2d := tensor.MustFromSlice([]float32{1, 2, 3, 4}, 2, 2)
	out, err := Grayscale(g2d)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Equal(g2d) {
		t.Error("rank-2 grayscale should be identity")
	}
	out.Set(9, 0, 0)
	if g2d.At(0, 0) == 9 {
		t.Error("rank-2 grayscale must copy, not alias")
	}
	// Single channel.
	one := tensor.MustNew(1, 2, 2)
	one.Set3(0.5, 0, 1, 1)
	out, err = Grayscale(one)
	if err != nil || out.At(1, 1) != 0.5 {
		t.Error("1-channel grayscale wrong")
	}
	if _, err := Grayscale(tensor.MustNew(2, 2, 2)); err == nil {
		t.Error("2-channel image should fail")
	}
	if _, err := Grayscale(tensor.MustNew(2)); err == nil {
		t.Error("rank-1 image should fail")
	}
}

func TestEdgeMagnitudeRing(t *testing.T) {
	// A filled square: edge magnitude is large on the border, zero inside.
	img := tensor.MustNew(16, 16)
	for y := 4; y < 12; y++ {
		for x := 4; x < 12; x++ {
			img.Set(1, y, x)
		}
	}
	em, err := EdgeMagnitude(img)
	if err != nil {
		t.Fatal(err)
	}
	if em.At(8, 8) != 0 {
		t.Error("interior should have zero gradient")
	}
	if em.At(8, 4) == 0 || em.At(4, 8) == 0 {
		t.Error("border should have nonzero gradient")
	}
}

func TestBinarizeAndOtsu(t *testing.T) {
	img := tensor.MustFromSlice([]float32{0.1, 0.1, 0.9, 0.9}, 2, 2)
	th, err := OtsuThreshold(img)
	if err != nil {
		t.Fatal(err)
	}
	if th < 0.1 || th >= 0.9 {
		t.Errorf("Otsu threshold %v should separate the two modes", th)
	}
	bin, err := Binarize(img, th)
	if err != nil {
		t.Fatal(err)
	}
	want := []float32{0, 0, 1, 1}
	for i, w := range want {
		if bin.Data()[i] != w {
			t.Errorf("binarized[%d] = %v, want %v", i, bin.Data()[i], w)
		}
	}
	if _, err := Binarize(tensor.MustNew(2), 0.5); err == nil {
		t.Error("rank-1 binarize should fail")
	}
	if _, err := OtsuThreshold(tensor.MustNew(3)); err == nil {
		t.Error("rank-1 otsu should fail")
	}
	if _, err := OtsuThreshold(tensor.MustNew(0, 0)); err == nil {
		t.Error("empty otsu should fail")
	}
}

func TestLargestComponent(t *testing.T) {
	img := tensor.MustNew(8, 8)
	// Small blob: 2 pixels.
	img.Set(1, 0, 0)
	img.Set(1, 0, 1)
	// Large blob: 3×3.
	for y := 4; y < 7; y++ {
		for x := 4; x < 7; x++ {
			img.Set(1, y, x)
		}
	}
	blob, size, err := LargestComponent(img)
	if err != nil {
		t.Fatal(err)
	}
	if size != 9 {
		t.Errorf("largest component size = %d, want 9", size)
	}
	if blob.At(0, 0) != 0 {
		t.Error("small blob should be removed")
	}
	if blob.At(5, 5) != 1 {
		t.Error("large blob should remain")
	}
	// Empty image.
	empty, size, err := LargestComponent(tensor.MustNew(4, 4))
	if err != nil || size != 0 {
		t.Errorf("empty component = %d, %v", size, err)
	}
	if empty.Sum() != 0 {
		t.Error("empty mask should be all zeros")
	}
	if _, _, err := LargestComponent(tensor.MustNew(4)); err == nil {
		t.Error("rank-1 should fail")
	}
}

func TestCentroid(t *testing.T) {
	img := tensor.MustNew(5, 5)
	img.Set(1, 2, 1)
	img.Set(1, 2, 3)
	cx, cy, err := Centroid(img)
	if err != nil {
		t.Fatal(err)
	}
	if cx != 2 || cy != 2 {
		t.Errorf("centroid = (%v,%v), want (2,2)", cx, cy)
	}
	if _, _, err := Centroid(tensor.MustNew(3, 3)); err == nil {
		t.Error("empty centroid should fail")
	}
	if _, _, err := Centroid(tensor.MustNew(3)); err == nil {
		t.Error("rank-1 centroid should fail")
	}
}

func TestBoundaryTraceSquare(t *testing.T) {
	img := tensor.MustNew(10, 10)
	for y := 2; y < 8; y++ {
		for x := 2; x < 8; x++ {
			img.Set(1, y, x)
		}
	}
	contour, err := BoundaryTrace(img)
	if err != nil {
		t.Fatal(err)
	}
	// A 6×6 square's boundary has 20 pixels.
	if len(contour) != 20 {
		t.Errorf("contour length = %d, want 20", len(contour))
	}
	for _, p := range contour {
		onBorder := p.X == 2 || p.X == 7 || p.Y == 2 || p.Y == 7
		if !onBorder {
			t.Errorf("contour point %+v not on border", p)
		}
	}
}

func TestBoundaryTraceDegenerate(t *testing.T) {
	// Single pixel.
	img := tensor.MustNew(5, 5)
	img.Set(1, 2, 2)
	c, err := BoundaryTrace(img)
	if err != nil || len(c) != 1 {
		t.Errorf("single-pixel contour = %v, %v", c, err)
	}
	// Empty mask.
	if _, err := BoundaryTrace(tensor.MustNew(5, 5)); err == nil {
		t.Error("empty trace should fail")
	}
	if _, err := BoundaryTrace(tensor.MustNew(5)); err == nil {
		t.Error("rank-1 trace should fail")
	}
}

func TestRadialSeriesCircleIsFlat(t *testing.T) {
	// Rasterise a disc and check the radial series is nearly constant.
	const sz = 64
	img := tensor.MustNew(sz, sz)
	for y := 0; y < sz; y++ {
		for x := 0; x < sz; x++ {
			dx, dy := float64(x-sz/2), float64(y-sz/2)
			if dx*dx+dy*dy <= 20*20 {
				img.Set(1, y, x)
			}
		}
	}
	contour, err := BoundaryTrace(img)
	if err != nil {
		t.Fatal(err)
	}
	cx, cy, err := Centroid(img)
	if err != nil {
		t.Fatal(err)
	}
	series, err := RadialSeries(contour, cx, cy, 64)
	if err != nil {
		t.Fatal(err)
	}
	mn, mx := series[0], series[0]
	for _, v := range series {
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
	}
	if (mx-mn)/mn > 0.1 {
		t.Errorf("disc radial series not flat: [%v, %v]", mn, mx)
	}
}

func TestRadialSeriesValidation(t *testing.T) {
	if _, err := RadialSeries(nil, 0, 0, 16); err == nil {
		t.Error("empty contour should fail")
	}
	if _, err := RadialSeries([]Point{{1, 1}}, 0, 0, 2); err == nil {
		t.Error("n < 4 should fail")
	}
	// Single point fills one bin; the rest interpolate to the same value.
	s, err := RadialSeries([]Point{{3, 4}}, 0, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range s {
		if math.Abs(v-5) > 1e-9 {
			t.Errorf("interpolated series = %v, want all 5", s)
		}
	}
}

func TestSmoothCircular(t *testing.T) {
	s, err := SmoothCircular([]float64{1, 0, 0, 0}, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Circular smoothing spreads the spike across the wrap boundary.
	want := []float64{1.0 / 3, 1.0 / 3, 0, 1.0 / 3}
	for i, w := range want {
		if math.Abs(s[i]-w) > 1e-12 {
			t.Errorf("smooth[%d] = %v, want %v", i, s[i], w)
		}
	}
	if _, err := SmoothCircular([]float64{1}, 2); err == nil {
		t.Error("even window should fail")
	}
	if _, err := SmoothCircular(nil, 3); err == nil {
		t.Error("empty series should fail")
	}
	id, _ := SmoothCircular([]float64{1, 2}, 1)
	if id[0] != 1 || id[1] != 2 {
		t.Error("window 1 should be identity")
	}
}

func TestCountPeaksOnAnalyticPolygons(t *testing.T) {
	for _, k := range []int{3, 4, 8} {
		series, err := PolygonRadialSeries(k, 128, 1, 0.3)
		if err != nil {
			t.Fatal(err)
		}
		mean := 0.0
		mx := series[0]
		for _, v := range series {
			mean += v
			if v > mx {
				mx = v
			}
		}
		mean /= float64(len(series))
		peaks, err := CountPeaks(series, 0.25*(mx-mean), 128/20)
		if err != nil {
			t.Fatal(err)
		}
		if peaks != k {
			t.Errorf("k=%d polygon: counted %d peaks", k, peaks)
		}
	}
	if _, err := CountPeaks([]float64{1, 2}, 0, 1); err == nil {
		t.Error("short series should fail")
	}
}

func TestPolygonRadialSeriesProperties(t *testing.T) {
	series, err := PolygonRadialSeries(8, 128, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	apothem := 2 * math.Cos(math.Pi/8)
	for _, v := range series {
		if v < apothem-1e-9 || v > 2+1e-9 {
			t.Errorf("octagon radius %v out of [apothem=%v, R=2]", v, apothem)
		}
	}
	for _, bad := range []struct{ k, n int }{{2, 64}, {3, 3}} {
		if _, err := PolygonRadialSeries(bad.k, bad.n, 1, 0); err == nil {
			t.Errorf("PolygonRadialSeries(%d,%d) should fail", bad.k, bad.n)
		}
	}
	if _, err := PolygonRadialSeries(3, 64, -1, 0); err == nil {
		t.Error("negative radius should fail")
	}
	c, err := CircleRadialSeries(16, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range c {
		if v != 3 {
			t.Error("circle series should be constant")
		}
	}
	if _, err := CircleRadialSeries(2, 1); err == nil {
		t.Error("n < 4 should fail")
	}
	if _, err := CircleRadialSeries(16, 0); err == nil {
		t.Error("r = 0 should fail")
	}
}

func TestQualifierOnAnalyticSeries(t *testing.T) {
	q, err := NewQualifier(DefaultQualifierConfig())
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		k    int
		want Class
	}{
		{3, ClassTriangle}, {4, ClassSquare}, {8, ClassOctagon},
	}
	for _, c := range cases {
		for _, offset := range []float64{0, 0.2, 0.5, 1.0} {
			series, err := PolygonRadialSeries(c.k, 128, 1, offset)
			if err != nil {
				t.Fatal(err)
			}
			res, err := q.ClassifySeries(series)
			if err != nil {
				t.Fatal(err)
			}
			if res.Class != c.want {
				t.Errorf("k=%d offset=%v: classified %v (peaks=%d dist=%.2f), want %v",
					c.k, offset, res.Class, res.Peaks, res.WordDist, c.want)
			}
		}
	}
	circle, _ := CircleRadialSeries(128, 1)
	res, err := q.ClassifySeries(circle)
	if err != nil {
		t.Fatal(err)
	}
	if res.Class != ClassCircle {
		t.Errorf("circle classified as %v", res.Class)
	}
}

func TestQualifierSeriesValidation(t *testing.T) {
	q, err := NewQualifier(DefaultQualifierConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.ClassifySeries(make([]float64, 10)); err == nil {
		t.Error("wrong-length series should fail")
	}
	neg := make([]float64, 128)
	for i := range neg {
		neg[i] = -1
	}
	if _, err := q.ClassifySeries(neg); err == nil {
		t.Error("non-positive mean radius should fail")
	}
}

func TestQualifierConfigValidation(t *testing.T) {
	bad := DefaultQualifierConfig()
	bad.SeriesLen = 4
	if _, err := NewQualifier(bad); err == nil {
		t.Error("short series length should fail")
	}
	bad = DefaultQualifierConfig()
	bad.SmoothWindow = 4
	if _, err := NewQualifier(bad); err == nil {
		t.Error("even smooth window should fail")
	}
	bad = DefaultQualifierConfig()
	bad.Roundness = 0
	if _, err := NewQualifier(bad); err == nil {
		t.Error("zero roundness should fail")
	}
	bad = DefaultQualifierConfig()
	bad.Alphabet = 1
	if _, err := NewQualifier(bad); err == nil {
		t.Error("alphabet 1 should fail")
	}
}

func TestQualifierTemplatesAndEncoder(t *testing.T) {
	q, err := NewQualifier(DefaultQualifierConfig())
	if err != nil {
		t.Fatal(err)
	}
	if q.Encoder() == nil {
		t.Fatal("encoder missing")
	}
	for _, c := range []Class{ClassCircle, ClassTriangle, ClassSquare, ClassOctagon} {
		w := q.Template(c)
		if len(w.Symbols) != 16 {
			t.Errorf("template %v has %d symbols", c, len(w.Symbols))
		}
	}
}

func TestClassString(t *testing.T) {
	for _, c := range []Class{ClassUnknown, ClassCircle, ClassTriangle, ClassSquare, ClassOctagon, Class(42)} {
		if c.String() == "" {
			t.Error("empty class string")
		}
	}
}

// Rasterised end-to-end: draw a polygon mask directly and qualify it.
func rasterPolygon(t *testing.T, k int, rot float64, sz int) *tensor.Tensor {
	t.Helper()
	img := tensor.MustNew(sz, sz)
	r := 0.4 * float64(sz)
	cx, cy := float64(sz)/2, float64(sz)/2
	for y := 0; y < sz; y++ {
		for x := 0; x < sz; x++ {
			// Inside test via the analytic radial function.
			dx, dy := float64(x)-cx, float64(y)-cy
			theta := math.Atan2(dy, dx) - rot
			sector := 2 * math.Pi / float64(k)
			a := math.Mod(theta, sector)
			if a < 0 {
				a += sector
			}
			a -= sector / 2
			maxR := r * math.Cos(math.Pi/float64(k)) / math.Cos(a)
			if math.Hypot(dx, dy) <= maxR {
				img.Set(1, y, x)
			}
		}
	}
	return img
}

func TestQualifyImageOnRasterisedShapes(t *testing.T) {
	q, err := NewQualifier(DefaultQualifierConfig())
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		k    int
		want Class
	}{{3, ClassTriangle}, {4, ClassSquare}, {8, ClassOctagon}}
	for _, c := range cases {
		for _, rot := range []float64{0, 0.15, 0.3} {
			img := rasterPolygon(t, c.k, rot, 96)
			res, err := q.QualifyImage(img)
			if err != nil {
				t.Fatalf("k=%d rot=%v: %v", c.k, rot, err)
			}
			if res.Class != c.want {
				t.Errorf("k=%d rot=%v: got %v (peaks=%d round=%.3f dist=%.2f), want %v",
					c.k, rot, res.Class, res.Peaks, res.Round, res.WordDist, c.want)
			}
		}
	}
}

func TestQualifyImageEmpty(t *testing.T) {
	q, _ := NewQualifier(DefaultQualifierConfig())
	res, err := q.QualifyImage(tensor.MustNew(3, 32, 32))
	if err != nil {
		t.Fatal(err)
	}
	if res.Class != ClassUnknown {
		t.Error("empty image should be unknown")
	}
}

func TestQualifyEdgeMap(t *testing.T) {
	q, _ := NewQualifier(DefaultQualifierConfig())
	img := rasterPolygon(t, 8, 0.2, 96)
	edges, err := EdgeMagnitude(img)
	if err != nil {
		t.Fatal(err)
	}
	res, err := q.QualifyEdgeMap(edges)
	if err != nil {
		t.Fatal(err)
	}
	// The edge ring of an octagon is itself octagonal.
	if res.Class != ClassOctagon {
		t.Errorf("edge-map qualification = %v (peaks=%d round=%.3f), want octagon",
			res.Class, res.Peaks, res.Round)
	}
	if _, err := q.QualifyEdgeMap(tensor.MustNew(3, 8, 8)); err == nil {
		t.Error("rank-3 edge map should fail")
	}
}

func TestConvolve2DValidation(t *testing.T) {
	if _, err := Convolve2D(tensor.MustNew(3), SobelX3()); err == nil {
		t.Error("rank-1 image should fail")
	}
	if _, err := Convolve2D(tensor.MustNew(3, 3), tensor.MustNew(3)); err == nil {
		t.Error("rank-1 kernel should fail")
	}
}

func TestRadialSeriesRotationShiftsSeries(t *testing.T) {
	// The radial series of a rotated polygon is (approximately) a circular
	// shift — the invariance MinRotationHamming relies on.
	rng := rand.New(rand.NewSource(5))
	_ = rng
	base := rasterPolygon(t, 4, 0, 96)
	rot := rasterPolygon(t, 4, math.Pi/4, 96)
	q, _ := NewQualifier(DefaultQualifierConfig())
	r1, err := q.QualifyImage(base)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := q.QualifyImage(rot)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Class != r2.Class {
		t.Errorf("rotation changed class: %v vs %v", r1.Class, r2.Class)
	}
}
