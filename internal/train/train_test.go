package train

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/gtsrb"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// tinyConfig is a micro-net small enough to train within a unit test.
func tinyConfig() nn.MicroConfig {
	return nn.MicroConfig{
		InputSize: 16, Conv1Filters: 6, Conv1Kernel: 3,
		Conv2Filters: 8, Hidden: 16, Classes: 6, UseLRN: false,
	}
}

func tinyDataset(t *testing.T, perClass int, seed int64) *gtsrb.Dataset {
	t.Helper()
	ds, err := gtsrb.Generate(gtsrb.Config{Size: 16, PerClass: perClass, Clutter: 1}, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestSGDValidation(t *testing.T) {
	if _, err := NewSGD(0, 0, 0); err == nil {
		t.Error("zero lr should fail")
	}
	if _, err := NewSGD(0.1, 1, 0); err == nil {
		t.Error("momentum 1 should fail")
	}
	if _, err := NewSGD(0.1, 0, 1); err == nil {
		t.Error("decay 1 should fail")
	}
	o, err := NewSGD(0.1, 0.9, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	if o.LR() != 0.1 {
		t.Error("LR accessor wrong")
	}
	if err := o.SetLR(0.05); err != nil || o.LR() != 0.05 {
		t.Error("SetLR broken")
	}
	if err := o.SetLR(0); err == nil {
		t.Error("SetLR(0) should fail")
	}
	if err := o.Step(nil, 0); err == nil {
		t.Error("batch size 0 should fail")
	}
}

func TestSGDStepDirection(t *testing.T) {
	// One parameter, gradient +1: value must decrease by lr.
	v := tensor.MustFromSlice([]float32{1}, 1)
	g := tensor.MustFromSlice([]float32{1}, 1)
	p := &nn.Param{Name: "w", Value: v, Grad: g}
	o, _ := NewSGD(0.1, 0, 0)
	if err := o.Step([]*nn.Param{p}, 1); err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(v.Data()[0])-0.9) > 1e-6 {
		t.Errorf("after step value = %v, want 0.9", v.Data()[0])
	}
}

func TestSGDMomentumAccumulates(t *testing.T) {
	v := tensor.MustFromSlice([]float32{0}, 1)
	g := tensor.MustFromSlice([]float32{1}, 1)
	p := &nn.Param{Name: "w", Value: v, Grad: g}
	o, _ := NewSGD(0.1, 0.9, 0)
	// Two steps with the same gradient: second step moves farther.
	if err := o.Step([]*nn.Param{p}, 1); err != nil {
		t.Fatal(err)
	}
	afterOne := float64(v.Data()[0])
	if err := o.Step([]*nn.Param{p}, 1); err != nil {
		t.Fatal(err)
	}
	delta2 := float64(v.Data()[0]) - afterOne
	if math.Abs(afterOne-(-0.1)) > 1e-6 {
		t.Errorf("first step = %v, want -0.1", afterOne)
	}
	if math.Abs(delta2-(-0.19)) > 1e-6 {
		t.Errorf("second step delta = %v, want -0.19 (momentum)", delta2)
	}
}

func TestSGDWeightDecayShrinks(t *testing.T) {
	v := tensor.MustFromSlice([]float32{1}, 1)
	g := tensor.MustNew(1) // zero gradient
	p := &nn.Param{Name: "w", Value: v, Grad: g}
	o, _ := NewSGD(0.1, 0, 0.5)
	if err := o.Step([]*nn.Param{p}, 1); err != nil {
		t.Fatal(err)
	}
	if v.Data()[0] >= 1 {
		t.Error("weight decay should shrink weights with zero gradient")
	}
}

func TestTrainerValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	net, err := nn.NewMicroAlexNet(tinyConfig(), rng)
	if err != nil {
		t.Fatal(err)
	}
	opt, _ := NewSGD(0.01, 0.9, 0)
	ds := tinyDataset(t, 1, 2)

	if _, err := (&Trainer{Opt: opt, Rng: rng}).Fit(ds); err == nil {
		t.Error("nil net should fail")
	}
	if _, err := (&Trainer{Net: net, Rng: rng}).Fit(ds); err == nil {
		t.Error("nil opt should fail")
	}
	if _, err := (&Trainer{Net: net, Opt: opt}).Fit(ds); err == nil {
		t.Error("nil rng should fail")
	}
	if _, err := (&Trainer{Net: net, Opt: opt, Rng: rng, BatchSize: -1}).Fit(ds); err == nil {
		t.Error("negative batch should fail")
	}
	if _, err := (&Trainer{Net: net, Opt: opt, Rng: rng, Epochs: -1}).Fit(ds); err == nil {
		t.Error("negative epochs should fail")
	}
	if _, err := (&Trainer{Net: net, Opt: opt, Rng: rng}).Fit(&gtsrb.Dataset{}); err == nil {
		t.Error("empty dataset should fail")
	}
}

func TestTrainingReducesLossAndLearns(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	net, err := nn.NewMicroAlexNet(tinyConfig(), rng)
	if err != nil {
		t.Fatal(err)
	}
	ds := tinyDataset(t, 20, 4)
	train, test, err := ds.Split(0.8)
	if err != nil {
		t.Fatal(err)
	}
	before, err := Accuracy(net, test)
	if err != nil {
		t.Fatal(err)
	}
	opt, _ := NewSGD(0.03, 0.9, 1e-4)
	var losses []float64
	tr := &Trainer{
		Net: net, Opt: opt, BatchSize: 8, Epochs: 15, Rng: rng,
		OnEpoch: func(_ int, loss float64) error {
			losses = append(losses, loss)
			return nil
		},
	}
	final, err := tr.Fit(train)
	if err != nil {
		t.Fatal(err)
	}
	if len(losses) != 15 {
		t.Fatalf("epoch callback fired %d times", len(losses))
	}
	if losses[len(losses)-1] >= losses[0] {
		t.Errorf("loss did not decrease: %v", losses)
	}
	if final != losses[len(losses)-1] {
		t.Errorf("Fit return %v != last epoch loss %v", final, losses[len(losses)-1])
	}
	after, err := Accuracy(net, test)
	if err != nil {
		t.Fatal(err)
	}
	if after <= before {
		t.Errorf("test accuracy did not improve: %v → %v", before, after)
	}
	// The synthetic shapes are easily separable; expect decent accuracy.
	if after < 0.5 {
		t.Errorf("test accuracy %v below 0.5 after training", after)
	}
}

func TestTrainerEpochCallbackAborts(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	net, _ := nn.NewMicroAlexNet(tinyConfig(), rng)
	opt, _ := NewSGD(0.01, 0, 0)
	ds := tinyDataset(t, 2, 6)
	calls := 0
	tr := &Trainer{
		Net: net, Opt: opt, Epochs: 5, Rng: rng,
		OnEpoch: func(int, float64) error {
			calls++
			return errAbort
		},
	}
	if _, err := tr.Fit(ds); err == nil {
		t.Error("callback error should abort")
	}
	if calls != 1 {
		t.Errorf("callback fired %d times after abort", calls)
	}
}

var errAbort = &abortErr{}

type abortErr struct{}

func (*abortErr) Error() string { return "abort" }

func TestFreezeModes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ds := tinyDataset(t, 6, 8)

	type result struct {
		drift float64
	}
	results := map[FreezeMode]result{}
	for _, mode := range []FreezeMode{FreezeNone, FreezeHard, FreezeDrift, FreezeResetEpoch} {
		net, err := nn.NewMicroAlexNet(tinyConfig(), rand.New(rand.NewSource(7)))
		if err != nil {
			t.Fatal(err)
		}
		conv, err := nn.FirstConv(net)
		if err != nil {
			t.Fatal(err)
		}
		fz, err := NewFilterFreeze(conv, mode, 0)
		if err != nil {
			t.Fatal(err)
		}
		opt, _ := NewSGD(0.02, 0.9, 0)
		tr := &Trainer{Net: net, Opt: opt, BatchSize: 8, Epochs: 3,
			Freezes: []*FilterFreeze{fz}, Rng: rng}
		if _, err := tr.Fit(ds); err != nil {
			t.Fatal(err)
		}
		d, err := fz.Drift(0)
		if err != nil {
			t.Fatal(err)
		}
		results[mode] = result{drift: d}
	}
	if results[FreezeHard].drift != 0 {
		t.Errorf("hard freeze drifted by %v, want exactly 0", results[FreezeHard].drift)
	}
	if results[FreezeResetEpoch].drift != 0 {
		t.Errorf("reset-epoch freeze ends epochs at pinned values, drift %v", results[FreezeResetEpoch].drift)
	}
	if results[FreezeDrift].drift == 0 {
		t.Error("drift freeze should move the filter slightly (the TF artefact)")
	}
	if results[FreezeNone].drift <= results[FreezeDrift].drift {
		t.Errorf("free training (%v) should drift more than attenuated training (%v)",
			results[FreezeNone].drift, results[FreezeDrift].drift)
	}
}

func TestFreezeValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	net, _ := nn.NewMicroAlexNet(tinyConfig(), rng)
	conv, _ := nn.FirstConv(net)
	if _, err := NewFilterFreeze(nil, FreezeHard, 0); err == nil {
		t.Error("nil conv should fail")
	}
	if _, err := NewFilterFreeze(conv, FreezeMode(0), 0); err == nil {
		t.Error("unknown mode should fail")
	}
	if _, err := NewFilterFreeze(conv, FreezeHard, 99); err == nil {
		t.Error("out-of-range filter should fail")
	}
	fz, err := NewFilterFreeze(conv, FreezeHard, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := fz.Indices(); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("indices = %v", got)
	}
	if fz.Mode() != FreezeHard {
		t.Error("mode accessor wrong")
	}
	if fz.Pinned(0) == nil || fz.Pinned(1) != nil {
		t.Error("pinned lookup wrong")
	}
	if _, err := fz.Drift(1); err == nil {
		t.Error("drift of unmanaged filter should fail")
	}
}

func TestFreezeModeString(t *testing.T) {
	for _, m := range []FreezeMode{FreezeNone, FreezeHard, FreezeDrift, FreezeResetEpoch, FreezeMode(42)} {
		if m.String() == "" {
			t.Error("empty freeze mode string")
		}
	}
}

func TestConfusionMatrix(t *testing.T) {
	cm, err := NewConfusionMatrix(3)
	if err != nil {
		t.Fatal(err)
	}
	// 2 correct, 1 wrong.
	mustAdd := func(a, b int) {
		t.Helper()
		if err := cm.Add(a, b); err != nil {
			t.Fatal(err)
		}
	}
	mustAdd(0, 0)
	mustAdd(1, 1)
	mustAdd(2, 0)
	if cm.Total() != 3 {
		t.Errorf("total = %d", cm.Total())
	}
	if math.Abs(cm.Accuracy()-2.0/3.0) > 1e-12 {
		t.Errorf("accuracy = %v", cm.Accuracy())
	}
	r, err := cm.Recall(2)
	if err != nil || r != 0 {
		t.Errorf("recall(2) = %v, %v", r, err)
	}
	r, _ = cm.Recall(0)
	if r != 1 {
		t.Errorf("recall(0) = %v", r)
	}
	if _, err := cm.Recall(9); err == nil {
		t.Error("recall out of range should fail")
	}
	if err := cm.Add(5, 0); err == nil {
		t.Error("out-of-range add should fail")
	}
	if cm.String() == "" {
		t.Error("empty string render")
	}
	if _, err := NewConfusionMatrix(0); err == nil {
		t.Error("0-class matrix should fail")
	}

	other, _ := NewConfusionMatrix(3)
	mustAddO := func(a, b int) {
		t.Helper()
		if err := other.Add(a, b); err != nil {
			t.Fatal(err)
		}
	}
	mustAddO(0, 0)
	mustAddO(1, 1)
	mustAddO(2, 2)
	d, err := cm.MaxAbsDiff(other)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-1.0/3.0) > 1e-12 {
		t.Errorf("max abs diff = %v, want 1/3", d)
	}
	mismatch, _ := NewConfusionMatrix(2)
	if _, err := cm.MaxAbsDiff(mismatch); err == nil {
		t.Error("size mismatch should fail")
	}
	empty1, _ := NewConfusionMatrix(2)
	empty2, _ := NewConfusionMatrix(2)
	if d, _ := empty1.MaxAbsDiff(empty2); d != 0 {
		t.Error("empty matrices should differ by 0")
	}
	if empty1.Accuracy() != 0 {
		t.Error("empty accuracy should be 0")
	}
}

func TestEvaluateAndConfidence(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	net, _ := nn.NewMicroAlexNet(tinyConfig(), rng)
	ds := tinyDataset(t, 2, 12)
	cm, err := Evaluate(net, ds)
	if err != nil {
		t.Fatal(err)
	}
	if cm.Total() != ds.Len() {
		t.Errorf("evaluated %d of %d", cm.Total(), ds.Len())
	}
	conf, err := MeanClassConfidence(net, ds, gtsrb.StopClass)
	if err != nil {
		t.Fatal(err)
	}
	if conf <= 0 || conf >= 1 {
		t.Errorf("confidence = %v", conf)
	}
	if _, err := MeanClassConfidence(net, ds, 99); err == nil {
		t.Error("class out of range should fail")
	}
	if _, err := Evaluate(nil, ds); err == nil {
		t.Error("nil net should fail")
	}
	if _, err := Evaluate(net, &gtsrb.Dataset{}); err == nil {
		t.Error("empty dataset should fail")
	}
	if _, err := MeanClassConfidence(nil, ds, 0); err == nil {
		t.Error("nil net confidence should fail")
	}
}
