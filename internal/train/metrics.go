package train

import (
	"fmt"
	"strings"

	"repro/internal/gtsrb"
	"repro/internal/infer"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// ConfusionMatrix counts (true label, predicted label) pairs.
type ConfusionMatrix struct {
	n      int
	counts []int // row = true, col = predicted
}

// NewConfusionMatrix returns an n-class confusion matrix.
func NewConfusionMatrix(n int) (*ConfusionMatrix, error) {
	if n < 1 {
		return nil, fmt.Errorf("train: confusion matrix needs >= 1 class, got %d", n)
	}
	return &ConfusionMatrix{n: n, counts: make([]int, n*n)}, nil
}

// Add records one observation.
func (m *ConfusionMatrix) Add(trueLabel, predicted int) error {
	if trueLabel < 0 || trueLabel >= m.n || predicted < 0 || predicted >= m.n {
		return fmt.Errorf("train: confusion (%d,%d) out of range [0,%d)", trueLabel, predicted, m.n)
	}
	m.counts[trueLabel*m.n+predicted]++
	return nil
}

// At returns the count of (true, predicted).
func (m *ConfusionMatrix) At(trueLabel, predicted int) int {
	return m.counts[trueLabel*m.n+predicted]
}

// Total returns the number of recorded observations.
func (m *ConfusionMatrix) Total() int {
	t := 0
	for _, c := range m.counts {
		t += c
	}
	return t
}

// Accuracy returns trace/total (0 when empty).
func (m *ConfusionMatrix) Accuracy() float64 {
	total := m.Total()
	if total == 0 {
		return 0
	}
	diag := 0
	for i := 0; i < m.n; i++ {
		diag += m.counts[i*m.n+i]
	}
	return float64(diag) / float64(total)
}

// Recall returns the per-class recall (diagonal / row sum), NaN-free:
// classes with no observations report 0.
func (m *ConfusionMatrix) Recall(class int) (float64, error) {
	if class < 0 || class >= m.n {
		return 0, fmt.Errorf("train: class %d out of range [0,%d)", class, m.n)
	}
	row := 0
	for p := 0; p < m.n; p++ {
		row += m.counts[class*m.n+p]
	}
	if row == 0 {
		return 0, nil
	}
	return float64(m.At(class, class)) / float64(row), nil
}

// MaxAbsDiff returns the largest absolute per-cell difference between two
// confusion matrices as a fraction of the larger total — the "no substantial
// difference" comparison the paper makes between original and
// Sobel-replaced confusion matrices.
func (m *ConfusionMatrix) MaxAbsDiff(o *ConfusionMatrix) (float64, error) {
	if m.n != o.n {
		return 0, fmt.Errorf("train: confusion sizes %d != %d", m.n, o.n)
	}
	total := m.Total()
	if o.Total() > total {
		total = o.Total()
	}
	if total == 0 {
		return 0, nil
	}
	maxd := 0
	for i := range m.counts {
		d := m.counts[i] - o.counts[i]
		if d < 0 {
			d = -d
		}
		if d > maxd {
			maxd = d
		}
	}
	return float64(maxd) / float64(total), nil
}

// String renders the matrix with row = true class.
func (m *ConfusionMatrix) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "confusion (%d classes, acc %.3f)\n", m.n, m.Accuracy())
	for tr := 0; tr < m.n; tr++ {
		fmt.Fprintf(&b, "  true %d:", tr)
		for p := 0; p < m.n; p++ {
			fmt.Fprintf(&b, " %4d", m.At(tr, p))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Evaluate runs the network over the dataset through the batched inference
// engine (all cores) and returns the confusion matrix.
func Evaluate(net *nn.Sequential, ds *gtsrb.Dataset) (*ConfusionMatrix, error) {
	return EvaluateParallel(net, ds, 0)
}

// EvaluateParallel is Evaluate with an explicit worker count (0 = all
// cores). The dataset runs through the batch-native forward path: each
// worker packs its share of examples into NCHW micro-batches and classifies
// them with one GEMM per layer per sub-batch (infer.PredictBatched).
// Predictions are recorded in example order and the batched path computes
// the same logits as per-sample forward, so the matrix is identical for
// every worker count and sub-batch size.
func EvaluateParallel(net *nn.Sequential, ds *gtsrb.Dataset, workers int) (*ConfusionMatrix, error) {
	if net == nil || ds == nil || ds.Len() == 0 {
		return nil, fmt.Errorf("train: evaluate needs a network and a non-empty dataset")
	}
	cm, err := NewConfusionMatrix(ds.NumClasses())
	if err != nil {
		return nil, err
	}
	pool, err := infer.New(net, infer.Config{Workers: workers})
	if err != nil {
		return nil, err
	}
	xs := make([]*tensor.Tensor, ds.Len())
	for i, ex := range ds.Examples {
		xs[i] = ex.Image
	}
	preds, err := pool.PredictBatched(xs)
	if err != nil {
		return nil, fmt.Errorf("train: evaluate: %w", err)
	}
	for i, ex := range ds.Examples {
		if err := cm.Add(ex.Label, preds[i].Class); err != nil {
			return nil, err
		}
	}
	return cm, nil
}

// Accuracy is a convenience wrapper returning just the accuracy.
func Accuracy(net *nn.Sequential, ds *gtsrb.Dataset) (float64, error) {
	cm, err := Evaluate(net, ds)
	if err != nil {
		return 0, err
	}
	return cm.Accuracy(), nil
}

// MeanClassConfidence returns the mean softmax probability the network
// assigns to class `class` over that class's true examples — the
// "confidence values for the Stop sign class" that Figure 4 plots per
// filter replacement.
func MeanClassConfidence(net *nn.Sequential, ds *gtsrb.Dataset, class int) (float64, error) {
	if net == nil || ds == nil {
		return 0, fmt.Errorf("train: confidence needs a network and dataset")
	}
	if class < 0 || class >= ds.NumClasses() {
		return 0, fmt.Errorf("train: class %d out of range [0,%d)", class, ds.NumClasses())
	}
	var sum float64
	var n int
	for i, ex := range ds.Examples {
		if ex.Label != class {
			continue
		}
		probs, _, err := nn.Predict(net, ex.Image)
		if err != nil {
			return 0, fmt.Errorf("train: confidence example %d: %w", i, err)
		}
		sum += float64(probs[class])
		n++
	}
	if n == 0 {
		return 0, fmt.Errorf("train: dataset has no examples of class %d", class)
	}
	return sum / float64(n), nil
}
