package train

import (
	"fmt"
	"math/rand"

	"repro/internal/gtsrb"
	"repro/internal/nn"
)

// Trainer drives mini-batch SGD over a dataset with optional filter-freeze
// policies and an epoch callback.
type Trainer struct {
	// Net is the network to train.
	Net *nn.Sequential
	// Opt is the optimiser.
	Opt *SGD
	// BatchSize is the mini-batch size (default 16 via Normalize).
	BatchSize int
	// Epochs is the number of passes over the data (default 5).
	Epochs int
	// Freezes are the active filter-freeze policies.
	Freezes []*FilterFreeze
	// OnEpoch, when non-nil, is called after every epoch with the epoch
	// index (0-based) and mean training loss; returning an error aborts.
	OnEpoch func(epoch int, meanLoss float64) error
	// Rng shuffles the data each epoch.
	Rng *rand.Rand
}

// normalize validates the trainer and applies defaults.
func (t *Trainer) normalize() error {
	if t.Net == nil {
		return fmt.Errorf("train: trainer needs a network")
	}
	if t.Opt == nil {
		return fmt.Errorf("train: trainer needs an optimiser")
	}
	if t.Rng == nil {
		return fmt.Errorf("train: trainer needs an rng")
	}
	if t.BatchSize == 0 {
		t.BatchSize = 16
	}
	if t.BatchSize < 1 {
		return fmt.Errorf("train: batch size %d must be >= 1", t.BatchSize)
	}
	if t.Epochs == 0 {
		t.Epochs = 5
	}
	if t.Epochs < 1 {
		return fmt.Errorf("train: epochs %d must be >= 1", t.Epochs)
	}
	return nil
}

// Fit trains on the dataset and returns the mean training loss of the final
// epoch.
func (t *Trainer) Fit(ds *gtsrb.Dataset) (float64, error) {
	if err := t.normalize(); err != nil {
		return 0, err
	}
	if ds == nil || ds.Len() == 0 {
		return 0, fmt.Errorf("train: empty dataset")
	}
	t.Net.SetTraining(true)
	defer t.Net.SetTraining(false)

	order := make([]int, ds.Len())
	for i := range order {
		order[i] = i
	}
	var lastMean float64
	for epoch := 0; epoch < t.Epochs; epoch++ {
		t.Rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		var lossSum float64
		var seen int
		for start := 0; start < len(order); start += t.BatchSize {
			end := start + t.BatchSize
			if end > len(order) {
				end = len(order)
			}
			t.Net.ZeroGrads()
			for _, idx := range order[start:end] {
				ex := ds.Examples[idx]
				logits, err := t.Net.Forward(ex.Image)
				if err != nil {
					return 0, fmt.Errorf("train: epoch %d forward: %w", epoch, err)
				}
				loss, grad, err := nn.CrossEntropyLoss(logits, ex.Label)
				if err != nil {
					return 0, fmt.Errorf("train: epoch %d loss: %w", epoch, err)
				}
				lossSum += loss
				seen++
				if _, err := t.Net.Backward(grad); err != nil {
					return 0, fmt.Errorf("train: epoch %d backward: %w", epoch, err)
				}
			}
			for _, f := range t.Freezes {
				if err := f.BeforeStep(); err != nil {
					return 0, fmt.Errorf("train: epoch %d freeze: %w", epoch, err)
				}
			}
			if err := t.Opt.Step(t.Net.Params(), end-start); err != nil {
				return 0, fmt.Errorf("train: epoch %d step: %w", epoch, err)
			}
			for _, f := range t.Freezes {
				if err := f.AfterStep(); err != nil {
					return 0, fmt.Errorf("train: epoch %d freeze pin: %w", epoch, err)
				}
			}
		}
		for _, f := range t.Freezes {
			if err := f.AfterEpoch(); err != nil {
				return 0, fmt.Errorf("train: epoch %d freeze reset: %w", epoch, err)
			}
		}
		lastMean = lossSum / float64(seen)
		if t.OnEpoch != nil {
			if err := t.OnEpoch(epoch, lastMean); err != nil {
				return lastMean, fmt.Errorf("train: epoch callback: %w", err)
			}
		}
	}
	return lastMean, nil
}
