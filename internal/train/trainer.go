package train

import (
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/gtsrb"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// Trainer drives mini-batch SGD over a dataset with optional filter-freeze
// policies and an epoch callback. With Workers > 1 each mini-batch is split
// across a pool of goroutines running the SAME network through per-worker
// contexts with shadow gradients (data-parallel backward); the shadows are
// reduced into the canonical gradients before the optimiser step, so the
// update rule is identical to the serial path up to floating-point
// summation order and per-worker dropout streams.
//
// Within each worker's shard the passes are batch-native by default: the
// shard's samples stack into one NCHW batch that runs through
// ForwardBatch/BackwardBatch — one GEMM per layer per direction for the
// whole sub-batch, so conv and fc weight matrices stream once per
// sub-batch instead of once per sample. SubBatch tunes (or disables) this;
// shards with mixed image shapes fall back to the per-sample path
// automatically. Worker parallelism composes with intra-GEMM parallelism
// (tensor.SetGemmWorkers): total concurrency ≈ Workers × gemm workers.
type Trainer struct {
	// Net is the network to train.
	Net *nn.Sequential
	// Opt is the optimiser.
	Opt *SGD
	// BatchSize is the mini-batch size (default 16 via Normalize).
	BatchSize int
	// Epochs is the number of passes over the data (default 5).
	Epochs int
	// Workers is the per-batch parallelism (default 1 = serial, bit-exact
	// reproducible; more workers trade exact reproducibility for speed).
	Workers int
	// SubBatch sets how many samples of a worker's shard run through one
	// ForwardBatch/BackwardBatch pass: 0 (the default) batches the whole
	// shard in one pass, 1 selects the legacy per-sample
	// Forward/Backward path, and N >= 2 caps each batched pass at N
	// samples (bounding the batch-sized activation/scratch memory).
	// Gradients are golden-equivalent across settings (≤1e-5, scaled);
	// only float32 summation order differs.
	SubBatch int
	// Freezes are the active filter-freeze policies.
	Freezes []*FilterFreeze
	// OnEpoch, when non-nil, is called after every epoch with the epoch
	// index (0-based) and mean training loss; returning an error aborts.
	OnEpoch func(epoch int, meanLoss float64) error
	// Rng shuffles the data each epoch and seeds the per-worker dropout
	// streams.
	Rng *rand.Rand
}

// normalize validates the trainer and applies defaults.
func (t *Trainer) normalize() error {
	if t.Net == nil {
		return fmt.Errorf("train: trainer needs a network")
	}
	if t.Opt == nil {
		return fmt.Errorf("train: trainer needs an optimiser")
	}
	if t.Rng == nil {
		return fmt.Errorf("train: trainer needs an rng")
	}
	if t.BatchSize == 0 {
		t.BatchSize = 16
	}
	if t.BatchSize < 1 {
		return fmt.Errorf("train: batch size %d must be >= 1", t.BatchSize)
	}
	if t.Epochs == 0 {
		t.Epochs = 5
	}
	if t.Epochs < 1 {
		return fmt.Errorf("train: epochs %d must be >= 1", t.Epochs)
	}
	if t.Workers == 0 {
		t.Workers = 1
	}
	if t.Workers < 1 {
		return fmt.Errorf("train: workers %d must be >= 1", t.Workers)
	}
	if t.SubBatch < 0 {
		return fmt.Errorf("train: sub-batch %d must be >= 0 (0 = whole shard)", t.SubBatch)
	}
	return nil
}

// Fit trains on the dataset and returns the mean training loss of the final
// epoch.
func (t *Trainer) Fit(ds *gtsrb.Dataset) (float64, error) {
	if err := t.normalize(); err != nil {
		return 0, err
	}
	if ds == nil || ds.Len() == 0 {
		return 0, fmt.Errorf("train: empty dataset")
	}

	// One training context per worker. Workers accumulate gradients into
	// context-local shadows (raceless); the serial single-worker path
	// accumulates into the canonical gradients directly.
	ctxs := make([]*nn.Context, t.Workers)
	for i := range ctxs {
		ctx := nn.NewContext()
		ctx.SetTraining(true)
		ctx.SetRand(rand.New(rand.NewSource(t.Rng.Int63())))
		if t.Workers > 1 {
			ctx.ShadowGrads(true)
		}
		ctxs[i] = ctx
	}

	order := make([]int, ds.Len())
	for i := range order {
		order[i] = i
	}
	var lastMean float64
	for epoch := 0; epoch < t.Epochs; epoch++ {
		t.Rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		var lossSum float64
		var seen int
		for start := 0; start < len(order); start += t.BatchSize {
			end := start + t.BatchSize
			if end > len(order) {
				end = len(order)
			}
			t.Net.ZeroGrads()
			batchLoss, err := t.runBatch(ctxs, ds, order[start:end], epoch)
			if err != nil {
				return 0, err
			}
			lossSum += batchLoss
			seen += end - start
			for _, f := range t.Freezes {
				if err := f.BeforeStep(); err != nil {
					return 0, fmt.Errorf("train: epoch %d freeze: %w", epoch, err)
				}
			}
			if err := t.Opt.Step(t.Net.Params(), end-start); err != nil {
				return 0, fmt.Errorf("train: epoch %d step: %w", epoch, err)
			}
			for _, f := range t.Freezes {
				if err := f.AfterStep(); err != nil {
					return 0, fmt.Errorf("train: epoch %d freeze pin: %w", epoch, err)
				}
			}
		}
		for _, f := range t.Freezes {
			if err := f.AfterEpoch(); err != nil {
				return 0, fmt.Errorf("train: epoch %d freeze reset: %w", epoch, err)
			}
		}
		lastMean = lossSum / float64(seen)
		if t.OnEpoch != nil {
			if err := t.OnEpoch(epoch, lastMean); err != nil {
				return lastMean, fmt.Errorf("train: epoch callback: %w", err)
			}
		}
	}
	return lastMean, nil
}

// runBatch runs forward/backward over one mini-batch, serially or across
// the worker contexts, and leaves the summed gradients in the canonical
// Param.Grad tensors. It returns the batch's total loss.
func (t *Trainer) runBatch(ctxs []*nn.Context, ds *gtsrb.Dataset, batch []int, epoch int) (float64, error) {
	if len(ctxs) == 1 {
		return t.runShard(ctxs[0], ds, batch, epoch)
	}
	workers := len(ctxs)
	if workers > len(batch) {
		workers = len(batch)
	}
	// Contiguous shards, one per worker: sample order inside a shard is
	// deterministic given the epoch shuffle.
	losses := make([]float64, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		lo := len(batch) * w / workers
		hi := len(batch) * (w + 1) / workers
		go func(w, lo, hi int) {
			defer wg.Done()
			losses[w], errs[w] = t.runShard(ctxs[w], ds, batch[lo:hi], epoch)
		}(w, lo, hi)
	}
	wg.Wait()
	var loss float64
	for w := 0; w < workers; w++ {
		if errs[w] != nil {
			return 0, errs[w]
		}
		loss += losses[w]
	}
	// Reduce the shadow gradients into the canonical accumulators.
	for w := 0; w < workers; w++ {
		if err := ctxs[w].FlushGrads(); err != nil {
			return 0, fmt.Errorf("train: epoch %d reduce: %w", epoch, err)
		}
	}
	return loss, nil
}

// runShard processes one worker's shard of a mini-batch through one
// context: per-sample when SubBatch == 1, otherwise in batched sub-batches
// (the whole shard when SubBatch == 0). Gradients accumulate into the
// context's target buffers; the summed loss is returned.
func (t *Trainer) runShard(ctx *nn.Context, ds *gtsrb.Dataset, idxs []int, epoch int) (float64, error) {
	if t.SubBatch == 1 {
		return t.runSamples(ctx, ds, idxs, epoch)
	}
	size := t.SubBatch
	if size == 0 {
		size = len(idxs)
	}
	var lossSum float64
	for start := 0; start < len(idxs); start += size {
		end := start + size
		if end > len(idxs) {
			end = len(idxs)
		}
		loss, err := t.runBatched(ctx, ds, idxs[start:end], epoch)
		if err != nil {
			return 0, err
		}
		lossSum += loss
	}
	return lossSum, nil
}

// runBatched stacks one sub-batch of samples into an NCHW batch and drives
// it through ForwardBatch, the batched softmax-cross-entropy gradient and
// BackwardBatch — one GEMM per layer per direction for the whole sub-batch.
// Sub-batches whose images disagree in shape cannot stack and fall back to
// the per-sample path (identical gradients, sample at a time).
func (t *Trainer) runBatched(ctx *nn.Context, ds *gtsrb.Dataset, idxs []int, epoch int) (float64, error) {
	imgs := make([]*tensor.Tensor, len(idxs))
	labels := make([]int, len(idxs))
	for i, idx := range idxs {
		ex := ds.Examples[idx]
		if !ex.Image.SameShape(ds.Examples[idxs[0]].Image) {
			return t.runSamples(ctx, ds, idxs, epoch)
		}
		imgs[i] = ex.Image
		labels[i] = ex.Label
	}
	batch, err := tensor.Stack(imgs)
	if err != nil {
		return 0, fmt.Errorf("train: epoch %d stack: %w", epoch, err)
	}
	logits, err := t.Net.ForwardBatch(ctx, batch)
	if err != nil {
		return 0, fmt.Errorf("train: epoch %d batched forward: %w", epoch, err)
	}
	loss, grad, err := nn.CrossEntropyLossBatch(logits, labels)
	if err != nil {
		return 0, fmt.Errorf("train: epoch %d batched loss: %w", epoch, err)
	}
	if _, err := t.Net.BackwardBatch(ctx, grad); err != nil {
		return 0, fmt.Errorf("train: epoch %d batched backward: %w", epoch, err)
	}
	return loss, nil
}

// runSamples processes samples through one context, accumulating gradients
// into the context's target buffers, and returns the summed loss.
func (t *Trainer) runSamples(ctx *nn.Context, ds *gtsrb.Dataset, idxs []int, epoch int) (float64, error) {
	var lossSum float64
	for _, idx := range idxs {
		ex := ds.Examples[idx]
		logits, err := t.Net.Forward(ctx, ex.Image)
		if err != nil {
			return 0, fmt.Errorf("train: epoch %d forward: %w", epoch, err)
		}
		loss, grad, err := nn.CrossEntropyLoss(logits, ex.Label)
		if err != nil {
			return 0, fmt.Errorf("train: epoch %d loss: %w", epoch, err)
		}
		lossSum += loss
		if _, err := t.Net.Backward(ctx, grad); err != nil {
			return 0, fmt.Errorf("train: epoch %d backward: %w", epoch, err)
		}
	}
	return lossSum, nil
}
