package train

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/nn"
)

// TestParallelBatchGradientsMatchSerial: one mini-batch through the
// data-parallel path must accumulate the same canonical gradients as the
// serial path, up to floating-point summation order.
func TestParallelBatchGradientsMatchSerial(t *testing.T) {
	ds := tinyDataset(t, 4, 1)
	batch := make([]int, ds.Len())
	for i := range batch {
		batch[i] = i
	}

	grads := func(workers int) []float64 {
		net, err := nn.NewMicroAlexNet(tinyConfig(), rand.New(rand.NewSource(7)))
		if err != nil {
			t.Fatal(err)
		}
		opt, err := NewSGD(0.01, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		tr := &Trainer{Net: net, Opt: opt, Workers: workers, Rng: rand.New(rand.NewSource(2))}
		if err := tr.normalize(); err != nil {
			t.Fatal(err)
		}
		ctxs := make([]*nn.Context, workers)
		for i := range ctxs {
			ctx := nn.NewContext()
			ctx.SetTraining(true)
			if workers > 1 {
				ctx.ShadowGrads(true)
			}
			ctxs[i] = ctx
		}
		net.ZeroGrads()
		if _, err := tr.runBatch(ctxs, ds, batch, 0); err != nil {
			t.Fatal(err)
		}
		var out []float64
		for _, p := range net.Params() {
			for _, g := range p.Grad.Data() {
				out = append(out, float64(g))
			}
		}
		return out
	}

	want := grads(1)
	for _, workers := range []int{2, 3, 4} {
		got := grads(workers)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d grads != %d", workers, len(got), len(want))
		}
		for i := range got {
			if math.Abs(got[i]-want[i]) > 1e-4 {
				t.Fatalf("workers=%d: grad[%d] = %v, serial %v", workers, i, got[i], want[i])
			}
		}
	}
}

// TestTrainerParallelFit: end-to-end training with workers > 1 still
// learns (loss decreases to a sane level) and evaluation agrees across
// worker counts.
func TestTrainerParallelFit(t *testing.T) {
	ds := tinyDataset(t, 6, 3)
	net, err := nn.NewMicroAlexNet(tinyConfig(), rand.New(rand.NewSource(11)))
	if err != nil {
		t.Fatal(err)
	}
	opt, err := NewSGD(0.05, 0.9, 0)
	if err != nil {
		t.Fatal(err)
	}
	var first, last float64
	tr := &Trainer{
		Net: net, Opt: opt, BatchSize: 8, Epochs: 6, Workers: 4,
		Rng: rand.New(rand.NewSource(12)),
		OnEpoch: func(epoch int, loss float64) error {
			if epoch == 0 {
				first = loss
			}
			last = loss
			return nil
		},
	}
	if _, err := tr.Fit(ds); err != nil {
		t.Fatal(err)
	}
	if !(last < first) {
		t.Errorf("parallel training did not reduce loss: first %v last %v", first, last)
	}

	cmSerial, err := EvaluateParallel(net, ds, 1)
	if err != nil {
		t.Fatal(err)
	}
	cmPool, err := EvaluateParallel(net, ds, 4)
	if err != nil {
		t.Fatal(err)
	}
	if d, err := cmSerial.MaxAbsDiff(cmPool); err != nil || d != 0 {
		t.Errorf("evaluation differs across worker counts: %v %v", d, err)
	}

	// Validation.
	bad := &Trainer{Net: net, Opt: opt, Workers: -1, Rng: tr.Rng}
	if _, err := bad.Fit(ds); err == nil {
		t.Error("negative workers should fail")
	}
}
