package train

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// batchGrads runs one mini-batch through a fresh net/trainer with the given
// SubBatch and worker count and returns the accumulated canonical gradients.
func batchGrads(t *testing.T, subBatch, workers int) []float64 {
	t.Helper()
	ds := tinyDataset(t, 4, 1)
	batch := make([]int, ds.Len())
	for i := range batch {
		batch[i] = i
	}
	net, err := nn.NewMicroAlexNet(tinyConfig(), rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	opt, err := NewSGD(0.01, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	tr := &Trainer{Net: net, Opt: opt, Workers: workers, SubBatch: subBatch,
		Rng: rand.New(rand.NewSource(2))}
	if err := tr.normalize(); err != nil {
		t.Fatal(err)
	}
	ctxs := make([]*nn.Context, workers)
	for i := range ctxs {
		ctx := nn.NewContext()
		ctx.SetTraining(true)
		if workers > 1 {
			ctx.ShadowGrads(true)
		}
		ctxs[i] = ctx
	}
	net.ZeroGrads()
	if _, err := tr.runBatch(ctxs, ds, batch, 0); err != nil {
		t.Fatal(err)
	}
	var out []float64
	for _, p := range net.Params() {
		for _, g := range p.Grad.Data() {
			out = append(out, float64(g))
		}
	}
	return out
}

// TestBatchedGradientsMatchPerSample: one mini-batch through the batched
// backward path (whole-shard and capped sub-batches) must accumulate the
// same canonical gradients as the per-sample path, up to floating-point
// summation order.
func TestBatchedGradientsMatchPerSample(t *testing.T) {
	want := batchGrads(t, 1, 1) // legacy per-sample path
	for _, subBatch := range []int{0, 2, 3, 8} {
		got := batchGrads(t, subBatch, 1)
		if len(got) != len(want) {
			t.Fatalf("subbatch=%d: %d grads != %d", subBatch, len(got), len(want))
		}
		for i := range got {
			if math.Abs(got[i]-want[i]) > 1e-4 {
				t.Fatalf("subbatch=%d: grad[%d] = %v, per-sample %v", subBatch, i, got[i], want[i])
			}
		}
	}
}

// TestBatchedGradientsMatchAcrossWorkers: the batched shard path composes
// with data-parallel workers — shadow-gradient reduction is unchanged.
func TestBatchedGradientsMatchAcrossWorkers(t *testing.T) {
	want := batchGrads(t, 0, 1)
	for _, workers := range []int{2, 3, 4} {
		got := batchGrads(t, 0, workers)
		for i := range got {
			if math.Abs(got[i]-want[i]) > 1e-4 {
				t.Fatalf("workers=%d: grad[%d] = %v, serial %v", workers, i, got[i], want[i])
			}
		}
	}
}

// fitLosses trains a fresh net end to end with the given SubBatch and
// returns the per-epoch mean losses.
func fitLosses(t *testing.T, subBatch int) []float64 {
	t.Helper()
	ds := tinyDataset(t, 6, 3)
	net, err := nn.NewMicroAlexNet(tinyConfig(), rand.New(rand.NewSource(11)))
	if err != nil {
		t.Fatal(err)
	}
	opt, err := NewSGD(0.05, 0.9, 0)
	if err != nil {
		t.Fatal(err)
	}
	var losses []float64
	tr := &Trainer{
		Net: net, Opt: opt, BatchSize: 8, Epochs: 4, SubBatch: subBatch,
		Rng: rand.New(rand.NewSource(12)),
		OnEpoch: func(epoch int, loss float64) error {
			losses = append(losses, loss)
			return nil
		},
	}
	if _, err := tr.Fit(ds); err != nil {
		t.Fatal(err)
	}
	return losses
}

// TestFitLossTrajectoryBatchedVsPerSample: end-to-end Trainer.Fit must walk
// the same loss trajectory in batched and per-sample mode. The runs share
// seeds and update rule; only float32 summation order differs, and the
// divergence compounds through the optimiser, so the tolerance is loose
// relative to the per-step 1e-5 gradient equivalence.
func TestFitLossTrajectoryBatchedVsPerSample(t *testing.T) {
	batched := fitLosses(t, 0)
	perSample := fitLosses(t, 1)
	if len(batched) != len(perSample) {
		t.Fatalf("epoch counts differ: %d vs %d", len(batched), len(perSample))
	}
	for e := range batched {
		if d := math.Abs(batched[e] - perSample[e]); d > 1e-2 {
			t.Fatalf("epoch %d: batched loss %v vs per-sample %v (diff %v)",
				e, batched[e], perSample[e], d)
		}
	}
	if last := batched[len(batched)-1]; !(last < batched[0]) {
		t.Errorf("batched training did not reduce loss: first %v last %v", batched[0], last)
	}
}

// TestBatchedMixedShapeFallback: a sub-batch whose images disagree in shape
// cannot stack, so the batched path must fall back to per-sample — and
// therefore fail (or succeed) EXACTLY as per-sample mode does. Here the odd
// shape breaks the dense layer in both modes; the errors must match, proving
// the fallback reached the per-sample code path rather than dying in Stack.
func TestBatchedMixedShapeFallback(t *testing.T) {
	run := func(subBatch int) error {
		ds := tinyDataset(t, 2, 5)
		// One odd-shaped sample: conv accepts it, flatten+dense reject it.
		odd := tensor.MustNew(3, 20, 20)
		odd.FillUniform(rand.New(rand.NewSource(5)), 0, 1)
		ds.Examples[3].Image = odd
		net, err := nn.NewMicroAlexNet(tinyConfig(), rand.New(rand.NewSource(7)))
		if err != nil {
			t.Fatal(err)
		}
		opt, err := NewSGD(0.01, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		tr := &Trainer{Net: net, Opt: opt, BatchSize: ds.Len(), Epochs: 1, SubBatch: subBatch,
			Rng: rand.New(rand.NewSource(2))}
		_, err = tr.Fit(ds)
		return err
	}
	batched := run(0)
	perSample := run(1)
	if batched == nil || perSample == nil {
		t.Fatalf("mixed-shape training succeeded: batched %v, per-sample %v", batched, perSample)
	}
	if batched.Error() != perSample.Error() {
		t.Fatalf("fallback diverged from per-sample: %q vs %q", batched, perSample)
	}
}

// TestSubBatchValidation: negative sub-batches are rejected up front.
func TestSubBatchValidation(t *testing.T) {
	ds := tinyDataset(t, 1, 1)
	net, err := nn.NewMicroAlexNet(tinyConfig(), rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	opt, err := NewSGD(0.01, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	tr := &Trainer{Net: net, Opt: opt, SubBatch: -1, Rng: rand.New(rand.NewSource(2))}
	if _, err := tr.Fit(ds); err == nil {
		t.Fatal("negative sub-batch accepted")
	}
}
