// Package train provides the SGD trainer, per-filter freeze policies and the
// evaluation metrics (accuracy, confusion matrix, per-class confidence) used
// to reproduce the paper's training-side experiments: Sobel filter
// replacement (Figure 4), Sobel pre-initialisation with frozen training, and
// the TensorFlow freezing artefact where "after every epoch or batch, the
// filter values are minimally changed".
package train

import (
	"fmt"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// SGD is stochastic gradient descent with classical momentum and optional
// L2 weight decay.
type SGD struct {
	lr       float32
	momentum float32
	decay    float32
	velocity map[*nn.Param]*tensor.Tensor
}

// NewSGD returns an optimiser. lr must be positive; momentum and decay must
// be in [0, 1).
func NewSGD(lr, momentum, decay float32) (*SGD, error) {
	if lr <= 0 {
		return nil, fmt.Errorf("train: learning rate %v must be positive", lr)
	}
	if momentum < 0 || momentum >= 1 {
		return nil, fmt.Errorf("train: momentum %v out of [0,1)", momentum)
	}
	if decay < 0 || decay >= 1 {
		return nil, fmt.Errorf("train: weight decay %v out of [0,1)", decay)
	}
	return &SGD{
		lr: lr, momentum: momentum, decay: decay,
		velocity: make(map[*nn.Param]*tensor.Tensor),
	}, nil
}

// SetLR changes the learning rate (for schedules).
func (o *SGD) SetLR(lr float32) error {
	if lr <= 0 {
		return fmt.Errorf("train: learning rate %v must be positive", lr)
	}
	o.lr = lr
	return nil
}

// LR returns the current learning rate.
func (o *SGD) LR() float32 { return o.lr }

// Step applies one update to every parameter from its accumulated gradient,
// scaled by 1/batchSize. Gradients are NOT cleared (call net.ZeroGrads).
func (o *SGD) Step(params []*nn.Param, batchSize int) error {
	if batchSize < 1 {
		return fmt.Errorf("train: batch size %d must be >= 1", batchSize)
	}
	inv := 1 / float32(batchSize)
	for _, p := range params {
		v, ok := o.velocity[p]
		if !ok {
			v = tensor.MustNew(p.Value.Shape()...)
			o.velocity[p] = v
		}
		g := p.Grad.Data()
		w := p.Value.Data()
		vd := v.Data()
		for i := range w {
			grad := g[i]*inv + o.decay*w[i]
			vd[i] = o.momentum*vd[i] - o.lr*grad
			w[i] += vd[i]
		}
	}
	return nil
}
