package train

import (
	"fmt"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// FreezeMode reproduces the paper's three filter-freezing regimes for a
// pre-initialised (Sobel) filter in the first convolution layer.
type FreezeMode int

const (
	// FreezeNone lets the filter train freely.
	FreezeNone FreezeMode = iota + 1
	// FreezeHard pins the filter exactly: its gradient is zeroed before
	// every optimiser step, so the values never move.
	FreezeHard
	// FreezeDrift reproduces the TensorFlow behaviour the paper observed:
	// the freeze is imperfect, and "after every epoch or batch, the filter
	// values are minimally changed, apparently to reflect the numeric
	// balance of values presented to the pooling layer". Gradients are
	// attenuated to a small fraction rather than zeroed, so the filter
	// undergoes subtle drift in intensity/statistics while remaining
	// recognisably the initialised kernel.
	FreezeDrift
	// FreezeResetEpoch trains the filter freely within an epoch but
	// resets it to the pre-initialised values at every epoch end — the
	// paper's "set before training ... and re-set after every epoch or
	// batch" workflow.
	FreezeResetEpoch
)

// String implements fmt.Stringer.
func (m FreezeMode) String() string {
	switch m {
	case FreezeNone:
		return "none"
	case FreezeHard:
		return "hard"
	case FreezeDrift:
		return "drift"
	case FreezeResetEpoch:
		return "reset-epoch"
	default:
		return fmt.Sprintf("freeze(%d)", int(m))
	}
}

// DriftAttenuation is the gradient attenuation factor FreezeDrift applies —
// small enough that drift stays "subtle", nonzero so it is measurable.
const DriftAttenuation = 0.01

// FilterFreeze pins (a subset of) first-layer filters of a convolution
// during training.
type FilterFreeze struct {
	conv    *nn.Conv2D
	mode    FreezeMode
	indices []int
	// pinned holds the pre-initialised filter values for reset/hard modes.
	pinned map[int]*tensor.Tensor
}

// NewFilterFreeze creates a freeze policy for the given filter indices of
// conv. The current filter contents are captured as the pinned values.
func NewFilterFreeze(conv *nn.Conv2D, mode FreezeMode, indices ...int) (*FilterFreeze, error) {
	if conv == nil {
		return nil, fmt.Errorf("train: freeze needs a conv layer")
	}
	if mode < FreezeNone || mode > FreezeResetEpoch {
		return nil, fmt.Errorf("train: unknown freeze mode %d", int(mode))
	}
	f := &FilterFreeze{conv: conv, mode: mode, pinned: make(map[int]*tensor.Tensor, len(indices))}
	for _, idx := range indices {
		if idx < 0 || idx >= conv.Filters() {
			return nil, fmt.Errorf("train: freeze filter %d out of range [0,%d)", idx, conv.Filters())
		}
		view, err := conv.Weight().Filter(idx)
		if err != nil {
			return nil, err
		}
		f.pinned[idx] = view.Clone()
		f.indices = append(f.indices, idx)
	}
	return f, nil
}

// Mode returns the freeze mode.
func (f *FilterFreeze) Mode() FreezeMode { return f.mode }

// Indices returns the frozen filter indices.
func (f *FilterFreeze) Indices() []int { return append([]int(nil), f.indices...) }

// Pinned returns a copy of the pinned values for filter idx (nil if the
// filter is not managed by this freeze).
func (f *FilterFreeze) Pinned(idx int) *tensor.Tensor {
	p, ok := f.pinned[idx]
	if !ok {
		return nil
	}
	return p.Clone()
}

// gradView returns the gradient sub-tensor of filter idx.
func (f *FilterFreeze) gradView(idx int) (*tensor.Tensor, error) {
	for _, p := range f.conv.Params() {
		if p.Value == f.conv.Weight() {
			return p.Grad.Filter(idx)
		}
	}
	return nil, fmt.Errorf("train: conv weight parameter not found")
}

// BeforeStep is invoked after gradient accumulation and before the optimiser
// step; it implements the hard and drift regimes.
func (f *FilterFreeze) BeforeStep() error {
	switch f.mode {
	case FreezeHard:
		for _, idx := range f.indices {
			g, err := f.gradView(idx)
			if err != nil {
				return err
			}
			g.Zero()
		}
	case FreezeDrift:
		for _, idx := range f.indices {
			g, err := f.gradView(idx)
			if err != nil {
				return err
			}
			g.Scale(DriftAttenuation)
		}
	}
	return nil
}

// AfterStep is invoked after every optimiser step. For the hard regime it
// restores the pinned values exactly, so that side channels of the optimiser
// that bypass the gradient (weight decay, momentum) cannot move the filter —
// zeroing gradients alone is not enough.
func (f *FilterFreeze) AfterStep() error {
	if f.mode != FreezeHard {
		return nil
	}
	for _, idx := range f.indices {
		view, err := f.conv.Weight().Filter(idx)
		if err != nil {
			return err
		}
		if err := view.CopyFrom(f.pinned[idx]); err != nil {
			return err
		}
	}
	return nil
}

// AfterEpoch is invoked at every epoch end; it implements the reset regime.
func (f *FilterFreeze) AfterEpoch() error {
	if f.mode != FreezeResetEpoch {
		return nil
	}
	for _, idx := range f.indices {
		view, err := f.conv.Weight().Filter(idx)
		if err != nil {
			return err
		}
		if err := view.CopyFrom(f.pinned[idx]); err != nil {
			return err
		}
	}
	return nil
}

// Drift returns the L2 distance between filter idx's current values and its
// pinned initialisation — the quantity the paper inspects when noting that
// the "frozen" filter "undergoes subtle changes in the intensity,
// statistical and spatial frequency domains".
func (f *FilterFreeze) Drift(idx int) (float64, error) {
	p, ok := f.pinned[idx]
	if !ok {
		return 0, fmt.Errorf("train: filter %d not managed by this freeze", idx)
	}
	view, err := f.conv.Weight().Filter(idx)
	if err != nil {
		return 0, err
	}
	diff := view.Clone()
	if err := diff.SubInPlace(p); err != nil {
		return 0, err
	}
	return diff.L2Norm(), nil
}
