package sax

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBreakpoints(t *testing.T) {
	// Canonical table values from the SAX paper.
	bps, err := Breakpoints(3)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{-0.43, 0.43}
	for i, w := range want {
		if math.Abs(bps[i]-w) > 0.01 {
			t.Errorf("alphabet 3 breakpoint %d = %v, want %v", i, bps[i], w)
		}
	}
	bps, _ = Breakpoints(4)
	want = []float64{-0.67, 0, 0.67}
	for i, w := range want {
		if math.Abs(bps[i]-w) > 0.01 {
			t.Errorf("alphabet 4 breakpoint %d = %v, want %v", i, bps[i], w)
		}
	}
	for _, bad := range []int{0, 1, 21, -3} {
		if _, err := Breakpoints(bad); err == nil {
			t.Errorf("Breakpoints(%d) should fail", bad)
		}
	}
}

func TestBreakpointsMonotoneSymmetric(t *testing.T) {
	for a := MinAlphabet; a <= MaxAlphabet; a++ {
		bps, err := Breakpoints(a)
		if err != nil {
			t.Fatal(err)
		}
		if len(bps) != a-1 {
			t.Fatalf("alphabet %d: %d breakpoints", a, len(bps))
		}
		for i := 1; i < len(bps); i++ {
			if bps[i] <= bps[i-1] {
				t.Fatalf("alphabet %d: breakpoints not increasing", a)
			}
		}
		for i := range bps {
			if math.Abs(bps[i]+bps[len(bps)-1-i]) > 1e-6 {
				t.Fatalf("alphabet %d: breakpoints not symmetric", a)
			}
		}
	}
}

func TestZNormalize(t *testing.T) {
	zn := ZNormalize([]float64{1, 2, 3, 4, 5}, 1e-12)
	var mean, ss float64
	for _, x := range zn {
		mean += x
	}
	mean /= float64(len(zn))
	for _, x := range zn {
		ss += (x - mean) * (x - mean)
	}
	std := math.Sqrt(ss / float64(len(zn)))
	if math.Abs(mean) > 1e-12 || math.Abs(std-1) > 1e-12 {
		t.Errorf("znorm mean=%v std=%v", mean, std)
	}
	// Flat series → all zeros.
	flat := ZNormalize([]float64{7, 7, 7}, 1e-12)
	for _, x := range flat {
		if x != 0 {
			t.Error("flat series should normalise to zeros")
		}
	}
}

func TestPAAExactDivision(t *testing.T) {
	out, err := PAA([]float64{1, 3, 5, 7}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 2 || out[1] != 6 {
		t.Errorf("PAA = %v, want [2 6]", out)
	}
	// w == n is the identity.
	id, _ := PAA([]float64{1, 2, 3}, 3)
	for i, v := range []float64{1, 2, 3} {
		if math.Abs(id[i]-v) > 1e-12 {
			t.Errorf("identity PAA[%d] = %v", i, id[i])
		}
	}
}

func TestPAAFractionalFrames(t *testing.T) {
	// n=5, w=2: weighted frames must preserve the overall mean.
	series := []float64{1, 2, 3, 4, 5}
	out, err := PAA(series, 2)
	if err != nil {
		t.Fatal(err)
	}
	mean := (out[0] + out[1]) / 2
	if math.Abs(mean-3) > 1e-12 {
		t.Errorf("fractional PAA mean = %v, want 3", mean)
	}
	if out[0] >= out[1] {
		t.Error("increasing series should give increasing PAA frames")
	}
}

func TestPAAValidation(t *testing.T) {
	if _, err := PAA(nil, 1); err == nil {
		t.Error("empty series should fail")
	}
	if _, err := PAA([]float64{1}, 0); err == nil {
		t.Error("w=0 should fail")
	}
	if _, err := PAA([]float64{1, 2}, 3); err == nil {
		t.Error("w>n should fail")
	}
}

func TestEncoderBasics(t *testing.T) {
	e, err := NewEncoder(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if e.WordLen() != 4 || e.Alphabet() != 4 {
		t.Error("accessors wrong")
	}
	// A ramp must produce a non-decreasing word hitting both extremes.
	series := make([]float64, 64)
	for i := range series {
		series[i] = float64(i)
	}
	w, err := e.Encode(series)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(w.Symbols); i++ {
		if w.Symbols[i] < w.Symbols[i-1] {
			t.Errorf("ramp word not monotone: %v", w.Symbols)
		}
	}
	if w.Symbols[0] != 0 || w.Symbols[3] != 3 {
		t.Errorf("ramp word should span alphabet: %v", w.Symbols)
	}
	if w.String() != "adgj"[:0]+"a"+w.String()[1:] { // sanity: starts with 'a'
		t.Errorf("word string %q should start with 'a'", w.String())
	}
}

func TestEncoderValidation(t *testing.T) {
	if _, err := NewEncoder(0, 4); err == nil {
		t.Error("wordLen 0 should fail")
	}
	if _, err := NewEncoder(4, 1); err == nil {
		t.Error("alphabet 1 should fail")
	}
	e, _ := NewEncoder(8, 4)
	if _, err := e.Encode(make([]float64, 4)); err == nil {
		t.Error("series shorter than word should fail")
	}
}

func TestSymbolize(t *testing.T) {
	e, _ := NewEncoder(4, 4)
	// Breakpoints ~ [-0.67, 0, 0.67].
	cases := []struct {
		v    float64
		want int
	}{{-2, 0}, {-0.5, 1}, {0.5, 2}, {2, 3}}
	for _, c := range cases {
		if got := e.Symbolize(c.v); got != c.want {
			t.Errorf("Symbolize(%v) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestWordString(t *testing.T) {
	w := Word{Symbols: []int{0, 1, 2}, Alphabet: 3}
	if w.String() != "abc" {
		t.Errorf("String = %q, want abc", w.String())
	}
	big := Word{Symbols: []int{0, 27}, Alphabet: 28}
	if big.String() == "" {
		t.Error("large alphabet words should still render")
	}
	bad := Word{Symbols: []int{5}, Alphabet: 3}
	if bad.String() == "" {
		t.Error("out-of-range symbols should render as fallback")
	}
}

func TestWordEqual(t *testing.T) {
	a := Word{Symbols: []int{1, 2}, Alphabet: 4}
	if !a.Equal(Word{Symbols: []int{1, 2}, Alphabet: 4}) {
		t.Error("equal words should compare equal")
	}
	if a.Equal(Word{Symbols: []int{1, 3}, Alphabet: 4}) {
		t.Error("different symbols should differ")
	}
	if a.Equal(Word{Symbols: []int{1, 2}, Alphabet: 5}) {
		t.Error("different alphabets should differ")
	}
	if a.Equal(Word{Symbols: []int{1}, Alphabet: 4}) {
		t.Error("different lengths should differ")
	}
}

func TestMinDistAdjacentSymbolsZero(t *testing.T) {
	e, _ := NewEncoder(4, 4)
	a := Word{Symbols: []int{0, 1, 2, 3}, Alphabet: 4}
	b := Word{Symbols: []int{1, 2, 3, 3}, Alphabet: 4}
	d, err := e.MinDist(a, b, 64)
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Errorf("adjacent-symbol MINDIST = %v, want 0", d)
	}
}

func TestMinDistErrors(t *testing.T) {
	e, _ := NewEncoder(4, 4)
	a := Word{Symbols: []int{0, 1, 2, 3}, Alphabet: 4}
	if _, err := e.MinDist(a, Word{Symbols: []int{0, 1, 2, 3}, Alphabet: 5}, 64); err == nil {
		t.Error("alphabet mismatch should fail")
	}
	if _, err := e.MinDist(a, Word{Symbols: []int{0, 1}, Alphabet: 4}, 64); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := e.MinDist(a, a, 2); err == nil {
		t.Error("n below word length should fail")
	}
	bad := Word{Symbols: []int{0, 1, 2, 9}, Alphabet: 4}
	if _, err := e.MinDist(a, bad, 64); err == nil {
		t.Error("out-of-range symbol should fail")
	}
}

func euclid(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// Property: MINDIST lower-bounds the Euclidean distance between the
// z-normalised series (the SAX lower-bounding lemma).
func TestMinDistLowerBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	e, err := NewEncoder(8, 5)
	if err != nil {
		t.Fatal(err)
	}
	const n = 64
	for trial := 0; trial < 200; trial++ {
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = rng.NormFloat64()*3 + math.Sin(float64(i)/5)*float64(trial%7)
			b[i] = rng.NormFloat64() * 2
		}
		wa, err := e.Encode(a)
		if err != nil {
			t.Fatal(err)
		}
		wb, err := e.Encode(b)
		if err != nil {
			t.Fatal(err)
		}
		md, err := e.MinDist(wa, wb, n)
		if err != nil {
			t.Fatal(err)
		}
		ed := euclid(ZNormalize(a, 1e-12), ZNormalize(b, 1e-12))
		if md > ed+1e-9 {
			t.Fatalf("MINDIST %v exceeds Euclidean %v (trial %d)", md, ed, trial)
		}
	}
}

func TestHammingDist(t *testing.T) {
	a := Word{Symbols: []int{0, 1, 2}, Alphabet: 4}
	b := Word{Symbols: []int{0, 2, 2}, Alphabet: 4}
	d, err := HammingDist(a, b)
	if err != nil || d != 1 {
		t.Errorf("hamming = %v, %v", d, err)
	}
	if _, err := HammingDist(a, Word{Symbols: []int{0}}); err == nil {
		t.Error("length mismatch should fail")
	}
}

func TestMinRotation(t *testing.T) {
	w := Word{Symbols: []int{2, 0, 1}, Alphabet: 3}
	r := MinRotation(w)
	want := []int{0, 1, 2}
	for i, s := range want {
		if r.Symbols[i] != s {
			t.Fatalf("MinRotation = %v, want %v", r.Symbols, want)
		}
	}
	// Rotation-invariance: all rotations share the same canonical form.
	rot := Word{Symbols: []int{1, 2, 0}, Alphabet: 3}
	if !MinRotation(rot).Equal(r) {
		t.Error("rotations should share canonical form")
	}
	empty := MinRotation(Word{Alphabet: 3})
	if len(empty.Symbols) != 0 {
		t.Error("empty word rotation")
	}
}

func TestMinRotationHamming(t *testing.T) {
	a := Word{Symbols: []int{0, 1, 2, 3}, Alphabet: 4}
	b := Word{Symbols: []int{2, 3, 0, 1}, Alphabet: 4} // pure rotation of a
	d, err := MinRotationHamming(a, b)
	if err != nil || d != 0 {
		t.Errorf("rotation hamming = %v, %v; want 0", d, err)
	}
	c := Word{Symbols: []int{0, 0, 0, 0}, Alphabet: 4}
	d, _ = MinRotationHamming(a, c)
	if d != 3 {
		t.Errorf("rotation hamming to constant = %d, want 3", d)
	}
	if _, err := MinRotationHamming(a, Word{Symbols: []int{0}}); err == nil {
		t.Error("length mismatch should fail")
	}
	if d, err := MinRotationHamming(Word{}, Word{}); err != nil || d != 0 {
		t.Error("empty words should compare 0")
	}
}

// Property: encoding is shift- and scale-invariant (z-normalisation).
func TestQuickEncodeAffineInvariant(t *testing.T) {
	e, _ := NewEncoder(4, 4)
	rng := rand.New(rand.NewSource(7))
	f := func(scaleRaw, shiftRaw uint8) bool {
		scale := 0.5 + float64(scaleRaw)/64 // strictly positive
		shift := float64(shiftRaw) - 128
		series := make([]float64, 32)
		for i := range series {
			series[i] = rng.NormFloat64()
		}
		scaled := make([]float64, len(series))
		for i, x := range series {
			scaled[i] = x*scale + shift
		}
		w1, err1 := e.Encode(series)
		w2, err2 := e.Encode(scaled)
		if err1 != nil || err2 != nil {
			return false
		}
		return w1.Equal(w2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: MINDIST is symmetric and zero on identical words.
func TestQuickMinDistMetricProperties(t *testing.T) {
	e, _ := NewEncoder(6, 5)
	f := func(raw [12]uint8) bool {
		a := Word{Symbols: make([]int, 6), Alphabet: 5}
		b := Word{Symbols: make([]int, 6), Alphabet: 5}
		for i := 0; i < 6; i++ {
			a.Symbols[i] = int(raw[i]) % 5
			b.Symbols[i] = int(raw[i+6]) % 5
		}
		dab, err1 := e.MinDist(a, b, 60)
		dba, err2 := e.MinDist(b, a, 60)
		daa, err3 := e.MinDist(a, a, 60)
		if err1 != nil || err2 != nil || err3 != nil {
			return false
		}
		return dab == dba && daa == 0 && dab >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
