// Package sax implements Symbolic Aggregate approXimation (Lin, Keogh,
// Lonardi & Chiu, DMKD 2003), the time-series symbolisation the paper's
// qualifier block uses: "We use Symbolic Approximation (SAX), which
// effectively reduces time-series data to a string which can be cheaply
// compared to other strings."
//
// The pipeline is: z-normalise the series, reduce it with Piecewise
// Aggregate Approximation (PAA), then map each segment mean to an alphabet
// symbol via breakpoints that equiprobably partition the standard normal
// distribution. MINDIST between two SAX words lower-bounds the Euclidean
// distance between the original series, which is what makes the cheap string
// comparison sound.
package sax

import (
	"fmt"
	"math"

	"repro/internal/mathx"
)

// MinAlphabet and MaxAlphabet bound the supported alphabet sizes. Sizes 3–10
// are the range tabulated in the original SAX paper; 2 is admitted because it
// is occasionally useful for coarse qualifiers.
const (
	MinAlphabet = 2
	MaxAlphabet = 20
)

// Breakpoints returns the a−1 breakpoints that divide the standard normal
// distribution into a equiprobable regions. Breakpoints are strictly
// increasing and symmetric around zero.
func Breakpoints(alphabet int) ([]float64, error) {
	if alphabet < MinAlphabet || alphabet > MaxAlphabet {
		return nil, fmt.Errorf("sax: alphabet size %d out of [%d,%d]", alphabet, MinAlphabet, MaxAlphabet)
	}
	bps := make([]float64, alphabet-1)
	for i := 1; i < alphabet; i++ {
		q, err := mathx.NormalQuantile(float64(i) / float64(alphabet))
		if err != nil {
			return nil, fmt.Errorf("sax: breakpoint %d: %w", i, err)
		}
		bps[i-1] = q
	}
	return bps, nil
}

// ZNormalize returns a z-normalised copy of series (zero mean, unit
// variance). A series whose standard deviation is below eps is returned as
// all zeros, following the common SAX convention for flat series.
func ZNormalize(series []float64, eps float64) []float64 {
	out := make([]float64, len(series))
	mean, std := mathx.MeanStd(series)
	if std < eps {
		return out
	}
	for i, x := range series {
		out[i] = (x - mean) / std
	}
	return out
}

// PAA reduces series to w segment means (Piecewise Aggregate Approximation).
// When len(series) is not divisible by w, fractional frame boundaries are
// handled by weighting elements across boundaries, the standard generalised
// PAA.
func PAA(series []float64, w int) ([]float64, error) {
	n := len(series)
	if w < 1 {
		return nil, fmt.Errorf("sax: PAA segment count %d must be >= 1", w)
	}
	if n == 0 {
		return nil, fmt.Errorf("sax: PAA of empty series")
	}
	if w > n {
		return nil, fmt.Errorf("sax: PAA segments %d exceed series length %d", w, n)
	}
	out := make([]float64, w)
	if n%w == 0 {
		seg := n / w
		for i := 0; i < w; i++ {
			var s float64
			for j := i * seg; j < (i+1)*seg; j++ {
				s += series[j]
			}
			out[i] = s / float64(seg)
		}
		return out, nil
	}
	// Generalised PAA: distribute each element's weight across frames.
	for i := 0; i < w*n; i++ {
		idx := i / n // output frame
		pos := i / w // input element
		out[idx] += series[pos]
	}
	for i := range out {
		out[i] /= float64(n)
	}
	return out, nil
}

// Word is a SAX word: symbol indices into an alphabet of the stated size.
// Symbols are stored as indices (0-based) rather than letters so that
// alphabets larger than 26 remain representable; String renders 'a'+index
// for alphabets up to 26.
type Word struct {
	Symbols  []int
	Alphabet int
}

// String renders the word as lowercase letters when the alphabet permits,
// mirroring the SAX literature (and Figure 3 of the paper, which prints the
// SAX word above the time-series plot).
func (w Word) String() string {
	if w.Alphabet > 26 {
		return fmt.Sprintf("%v", w.Symbols)
	}
	buf := make([]byte, len(w.Symbols))
	for i, s := range w.Symbols {
		if s < 0 || s >= w.Alphabet {
			return fmt.Sprintf("%v", w.Symbols)
		}
		buf[i] = byte('a' + s)
	}
	return string(buf)
}

// Equal reports whether two words are identical (same alphabet, same
// symbols).
func (w Word) Equal(o Word) bool {
	if w.Alphabet != o.Alphabet || len(w.Symbols) != len(o.Symbols) {
		return false
	}
	for i, s := range w.Symbols {
		if o.Symbols[i] != s {
			return false
		}
	}
	return true
}

// Encoder converts series to SAX words with a fixed word length and
// alphabet. It precomputes the breakpoint table and the MINDIST cell
// distances.
type Encoder struct {
	wordLen  int
	alphabet int
	bps      []float64
	cellDist [][]float64 // cellDist[r][c] per the SAX MINDIST table
	eps      float64
}

// NewEncoder returns an encoder producing words of wordLen symbols over the
// given alphabet size.
func NewEncoder(wordLen, alphabet int) (*Encoder, error) {
	if wordLen < 1 {
		return nil, fmt.Errorf("sax: word length %d must be >= 1", wordLen)
	}
	bps, err := Breakpoints(alphabet)
	if err != nil {
		return nil, err
	}
	e := &Encoder{wordLen: wordLen, alphabet: alphabet, bps: bps, eps: 1e-12}
	e.cellDist = make([][]float64, alphabet)
	for r := range e.cellDist {
		e.cellDist[r] = make([]float64, alphabet)
		for c := range e.cellDist[r] {
			if abs(r-c) <= 1 {
				continue // adjacent or identical symbols: distance 0
			}
			hi, lo := r, c
			if lo > hi {
				hi, lo = lo, hi
			}
			e.cellDist[r][c] = bps[hi-1] - bps[lo]
		}
	}
	return e, nil
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// WordLen returns the encoder's word length.
func (e *Encoder) WordLen() int { return e.wordLen }

// Alphabet returns the encoder's alphabet size.
func (e *Encoder) Alphabet() int { return e.alphabet }

// Symbolize maps one z-normalised value to its alphabet symbol.
func (e *Encoder) Symbolize(v float64) int {
	// Linear scan: alphabets are tiny (≤ 20) and this is branch-predictable.
	for i, bp := range e.bps {
		if v < bp {
			return i
		}
	}
	return e.alphabet - 1
}

// Encode converts a raw series to its SAX word: z-normalise, PAA to the word
// length, then symbolise each segment mean.
func (e *Encoder) Encode(series []float64) (Word, error) {
	if len(series) < e.wordLen {
		return Word{}, fmt.Errorf("sax: series length %d below word length %d", len(series), e.wordLen)
	}
	zn := ZNormalize(series, e.eps)
	paa, err := PAA(zn, e.wordLen)
	if err != nil {
		return Word{}, err
	}
	syms := make([]int, e.wordLen)
	for i, v := range paa {
		syms[i] = e.Symbolize(v)
	}
	return Word{Symbols: syms, Alphabet: e.alphabet}, nil
}

// MinDist returns the MINDIST lower bound between two SAX words for original
// series of length n. MINDIST(Q̂, Ĉ) = sqrt(n/w) · sqrt(Σ dist(q̂ᵢ, ĉᵢ)²),
// which provably lower-bounds the Euclidean distance between the
// z-normalised originals.
func (e *Encoder) MinDist(a, b Word, n int) (float64, error) {
	if a.Alphabet != e.alphabet || b.Alphabet != e.alphabet {
		return 0, fmt.Errorf("sax: word alphabets (%d,%d) do not match encoder alphabet %d",
			a.Alphabet, b.Alphabet, e.alphabet)
	}
	if len(a.Symbols) != e.wordLen || len(b.Symbols) != e.wordLen {
		return 0, fmt.Errorf("sax: word lengths (%d,%d) do not match encoder word length %d",
			len(a.Symbols), len(b.Symbols), e.wordLen)
	}
	if n < e.wordLen {
		return 0, fmt.Errorf("sax: original length %d below word length %d", n, e.wordLen)
	}
	var s float64
	for i := range a.Symbols {
		ra, rb := a.Symbols[i], b.Symbols[i]
		if ra < 0 || ra >= e.alphabet || rb < 0 || rb >= e.alphabet {
			return 0, fmt.Errorf("sax: symbol out of range at position %d", i)
		}
		d := e.cellDist[ra][rb]
		s += d * d
	}
	return math.Sqrt(float64(n)/float64(e.wordLen)) * math.Sqrt(s), nil
}

// HammingDist returns the number of positions at which the two words differ —
// the "cheaply compared" string distance the paper alludes to for qualifier
// matching. Word lengths must match.
func HammingDist(a, b Word) (int, error) {
	if len(a.Symbols) != len(b.Symbols) {
		return 0, fmt.Errorf("sax: hamming distance of words with lengths %d and %d",
			len(a.Symbols), len(b.Symbols))
	}
	n := 0
	for i := range a.Symbols {
		if a.Symbols[i] != b.Symbols[i] {
			n++
		}
	}
	return n, nil
}

// MinRotation returns the rotation of w that is lexicographically smallest.
// Radial shape series have an arbitrary angular origin, so qualifier
// matching compares rotation-normalised words (Booth's canonical rotation,
// computed here by the simple O(n²) scan — words are short).
func MinRotation(w Word) Word {
	n := len(w.Symbols)
	if n == 0 {
		return w
	}
	best := 0
	for cand := 1; cand < n; cand++ {
		for k := 0; k < n; k++ {
			a := w.Symbols[(cand+k)%n]
			b := w.Symbols[(best+k)%n]
			if a != b {
				if a < b {
					best = cand
				}
				break
			}
		}
	}
	out := Word{Symbols: make([]int, n), Alphabet: w.Alphabet}
	for k := 0; k < n; k++ {
		out.Symbols[k] = w.Symbols[(best+k)%n]
	}
	return out
}

// MinRotationMinDist returns the smallest MINDIST between a and any rotation
// of b — the rotation-invariant variant used for closed-contour (radial)
// series, whose angular origin is arbitrary. Because MINDIST charges nothing
// for adjacent symbols, it is also robust to the phase aliasing that occurs
// when PAA segment boundaries fall near the series' natural period.
func (e *Encoder) MinRotationMinDist(a, b Word, n int) (float64, error) {
	if len(a.Symbols) != len(b.Symbols) {
		return 0, fmt.Errorf("sax: rotation mindist of words with lengths %d and %d",
			len(a.Symbols), len(b.Symbols))
	}
	w := len(b.Symbols)
	if w == 0 {
		return 0, nil
	}
	best := math.Inf(1)
	rot := Word{Symbols: make([]int, w), Alphabet: b.Alphabet}
	for r := 0; r < w; r++ {
		for k := 0; k < w; k++ {
			rot.Symbols[k] = b.Symbols[(k+r)%w]
		}
		d, err := e.MinDist(a, rot, n)
		if err != nil {
			return 0, err
		}
		if d < best {
			best = d
		}
	}
	return best, nil
}

// MinRotationHamming returns the smallest Hamming distance between a and any
// rotation of b — rotation-invariant word comparison for closed-contour
// series.
func MinRotationHamming(a, b Word) (int, error) {
	if len(a.Symbols) != len(b.Symbols) {
		return 0, fmt.Errorf("sax: rotation hamming of words with lengths %d and %d",
			len(a.Symbols), len(b.Symbols))
	}
	n := len(a.Symbols)
	if n == 0 {
		return 0, nil
	}
	best := n + 1
	for rot := 0; rot < n; rot++ {
		d := 0
		for k := 0; k < n; k++ {
			if a.Symbols[k] != b.Symbols[(k+rot)%n] {
				d++
			}
		}
		if d < best {
			best = d
		}
	}
	return best, nil
}
