package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/gtsrb"
	"repro/internal/nn"
	"repro/internal/train"
)

// ConfusionCompareResult reproduces the in-text Section III-B result: "we
// naively replace the first of the filters with a Sobel-x, Sobel-y, Sobel-x
// filter. We compare both the confusion matrices of the original and
// replaced filters and the accuracy and note no substantial difference."
type ConfusionCompareResult struct {
	OriginalAccuracy float64
	ReplacedAccuracy float64
	// MaxCellDiff is the largest per-cell confusion difference as a
	// fraction of the total observations.
	MaxCellDiff float64
	Original    *train.ConfusionMatrix
	Replaced    *train.ConfusionMatrix
}

// RunConfusionCompare trains a model, replaces filter 0 with the paper's
// Sobel filter and compares confusion matrices.
func RunConfusionCompare(cfg Figure4Config) (*ConfusionCompareResult, error) {
	cfg = cfg.normalize()
	net, _, testSet, err := trainFigure4Model(cfg)
	if err != nil {
		return nil, err
	}
	orig, err := train.Evaluate(net, testSet)
	if err != nil {
		return nil, err
	}
	conv1, err := nn.FirstConv(net)
	if err != nil {
		return nil, err
	}
	sobel, err := core.PaperSobelFilter(conv1.Kernel())
	if err != nil {
		return nil, err
	}
	prev, prevBias, err := core.ReplaceFilter(conv1, 0, sobel)
	if err != nil {
		return nil, err
	}
	replaced, err := train.Evaluate(net, testSet)
	if err != nil {
		return nil, err
	}
	if err := core.RestoreFilter(conv1, 0, prev, prevBias); err != nil {
		return nil, err
	}
	diff, err := orig.MaxAbsDiff(replaced)
	if err != nil {
		return nil, err
	}
	return &ConfusionCompareResult{
		OriginalAccuracy: orig.Accuracy(),
		ReplacedAccuracy: replaced.Accuracy(),
		MaxCellDiff:      diff,
		Original:         orig,
		Replaced:         replaced,
	}, nil
}

// Markdown renders the comparison.
func (r *ConfusionCompareResult) Markdown() string {
	return fmt.Sprintf(
		"Replacing filter 0 with the Sobel-x/Sobel-y/Sobel-x filter:\n\n"+
			"| | Accuracy |\n| --- | --- |\n| original | %.4f |\n| replaced | %.4f |\n\n"+
			"max confusion-cell difference: %.4f of observations\n\n"+
			"original:\n```\n%s```\nreplaced:\n```\n%s```\n",
		r.OriginalAccuracy, r.ReplacedAccuracy, r.MaxCellDiff,
		r.Original.String(), r.Replaced.String())
}

// FreezeStudyRow is one freeze regime's outcome.
type FreezeStudyRow struct {
	Mode     train.FreezeMode
	Accuracy float64
	// Drift is the L2 distance of the pre-initialised filter from its
	// initialisation after training.
	Drift float64
}

// FreezeStudyResult reproduces the in-text Section III-B pre-initialisation
// study: pre-initialise a filter to Sobel, train with the filter frozen
// (hard / TF-style drift / reset each epoch), and observe that "the accuracy
// of the model is not affected" while the TF-style freeze still lets the
// filter undergo "subtle changes".
type FreezeStudyResult struct {
	FreeAccuracy float64 // no Sobel pre-initialisation at all
	Rows         []FreezeStudyRow
}

// RunFreezeStudy trains one model per freeze regime from identical seeds.
func RunFreezeStudy(cfg Figure4Config) (*FreezeStudyResult, error) {
	cfg = cfg.normalize()
	res := &FreezeStudyResult{}

	// Reference: plain training without pre-initialisation.
	net, _, testSet, err := trainFigure4Model(cfg)
	if err != nil {
		return nil, err
	}
	res.FreeAccuracy, err = train.Accuracy(net, testSet)
	if err != nil {
		return nil, err
	}

	for _, mode := range []train.FreezeMode{train.FreezeHard, train.FreezeDrift, train.FreezeResetEpoch} {
		rng := rand.New(rand.NewSource(cfg.Seed))
		m, err := nn.NewMicroAlexNet(cfg.Micro, rng)
		if err != nil {
			return nil, err
		}
		conv1, err := nn.FirstConv(m)
		if err != nil {
			return nil, err
		}
		sobel, err := core.PaperSobelFilter(conv1.Kernel())
		if err != nil {
			return nil, err
		}
		if _, _, err := core.ReplaceFilter(conv1, 0, sobel); err != nil {
			return nil, err
		}
		fz, err := train.NewFilterFreeze(conv1, mode, 0)
		if err != nil {
			return nil, err
		}
		ds, err := gtsrb.Generate(gtsrb.Config{
			Size: cfg.Micro.InputSize, PerClass: cfg.PerClass + cfg.PerClass/2,
		}, rand.New(rand.NewSource(cfg.Seed+1)))
		if err != nil {
			return nil, err
		}
		trainSet, test, err := ds.Split(2.0 / 3.0)
		if err != nil {
			return nil, err
		}
		opt, err := train.NewSGD(cfg.LR, 0.9, 1e-4)
		if err != nil {
			return nil, err
		}
		tr := &train.Trainer{Net: m, Opt: opt, BatchSize: 8, Epochs: cfg.Epochs,
			Freezes: []*train.FilterFreeze{fz}, Rng: rng}
		if _, err := tr.Fit(trainSet); err != nil {
			return nil, err
		}
		acc, err := train.Accuracy(m, test)
		if err != nil {
			return nil, err
		}
		drift, err := fz.Drift(0)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, FreezeStudyRow{Mode: mode, Accuracy: acc, Drift: drift})
	}
	return res, nil
}

// Markdown renders the study.
func (r *FreezeStudyResult) Markdown() string {
	rows := make([][]string, 0, len(r.Rows)+1)
	rows = append(rows, []string{"free training (no Sobel)", fmt.Sprintf("%.4f", r.FreeAccuracy), "—"})
	for _, row := range r.Rows {
		rows = append(rows, []string{
			"sobel + " + row.Mode.String(),
			fmt.Sprintf("%.4f", row.Accuracy),
			fmt.Sprintf("%.5f", row.Drift),
		})
	}
	return Markdown([]string{"Regime", "Accuracy", "Filter drift (L2)"}, rows)
}
