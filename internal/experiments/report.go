// Package experiments regenerates every table and figure of the paper's
// evaluation, plus the two design-choice ablations DESIGN.md commits to:
//
//   - Table 1: reliable convolution runtime, plain vs redundant operators,
//     with the native execution and SAX qualifier reference timings;
//   - Figure 3: the radial time series and SAX word of a slightly angled
//     stop sign;
//   - Figure 4: stop-class confidence after replacing each first-layer
//     filter with a Sobel filter;
//   - in-text results: Sobel replacement confusion-matrix comparison and
//     the freeze-mode study;
//   - Ablation A: redundancy-mode fault coverage (temporal/spatial DMR,
//     TMR) under transient and permanent faults;
//   - Ablation B: rollback distance (operation vs unit vs none).
//
// Each experiment returns structured rows; Markdown renders them for the
// CLI and EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"strings"
)

// Markdown renders a pipe table.
func Markdown(headers []string, rows [][]string) string {
	var b strings.Builder
	b.WriteString("| " + strings.Join(headers, " | ") + " |\n")
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = "---"
	}
	b.WriteString("| " + strings.Join(sep, " | ") + " |\n")
	for _, row := range rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	return b.String()
}

// ASCIIPlot renders a series as a crude terminal plot (rows top-down from
// max to min), matching the role of Figure 3's plot. The SAX word, when
// non-empty, is printed above the plot exactly as in the paper's figure.
func ASCIIPlot(series []float64, width, height int, saxWord string) string {
	if len(series) == 0 || width < 2 || height < 2 {
		return ""
	}
	mn, mx := series[0], series[0]
	for _, v := range series {
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
	}
	span := mx - mn
	if span == 0 {
		span = 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for c := 0; c < width; c++ {
		idx := c * (len(series) - 1) / (width - 1)
		v := series[idx]
		r := int((mx - v) / span * float64(height-1))
		grid[r][c] = '*'
	}
	var b strings.Builder
	if saxWord != "" {
		fmt.Fprintf(&b, "SAX: %s\n", saxWord)
	}
	for _, row := range grid {
		b.WriteString(string(row))
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "min=%.2f max=%.2f n=%d\n", mn, mx, len(series))
	return b.String()
}
