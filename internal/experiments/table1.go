package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/fault"
	"repro/internal/gtsrb"
	"repro/internal/reliable"
	"repro/internal/shape"
	"repro/internal/tensor"
)

// Table1Config sizes the Table 1 workload.
type Table1Config struct {
	// Full selects the paper's exact first AlexNet convolution layer:
	// 96 filters of 11×11×3 over a 227×227×3 input at stride 4
	// (105,415,200 MACs). When false, a scaled workload (16 filters of
	// 11×11×3 over 64×64×3) keeps CI fast while preserving the ratios.
	Full bool
	// Reps is how many times each timed row runs; the minimum is reported
	// (standard wall-clock de-noising; default 3 scaled, 1 full).
	Reps int
	// Seed drives the input/filter contents.
	Seed int64
}

// Table1Row is one measurement row.
type Table1Row struct {
	Name    string
	Seconds float64
	// RatioVsPlain is the row's time over the reliable-plain row's time
	// (the paper's headline 648.87/301.91 ≈ 2.15).
	RatioVsPlain float64
	MACs         uint64
}

// Table1Result carries all rows plus the workload description.
type Table1Result struct {
	Rows     []Table1Row
	Workload string
}

// workload builds the convolution operands.
func (c Table1Config) workload() (in, filters *tensor.Tensor, spec reliable.ConvSpec, desc string, err error) {
	rng := rand.New(rand.NewSource(c.Seed))
	if c.Full {
		in = tensor.MustNew(3, 227, 227)
		filters = tensor.MustNew(96, 3, 11, 11)
		spec = reliable.ConvSpec{Stride: 4}
		desc = "AlexNet conv1: 96 × 11×11×3 over 227×227×3, stride 4"
	} else {
		in = tensor.MustNew(3, 64, 64)
		filters = tensor.MustNew(16, 3, 11, 11)
		spec = reliable.ConvSpec{Stride: 4}
		desc = "scaled conv1: 16 × 11×11×3 over 64×64×3, stride 4"
	}
	in.FillUniform(rng, 0, 1)
	filters.FillUniform(rng, -0.1, 0.1)
	return in, filters, spec, desc, nil
}

// RunTable1 regenerates Table 1: native execution, the reliable convolution
// kernel (Algorithm 3) with non-redundant multiplication (Algorithm 1) and
// with redundant multiplication (Algorithm 2), plus the SAX qualifier
// reference timing the paper quotes alongside (1.942 s naive Python).
func RunTable1(cfg Table1Config) (*Table1Result, error) {
	in, filters, spec, desc, err := cfg.workload()
	if err != nil {
		return nil, err
	}
	macs, err := reliable.MACCount(in, filters, spec)
	if err != nil {
		return nil, err
	}
	res := &Table1Result{Workload: desc}
	reps := cfg.Reps
	if reps == 0 {
		if cfg.Full {
			reps = 1
		} else {
			reps = 3
		}
	}
	best := func(f func() error) (float64, error) {
		bestSec := 0.0
		for r := 0; r < reps; r++ {
			start := time.Now()
			if err := f(); err != nil {
				return 0, err
			}
			sec := time.Since(start).Seconds()
			if r == 0 || sec < bestSec {
				bestSec = sec
			}
		}
		return bestSec, nil
	}

	// Native (unprotected) execution — the paper's "native TensorFlow
	// execution achieves this in 0.05 s" reference row.
	nativeSec, err := best(func() error {
		_, err := reliable.NativeConv2D(in, filters, nil, spec)
		return err
	})
	if err != nil {
		return nil, err
	}

	timeReliable := func(ops reliable.Ops) (float64, error) {
		return best(func() error {
			engine, err := reliable.NewEngine(ops, nil)
			if err != nil {
				return err
			}
			_, err = reliable.Conv2D(engine, in, filters, nil, spec)
			return err
		})
	}
	// The overloaded operators execute on the bit-level emulated IEEE-754
	// circuits (fault.Soft), the software stand-in for the FPGA arithmetic
	// operators the paper targets. This reproduces the paper's cost
	// structure: the arithmetic dominates, so redundant execution costs
	// ≈ 2× non-redundant and both dwarf native execution.
	plainOps, err := reliable.NewPlain(fault.Soft{})
	if err != nil {
		return nil, err
	}
	plainSec, err := timeReliable(plainOps)
	if err != nil {
		return nil, fmt.Errorf("experiments: table1 plain: %w", err)
	}
	dmrOps, err := reliable.NewTemporalDMR(fault.Soft{})
	if err != nil {
		return nil, err
	}
	dmrSec, err := timeReliable(dmrOps)
	if err != nil {
		return nil, fmt.Errorf("experiments: table1 redundant: %w", err)
	}

	// SAX qualifier reference: full shape-determination pipeline on an
	// angled stop sign.
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	img, err := gtsrb.AngledStopSign(96, rng)
	if err != nil {
		return nil, err
	}
	q, err := shape.NewQualifier(shape.DefaultQualifierConfig())
	if err != nil {
		return nil, err
	}
	saxSec, err := best(func() error {
		_, err := q.QualifyImage(img)
		return err
	})
	if err != nil {
		return nil, err
	}

	res.Rows = []Table1Row{
		{Name: "native execution (reference)", Seconds: nativeSec, RatioVsPlain: nativeSec / plainSec, MACs: macs},
		{Name: "reliable conv, Multiplication (Algorithm 1)", Seconds: plainSec, RatioVsPlain: 1, MACs: macs},
		{Name: "reliable conv, Redundant Multiplication (Algorithm 2)", Seconds: dmrSec, RatioVsPlain: dmrSec / plainSec, MACs: macs},
		{Name: "SAX shape determination (reference)", Seconds: saxSec, RatioVsPlain: saxSec / plainSec},
	}
	return res, nil
}

// Markdown renders the result.
func (r *Table1Result) Markdown() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Name,
			fmt.Sprintf("%.4f s", row.Seconds),
			fmt.Sprintf("%.3f×", row.RatioVsPlain),
		})
	}
	return "Workload: " + r.Workload + "\n\n" +
		Markdown([]string{"Execution", "Time", "vs Algorithm 1"}, rows)
}
