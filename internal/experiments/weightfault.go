package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/fault"
	"repro/internal/nn"
	"repro/internal/reliable"
	"repro/internal/tensor"
	"repro/internal/train"
)

// WeightFaultConfig sizes the weight-memory SEU study.
type WeightFaultConfig struct {
	// Training configuration (shares Figure4Config defaults).
	Train Figure4Config
	// UpsetCounts is the sweep of injected single-bit upsets into the
	// first convolution layer's weight memory (default 1, 4, 16, 64).
	UpsetCounts []int
	// DoubleFraction is the fraction of upset words that receive a SECOND
	// upset (uncorrectable by SECDED; default 0.25).
	DoubleFraction float64
	// Trials per upset count (default 5).
	Trials int
}

func (c WeightFaultConfig) normalize() WeightFaultConfig {
	c.Train = c.Train.normalize()
	if len(c.UpsetCounts) == 0 {
		c.UpsetCounts = []int{1, 4, 16, 64}
	}
	if c.DoubleFraction == 0 {
		c.DoubleFraction = 0.25
	}
	if c.Trials == 0 {
		c.Trials = 5
	}
	return c
}

// WeightFaultRow is one sweep point (averaged over trials).
type WeightFaultRow struct {
	Upsets int
	// AccuracyUnprotected is the test accuracy with corrupted weights and
	// no memory protection.
	AccuracyUnprotected float64
	// AccuracyECC is the test accuracy when the weights live in SECDED ECC
	// memory: single upsets are corrected on read, double upsets detected.
	AccuracyECC float64
	// DetectedWords is the mean number of words whose corruption the ECC
	// flagged as uncorrectable (read back as detected, excluded from use
	// by zeroing — a masking strategy akin to activation clipping).
	DetectedWords float64
}

// WeightFaultResult is the study outcome.
type WeightFaultResult struct {
	BaselineAccuracy float64
	Rows             []WeightFaultRow
	// DMRMissesWeightFault records the Section II point that redundant
	// EXECUTION cannot detect corrupted STORAGE: with one weight word
	// corrupted, the temporal-DMR convolution finishes with zero detected
	// errors yet produces a wrong feature map.
	DMRMissesWeightFault bool
}

// RunWeightFaultStudy quantifies the paper's second fault class — "data
// corruption of the weights and input data may critically alter the result"
// — and shows why the hybrid architecture pairs reliable execution with
// independent protection for stored state (the ECC the GPU vendors of
// Section II-C deploy).
func RunWeightFaultStudy(cfg WeightFaultConfig) (*WeightFaultResult, error) {
	cfg = cfg.normalize()
	net, _, testSet, err := trainFigure4Model(cfg.Train)
	if err != nil {
		return nil, err
	}
	res := &WeightFaultResult{}
	res.BaselineAccuracy, err = train.Accuracy(net, testSet)
	if err != nil {
		return nil, err
	}
	conv1, err := nn.FirstConv(net)
	if err != nil {
		return nil, err
	}
	weights := conv1.Weight().Data()
	pristine := append([]float32(nil), weights...)
	restore := func() { copy(weights, pristine) }
	defer restore()

	rng := rand.New(rand.NewSource(cfg.Train.Seed + 77))
	for _, upsets := range cfg.UpsetCounts {
		if upsets > len(weights) {
			return nil, fmt.Errorf("experiments: %d upsets exceed %d weight words", upsets, len(weights))
		}
		var accPlain, accECC, detected float64
		for trial := 0; trial < cfg.Trials; trial++ {
			// Choose the upset words once per trial so both arms see the
			// same fault pattern.
			words := rng.Perm(len(weights))[:upsets]
			doubles := int(cfg.DoubleFraction * float64(upsets))

			// Arm 1: unprotected memory.
			restore()
			for i, w := range words {
				weights[w] = fault.CorruptFloat(fault.BitFlip{Bit: -1}, weights[w], rng)
				if i < doubles {
					weights[w] = fault.CorruptFloat(fault.BitFlip{Bit: -1}, weights[w], rng)
				}
			}
			a, err := train.Accuracy(net, testSet)
			if err != nil {
				return nil, err
			}
			accPlain += a

			// Arm 2: SECDED ECC memory with the same upsets.
			restore()
			mem := fault.NewECCMemory(pristine)
			for i, w := range words {
				if err := mem.Upset(w, rng); err != nil {
					return nil, err
				}
				if i < doubles {
					if err := mem.Upset(w, rng); err != nil {
						return nil, err
					}
				}
			}
			det := 0
			for i := range weights {
				v, ok, err := mem.Read(i, pristine)
				if err != nil {
					return nil, err
				}
				if !ok {
					// Uncorrectable word: detected. Mask it to zero (the
					// activation-clipping analogue for weights).
					v = 0
					det++
				}
				weights[i] = v
			}
			a, err = train.Accuracy(net, testSet)
			if err != nil {
				return nil, err
			}
			accECC += a
			detected += float64(det)
		}
		res.Rows = append(res.Rows, WeightFaultRow{
			Upsets:              upsets,
			AccuracyUnprotected: accPlain / float64(cfg.Trials),
			AccuracyECC:         accECC / float64(cfg.Trials),
			DetectedWords:       detected / float64(cfg.Trials),
		})
	}
	restore()

	// The Section II demonstration: corrupt ONE stored weight massively and
	// run the reliable (temporal-DMR) convolution — the engine reports zero
	// failures, yet the output differs from the pristine computation.
	rngIn := rand.New(rand.NewSource(cfg.Train.Seed + 88))
	in := tensor.MustNew(conv1.InChannels(), 16, 16)
	in.FillUniform(rngIn, 0, 1)
	spec := reliable.ConvSpec{Stride: conv1.Stride(), Pad: conv1.Pad()}
	clean, err := reliable.NativeConv2D(in, conv1.Weight(), conv1.Bias().Data(), spec)
	if err != nil {
		return nil, err
	}
	weights[0] = fault.CorruptFloat(fault.BitFlip{Bit: 30}, weights[0], rngIn)
	ops, err := reliable.NewTemporalDMR(fault.Ideal{})
	if err != nil {
		return nil, err
	}
	engine, err := reliable.NewEngine(ops, nil)
	if err != nil {
		return nil, err
	}
	corrupted, err := reliable.Conv2D(engine, in, conv1.Weight(), conv1.Bias().Data(), spec)
	if err != nil {
		return nil, err
	}
	res.DMRMissesWeightFault = engine.Stats().Failed == 0 && !clean.Equal(corrupted)
	restore()
	return res, nil
}

// Markdown renders the study.
func (r *WeightFaultResult) Markdown() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			fmt.Sprintf("%d", row.Upsets),
			fmt.Sprintf("%.4f", row.AccuracyUnprotected),
			fmt.Sprintf("%.4f", row.AccuracyECC),
			fmt.Sprintf("%.1f", row.DetectedWords),
		})
	}
	out := fmt.Sprintf("Baseline accuracy: %.4f\n\n", r.BaselineAccuracy) +
		Markdown([]string{"Weight upsets", "Accuracy (unprotected)", "Accuracy (SECDED ECC)", "Detected words"}, rows)
	if r.DMRMissesWeightFault {
		out += "\nConfirmed: temporal-DMR execution reported ZERO failures while computing\n" +
			"with a corrupted stored weight — redundant execution cannot detect storage\n" +
			"faults, which is why weight memory needs its own (ECC) protection.\n"
	}
	return out
}
