package experiments

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/reliable"
	"repro/internal/tensor"
)

// CoverageConfig sizes the redundancy-coverage ablation (Ablation A).
type CoverageConfig struct {
	// Trials per (mode, scenario) cell (default 30).
	Trials int
	// TransientRate is the per-operation SEU probability for the
	// transient scenario (default 5e-4).
	TransientRate float64
	// Seed drives everything.
	Seed int64
}

func (c CoverageConfig) normalize() CoverageConfig {
	if c.Trials == 0 {
		c.Trials = 30
	}
	if c.TransientRate == 0 {
		c.TransientRate = 5e-4
	}
	return c
}

// CoverageRow is one (mode, fault scenario) cell.
type CoverageRow struct {
	Mode     core.RedundancyMode
	Scenario string
	Tally    fault.Tally
}

// coverageWorkload builds the small convolution used per trial.
func coverageWorkload(seed int64) (in, filters, oracle *tensor.Tensor, spec reliable.ConvSpec, err error) {
	rng := rand.New(rand.NewSource(seed))
	in = tensor.MustNew(3, 8, 8)
	in.FillUniform(rng, 0, 1)
	filters = tensor.MustNew(2, 3, 3, 3)
	filters.FillUniform(rng, -0.5, 0.5)
	spec = reliable.ConvSpec{Stride: 1}
	oracle, err = reliable.NativeConv2D(in, filters, nil, spec)
	return in, filters, oracle, spec, err
}

// RunRedundancyCoverage measures the masked/corrected/detected/SDC split of
// every redundancy mode under transient SEUs and under a permanent single-PE
// defect — the quantitative version of Section II's qualitative argument
// that temporal redundancy handles transients but is defeated by permanent
// faults, which spatial redundancy detects and TMR masks.
func RunRedundancyCoverage(cfg CoverageConfig) ([]CoverageRow, error) {
	cfg = cfg.normalize()
	in, filters, oracle, spec, err := coverageWorkload(cfg.Seed)
	if err != nil {
		return nil, err
	}
	modes := []core.RedundancyMode{
		core.ModePlain, core.ModeTemporalDMR, core.ModeSpatialDMR, core.ModeTMR,
	}
	scenarios := []string{"transient", "permanent-1pe"}
	var rows []CoverageRow
	trialSeed := cfg.Seed

	for _, mode := range modes {
		for _, scenario := range scenarios {
			tally, err := fault.RunCampaign(cfg.Trials, func() (bool, bool, error) {
				trialSeed++
				factory := coverageFactory(scenario, cfg.TransientRate, trialSeed)
				ops, err := mode.NewOps(factory)
				if err != nil {
					return false, false, err
				}
				engine, err := reliable.NewEngine(ops, nil)
				if err != nil {
					return false, false, err
				}
				out, err := reliable.Conv2D(engine, in, filters, nil, spec)
				if err != nil {
					if errors.Is(err, reliable.ErrBucketTripped) {
						return false, true, nil // detected unrecoverable
					}
					return false, false, err
				}
				correct := out.Equal(oracle)
				signalled := engine.Stats().Retries > 0
				return correct, signalled, nil
			})
			if err != nil {
				return nil, fmt.Errorf("experiments: coverage %v/%s: %w", mode, scenario, err)
			}
			rows = append(rows, CoverageRow{Mode: mode, Scenario: scenario, Tally: tally})
		}
	}
	return rows, nil
}

// coverageFactory returns an ALU factory for the scenario. For the
// permanent scenario only the FIRST PE drawn is defective, so spatial
// redundancy pairs a broken PE with a healthy one.
func coverageFactory(scenario string, rate float64, seed int64) core.ALUFactory {
	n := 0
	rng := rand.New(rand.NewSource(seed))
	return func() fault.ALU {
		n++
		switch scenario {
		case "transient":
			alu, err := fault.NewTransient(rate, fault.BitFlip{Bit: -1},
				rand.New(rand.NewSource(seed+int64(n)*101)))
			if err != nil {
				panic(err) // unreachable: parameters are valid
			}
			return alu
		case "permanent-1pe":
			if n == 1 {
				alu, err := fault.NewPermanent(fault.StuckAt{Bit: 22, Value: true})
				if err != nil {
					panic(err)
				}
				return alu
			}
			return fault.Ideal{}
		default:
			_ = rng
			return fault.Ideal{}
		}
	}
}

// CoverageMarkdown renders the coverage rows.
func CoverageMarkdown(rows []CoverageRow) string {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			r.Mode.String(), r.Scenario,
			fmt.Sprintf("%d", r.Tally.Masked),
			fmt.Sprintf("%d", r.Tally.Corrected),
			fmt.Sprintf("%d", r.Tally.Detected),
			fmt.Sprintf("%d", r.Tally.SDC),
			fmt.Sprintf("%.3f", r.Tally.Coverage()),
		})
	}
	return Markdown([]string{"Mode", "Fault", "Masked", "Corrected", "Detected", "SDC", "Coverage"}, out)
}

// RollbackConfig sizes the rollback-distance ablation (Ablation B).
type RollbackConfig struct {
	// Trials per (strategy, rate) cell (default 20).
	Trials int
	// Rates are the transient fault rates to sweep
	// (default 1e-5, 1e-4, 1e-3).
	Rates []float64
	// MaxUnitAttempts bounds unit-level rollback (default 4).
	MaxUnitAttempts int
	// Seed drives everything.
	Seed int64
}

func (c RollbackConfig) normalize() RollbackConfig {
	if c.Trials == 0 {
		c.Trials = 20
	}
	if len(c.Rates) == 0 {
		c.Rates = []float64{1e-5, 1e-4, 1e-3}
	}
	if c.MaxUnitAttempts == 0 {
		c.MaxUnitAttempts = 4
	}
	return c
}

// RollbackRow is one (strategy, rate) cell.
type RollbackRow struct {
	Strategy string
	Rate     float64
	Tally    fault.Tally
	// WorkFactor is the mean executed work relative to one unprotected
	// pass over the unit (1.0 = no overhead).
	WorkFactor float64
}

// RunRollbackAblation compares rollback distances under transient faults:
//
//   - "op" — the paper's one-operation rollback (Algorithm 3 with temporal
//     DMR): a detected error re-executes ONE multiply or add;
//   - "unit" — classical checkpointing: the whole convolution executes
//     twice, mismatch discards and re-executes the whole unit;
//   - "none" — unprotected single execution.
//
// It quantifies Section II-E: with hard deadlines the rollback distance of
// one operation bounds the worst-case recovery work, while unit-level
// rollback multiplies it and eventually exhausts its attempt budget.
func RunRollbackAblation(cfg RollbackConfig) ([]RollbackRow, error) {
	cfg = cfg.normalize()
	in, filters, oracle, spec, err := coverageWorkload(cfg.Seed)
	if err != nil {
		return nil, err
	}
	macs, err := reliable.MACCount(in, filters, spec)
	if err != nil {
		return nil, err
	}
	opsPerUnit := 2 * macs // one mul + one add per MAC
	var rows []RollbackRow
	trialSeed := cfg.Seed + 7_000_000

	for _, rate := range cfg.Rates {
		// Strategy 1: op-level rollback (temporal DMR engine).
		var workSum float64
		tally, err := fault.RunCampaign(cfg.Trials, func() (bool, bool, error) {
			trialSeed++
			alu, err := fault.NewTransient(rate, fault.BitFlip{Bit: -1},
				rand.New(rand.NewSource(trialSeed)))
			if err != nil {
				return false, false, err
			}
			ops, err := reliable.NewTemporalDMR(alu)
			if err != nil {
				return false, false, err
			}
			engine, err := reliable.NewEngine(ops, nil)
			if err != nil {
				return false, false, err
			}
			out, err := reliable.Conv2D(engine, in, filters, nil, spec)
			// Each attempt executes the operation twice under DMR.
			workSum += 2 * float64(engine.Stats().Ops) / float64(opsPerUnit)
			if err != nil {
				if errors.Is(err, reliable.ErrBucketTripped) {
					return false, true, nil
				}
				return false, false, err
			}
			return out.Equal(oracle), engine.Stats().Retries > 0, nil
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: rollback op-level: %w", err)
		}
		rows = append(rows, RollbackRow{
			Strategy: "op", Rate: rate, Tally: tally,
			WorkFactor: workSum / float64(cfg.Trials),
		})

		// Strategy 2: unit-level checkpoint/rollback.
		workSum = 0
		tally, err = fault.RunCampaign(cfg.Trials, func() (bool, bool, error) {
			trialSeed++
			alu, err := fault.NewTransient(rate, fault.BitFlip{Bit: -1},
				rand.New(rand.NewSource(trialSeed)))
			if err != nil {
				return false, false, err
			}
			plain, err := reliable.NewPlain(alu)
			if err != nil {
				return false, false, err
			}
			unit := func() (*tensor.Tensor, error) {
				engine, err := reliable.NewEngine(plain, reliable.NewDefaultBucket())
				if err != nil {
					return nil, err
				}
				return reliable.Conv2D(engine, in, filters, nil, spec)
			}
			res, err := reliable.CheckpointedRun(unit, cfg.MaxUnitAttempts, opsPerUnit)
			workSum += float64(res.OpsExecuted) / float64(opsPerUnit)
			if err != nil {
				if errors.Is(err, reliable.ErrRollbackExhausted) {
					return false, true, nil
				}
				return false, false, err
			}
			return res.Output.Equal(oracle), res.Rollbacks > 0, nil
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: rollback unit-level: %w", err)
		}
		rows = append(rows, RollbackRow{
			Strategy: "unit", Rate: rate, Tally: tally,
			WorkFactor: workSum / float64(cfg.Trials),
		})

		// Strategy 3: unprotected.
		tally, err = fault.RunCampaign(cfg.Trials, func() (bool, bool, error) {
			trialSeed++
			alu, err := fault.NewTransient(rate, fault.BitFlip{Bit: -1},
				rand.New(rand.NewSource(trialSeed)))
			if err != nil {
				return false, false, err
			}
			plain, err := reliable.NewPlain(alu)
			if err != nil {
				return false, false, err
			}
			engine, err := reliable.NewEngine(plain, nil)
			if err != nil {
				return false, false, err
			}
			out, err := reliable.Conv2D(engine, in, filters, nil, spec)
			if err != nil {
				return false, false, err
			}
			return out.Equal(oracle), false, nil
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: rollback unprotected: %w", err)
		}
		rows = append(rows, RollbackRow{
			Strategy: "none", Rate: rate, Tally: tally, WorkFactor: 1,
		})
	}
	return rows, nil
}

// RollbackMarkdown renders the rollback rows.
func RollbackMarkdown(rows []RollbackRow) string {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			r.Strategy,
			fmt.Sprintf("%.0e", r.Rate),
			fmt.Sprintf("%.3f", r.Tally.Coverage()),
			fmt.Sprintf("%d", r.Tally.SDC),
			fmt.Sprintf("%d", r.Tally.Detected),
			fmt.Sprintf("%.3f×", r.WorkFactor),
		})
	}
	return Markdown([]string{"Rollback", "Fault rate", "Coverage", "SDC", "DUE", "Work"}, out)
}
