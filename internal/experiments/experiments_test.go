package experiments

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/nn"
	"repro/internal/shape"
)

// tinyFigure4Config keeps the training-based experiments fast in tests.
func tinyFigure4Config() Figure4Config {
	return Figure4Config{
		Micro: nn.MicroConfig{
			InputSize: 16, Conv1Filters: 6, Conv1Kernel: 3,
			Conv2Filters: 8, Hidden: 16, Classes: 6, UseLRN: false,
		},
		PerClass: 12,
		Epochs:   6,
		LR:       0.03,
		Seed:     1,
	}
}

func TestMarkdownTable(t *testing.T) {
	md := Markdown([]string{"A", "B"}, [][]string{{"1", "2"}, {"3", "4"}})
	for _, want := range []string{"| A | B |", "| --- | --- |", "| 1 | 2 |", "| 3 | 4 |"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
}

func TestASCIIPlot(t *testing.T) {
	plot := ASCIIPlot([]float64{1, 2, 3, 2, 1}, 20, 5, "abc")
	if !strings.Contains(plot, "SAX: abc") {
		t.Error("plot missing SAX word header")
	}
	if !strings.Contains(plot, "*") {
		t.Error("plot has no points")
	}
	if ASCIIPlot(nil, 20, 5, "") != "" {
		t.Error("empty series should yield empty plot")
	}
	if ASCIIPlot([]float64{1}, 1, 1, "") != "" {
		t.Error("degenerate dims should yield empty plot")
	}
	// Flat series must not divide by zero.
	if ASCIIPlot([]float64{2, 2, 2}, 10, 3, "") == "" {
		t.Error("flat series should still render")
	}
}

func TestRunTable1Scaled(t *testing.T) {
	res, err := RunTable1(Table1Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("want 4 rows, got %d", len(res.Rows))
	}
	native, plain, dmr := res.Rows[0], res.Rows[1], res.Rows[2]
	if native.Seconds <= 0 || plain.Seconds <= 0 || dmr.Seconds <= 0 {
		t.Fatal("non-positive timings")
	}
	// The paper's shape: native ≪ reliable-plain < reliable-redundant,
	// with the redundant/plain ratio in the vicinity of 2 (paper: 2.15).
	if !(native.Seconds < plain.Seconds) {
		t.Errorf("native %.4fs should beat reliable-plain %.4fs", native.Seconds, plain.Seconds)
	}
	if dmr.Seconds < plain.Seconds*0.95 {
		t.Errorf("plain %.4fs should beat redundant %.4fs", plain.Seconds, dmr.Seconds)
	}
	// Wall-clock tests under parallel-suite CPU contention are noisy even
	// with best-of-N; only the ordering (with a small noise allowance) and
	// an upper sanity bound are asserted. The recorded, quiet-machine ratio
	// lives in EXPERIMENTS.md.
	ratio := dmr.Seconds / plain.Seconds
	if ratio < 1.0 || ratio > 4 {
		t.Errorf("redundant/plain ratio %.2f outside plausible band [1.0, 4]", ratio)
	}
	if res.Markdown() == "" {
		t.Error("empty markdown")
	}
}

func TestRunFigure3(t *testing.T) {
	res, err := RunFigure3(Figure3Config{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Peaks != 8 {
		t.Errorf("peaks = %d, want 8 (the paper's eight corners)", res.Peaks)
	}
	if res.Class != shape.ClassOctagon {
		t.Errorf("class = %v, want octagon", res.Class)
	}
	if len(res.Series) == 0 || res.Word == "" || res.Plot == "" {
		t.Error("figure artefacts missing")
	}
	if !strings.Contains(res.Markdown(), "SAX") {
		t.Error("markdown missing SAX word")
	}
}

func TestRunFigure4(t *testing.T) {
	res, err := RunFigure4(tinyFigure4Config())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("want 6 sweep rows (6 filters), got %d", len(res.Rows))
	}
	if res.BaselineAccuracy <= 1.0/6 {
		t.Errorf("baseline accuracy %.3f no better than chance — training failed", res.BaselineAccuracy)
	}
	for _, row := range res.Rows {
		if row.StopConfidence < 0 || row.StopConfidence > 1 {
			t.Errorf("confidence %v out of range", row.StopConfidence)
		}
		if row.Accuracy < 0 || row.Accuracy > 1 {
			t.Errorf("accuracy %v out of range", row.Accuracy)
		}
	}
	lo, hi := res.Spread()
	if lo > hi {
		t.Error("spread inverted")
	}
	// The sweep must not have mutated the model: re-evaluating baseline
	// reproduces it exactly.
	again, err := RunFigure4(tinyFigure4Config())
	if err != nil {
		t.Fatal(err)
	}
	if again.BaselineAccuracy != res.BaselineAccuracy {
		t.Error("experiment is not deterministic across runs")
	}
	if res.Markdown() == "" {
		t.Error("empty markdown")
	}
}

func TestRunConfusionCompare(t *testing.T) {
	res, err := RunConfusionCompare(tinyFigure4Config())
	if err != nil {
		t.Fatal(err)
	}
	if res.Original == nil || res.Replaced == nil {
		t.Fatal("missing confusion matrices")
	}
	if res.MaxCellDiff < 0 || res.MaxCellDiff > 1 {
		t.Errorf("cell diff %v out of range", res.MaxCellDiff)
	}
	if res.Markdown() == "" {
		t.Error("empty markdown")
	}
}

func TestRunFreezeStudy(t *testing.T) {
	res, err := RunFreezeStudy(tinyFigure4Config())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("want 3 freeze rows, got %d", len(res.Rows))
	}
	byMode := map[string]FreezeStudyRow{}
	for _, row := range res.Rows {
		byMode[row.Mode.String()] = row
	}
	if byMode["hard"].Drift != 0 {
		t.Errorf("hard freeze drift = %v, want 0", byMode["hard"].Drift)
	}
	if byMode["reset-epoch"].Drift != 0 {
		t.Errorf("reset-epoch drift = %v, want 0", byMode["reset-epoch"].Drift)
	}
	if byMode["drift"].Drift <= 0 {
		t.Error("TF-style drift freeze should show nonzero drift")
	}
	if res.Markdown() == "" {
		t.Error("empty markdown")
	}
}

func TestRunRedundancyCoverage(t *testing.T) {
	rows, err := RunRedundancyCoverage(CoverageConfig{Trials: 8, TransientRate: 5e-4, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 { // 4 modes × 2 scenarios
		t.Fatalf("want 8 rows, got %d", len(rows))
	}
	cell := func(mode core.RedundancyMode, scenario string) CoverageRow {
		for _, r := range rows {
			if r.Mode == mode && r.Scenario == scenario {
				return r
			}
		}
		t.Fatalf("missing cell %v/%s", mode, scenario)
		return CoverageRow{}
	}
	// Section II's qualitative claims, quantified:
	// Plain execution under a permanent fault: silent corruption.
	if c := cell(core.ModePlain, "permanent-1pe"); c.Tally.SDC != c.Tally.Total() {
		t.Errorf("plain/permanent should be all SDC: %+v", c.Tally)
	}
	// Temporal DMR is DEFEATED by a permanent fault (deterministic repeat).
	if c := cell(core.ModeTemporalDMR, "permanent-1pe"); c.Tally.SDC != c.Tally.Total() {
		t.Errorf("temporal-dmr/permanent should be all SDC: %+v", c.Tally)
	}
	// Spatial DMR detects it (bucket trips: detected unrecoverable).
	if c := cell(core.ModeSpatialDMR, "permanent-1pe"); c.Tally.Detected != c.Tally.Total() {
		t.Errorf("spatial-dmr/permanent should be all detected: %+v", c.Tally)
	}
	// TMR masks it completely.
	if c := cell(core.ModeTMR, "permanent-1pe"); c.Tally.Masked != c.Tally.Total() {
		t.Errorf("tmr/permanent should be all masked: %+v", c.Tally)
	}
	// Under transients, temporal DMR's coverage beats plain's.
	pt := cell(core.ModePlain, "transient").Tally.Coverage()
	dt := cell(core.ModeTemporalDMR, "transient").Tally.Coverage()
	if dt < pt {
		t.Errorf("temporal DMR transient coverage %.3f below plain %.3f", dt, pt)
	}
	if CoverageMarkdown(rows) == "" {
		t.Error("empty markdown")
	}
}

func TestRunRollbackAblation(t *testing.T) {
	rows, err := RunRollbackAblation(RollbackConfig{
		Trials: 6, Rates: []float64{1e-4, 2e-3}, MaxUnitAttempts: 3, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 { // 3 strategies × 2 rates
		t.Fatalf("want 6 rows, got %d", len(rows))
	}
	cell := func(strategy string, rate float64) RollbackRow {
		for _, r := range rows {
			if r.Strategy == strategy && r.Rate == rate {
				return r
			}
		}
		t.Fatalf("missing cell %s/%v", strategy, rate)
		return RollbackRow{}
	}
	// At the high fault rate, op-level rollback still covers everything
	// (every trial ends correct or detected), while unprotected execution
	// produces silent corruptions.
	op := cell("op", 2e-3)
	if op.Tally.SDC != 0 {
		t.Errorf("op-level rollback produced %d SDCs", op.Tally.SDC)
	}
	none := cell("none", 2e-3)
	if none.Tally.SDC == 0 {
		t.Error("unprotected execution at rate 2e-3 should corrupt silently")
	}
	// Work accounting: op-level DMR costs ≈ 2× a single pass; unit-level
	// costs ≥ 2× and grows with rollbacks; unprotected costs 1×.
	if op.WorkFactor < 1.9 || op.WorkFactor > 3 {
		t.Errorf("op-level work factor %.3f outside [1.9, 3]", op.WorkFactor)
	}
	unit := cell("unit", 2e-3)
	if unit.WorkFactor < 2 {
		t.Errorf("unit-level work factor %.3f below 2", unit.WorkFactor)
	}
	if none.WorkFactor != 1 {
		t.Errorf("unprotected work factor %.3f != 1", none.WorkFactor)
	}
	if RollbackMarkdown(rows) == "" {
		t.Error("empty markdown")
	}
}

func TestRunWeightFaultStudy(t *testing.T) {
	res, err := RunWeightFaultStudy(WeightFaultConfig{
		Train:       tinyFigure4Config(),
		UpsetCounts: []int{2, 32},
		Trials:      3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("want 2 rows, got %d", len(res.Rows))
	}
	if res.BaselineAccuracy <= 1.0/6 {
		t.Errorf("baseline accuracy %.3f no better than chance", res.BaselineAccuracy)
	}
	for _, row := range res.Rows {
		if row.AccuracyECC < row.AccuracyUnprotected-0.05 {
			t.Errorf("upsets=%d: ECC accuracy %.3f should not trail unprotected %.3f",
				row.Upsets, row.AccuracyECC, row.AccuracyUnprotected)
		}
	}
	// ECC with masking should hold accuracy near baseline even at the
	// heavier upset count.
	heavy := res.Rows[1]
	if heavy.AccuracyECC < res.BaselineAccuracy-0.15 {
		t.Errorf("ECC accuracy %.3f collapsed from baseline %.3f", heavy.AccuracyECC, res.BaselineAccuracy)
	}
	if !res.DMRMissesWeightFault {
		t.Error("the DMR-misses-storage-fault demonstration did not hold")
	}
	if res.Markdown() == "" {
		t.Error("empty markdown")
	}
	// Excessive upsets are rejected.
	if _, err := RunWeightFaultStudy(WeightFaultConfig{
		Train:       tinyFigure4Config(),
		UpsetCounts: []int{1 << 30},
		Trials:      1,
	}); err == nil {
		t.Error("absurd upset count should fail")
	}
}
