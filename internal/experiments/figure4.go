package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/gtsrb"
	"repro/internal/nn"
	"repro/internal/train"
)

// Figure4Config sizes the Figure 4 reproduction (and the in-text
// confusion-matrix and freeze studies, which share its trained model).
type Figure4Config struct {
	// Micro is the network architecture (default nn.DefaultMicroConfig:
	// 16 first-layer filters standing in for AlexNet's 96).
	Micro nn.MicroConfig
	// PerClass is the number of training examples per class (default 20).
	PerClass int
	// Epochs is the training epoch count (default 10).
	Epochs int
	// LR is the SGD learning rate (default 0.03).
	LR float32
	// Seed drives all randomness.
	Seed int64
}

func (c Figure4Config) normalize() Figure4Config {
	if c.Micro.InputSize == 0 {
		c.Micro = nn.DefaultMicroConfig()
	}
	if c.PerClass == 0 {
		c.PerClass = 20
	}
	if c.Epochs == 0 {
		c.Epochs = 10
	}
	if c.LR == 0 {
		c.LR = 0.03
	}
	return c
}

// Figure4Row is one sweep point: the model with filter Index replaced by
// the paper's Sobel-x/Sobel-y/Sobel-x filter.
type Figure4Row struct {
	Index          int
	StopConfidence float64
	Accuracy       float64
}

// Figure4Result is the reproduced figure.
type Figure4Result struct {
	// Baseline metrics of the unmodified trained model — the red dotted
	// line of the paper's plot.
	BaselineAccuracy       float64
	BaselineStopConfidence float64
	Rows                   []Figure4Row
	// TrainedNet and the datasets are returned for reuse by the in-text
	// studies.
	TrainedNet *nn.Sequential
	TestSet    *gtsrb.Dataset
}

// trainFigure4Model trains the shared model.
func trainFigure4Model(cfg Figure4Config) (*nn.Sequential, *gtsrb.Dataset, *gtsrb.Dataset, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	net, err := nn.NewMicroAlexNet(cfg.Micro, rng)
	if err != nil {
		return nil, nil, nil, err
	}
	ds, err := gtsrb.Generate(gtsrb.Config{
		Size: cfg.Micro.InputSize, PerClass: cfg.PerClass + cfg.PerClass/2,
	}, rand.New(rand.NewSource(cfg.Seed+1)))
	if err != nil {
		return nil, nil, nil, err
	}
	trainSet, testSet, err := ds.Split(2.0 / 3.0)
	if err != nil {
		return nil, nil, nil, err
	}
	opt, err := train.NewSGD(cfg.LR, 0.9, 1e-4)
	if err != nil {
		return nil, nil, nil, err
	}
	tr := &train.Trainer{Net: net, Opt: opt, BatchSize: 8, Epochs: cfg.Epochs, Rng: rng}
	if _, err := tr.Fit(trainSet); err != nil {
		return nil, nil, nil, err
	}
	return net, trainSet, testSet, nil
}

// RunFigure4 regenerates Figure 4: "replacing all the N filters one at a
// time with the Sobel filters results in the plot of class confidence
// values ... It is clearly visible that the accuracy varies substantially
// depending on which filter has been replaced."
func RunFigure4(cfg Figure4Config) (*Figure4Result, error) {
	cfg = cfg.normalize()
	net, _, testSet, err := trainFigure4Model(cfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: figure4 training: %w", err)
	}
	res := &Figure4Result{TrainedNet: net, TestSet: testSet}
	res.BaselineAccuracy, err = train.Accuracy(net, testSet)
	if err != nil {
		return nil, err
	}
	res.BaselineStopConfidence, err = train.MeanClassConfidence(net, testSet, gtsrb.StopClass)
	if err != nil {
		return nil, err
	}

	conv1, err := nn.FirstConv(net)
	if err != nil {
		return nil, err
	}
	sobel, err := core.PaperSobelFilter(conv1.Kernel())
	if err != nil {
		return nil, err
	}
	for idx := 0; idx < conv1.Filters(); idx++ {
		prev, prevBias, err := core.ReplaceFilter(conv1, idx, sobel)
		if err != nil {
			return nil, fmt.Errorf("experiments: figure4 replace %d: %w", idx, err)
		}
		conf, err := train.MeanClassConfidence(net, testSet, gtsrb.StopClass)
		if err != nil {
			return nil, err
		}
		acc, err := train.Accuracy(net, testSet)
		if err != nil {
			return nil, err
		}
		if err := core.RestoreFilter(conv1, idx, prev, prevBias); err != nil {
			return nil, fmt.Errorf("experiments: figure4 restore %d: %w", idx, err)
		}
		res.Rows = append(res.Rows, Figure4Row{Index: idx, StopConfidence: conf, Accuracy: acc})
	}
	return res, nil
}

// Spread returns the min and max accuracy across the sweep — the
// "varies substantially" observation.
func (r *Figure4Result) Spread() (lo, hi float64) {
	if len(r.Rows) == 0 {
		return 0, 0
	}
	lo, hi = r.Rows[0].Accuracy, r.Rows[0].Accuracy
	for _, row := range r.Rows {
		if row.Accuracy < lo {
			lo = row.Accuracy
		}
		if row.Accuracy > hi {
			hi = row.Accuracy
		}
	}
	return lo, hi
}

// Markdown renders the result.
func (r *Figure4Result) Markdown() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			fmt.Sprintf("%d", row.Index),
			fmt.Sprintf("%.4f", row.StopConfidence),
			fmt.Sprintf("%.4f", row.Accuracy),
		})
	}
	lo, hi := r.Spread()
	return fmt.Sprintf("Baseline: accuracy %.4f, stop confidence %.4f (the red dotted line)\n\n",
		r.BaselineAccuracy, r.BaselineStopConfidence) +
		Markdown([]string{"Replaced filter", "Stop confidence", "Accuracy"}, rows) +
		fmt.Sprintf("\nAccuracy spread across replacements: %.4f – %.4f\n", lo, hi)
}
