package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/gtsrb"
	"repro/internal/shape"
	"repro/internal/tensor"
)

// Figure3Config sizes the Figure 3 reproduction.
type Figure3Config struct {
	// ImageSize is the rendered sign size (default 96).
	ImageSize int
	// Seed drives rendering noise.
	Seed int64
}

// Figure3Result is the reproduced figure: the centroid-to-edge time series
// of a slightly angled stop sign, its SAX word, and the corner count.
type Figure3Result struct {
	Image  *tensor.Tensor
	Series []float64
	Word   string
	Peaks  int
	Class  shape.Class
	Plot   string
}

// RunFigure3 regenerates Figure 3: "the time-series generated from a
// real-world, slightly angled stop sign. The eight corners can be clearly
// identified. The SAX word is visible above the time-series plot."
func RunFigure3(cfg Figure3Config) (*Figure3Result, error) {
	if cfg.ImageSize == 0 {
		cfg.ImageSize = 96
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	img, err := gtsrb.AngledStopSign(cfg.ImageSize, rng)
	if err != nil {
		return nil, err
	}
	q, err := shape.NewQualifier(shape.DefaultQualifierConfig())
	if err != nil {
		return nil, err
	}
	res, err := q.QualifyImage(img)
	if err != nil {
		return nil, err
	}
	out := &Figure3Result{
		Image:  img,
		Series: res.Series,
		Word:   res.Word.String(),
		Peaks:  res.Peaks,
		Class:  res.Class,
	}
	out.Plot = ASCIIPlot(res.Series, 64, 10, out.Word)
	return out, nil
}

// Markdown renders the result.
func (r *Figure3Result) Markdown() string {
	return fmt.Sprintf("Figure 3 — radial time series of a slightly angled stop sign\n\n"+
		"```\n%s```\n\ncorners identified: %d (paper: \"the eight corners can be clearly identified\")\n"+
		"qualifier class: %v\n", r.Plot, r.Peaks, r.Class)
}
