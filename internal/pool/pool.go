// Package pool is the leaf work-stealing primitive shared by the batched
// execution layer (internal/infer) and the fault-injection campaigns
// (internal/fault). It is dependency-free so both can use it without
// import cycles (infer → reliable → fault).
package pool

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Run executes fn(worker, i) for every i in [0, n) across `workers`
// goroutines (clamped to n; must be >= 1). Indices are claimed with work
// stealing, so uneven item costs do not stall the batch. The first error
// cancels remaining work and is returned, wrapped with its item index.
// fn observes each worker index from exactly one goroutine, so per-worker
// state needs no further synchronisation.
func Run(n, workers int, fn func(worker, i int) error) error {
	if n < 0 {
		return fmt.Errorf("pool: negative item count %d", n)
	}
	if fn == nil {
		return fmt.Errorf("pool: run needs a work function")
	}
	// Empty batches succeed before the worker-count check: callers clamp
	// workers to n, so n == 0 legitimately arrives with zero workers.
	if n == 0 {
		return nil
	}
	if workers < 1 {
		return fmt.Errorf("pool: worker count %d must be >= 1", workers)
	}
	if workers > n {
		workers = n
	}
	var (
		next   atomic.Int64
		failed atomic.Bool
		wg     sync.WaitGroup
		mu     sync.Mutex
		first  error
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(worker int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || failed.Load() {
					return
				}
				if err := fn(worker, i); err != nil {
					mu.Lock()
					if first == nil {
						first = fmt.Errorf("item %d: %w", i, err)
					}
					mu.Unlock()
					failed.Store(true)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	return first
}
