package pool

import (
	"errors"
	"sync/atomic"
	"testing"
)

func TestRunCoversAllItems(t *testing.T) {
	for _, workers := range []int{1, 3, 8} {
		var hits [50]atomic.Int32
		if err := Run(50, workers, func(worker, i int) error {
			hits[i].Add(1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i := range hits {
			if hits[i].Load() != 1 {
				t.Fatalf("workers=%d: item %d ran %d times", workers, i, hits[i].Load())
			}
		}
	}
}

func TestRunErrorWrapsIndexAndCancels(t *testing.T) {
	boom := errors.New("boom")
	var ran atomic.Int32
	err := Run(10_000, 4, func(worker, i int) error {
		ran.Add(1)
		if i == 5 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if n := ran.Load(); int(n) == 10_000 {
		t.Error("error did not cancel remaining work")
	}
}

func TestRunValidation(t *testing.T) {
	if err := Run(0, 2, func(worker, i int) error { return nil }); err != nil {
		t.Error("empty run should succeed")
	}
	if err := Run(-1, 2, func(worker, i int) error { return nil }); err == nil {
		t.Error("negative n should fail")
	}
	if err := Run(1, 2, nil); err == nil {
		t.Error("nil fn should fail")
	}
	if err := Run(1, 0, func(worker, i int) error { return nil }); err == nil {
		t.Error("zero workers should fail")
	}
}
