// Package obs is the serving plane's zero-dependency observability layer:
// request tracing (trace IDs, per-stage spans, wire headers), Prometheus
// text-format metrics emission, and a flight recorder holding the slowest
// and most recent request traces per process.
//
// The package sits above internal/serve (it renders serve.Stats into
// metrics) and below the daemons; serve itself never imports obs, so the
// scheduler's hot path carries only plain timestamps and the conversion to
// spans happens once per request at the HTTP edge.
package obs

import (
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// Wire headers for cross-process trace propagation.
const (
	// TraceHeader carries the request's trace ID over the router→worker hop
	// (request direction) and back to the client (response direction). The
	// router assigns an ID at the fleet edge when the client did not send
	// one; a worker reached directly assigns its own.
	TraceHeader = "X-Hybridnet-Trace"
	// SpansHeader is the response header carrying the per-stage timing
	// breakdown, Server-Timing style: "name;dur=1.234, name;dur=0.1" with
	// durations in milliseconds. Dotted names (backend.cnn) are sub-spans of
	// their prefix and excluded from the top-level sum.
	SpansHeader = "X-Hybridnet-Spans"
	// RouterSpansHeader carries the router's own spans (placement, per-shard
	// attempts) so they never collide with the worker's breakdown.
	RouterSpansHeader = "X-Hybridnet-Router-Spans"
	// ClassHeader carries the request's service class (guaranteed | fast |
	// budget, the wire names of serve.Class) from client to router and on
	// to the worker, alongside the trace ID. Absent means the receiving
	// daemon's -default-class.
	ClassHeader = "X-Hybridnet-Class"
)

// Trace IDs are "pppppppp-nnnn": an 8-hex-digit per-process random prefix
// and a monotonically increasing per-process counter, so IDs are unique
// within a fleet (prefix collision odds aside) and cheap to mint — one
// atomic add per request, no per-request entropy read.
var (
	tracePrefix = func() string {
		var b [4]byte
		if _, err := rand.Read(b[:]); err != nil {
			// Entropy exhaustion is not worth failing a request over; fall
			// back to a time-derived prefix.
			binary.LittleEndian.PutUint32(b[:], uint32(time.Now().UnixNano()))
		}
		return fmt.Sprintf("%08x", binary.LittleEndian.Uint32(b[:]))
	}()
	traceCounter atomic.Uint64
)

// NewTraceID mints a process-unique trace ID.
func NewTraceID() string {
	n := traceCounter.Add(1)
	return tracePrefix + "-" + strconv.FormatUint(n, 16)
}

// ValidTraceID bounds what the daemons accept from the wire: short,
// printable, no whitespace or header-splitting characters. Anything else is
// replaced with a fresh ID rather than echoed back.
func ValidTraceID(id string) bool {
	if id == "" || len(id) > 64 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '-' || c == '_' || c == '.' || c == ':':
		default:
			return false
		}
	}
	return true
}

// Span is one named stage of a request's lifetime. Names are flat
// identifiers; a dotted name (backend.cnn) marks a sub-span of the stage
// named by its prefix, reported for drill-down but excluded from the
// top-level duration sum (its parent already covers the wall time).
type Span struct {
	Name string        `json:"name"`
	Dur  time.Duration `json:"dur_ns"`
}

// Sub reports whether the span is a sub-span (dotted name).
func (s Span) Sub() bool { return strings.Contains(s.Name, ".") }

// SumTopLevel adds the non-sub-span durations: the request's accounted
// wall time, which for a fully instrumented request matches its end-to-end
// latency to within the instrumentation gaps.
func SumTopLevel(spans []Span) time.Duration {
	var sum time.Duration
	for _, s := range spans {
		if !s.Sub() {
			sum += s.Dur
		}
	}
	return sum
}

// FormatSpans renders spans for SpansHeader: "name;dur=1.234, ..." with
// durations in fractional milliseconds (microsecond precision).
func FormatSpans(spans []Span) string {
	var b strings.Builder
	b.Grow(24 * len(spans))
	for i, s := range spans {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(s.Name)
		b.WriteString(";dur=")
		b.WriteString(strconv.FormatFloat(float64(s.Dur)/float64(time.Millisecond), 'f', 3, 64))
	}
	return b.String()
}

// ParseSpans inverts FormatSpans (tolerating whitespace variations), for
// clients (loadgen) and tests reading the header back.
func ParseSpans(header string) ([]Span, error) {
	header = strings.TrimSpace(header)
	if header == "" {
		return nil, nil
	}
	parts := strings.Split(header, ",")
	spans := make([]Span, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		name, durPart, ok := strings.Cut(p, ";dur=")
		if !ok || name == "" {
			return nil, fmt.Errorf("obs: malformed span %q", p)
		}
		ms, err := strconv.ParseFloat(durPart, 64)
		if err != nil {
			return nil, fmt.Errorf("obs: span %q duration: %w", name, err)
		}
		spans = append(spans, Span{Name: name, Dur: time.Duration(ms * float64(time.Millisecond))})
	}
	return spans, nil
}

// TraceRecord is one request's trace as the flight recorder keeps it: the
// identity, outcome and full stage breakdown, small enough to hold hundreds
// per process.
type TraceRecord struct {
	ID     string    `json:"id"`
	Start  time.Time `json:"start"`
	Status int       `json:"status"` // HTTP status of the outcome
	// Total is the end-to-end duration the process observed (request read
	// to response committed).
	Total time.Duration `json:"total_ns"`
	Spans []Span        `json:"spans,omitempty"`
	// Attrs carries small request-scoped facts (shard id at the router,
	// decision class at the worker) without schema churn.
	Attrs map[string]string `json:"attrs,omitempty"`
}

// sortSlowest orders records by descending Total (ties by recency).
func sortSlowest(recs []TraceRecord) {
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].Total != recs[j].Total {
			return recs[i].Total > recs[j].Total
		}
		return recs[i].Start.After(recs[j].Start)
	})
}
