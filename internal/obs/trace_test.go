package obs

import (
	"strings"
	"testing"
	"time"
)

func TestNewTraceIDUniqueValid(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 1000; i++ {
		id := NewTraceID()
		if !ValidTraceID(id) {
			t.Fatalf("NewTraceID produced invalid ID %q", id)
		}
		if seen[id] {
			t.Fatalf("duplicate trace ID %q", id)
		}
		seen[id] = true
	}
}

func TestValidTraceID(t *testing.T) {
	valid := []string{"abc123-7", "a", "A.b:c_d-e", strings.Repeat("x", 64)}
	for _, id := range valid {
		if !ValidTraceID(id) {
			t.Errorf("ValidTraceID(%q) = false, want true", id)
		}
	}
	invalid := []string{"", strings.Repeat("x", 65), "has space", "new\nline",
		"quote\"", "semi;colon", "curly{brace}"}
	for _, id := range invalid {
		if ValidTraceID(id) {
			t.Errorf("ValidTraceID(%q) = true, want false", id)
		}
	}
}

func TestSpanRoundTrip(t *testing.T) {
	spans := []Span{
		{Name: "admission", Dur: 512 * time.Microsecond},
		{Name: "queue", Dur: 2 * time.Millisecond},
		{Name: "backend", Dur: 10*time.Millisecond + 250*time.Microsecond},
		{Name: "backend.cnn", Dur: 7 * time.Millisecond},
	}
	header := FormatSpans(spans)
	got, err := ParseSpans(header)
	if err != nil {
		t.Fatalf("ParseSpans(%q): %v", header, err)
	}
	if len(got) != len(spans) {
		t.Fatalf("round trip lost spans: %d -> %d", len(spans), len(got))
	}
	for i, s := range spans {
		if got[i].Name != s.Name {
			t.Errorf("span %d name %q, want %q", i, got[i].Name, s.Name)
		}
		// The header carries microsecond precision.
		if d := got[i].Dur - s.Dur; d < -time.Microsecond || d > time.Microsecond {
			t.Errorf("span %q duration %v, want %v (±1µs)", s.Name, got[i].Dur, s.Dur)
		}
	}
}

func TestParseSpansErrors(t *testing.T) {
	for _, bad := range []string{"noduration", ";dur=1", "x;dur=abc"} {
		if _, err := ParseSpans(bad); err == nil {
			t.Errorf("ParseSpans(%q) succeeded, want error", bad)
		}
	}
	if spans, err := ParseSpans("   "); err != nil || spans != nil {
		t.Errorf("blank header should parse to nil, got %v, %v", spans, err)
	}
}

func TestSumTopLevelExcludesSubSpans(t *testing.T) {
	spans := []Span{
		{Name: "queue", Dur: time.Millisecond},
		{Name: "backend", Dur: 4 * time.Millisecond},
		{Name: "backend.cnn", Dur: 3 * time.Millisecond},
		{Name: "backend.reliable", Dur: time.Millisecond},
	}
	if got, want := SumTopLevel(spans), 5*time.Millisecond; got != want {
		t.Errorf("SumTopLevel = %v, want %v (sub-spans excluded)", got, want)
	}
}
