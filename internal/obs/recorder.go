package obs

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Recorder is the per-process flight recorder: a fixed-size ring of the K
// most recent request traces plus the K slowest since process start, so an
// operator can always answer "what just happened" and "what were the worst
// requests" from a live process without external tooling. Dumped via
// GET /debug/requests and merged fleet-wide by the router.
//
// Record is on the per-request hot path and stays cheap: one mutex-guarded
// ring store; the slowest set is only touched when the request actually
// beats the current K-th slowest (an atomic threshold read gates the
// second lock), so steady-state traffic pays a single uncontended lock.
type Recorder struct {
	k int

	mu     sync.Mutex
	recent []TraceRecord // ring buffer, len == k once warm
	next   int           // ring cursor
	total  uint64        // records ever seen

	slowMu    sync.Mutex
	slowest   []TraceRecord // kept sorted descending by Total
	threshold atomic.Int64  // Total of the K-th slowest (admission gate), ns
}

// DefaultRecorderDepth is the per-process K for both the recent ring and
// the slowest set.
const DefaultRecorderDepth = 64

// NewRecorder builds a Recorder keeping k recent and k slowest traces
// (k <= 0 selects DefaultRecorderDepth).
func NewRecorder(k int) *Recorder {
	if k <= 0 {
		k = DefaultRecorderDepth
	}
	return &Recorder{
		k:       k,
		recent:  make([]TraceRecord, 0, k),
		slowest: make([]TraceRecord, 0, k),
	}
}

// Record files one completed request trace. Safe for concurrent use.
func (r *Recorder) Record(rec TraceRecord) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if len(r.recent) < r.k {
		r.recent = append(r.recent, rec)
	} else {
		r.recent[r.next] = rec
	}
	r.next = (r.next + 1) % r.k
	r.total++
	r.mu.Unlock()

	// Slow path: only engage when the trace beats the K-th slowest. The
	// threshold is 0 until the slowest set fills, so early traffic always
	// qualifies.
	if int64(rec.Total) <= r.threshold.Load() {
		return
	}
	r.slowMu.Lock()
	if len(r.slowest) < r.k {
		r.slowest = append(r.slowest, rec)
	} else if rec.Total > r.slowest[len(r.slowest)-1].Total {
		r.slowest[len(r.slowest)-1] = rec
	} else {
		r.slowMu.Unlock()
		return
	}
	sortSlowest(r.slowest)
	if len(r.slowest) == r.k {
		r.threshold.Store(int64(r.slowest[len(r.slowest)-1].Total))
	}
	r.slowMu.Unlock()
}

// RecorderDump is the GET /debug/requests body for one process.
type RecorderDump struct {
	// Depth is K: the capacity of each set.
	Depth int `json:"depth"`
	// Total counts every trace ever recorded (recent ring turnover).
	Total uint64 `json:"total"`
	// Recent is the last ≤K traces, newest first.
	Recent []TraceRecord `json:"recent"`
	// Slowest is the ≤K slowest traces since process start, slowest first.
	Slowest []TraceRecord `json:"slowest"`
}

// Snapshot returns a consistent copy of both sets.
func (r *Recorder) Snapshot() RecorderDump {
	if r == nil {
		return RecorderDump{}
	}
	r.mu.Lock()
	recent := make([]TraceRecord, len(r.recent))
	// Unroll the ring newest-first: the newest record sits just behind the
	// cursor.
	for i := range r.recent {
		recent[i] = r.recent[(r.next-1-i+2*len(r.recent))%len(r.recent)]
	}
	total := r.total
	r.mu.Unlock()
	r.slowMu.Lock()
	slowest := append([]TraceRecord(nil), r.slowest...)
	r.slowMu.Unlock()
	return RecorderDump{Depth: r.k, Total: total, Recent: recent, Slowest: slowest}
}

// MergeDumps folds per-process recorder dumps into a fleet view: recent
// traces interleaved newest-first and the fleet-wide slowest set, each
// truncated to the largest per-process depth. The router serves this on
// its own GET /debug/requests.
func MergeDumps(dumps ...RecorderDump) RecorderDump {
	var m RecorderDump
	for _, d := range dumps {
		if d.Depth > m.Depth {
			m.Depth = d.Depth
		}
		m.Total += d.Total
		m.Recent = append(m.Recent, d.Recent...)
		m.Slowest = append(m.Slowest, d.Slowest...)
	}
	sortRecent(m.Recent)
	sortSlowest(m.Slowest)
	if m.Depth > 0 {
		if len(m.Recent) > m.Depth {
			m.Recent = m.Recent[:m.Depth]
		}
		if len(m.Slowest) > m.Depth {
			m.Slowest = m.Slowest[:m.Depth]
		}
	}
	return m
}

// sortRecent orders records newest-first by start time.
func sortRecent(recs []TraceRecord) {
	sort.Slice(recs, func(i, j int) bool { return recs[i].Start.After(recs[j].Start) })
}
