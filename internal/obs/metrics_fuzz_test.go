package obs

import (
	"bytes"
	"fmt"
	"math"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/serve"
)

// renderFamilies writes parsed families back out in exposition format using
// the same escaping the PromWriter path uses (series/formatValue), so the
// fuzz target can state parse∘render as a fixed point.
func renderFamilies(fams map[string]*MetricFamily) string {
	names := make([]string, 0, len(fams))
	for name := range fams {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, name := range names {
		f := fams[name]
		if f.Type != "" {
			fmt.Fprintf(&b, "# TYPE %s %s\n", f.Name, f.Type)
		}
		for _, s := range f.Samples {
			labels := make([]Label, 0, len(s.Labels))
			for k, v := range s.Labels {
				labels = append(labels, Label{Name: k, Value: v})
			}
			sort.Slice(labels, func(i, j int) bool { return labels[i].Name < labels[j].Name })
			fmt.Fprintf(&b, "%s %s\n", series(s.Name, labels), formatValue(s.Value))
		}
	}
	return b.String()
}

func sameSample(a, b MetricSample) bool {
	if a.Name != b.Name || len(a.Labels) != len(b.Labels) {
		return false
	}
	for k, v := range a.Labels {
		if b.Labels[k] != v {
			return false
		}
	}
	if math.IsNaN(a.Value) || math.IsNaN(b.Value) {
		return math.IsNaN(a.Value) && math.IsNaN(b.Value)
	}
	return a.Value == b.Value
}

// sampleKey is a canonical string for multiset comparison of samples.
func sampleKey(s MetricSample) string {
	labels := make([]string, 0, len(s.Labels))
	for k, v := range s.Labels {
		labels = append(labels, fmt.Sprintf("%q=%q", k, v))
	}
	sort.Strings(labels)
	return fmt.Sprintf("%q{%s} %x", s.Name, strings.Join(labels, ","), math.Float64bits(s.Value))
}

// allSampleKeys flattens every family's samples into a sorted key list.
func allSampleKeys(fams map[string]*MetricFamily) []string {
	var keys []string
	for _, f := range fams {
		for _, s := range f.Samples {
			keys = append(keys, sampleKey(s))
		}
	}
	sort.Strings(keys)
	return keys
}

// equalFamilies is strict structural equality: same keys, types, samples
// in order.
func equalFamilies(a, b map[string]*MetricFamily) bool {
	if len(a) != len(b) {
		return false
	}
	for name, fa := range a {
		fb := b[name]
		if fb == nil || fa.Type != fb.Type || len(fa.Samples) != len(fb.Samples) {
			return false
		}
		for i := range fa.Samples {
			if !sameSample(fa.Samples[i], fb.Samples[i]) {
				return false
			}
		}
	}
	return true
}

// FuzzParsePrometheus holds the parser to three properties on arbitrary
// input: it never panics; anything it accepts survives a render→parse
// round trip with every sample intact (the renderer and parser agree on
// escaping); and the round trip is idempotent from the first re-render
// (family grouping can legitimately shift once — a _bucket line seen
// before its # TYPE header starts life as its own family — but never
// again). The seed corpus is the real thing: a full WriteServeStats
// exposition plus hand-picked escaping edge cases.
func FuzzParsePrometheus(f *testing.F) {
	var b bytes.Buffer
	p := NewPromWriter(&b)
	st := serve.Stats{Submitted: 10, Completed: 9, ServiceTime: 3 * time.Millisecond, AdvertisedWeight: 123.5}
	h := serve.NewHistogram()
	for i := 1; i <= 50; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	st.LatencyHist = h
	WriteServeStats(p, st, Label{Name: "shard", Value: "0"})
	f.Add(b.String())
	f.Add("")
	f.Add("# HELP m a help\n# TYPE m counter\nm 1\n")
	f.Add(`m{a="x\"y",b="z\\"} 2`)
	f.Add("m{a=\"line\\nbreak\"} 3\nm{a=\"\"} +Inf\nm NaN\n")
	f.Add("lat_bucket{le=\"0.1\"} 4\n# TYPE lat histogram\nlat_bucket{le=\"+Inf\"} 9\nlat_sum 2\nlat_count 9\n")
	f.Add("m{} 5")
	f.Add("m 1e300")

	f.Fuzz(func(t *testing.T, text string) {
		fams, err := ParsePrometheus(text)
		if err != nil {
			return // rejecting malformed input is fine; panicking is not
		}
		rendered := renderFamilies(fams)
		again, err := ParsePrometheus(rendered)
		if err != nil {
			t.Fatalf("accepted input re-rendered unparseable: %v\ninput: %q\nrendered: %q", err, text, rendered)
		}
		// Property 2: no sample gained, lost or altered.
		k1, k2 := allSampleKeys(fams), allSampleKeys(again)
		if len(k1) != len(k2) {
			t.Fatalf("round trip changed sample count %d -> %d\ninput: %q\nrendered: %q", len(k1), len(k2), text, rendered)
		}
		for i := range k1 {
			if k1[i] != k2[i] {
				t.Fatalf("round trip changed a sample: %s -> %s\ninput: %q\nrendered: %q", k1[i], k2[i], text, rendered)
			}
		}
		// Property 3: a second round trip is a strict fixed point.
		final, err := ParsePrometheus(renderFamilies(again))
		if err != nil {
			t.Fatalf("second re-render unparseable: %v\ninput: %q", err, text)
		}
		if !equalFamilies(again, final) {
			t.Fatalf("round trip not idempotent\ninput: %q\nrendered: %q", text, rendered)
		}
	})
}

// TestWriteServeStatsRoundTrip is the deterministic half of the fuzz
// property: the full golden exposition parses back with every family
// intact, and the parsed advertised-weight gauge matches the input stat.
func TestWriteServeStatsRoundTrip(t *testing.T) {
	var b bytes.Buffer
	p := NewPromWriter(&b)
	st := goldenStats()
	st.AdvertisedWeight = 321.25
	WriteServeStats(p, st, Label{Name: "shard", Value: "2"})
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	fams, err := ParsePrometheus(b.String())
	if err != nil {
		t.Fatal(err)
	}
	rendered := renderFamilies(fams)
	again, err := ParsePrometheus(rendered)
	if err != nil {
		t.Fatalf("re-render unparseable: %v", err)
	}
	if len(again) != len(fams) {
		t.Fatalf("family count %d -> %d", len(fams), len(again))
	}
	g := fams["hybridnet_advertised_weight"]
	if g == nil || len(g.Samples) == 0 {
		t.Fatal("advertised weight family missing")
	}
	if v := g.Samples[0].Value; v != 321.25 {
		t.Fatalf("advertised weight %v, want 321.25", v)
	}
	if g.Samples[0].Labels["shard"] != "2" {
		t.Fatalf("labels %v, want shard=2", g.Samples[0].Labels)
	}
}
