package obs

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/serve"
	"repro/internal/tensor"
)

// stagedBackend answers instantly but reports a fixed stage breakdown,
// zeroing the reliable/qualifier stages for all-CNN batches like the real
// pipeline does.
type stagedBackend struct{}

func (stagedBackend) ClassifyBatch(imgs []*tensor.Tensor) ([]core.Result, error) {
	return make([]core.Result, len(imgs)), nil
}

func (b stagedBackend) ClassifyBatchTimed(imgs []*tensor.Tensor) ([]core.Result, core.StageTimes, error) {
	res, err := b.ClassifyBatch(imgs)
	return res, core.StageTimes{Reliable: 3 * time.Millisecond, Qualifier: time.Millisecond, CNN: 7 * time.Millisecond}, err
}

func (b stagedBackend) ClassifyBatchPipelined(imgs []*tensor.Tensor, pipes []core.Pipeline) ([]core.Result, core.StageTimes, error) {
	res, st, err := b.ClassifyBatchTimed(imgs)
	full := false
	for _, p := range pipes {
		if p == core.PipelineFull {
			full = true
		}
	}
	if !full {
		st.Reliable, st.Qualifier = 0, 0
	}
	return res, st, err
}

// TestWriteServeStatsClassSumsToAggregate is the observability acceptance
// gate for service classes: render a live scheduler's snapshot after a
// mixed-class churn, parse our own exposition back, and check that every
// class-labeled series sums exactly to its unlabeled aggregate — counters,
// queue gauges, histogram counts and the per-stage busy totals — and that
// the class×outcome matrix is consistent with the per-outcome counters.
func TestWriteServeStatsClassSumsToAggregate(t *testing.T) {
	s, err := serve.New(stagedBackend{}, serve.Config{MaxBatch: 4, MaxDelay: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}()

	img := tensor.MustNew(1, 1, 1)
	var wg sync.WaitGroup
	counts := map[serve.Class]int{serve.ClassGuaranteed: 12, serve.ClassFast: 8, serve.ClassBudget: 5}
	for class, n := range counts {
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(c serve.Class) {
				defer wg.Done()
				if _, err := s.SubmitClass(context.Background(), img, c); err != nil {
					t.Errorf("submit %v: %v", c, err)
				}
			}(class)
		}
	}
	wg.Wait()
	st := s.Stats()
	if st.Completed != 25 {
		t.Fatalf("completed %d, want 25", st.Completed)
	}

	var b strings.Builder
	p := NewPromWriter(&b)
	WriteServeStats(p, st)
	if err := p.Err(); err != nil {
		t.Fatalf("WriteServeStats: %v", err)
	}
	fams, err := ParsePrometheus(b.String())
	if err != nil {
		t.Fatalf("own /metrics output does not parse: %v\n%s", err, b.String())
	}

	// split sums a family's samples matching the given name into the
	// unlabeled aggregate and the per-class total, keyed off extra label
	// requirements (for stage and histogram-suffix series).
	split := func(famName, sampleName string, extra map[string]string) (agg float64, classSum float64, classes int) {
		t.Helper()
		f := fams[famName]
		if f == nil {
			t.Fatalf("family %s missing", famName)
		}
		aggSeen := false
		for _, smp := range f.Samples {
			if smp.Name != sampleName {
				continue
			}
			match := true
			for k, v := range extra {
				if smp.Labels[k] != v {
					match = false
				}
			}
			if !match {
				continue
			}
			if cl, ok := smp.Labels["class"]; ok {
				if _, err := serve.ParseClass(cl); err != nil {
					t.Errorf("%s: unknown class label %q", sampleName, cl)
				}
				classSum += smp.Value
				classes++
			} else {
				if aggSeen {
					t.Errorf("%s: duplicate unlabeled sample", sampleName)
				}
				agg, aggSeen = smp.Value, true
			}
		}
		if !aggSeen {
			t.Fatalf("%s: no unlabeled aggregate sample", sampleName)
		}
		return agg, classSum, classes
	}

	for _, name := range []string{
		"hybridnet_requests_submitted_total",
		"hybridnet_requests_rejected_total",
		"hybridnet_requests_expired_total",
		"hybridnet_requests_expired_dispatched_total",
		"hybridnet_requests_completed_total",
		"hybridnet_requests_failed_total",
		"hybridnet_queue_depth",
		"hybridnet_queue_capacity",
	} {
		agg, sum, n := split(name, name, nil)
		if agg != sum {
			t.Errorf("%s: class sum %v != aggregate %v", name, sum, agg)
		}
		if n != serve.NumClasses {
			t.Errorf("%s: %d class samples, want %d", name, n, serve.NumClasses)
		}
	}
	if agg, _, _ := split("hybridnet_requests_submitted_total", "hybridnet_requests_submitted_total", nil); agg != 25 {
		t.Errorf("submitted aggregate %v, want 25", agg)
	}

	// Histogram counts are integers and must match exactly; the _sum
	// series goes through nanoseconds→seconds float conversion per class,
	// so allow ulp-level noise there.
	near := func(a, b float64) bool { d := a - b; return d <= 1e-9 && d >= -1e-9 }
	for _, name := range []string{"hybridnet_request_latency_seconds", "hybridnet_queue_wait_seconds"} {
		if agg, sum, n := split(name, name+"_count", nil); agg != sum || n != serve.NumClasses {
			t.Errorf("%s_count: class sum %v (over %d samples) != aggregate %v", name, sum, n, agg)
		}
		if agg, sum, n := split(name, name+"_sum", nil); !near(agg, sum) || n != serve.NumClasses {
			t.Errorf("%s_sum: class sum %v (over %d samples) != aggregate %v", name, sum, n, agg)
		}
	}

	for _, stage := range []string{"reliable", "qualifier", "cnn"} {
		agg, sum, n := split("hybridnet_stage_busy_seconds_total", "hybridnet_stage_busy_seconds_total", map[string]string{"stage": stage})
		// Durations round-trip through decimal seconds; allow one ulp of
		// formatting noise.
		if d := agg - sum; d > 1e-9 || d < -1e-9 {
			t.Errorf("stage %s: class sum %v != aggregate %v", stage, sum, agg)
		}
		if n != serve.NumClasses {
			t.Errorf("stage %s: %d class samples, want %d", stage, n, serve.NumClasses)
		}
		if stage == "cnn" && agg == 0 {
			t.Errorf("cnn stage busy is zero after 25 completions")
		}
	}

	// The class×outcome matrix exists only class-labeled; its completed
	// column must agree with the per-class completed counter series.
	matrix := fams["hybridnet_requests_total"]
	if matrix == nil {
		t.Fatal("hybridnet_requests_total matrix missing")
	}
	completedByClass := map[string]float64{}
	for _, smp := range matrix.Samples {
		if smp.Labels["class"] == "" || smp.Labels["outcome"] == "" {
			t.Errorf("matrix sample missing class/outcome labels: %+v", smp)
		}
		if smp.Labels["outcome"] == "completed" {
			completedByClass[smp.Labels["class"]] += smp.Value
		}
	}
	for class, n := range counts {
		if got := completedByClass[class.String()]; got != float64(n) {
			t.Errorf("matrix completed{class=%q} = %v, want %d", class, got, n)
		}
	}
	if f := fams["hybridnet_requests_degraded_total"]; f == nil || len(f.Samples) != serve.NumClasses {
		t.Errorf("hybridnet_requests_degraded_total: want %d class samples, have %+v", serve.NumClasses, f)
	}
}
