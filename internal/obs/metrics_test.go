package obs

import (
	"context"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/serve"
	"repro/internal/tensor"
)

// goldenStats builds a fully populated serve.Stats with known samples, the
// input to the golden /metrics rendering tests.
func goldenStats() serve.Stats {
	lat := serve.NewHistogram()
	queue := serve.NewHistogram()
	backend := serve.NewHistogram()
	for i := 1; i <= 100; i++ {
		d := time.Duration(i) * time.Millisecond
		lat.Observe(d)
		queue.Observe(d / 4)
		backend.Observe(d / 2)
	}
	return serve.Stats{
		Shards:            1,
		Submitted:         120,
		Rejected:          10,
		Expired:           5,
		ExpiredDispatched: 2,
		Completed:         100,
		Failed:            3,
		Batches:           30,
		MeanBatch:         3.5,
		BatchHist:         []uint64{5, 10, 10, 5},
		QueueDepth:        4,
		QueueCap:          64,
		LatencyCount:      int(lat.Count()),
		LatencyP50:        lat.Quantile(0.50),
		LatencyP99:        lat.Quantile(0.99),
		LatencyMax:        lat.Max(),
		LatencyHist:       lat,
		QueueHist:         queue,
		BackendHist:       backend,
		StageReliable:     3 * time.Second,
		StageQualifier:    time.Second,
		StageCNN:          7 * time.Second,
		ServiceTime:       2 * time.Millisecond,
		BackendBusy:       45 * time.Second,
		Uptime:            time.Hour,
	}
}

func renderStats(t *testing.T, st serve.Stats) map[string]*MetricFamily {
	t.Helper()
	var b strings.Builder
	p := NewPromWriter(&b)
	WriteServeStats(p, st)
	if err := p.Err(); err != nil {
		t.Fatalf("WriteServeStats: %v", err)
	}
	fams, err := ParsePrometheus(b.String())
	if err != nil {
		t.Fatalf("own /metrics output does not parse: %v\n%s", err, b.String())
	}
	return fams
}

// TestWriteServeStatsGolden checks the exposition end to end: every family
// present with the right TYPE, counter values matching the stats snapshot,
// and histograms internally consistent (cumulative buckets, +Inf == _count).
func TestWriteServeStatsGolden(t *testing.T) {
	st := goldenStats()
	fams := renderStats(t, st)

	wantTypes := map[string]string{
		"hybridnet_requests_submitted_total":          "counter",
		"hybridnet_requests_rejected_total":           "counter",
		"hybridnet_requests_expired_total":            "counter",
		"hybridnet_requests_expired_dispatched_total": "counter",
		"hybridnet_requests_completed_total":          "counter",
		"hybridnet_requests_failed_total":             "counter",
		"hybridnet_batches_total":                     "counter",
		"hybridnet_queue_depth":                       "gauge",
		"hybridnet_queue_capacity":                    "gauge",
		"hybridnet_service_time_seconds":              "gauge",
		"hybridnet_backend_busy_seconds_total":        "counter",
		"hybridnet_uptime_seconds":                    "gauge",
		"hybridnet_batch_size":                        "histogram",
		"hybridnet_request_latency_seconds":           "histogram",
		"hybridnet_queue_wait_seconds":                "histogram",
		"hybridnet_backend_latency_seconds":           "histogram",
		"hybridnet_stage_busy_seconds_total":          "counter",
	}
	for name, typ := range wantTypes {
		f := fams[name]
		if f == nil {
			t.Errorf("family %s missing", name)
			continue
		}
		if f.Type != typ {
			t.Errorf("family %s type %q, want %q", name, f.Type, typ)
		}
	}

	single := func(name string) float64 {
		t.Helper()
		f := fams[name]
		if f == nil || len(f.Samples) != 1 {
			t.Fatalf("family %s: want exactly one sample, have %+v", name, f)
		}
		return f.Samples[0].Value
	}
	if got := single("hybridnet_requests_completed_total"); got != 100 {
		t.Errorf("completed_total = %v, want 100", got)
	}
	if got := single("hybridnet_requests_expired_dispatched_total"); got != 2 {
		t.Errorf("expired_dispatched_total = %v, want 2", got)
	}
	if got := single("hybridnet_queue_depth"); got != 4 {
		t.Errorf("queue_depth = %v, want 4", got)
	}

	// Stage counters: one series per stage label.
	stages := map[string]float64{}
	for _, s := range fams["hybridnet_stage_busy_seconds_total"].Samples {
		stages[s.Labels["stage"]] = s.Value
	}
	if stages["reliable"] != 3 || stages["qualifier"] != 1 || stages["cnn"] != 7 {
		t.Errorf("stage series = %v, want reliable=3 qualifier=1 cnn=7", stages)
	}

	// Histogram internal consistency for the latency family.
	f := fams["hybridnet_request_latency_seconds"]
	var count, sum float64
	var infSeen bool
	prev := -1.0
	for _, s := range f.Samples {
		switch s.Name {
		case f.Name + "_count":
			count = s.Value
		case f.Name + "_sum":
			sum = s.Value
		case f.Name + "_bucket":
			if s.Value < prev {
				t.Errorf("bucket le=%s cumulative count decreased: %v < %v",
					s.Labels["le"], s.Value, prev)
			}
			prev = s.Value
			if s.Labels["le"] == "+Inf" {
				infSeen = true
				if s.Value != 100 {
					t.Errorf("+Inf bucket = %v, want 100", s.Value)
				}
			}
		}
	}
	if !infSeen {
		t.Error("latency histogram has no +Inf bucket")
	}
	if count != 100 {
		t.Errorf("latency _count = %v, want 100", count)
	}
	// Sum of 1..100ms = 5.05s.
	if sum < 5.049 || sum > 5.051 {
		t.Errorf("latency _sum = %v, want 5.05", sum)
	}
}

// TestMetricsQuantileMatchesStats is the acceptance check: the p50/p99 a
// Prometheus scraper would compute from /metrics buckets equals the /stats
// quantile to within one bucket width (serve.Quantile clamps to the exact
// observed max; the exposition only has the bucket's upper bound).
func TestMetricsQuantileMatchesStats(t *testing.T) {
	st := goldenStats()
	fams := renderStats(t, st)
	f := fams["hybridnet_request_latency_seconds"]
	for _, p := range []float64{0.50, 0.99} {
		metricsQ, err := HistogramQuantile(f, p, map[string]string{"class": ""})
		if err != nil {
			t.Fatalf("HistogramQuantile(%v): %v", p, err)
		}
		statsQ := st.LatencyHist.Quantile(p).Seconds()
		if metricsQ < statsQ || metricsQ > statsQ*1.20 {
			t.Errorf("p%.0f: metrics %.6fs vs stats %.6fs — want within one bucket (19%%)",
				p*100, metricsQ, statsQ)
		}
	}
}

// instantBackend returns zero results immediately.
type instantBackend struct{}

func (instantBackend) ClassifyBatch(imgs []*tensor.Tensor) ([]core.Result, error) {
	return make([]core.Result, len(imgs)), nil
}

// TestConcurrentObserveScrape runs live traffic through a scheduler while
// concurrently rendering /metrics from its snapshots — the data-race check
// for the observe/scrape pair (meaningful under -race).
func TestConcurrentObserveScrape(t *testing.T) {
	sched, err := serve.New(instantBackend{}, serve.Config{MaxBatch: 4, QueueSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer sched.Shutdown(context.Background())
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				sched.Submit(context.Background(), tensor.MustNew(1, 1, 1))
			}
		}()
	}
	for i := 0; i < 50; i++ {
		var b strings.Builder
		p := NewPromWriter(&b)
		WriteServeStats(p, sched.Stats())
		if err := p.Err(); err != nil {
			t.Fatalf("scrape %d: %v", i, err)
		}
		if _, err := ParsePrometheus(b.String()); err != nil {
			t.Fatalf("scrape %d does not parse: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()
}

// BenchmarkObservePath is the per-request observability hot path the serving
// tier adds on top of classification: mint the trace counter, record the
// trace with the flight recorder (steady state: not among the slowest).
// Gate: ~100ns/op.
func BenchmarkObservePath(b *testing.B) {
	r := NewRecorder(64)
	start := time.Now()
	// Warm the slowest set so benchmark records never take the slow path.
	for i := 0; i < 64; i++ {
		r.Record(TraceRecord{ID: "warm", Start: start, Status: 200, Total: time.Hour})
	}
	var completed atomic.Uint64
	tr := TraceRecord{ID: "bench", Start: start, Status: 200, Total: time.Millisecond}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		completed.Add(1)
		r.Record(tr)
	}
}
