package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/serve"
)

// Label is one Prometheus label pair. Values are escaped on write.
type Label struct {
	Name, Value string
}

// PromWriter emits Prometheus text exposition format (version 0.0.4), the
// format every Prometheus-compatible scraper ingests. It is a renderer,
// not a registry: the daemons snapshot their stats on each scrape and
// stream them through a fresh writer, so there is no metric state to keep
// in sync with the counters that already exist.
//
// HELP/TYPE headers are emitted once per metric family even when the same
// family is written repeatedly with different labels (per-shard series).
type PromWriter struct {
	w    io.Writer
	seen map[string]bool
	err  error
}

// NewPromWriter wraps w.
func NewPromWriter(w io.Writer) *PromWriter {
	return &PromWriter{w: w, seen: make(map[string]bool)}
}

// Err returns the first write error, if any.
func (p *PromWriter) Err() error { return p.err }

func (p *PromWriter) printf(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

func (p *PromWriter) header(name, help, typ string) {
	if p.seen[name] {
		return
	}
	p.seen[name] = true
	p.printf("# HELP %s %s\n# TYPE %s %s\n", name, escapeHelp(help), name, typ)
}

// series renders "name{labels}".
func series(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// formatValue renders a sample value the way Prometheus expects: shortest
// float form, integers without exponent where possible.
func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Counter writes one counter sample.
func (p *PromWriter) Counter(name, help string, v float64, labels ...Label) {
	p.header(name, help, "counter")
	p.printf("%s %s\n", series(name, labels), formatValue(v))
}

// Gauge writes one gauge sample.
func (p *PromWriter) Gauge(name, help string, v float64, labels ...Label) {
	p.header(name, help, "gauge")
	p.printf("%s %s\n", series(name, labels), formatValue(v))
}

// Info writes the conventional "always 1" info gauge whose labels carry
// build/config facts (kernel, arch, worker counts).
func (p *PromWriter) Info(name, help string, labels ...Label) {
	p.Gauge(name, help, 1, labels...)
}

// HistogramFromServe renders a serve.Histogram as a Prometheus histogram
// in seconds, reusing the package-wide log-bucket layout — no new
// histogram math, just the cumulative view Prometheus wants. Empty
// trailing buckets collapse onto +Inf (the cumulative count no longer
// changes), keeping the exposition compact without changing any quantile
// a scraper would compute.
func (p *PromWriter) HistogramFromServe(name, help string, h *serve.Histogram, labels ...Label) {
	if h == nil {
		h = serve.NewHistogram()
	}
	p.header(name, help, "histogram")
	bounds := serve.HistogramBounds()
	counts := h.Counts()
	total := h.Count()
	var cum uint64
	for i, c := range counts[:len(bounds)] {
		cum += c
		if cum == total && i < len(bounds)-1 && c == 0 {
			// Every remaining bucket repeats the total; one +Inf line covers
			// them. (Only once the cumulative count has saturated.)
			break
		}
		le := append(labels[:len(labels):len(labels)], Label{"le", formatValue(bounds[i].Seconds())})
		p.printf("%s %d\n", series(name+"_bucket", le), cum)
		if cum == total {
			break
		}
	}
	inf := append(labels[:len(labels):len(labels)], Label{"le", "+Inf"})
	p.printf("%s %d\n", series(name+"_bucket", inf), total)
	p.printf("%s %s\n", series(name+"_sum", labels), formatValue(h.Sum().Seconds()))
	p.printf("%s %d\n", series(name+"_count", labels), total)
}

// BatchSizeHistogram renders the scheduler's batch-size distribution
// (BatchHist[i] = batches of size i+1) as a Prometheus histogram with one
// bucket per size.
func (p *PromWriter) BatchSizeHistogram(name, help string, batchHist []uint64, labels ...Label) {
	p.header(name, help, "histogram")
	var cum, total, sum uint64
	for _, c := range batchHist {
		total += c
	}
	for i, c := range batchHist {
		cum += c
		sum += uint64(i+1) * c
		le := append(labels[:len(labels):len(labels)], Label{"le", strconv.Itoa(i + 1)})
		p.printf("%s %d\n", series(name+"_bucket", le), cum)
	}
	inf := append(labels[:len(labels):len(labels)], Label{"le", "+Inf"})
	p.printf("%s %d\n", series(name+"_bucket", inf), total)
	p.printf("%s %d\n", series(name+"_sum", labels), sum)
	p.printf("%s %d\n", series(name+"_count", labels), total)
}

// WriteServeStats renders one serve.Stats snapshot under the shared
// hybridnet_* metric names. Both daemons use it — the worker with its own
// scheduler's stats, the router with the fleet's serve.Merge aggregate —
// so a dashboard works unchanged against either tier.
//
// Every request counter, latency/queue-wait histogram, queue gauge and
// stage-busy total is written twice: once unlabeled (the aggregate, the
// pre-class series dashboards already consume) and once per service class
// with a class="guaranteed|fast|budget" label in the same family. Both
// views render from the same snapshot, so the per-class sums equal the
// unlabeled totals exactly; queries should use one view or the other, not
// sum across both. The outcome-matrix family hybridnet_requests_total
// {class,outcome} and hybridnet_requests_degraded_total{class} exist only
// in class-labeled form.
func WriteServeStats(p *PromWriter, st serve.Stats, labels ...Label) {
	// cls returns labels + class=name without aliasing the caller's slice.
	cls := func(name string) []Label {
		return append(labels[:len(labels):len(labels)], Label{"class", name})
	}
	counters := []struct {
		name, help string
		agg        uint64
		per        func(serve.ClassStats) uint64
	}{
		{"hybridnet_requests_submitted_total", "Requests accepted into a scheduler queue.", st.Submitted, func(c serve.ClassStats) uint64 { return c.Submitted }},
		{"hybridnet_requests_rejected_total", "Requests shed by admission control (class queue full).", st.Rejected, func(c serve.ClassStats) uint64 { return c.Rejected }},
		{"hybridnet_requests_expired_total", "Requests whose deadline expired while queued.", st.Expired, func(c serve.ClassStats) uint64 { return c.Expired }},
		{"hybridnet_requests_expired_dispatched_total", "Requests whose deadline expired after dispatch to the backend (work wasted, result discarded).", st.ExpiredDispatched, func(c serve.ClassStats) uint64 { return c.ExpiredDispatched }},
		{"hybridnet_requests_completed_total", "Requests classified successfully.", st.Completed, func(c serve.ClassStats) uint64 { return c.Completed }},
		{"hybridnet_requests_failed_total", "Requests failed with a backend error.", st.Failed, func(c serve.ClassStats) uint64 { return c.Failed }},
	}
	for _, c := range counters {
		p.Counter(c.name, c.help, float64(c.agg), labels...)
		for _, cs := range st.Classes {
			p.Counter(c.name, c.help, float64(c.per(cs)), cls(cs.Class)...)
		}
	}
	// The outcome matrix: one family, class × outcome, for per-tier SLO
	// burn queries (e.g. rate(hybridnet_requests_total{class="guaranteed",
	// outcome="completed"}[5m])).
	const outcomeHelp = "Requests by service class and terminal outcome."
	for _, cs := range st.Classes {
		for _, o := range []struct {
			name string
			v    uint64
		}{
			{"completed", cs.Completed},
			{"rejected", cs.Rejected},
			{"expired", cs.Expired},
			{"expired_dispatched", cs.ExpiredDispatched},
			{"failed", cs.Failed},
		} {
			ls := append(cls(cs.Class), Label{"outcome", o.name})
			p.Counter("hybridnet_requests_total", outcomeHelp, float64(o.v), ls...)
		}
		p.Counter("hybridnet_requests_degraded_total", "Budget requests re-admitted into the fast (CNN-only) pipeline instead of being shed.", float64(cs.Degraded), cls(cs.Class)...)
	}
	p.Counter("hybridnet_batches_total", "Backend micro-batch invocations.", float64(st.Batches), labels...)
	p.Gauge("hybridnet_queue_depth", "Live scheduler queue depth.", float64(st.QueueDepth), labels...)
	p.Gauge("hybridnet_queue_capacity", "Admission-control queue bound.", float64(st.QueueCap), labels...)
	for _, cs := range st.Classes {
		p.Gauge("hybridnet_queue_depth", "Live scheduler queue depth.", float64(cs.QueueDepth), cls(cs.Class)...)
		p.Gauge("hybridnet_queue_capacity", "Admission-control queue bound.", float64(cs.QueueCap), cls(cs.Class)...)
	}
	p.Gauge("hybridnet_service_time_seconds", "Rolling EWMA of backend time per image (the adaptive-placement signal).", st.ServiceTime.Seconds(), labels...)
	p.Gauge("hybridnet_advertised_weight", "Self-computed min-max placement weight (offered images/sec; 0 = not advertising).", st.AdvertisedWeight, labels...)
	p.Counter("hybridnet_backend_busy_seconds_total", "Cumulative wall time spent inside the backend.", st.BackendBusy.Seconds(), labels...)
	p.Gauge("hybridnet_uptime_seconds", "Scheduler uptime.", st.Uptime.Seconds(), labels...)
	p.BatchSizeHistogram("hybridnet_batch_size", "Dispatched micro-batch sizes.", st.BatchHist, labels...)
	p.HistogramFromServe("hybridnet_request_latency_seconds", "End-to-end request latency (enqueue to response).", st.LatencyHist, labels...)
	p.HistogramFromServe("hybridnet_queue_wait_seconds", "Time from enqueue until the flusher picked the request into a batch.", st.QueueHist, labels...)
	for _, cs := range st.Classes {
		p.HistogramFromServe("hybridnet_request_latency_seconds", "End-to-end request latency (enqueue to response).", cs.LatencyHist, cls(cs.Class)...)
		p.HistogramFromServe("hybridnet_queue_wait_seconds", "Time from enqueue until the flusher picked the request into a batch.", cs.QueueHist, cls(cs.Class)...)
	}
	p.HistogramFromServe("hybridnet_backend_latency_seconds", "Wall time of the request's batch inside the backend.", st.BackendHist, labels...)
	stageHelp := "Cumulative per-worker wall time spent in each backend pipeline stage."
	for _, stage := range []struct {
		name string
		agg  time.Duration
		per  func(serve.ClassStats) time.Duration
	}{
		{"reliable", st.StageReliable, func(c serve.ClassStats) time.Duration { return c.StageReliable }},
		{"qualifier", st.StageQualifier, func(c serve.ClassStats) time.Duration { return c.StageQualifier }},
		{"cnn", st.StageCNN, func(c serve.ClassStats) time.Duration { return c.StageCNN }},
	} {
		ls := append(labels[:len(labels):len(labels)], Label{"stage", stage.name})
		p.Counter("hybridnet_stage_busy_seconds_total", stageHelp, stage.agg.Seconds(), ls...)
		for _, cs := range st.Classes {
			lsc := append(cls(cs.Class), Label{"stage", stage.name})
			p.Counter("hybridnet_stage_busy_seconds_total", stageHelp, stage.per(cs).Seconds(), lsc...)
		}
	}
}

// --- Minimal Prometheus text-format parser (tests, loadgen) -------------

// MetricSample is one parsed exposition line.
type MetricSample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// MetricFamily groups samples sharing a family name, with the declared
// TYPE ("counter", "gauge", "histogram").
type MetricFamily struct {
	Name    string
	Type    string
	Help    string
	Samples []MetricSample
}

// ParsePrometheus parses Prometheus text exposition format — enough of it
// to validate our own output and read quantiles back out of histograms.
// Unknown comment lines are ignored; malformed sample lines are errors.
func ParsePrometheus(text string) (map[string]*MetricFamily, error) {
	fams := make(map[string]*MetricFamily)
	family := func(name string) *MetricFamily {
		base := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			trimmed := strings.TrimSuffix(name, suffix)
			if trimmed != name && fams[trimmed] != nil && fams[trimmed].Type == "histogram" {
				base = trimmed
				break
			}
		}
		f := fams[base]
		if f == nil {
			f = &MetricFamily{Name: base}
			fams[base] = f
		}
		return f
	}
	for lineNo, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) >= 4 && fields[1] == "TYPE" {
				f := family(fields[2])
				f.Type = fields[3]
			} else if len(fields) >= 4 && fields[1] == "HELP" {
				f := family(fields[2])
				f.Help = fields[3]
			}
			continue
		}
		sample, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("obs: line %d: %w", lineNo+1, err)
		}
		f := family(sample.Name)
		f.Samples = append(f.Samples, sample)
	}
	return fams, nil
}

func parseSample(line string) (MetricSample, error) {
	s := MetricSample{Labels: map[string]string{}}
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		s.Name = rest[:i]
		j := strings.LastIndexByte(rest, '}')
		if j < i {
			return s, fmt.Errorf("unbalanced braces in %q", line)
		}
		if err := parseLabels(rest[i+1:j], s.Labels); err != nil {
			return s, err
		}
		rest = strings.TrimSpace(rest[j+1:])
	} else {
		fields := strings.Fields(rest)
		if len(fields) != 2 {
			return s, fmt.Errorf("want 'name value', got %q", line)
		}
		s.Name, rest = fields[0], fields[1]
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
	if err != nil {
		return s, fmt.Errorf("value in %q: %w", line, err)
	}
	s.Value = v
	return s, nil
}

func parseLabels(body string, into map[string]string) error {
	for len(body) > 0 {
		eq := strings.IndexByte(body, '=')
		if eq < 0 || len(body) < eq+2 || body[eq+1] != '"' {
			return fmt.Errorf("malformed labels %q", body)
		}
		name := strings.TrimSpace(body[:eq])
		rest := body[eq+2:]
		var val strings.Builder
		i := 0
		for ; i < len(rest); i++ {
			if rest[i] == '\\' && i+1 < len(rest) {
				switch rest[i+1] {
				case 'n':
					val.WriteByte('\n')
				default:
					val.WriteByte(rest[i+1])
				}
				i++
				continue
			}
			if rest[i] == '"' {
				break
			}
			val.WriteByte(rest[i])
		}
		if i == len(rest) {
			return fmt.Errorf("unterminated label value in %q", body)
		}
		into[name] = val.String()
		body = strings.TrimPrefix(strings.TrimSpace(rest[i+1:]), ",")
		body = strings.TrimSpace(body)
	}
	return nil
}

// HistogramQuantile computes the nearest-rank quantile from a parsed
// histogram family's _bucket samples (cumulative counts), mirroring
// serve.Histogram.Quantile's bucket-upper-bound semantics — the tool tests
// use it to check that /metrics and /stats agree.
func HistogramQuantile(f *MetricFamily, p float64, match map[string]string) (float64, error) {
	type bucket struct {
		le  float64
		cum float64
	}
	var buckets []bucket
	for _, s := range f.Samples {
		if s.Name != f.Name+"_bucket" {
			continue
		}
		if !labelsMatch(s.Labels, match) {
			continue
		}
		leStr := s.Labels["le"]
		le := 0.0
		if leStr == "+Inf" {
			le = inf()
		} else {
			var err error
			le, err = strconv.ParseFloat(leStr, 64)
			if err != nil {
				return 0, fmt.Errorf("obs: bucket le %q: %w", leStr, err)
			}
		}
		buckets = append(buckets, bucket{le, s.Value})
	}
	if len(buckets) == 0 {
		return 0, fmt.Errorf("obs: family %s has no matching buckets", f.Name)
	}
	sort.Slice(buckets, func(i, j int) bool { return buckets[i].le < buckets[j].le })
	total := buckets[len(buckets)-1].cum
	if total == 0 {
		return 0, nil
	}
	rank := p * total
	for _, b := range buckets {
		if b.cum >= rank && b.cum > 0 {
			return b.le, nil
		}
	}
	return buckets[len(buckets)-1].le, nil
}

func labelsMatch(have, want map[string]string) bool {
	for k, v := range want {
		if have[k] != v {
			return false
		}
	}
	return true
}

func inf() float64 {
	v, _ := strconv.ParseFloat("+Inf", 64)
	return v
}
