// Package logx is the serving plane's structured logger: leveled,
// logfmt-style key=value lines, one allocation-light call per event. It
// replaces the ad-hoc log.Printf lines in hybridnetd and hybridnet-router
// so every request-outcome line is machine-parseable and carries the
// request's trace ID as a field instead of prose.
//
//	ts=2026-08-08T10:01:02.345Z level=info msg=request trace=ab12cd34-0007 status=200 lat_ms=4.2
//
// A nil *Logger is a valid no-op sink (every method on it is safe), so
// library code can log unconditionally and let the caller decide whether
// anything is wired up.
package logx

import (
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Level orders log severities. Events below the logger's level are dropped
// before any formatting work happens.
type Level int8

const (
	Debug Level = iota - 1
	Info
	Warn
	Error
)

// String implements fmt.Stringer.
func (l Level) String() string {
	switch l {
	case Debug:
		return "debug"
	case Info:
		return "info"
	case Warn:
		return "warn"
	case Error:
		return "error"
	default:
		return fmt.Sprintf("level(%d)", int(l))
	}
}

// ParseLevel maps a flag value to a Level.
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return Debug, nil
	case "info", "":
		return Info, nil
	case "warn", "warning":
		return Warn, nil
	case "error":
		return Error, nil
	}
	return Info, fmt.Errorf("logx: unknown level %q (debug|info|warn|error)", s)
}

// Logger emits logfmt lines to a writer. Safe for concurrent use; each
// event is written with a single Write call so lines from concurrent
// goroutines never interleave mid-line.
type Logger struct {
	mu    sync.Mutex
	w     io.Writer
	level Level
	base  string // pre-rendered "k=v k=v" suffix from With
	now   func() time.Time
}

// New builds a Logger writing events at or above level to w.
func New(w io.Writer, level Level) *Logger {
	return &Logger{w: w, level: level, now: time.Now}
}

// Default is a process-wide Info-level logger on stderr.
var defaultLogger = New(os.Stderr, Info)

// Default returns the shared stderr Info logger.
func Default() *Logger { return defaultLogger }

// With returns a logger that appends the given key/value pairs to every
// event. The pairs are rendered once, so With is cheap to use per
// subsystem ("component", "router") but not meant for per-event state.
func (l *Logger) With(kvs ...any) *Logger {
	if l == nil {
		return nil
	}
	var b strings.Builder
	appendKVs(&b, kvs)
	l.mu.Lock()
	defer l.mu.Unlock()
	return &Logger{w: l.w, level: l.level, base: l.base + b.String(), now: l.now}
}

// Enabled reports whether events at level would be written.
func (l *Logger) Enabled(level Level) bool {
	return l != nil && level >= l.level
}

// Debug logs a debug-level event.
func (l *Logger) Debug(msg string, kvs ...any) { l.log(Debug, msg, kvs) }

// Info logs an info-level event.
func (l *Logger) Info(msg string, kvs ...any) { l.log(Info, msg, kvs) }

// Warn logs a warn-level event.
func (l *Logger) Warn(msg string, kvs ...any) { l.log(Warn, msg, kvs) }

// Error logs an error-level event.
func (l *Logger) Error(msg string, kvs ...any) { l.log(Error, msg, kvs) }

// Logf adapts printf-style call sites (e.g. shard.Config.Logf): the
// formatted message becomes the msg field of one info-level event.
func (l *Logger) Logf(format string, args ...any) {
	l.log(Info, fmt.Sprintf(format, args...), nil)
}

func (l *Logger) log(level Level, msg string, kvs []any) {
	if !l.Enabled(level) {
		return
	}
	var b strings.Builder
	b.Grow(64 + len(msg) + len(l.base) + 16*len(kvs))
	b.WriteString("ts=")
	b.WriteString(l.now().UTC().Format("2006-01-02T15:04:05.000Z"))
	b.WriteString(" level=")
	b.WriteString(level.String())
	b.WriteString(" msg=")
	b.WriteString(quote(msg))
	b.WriteString(l.base)
	appendKVs(&b, kvs)
	b.WriteByte('\n')
	l.mu.Lock()
	io.WriteString(l.w, b.String())
	l.mu.Unlock()
}

// appendKVs renders " k=v" pairs. A trailing odd value is kept under the
// key "!badkey" rather than dropped, so a malformed call site is visible
// in the output instead of silently losing data.
func appendKVs(b *strings.Builder, kvs []any) {
	for i := 0; i+1 < len(kvs); i += 2 {
		b.WriteByte(' ')
		key, ok := kvs[i].(string)
		if !ok {
			key = fmt.Sprint(kvs[i])
		}
		b.WriteString(key)
		b.WriteByte('=')
		b.WriteString(quote(value(kvs[i+1])))
	}
	if len(kvs)%2 == 1 {
		b.WriteString(" !badkey=")
		b.WriteString(quote(value(kvs[len(kvs)-1])))
	}
}

// value renders one logfmt value without reflection for the common types.
func value(v any) string {
	switch x := v.(type) {
	case string:
		return x
	case int:
		return strconv.Itoa(x)
	case int64:
		return strconv.FormatInt(x, 10)
	case uint64:
		return strconv.FormatUint(x, 10)
	case float64:
		return strconv.FormatFloat(x, 'g', -1, 64)
	case bool:
		return strconv.FormatBool(x)
	case time.Duration:
		return x.String()
	case error:
		return x.Error()
	case nil:
		return "<nil>"
	default:
		return fmt.Sprint(v)
	}
}

// quote wraps values containing logfmt-breaking characters in Go quotes.
func quote(s string) string {
	if s == "" {
		return `""`
	}
	if strings.ContainsAny(s, " \t\n\"=") {
		return strconv.Quote(s)
	}
	return s
}
