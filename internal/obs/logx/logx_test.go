package logx

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func fixed(l *Logger) *Logger {
	l.now = func() time.Time { return time.Date(2026, 8, 8, 10, 1, 2, 345e6, time.UTC) }
	return l
}

func TestLogfmtRendering(t *testing.T) {
	var b strings.Builder
	l := fixed(New(&b, Info))
	l.Info("request", "trace", "ab12-7", "status", 200, "lat_ms", 4.25,
		"ok", true, "err", errors.New("boom boom"), "note", "has space")
	got := b.String()
	want := `ts=2026-08-08T10:01:02.345Z level=info msg=request trace=ab12-7 status=200 lat_ms=4.25 ok=true err="boom boom" note="has space"` + "\n"
	if got != want {
		t.Errorf("rendered:\n%q\nwant:\n%q", got, want)
	}
}

func TestLevelsFilter(t *testing.T) {
	var b strings.Builder
	l := New(&b, Warn)
	l.Debug("d")
	l.Info("i")
	l.Warn("w")
	l.Error("e")
	lines := strings.Count(b.String(), "\n")
	if lines != 2 {
		t.Errorf("Warn-level logger wrote %d lines, want 2:\n%s", lines, b.String())
	}
	if !l.Enabled(Error) || l.Enabled(Info) {
		t.Error("Enabled disagrees with the configured level")
	}
}

func TestParseLevel(t *testing.T) {
	for s, want := range map[string]Level{
		"debug": Debug, "info": Info, "": Info, "WARN": Warn, "warning": Warn, "error": Error,
	} {
		got, err := ParseLevel(s)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseLevel("verbose"); err == nil {
		t.Error("ParseLevel accepted an unknown level")
	}
}

func TestWithAndBadKey(t *testing.T) {
	var b strings.Builder
	l := fixed(New(&b, Info)).With("component", "router")
	l.Info("event", "dangling")
	got := b.String()
	if !strings.Contains(got, "component=router") {
		t.Errorf("With field missing: %q", got)
	}
	if !strings.Contains(got, "!badkey=dangling") {
		t.Errorf("odd trailing value not surfaced: %q", got)
	}
}

func TestNilLoggerSafe(t *testing.T) {
	var l *Logger
	l.Info("nothing", "k", "v") // must not panic
	l.Logf("fmt %d", 1)
	if l.With("a", "b") != nil {
		t.Error("nil.With should stay nil")
	}
	if l.Enabled(Error) {
		t.Error("nil logger reports enabled")
	}
}

func TestConcurrentNoInterleave(t *testing.T) {
	var mu sync.Mutex
	var lines []string
	w := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		lines = append(lines, string(p))
		mu.Unlock()
		return len(p), nil
	})
	l := New(w, Info)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				l.Info("e", "g", g, "i", i)
			}
		}(g)
	}
	wg.Wait()
	if len(lines) != 800 {
		t.Fatalf("%d writes, want 800 (one per event)", len(lines))
	}
	for _, line := range lines {
		if strings.Count(line, "\n") != 1 || !strings.HasSuffix(line, "\n") {
			t.Fatalf("event not written as one line: %q", line)
		}
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }
