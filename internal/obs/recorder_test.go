package obs

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func rec(id string, total time.Duration, start time.Time) TraceRecord {
	return TraceRecord{ID: id, Start: start, Status: 200, Total: total}
}

// TestRecorderRingEviction drives 3K records through a depth-K recorder: the
// recent ring must hold exactly the last K newest-first, and the slowest set
// the K largest totals regardless of arrival order.
func TestRecorderRingEviction(t *testing.T) {
	const k = 8
	r := NewRecorder(k)
	base := time.Now()
	// Totals cycle so the slowest records are scattered through the stream.
	n := 3 * k
	for i := 0; i < n; i++ {
		r.Record(rec(fmt.Sprintf("r%d", i), time.Duration(i%17+1)*time.Millisecond,
			base.Add(time.Duration(i)*time.Second)))
	}
	d := r.Snapshot()
	if d.Depth != k {
		t.Fatalf("depth %d, want %d", d.Depth, k)
	}
	if d.Total != uint64(n) {
		t.Fatalf("total %d, want %d", d.Total, n)
	}
	if len(d.Recent) != k {
		t.Fatalf("recent holds %d, want %d", len(d.Recent), k)
	}
	for i := range d.Recent {
		want := fmt.Sprintf("r%d", n-1-i)
		if d.Recent[i].ID != want {
			t.Errorf("recent[%d] = %s, want %s (newest first)", i, d.Recent[i].ID, want)
		}
	}
	if len(d.Slowest) != k {
		t.Fatalf("slowest holds %d, want %d", len(d.Slowest), k)
	}
	for i := 1; i < len(d.Slowest); i++ {
		if d.Slowest[i].Total > d.Slowest[i-1].Total {
			t.Errorf("slowest not descending at %d: %v after %v",
				i, d.Slowest[i].Total, d.Slowest[i-1].Total)
		}
	}
	// Totals are 1..17ms (i=0..16) then 1..7ms (i=17..23), so the K=8
	// slowest are 17ms down through 10ms.
	if got, want := d.Slowest[0].Total, 17*time.Millisecond; got != want {
		t.Errorf("slowest[0] = %v, want %v", got, want)
	}
	if got, want := d.Slowest[k-1].Total, 10*time.Millisecond; got != want {
		t.Errorf("slowest[%d] = %v, want %v", k-1, got, want)
	}
}

func TestRecorderNilSafe(t *testing.T) {
	var r *Recorder
	r.Record(rec("x", time.Millisecond, time.Now())) // must not panic
	if d := r.Snapshot(); d.Total != 0 || len(d.Recent) != 0 {
		t.Errorf("nil recorder snapshot not empty: %+v", d)
	}
}

// TestRecorderConcurrent hammers Record and Snapshot from many goroutines —
// meaningful under -race.
func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder(16)
	var wg sync.WaitGroup
	base := time.Now()
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Record(rec(fmt.Sprintf("g%d-%d", g, i),
					time.Duration(i%100)*time.Millisecond, base.Add(time.Duration(i))))
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			r.Snapshot()
		}
	}()
	wg.Wait()
	if d := r.Snapshot(); d.Total != 8*500 {
		t.Errorf("total %d, want %d", d.Total, 8*500)
	}
}

func TestMergeDumps(t *testing.T) {
	base := time.Now()
	a := NewRecorder(4)
	b := NewRecorder(4)
	for i := 0; i < 6; i++ {
		a.Record(rec(fmt.Sprintf("a%d", i), time.Duration(i+1)*time.Millisecond,
			base.Add(time.Duration(2*i)*time.Second)))
		b.Record(rec(fmt.Sprintf("b%d", i), time.Duration(i+10)*time.Millisecond,
			base.Add(time.Duration(2*i+1)*time.Second)))
	}
	m := MergeDumps(a.Snapshot(), b.Snapshot())
	if m.Depth != 4 {
		t.Fatalf("merged depth %d, want 4", m.Depth)
	}
	if m.Total != 12 {
		t.Fatalf("merged total %d, want 12", m.Total)
	}
	if len(m.Recent) != 4 || len(m.Slowest) != 4 {
		t.Fatalf("merged sets %d/%d, want 4/4", len(m.Recent), len(m.Slowest))
	}
	// b's start times interleave after a's, so the newest is b5, then a5...
	if m.Recent[0].ID != "b5" {
		t.Errorf("merged recent[0] = %s, want b5", m.Recent[0].ID)
	}
	// b's totals dominate: slowest are b5..b2 (15,14,13,12ms).
	for i, want := range []string{"b5", "b4", "b3", "b2"} {
		if m.Slowest[i].ID != want {
			t.Errorf("merged slowest[%d] = %s, want %s", i, m.Slowest[i].ID, want)
		}
	}
}

// BenchmarkRecord measures the flight recorder's steady-state hot path: a
// request that does NOT beat the slowest set (the common case once warm),
// paying one uncontended mutex and an atomic threshold read. Paired with
// BenchmarkObservePath this is the per-request observability overhead the
// serving tier adds.
func BenchmarkRecord(b *testing.B) {
	r := NewRecorder(64)
	base := time.Now()
	// Warm the slowest set with large totals so the benchmark records never
	// engage the slow path.
	for i := 0; i < 64; i++ {
		r.Record(rec("warm", time.Hour, base))
	}
	tr := rec("bench", time.Millisecond, base)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Record(tr)
	}
}
