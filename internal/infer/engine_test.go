package infer

import (
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/nn"
	"repro/internal/tensor"
)

func microNet(t testing.TB, seed int64) *nn.Sequential {
	t.Helper()
	net, err := nn.NewMicroAlexNet(nn.MicroConfig{
		InputSize: 16, Conv1Filters: 4, Conv1Kernel: 3, Conv2Filters: 4,
		Hidden: 8, Classes: 4, UseLRN: true,
	}, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func randImages(n, size int, seed int64) []*tensor.Tensor {
	rng := rand.New(rand.NewSource(seed))
	xs := make([]*tensor.Tensor, n)
	for i := range xs {
		x := tensor.MustNew(3, size, size)
		x.FillUniform(rng, 0, 1)
		xs[i] = x
	}
	return xs
}

// TestBatchEngineMatchesSerial: the pooled result must be exactly the serial
// result, in order, for every worker count. Run with -race this is the
// concurrent shared-weight inference gate of the refactor.
func TestBatchEngineMatchesSerial(t *testing.T) {
	net := microNet(t, 1)
	xs := randImages(17, 16, 2)

	// Serial reference through one context.
	ctx := nn.NewContext()
	want := make([]int, len(xs))
	for i, x := range xs {
		_, class, err := nn.PredictCtx(ctx, net, x)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = class
	}

	for _, workers := range []int{1, 2, 4, 8} {
		e, err := New(net, Config{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		// Two rounds through the same engine: the second reuses warmed
		// per-worker scratch buffers.
		for round := 0; round < 2; round++ {
			preds, err := e.Predict(xs)
			if err != nil {
				t.Fatal(err)
			}
			for i, p := range preds {
				if p.Class != want[i] {
					t.Fatalf("workers=%d round=%d: class[%d] = %d, want %d",
						workers, round, i, p.Class, want[i])
				}
				var sum float64
				for _, v := range p.Probs {
					sum += float64(v)
				}
				if sum < 0.999 || sum > 1.001 {
					t.Fatalf("workers=%d: probs[%d] sum %v", workers, i, sum)
				}
			}
		}
	}
}

func TestBatchEngineForward(t *testing.T) {
	net := microNet(t, 3)
	xs := randImages(5, 16, 4)
	e, err := New(net, Config{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	outs, err := e.Forward(xs)
	if err != nil {
		t.Fatal(err)
	}
	ctx := nn.NewContext()
	for i, x := range xs {
		want, err := net.Forward(ctx, x)
		if err != nil {
			t.Fatal(err)
		}
		if d, _ := outs[i].MaxAbsDiff(want); d > 1e-6 {
			t.Fatalf("forward[%d] diverges by %v", i, d)
		}
	}
}

func TestBatchEngineRun(t *testing.T) {
	e, err := New(nil, Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if e.Workers() != 4 {
		t.Fatalf("workers = %d", e.Workers())
	}
	var count atomic.Int64
	if err := e.Run(100, func(w *Worker, i int) error {
		if w.Ctx == nil {
			t.Error("worker without context")
		}
		count.Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if count.Load() != 100 {
		t.Fatalf("ran %d of 100 items", count.Load())
	}

	// Errors propagate and cancel the batch.
	boom := errors.New("boom")
	err = e.Run(1000, func(w *Worker, i int) error {
		if i == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}

	// Empty batch and validation.
	if err := e.Run(0, func(w *Worker, i int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(-1, nil); err == nil {
		t.Error("negative count should fail")
	}
	if err := e.Run(1, nil); err == nil {
		t.Error("nil fn should fail")
	}
	if _, err := New(nil, Config{Workers: -2}); err == nil {
		t.Error("negative workers should fail")
	}
	if _, err := e.Predict(nil); err == nil {
		t.Error("predict without network should fail")
	}
}

// TestBatchEngineConcurrentRunRejected: the documented one-batch-at-a-time
// contract is now enforced — a Run that overlaps an in-flight batch fails
// fast with ErrBusy instead of corrupting per-worker state. Under -race
// this also proves the guard itself is sound.
func TestBatchEngineConcurrentRunRejected(t *testing.T) {
	e, err := New(nil, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	inFirst := make(chan struct{})
	release := make(chan struct{})
	firstDone := make(chan error, 1)
	var once sync.Once
	go func() {
		firstDone <- e.Run(4, func(w *Worker, i int) error {
			once.Do(func() { close(inFirst) })
			<-release
			return nil
		})
	}()
	<-inFirst
	// Overlapping batch: cleanly rejected, not executed.
	if err := e.Run(1, func(w *Worker, i int) error {
		t.Error("overlapping batch must not execute")
		return nil
	}); !errors.Is(err, ErrBusy) {
		t.Fatalf("overlapping Run = %v, want ErrBusy", err)
	}
	close(release)
	if err := <-firstDone; err != nil {
		t.Fatal(err)
	}
	// The guard resets: the engine is usable again.
	if err := e.Run(1, func(w *Worker, i int) error { return nil }); err != nil {
		t.Fatalf("post-batch Run: %v", err)
	}
}

// TestBatchEngineRunExclusive: concurrent RunExclusive callers serialize —
// every batch executes, none observes ErrBusy, and no two batches overlap.
func TestBatchEngineRunExclusive(t *testing.T) {
	e, err := New(nil, Config{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	const callers, items = 8, 20
	var active, maxActive, total atomic.Int64
	var wg sync.WaitGroup
	wg.Add(callers)
	errs := make(chan error, callers)
	for c := 0; c < callers; c++ {
		go func() {
			defer wg.Done()
			errs <- e.RunExclusive(items, func(w *Worker, i int) error {
				if a := active.Add(1); a > maxActive.Load() {
					maxActive.Store(a) // approximate high-water mark; exact check below is batch overlap via Run guard
				}
				total.Add(1)
				active.Add(-1)
				return nil
			})
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatalf("RunExclusive: %v", err)
		}
	}
	if got := total.Load(); got != callers*items {
		t.Fatalf("executed %d of %d items", got, callers*items)
	}
	if maxActive.Load() > int64(e.Workers()) {
		t.Fatalf("observed %d concurrent items for %d workers — batches overlapped", maxActive.Load(), e.Workers())
	}
}

// TestRunSubCoversEveryIndex: sub-batch partitioning must cover [0, n)
// exactly once with contiguous chunks, for default and explicit sub-batch
// sizes, including ragged tails.
func TestRunSubCoversEveryIndex(t *testing.T) {
	for _, tc := range []struct{ workers, subBatch, n int }{
		{4, 0, 17}, // default: ceil(17/4) = 5 → chunks 5,5,5,2
		{4, 0, 4},
		{4, 0, 1},
		{3, 2, 11}, // explicit cap, ragged tail
		{2, 1, 5},  // per-sample degenerate
		{8, 16, 3}, // cap larger than batch
	} {
		e, err := New(nil, Config{Workers: tc.workers, SubBatch: tc.subBatch})
		if err != nil {
			t.Fatal(err)
		}
		var mu sync.Mutex
		seen := make([]int, tc.n)
		maxChunk := 0
		err = e.RunSub(tc.n, func(w *Worker, lo, hi int) error {
			if lo < 0 || hi <= lo || hi > tc.n {
				t.Errorf("%+v: bad chunk [%d,%d)", tc, lo, hi)
			}
			mu.Lock()
			if hi-lo > maxChunk {
				maxChunk = hi - lo
			}
			for i := lo; i < hi; i++ {
				seen[i]++
			}
			mu.Unlock()
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("%+v: index %d covered %d times", tc, i, c)
			}
		}
		want := tc.subBatch
		if want <= 0 {
			want = (tc.n + tc.workers - 1) / tc.workers
		}
		if want > tc.n {
			want = tc.n
		}
		if maxChunk > want {
			t.Fatalf("%+v: chunk of %d exceeds sub-batch cap %d", tc, maxChunk, want)
		}
	}
	// Empty batch is a no-op; negative sub-batch is rejected at New.
	e, err := New(nil, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.RunSub(0, func(w *Worker, lo, hi int) error {
		t.Error("empty batch must not call fn")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := New(nil, Config{Workers: 2, SubBatch: -1}); err == nil {
		t.Error("negative sub-batch should fail")
	}
}

// TestPredictBatchedMatchesPredict: the batch-native path (packed NCHW
// sub-batches, one GEMM per layer) must classify exactly like the
// per-sample fan-out, for every worker count and sub-batch size, including
// N=1 and batches ragged against the pool. Run with -race this is the
// golden-equivalence gate of the batched execution layer.
func TestPredictBatchedMatchesPredict(t *testing.T) {
	net := microNet(t, 5)
	for _, n := range []int{1, 2, 7, 17} {
		xs := randImages(n, 16, int64(n))
		ctx := nn.NewContext()
		type ref struct {
			class int
			probs []float32
		}
		want := make([]ref, n)
		for i, x := range xs {
			probs, class, err := nn.PredictCtx(ctx, net, x)
			if err != nil {
				t.Fatal(err)
			}
			want[i] = ref{class, probs}
		}
		for _, cfg := range []Config{
			{Workers: 1}, {Workers: 4}, {Workers: 4, SubBatch: 3}, {Workers: 2, SubBatch: 1},
		} {
			e, err := New(net, cfg)
			if err != nil {
				t.Fatal(err)
			}
			// Two rounds: the second reuses the warmed batch scratch.
			for round := 0; round < 2; round++ {
				preds, err := e.PredictBatched(xs)
				if err != nil {
					t.Fatal(err)
				}
				for i, p := range preds {
					if p.Class != want[i].class {
						t.Fatalf("n=%d cfg=%+v round=%d: class[%d] = %d, want %d",
							n, cfg, round, i, p.Class, want[i].class)
					}
					for c := range p.Probs {
						d := float64(p.Probs[c]) - float64(want[i].probs[c])
						if d > 1e-5 || d < -1e-5 {
							t.Fatalf("n=%d cfg=%+v: probs[%d][%d] = %v, want %v",
								n, cfg, i, c, p.Probs[c], want[i].probs[c])
						}
					}
				}
			}
		}
	}
}

// TestForwardBatchedMatchesForward: per-sample outputs recovered from the
// packed sub-batches equal the per-sample fan-out outputs.
func TestForwardBatchedMatchesForward(t *testing.T) {
	net := microNet(t, 6)
	xs := randImages(9, 16, 7)
	e, err := New(net, Config{Workers: 3, SubBatch: 4})
	if err != nil {
		t.Fatal(err)
	}
	outs, err := e.ForwardBatched(xs)
	if err != nil {
		t.Fatal(err)
	}
	ctx := nn.NewContext()
	for i, x := range xs {
		want, err := net.Forward(ctx, x)
		if err != nil {
			t.Fatal(err)
		}
		if d, _ := outs[i].MaxAbsDiff(want); d > 1e-5 {
			t.Fatalf("batched forward[%d] diverges by %v", i, d)
		}
	}
	if _, err := (&BatchEngine{workers: e.workers}).ForwardBatched(xs); err == nil {
		t.Error("batched forward without network should fail")
	}
	if _, err := (&BatchEngine{workers: e.workers}).PredictBatched(xs); err == nil {
		t.Error("batched predict without network should fail")
	}
}

// TestForwardBatchedMixedShapes: inputs that cannot pack into one NCHW
// tensor fall back to the per-sample path instead of erroring — matching
// what Forward/Predict always accepted.
func TestForwardBatchedMixedShapes(t *testing.T) {
	// A conv-only net tolerates any input size ≥ the kernel.
	conv, err := nn.NewConv2D("c", 3, 2, 3, 1, 0, rand.New(rand.NewSource(8)))
	if err != nil {
		t.Fatal(err)
	}
	net, err := nn.NewSequential("convnet", conv, nn.NewFlatten("f"))
	if err != nil {
		t.Fatal(err)
	}
	xs := append(randImages(3, 16, 9), randImages(2, 12, 10)...)
	e, err := New(net, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	outs, err := e.ForwardBatched(xs)
	if err != nil {
		t.Fatalf("mixed-shape batched forward: %v", err)
	}
	ctx := nn.NewContext()
	for i, x := range xs {
		want, err := net.Forward(ctx, x)
		if err != nil {
			t.Fatal(err)
		}
		if d, _ := outs[i].MaxAbsDiff(want); d > 1e-6 {
			t.Fatalf("mixed-shape forward[%d] diverges by %v", i, d)
		}
	}
}

func TestBatchEngineDefaultWorkers(t *testing.T) {
	e, err := New(nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if e.Workers() < 1 {
		t.Fatalf("default workers = %d", e.Workers())
	}
}
