package infer

import (
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/nn"
	"repro/internal/tensor"
)

func microNet(t testing.TB, seed int64) *nn.Sequential {
	t.Helper()
	net, err := nn.NewMicroAlexNet(nn.MicroConfig{
		InputSize: 16, Conv1Filters: 4, Conv1Kernel: 3, Conv2Filters: 4,
		Hidden: 8, Classes: 4, UseLRN: true,
	}, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func randImages(n, size int, seed int64) []*tensor.Tensor {
	rng := rand.New(rand.NewSource(seed))
	xs := make([]*tensor.Tensor, n)
	for i := range xs {
		x := tensor.MustNew(3, size, size)
		x.FillUniform(rng, 0, 1)
		xs[i] = x
	}
	return xs
}

// TestBatchEngineMatchesSerial: the pooled result must be exactly the serial
// result, in order, for every worker count. Run with -race this is the
// concurrent shared-weight inference gate of the refactor.
func TestBatchEngineMatchesSerial(t *testing.T) {
	net := microNet(t, 1)
	xs := randImages(17, 16, 2)

	// Serial reference through one context.
	ctx := nn.NewContext()
	want := make([]int, len(xs))
	for i, x := range xs {
		_, class, err := nn.PredictCtx(ctx, net, x)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = class
	}

	for _, workers := range []int{1, 2, 4, 8} {
		e, err := New(net, Config{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		// Two rounds through the same engine: the second reuses warmed
		// per-worker scratch buffers.
		for round := 0; round < 2; round++ {
			preds, err := e.Predict(xs)
			if err != nil {
				t.Fatal(err)
			}
			for i, p := range preds {
				if p.Class != want[i] {
					t.Fatalf("workers=%d round=%d: class[%d] = %d, want %d",
						workers, round, i, p.Class, want[i])
				}
				var sum float64
				for _, v := range p.Probs {
					sum += float64(v)
				}
				if sum < 0.999 || sum > 1.001 {
					t.Fatalf("workers=%d: probs[%d] sum %v", workers, i, sum)
				}
			}
		}
	}
}

func TestBatchEngineForward(t *testing.T) {
	net := microNet(t, 3)
	xs := randImages(5, 16, 4)
	e, err := New(net, Config{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	outs, err := e.Forward(xs)
	if err != nil {
		t.Fatal(err)
	}
	ctx := nn.NewContext()
	for i, x := range xs {
		want, err := net.Forward(ctx, x)
		if err != nil {
			t.Fatal(err)
		}
		if d, _ := outs[i].MaxAbsDiff(want); d > 1e-6 {
			t.Fatalf("forward[%d] diverges by %v", i, d)
		}
	}
}

func TestBatchEngineRun(t *testing.T) {
	e, err := New(nil, Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if e.Workers() != 4 {
		t.Fatalf("workers = %d", e.Workers())
	}
	var count atomic.Int64
	if err := e.Run(100, func(w *Worker, i int) error {
		if w.Ctx == nil {
			t.Error("worker without context")
		}
		count.Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if count.Load() != 100 {
		t.Fatalf("ran %d of 100 items", count.Load())
	}

	// Errors propagate and cancel the batch.
	boom := errors.New("boom")
	err = e.Run(1000, func(w *Worker, i int) error {
		if i == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}

	// Empty batch and validation.
	if err := e.Run(0, func(w *Worker, i int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(-1, nil); err == nil {
		t.Error("negative count should fail")
	}
	if err := e.Run(1, nil); err == nil {
		t.Error("nil fn should fail")
	}
	if _, err := New(nil, Config{Workers: -2}); err == nil {
		t.Error("negative workers should fail")
	}
	if _, err := e.Predict(nil); err == nil {
		t.Error("predict without network should fail")
	}
}

// TestBatchEngineConcurrentRunRejected: the documented one-batch-at-a-time
// contract is now enforced — a Run that overlaps an in-flight batch fails
// fast with ErrBusy instead of corrupting per-worker state. Under -race
// this also proves the guard itself is sound.
func TestBatchEngineConcurrentRunRejected(t *testing.T) {
	e, err := New(nil, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	inFirst := make(chan struct{})
	release := make(chan struct{})
	firstDone := make(chan error, 1)
	var once sync.Once
	go func() {
		firstDone <- e.Run(4, func(w *Worker, i int) error {
			once.Do(func() { close(inFirst) })
			<-release
			return nil
		})
	}()
	<-inFirst
	// Overlapping batch: cleanly rejected, not executed.
	if err := e.Run(1, func(w *Worker, i int) error {
		t.Error("overlapping batch must not execute")
		return nil
	}); !errors.Is(err, ErrBusy) {
		t.Fatalf("overlapping Run = %v, want ErrBusy", err)
	}
	close(release)
	if err := <-firstDone; err != nil {
		t.Fatal(err)
	}
	// The guard resets: the engine is usable again.
	if err := e.Run(1, func(w *Worker, i int) error { return nil }); err != nil {
		t.Fatalf("post-batch Run: %v", err)
	}
}

// TestBatchEngineRunExclusive: concurrent RunExclusive callers serialize —
// every batch executes, none observes ErrBusy, and no two batches overlap.
func TestBatchEngineRunExclusive(t *testing.T) {
	e, err := New(nil, Config{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	const callers, items = 8, 20
	var active, maxActive, total atomic.Int64
	var wg sync.WaitGroup
	wg.Add(callers)
	errs := make(chan error, callers)
	for c := 0; c < callers; c++ {
		go func() {
			defer wg.Done()
			errs <- e.RunExclusive(items, func(w *Worker, i int) error {
				if a := active.Add(1); a > maxActive.Load() {
					maxActive.Store(a) // approximate high-water mark; exact check below is batch overlap via Run guard
				}
				total.Add(1)
				active.Add(-1)
				return nil
			})
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatalf("RunExclusive: %v", err)
		}
	}
	if got := total.Load(); got != callers*items {
		t.Fatalf("executed %d of %d items", got, callers*items)
	}
	if maxActive.Load() > int64(e.Workers()) {
		t.Fatalf("observed %d concurrent items for %d workers — batches overlapped", maxActive.Load(), e.Workers())
	}
}

func TestBatchEngineDefaultWorkers(t *testing.T) {
	e, err := New(nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if e.Workers() < 1 {
		t.Fatalf("default workers = %d", e.Workers())
	}
}
