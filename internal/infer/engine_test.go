package infer

import (
	"errors"
	"math/rand"
	"sync/atomic"
	"testing"

	"repro/internal/nn"
	"repro/internal/tensor"
)

func microNet(t testing.TB, seed int64) *nn.Sequential {
	t.Helper()
	net, err := nn.NewMicroAlexNet(nn.MicroConfig{
		InputSize: 16, Conv1Filters: 4, Conv1Kernel: 3, Conv2Filters: 4,
		Hidden: 8, Classes: 4, UseLRN: true,
	}, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func randImages(n, size int, seed int64) []*tensor.Tensor {
	rng := rand.New(rand.NewSource(seed))
	xs := make([]*tensor.Tensor, n)
	for i := range xs {
		x := tensor.MustNew(3, size, size)
		x.FillUniform(rng, 0, 1)
		xs[i] = x
	}
	return xs
}

// TestBatchEngineMatchesSerial: the pooled result must be exactly the serial
// result, in order, for every worker count. Run with -race this is the
// concurrent shared-weight inference gate of the refactor.
func TestBatchEngineMatchesSerial(t *testing.T) {
	net := microNet(t, 1)
	xs := randImages(17, 16, 2)

	// Serial reference through one context.
	ctx := nn.NewContext()
	want := make([]int, len(xs))
	for i, x := range xs {
		_, class, err := nn.PredictCtx(ctx, net, x)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = class
	}

	for _, workers := range []int{1, 2, 4, 8} {
		e, err := New(net, Config{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		// Two rounds through the same engine: the second reuses warmed
		// per-worker scratch buffers.
		for round := 0; round < 2; round++ {
			preds, err := e.Predict(xs)
			if err != nil {
				t.Fatal(err)
			}
			for i, p := range preds {
				if p.Class != want[i] {
					t.Fatalf("workers=%d round=%d: class[%d] = %d, want %d",
						workers, round, i, p.Class, want[i])
				}
				var sum float64
				for _, v := range p.Probs {
					sum += float64(v)
				}
				if sum < 0.999 || sum > 1.001 {
					t.Fatalf("workers=%d: probs[%d] sum %v", workers, i, sum)
				}
			}
		}
	}
}

func TestBatchEngineForward(t *testing.T) {
	net := microNet(t, 3)
	xs := randImages(5, 16, 4)
	e, err := New(net, Config{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	outs, err := e.Forward(xs)
	if err != nil {
		t.Fatal(err)
	}
	ctx := nn.NewContext()
	for i, x := range xs {
		want, err := net.Forward(ctx, x)
		if err != nil {
			t.Fatal(err)
		}
		if d, _ := outs[i].MaxAbsDiff(want); d > 1e-6 {
			t.Fatalf("forward[%d] diverges by %v", i, d)
		}
	}
}

func TestBatchEngineRun(t *testing.T) {
	e, err := New(nil, Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if e.Workers() != 4 {
		t.Fatalf("workers = %d", e.Workers())
	}
	var count atomic.Int64
	if err := e.Run(100, func(w *Worker, i int) error {
		if w.Ctx == nil {
			t.Error("worker without context")
		}
		count.Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if count.Load() != 100 {
		t.Fatalf("ran %d of 100 items", count.Load())
	}

	// Errors propagate and cancel the batch.
	boom := errors.New("boom")
	err = e.Run(1000, func(w *Worker, i int) error {
		if i == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}

	// Empty batch and validation.
	if err := e.Run(0, func(w *Worker, i int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(-1, nil); err == nil {
		t.Error("negative count should fail")
	}
	if err := e.Run(1, nil); err == nil {
		t.Error("nil fn should fail")
	}
	if _, err := New(nil, Config{Workers: -2}); err == nil {
		t.Error("negative workers should fail")
	}
	if _, err := e.Predict(nil); err == nil {
		t.Error("predict without network should fail")
	}
}

func TestBatchEngineDefaultWorkers(t *testing.T) {
	e, err := New(nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if e.Workers() < 1 {
		t.Fatalf("default workers = %d", e.Workers())
	}
}
