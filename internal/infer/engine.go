// Package infer is the batched, concurrency-safe execution layer between
// the CNN framework (internal/nn) and its callers (internal/core,
// internal/fault campaigns, the CLIs). It owns the worker-pool idiom the
// layer refactor enables: layers hold only immutable parameters, so a single
// network can serve as many concurrent passes as there are workers, each
// worker owning one nn.Context (activation caches + im2col scratch) and,
// when configured, one reliable.Engine for the reliably executed portion.
//
// Throughput scales with workers until the memory bandwidth of the GEMM
// kernels saturates; the default (GOMAXPROCS) is the right choice for
// dedicated inference. Batch sizes only need to be large enough to keep the
// pool busy — a few times the worker count; there is no algorithmic batch
// effect beyond scratch-buffer reuse inside each worker.
//
// # Concurrency contract
//
// A BatchEngine runs ONE batch at a time: an overlapping Run (or anything
// built on it — Forward, Predict) fails fast with ErrBusy, because the
// per-worker contexts it would reuse are not re-entrant. Callers that issue
// batches from several goroutines serialize through RunExclusive, the
// mutex-guarded entry point (core.BatchClassifier does). Within a batch,
// work items are claimed lock-free through internal/pool work stealing;
// each worker touches only its own nn.Context and reliable.Engine, so no
// state is shared between workers except the immutable network weights.
package infer

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/nn"
	"repro/internal/pool"
	"repro/internal/reliable"
	"repro/internal/tensor"
)

// ErrBusy is returned by Run (and everything built on it: Forward, Predict)
// when another batch is already in flight on the same BatchEngine. Callers
// that want to wait instead of fail should use RunExclusive.
var ErrBusy = errors.New("infer: engine already running a batch")

// Worker is the per-goroutine execution state handed to Run callbacks.
type Worker struct {
	// ID is the worker index in [0, Workers).
	ID int
	// Ctx is the worker's private forward/backward context.
	Ctx *nn.Context
	// Engine is the worker's reliable-execution engine (nil unless the
	// BatchEngine was built with an EngineFactory).
	Engine *reliable.Engine
}

// Config parameterises a BatchEngine.
type Config struct {
	// Workers is the pool size; 0 defaults to runtime.GOMAXPROCS(0).
	Workers int
	// EngineFactory, when non-nil, builds one reliable.Engine per worker
	// (hybrid classification and fault campaigns need one; plain CNN
	// prediction does not).
	EngineFactory func() (*reliable.Engine, error)
}

// BatchEngine fans work items out across a fixed pool of workers. The
// network (if any) is shared; every mutable artefact is per-worker. A
// BatchEngine is safe for sequential reuse across many batches — contexts
// and their scratch buffers persist, which is where the allocation win of
// batching lives — but a single BatchEngine cannot run two batches
// concurrently: an in-flight guard makes an overlapping Run fail fast with
// ErrBusy, and RunExclusive is the serialized entry point for callers that
// issue batches from multiple goroutines.
type BatchEngine struct {
	net     *nn.Sequential
	workers []*Worker

	// inflight enforces the one-batch-at-a-time contract; mu serializes
	// RunExclusive callers in front of it.
	inflight atomic.Bool
	mu       sync.Mutex
}

// New builds a pool over net (which may be nil for engines used only via
// Run with closures that carry their own workload).
func New(net *nn.Sequential, cfg Config) (*BatchEngine, error) {
	n := cfg.Workers
	if n == 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n < 1 {
		return nil, fmt.Errorf("infer: worker count %d must be >= 1", cfg.Workers)
	}
	e := &BatchEngine{net: net, workers: make([]*Worker, n)}
	for i := range e.workers {
		w := &Worker{ID: i, Ctx: nn.NewContext()}
		if cfg.EngineFactory != nil {
			eng, err := cfg.EngineFactory()
			if err != nil {
				return nil, fmt.Errorf("infer: worker %d engine: %w", i, err)
			}
			w.Engine = eng
		}
		e.workers[i] = w
	}
	return e, nil
}

// Workers returns the pool size.
func (e *BatchEngine) Workers() int { return len(e.workers) }

// Net returns the shared network (possibly nil).
func (e *BatchEngine) Net() *nn.Sequential { return e.net }

// Run executes fn(worker, i) for every i in [0, n), work-stealing across
// the pool: each worker pulls the next unclaimed index, so uneven item
// costs (retry storms in fault campaigns, early bucket trips) do not
// stall the batch. The first error cancels remaining work and is returned.
func (e *BatchEngine) Run(n int, fn func(w *Worker, i int) error) error {
	if fn == nil {
		return fmt.Errorf("infer: run needs a work function")
	}
	if !e.inflight.CompareAndSwap(false, true) {
		return ErrBusy
	}
	defer e.inflight.Store(false)
	err := pool.Run(n, len(e.workers), func(worker, i int) error {
		return fn(e.workers[worker], i)
	})
	if err != nil {
		return fmt.Errorf("infer: %w", err)
	}
	return nil
}

// RunExclusive is Run behind a lock: overlapping calls from different
// goroutines queue up and execute one batch at a time instead of failing
// with ErrBusy. This is the entry point for serving layers that flush
// batches from concurrent paths onto one shared engine.
func (e *BatchEngine) RunExclusive(n int, fn func(w *Worker, i int) error) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.Run(n, fn)
}

// Stats sums the reliable-execution work counters across all workers —
// the campaign-level aggregate. Zero when no EngineFactory was configured.
func (e *BatchEngine) Stats() reliable.Stats {
	var s reliable.Stats
	for _, w := range e.workers {
		if w.Engine != nil {
			s.Add(w.Engine.Stats())
		}
	}
	return s
}

// Prediction is one classification result from Predict.
type Prediction struct {
	Class int
	Probs []float32
}

// Forward runs the shared network over every input and returns the outputs
// in input order.
func (e *BatchEngine) Forward(xs []*tensor.Tensor) ([]*tensor.Tensor, error) {
	if e.net == nil {
		return nil, fmt.Errorf("infer: engine has no network")
	}
	outs := make([]*tensor.Tensor, len(xs))
	err := e.Run(len(xs), func(w *Worker, i int) error {
		out, err := e.net.Forward(w.Ctx, xs[i])
		if err != nil {
			return err
		}
		outs[i] = out
		return nil
	})
	if err != nil {
		return nil, err
	}
	return outs, nil
}

// Predict classifies every input through the shared network and returns
// softmax probabilities and argmax classes in input order.
func (e *BatchEngine) Predict(xs []*tensor.Tensor) ([]Prediction, error) {
	if e.net == nil {
		return nil, fmt.Errorf("infer: engine has no network")
	}
	preds := make([]Prediction, len(xs))
	err := e.Run(len(xs), func(w *Worker, i int) error {
		probs, class, err := nn.PredictCtx(w.Ctx, e.net, xs[i])
		if err != nil {
			return err
		}
		preds[i] = Prediction{Class: class, Probs: probs}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return preds, nil
}
