// Package infer is the batched, concurrency-safe execution layer between
// the CNN framework (internal/nn) and its callers (internal/core,
// internal/fault campaigns, the CLIs). It owns the worker-pool idiom the
// layer refactor enables: layers hold only immutable parameters, so a single
// network can serve as many concurrent passes as there are workers, each
// worker owning one nn.Context (activation caches + batch-sized im2col/GEMM
// scratch) and, when configured, one reliable.Engine for the reliably
// executed portion.
//
// Execution is sub-batch native: a batch of N images is split into
// contiguous NCHW sub-batches (Config.SubBatch images each, default
// ⌈N/workers⌉) and each worker drives its sub-batches through
// nn.Sequential.ForwardBatch — ONE blocked GEMM per layer per sub-batch
// instead of one per image, so convolution and dense layers stream their
// weights once per sub-batch. This is a real algorithmic batch effect:
// throughput rises with batch size (weight-traffic amortisation) on top of
// rising with workers (parallelism), until the GEMM memory bandwidth
// saturates. Sub-batches are claimed through internal/pool work stealing,
// so ragged tails (N not divisible by workers×SubBatch) still balance.
//
// # Concurrency contract
//
// A BatchEngine runs ONE batch at a time: an overlapping Run (or anything
// built on it — Forward, Predict, RunSub, PredictBatched) fails fast with
// ErrBusy, because the per-worker contexts it would reuse are not
// re-entrant. Callers that issue batches from several goroutines serialize
// through RunExclusive/RunSubExclusive, the mutex-guarded entry points
// (core.BatchClassifier does). Within a batch, work items are claimed
// lock-free through internal/pool work stealing; each worker touches only
// its own nn.Context and reliable.Engine, so no state is shared between
// workers except the immutable network weights.
package infer

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/nn"
	"repro/internal/pool"
	"repro/internal/reliable"
	"repro/internal/tensor"
)

// ErrBusy is returned by Run (and everything built on it: Forward, Predict)
// when another batch is already in flight on the same BatchEngine. Callers
// that want to wait instead of fail should use RunExclusive.
var ErrBusy = errors.New("infer: engine already running a batch")

// Worker is the per-goroutine execution state handed to Run callbacks.
type Worker struct {
	// ID is the worker index in [0, Workers).
	ID int
	// Ctx is the worker's private forward/backward context.
	Ctx *nn.Context
	// Engine is the worker's reliable-execution engine (nil unless the
	// BatchEngine was built with an EngineFactory).
	Engine *reliable.Engine
}

// Config parameterises a BatchEngine.
type Config struct {
	// Workers is the pool size; 0 defaults to runtime.GOMAXPROCS(0).
	Workers int
	// SubBatch caps how many images a worker packs into one NCHW sub-batch
	// (one GEMM per layer per sub-batch). 0 defaults to ⌈batch/workers⌉ —
	// the whole batch in one GEMM sweep per worker. Smaller values trade
	// GEMM size for steal granularity (better balance when per-image cost
	// varies); 1 degenerates to per-sample execution.
	SubBatch int
	// EngineFactory, when non-nil, builds one reliable.Engine per worker
	// (hybrid classification and fault campaigns need one; plain CNN
	// prediction does not).
	EngineFactory func() (*reliable.Engine, error)
}

// BatchEngine fans work items out across a fixed pool of workers. The
// network (if any) is shared; every mutable artefact is per-worker. A
// BatchEngine is safe for sequential reuse across many batches — contexts
// and their scratch buffers persist, which is where the allocation win of
// batching lives — but a single BatchEngine cannot run two batches
// concurrently: an in-flight guard makes an overlapping Run fail fast with
// ErrBusy, and RunExclusive is the serialized entry point for callers that
// issue batches from multiple goroutines.
type BatchEngine struct {
	net      *nn.Sequential
	workers  []*Worker
	subBatch int

	// inflight enforces the one-batch-at-a-time contract; mu serializes
	// RunExclusive callers in front of it.
	inflight atomic.Bool
	mu       sync.Mutex
}

// New builds a pool over net (which may be nil for engines used only via
// Run with closures that carry their own workload).
func New(net *nn.Sequential, cfg Config) (*BatchEngine, error) {
	n := cfg.Workers
	if n == 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n < 1 {
		return nil, fmt.Errorf("infer: worker count %d must be >= 1", cfg.Workers)
	}
	if cfg.SubBatch < 0 {
		return nil, fmt.Errorf("infer: sub-batch size %d must be >= 0", cfg.SubBatch)
	}
	e := &BatchEngine{net: net, workers: make([]*Worker, n), subBatch: cfg.SubBatch}
	for i := range e.workers {
		w := &Worker{ID: i, Ctx: nn.NewContext()}
		if cfg.EngineFactory != nil {
			eng, err := cfg.EngineFactory()
			if err != nil {
				return nil, fmt.Errorf("infer: worker %d engine: %w", i, err)
			}
			w.Engine = eng
		}
		e.workers[i] = w
	}
	return e, nil
}

// Workers returns the pool size.
func (e *BatchEngine) Workers() int { return len(e.workers) }

// Net returns the shared network (possibly nil).
func (e *BatchEngine) Net() *nn.Sequential { return e.net }

// Run executes fn(worker, i) for every i in [0, n), work-stealing across
// the pool: each worker pulls the next unclaimed index, so uneven item
// costs (retry storms in fault campaigns, early bucket trips) do not
// stall the batch. The first error cancels remaining work and is returned.
func (e *BatchEngine) Run(n int, fn func(w *Worker, i int) error) error {
	if fn == nil {
		return fmt.Errorf("infer: run needs a work function")
	}
	if !e.inflight.CompareAndSwap(false, true) {
		return ErrBusy
	}
	defer e.inflight.Store(false)
	err := pool.Run(n, len(e.workers), func(worker, i int) error {
		return fn(e.workers[worker], i)
	})
	if err != nil {
		return fmt.Errorf("infer: %w", err)
	}
	return nil
}

// RunExclusive is Run behind a lock: overlapping calls from different
// goroutines queue up and execute one batch at a time instead of failing
// with ErrBusy. This is the entry point for serving layers that flush
// batches from concurrent paths onto one shared engine.
func (e *BatchEngine) RunExclusive(n int, fn func(w *Worker, i int) error) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.Run(n, fn)
}

// SubBatch returns the configured sub-batch cap (0 = ⌈batch/workers⌉).
func (e *BatchEngine) SubBatch() int { return e.subBatch }

// subBatchFor resolves the effective sub-batch size for an n-item batch.
func (e *BatchEngine) subBatchFor(n int) int {
	s := e.subBatch
	if s <= 0 {
		s = (n + len(e.workers) - 1) / len(e.workers)
	}
	if s < 1 {
		s = 1
	}
	return s
}

// RunSub executes fn(worker, lo, hi) over contiguous sub-batches [lo, hi) of
// an n-item batch — the sub-batch counterpart of Run. Sub-batch size is
// Config.SubBatch (default ⌈n/workers⌉); sub-batches are claimed through the
// same work stealing as Run, so a ragged tail (or a worker stuck on a slow
// sub-batch) rebalances instead of stalling the batch. Results must be
// written to disjoint [lo, hi) slices, which keeps the callback race-free.
func (e *BatchEngine) RunSub(n int, fn func(w *Worker, lo, hi int) error) error {
	if fn == nil {
		return fmt.Errorf("infer: run needs a work function")
	}
	if n <= 0 {
		return nil
	}
	size := e.subBatchFor(n)
	chunks := (n + size - 1) / size
	return e.Run(chunks, func(w *Worker, ci int) error {
		lo := ci * size
		hi := lo + size
		if hi > n {
			hi = n
		}
		return fn(w, lo, hi)
	})
}

// RunSubExclusive is RunSub behind the RunExclusive lock: overlapping
// batches from different goroutines queue instead of failing with ErrBusy.
func (e *BatchEngine) RunSubExclusive(n int, fn func(w *Worker, lo, hi int) error) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.RunSub(n, fn)
}

// Stats sums the reliable-execution work counters across all workers —
// the campaign-level aggregate. Zero when no EngineFactory was configured.
func (e *BatchEngine) Stats() reliable.Stats {
	var s reliable.Stats
	for _, w := range e.workers {
		if w.Engine != nil {
			s.Add(w.Engine.Stats())
		}
	}
	return s
}

// Prediction is one classification result from Predict.
type Prediction struct {
	Class int
	Probs []float32
}

// Forward runs the shared network over every input and returns the outputs
// in input order.
func (e *BatchEngine) Forward(xs []*tensor.Tensor) ([]*tensor.Tensor, error) {
	if e.net == nil {
		return nil, fmt.Errorf("infer: engine has no network")
	}
	outs := make([]*tensor.Tensor, len(xs))
	err := e.Run(len(xs), func(w *Worker, i int) error {
		out, err := e.net.Forward(w.Ctx, xs[i])
		if err != nil {
			return err
		}
		outs[i] = out
		return nil
	})
	if err != nil {
		return nil, err
	}
	return outs, nil
}

// Predict classifies every input through the shared network one sample at a
// time and returns softmax probabilities and argmax classes in input order.
// It is the per-sample fan-out path, kept as the reference the batched path
// is benchmarked and equivalence-tested against; serving callers should
// prefer PredictBatched.
func (e *BatchEngine) Predict(xs []*tensor.Tensor) ([]Prediction, error) {
	if e.net == nil {
		return nil, fmt.Errorf("infer: engine has no network")
	}
	preds := make([]Prediction, len(xs))
	err := e.Run(len(xs), func(w *Worker, i int) error {
		probs, class, err := nn.PredictCtx(w.Ctx, e.net, xs[i])
		if err != nil {
			return err
		}
		preds[i] = Prediction{Class: class, Probs: probs}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return preds, nil
}

// uniformShape reports whether every tensor shares xs[0]'s shape (vacuously
// true for empty or single-element input).
func uniformShape(xs []*tensor.Tensor) bool {
	for _, x := range xs[1:] {
		if !xs[0].SameShape(x) {
			return false
		}
	}
	return true
}

// ForwardBatched runs the shared network over every input through the
// batch-native path — each worker packs its sub-batch into one NCHW tensor
// and issues one ForwardBatch (one GEMM per layer) — and returns per-sample
// outputs in input order. Mixed-shape inputs cannot pack and fall back to
// the per-sample Forward path (identical outputs, no batch effect). Unlike
// Forward, which allocates an independent tensor per sample, the outputs of
// one sub-batch are views over a single shared backing array: writes stay
// disjoint per sample, but retaining one output retains the whole
// sub-batch's output memory (Clone a sample to keep it long-term).
func (e *BatchEngine) ForwardBatched(xs []*tensor.Tensor) ([]*tensor.Tensor, error) {
	if e.net == nil {
		return nil, fmt.Errorf("infer: engine has no network")
	}
	if len(xs) > 1 && !uniformShape(xs) {
		return e.Forward(xs)
	}
	outs := make([]*tensor.Tensor, len(xs))
	err := e.RunSub(len(xs), func(w *Worker, lo, hi int) error {
		bout, err := e.forwardSub(w, xs[lo:hi])
		if err != nil {
			return err
		}
		for i := lo; i < hi; i++ {
			out, err := bout.Sample(i - lo)
			if err != nil {
				return err
			}
			outs[i] = out
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return outs, nil
}

// PredictBatched is Predict through the batch-native path: sub-batches are
// packed into NCHW tensors and classified with one GEMM per layer per
// sub-batch, then each logits row is softmaxed individually. Results are
// identical to Predict for any worker count and sub-batch size; mixed-shape
// inputs cannot pack and fall back to the per-sample Predict path.
func (e *BatchEngine) PredictBatched(xs []*tensor.Tensor) ([]Prediction, error) {
	if e.net == nil {
		return nil, fmt.Errorf("infer: engine has no network")
	}
	if len(xs) > 1 && !uniformShape(xs) {
		return e.Predict(xs)
	}
	preds := make([]Prediction, len(xs))
	err := e.RunSub(len(xs), func(w *Worker, lo, hi int) error {
		bout, err := e.forwardSub(w, xs[lo:hi])
		if err != nil {
			return err
		}
		if bout.Rank() != 2 {
			return fmt.Errorf("infer: batched predict wants (N,classes) logits, got %v", bout.Shape())
		}
		for i := lo; i < hi; i++ {
			logits, err := bout.Sample(i - lo)
			if err != nil {
				return err
			}
			probs, class, err := nn.SoftmaxArgmax(logits)
			if err != nil {
				return err
			}
			preds[i] = Prediction{Class: class, Probs: probs}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return preds, nil
}

// forwardSub packs one sub-batch and runs the batched forward through the
// worker's context. A single-image sub-batch skips the pack copy via a
// reshape view.
func (e *BatchEngine) forwardSub(w *Worker, chunk []*tensor.Tensor) (*tensor.Tensor, error) {
	var batch *tensor.Tensor
	var err error
	if len(chunk) == 1 {
		batch, err = chunk[0].Reshape(append([]int{1}, chunk[0].Shape()...)...)
	} else {
		batch, err = tensor.Stack(chunk)
	}
	if err != nil {
		return nil, err
	}
	return e.net.ForwardBatch(w.Ctx, batch)
}
