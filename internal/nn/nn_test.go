package nn

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// dotAll computes Σ out·G, the scalar loss used by the numerical gradient
// checks.
func dotAll(t *testing.T, out, g *tensor.Tensor) float64 {
	t.Helper()
	d, err := out.Dot(g)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// gradCheck verifies a layer's Backward against central differences, for
// both the input gradient and every parameter gradient. Checks a sample of
// indices to stay fast.
func gradCheck(t *testing.T, layer Layer, x *tensor.Tensor, tol float64) {
	ctx := NewContext()
	t.Helper()
	rng := rand.New(rand.NewSource(99))
	out, err := layer.Forward(ctx, x)
	if err != nil {
		t.Fatal(err)
	}
	upstream := tensor.MustNew(out.Shape()...)
	upstream.FillUniform(rng, -1, 1)

	for _, p := range layer.Params() {
		p.ZeroGrad()
	}
	dx, err := layer.Backward(ctx, upstream)
	if err != nil {
		t.Fatal(err)
	}

	const h = 1e-2
	checkTensor := func(name string, value, analytic *tensor.Tensor) {
		n := value.Len()
		step := n/17 + 1 // sample ~17 indices
		for i := 0; i < n; i += step {
			orig := value.Data()[i]
			value.Data()[i] = orig + h
			o1, err := layer.Forward(ctx, x)
			if err != nil {
				t.Fatal(err)
			}
			f1 := dotAll(t, o1, upstream)
			value.Data()[i] = orig - h
			o2, err := layer.Forward(ctx, x)
			if err != nil {
				t.Fatal(err)
			}
			f2 := dotAll(t, o2, upstream)
			value.Data()[i] = orig

			num := (f1 - f2) / (2 * h)
			ana := float64(analytic.Data()[i])
			scale := math.Max(1, math.Max(math.Abs(num), math.Abs(ana)))
			if math.Abs(num-ana)/scale > tol {
				t.Errorf("%s grad[%d]: analytic %v vs numeric %v", name, i, ana, num)
			}
		}
	}
	checkTensor("input", x, dx)
	// Restore the forward cache, then check parameters.
	if _, err := layer.Forward(ctx, x); err != nil {
		t.Fatal(err)
	}
	for _, p := range layer.Params() {
		checkTensor(p.Name, p.Value, p.Grad)
	}
}

func TestConvForwardIdentityKernel(t *testing.T) {
	ctx := NewContext()
	rng := rand.New(rand.NewSource(1))
	c, err := NewConv2D("c", 1, 1, 1, 1, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	c.Weight().Fill(1) // 1×1 kernel of 1 = identity
	c.Bias().Fill(0)
	x := tensor.MustFromSlice([]float32{1, 2, 3, 4}, 1, 2, 2)
	out, err := c.Forward(ctx, x)
	if err != nil {
		t.Fatal(err)
	}
	if !out.AllClose(x, 1e-6) {
		t.Error("1×1 unit kernel should be identity")
	}
}

func TestConvForwardKnownValues(t *testing.T) {
	ctx := NewContext()
	rng := rand.New(rand.NewSource(2))
	c, err := NewConv2D("c", 1, 1, 2, 1, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Kernel [[1,0],[0,1]]: out[y][x] = in[y][x] + in[y+1][x+1].
	copy(c.Weight().Data(), []float32{1, 0, 0, 1})
	c.Bias().Data()[0] = 10
	x := tensor.MustFromSlice([]float32{
		1, 2, 3,
		4, 5, 6,
		7, 8, 9,
	}, 1, 3, 3)
	out, err := c.Forward(ctx, x)
	if err != nil {
		t.Fatal(err)
	}
	want := []float32{16, 18, 22, 24} // +10 bias
	for i, w := range want {
		if out.Data()[i] != w {
			t.Errorf("out[%d] = %v, want %v", i, out.Data()[i], w)
		}
	}
}

func TestConvStridePad(t *testing.T) {
	ctx := NewContext()
	rng := rand.New(rand.NewSource(3))
	c, err := NewConv2D("c", 2, 3, 3, 2, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.MustNew(2, 7, 7)
	x.FillUniform(rng, -1, 1)
	out, err := c.Forward(ctx, x)
	if err != nil {
		t.Fatal(err)
	}
	// (7+2−3)/2+1 = 4
	if out.Dim(0) != 3 || out.Dim(1) != 4 || out.Dim(2) != 4 {
		t.Errorf("shape = %v, want [3 4 4]", out.Shape())
	}
}

func TestConvValidation(t *testing.T) {
	ctx := NewContext()
	rng := rand.New(rand.NewSource(4))
	if _, err := NewConv2D("c", 0, 1, 3, 1, 0, rng); err == nil {
		t.Error("zero in-channels should fail")
	}
	if _, err := NewConv2D("c", 1, 1, 0, 1, 0, rng); err == nil {
		t.Error("zero kernel should fail")
	}
	if _, err := NewConv2D("c", 1, 1, 3, 0, 0, rng); err == nil {
		t.Error("zero stride should fail")
	}
	if _, err := NewConv2D("c", 1, 1, 3, 1, -1, rng); err == nil {
		t.Error("negative pad should fail")
	}
	if _, err := NewConv2D("c", 1, 1, 3, 1, 0, nil); err == nil {
		t.Error("nil rng should fail")
	}
	c, _ := NewConv2D("c", 2, 1, 3, 1, 0, rng)
	if _, err := c.Forward(ctx, tensor.MustNew(3, 5, 5)); err == nil {
		t.Error("channel mismatch should fail")
	}
	if _, err := c.Forward(ctx, tensor.MustNew(2, 2, 2)); err == nil {
		t.Error("too-small input should fail")
	}
	if _, err := c.Backward(ctx, tensor.MustNew(1, 1, 1)); err == nil {
		t.Error("backward before forward should fail")
	}
	if _, err := c.Forward(ctx, tensor.MustNew(2, 5, 5)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Backward(ctx, tensor.MustNew(9, 9, 9)); err == nil {
		t.Error("wrong gradient shape should fail")
	}
}

func TestConvGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	c, err := NewConv2D("c", 2, 3, 3, 2, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.MustNew(2, 6, 6)
	x.FillUniform(rng, -1, 1)
	gradCheck(t, c, x, 5e-2)
}

func TestConvAccessors(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	c, _ := NewConv2D("c", 3, 8, 5, 2, 1, rng)
	if c.Filters() != 8 || c.Kernel() != 5 || c.InChannels() != 3 || c.Stride() != 2 || c.Pad() != 1 {
		t.Error("accessors wrong")
	}
	if len(c.Params()) != 2 {
		t.Error("conv should expose weight and bias")
	}
}

func TestMaxPool(t *testing.T) {
	ctx := NewContext()
	p, err := NewMaxPool2D("p", 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.MustFromSlice([]float32{
		1, 2, 5, 6,
		3, 4, 7, 8,
		-1, -2, 0, 0,
		-3, -4, 0, 9,
	}, 1, 4, 4)
	out, err := p.Forward(ctx, x)
	if err != nil {
		t.Fatal(err)
	}
	want := []float32{4, 8, -1, 9}
	for i, w := range want {
		if out.Data()[i] != w {
			t.Errorf("pool out[%d] = %v, want %v", i, out.Data()[i], w)
		}
	}
	// Backward routes to argmax.
	g := tensor.MustFromSlice([]float32{10, 20, 30, 40}, 1, 2, 2)
	dx, err := p.Backward(ctx, g)
	if err != nil {
		t.Fatal(err)
	}
	if dx.At(0, 1, 1) != 10 || dx.At(0, 1, 3) != 20 || dx.At(0, 2, 0) != 30 || dx.At(0, 3, 3) != 40 {
		t.Errorf("pool backward wrong: %v", dx.Data())
	}
	if dx.Sum() != 100 {
		t.Errorf("pool backward should conserve gradient mass, got %v", dx.Sum())
	}
}

func TestMaxPoolValidation(t *testing.T) {
	ctx := NewContext()
	if _, err := NewMaxPool2D("p", 0, 1); err == nil {
		t.Error("window 0 should fail")
	}
	if _, err := NewMaxPool2D("p", 2, 0); err == nil {
		t.Error("stride 0 should fail")
	}
	p, _ := NewMaxPool2D("p", 3, 2)
	if _, err := p.Forward(ctx, tensor.MustNew(4)); err == nil {
		t.Error("rank-1 input should fail")
	}
	if _, err := p.Forward(ctx, tensor.MustNew(1, 2, 2)); err == nil {
		t.Error("too-small input should fail")
	}
	if _, err := p.Backward(ctx, tensor.MustNew(1, 1, 1)); err == nil {
		t.Error("backward before forward should fail")
	}
}

func TestReLU(t *testing.T) {
	ctx := NewContext()
	r := NewReLU("r")
	x := tensor.MustFromSlice([]float32{-1, 0, 2}, 3)
	out, err := r.Forward(ctx, x)
	if err != nil {
		t.Fatal(err)
	}
	if out.Data()[0] != 0 || out.Data()[1] != 0 || out.Data()[2] != 2 {
		t.Errorf("relu forward = %v", out.Data())
	}
	if x.Data()[0] != -1 {
		t.Error("relu must not mutate its input")
	}
	g := tensor.MustFromSlice([]float32{5, 5, 5}, 3)
	dx, err := r.Backward(ctx, g)
	if err != nil {
		t.Fatal(err)
	}
	if dx.Data()[0] != 0 || dx.Data()[1] != 0 || dx.Data()[2] != 5 {
		t.Errorf("relu backward = %v", dx.Data())
	}
	r2 := NewReLU("r2")
	if _, err := r2.Backward(ctx, g); err == nil {
		t.Error("backward before forward should fail")
	}
	if _, err := r.Backward(ctx, tensor.MustNew(5)); err == nil {
		t.Error("wrong gradient length should fail")
	}
}

func TestFlatten(t *testing.T) {
	ctx := NewContext()
	f := NewFlatten("f")
	x := tensor.MustNew(2, 3, 4)
	out, err := f.Forward(ctx, x)
	if err != nil {
		t.Fatal(err)
	}
	if out.Rank() != 1 || out.Len() != 24 {
		t.Errorf("flatten shape %v", out.Shape())
	}
	g := tensor.MustNew(24)
	dx, err := f.Backward(ctx, g)
	if err != nil {
		t.Fatal(err)
	}
	if dx.Rank() != 3 || dx.Dim(2) != 4 {
		t.Errorf("unflatten shape %v", dx.Shape())
	}
	f2 := NewFlatten("f2")
	if _, err := f2.Backward(ctx, g); err == nil {
		t.Error("backward before forward should fail")
	}
}

func TestDenseForwardKnown(t *testing.T) {
	ctx := NewContext()
	rng := rand.New(rand.NewSource(7))
	d, err := NewDense("d", 2, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	copy(d.Weight().Data(), []float32{1, 2, 3, 4})
	copy(d.Bias().Data(), []float32{10, 20})
	x := tensor.MustFromSlice([]float32{1, 1}, 2)
	out, err := d.Forward(ctx, x)
	if err != nil {
		t.Fatal(err)
	}
	if out.Data()[0] != 13 || out.Data()[1] != 27 {
		t.Errorf("dense forward = %v, want [13 27]", out.Data())
	}
}

func TestDenseGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	d, err := NewDense("d", 6, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.MustNew(6)
	x.FillUniform(rng, -1, 1)
	gradCheck(t, d, x, 5e-2)
}

func TestDenseValidation(t *testing.T) {
	ctx := NewContext()
	rng := rand.New(rand.NewSource(9))
	if _, err := NewDense("d", 0, 1, rng); err == nil {
		t.Error("zero input dim should fail")
	}
	if _, err := NewDense("d", 1, 1, nil); err == nil {
		t.Error("nil rng should fail")
	}
	d, _ := NewDense("d", 3, 2, rng)
	if _, err := d.Forward(ctx, tensor.MustNew(4)); err == nil {
		t.Error("wrong input length should fail")
	}
	if _, err := d.Backward(ctx, tensor.MustNew(2)); err == nil {
		t.Error("backward before forward should fail")
	}
	if _, err := d.Forward(ctx, tensor.MustNew(3)); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Backward(ctx, tensor.MustNew(3)); err == nil {
		t.Error("wrong gradient length should fail")
	}
}

func TestLRNForwardKnown(t *testing.T) {
	ctx := NewContext()
	l, err := NewLRN("l", 3, 1, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Single pixel, 2 channels, window 3 (half=1), k=1, α=1, β=1, n=3:
	// denom_0 = 1 + (1/3)(x0²+x1²), y_0 = x0/denom_0.
	x := tensor.MustFromSlice([]float32{3, 4}, 2, 1, 1)
	out, err := l.Forward(ctx, x)
	if err != nil {
		t.Fatal(err)
	}
	d0 := 1 + (9.0+16.0)/3
	if math.Abs(float64(out.At3(0, 0, 0))-3/d0) > 1e-6 {
		t.Errorf("lrn out0 = %v, want %v", out.At3(0, 0, 0), 3/d0)
	}
	if math.Abs(float64(out.At3(1, 0, 0))-4/d0) > 1e-6 {
		t.Errorf("lrn out1 = %v, want %v", out.At3(1, 0, 0), 4/d0)
	}
}

func TestLRNGradCheck(t *testing.T) {
	l := NewAlexNetLRN("l")
	rng := rand.New(rand.NewSource(10))
	x := tensor.MustNew(7, 3, 3)
	x.FillUniform(rng, -2, 2)
	gradCheck(t, l, x, 5e-2)
}

func TestLRNValidation(t *testing.T) {
	ctx := NewContext()
	if _, err := NewLRN("l", 0, 1, 1, 1); err == nil {
		t.Error("window 0 should fail")
	}
	if _, err := NewLRN("l", 3, -1, 1, 1); err == nil {
		t.Error("negative k should fail")
	}
	if _, err := NewLRN("l", 3, 1, 1, 0); err == nil {
		t.Error("zero beta should fail")
	}
	l := NewAlexNetLRN("l")
	if _, err := l.Forward(ctx, tensor.MustNew(4)); err == nil {
		t.Error("rank-1 input should fail")
	}
	if _, err := l.Backward(ctx, tensor.MustNew(1, 1, 1)); err == nil {
		t.Error("backward before forward should fail")
	}
	if _, err := l.Forward(ctx, tensor.MustNew(2, 2, 2)); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Backward(ctx, tensor.MustNew(3, 2, 2)); err == nil {
		t.Error("wrong gradient shape should fail")
	}
}

func TestDropout(t *testing.T) {
	ctx := NewContext()
	rng := rand.New(rand.NewSource(11))
	d, err := NewDropout("d", 0.5, rng)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.MustNew(1000)
	x.Fill(1)
	// Inference: identity.
	out, err := d.Forward(ctx, x)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Equal(x) {
		t.Error("inference dropout should be identity")
	}
	g := tensor.MustNew(1000)
	g.Fill(1)
	dg, err := d.Backward(ctx, g)
	if err != nil {
		t.Fatal(err)
	}
	if !dg.Equal(g) {
		t.Error("inference dropout backward should be identity")
	}
	// Training: ~half dropped, survivors scaled ×2, expectation preserved.
	ctx.SetTraining(true)
	out, err = d.Forward(ctx, x)
	if err != nil {
		t.Fatal(err)
	}
	zeros := 0
	for _, v := range out.Data() {
		if v == 0 {
			zeros++
		} else if v != 2 {
			t.Fatalf("surviving activation = %v, want 2", v)
		}
	}
	if zeros < 400 || zeros > 600 {
		t.Errorf("dropped %d of 1000 at rate 0.5", zeros)
	}
	if m := out.Mean(); math.Abs(m-1) > 0.15 {
		t.Errorf("dropout mean = %v, want ~1 (inverted scaling)", m)
	}
	dg, err = d.Backward(ctx, g)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range dg.Data() {
		if (out.Data()[i] == 0) != (v == 0) {
			t.Fatal("dropout backward mask must match forward mask")
		}
	}
	if _, err := NewDropout("d", 1.0, rng); err == nil {
		t.Error("rate 1 should fail")
	}
	if _, err := NewDropout("d", 0.5, nil); err == nil {
		t.Error("nil rng should fail")
	}
}

func TestCrossEntropyLoss(t *testing.T) {
	logits := tensor.MustFromSlice([]float32{0, 0, 0}, 3)
	loss, grad, err := CrossEntropyLoss(logits, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(loss-math.Log(3)) > 1e-6 {
		t.Errorf("uniform loss = %v, want ln 3", loss)
	}
	// Gradient sums to zero and is p − onehot.
	var sum float64
	for i, g := range grad.Data() {
		sum += float64(g)
		want := 1.0 / 3
		if i == 1 {
			want -= 1
		}
		if math.Abs(float64(g)-want) > 1e-6 {
			t.Errorf("grad[%d] = %v, want %v", i, g, want)
		}
	}
	if math.Abs(sum) > 1e-6 {
		t.Errorf("gradient sum = %v, want 0", sum)
	}
	if _, _, err := CrossEntropyLoss(logits, 5); err == nil {
		t.Error("out-of-range label should fail")
	}
	if _, _, err := CrossEntropyLoss(tensor.MustNew(2, 2), 0); err == nil {
		t.Error("rank-2 logits should fail")
	}
}

func TestSoftmaxHelper(t *testing.T) {
	probs, err := Softmax(tensor.MustFromSlice([]float32{1, 1}, 2))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(probs[0])-0.5) > 1e-6 {
		t.Errorf("softmax = %v", probs)
	}
	if _, err := Softmax(tensor.MustNew(2, 2)); err == nil {
		t.Error("rank-2 should fail")
	}
}

func TestSequentialWiring(t *testing.T) {
	ctx := NewContext()
	rng := rand.New(rand.NewSource(12))
	net, err := NewMicroAlexNet(MicroConfig{
		InputSize: 16, Conv1Filters: 4, Conv1Kernel: 3, Conv2Filters: 4,
		Hidden: 8, Classes: 3, UseLRN: true,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.MustNew(3, 16, 16)
	x.FillUniform(rng, 0, 1)
	logits, err := net.Forward(ctx, x)
	if err != nil {
		t.Fatal(err)
	}
	if logits.Rank() != 1 || logits.Len() != 3 {
		t.Fatalf("logits shape %v", logits.Shape())
	}
	loss, grad, err := CrossEntropyLoss(logits, 0)
	if err != nil {
		t.Fatal(err)
	}
	if loss <= 0 {
		t.Errorf("loss = %v, want > 0", loss)
	}
	net.ZeroGrads()
	dx, err := net.Backward(ctx, grad)
	if err != nil {
		t.Fatal(err)
	}
	if !dx.SameShape(x) {
		t.Errorf("input gradient shape %v", dx.Shape())
	}
	// Some parameter gradient must be nonzero.
	nonzero := false
	for _, p := range net.Params() {
		if p.Grad.L2Norm() > 0 {
			nonzero = true
			break
		}
	}
	if !nonzero {
		t.Error("all parameter gradients are zero after backward")
	}
	net.ZeroGrads()
	for _, p := range net.Params() {
		if p.Grad.L2Norm() != 0 {
			t.Error("ZeroGrads left a nonzero gradient")
		}
	}
	if net.Summary() == "" || net.ParamCount() == 0 || net.Len() == 0 {
		t.Error("summary/paramcount/len broken")
	}
}

func TestSequentialForwardFrom(t *testing.T) {
	ctx := NewContext()
	rng := rand.New(rand.NewSource(13))
	cfg := MicroConfig{InputSize: 16, Conv1Filters: 4, Conv1Kernel: 3,
		Conv2Filters: 4, Hidden: 8, Classes: 3, UseLRN: false}
	net, err := NewMicroAlexNet(cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.MustNew(3, 16, 16)
	x.FillUniform(rng, 0, 1)
	full, err := net.Forward(ctx, x)
	if err != nil {
		t.Fatal(err)
	}
	// Manually run layer 0 then ForwardFrom(1): must agree.
	conv, err := net.Layer(0)
	if err != nil {
		t.Fatal(err)
	}
	mid, err := conv.Forward(ctx, x)
	if err != nil {
		t.Fatal(err)
	}
	rest, err := net.ForwardFrom(ctx, 1, mid)
	if err != nil {
		t.Fatal(err)
	}
	if !full.AllClose(rest, 1e-6) {
		t.Error("ForwardFrom disagrees with full forward")
	}
	if _, err := net.ForwardFrom(ctx, -1, mid); err == nil {
		t.Error("negative from should fail")
	}
	if _, err := net.Layer(99); err == nil {
		t.Error("out-of-range layer should fail")
	}
}

func TestSequentialValidation(t *testing.T) {
	if _, err := NewSequential("empty"); err == nil {
		t.Error("empty sequential should fail")
	}
	if _, err := NewSequential("nil", nil); err == nil {
		t.Error("nil layer should fail")
	}
}

func TestPredict(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	net, err := NewMicroAlexNet(MicroConfig{
		InputSize: 16, Conv1Filters: 4, Conv1Kernel: 3, Conv2Filters: 4,
		Hidden: 8, Classes: 4, UseLRN: false,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.MustNew(3, 16, 16)
	x.FillUniform(rng, 0, 1)
	probs, class, err := Predict(net, x)
	if err != nil {
		t.Fatal(err)
	}
	if len(probs) != 4 || class < 0 || class >= 4 {
		t.Fatalf("probs %v class %d", probs, class)
	}
	var sum float64
	for _, p := range probs {
		sum += float64(p)
	}
	if math.Abs(sum-1) > 1e-5 {
		t.Errorf("probabilities sum to %v", sum)
	}
}

func TestMicroConfigValidate(t *testing.T) {
	if _, err := (MicroConfig{InputSize: 4, Conv1Filters: 1, Conv1Kernel: 3, Conv2Filters: 1, Hidden: 1, Classes: 2}).Validate(); err == nil {
		t.Error("tiny input should fail")
	}
	if _, err := (MicroConfig{InputSize: 32, Conv1Filters: 1, Conv1Kernel: 4, Conv2Filters: 1, Hidden: 1, Classes: 2}).Validate(); err == nil {
		t.Error("even kernel should fail")
	}
	if _, err := (MicroConfig{InputSize: 32, Conv1Filters: 1, Conv1Kernel: 3, Conv2Filters: 1, Hidden: 1, Classes: 1}).Validate(); err == nil {
		t.Error("one class should fail")
	}
	flat, err := DefaultMicroConfig().Validate()
	if err != nil || flat <= 0 {
		t.Errorf("default config invalid: %d, %v", flat, err)
	}
	if _, err := NewMicroAlexNet(DefaultMicroConfig(), nil); err == nil {
		t.Error("nil rng should fail")
	}
}

func TestFirstConv(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	net, err := NewMicroAlexNet(DefaultMicroConfig(), rng)
	if err != nil {
		t.Fatal(err)
	}
	c, err := FirstConv(net)
	if err != nil {
		t.Fatal(err)
	}
	if c.Name() != "conv1" {
		t.Errorf("first conv = %q", c.Name())
	}
	flat, _ := NewSequential("noconv", NewReLU("r"))
	if _, err := FirstConv(flat); err == nil {
		t.Error("network without conv should fail")
	}
}

func TestSaveLoadWeights(t *testing.T) {
	ctx := NewContext()
	rng := rand.New(rand.NewSource(16))
	cfg := MicroConfig{InputSize: 16, Conv1Filters: 4, Conv1Kernel: 3,
		Conv2Filters: 4, Hidden: 8, Classes: 3, UseLRN: true}
	a, err := NewMicroAlexNet(cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveWeights(a, &buf); err != nil {
		t.Fatal(err)
	}
	b, err := NewMicroAlexNet(cfg, rand.New(rand.NewSource(999)))
	if err != nil {
		t.Fatal(err)
	}
	if err := LoadWeights(b, bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	for i, pa := range a.Params() {
		if !pa.Value.Equal(b.Params()[i].Value) {
			t.Fatalf("parameter %q differs after load", pa.Name)
		}
	}
	// Outputs agree.
	x := tensor.MustNew(3, 16, 16)
	x.FillUniform(rng, 0, 1)
	oa, err := a.Forward(ctx, x)
	if err != nil {
		t.Fatal(err)
	}
	ob, err := b.Forward(ctx, x)
	if err != nil {
		t.Fatal(err)
	}
	if !oa.Equal(ob) {
		t.Error("loaded network produces different output")
	}
}

func TestLoadWeightsRejectsMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	cfg := MicroConfig{InputSize: 16, Conv1Filters: 4, Conv1Kernel: 3,
		Conv2Filters: 4, Hidden: 8, Classes: 3, UseLRN: false}
	a, _ := NewMicroAlexNet(cfg, rng)
	var buf bytes.Buffer
	if err := SaveWeights(a, &buf); err != nil {
		t.Fatal(err)
	}
	// Different architecture: more filters.
	cfg2 := cfg
	cfg2.Conv1Filters = 8
	b, _ := NewMicroAlexNet(cfg2, rng)
	if err := LoadWeights(b, bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("shape mismatch should fail")
	}
	if err := LoadWeights(a, bytes.NewReader([]byte("garbage!"))); err == nil {
		t.Error("bad magic should fail")
	}
	if err := LoadWeights(a, bytes.NewReader(nil)); err == nil {
		t.Error("empty stream should fail")
	}
}

func TestFullAlexNetConstruction(t *testing.T) {
	if testing.Short() {
		t.Skip("full AlexNet allocates ~0.5 GB; skipped in -short")
	}
	rng := rand.New(rand.NewSource(18))
	net, err := NewAlexNet(6, rng)
	if err != nil {
		t.Fatal(err)
	}
	// AlexNet has ~58 M parameters at 6 classes (fc8 is small).
	n := net.ParamCount()
	if n < 50_000_000 || n > 70_000_000 {
		t.Errorf("alexnet param count = %d, want ~58M", n)
	}
	conv1, err := FirstConv(net)
	if err != nil {
		t.Fatal(err)
	}
	if conv1.Filters() != 96 || conv1.Kernel() != 11 || conv1.Stride() != 4 {
		t.Error("conv1 is not the paper's 96×11×11/4 layer")
	}
	if _, err := NewAlexNet(1, rng); err == nil {
		t.Error("one class should fail")
	}
	if _, err := NewAlexNet(6, nil); err == nil {
		t.Error("nil rng should fail")
	}
}

func TestAlexNetForwardShape(t *testing.T) {
	ctx := NewContext()
	if testing.Short() {
		t.Skip("full AlexNet forward is expensive; skipped in -short")
	}
	rng := rand.New(rand.NewSource(19))
	net, err := NewAlexNet(6, rng)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.MustNew(3, AlexNetInputSize, AlexNetInputSize)
	x.FillUniform(rng, 0, 1)
	logits, err := net.Forward(ctx, x)
	if err != nil {
		t.Fatal(err)
	}
	if logits.Rank() != 1 || logits.Len() != 6 {
		t.Errorf("alexnet logits shape %v", logits.Shape())
	}
}
