// Package nn is the from-scratch CNN framework the reproduction trains and
// executes hybrid networks with. It provides the layers AlexNet needs
// (convolution, ReLU, local response normalisation, max pooling, dense,
// dropout), forward/backward passes, cross-entropy loss and weight
// serialisation.
//
// Both directions are batch-native: ForwardBatch takes an NCHW (or N×K
// flat) micro-batch and vectorises across it — convolution lowers all N
// samples into ONE blocked GEMM per layer (tensor.Im2colBatch), dense
// layers stream their weight matrix once per batch instead of once per
// sample (tensor.Linear) — and, in training contexts, caches batch-sized
// backward state that BackwardBatch consumes, so a whole mini-batch
// trains with one GEMM per layer per direction (dW = dY·Xᵀ, dX = Wᵀ·dY,
// tensor.Col2imBatch for the convolution scatter). The per-sample
// Forward/Backward pair is the N=1 case of the same kernels. Layers hold
// only immutable parameters — every per-call cache and scratch buffer
// (including the batch-sized im2col and GEMM scratch) lives in the
// Context threaded through the passes — so one network can serve any
// number of concurrent passes, one Context per goroutine.
package nn

import (
	"fmt"
	"strings"

	"repro/internal/tensor"
)

// Param is one learnable tensor with its gradient accumulator. Gradients are
// accumulated (+=) by Backward and cleared by ZeroGrad.
type Param struct {
	Name  string
	Value *tensor.Tensor
	Grad  *tensor.Tensor
}

// ZeroGrad clears the gradient accumulator.
func (p *Param) ZeroGrad() { p.Grad.Zero() }

// Layer is a differentiable module. Forward caches whatever Backward needs
// in ctx; Backward consumes the gradient w.r.t. the layer's output and
// returns the gradient w.r.t. its input, accumulating parameter gradients
// (into the canonical Grad tensors, or the context's shadow buffers — see
// Context.ShadowGrads) as a side effect.
//
// Layers ARE safe for concurrent shared-weight use: all mutable per-call
// state lives in the Context, so goroutines running the same layer must
// simply not share a Context.
type Layer interface {
	// Name identifies the layer in summaries and serialised models.
	Name() string
	// Forward computes the layer output for one CHW (or flat) sample,
	// caching backward state in ctx.
	Forward(ctx *Context, x *tensor.Tensor) (*tensor.Tensor, error)
	// ForwardBatch computes the layer output for an NCHW (or N×K flat)
	// micro-batch, one output sample per input sample, vectorised across
	// the batch (convolution runs ONE GEMM for all N samples). In
	// inference contexts it caches no backward state; in training
	// contexts (ctx.Training()) it additionally caches the batch-sized
	// state BackwardBatch consumes, in fields separate from the
	// per-sample cache so the two pass styles never clobber each other.
	// Batch-sized scratch lives in ctx and is reused across calls.
	ForwardBatch(ctx *Context, x *tensor.Tensor) (*tensor.Tensor, error)
	// Backward computes the input gradient from the output gradient. It
	// must be called on the same Context after Forward, with a gradient
	// matching the output shape.
	Backward(ctx *Context, grad *tensor.Tensor) (*tensor.Tensor, error)
	// BackwardBatch computes the batch input gradient from the batch
	// output gradient, vectorised like ForwardBatch (one GEMM per
	// parameterised layer for all N samples). It must be called on the
	// same Context after a training-mode ForwardBatch, with a gradient
	// matching the batch output shape; parameter gradients accumulate
	// exactly as in Backward (canonical Grad tensors or the context's
	// shadow buffers).
	BackwardBatch(ctx *Context, grad *tensor.Tensor) (*tensor.Tensor, error)
	// Params returns the layer's learnable parameters (possibly empty).
	Params() []*Param
}

// Sequential chains layers.
type Sequential struct {
	name   string
	layers []Layer
}

// NewSequential returns a named layer chain.
func NewSequential(name string, layers ...Layer) (*Sequential, error) {
	if len(layers) == 0 {
		return nil, fmt.Errorf("nn: sequential %q needs at least one layer", name)
	}
	for i, l := range layers {
		if l == nil {
			return nil, fmt.Errorf("nn: sequential %q layer %d is nil", name, i)
		}
	}
	return &Sequential{name: name, layers: layers}, nil
}

// Name returns the network name.
func (s *Sequential) Name() string { return s.name }

// Layers returns the underlying layer slice (shared; callers must not
// mutate it structurally).
func (s *Sequential) Layers() []Layer { return s.layers }

// Layer returns the i-th layer.
func (s *Sequential) Layer(i int) (Layer, error) {
	if i < 0 || i >= len(s.layers) {
		return nil, fmt.Errorf("nn: layer index %d out of range [0,%d)", i, len(s.layers))
	}
	return s.layers[i], nil
}

// Len returns the number of layers.
func (s *Sequential) Len() int { return len(s.layers) }

// Forward runs the full chain through ctx.
func (s *Sequential) Forward(ctx *Context, x *tensor.Tensor) (*tensor.Tensor, error) {
	return s.ForwardFrom(ctx, 0, x)
}

// ForwardFrom runs the chain starting at layer index from (inclusive). It is
// the hybrid network's entry point for continuing a classification from the
// reliably computed DCNN output.
func (s *Sequential) ForwardFrom(ctx *Context, from int, x *tensor.Tensor) (*tensor.Tensor, error) {
	if ctx == nil {
		return nil, fmt.Errorf("nn: forward needs a context")
	}
	if from < 0 || from > len(s.layers) {
		return nil, fmt.Errorf("nn: forward-from index %d out of range [0,%d]", from, len(s.layers))
	}
	var err error
	for i := from; i < len(s.layers); i++ {
		x, err = s.layers[i].Forward(ctx, x)
		if err != nil {
			return nil, fmt.Errorf("nn: forward layer %d (%s): %w", i, s.layers[i].Name(), err)
		}
	}
	return x, nil
}

// ForwardBatch runs the full chain over an NCHW micro-batch through ctx:
// one batched pass, one GEMM per convolution/dense layer for all N samples.
func (s *Sequential) ForwardBatch(ctx *Context, x *tensor.Tensor) (*tensor.Tensor, error) {
	return s.ForwardBatchFrom(ctx, 0, x)
}

// ForwardBatchFrom runs the batched chain starting at layer index from
// (inclusive) — the hybrid network's entry point for continuing a
// micro-batch of classifications from the reliably computed DCNN outputs.
func (s *Sequential) ForwardBatchFrom(ctx *Context, from int, x *tensor.Tensor) (*tensor.Tensor, error) {
	return s.ForwardBatchRange(ctx, from, len(s.layers), x)
}

// ForwardBatchRange runs the batched chain over layers [from, to) — the
// half-open prefix a fast-pipeline image runs non-reliably so it can
// coalesce with reliably computed feature maps at layer to.
func (s *Sequential) ForwardBatchRange(ctx *Context, from, to int, x *tensor.Tensor) (*tensor.Tensor, error) {
	if ctx == nil {
		return nil, fmt.Errorf("nn: batched forward needs a context")
	}
	if from < 0 || from > len(s.layers) {
		return nil, fmt.Errorf("nn: forward-from index %d out of range [0,%d]", from, len(s.layers))
	}
	if to < from || to > len(s.layers) {
		return nil, fmt.Errorf("nn: forward-to index %d out of range [%d,%d]", to, from, len(s.layers))
	}
	var err error
	for i := from; i < to; i++ {
		x, err = s.layers[i].ForwardBatch(ctx, x)
		if err != nil {
			return nil, fmt.Errorf("nn: batched forward layer %d (%s): %w", i, s.layers[i].Name(), err)
		}
	}
	return x, nil
}

// Backward propagates the output gradient through the chain in reverse,
// using the caches Forward left in ctx.
func (s *Sequential) Backward(ctx *Context, grad *tensor.Tensor) (*tensor.Tensor, error) {
	if ctx == nil {
		return nil, fmt.Errorf("nn: backward needs a context")
	}
	var err error
	for i := len(s.layers) - 1; i >= 0; i-- {
		grad, err = s.layers[i].Backward(ctx, grad)
		if err != nil {
			return nil, fmt.Errorf("nn: backward layer %d (%s): %w", i, s.layers[i].Name(), err)
		}
	}
	return grad, nil
}

// BackwardBatch propagates the batch output gradient through the chain in
// reverse, using the batch caches a training-mode ForwardBatch left in ctx —
// one GEMM per parameterised layer for the whole mini-batch.
func (s *Sequential) BackwardBatch(ctx *Context, grad *tensor.Tensor) (*tensor.Tensor, error) {
	if ctx == nil {
		return nil, fmt.Errorf("nn: batched backward needs a context")
	}
	var err error
	for i := len(s.layers) - 1; i >= 0; i-- {
		grad, err = s.layers[i].BackwardBatch(ctx, grad)
		if err != nil {
			return nil, fmt.Errorf("nn: batched backward layer %d (%s): %w", i, s.layers[i].Name(), err)
		}
	}
	return grad, nil
}

// Params returns all learnable parameters in layer order.
func (s *Sequential) Params() []*Param {
	var out []*Param
	for _, l := range s.layers {
		out = append(out, l.Params()...)
	}
	return out
}

// ParamCount returns the total number of learnable scalars.
func (s *Sequential) ParamCount() int {
	n := 0
	for _, p := range s.Params() {
		n += p.Value.Len()
	}
	return n
}

// ZeroGrads clears every parameter gradient.
func (s *Sequential) ZeroGrads() {
	for _, p := range s.Params() {
		p.ZeroGrad()
	}
}

// Summary renders a human-readable table of the network structure.
func (s *Sequential) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (%d layers, %d params)\n", s.name, len(s.layers), s.ParamCount())
	for i, l := range s.layers {
		n := 0
		for _, p := range l.Params() {
			n += p.Value.Len()
		}
		fmt.Fprintf(&b, "  %2d  %-14s %8d params\n", i, l.Name(), n)
	}
	return b.String()
}
