package nn

import (
	"fmt"
	"math/rand"

	"repro/internal/tensor"
)

// Context carries all per-call mutable state of a forward/backward pass:
// layer activation caches (per-sample from Forward, batch-sized from a
// training-mode ForwardBatch — the state BackwardBatch consumes), im2col
// scratch buffers (batch-sized on the ForwardBatch path — they grow to
// the largest micro-batch seen and are then reused call over call), the
// training switch, the dropout RNG and
// (optionally) context-local gradient accumulators. Layers
// themselves hold only immutable parameters, so any number of goroutines may
// run the SAME network concurrently as long as each uses its own Context —
// this is the contract the batched execution layer (internal/infer) and the
// data-parallel trainer (internal/train) build on.
//
// A Context is NOT safe for concurrent use; it is the unit of concurrency
// (one per goroutine/worker). The zero value is ready to use (NewContext is
// equivalent). The zero cost path is to allocate one and reuse it across
// calls: scratch buffers grow to the high-water mark and are then recycled.
type Context struct {
	training bool
	rng      *rand.Rand
	states   map[Layer]any
	grads    map[*tensor.Tensor]*tensor.Tensor
	shadow   bool
}

// NewContext returns an inference-mode context with no RNG.
func NewContext() *Context {
	return &Context{}
}

// SetTraining switches training-dependent behaviour (dropout masking) on or
// off for passes run through this context.
func (c *Context) SetTraining(on bool) { c.training = on }

// Training reports whether the context runs layers in training mode.
func (c *Context) Training() bool { return c.training }

// SetRand installs the RNG used by stochastic layers (dropout) running
// through this context. Per-worker RNGs keep data-parallel training
// deterministic for a fixed worker count.
func (c *Context) SetRand(rng *rand.Rand) { c.rng = rng }

// Rand returns the context RNG (nil if none was set).
func (c *Context) Rand() *rand.Rand { return c.rng }

// Reset drops every cached layer state and shadow gradient. Scratch buffers
// held inside the dropped states are released to the GC; prefer reusing a
// context without Reset when running the same network repeatedly.
func (c *Context) Reset() {
	c.states = make(map[Layer]any)
	c.grads = nil
}

// state returns the per-layer state for l, creating it with mk on first use.
func (c *Context) state(l Layer, mk func() any) any {
	if s, ok := c.states[l]; ok {
		return s
	}
	if c.states == nil {
		c.states = make(map[Layer]any)
	}
	s := mk()
	c.states[l] = s
	return s
}

// ShadowGrads switches gradient accumulation into context-local buffers.
// With shadowing off (the default) Backward accumulates directly into each
// parameter's canonical Grad tensor — correct for a single context. With
// shadowing on, each context accumulates privately and the trainer reduces
// the shadows with FlushGrads after the concurrent section, which is what
// makes data-parallel backward passes race-free.
func (c *Context) ShadowGrads(on bool) { c.shadow = on }

// gradBuf returns the accumulation target for the canonical gradient tensor:
// the tensor itself, or this context's (lazily created, zero-initialised)
// shadow of it.
func (c *Context) gradBuf(canonical *tensor.Tensor) *tensor.Tensor {
	if !c.shadow {
		return canonical
	}
	if c.grads == nil {
		c.grads = make(map[*tensor.Tensor]*tensor.Tensor)
	}
	if g, ok := c.grads[canonical]; ok {
		return g
	}
	g := tensor.MustNew(canonical.Shape()...)
	c.grads[canonical] = g
	return g
}

// FlushGrads adds every shadow gradient into its canonical tensor and zeroes
// the shadow for the next accumulation round. It must be called from a
// single goroutine (the reduction step between concurrent batches).
func (c *Context) FlushGrads() error {
	for canonical, g := range c.grads {
		if err := canonical.AddInPlace(g); err != nil {
			return fmt.Errorf("nn: flush grads: %w", err)
		}
		g.Zero()
	}
	return nil
}
