package nn

import (
	"fmt"
	"math/rand"

	"repro/internal/tensor"
)

// Conv2D is a 2-D convolution layer over CHW inputs with an FCHW weight bank
// and per-filter bias, the workhorse of AlexNet. The forward and backward
// passes are lowered onto im2col + blocked GEMM (internal/tensor); the
// direct 7-deep loop survives as ForwardNaive, the reference implementation
// the GEMM path is equivalence-tested against.
//
// The struct holds only parameters and hyper-parameters; activation caches
// and the im2col scratch live in the Context, so one Conv2D may serve any
// number of concurrent forward passes.
type Conv2D struct {
	name      string
	inC, outC int
	k         int // square kernel side
	stride    int
	pad       int
	weight    *tensor.Tensor // (outC, inC, k, k)
	bias      *tensor.Tensor // (outC)
	gradW     *tensor.Tensor
	gradB     *tensor.Tensor
}

// convState is the per-context mutable state of one Conv2D: the forward
// cache Backward consumes, the reusable lowering buffers, the
// batch-sized scratch of the batched path, and (in training contexts)
// the batch forward cache BackwardBatch consumes. Per-sample and batch
// fields are disjoint so interleaved Forward/ForwardBatch calls never
// clobber each other's backward state. The buffers grow to the
// high-water mark of the batches seen through this context and are then
// recycled call over call.
type convState struct {
	lastIn     *tensor.Tensor
	outH, outW int
	cols       []float32 // im2col matrix, (inC·k·k) × (outH·outW)
	dcols      []float32 // column-space gradient scratch for Backward
	bcols      []float32 // batched im2col matrix, (inC·k·k) × (N·outH·outW)
	bout       []float32 // batched GEMM output, F-major (outC, N, outH·outW)

	bLastIn      *tensor.Tensor // batch forward cache (training contexts only)
	boutH, boutW int
	bgrad        []float32 // NCHW→F-major gradient transpose scratch
	bdcols       []float32 // batched column-space gradient scratch
}

var _ Layer = (*Conv2D)(nil)

// NewConv2D returns a He-initialised convolution layer. rng seeds the
// weights; it must not be nil.
func NewConv2D(name string, inC, outC, k, stride, pad int, rng *rand.Rand) (*Conv2D, error) {
	switch {
	case inC < 1 || outC < 1:
		return nil, fmt.Errorf("nn: conv %q channels (%d→%d) must be >= 1", name, inC, outC)
	case k < 1:
		return nil, fmt.Errorf("nn: conv %q kernel %d must be >= 1", name, k)
	case stride < 1:
		return nil, fmt.Errorf("nn: conv %q stride %d must be >= 1", name, stride)
	case pad < 0:
		return nil, fmt.Errorf("nn: conv %q pad %d must be >= 0", name, pad)
	case rng == nil:
		return nil, fmt.Errorf("nn: conv %q needs an rng", name)
	}
	w, err := tensor.New(outC, inC, k, k)
	if err != nil {
		return nil, err
	}
	w.FillHe(rng, inC*k*k)
	b, err := tensor.New(outC)
	if err != nil {
		return nil, err
	}
	return &Conv2D{
		name: name, inC: inC, outC: outC, k: k, stride: stride, pad: pad,
		weight: w, bias: b,
		gradW: tensor.MustNew(outC, inC, k, k),
		gradB: tensor.MustNew(outC),
	}, nil
}

// Name implements Layer.
func (c *Conv2D) Name() string { return c.name }

// Weight returns the FCHW weight bank (shared storage — the hybrid network's
// filter-replacement workflow edits it in place).
func (c *Conv2D) Weight() *tensor.Tensor { return c.weight }

// Bias returns the bias vector (shared storage).
func (c *Conv2D) Bias() *tensor.Tensor { return c.bias }

// Filters returns the number of output filters.
func (c *Conv2D) Filters() int { return c.outC }

// Kernel returns the kernel side length.
func (c *Conv2D) Kernel() int { return c.k }

// InChannels returns the input channel count.
func (c *Conv2D) InChannels() int { return c.inC }

// Stride returns the stride.
func (c *Conv2D) Stride() int { return c.stride }

// Pad returns the padding.
func (c *Conv2D) Pad() int { return c.pad }

// Params implements Layer.
func (c *Conv2D) Params() []*Param {
	return []*Param{
		{Name: c.name + ".weight", Value: c.weight, Grad: c.gradW},
		{Name: c.name + ".bias", Value: c.bias, Grad: c.gradB},
	}
}

// checkInput validates x and returns the output extents.
func (c *Conv2D) checkInput(x *tensor.Tensor) (outH, outW int, err error) {
	if x.Rank() != 3 || x.Dim(0) != c.inC {
		return 0, 0, fmt.Errorf("nn: conv %q wants (%d,H,W) input, got %v", c.name, c.inC, x.Shape())
	}
	inH, inW := x.Dim(1), x.Dim(2)
	outH = tensor.ConvOut(inH, c.k, c.stride, c.pad)
	outW = tensor.ConvOut(inW, c.k, c.stride, c.pad)
	if outH < 1 || outW < 1 {
		return 0, 0, fmt.Errorf("nn: conv %q kernel %d does not fit input %dx%d", c.name, c.k, inH, inW)
	}
	return outH, outW, nil
}

// Forward implements Layer: lower the input with im2col, multiply with the
// (outC) × (inC·k·k) weight view in one blocked GEMM, add bias.
func (c *Conv2D) Forward(ctx *Context, x *tensor.Tensor) (*tensor.Tensor, error) {
	if ctx == nil {
		return nil, fmt.Errorf("nn: conv %q forward needs a context", c.name)
	}
	outH, outW, err := c.checkInput(x)
	if err != nil {
		return nil, err
	}
	st := ctx.state(c, func() any { return &convState{} }).(*convState)
	inH, inW := x.Dim(1), x.Dim(2)
	n := outH * outW
	ckk := c.inC * c.k * c.k

	st.cols = tensor.GrowSlice(st.cols, ckk*n)
	if err := tensor.Im2col(st.cols, x.Data(), c.inC, inH, inW, c.k, c.stride, c.pad); err != nil {
		return nil, fmt.Errorf("nn: conv %q: %w", c.name, err)
	}
	out := tensor.MustNew(c.outC, outH, outW)
	od, b := out.Data(), c.bias.Data()
	for f := 0; f < c.outC; f++ {
		row := od[f*n : (f+1)*n]
		bv := b[f]
		for j := range row {
			row[j] = bv
		}
	}
	tensor.GemmAcc(od, c.weight.Data(), st.cols, c.outC, ckk, n)
	st.lastIn, st.outH, st.outW = x, outH, outW
	return out, nil
}

// ForwardBatch implements Layer for an NCHW micro-batch: ONE Im2colBatch
// lowering and ONE blocked GEMM cover all N samples — the weight bank is
// streamed once per batch instead of once per sample. The GEMM output is
// F-major (outC, N, outH·outW); a contiguous per-(filter,sample) copy
// transposes it into the NCHW output. Element-for-element the arithmetic
// (bias seed + ascending-tap accumulation) is identical to Forward, so the
// outputs match the per-sample path exactly. In training contexts the
// input and the batch im2col matrix are kept for BackwardBatch; inference
// contexts cache no backward state.
func (c *Conv2D) ForwardBatch(ctx *Context, x *tensor.Tensor) (*tensor.Tensor, error) {
	if ctx == nil {
		return nil, fmt.Errorf("nn: conv %q batched forward needs a context", c.name)
	}
	if x.Rank() != 4 || x.Dim(1) != c.inC {
		return nil, fmt.Errorf("nn: conv %q wants (N,%d,H,W) batch, got %v", c.name, c.inC, x.Shape())
	}
	n, inH, inW := x.Dim(0), x.Dim(2), x.Dim(3)
	outH := tensor.ConvOut(inH, c.k, c.stride, c.pad)
	outW := tensor.ConvOut(inW, c.k, c.stride, c.pad)
	if outH < 1 || outW < 1 {
		return nil, fmt.Errorf("nn: conv %q kernel %d does not fit input %dx%d", c.name, c.k, inH, inW)
	}
	st := ctx.state(c, func() any { return &convState{} }).(*convState)
	hw := outH * outW
	cols := n * hw
	ckk := c.inC * c.k * c.k

	st.bcols = tensor.GrowSlice(st.bcols, ckk*cols)
	if err := tensor.Im2colBatch(st.bcols, x.Data(), n, c.inC, inH, inW, c.k, c.stride, c.pad); err != nil {
		return nil, fmt.Errorf("nn: conv %q: %w", c.name, err)
	}
	st.bout = tensor.GrowSlice(st.bout, c.outC*cols)
	b := c.bias.Data()
	for f := 0; f < c.outC; f++ {
		row := st.bout[f*cols : (f+1)*cols]
		bv := b[f]
		for j := range row {
			row[j] = bv
		}
	}
	tensor.GemmAcc(st.bout, c.weight.Data(), st.bcols, c.outC, ckk, cols)
	if ctx.Training() {
		st.bLastIn, st.boutH, st.boutW = x, outH, outW
	} else {
		st.bLastIn = nil // st.bcols is scratch again; invalidate the batch cache
	}

	out := tensor.MustNew(n, c.outC, outH, outW)
	od := out.Data()
	for f := 0; f < c.outC; f++ {
		fRow := st.bout[f*cols : (f+1)*cols]
		for s := 0; s < n; s++ {
			copy(od[(s*c.outC+f)*hw:(s*c.outC+f+1)*hw], fRow[s*hw:(s+1)*hw])
		}
	}
	return out, nil
}

// ForwardNaive computes the convolution with the direct loop nest over
// (filter, y, x, channel, ky, kx). It allocates no cache and touches no
// context: it is the reference implementation for the GEMM path's
// equivalence tests and for explainability review (the transcription of the
// textbook definition the dependability argument can be checked against).
func (c *Conv2D) ForwardNaive(x *tensor.Tensor) (*tensor.Tensor, error) {
	outH, outW, err := c.checkInput(x)
	if err != nil {
		return nil, err
	}
	inH, inW := x.Dim(1), x.Dim(2)
	out := tensor.MustNew(c.outC, outH, outW)
	in, w, b, od := x.Data(), c.weight.Data(), c.bias.Data(), out.Data()
	for f := 0; f < c.outC; f++ {
		fBase := f * c.inC * c.k * c.k
		for oy := 0; oy < outH; oy++ {
			iy0 := oy*c.stride - c.pad
			for ox := 0; ox < outW; ox++ {
				ix0 := ox*c.stride - c.pad
				acc := b[f]
				for ch := 0; ch < c.inC; ch++ {
					chBase := ch * inH * inW
					kBase := fBase + ch*c.k*c.k
					for ky := 0; ky < c.k; ky++ {
						iy := iy0 + ky
						if iy < 0 || iy >= inH {
							continue
						}
						row := chBase + iy*inW
						kRow := kBase + ky*c.k
						for kx := 0; kx < c.k; kx++ {
							ix := ix0 + kx
							if ix >= 0 && ix < inW {
								acc += in[row+ix] * w[kRow+kx]
							}
						}
					}
				}
				od[(f*outH+oy)*outW+ox] = acc
			}
		}
	}
	return out, nil
}

// Backward implements Layer in column space: dB is the per-filter row sum of
// dY, dW += dY · colsᵀ reuses the forward's im2col matrix, and
// dX = Col2im(Wᵀ · dY).
func (c *Conv2D) Backward(ctx *Context, grad *tensor.Tensor) (*tensor.Tensor, error) {
	if ctx == nil {
		return nil, fmt.Errorf("nn: conv %q backward needs a context", c.name)
	}
	st, ok := ctx.states[c].(*convState)
	if !ok || st.lastIn == nil {
		return nil, fmt.Errorf("nn: conv %q backward before forward", c.name)
	}
	if grad.Rank() != 3 || grad.Dim(0) != c.outC || grad.Dim(1) != st.outH || grad.Dim(2) != st.outW {
		return nil, fmt.Errorf("nn: conv %q wants (%d,%d,%d) gradient, got %v",
			c.name, c.outC, st.outH, st.outW, grad.Shape())
	}
	x := st.lastIn
	inH, inW := x.Dim(1), x.Dim(2)
	n := st.outH * st.outW
	ckk := c.inC * c.k * c.k
	g := grad.Data()
	dw := ctx.gradBuf(c.gradW).Data()
	db := ctx.gradBuf(c.gradB).Data()

	for f := 0; f < c.outC; f++ {
		var acc float32
		for _, gv := range g[f*n : (f+1)*n] {
			acc += gv
		}
		db[f] += acc
	}
	tensor.GemmTB(dw, g, st.cols, c.outC, n, ckk)

	st.dcols = tensor.GrowSlice(st.dcols, ckk*n)
	for i := range st.dcols {
		st.dcols[i] = 0
	}
	tensor.GemmTA(st.dcols, c.weight.Data(), g, ckk, c.outC, n)
	dx := tensor.MustNew(c.inC, inH, inW)
	if err := tensor.Col2im(dx.Data(), st.dcols, c.inC, inH, inW, c.k, c.stride, c.pad); err != nil {
		return nil, fmt.Errorf("nn: conv %q: %w", c.name, err)
	}
	return dx, nil
}

// BackwardBatch implements Layer over an NCHW gradient batch with the same
// column-space algebra as Backward, batch-wide: the gradient transposes into
// the F-major (outC) × (N·outH·outW) layout of the batched forward, dB is
// one tensor.AddRowSums reduction (per-(filter,sample) chains, matching the
// per-sample order), dW += dY·colsᵀ is ONE GemmTB against the forward's
// batch im2col matrix, and dX = Col2imBatch(Wᵀ·dY) is ONE GemmTA plus one
// batch scatter — the weight bank is streamed twice per mini-batch instead
// of twice per sample.
func (c *Conv2D) BackwardBatch(ctx *Context, grad *tensor.Tensor) (*tensor.Tensor, error) {
	if ctx == nil {
		return nil, fmt.Errorf("nn: conv %q batched backward needs a context", c.name)
	}
	st, ok := ctx.states[c].(*convState)
	if !ok || st.bLastIn == nil {
		return nil, fmt.Errorf("nn: conv %q batched backward before training-mode batched forward", c.name)
	}
	x := st.bLastIn
	n := x.Dim(0)
	if grad.Rank() != 4 || grad.Dim(0) != n || grad.Dim(1) != c.outC ||
		grad.Dim(2) != st.boutH || grad.Dim(3) != st.boutW {
		return nil, fmt.Errorf("nn: conv %q wants (%d,%d,%d,%d) gradient, got %v",
			c.name, n, c.outC, st.boutH, st.boutW, grad.Shape())
	}
	inH, inW := x.Dim(2), x.Dim(3)
	hw := st.boutH * st.boutW
	cols := n * hw
	ckk := c.inC * c.k * c.k
	g := grad.Data()
	dw := ctx.gradBuf(c.gradW).Data()
	db := ctx.gradBuf(c.gradB).Data()

	// NCHW → F-major: one contiguous copy per (filter, sample), the exact
	// inverse of the forward's output transpose.
	st.bgrad = tensor.GrowSlice(st.bgrad, c.outC*cols)
	for f := 0; f < c.outC; f++ {
		fRow := st.bgrad[f*cols : (f+1)*cols]
		for s := 0; s < n; s++ {
			copy(fRow[s*hw:(s+1)*hw], g[(s*c.outC+f)*hw:(s*c.outC+f+1)*hw])
		}
	}
	if err := tensor.AddRowSums(db, st.bgrad, c.outC, n, hw); err != nil {
		return nil, fmt.Errorf("nn: conv %q: %w", c.name, err)
	}
	tensor.GemmTB(dw, st.bgrad, st.bcols, c.outC, cols, ckk)

	st.bdcols = tensor.GrowSlice(st.bdcols, ckk*cols)
	for i := range st.bdcols {
		st.bdcols[i] = 0
	}
	tensor.GemmTA(st.bdcols, c.weight.Data(), st.bgrad, ckk, c.outC, cols)
	dx := tensor.MustNew(n, c.inC, inH, inW)
	if err := tensor.Col2imBatch(dx.Data(), st.bdcols, n, c.inC, inH, inW, c.k, c.stride, c.pad); err != nil {
		return nil, fmt.Errorf("nn: conv %q: %w", c.name, err)
	}
	return dx, nil
}
