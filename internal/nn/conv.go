package nn

import (
	"fmt"
	"math/rand"

	"repro/internal/tensor"
)

// Conv2D is a 2-D convolution layer over CHW inputs with an FCHW weight bank
// and per-filter bias, the workhorse of AlexNet.
type Conv2D struct {
	name       string
	inC, outC  int
	k          int // square kernel side
	stride     int
	pad        int
	weight     *tensor.Tensor // (outC, inC, k, k)
	bias       *tensor.Tensor // (outC)
	gradW      *tensor.Tensor
	gradB      *tensor.Tensor
	lastIn     *tensor.Tensor // forward cache
	outH, outW int
}

var _ Layer = (*Conv2D)(nil)

// NewConv2D returns a He-initialised convolution layer. rng seeds the
// weights; it must not be nil.
func NewConv2D(name string, inC, outC, k, stride, pad int, rng *rand.Rand) (*Conv2D, error) {
	switch {
	case inC < 1 || outC < 1:
		return nil, fmt.Errorf("nn: conv %q channels (%d→%d) must be >= 1", name, inC, outC)
	case k < 1:
		return nil, fmt.Errorf("nn: conv %q kernel %d must be >= 1", name, k)
	case stride < 1:
		return nil, fmt.Errorf("nn: conv %q stride %d must be >= 1", name, stride)
	case pad < 0:
		return nil, fmt.Errorf("nn: conv %q pad %d must be >= 0", name, pad)
	case rng == nil:
		return nil, fmt.Errorf("nn: conv %q needs an rng", name)
	}
	w, err := tensor.New(outC, inC, k, k)
	if err != nil {
		return nil, err
	}
	w.FillHe(rng, inC*k*k)
	b, err := tensor.New(outC)
	if err != nil {
		return nil, err
	}
	return &Conv2D{
		name: name, inC: inC, outC: outC, k: k, stride: stride, pad: pad,
		weight: w, bias: b,
		gradW: tensor.MustNew(outC, inC, k, k),
		gradB: tensor.MustNew(outC),
	}, nil
}

// Name implements Layer.
func (c *Conv2D) Name() string { return c.name }

// Weight returns the FCHW weight bank (shared storage — the hybrid network's
// filter-replacement workflow edits it in place).
func (c *Conv2D) Weight() *tensor.Tensor { return c.weight }

// Bias returns the bias vector (shared storage).
func (c *Conv2D) Bias() *tensor.Tensor { return c.bias }

// Filters returns the number of output filters.
func (c *Conv2D) Filters() int { return c.outC }

// Kernel returns the kernel side length.
func (c *Conv2D) Kernel() int { return c.k }

// InChannels returns the input channel count.
func (c *Conv2D) InChannels() int { return c.inC }

// Stride returns the stride.
func (c *Conv2D) Stride() int { return c.stride }

// Pad returns the padding.
func (c *Conv2D) Pad() int { return c.pad }

// Params implements Layer.
func (c *Conv2D) Params() []*Param {
	return []*Param{
		{Name: c.name + ".weight", Value: c.weight, Grad: c.gradW},
		{Name: c.name + ".bias", Value: c.bias, Grad: c.gradB},
	}
}

// Forward implements Layer.
func (c *Conv2D) Forward(x *tensor.Tensor) (*tensor.Tensor, error) {
	if x.Rank() != 3 || x.Dim(0) != c.inC {
		return nil, fmt.Errorf("nn: conv %q wants (%d,H,W) input, got %v", c.name, c.inC, x.Shape())
	}
	inH, inW := x.Dim(1), x.Dim(2)
	if inH+2*c.pad < c.k || inW+2*c.pad < c.k {
		return nil, fmt.Errorf("nn: conv %q kernel %d does not fit input %dx%d", c.name, c.k, inH, inW)
	}
	c.outH = (inH+2*c.pad-c.k)/c.stride + 1
	c.outW = (inW+2*c.pad-c.k)/c.stride + 1
	if c.outH < 1 || c.outW < 1 {
		return nil, fmt.Errorf("nn: conv %q kernel %d does not fit input %dx%d", c.name, c.k, inH, inW)
	}
	c.lastIn = x
	out := tensor.MustNew(c.outC, c.outH, c.outW)
	in, w, b, od := x.Data(), c.weight.Data(), c.bias.Data(), out.Data()
	for f := 0; f < c.outC; f++ {
		fBase := f * c.inC * c.k * c.k
		for oy := 0; oy < c.outH; oy++ {
			iy0 := oy*c.stride - c.pad
			for ox := 0; ox < c.outW; ox++ {
				ix0 := ox*c.stride - c.pad
				acc := b[f]
				for ch := 0; ch < c.inC; ch++ {
					chBase := ch * inH * inW
					kBase := fBase + ch*c.k*c.k
					for ky := 0; ky < c.k; ky++ {
						iy := iy0 + ky
						if iy < 0 || iy >= inH {
							continue
						}
						row := chBase + iy*inW
						kRow := kBase + ky*c.k
						for kx := 0; kx < c.k; kx++ {
							ix := ix0 + kx
							if ix >= 0 && ix < inW {
								acc += in[row+ix] * w[kRow+kx]
							}
						}
					}
				}
				od[(f*c.outH+oy)*c.outW+ox] = acc
			}
		}
	}
	return out, nil
}

// Backward implements Layer.
func (c *Conv2D) Backward(grad *tensor.Tensor) (*tensor.Tensor, error) {
	if c.lastIn == nil {
		return nil, fmt.Errorf("nn: conv %q backward before forward", c.name)
	}
	if grad.Rank() != 3 || grad.Dim(0) != c.outC || grad.Dim(1) != c.outH || grad.Dim(2) != c.outW {
		return nil, fmt.Errorf("nn: conv %q wants (%d,%d,%d) gradient, got %v",
			c.name, c.outC, c.outH, c.outW, grad.Shape())
	}
	x := c.lastIn
	inH, inW := x.Dim(1), x.Dim(2)
	dx := tensor.MustNew(c.inC, inH, inW)
	in, w, g := x.Data(), c.weight.Data(), grad.Data()
	dw, db, dxd := c.gradW.Data(), c.gradB.Data(), dx.Data()
	for f := 0; f < c.outC; f++ {
		fBase := f * c.inC * c.k * c.k
		for oy := 0; oy < c.outH; oy++ {
			iy0 := oy*c.stride - c.pad
			for ox := 0; ox < c.outW; ox++ {
				gv := g[(f*c.outH+oy)*c.outW+ox]
				if gv == 0 {
					continue
				}
				ix0 := ox*c.stride - c.pad
				db[f] += gv
				for ch := 0; ch < c.inC; ch++ {
					chBase := ch * inH * inW
					kBase := fBase + ch*c.k*c.k
					for ky := 0; ky < c.k; ky++ {
						iy := iy0 + ky
						if iy < 0 || iy >= inH {
							continue
						}
						row := chBase + iy*inW
						kRow := kBase + ky*c.k
						for kx := 0; kx < c.k; kx++ {
							ix := ix0 + kx
							if ix < 0 || ix >= inW {
								continue
							}
							dw[kRow+kx] += gv * in[row+ix]
							dxd[row+ix] += gv * w[kRow+kx]
						}
					}
				}
			}
		}
	}
	return dx, nil
}
