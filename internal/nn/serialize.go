package nn

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/tensor"
)

// Weight serialisation: a versioned container of named tensors. The format
// is a counted sequence of (name, HTN1 tensor) records:
//
//	magic   [4]byte "HNW1"
//	count   uint32 LE
//	record: nameLen uint16 LE, name bytes, tensor (tensor.WriteTo)
//
// Loading is by-name into an existing architecture, so a checkpoint can be
// restored into a freshly constructed network of the same shape.

var weightsMagic = [4]byte{'H', 'N', 'W', '1'}

// SaveWeights writes all parameters of net to w.
func SaveWeights(net *Sequential, w io.Writer) error {
	bw := bufio.NewWriter(w)
	params := net.Params()
	if _, err := bw.Write(weightsMagic[:]); err != nil {
		return fmt.Errorf("nn: save magic: %w", err)
	}
	var b4 [4]byte
	binary.LittleEndian.PutUint32(b4[:], uint32(len(params)))
	if _, err := bw.Write(b4[:]); err != nil {
		return fmt.Errorf("nn: save count: %w", err)
	}
	for _, p := range params {
		if len(p.Name) > 0xFFFF {
			return fmt.Errorf("nn: parameter name %q too long", p.Name[:32])
		}
		var b2 [2]byte
		binary.LittleEndian.PutUint16(b2[:], uint16(len(p.Name)))
		if _, err := bw.Write(b2[:]); err != nil {
			return fmt.Errorf("nn: save name length: %w", err)
		}
		if _, err := bw.WriteString(p.Name); err != nil {
			return fmt.Errorf("nn: save name: %w", err)
		}
		if _, err := p.Value.WriteTo(bw); err != nil {
			return fmt.Errorf("nn: save %q: %w", p.Name, err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("nn: save flush: %w", err)
	}
	return nil
}

// LoadWeights restores parameters into net by name. Every parameter of net
// must be present in the stream with a matching shape; extra records in the
// stream are an error, making drift between checkpoint and architecture
// loud.
func LoadWeights(net *Sequential, r io.Reader) error {
	br := bufio.NewReader(r)
	var m [4]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return fmt.Errorf("nn: load magic: %w", err)
	}
	if m != weightsMagic {
		return fmt.Errorf("nn: bad weights magic %q", m[:])
	}
	var b4 [4]byte
	if _, err := io.ReadFull(br, b4[:]); err != nil {
		return fmt.Errorf("nn: load count: %w", err)
	}
	count := int(binary.LittleEndian.Uint32(b4[:]))
	byName := make(map[string]*Param, count)
	for _, p := range net.Params() {
		byName[p.Name] = p
	}
	if count != len(byName) {
		return fmt.Errorf("nn: checkpoint has %d parameters, network has %d", count, len(byName))
	}
	seen := make(map[string]bool, count)
	for i := 0; i < count; i++ {
		var b2 [2]byte
		if _, err := io.ReadFull(br, b2[:]); err != nil {
			return fmt.Errorf("nn: load name length: %w", err)
		}
		nameLen := int(binary.LittleEndian.Uint16(b2[:]))
		nameBuf := make([]byte, nameLen)
		if _, err := io.ReadFull(br, nameBuf); err != nil {
			return fmt.Errorf("nn: load name: %w", err)
		}
		name := string(nameBuf)
		t, err := tensor.Read(br)
		if err != nil {
			return fmt.Errorf("nn: load %q: %w", name, err)
		}
		p, ok := byName[name]
		if !ok {
			return fmt.Errorf("nn: checkpoint parameter %q not in network", name)
		}
		if seen[name] {
			return fmt.Errorf("nn: duplicate checkpoint parameter %q", name)
		}
		seen[name] = true
		if err := p.Value.CopyFrom(t); err != nil {
			return fmt.Errorf("nn: load %q: %w", name, err)
		}
	}
	return nil
}
