package nn

import (
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// TestConvIm2colMatchesNaive is the golden-equivalence gate for the GEMM
// convolution path: on randomized shapes, strides and paddings, the
// im2col+GEMM Forward must agree with the retained direct-loop reference
// within 1e-5.
func TestConvIm2colMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	ctx := NewContext()
	for trial := 0; trial < 50; trial++ {
		inC := 1 + rng.Intn(4)
		outC := 1 + rng.Intn(6)
		k := 1 + rng.Intn(5)
		stride := 1 + rng.Intn(3)
		pad := rng.Intn(3)
		h := k + rng.Intn(12)
		w := k + rng.Intn(12)

		c, err := NewConv2D("c", inC, outC, k, stride, pad, rng)
		if err != nil {
			t.Fatal(err)
		}
		c.Weight().FillUniform(rng, -1, 1)
		c.Bias().FillUniform(rng, -1, 1)
		x := tensor.MustNew(inC, h, w)
		x.FillUniform(rng, -1, 1)

		want, err := c.ForwardNaive(x)
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.Forward(ctx, x)
		if err != nil {
			t.Fatal(err)
		}
		if !got.SameShape(want) {
			t.Fatalf("trial %d (c=%d f=%d k=%d s=%d p=%d %dx%d): shape %v != %v",
				trial, inC, outC, k, stride, pad, h, w, got.Shape(), want.Shape())
		}
		diff, err := got.MaxAbsDiff(want)
		if err != nil {
			t.Fatal(err)
		}
		if diff > 1e-5 {
			t.Errorf("trial %d (c=%d f=%d k=%d s=%d p=%d %dx%d): im2col/GEMM diverges from naive by %v",
				trial, inC, outC, k, stride, pad, h, w, diff)
		}
	}
}

// TestConvConcurrentSharedWeights runs many forward passes through ONE conv
// layer from concurrent goroutines, each with its own context — the
// concurrency contract the worker-pool execution layer depends on. Run
// under -race this doubles as the data-race gate for the layer refactor.
func TestConvConcurrentSharedWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	c, err := NewConv2D("c", 3, 8, 3, 1, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.MustNew(3, 12, 12)
	x.FillUniform(rng, -1, 1)
	want, err := c.ForwardNaive(x)
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 8
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		go func() {
			ctx := NewContext()
			for i := 0; i < 20; i++ {
				out, err := c.Forward(ctx, x)
				if err != nil {
					errs <- err
					return
				}
				if d, _ := out.MaxAbsDiff(want); d > 1e-5 {
					errs <- errDiverged
					return
				}
			}
			errs <- nil
		}()
	}
	for g := 0; g < goroutines; g++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

// TestZeroValueContextUsable: the zero value of Context must work like
// NewContext() — the facade exports the type, so external callers can
// legitimately start from `var ctx nn.Context`.
func TestZeroValueContextUsable(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	c, err := NewConv2D("c", 1, 2, 3, 1, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.MustNew(1, 5, 5)
	x.FillUniform(rng, -1, 1)
	var ctx Context
	got, err := c.Forward(&ctx, x)
	if err != nil {
		t.Fatal(err)
	}
	want, err := c.ForwardNaive(x)
	if err != nil {
		t.Fatal(err)
	}
	if d, _ := got.MaxAbsDiff(want); d > 1e-5 {
		t.Errorf("zero-value context forward diverges by %v", d)
	}
}

var errDiverged = &divergedError{}

type divergedError struct{}

func (*divergedError) Error() string { return "concurrent forward diverged from reference" }
