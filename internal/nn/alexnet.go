package nn

import (
	"fmt"
	"math/rand"
)

// AlexNetInputSize is the spatial input size of the original AlexNet
// (227×227×3), which the paper selects because shape determination "requires
// an appreciable image size with a clearly definable edge" — "a barely
// acceptable [size] for deterministic edge recognition".
const AlexNetInputSize = 227

// AlexNetConv1Filters is the first convolution layer's filter count: "the
// first convolution layer of the AlexNet reduces the input using 96 11*11*3
// filters".
const AlexNetConv1Filters = 96

// NewAlexNet builds the full AlexNet architecture (Krizhevsky et al. 2017
// single-tower variant, i.e. without the two-GPU channel grouping) for the
// given class count. With ~60 M parameters it exists to give the benchmarks
// and the hybrid partition the paper's exact first-layer workload; the
// trainable experiments use NewMicroAlexNet.
func NewAlexNet(classes int, rng *rand.Rand) (*Sequential, error) {
	if classes < 2 {
		return nil, fmt.Errorf("nn: alexnet needs >= 2 classes, got %d", classes)
	}
	if rng == nil {
		return nil, fmt.Errorf("nn: alexnet needs an rng")
	}
	conv1, err := NewConv2D("conv1", 3, AlexNetConv1Filters, 11, 4, 0, rng)
	if err != nil {
		return nil, err
	}
	conv2, err := NewConv2D("conv2", 96, 256, 5, 1, 2, rng)
	if err != nil {
		return nil, err
	}
	conv3, err := NewConv2D("conv3", 256, 384, 3, 1, 1, rng)
	if err != nil {
		return nil, err
	}
	conv4, err := NewConv2D("conv4", 384, 384, 3, 1, 1, rng)
	if err != nil {
		return nil, err
	}
	conv5, err := NewConv2D("conv5", 384, 256, 3, 1, 1, rng)
	if err != nil {
		return nil, err
	}
	pool1, err := NewMaxPool2D("pool1", 3, 2)
	if err != nil {
		return nil, err
	}
	pool2, err := NewMaxPool2D("pool2", 3, 2)
	if err != nil {
		return nil, err
	}
	pool5, err := NewMaxPool2D("pool5", 3, 2)
	if err != nil {
		return nil, err
	}
	// 227 → conv1(11,4) → 55 → pool 27 → conv2 27 → pool 13 → conv3/4/5 13
	// → pool5 6 → 256·6·6 = 9216.
	fc6, err := NewDense("fc6", 256*6*6, 4096, rng)
	if err != nil {
		return nil, err
	}
	fc7, err := NewDense("fc7", 4096, 4096, rng)
	if err != nil {
		return nil, err
	}
	fc8, err := NewDense("fc8", 4096, classes, rng)
	if err != nil {
		return nil, err
	}
	drop6, err := NewDropout("drop6", 0.5, rng)
	if err != nil {
		return nil, err
	}
	drop7, err := NewDropout("drop7", 0.5, rng)
	if err != nil {
		return nil, err
	}
	return NewSequential("alexnet",
		conv1, NewReLU("relu1"), NewAlexNetLRN("lrn1"), pool1,
		conv2, NewReLU("relu2"), NewAlexNetLRN("lrn2"), pool2,
		conv3, NewReLU("relu3"),
		conv4, NewReLU("relu4"),
		conv5, NewReLU("relu5"), pool5,
		NewFlatten("flatten"),
		fc6, NewReLU("relu6"), drop6,
		fc7, NewReLU("relu7"), drop7,
		fc8,
	)
}

// MicroConfig parameterises the scaled-down AlexNet used by the trainable
// experiments (Figure 4, the freeze studies and the hybrid integration
// tests). The architecture mirrors AlexNet's conv→LRN→pool→conv→pool→fc
// skeleton at dataset scale.
type MicroConfig struct {
	// InputSize is the square input side (default 32).
	InputSize int
	// Conv1Filters is the first layer's filter count — the population the
	// Figure 4 sweep replaces one at a time (default 16).
	Conv1Filters int
	// Conv1Kernel is the first layer's kernel side (default 5, odd so a
	// Sobel kernel embeds exactly).
	Conv1Kernel int
	// Conv2Filters is the second layer's filter count (default 16).
	Conv2Filters int
	// Hidden is the fully connected hidden width (default 48).
	Hidden int
	// Classes is the output class count (default 6).
	Classes int
	// UseLRN inserts the AlexNet LRN after conv1 (default true via
	// NewMicroAlexNet; set explicitly in the struct).
	UseLRN bool
}

// DefaultMicroConfig returns the configuration used by the experiments.
func DefaultMicroConfig() MicroConfig {
	return MicroConfig{
		InputSize:    32,
		Conv1Filters: 16,
		Conv1Kernel:  5,
		Conv2Filters: 16,
		Hidden:       48,
		Classes:      6,
		UseLRN:       true,
	}
}

// Validate checks the configuration and computes the flattened size.
func (c MicroConfig) Validate() (flat int, err error) {
	if c.InputSize < 12 {
		return 0, fmt.Errorf("nn: micro input size %d too small", c.InputSize)
	}
	if c.Conv1Filters < 1 || c.Conv2Filters < 1 {
		return 0, fmt.Errorf("nn: micro filter counts must be >= 1")
	}
	if c.Conv1Kernel < 3 || c.Conv1Kernel%2 == 0 {
		return 0, fmt.Errorf("nn: micro conv1 kernel %d must be odd and >= 3", c.Conv1Kernel)
	}
	if c.Hidden < 1 {
		return 0, fmt.Errorf("nn: micro hidden width must be >= 1")
	}
	if c.Classes < 2 {
		return 0, fmt.Errorf("nn: micro needs >= 2 classes")
	}
	s1 := c.InputSize - c.Conv1Kernel + 1 // conv1 stride 1, no pad
	p1 := s1 / 2                          // pool 2/2
	s2 := p1 - 3 + 1                      // conv2 3×3
	p2 := s2 / 2
	if p2 < 1 {
		return 0, fmt.Errorf("nn: micro input size %d too small for the architecture", c.InputSize)
	}
	return c.Conv2Filters * p2 * p2, nil
}

// NewMicroAlexNet builds the scaled AlexNet. Layer indices (with UseLRN):
// 0 conv1, 1 relu, 2 lrn, 3 pool, 4 conv2, 5 relu, 6 pool, 7 flatten,
// 8 fc1, 9 relu, 10 fc2.
func NewMicroAlexNet(cfg MicroConfig, rng *rand.Rand) (*Sequential, error) {
	flat, err := cfg.Validate()
	if err != nil {
		return nil, err
	}
	if rng == nil {
		return nil, fmt.Errorf("nn: micro alexnet needs an rng")
	}
	conv1, err := NewConv2D("conv1", 3, cfg.Conv1Filters, cfg.Conv1Kernel, 1, 0, rng)
	if err != nil {
		return nil, err
	}
	conv2, err := NewConv2D("conv2", cfg.Conv1Filters, cfg.Conv2Filters, 3, 1, 0, rng)
	if err != nil {
		return nil, err
	}
	pool1, err := NewMaxPool2D("pool1", 2, 2)
	if err != nil {
		return nil, err
	}
	pool2, err := NewMaxPool2D("pool2", 2, 2)
	if err != nil {
		return nil, err
	}
	fc1, err := NewDense("fc1", flat, cfg.Hidden, rng)
	if err != nil {
		return nil, err
	}
	fc2, err := NewDense("fc2", cfg.Hidden, cfg.Classes, rng)
	if err != nil {
		return nil, err
	}
	layers := []Layer{conv1, NewReLU("relu1")}
	if cfg.UseLRN {
		layers = append(layers, NewAlexNetLRN("lrn1"))
	}
	layers = append(layers,
		pool1,
		conv2, NewReLU("relu2"), pool2,
		NewFlatten("flatten"),
		fc1, NewReLU("relu3"),
		fc2,
	)
	return NewSequential("micro-alexnet", layers...)
}

// FirstConv returns the network's first Conv2D layer, the object of the
// paper's filter-replacement and pre-initialisation experiments.
func FirstConv(net *Sequential) (*Conv2D, error) {
	for _, l := range net.Layers() {
		if c, ok := l.(*Conv2D); ok {
			return c, nil
		}
	}
	return nil, fmt.Errorf("nn: network %q has no convolution layer", net.Name())
}
