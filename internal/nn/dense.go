package nn

import (
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/tensor"
)

// Dense is a fully connected layer over flat inputs: y = Wx + b.
type Dense struct {
	name    string
	in, out int
	weight  *tensor.Tensor // (out, in)
	bias    *tensor.Tensor // (out)
	gradW   *tensor.Tensor
	gradB   *tensor.Tensor
}

// denseState is the per-context forward cache. Per-sample and batch fields
// are disjoint so interleaved Forward/ForwardBatch calls never clobber each
// other's backward state.
type denseState struct {
	lastIn  *tensor.Tensor
	bLastIn *tensor.Tensor // batch forward cache (training contexts only)
}

var _ Layer = (*Dense)(nil)

// NewDense returns a He-initialised dense layer.
func NewDense(name string, in, out int, rng *rand.Rand) (*Dense, error) {
	if in < 1 || out < 1 {
		return nil, fmt.Errorf("nn: dense %q dims (%d→%d) must be >= 1", name, in, out)
	}
	if rng == nil {
		return nil, fmt.Errorf("nn: dense %q needs an rng", name)
	}
	w, err := tensor.New(out, in)
	if err != nil {
		return nil, err
	}
	w.FillHe(rng, in)
	b, err := tensor.New(out)
	if err != nil {
		return nil, err
	}
	return &Dense{
		name: name, in: in, out: out,
		weight: w, bias: b,
		gradW: tensor.MustNew(out, in),
		gradB: tensor.MustNew(out),
	}, nil
}

// Name implements Layer.
func (d *Dense) Name() string { return d.name }

// Weight returns the (out, in) weight matrix (shared storage).
func (d *Dense) Weight() *tensor.Tensor { return d.weight }

// Bias returns the bias vector (shared storage).
func (d *Dense) Bias() *tensor.Tensor { return d.bias }

// Params implements Layer.
func (d *Dense) Params() []*Param {
	return []*Param{
		{Name: d.name + ".weight", Value: d.weight, Grad: d.gradW},
		{Name: d.name + ".bias", Value: d.bias, Grad: d.gradB},
	}
}

// Forward implements Layer as the N=1 case of the batched tensor.Linear
// kernel (identical accumulation order: bias seed, then ascending input
// index).
func (d *Dense) Forward(ctx *Context, x *tensor.Tensor) (*tensor.Tensor, error) {
	if ctx == nil {
		return nil, fmt.Errorf("nn: dense %q forward needs a context", d.name)
	}
	if x.Rank() != 1 || x.Dim(0) != d.in {
		return nil, fmt.Errorf("nn: dense %q wants (%d) input, got %v", d.name, d.in, x.Shape())
	}
	st := ctx.state(d, func() any { return &denseState{} }).(*denseState)
	st.lastIn = x
	out := tensor.MustNew(d.out)
	tensor.Linear(out.Data(), x.Data(), d.weight.Data(), d.bias.Data(), 1, d.in, d.out)
	return out, nil
}

// ForwardBatch implements Layer over an (N, in) batch: one tensor.Linear
// call computes X·Wᵀ + b for all N rows, streaming the weight matrix — by
// far the largest tensor in the fully connected layers — once per batch
// instead of once per sample. In training contexts the input batch is kept
// for BackwardBatch; inference contexts cache no backward state.
func (d *Dense) ForwardBatch(ctx *Context, x *tensor.Tensor) (*tensor.Tensor, error) {
	if ctx == nil {
		return nil, fmt.Errorf("nn: dense %q batched forward needs a context", d.name)
	}
	if x.Rank() != 2 || x.Dim(1) != d.in {
		return nil, fmt.Errorf("nn: dense %q wants (N,%d) batch, got %v", d.name, d.in, x.Shape())
	}
	n := x.Dim(0)
	st := ctx.state(d, func() any { return &denseState{} }).(*denseState)
	if ctx.Training() {
		st.bLastIn = x
	} else {
		st.bLastIn = nil
	}
	out := tensor.MustNew(n, d.out)
	tensor.Linear(out.Data(), x.Data(), d.weight.Data(), d.bias.Data(), n, d.in, d.out)
	return out, nil
}

// Backward implements Layer.
func (d *Dense) Backward(ctx *Context, grad *tensor.Tensor) (*tensor.Tensor, error) {
	if ctx == nil {
		return nil, fmt.Errorf("nn: dense %q backward needs a context", d.name)
	}
	st, ok := ctx.states[d].(*denseState)
	if !ok || st.lastIn == nil {
		return nil, fmt.Errorf("nn: dense %q backward before forward", d.name)
	}
	if grad.Rank() != 1 || grad.Dim(0) != d.out {
		return nil, fmt.Errorf("nn: dense %q wants (%d) gradient, got %v", d.name, d.out, grad.Shape())
	}
	dx := tensor.MustNew(d.in)
	in, w, g := st.lastIn.Data(), d.weight.Data(), grad.Data()
	dw := ctx.gradBuf(d.gradW).Data()
	db := ctx.gradBuf(d.gradB).Data()
	dxd := dx.Data()
	for o := 0; o < d.out; o++ {
		gv := g[o]
		db[o] += gv
		row := o * d.in
		if gv == 0 {
			continue
		}
		for i := 0; i < d.in; i++ {
			dw[row+i] += gv * in[i]
			dxd[i] += gv * w[row+i]
		}
	}
	return dx, nil
}

// BackwardBatch implements Layer over an (N, out) gradient batch with three
// batch-wide kernels where Backward runs N scalar loops: dB is one
// tensor.AddColSums reduction (row-after-row, matching the per-sample
// order), dW += Gᵀ·X is ONE GemmTA, and dX = G·W is ONE Gemm — the weight
// matrix is streamed twice per mini-batch instead of twice per sample, which
// is where fc-heavy training gets its batched win.
func (d *Dense) BackwardBatch(ctx *Context, grad *tensor.Tensor) (*tensor.Tensor, error) {
	if ctx == nil {
		return nil, fmt.Errorf("nn: dense %q batched backward needs a context", d.name)
	}
	st, ok := ctx.states[d].(*denseState)
	if !ok || st.bLastIn == nil {
		return nil, fmt.Errorf("nn: dense %q batched backward before training-mode batched forward", d.name)
	}
	n := st.bLastIn.Dim(0)
	if grad.Rank() != 2 || grad.Dim(0) != n || grad.Dim(1) != d.out {
		return nil, fmt.Errorf("nn: dense %q wants (%d,%d) gradient, got %v", d.name, n, d.out, grad.Shape())
	}
	g, x, w := grad.Data(), st.bLastIn.Data(), d.weight.Data()
	dw := ctx.gradBuf(d.gradW).Data()
	db := ctx.gradBuf(d.gradB).Data()
	if err := tensor.AddColSums(db, g, n, d.out); err != nil {
		return nil, fmt.Errorf("nn: dense %q: %w", d.name, err)
	}
	tensor.GemmTA(dw, g, x, d.out, n, d.in)
	dx := tensor.MustNew(n, d.in)
	tensor.Gemm(dx.Data(), g, w, n, d.out, d.in)
	return dx, nil
}

// Dropout zeroes activations with probability Rate in training contexts and
// is the identity at inference (inverted dropout: surviving activations are
// scaled by 1/(1−Rate) so inference needs no rescaling). The mask is drawn
// from the context RNG when one is set (per-worker determinism in parallel
// training); contexts without an RNG fall back to the layer's construction
// RNG under a mutex, so concurrent training contexts that forgot SetRand
// stay race-free (merely serialised on the mask draw).
type Dropout struct {
	name string
	rate float32
	mu   sync.Mutex // guards rng: shared fallback for RNG-less contexts
	rng  *rand.Rand
}

// dropoutState is the per-context mask cache; mask serves per-sample
// Backward, bmask the batched pass.
type dropoutState struct {
	mask  []float32
	bmask []float32 // batch-wide mask (training contexts only)
}

var _ Layer = (*Dropout)(nil)

// NewDropout returns a dropout layer with drop probability rate in [0, 1).
func NewDropout(name string, rate float32, rng *rand.Rand) (*Dropout, error) {
	if rate < 0 || rate >= 1 {
		return nil, fmt.Errorf("nn: dropout %q rate %v out of [0,1)", name, rate)
	}
	if rng == nil {
		return nil, fmt.Errorf("nn: dropout %q needs an rng", name)
	}
	return &Dropout{name: name, rate: rate, rng: rng}, nil
}

// Name implements Layer.
func (d *Dropout) Name() string { return d.name }

// Params implements Layer.
func (d *Dropout) Params() []*Param { return nil }

// Forward implements Layer.
func (d *Dropout) Forward(ctx *Context, x *tensor.Tensor) (*tensor.Tensor, error) {
	if ctx == nil {
		return nil, fmt.Errorf("nn: dropout %q forward needs a context", d.name)
	}
	st := ctx.state(d, func() any { return &dropoutState{} }).(*dropoutState)
	if !ctx.Training() || d.rate == 0 {
		st.mask = nil
		return x, nil
	}
	rng := ctx.Rand()
	if rng == nil {
		d.mu.Lock()
		defer d.mu.Unlock()
		rng = d.rng
	}
	out := x.Clone()
	st.mask = make([]float32, out.Len())
	d.applyMask(rng, out.Data(), st.mask)
	return out, nil
}

// applyMask draws one inverted-dropout mask from rng and applies it to data
// in place — the per-element kernel shared by the per-sample and batched
// passes, so their keep/scale semantics cannot drift. maskOut, when non-nil,
// receives each element's multiplier (inv or 0) for Backward.
func (d *Dropout) applyMask(rng *rand.Rand, data, maskOut []float32) {
	keep := 1 - d.rate
	inv := 1 / keep
	for i := range data {
		if rng.Float32() < keep {
			if maskOut != nil {
				maskOut[i] = inv
			}
			data[i] *= inv
		} else {
			data[i] = 0
		}
	}
}

// ForwardBatch implements Layer. Dropout is element-wise, so the batched
// pass is the per-sample pass over the flattened batch: the identity at
// inference, a fresh inverted-dropout mask over every element in training
// contexts, cached batch-wide for BackwardBatch. The mask stream is drawn
// element-ascending over the flattened batch — the same draws a per-sample
// loop over the batch would make against this layer, though a multi-layer
// net interleaves its layers' draws differently than N per-sample passes
// would.
func (d *Dropout) ForwardBatch(ctx *Context, x *tensor.Tensor) (*tensor.Tensor, error) {
	if ctx == nil {
		return nil, fmt.Errorf("nn: dropout %q batched forward needs a context", d.name)
	}
	st := ctx.state(d, func() any { return &dropoutState{} }).(*dropoutState)
	if !ctx.Training() || d.rate == 0 {
		st.bmask = nil
		return x, nil
	}
	rng := ctx.Rand()
	if rng == nil {
		d.mu.Lock()
		defer d.mu.Unlock()
		rng = d.rng
	}
	out := x.Clone()
	st.bmask = make([]float32, out.Len())
	d.applyMask(rng, out.Data(), st.bmask)
	return out, nil
}

// Backward implements Layer.
func (d *Dropout) Backward(ctx *Context, grad *tensor.Tensor) (*tensor.Tensor, error) {
	if ctx == nil {
		return nil, fmt.Errorf("nn: dropout %q backward needs a context", d.name)
	}
	st, ok := ctx.states[d].(*dropoutState)
	if !ok || st.mask == nil {
		return grad, nil // inference mode: identity
	}
	if grad.Len() != len(st.mask) {
		return nil, fmt.Errorf("nn: dropout %q gradient length %d != cached %d",
			d.name, grad.Len(), len(st.mask))
	}
	dx := grad.Clone()
	data := dx.Data()
	for i, m := range st.mask {
		data[i] *= m
	}
	return dx, nil
}

// BackwardBatch implements Layer: the batch gradient scales by the cached
// batch-wide mask (identity in inference contexts, mirroring Backward).
func (d *Dropout) BackwardBatch(ctx *Context, grad *tensor.Tensor) (*tensor.Tensor, error) {
	if ctx == nil {
		return nil, fmt.Errorf("nn: dropout %q batched backward needs a context", d.name)
	}
	st, ok := ctx.states[d].(*dropoutState)
	if !ok || st.bmask == nil {
		return grad, nil // inference mode: identity
	}
	if grad.Len() != len(st.bmask) {
		return nil, fmt.Errorf("nn: dropout %q batch gradient length %d != cached %d",
			d.name, grad.Len(), len(st.bmask))
	}
	dx := grad.Clone()
	data := dx.Data()
	for i, m := range st.bmask {
		data[i] *= m
	}
	return dx, nil
}

// In returns the input width.
func (d *Dense) In() int { return d.in }

// Out returns the output width.
func (d *Dense) Out() int { return d.out }

// Rate returns the dropout probability.
func (d *Dropout) Rate() float32 { return d.rate }
