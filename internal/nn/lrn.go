package nn

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// LRN is AlexNet's local response normalisation across channels:
//
//	y_i = x_i / (k + (α/n)·Σ_{j∈window(i)} x_j²)^β
//
// where the window spans n channels centred on i (clipped at the ends).
type LRN struct {
	name  string
	n     int
	k     float64
	alpha float64
	beta  float64
}

// lrnState is the per-context forward cache; the b-prefixed fields are the
// batch cache of a training-mode ForwardBatch.
type lrnState struct {
	lastIn *tensor.Tensor
	denom  []float64 // cached k + (α/n)Σx² per element

	bLastIn *tensor.Tensor // batch forward cache (training contexts only)
	bdenom  []float64      // batch-wide denominator cache
}

var _ Layer = (*LRN)(nil)

// NewLRN returns an LRN layer. AlexNet's published constants are
// n=5, k=2, α=1e-4, β=0.75.
func NewLRN(name string, n int, k, alpha, beta float64) (*LRN, error) {
	if n < 1 {
		return nil, fmt.Errorf("nn: lrn %q window %d must be >= 1", name, n)
	}
	if k < 0 || alpha < 0 || beta <= 0 {
		return nil, fmt.Errorf("nn: lrn %q constants (k=%v α=%v β=%v) invalid", name, k, alpha, beta)
	}
	return &LRN{name: name, n: n, k: k, alpha: alpha, beta: beta}, nil
}

// NewAlexNetLRN returns an LRN layer with the AlexNet paper's constants.
func NewAlexNetLRN(name string) *LRN {
	l, err := NewLRN(name, 5, 2, 1e-4, 0.75)
	if err != nil {
		// Unreachable: the constants are valid by construction.
		panic(err)
	}
	return l
}

// Name implements Layer.
func (l *LRN) Name() string { return l.name }

// Params implements Layer.
func (l *LRN) Params() []*Param { return nil }

// Forward implements Layer.
func (l *LRN) Forward(ctx *Context, x *tensor.Tensor) (*tensor.Tensor, error) {
	if ctx == nil {
		return nil, fmt.Errorf("nn: lrn %q forward needs a context", l.name)
	}
	if x.Rank() != 3 {
		return nil, fmt.Errorf("nn: lrn %q wants CHW input, got %v", l.name, x.Shape())
	}
	c, h, w := x.Dim(0), x.Dim(1), x.Dim(2)
	st := ctx.state(l, func() any { return &lrnState{} }).(*lrnState)
	st.lastIn = x
	out := tensor.MustNew(c, h, w)
	if cap(st.denom) >= c*h*w {
		st.denom = st.denom[:c*h*w]
	} else {
		st.denom = make([]float64, c*h*w)
	}
	l.normalize(x.Data(), out.Data(), c, h*w, st.denom)
	return out, nil
}

// normalize applies the LRN kernel to one CHW sample (c channels of hw
// elements). When denom is non-nil it receives the per-element
// k + (α/n)Σx² cache Backward consumes; the batched path passes nil.
func (l *LRN) normalize(in, od []float32, c, hw int, denom []float64) {
	half := l.n / 2
	for pos := 0; pos < hw; pos++ {
		for ch := 0; ch < c; ch++ {
			lo := ch - half
			if lo < 0 {
				lo = 0
			}
			hi := ch + half
			if hi >= c {
				hi = c - 1
			}
			var ss float64
			for j := lo; j <= hi; j++ {
				v := float64(in[j*hw+pos])
				ss += v * v
			}
			d := l.k + l.alpha/float64(l.n)*ss
			idx := ch*hw + pos
			if denom != nil {
				denom[idx] = d
			}
			od[idx] = float32(float64(in[idx]) * math.Pow(d, -l.beta))
		}
	}
}

// ForwardBatch implements Layer over an NCHW batch: normalisation windows
// span channels within a sample, so the batched pass applies the per-sample
// kernel to each of the N packed samples. In training contexts the input and
// the batch-wide denominator cache are kept for BackwardBatch; inference
// contexts cache nothing.
func (l *LRN) ForwardBatch(ctx *Context, x *tensor.Tensor) (*tensor.Tensor, error) {
	if ctx == nil {
		return nil, fmt.Errorf("nn: lrn %q batched forward needs a context", l.name)
	}
	if x.Rank() != 4 {
		return nil, fmt.Errorf("nn: lrn %q wants NCHW batch, got %v", l.name, x.Shape())
	}
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	st := ctx.state(l, func() any { return &lrnState{} }).(*lrnState)
	if ctx.Training() {
		st.bLastIn = x
		if cap(st.bdenom) >= n*c*h*w {
			st.bdenom = st.bdenom[:n*c*h*w]
		} else {
			st.bdenom = make([]float64, n*c*h*w)
		}
	} else {
		st.bLastIn = nil
	}
	out := tensor.MustNew(n, c, h, w)
	in, od := x.Data(), out.Data()
	chw := c * h * w
	for s := 0; s < n; s++ {
		var denom []float64
		if st.bLastIn != nil {
			denom = st.bdenom[s*chw : (s+1)*chw]
		}
		l.normalize(in[s*chw:(s+1)*chw], od[s*chw:(s+1)*chw], c, h*w, denom)
	}
	return out, nil
}

// Backward implements Layer, with the exact derivative:
//
//	dx_m = g_m·denom_m^{-β} − (2αβ/n)·x_m·Σ_{i: m∈window(i)} g_i·x_i·denom_i^{-β-1}
func (l *LRN) Backward(ctx *Context, grad *tensor.Tensor) (*tensor.Tensor, error) {
	if ctx == nil {
		return nil, fmt.Errorf("nn: lrn %q backward needs a context", l.name)
	}
	st, ok := ctx.states[l].(*lrnState)
	if !ok || st.lastIn == nil {
		return nil, fmt.Errorf("nn: lrn %q backward before forward", l.name)
	}
	if !grad.SameShape(st.lastIn) {
		return nil, fmt.Errorf("nn: lrn %q gradient shape %v != input %v",
			l.name, grad.Shape(), st.lastIn.Shape())
	}
	c, h, w := st.lastIn.Dim(0), st.lastIn.Dim(1), st.lastIn.Dim(2)
	dx := tensor.MustNew(c, h, w)
	l.backwardSample(st.lastIn.Data(), grad.Data(), dx.Data(), st.denom, c, h*w)
	return dx, nil
}

// backwardSample applies the LRN derivative to one CHW sample (c channels of
// hw elements) given its forward denominator cache — the kernel shared by
// the per-sample and batched backward passes, so the derivative cannot
// drift between them.
func (l *LRN) backwardSample(in, g, dxd []float32, denom []float64, c, hw int) {
	half := l.n / 2
	scale := 2 * l.alpha * l.beta / float64(l.n)
	for pos := 0; pos < hw; pos++ {
		// Precompute g_i · x_i · denom_i^{-β-1} per channel at this pixel.
		gi := make([]float64, c)
		for ch := 0; ch < c; ch++ {
			idx := ch*hw + pos
			gi[ch] = float64(g[idx]) * float64(in[idx]) * math.Pow(denom[idx], -l.beta-1)
		}
		for m := 0; m < c; m++ {
			idx := m*hw + pos
			direct := float64(g[idx]) * math.Pow(denom[idx], -l.beta)
			// Channels i whose window contains m: |i − m| <= half.
			lo := m - half
			if lo < 0 {
				lo = 0
			}
			hi := m + half
			if hi >= c {
				hi = c - 1
			}
			var cross float64
			for i := lo; i <= hi; i++ {
				cross += gi[i]
			}
			dxd[idx] = float32(direct - scale*float64(in[idx])*cross)
		}
	}
}

// BackwardBatch implements Layer: windows never cross samples, so the batch
// derivative is the per-sample kernel over each packed sample with its slice
// of the batch-wide denominator cache.
func (l *LRN) BackwardBatch(ctx *Context, grad *tensor.Tensor) (*tensor.Tensor, error) {
	if ctx == nil {
		return nil, fmt.Errorf("nn: lrn %q batched backward needs a context", l.name)
	}
	st, ok := ctx.states[l].(*lrnState)
	if !ok || st.bLastIn == nil {
		return nil, fmt.Errorf("nn: lrn %q batched backward before training-mode batched forward", l.name)
	}
	if !grad.SameShape(st.bLastIn) {
		return nil, fmt.Errorf("nn: lrn %q batch gradient shape %v != input %v",
			l.name, grad.Shape(), st.bLastIn.Shape())
	}
	n, c, h, w := st.bLastIn.Dim(0), st.bLastIn.Dim(1), st.bLastIn.Dim(2), st.bLastIn.Dim(3)
	dx := tensor.MustNew(n, c, h, w)
	in, g, dxd := st.bLastIn.Data(), grad.Data(), dx.Data()
	chw := c * h * w
	for s := 0; s < n; s++ {
		l.backwardSample(in[s*chw:(s+1)*chw], g[s*chw:(s+1)*chw], dxd[s*chw:(s+1)*chw],
			st.bdenom[s*chw:(s+1)*chw], c, h*w)
	}
	return dx, nil
}

// Window returns the channel window size n.
func (l *LRN) Window() int { return l.n }

// Constants returns the (k, α, β) constants.
func (l *LRN) Constants() (k, alpha, beta float64) { return l.k, l.alpha, l.beta }
