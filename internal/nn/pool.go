package nn

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// MaxPool2D is a max-pooling layer over CHW inputs. AlexNet uses overlapping
// 3×3/stride-2 pooling; the micro networks use 2×2/stride-2.
type MaxPool2D struct {
	name   string
	k      int
	stride int
}

// poolState is the per-context forward cache; the b-prefixed fields are the
// batch cache of a training-mode ForwardBatch, disjoint from the per-sample
// fields so interleaved passes never clobber each other.
type poolState struct {
	lastShape  []int
	argmax     []int // linear input index of each output's max
	outC       int
	outH, outW int

	bLastShape   []int
	bargmax      []int // batch-wide argmax (training contexts only)
	bN, bC       int
	boutH, boutW int
}

var _ Layer = (*MaxPool2D)(nil)

// NewMaxPool2D returns a max-pooling layer with a square window.
func NewMaxPool2D(name string, k, stride int) (*MaxPool2D, error) {
	if k < 1 {
		return nil, fmt.Errorf("nn: pool %q window %d must be >= 1", name, k)
	}
	if stride < 1 {
		return nil, fmt.Errorf("nn: pool %q stride %d must be >= 1", name, stride)
	}
	return &MaxPool2D{name: name, k: k, stride: stride}, nil
}

// Name implements Layer.
func (p *MaxPool2D) Name() string { return p.name }

// Params implements Layer.
func (p *MaxPool2D) Params() []*Param { return nil }

// Forward implements Layer.
func (p *MaxPool2D) Forward(ctx *Context, x *tensor.Tensor) (*tensor.Tensor, error) {
	if ctx == nil {
		return nil, fmt.Errorf("nn: pool %q forward needs a context", p.name)
	}
	if x.Rank() != 3 {
		return nil, fmt.Errorf("nn: pool %q wants CHW input, got %v", p.name, x.Shape())
	}
	c, h, w := x.Dim(0), x.Dim(1), x.Dim(2)
	if h < p.k || w < p.k {
		return nil, fmt.Errorf("nn: pool %q window %d does not fit input %dx%d", p.name, p.k, h, w)
	}
	outH := (h-p.k)/p.stride + 1
	outW := (w-p.k)/p.stride + 1
	if outH < 1 || outW < 1 {
		return nil, fmt.Errorf("nn: pool %q window %d does not fit input %dx%d", p.name, p.k, h, w)
	}
	st := ctx.state(p, func() any { return &poolState{} }).(*poolState)
	st.lastShape = x.Shape()
	st.outC, st.outH, st.outW = c, outH, outW
	out := tensor.MustNew(c, outH, outW)
	if cap(st.argmax) >= c*outH*outW {
		st.argmax = st.argmax[:c*outH*outW]
	} else {
		st.argmax = make([]int, c*outH*outW)
	}
	in, od := x.Data(), out.Data()
	for ch := 0; ch < c; ch++ {
		p.poolPlane(in, od, st.argmax, ch*h*w, ch*outH*outW, w, outH, outW)
	}
	return out, nil
}

// poolPlane sweeps the max window over one (h, w) plane starting at pBase
// of in, writing outputs from oBase of out — the per-plane kernel shared by
// the per-sample and batched passes, so their window semantics cannot
// drift. argmax, when non-nil, receives each output's linear input index
// (absolute in in) for Backward.
func (p *MaxPool2D) poolPlane(in, out []float32, argmax []int, pBase, oBase, w, outH, outW int) {
	for oy := 0; oy < outH; oy++ {
		for ox := 0; ox < outW; ox++ {
			best := float32(math.Inf(-1))
			bestIdx := -1
			for ky := 0; ky < p.k; ky++ {
				row := pBase + (oy*p.stride+ky)*w
				for kx := 0; kx < p.k; kx++ {
					ix := ox*p.stride + kx
					if v := in[row+ix]; v > best {
						best = v
						bestIdx = row + ix
					}
				}
			}
			oIdx := oBase + oy*outW + ox
			out[oIdx] = best
			if argmax != nil {
				argmax[oIdx] = bestIdx
			}
		}
	}
}

// ForwardBatch implements Layer over an NCHW batch. Pooling is independent
// per (sample, channel) plane, so the batched pass sweeps all N·C planes of
// the packed batch in one pass. In training contexts the batch-wide argmax
// (absolute indices into the packed batch) is cached for BackwardBatch;
// inference contexts cache nothing.
func (p *MaxPool2D) ForwardBatch(ctx *Context, x *tensor.Tensor) (*tensor.Tensor, error) {
	if ctx == nil {
		return nil, fmt.Errorf("nn: pool %q batched forward needs a context", p.name)
	}
	if x.Rank() != 4 {
		return nil, fmt.Errorf("nn: pool %q wants NCHW batch, got %v", p.name, x.Shape())
	}
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	if h < p.k || w < p.k {
		return nil, fmt.Errorf("nn: pool %q window %d does not fit input %dx%d", p.name, p.k, h, w)
	}
	outH := (h-p.k)/p.stride + 1
	outW := (w-p.k)/p.stride + 1
	out := tensor.MustNew(n, c, outH, outW)
	in, od := x.Data(), out.Data()
	var bargmax []int
	st := ctx.state(p, func() any { return &poolState{} }).(*poolState)
	if ctx.Training() {
		if cap(st.bargmax) >= n*c*outH*outW {
			st.bargmax = st.bargmax[:n*c*outH*outW]
		} else {
			st.bargmax = make([]int, n*c*outH*outW)
		}
		st.bLastShape = x.Shape()
		st.bN, st.bC, st.boutH, st.boutW = n, c, outH, outW
		bargmax = st.bargmax
	} else {
		st.bargmax = nil
	}
	for plane := 0; plane < n*c; plane++ {
		p.poolPlane(in, od, bargmax, plane*h*w, plane*outH*outW, w, outH, outW)
	}
	return out, nil
}

// Backward implements Layer: the gradient routes to each window's argmax.
func (p *MaxPool2D) Backward(ctx *Context, grad *tensor.Tensor) (*tensor.Tensor, error) {
	if ctx == nil {
		return nil, fmt.Errorf("nn: pool %q backward needs a context", p.name)
	}
	st, ok := ctx.states[p].(*poolState)
	if !ok || st.argmax == nil {
		return nil, fmt.Errorf("nn: pool %q backward before forward", p.name)
	}
	if grad.Rank() != 3 || grad.Dim(0) != st.outC || grad.Dim(1) != st.outH || grad.Dim(2) != st.outW {
		return nil, fmt.Errorf("nn: pool %q wants (%d,%d,%d) gradient, got %v",
			p.name, st.outC, st.outH, st.outW, grad.Shape())
	}
	dx := tensor.MustNew(st.lastShape...)
	dxd, g := dx.Data(), grad.Data()
	for i, src := range st.argmax {
		dxd[src] += g[i]
	}
	return dx, nil
}

// BackwardBatch implements Layer: the batch gradient routes to each
// window's cached argmax, which is already absolute in the packed batch.
func (p *MaxPool2D) BackwardBatch(ctx *Context, grad *tensor.Tensor) (*tensor.Tensor, error) {
	if ctx == nil {
		return nil, fmt.Errorf("nn: pool %q batched backward needs a context", p.name)
	}
	st, ok := ctx.states[p].(*poolState)
	if !ok || st.bargmax == nil {
		return nil, fmt.Errorf("nn: pool %q batched backward before training-mode batched forward", p.name)
	}
	if grad.Rank() != 4 || grad.Dim(0) != st.bN || grad.Dim(1) != st.bC ||
		grad.Dim(2) != st.boutH || grad.Dim(3) != st.boutW {
		return nil, fmt.Errorf("nn: pool %q wants (%d,%d,%d,%d) gradient, got %v",
			p.name, st.bN, st.bC, st.boutH, st.boutW, grad.Shape())
	}
	dx := tensor.MustNew(st.bLastShape...)
	dxd, g := dx.Data(), grad.Data()
	for i, src := range st.bargmax {
		dxd[src] += g[i]
	}
	return dx, nil
}

// ReLU is the rectified linear activation.
type ReLU struct {
	name string
}

// reluState is the per-context activation mask; mask serves per-sample
// Backward, bmask the batched pass.
type reluState struct {
	mask  []bool
	bmask []bool // batch-wide mask (training contexts only)
}

var _ Layer = (*ReLU)(nil)

// NewReLU returns a ReLU activation layer.
func NewReLU(name string) *ReLU { return &ReLU{name: name} }

// Name implements Layer.
func (r *ReLU) Name() string { return r.name }

// Params implements Layer.
func (r *ReLU) Params() []*Param { return nil }

// Forward implements Layer.
func (r *ReLU) Forward(ctx *Context, x *tensor.Tensor) (*tensor.Tensor, error) {
	if ctx == nil {
		return nil, fmt.Errorf("nn: relu %q forward needs a context", r.name)
	}
	st := ctx.state(r, func() any { return &reluState{} }).(*reluState)
	out := x.Clone()
	d := out.Data()
	if cap(st.mask) >= len(d) {
		st.mask = st.mask[:len(d)]
	} else {
		st.mask = make([]bool, len(d))
	}
	for i, v := range d {
		if v > 0 {
			st.mask[i] = true
		} else {
			st.mask[i] = false
			d[i] = 0
		}
	}
	return out, nil
}

// ForwardBatch implements Layer: ReLU is element-wise, so the batched pass
// is one clamp sweep over the packed batch. In training contexts the
// batch-wide activation mask is cached for BackwardBatch; inference
// contexts cache nothing.
func (r *ReLU) ForwardBatch(ctx *Context, x *tensor.Tensor) (*tensor.Tensor, error) {
	if ctx == nil {
		return nil, fmt.Errorf("nn: relu %q batched forward needs a context", r.name)
	}
	st := ctx.state(r, func() any { return &reluState{} }).(*reluState)
	out := x.Clone()
	d := out.Data()
	if ctx.Training() {
		if cap(st.bmask) >= len(d) {
			st.bmask = st.bmask[:len(d)]
		} else {
			st.bmask = make([]bool, len(d))
		}
		for i, v := range d {
			if v > 0 {
				st.bmask[i] = true
			} else {
				st.bmask[i] = false
				d[i] = 0
			}
		}
		return out, nil
	}
	st.bmask = nil
	for i, v := range d {
		if !(v > 0) { // matches Forward: non-positive AND NaN clamp to 0
			d[i] = 0
		}
	}
	return out, nil
}

// Backward implements Layer.
func (r *ReLU) Backward(ctx *Context, grad *tensor.Tensor) (*tensor.Tensor, error) {
	if ctx == nil {
		return nil, fmt.Errorf("nn: relu %q backward needs a context", r.name)
	}
	st, ok := ctx.states[r].(*reluState)
	if !ok || st.mask == nil {
		return nil, fmt.Errorf("nn: relu %q backward before forward", r.name)
	}
	if grad.Len() != len(st.mask) {
		return nil, fmt.Errorf("nn: relu %q gradient length %d != cached %d",
			r.name, grad.Len(), len(st.mask))
	}
	dx := grad.Clone()
	d := dx.Data()
	for i, on := range st.mask {
		if !on {
			d[i] = 0
		}
	}
	return dx, nil
}

// BackwardBatch implements Layer: the batch gradient gates on the cached
// batch-wide activation mask.
func (r *ReLU) BackwardBatch(ctx *Context, grad *tensor.Tensor) (*tensor.Tensor, error) {
	if ctx == nil {
		return nil, fmt.Errorf("nn: relu %q batched backward needs a context", r.name)
	}
	st, ok := ctx.states[r].(*reluState)
	if !ok || st.bmask == nil {
		return nil, fmt.Errorf("nn: relu %q batched backward before training-mode batched forward", r.name)
	}
	if grad.Len() != len(st.bmask) {
		return nil, fmt.Errorf("nn: relu %q batch gradient length %d != cached %d",
			r.name, grad.Len(), len(st.bmask))
	}
	dx := grad.Clone()
	d := dx.Data()
	for i, on := range st.bmask {
		if !on {
			d[i] = 0
		}
	}
	return dx, nil
}

// Flatten reshapes a CHW tensor to a flat vector.
type Flatten struct {
	name string
}

// flattenState is the per-context shape cache; dims serves per-sample
// Backward, bdims the batched pass.
type flattenState struct {
	dims  []int
	bdims []int // batch input shape (training contexts only)
}

var _ Layer = (*Flatten)(nil)

// NewFlatten returns a flattening layer.
func NewFlatten(name string) *Flatten { return &Flatten{name: name} }

// Name implements Layer.
func (f *Flatten) Name() string { return f.name }

// Params implements Layer.
func (f *Flatten) Params() []*Param { return nil }

// Forward implements Layer.
func (f *Flatten) Forward(ctx *Context, x *tensor.Tensor) (*tensor.Tensor, error) {
	if ctx == nil {
		return nil, fmt.Errorf("nn: flatten %q forward needs a context", f.name)
	}
	st := ctx.state(f, func() any { return &flattenState{} }).(*flattenState)
	st.dims = x.Shape()
	return x.Reshape(x.Len())
}

// ForwardBatch implements Layer: an (N, C, H, W) batch reshapes to
// (N, C·H·W), one flat row per sample (a view, no copy). In training
// contexts the input shape is cached so BackwardBatch can reverse it.
func (f *Flatten) ForwardBatch(ctx *Context, x *tensor.Tensor) (*tensor.Tensor, error) {
	if ctx == nil {
		return nil, fmt.Errorf("nn: flatten %q batched forward needs a context", f.name)
	}
	if x.Rank() < 2 {
		return nil, fmt.Errorf("nn: flatten %q wants a batch of rank >= 2, got %v", f.name, x.Shape())
	}
	st := ctx.state(f, func() any { return &flattenState{} }).(*flattenState)
	if ctx.Training() {
		st.bdims = x.Shape()
	} else {
		st.bdims = nil
	}
	n := x.Dim(0)
	return x.Reshape(n, x.Len()/n)
}

// Backward implements Layer.
func (f *Flatten) Backward(ctx *Context, grad *tensor.Tensor) (*tensor.Tensor, error) {
	if ctx == nil {
		return nil, fmt.Errorf("nn: flatten %q backward needs a context", f.name)
	}
	st, ok := ctx.states[f].(*flattenState)
	if !ok || st.dims == nil {
		return nil, fmt.Errorf("nn: flatten %q backward before forward", f.name)
	}
	return grad.Reshape(st.dims...)
}

// BackwardBatch implements Layer: the batch gradient reshapes back to the
// cached batch input shape (a view, no copy).
func (f *Flatten) BackwardBatch(ctx *Context, grad *tensor.Tensor) (*tensor.Tensor, error) {
	if ctx == nil {
		return nil, fmt.Errorf("nn: flatten %q batched backward needs a context", f.name)
	}
	st, ok := ctx.states[f].(*flattenState)
	if !ok || st.bdims == nil {
		return nil, fmt.Errorf("nn: flatten %q batched backward before training-mode batched forward", f.name)
	}
	return grad.Reshape(st.bdims...)
}

// Kernel returns the pooling window side.
func (p *MaxPool2D) Kernel() int { return p.k }

// Stride returns the pooling stride.
func (p *MaxPool2D) Stride() int { return p.stride }
