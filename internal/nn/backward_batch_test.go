package nn

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// Golden-equivalence suite for the batch-native backward path: for every
// layer and for whole networks, BackwardBatch after a training-mode
// ForwardBatch must match per-sample Forward+Backward — input gradients
// sample for sample, parameter gradients accumulator for accumulator. The
// pure-Go reductions (bias gradients, mask/argmax routing) are bit-identical
// by construction; the GEMM-shaped dW/dX chains regroup float32 additions,
// so those compare under a scaled 1e-5 tolerance. The whole file runs under
// -race and -tags noasm in CI.

// maxAbs returns the largest absolute element of t.
func maxAbs(t *tensor.Tensor) float32 {
	var m float32
	for _, v := range t.Data() {
		if v < 0 {
			v = -v
		}
		if v > m {
			m = v
		}
	}
	return m
}

// closeGrads compares got against want under batchTol scaled by want's
// magnitude (an absolute 1e-5 for O(1) gradients, relative for the large
// batch-summed dW accumulations whose float32 chains regroup across paths).
func closeGrads(t *testing.T, name string, got, want *tensor.Tensor) {
	t.Helper()
	d, err := got.MaxAbsDiff(want)
	if err != nil {
		t.Fatalf("%s: shapes %v vs %v: %v", name, got.Shape(), want.Shape(), err)
	}
	scale := float64(maxAbs(want))
	if scale < 1 {
		scale = 1
	}
	if d > batchTol*scale {
		t.Fatalf("%s: batched gradient differs from per-sample by %g (scale %g)", name, d, scale)
	}
}

// zeroGrads clears every parameter gradient of l.
func zeroGrads(l Layer) {
	for _, p := range l.Params() {
		p.ZeroGrad()
	}
}

// snapshotGrads clones every parameter gradient of l, in Params order.
func snapshotGrads(l Layer) []*tensor.Tensor {
	var out []*tensor.Tensor
	for _, p := range l.Params() {
		out = append(out, p.Grad.Clone())
	}
	return out
}

// checkBackwardBatchMatches drives one layer through both backward styles
// with the same inputs and output gradients and compares input gradients
// sample for sample and parameter gradients accumulator for accumulator.
func checkBackwardBatchMatches(t *testing.T, layer Layer, xs []*tensor.Tensor, batch *tensor.Tensor) {
	t.Helper()
	n := len(xs)

	// Batched pass: training-mode ForwardBatch caches the backward state.
	bctx := NewContext()
	bctx.SetTraining(true)
	bout, err := layer.ForwardBatch(bctx, batch)
	if err != nil {
		t.Fatalf("%s: batched forward: %v", layer.Name(), err)
	}

	// One random output gradient per sample, packed for the batched call.
	rng := rand.New(rand.NewSource(int64(1000 + n)))
	gs := make([]*tensor.Tensor, n)
	for i := range gs {
		s, err := bout.Sample(i)
		if err != nil {
			t.Fatal(err)
		}
		g := tensor.MustNew(s.Shape()...)
		g.FillUniform(rng, -1, 1)
		gs[i] = g
	}
	gbatch, err := tensor.Stack(gs)
	if err != nil {
		t.Fatal(err)
	}

	zeroGrads(layer)
	bdx, err := layer.BackwardBatch(bctx, gbatch)
	if err != nil {
		t.Fatalf("%s: batched backward: %v", layer.Name(), err)
	}
	bgrads := snapshotGrads(layer)

	// Per-sample reference over the same inputs and gradients.
	zeroGrads(layer)
	ctx := NewContext()
	ctx.SetTraining(true)
	for i, x := range xs {
		if _, err := layer.Forward(ctx, x); err != nil {
			t.Fatalf("%s: per-sample forward %d: %v", layer.Name(), i, err)
		}
		// Per-sample Backward wants the per-sample output shape, which can
		// differ in rank from the batch row (Flatten emits rank-1).
		want, err := layer.Backward(ctx, gs[i])
		if err != nil {
			t.Fatalf("%s: per-sample backward %d: %v", layer.Name(), i, err)
		}
		got, err := bdx.Sample(i)
		if err != nil {
			t.Fatal(err)
		}
		flatGot, err := got.Reshape(got.Len())
		if err != nil {
			t.Fatal(err)
		}
		flatWant, err := want.Reshape(want.Len())
		if err != nil {
			t.Fatal(err)
		}
		closeGrads(t, fmt.Sprintf("%s dX sample %d (batch %d)", layer.Name(), i, n), flatGot, flatWant)
	}
	for pi, p := range layer.Params() {
		closeGrads(t, fmt.Sprintf("%s %s (batch %d)", layer.Name(), p.Name, n), bgrads[pi], p.Grad)
	}
}

func TestBackwardBatchConv2D(t *testing.T) {
	rng := rand.New(rand.NewSource(60))
	for _, tc := range []struct{ inC, outC, k, stride, pad, size int }{
		{3, 8, 3, 1, 1, 12},
		{2, 5, 5, 2, 0, 17},
		{4, 7, 3, 2, 1, 9},
		{1, 4, 2, 2, 0, 8},
	} {
		conv, err := NewConv2D(fmt.Sprintf("conv%dx%d", tc.k, tc.stride), tc.inC, tc.outC,
			tc.k, tc.stride, tc.pad, rng)
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range batchSizes {
			xs, batch := randBatch(t, rng, n, tc.inC, tc.size, tc.size)
			checkBackwardBatchMatches(t, conv, xs, batch)
		}
	}
}

func TestBackwardBatchDense(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	d, err := NewDense("fc", 37, 11, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range batchSizes {
		xs := make([]*tensor.Tensor, n)
		for i := range xs {
			x := tensor.MustNew(37)
			x.FillUniform(rng, -1, 1)
			xs[i] = x
		}
		batch, err := tensor.Stack(xs)
		if err != nil {
			t.Fatal(err)
		}
		checkBackwardBatchMatches(t, d, xs, batch)
	}
}

func TestBackwardBatchReLU(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	r := NewReLU("relu")
	for _, n := range batchSizes {
		xs, batch := randBatch(t, rng, n, 3, 6, 7)
		checkBackwardBatchMatches(t, r, xs, batch)
	}
}

func TestBackwardBatchMaxPool(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	for _, cfg := range [][2]int{{2, 2}, {3, 2}, {3, 3}} {
		p, err := NewMaxPool2D("pool", cfg[0], cfg[1])
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range batchSizes {
			xs, batch := randBatch(t, rng, n, 4, 11, 9)
			checkBackwardBatchMatches(t, p, xs, batch)
		}
	}
}

func TestBackwardBatchLRN(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	l := NewAlexNetLRN("lrn")
	for _, n := range batchSizes {
		xs, batch := randBatch(t, rng, n, 8, 5, 6)
		checkBackwardBatchMatches(t, l, xs, batch)
	}
}

func TestBackwardBatchFlatten(t *testing.T) {
	rng := rand.New(rand.NewSource(65))
	f := NewFlatten("flatten")
	for _, n := range batchSizes {
		xs, batch := randBatch(t, rng, n, 3, 4, 5)
		checkBackwardBatchMatches(t, f, xs, batch)
	}
}

// TestBackwardBatchDropout pins the one stochastic layer. A single dropout
// layer draws its mask element-ascending over the flattened batch — the
// same RNG stream N sequential per-sample passes consume — so with matched
// seeds the masks, outputs and gradients agree exactly.
func TestBackwardBatchDropout(t *testing.T) {
	baseRng := rand.New(rand.NewSource(66))
	d, err := NewDropout("drop", 0.4, baseRng)
	if err != nil {
		t.Fatal(err)
	}
	xs, batch := randBatch(t, baseRng, 5, 2, 3, 4)
	gs, gbatch := randBatch(t, baseRng, 5, 2, 3, 4)

	bctx := NewContext()
	bctx.SetTraining(true)
	bctx.SetRand(rand.New(rand.NewSource(7)))
	if _, err := d.ForwardBatch(bctx, batch); err != nil {
		t.Fatal(err)
	}
	bdx, err := d.BackwardBatch(bctx, gbatch)
	if err != nil {
		t.Fatal(err)
	}

	ctx := NewContext()
	ctx.SetTraining(true)
	ctx.SetRand(rand.New(rand.NewSource(7)))
	for i, x := range xs {
		if _, err := d.Forward(ctx, x); err != nil {
			t.Fatal(err)
		}
		want, err := d.Backward(ctx, gs[i])
		if err != nil {
			t.Fatal(err)
		}
		got, err := bdx.Sample(i)
		if err != nil {
			t.Fatal(err)
		}
		dd, err := got.MaxAbsDiff(want)
		if err != nil {
			t.Fatal(err)
		}
		if dd != 0 {
			t.Fatalf("dropout sample %d: batched gradient differs by %g with matched RNG streams", i, dd)
		}
	}

	// Inference contexts: BackwardBatch is the identity, like Backward.
	ictx := NewContext()
	if _, err := d.ForwardBatch(ictx, batch); err != nil {
		t.Fatal(err)
	}
	idx, err := d.BackwardBatch(ictx, gbatch)
	if err != nil {
		t.Fatal(err)
	}
	if idx != gbatch {
		t.Fatal("inference dropout BackwardBatch is not the identity")
	}
}

// TestBackwardBatchBiasBitIdentical pins the tensor.AddRowSums/AddColSums
// accumulation-order design: bias gradients never pass through a GEMM, so
// batched and per-sample dB must agree bit for bit on EVERY build (asm and
// noasm alike) — each sample's spatial sum is its own float32 chain folded
// into the accumulator in sample order, exactly as N Backward calls fold.
func TestBackwardBatchBiasBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	conv, err := NewConv2D("conv", 3, 6, 3, 1, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	dense, err := NewDense("fc", 40, 9, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, layer := range []Layer{conv, dense} {
		var xs []*tensor.Tensor
		var batch *tensor.Tensor
		if layer == conv {
			xs, batch = randBatch(t, rng, 7, 3, 10, 10)
		} else {
			xs = make([]*tensor.Tensor, 7)
			for i := range xs {
				x := tensor.MustNew(40)
				x.FillUniform(rng, -1, 1)
				xs[i] = x
			}
			var err error
			batch, err = tensor.Stack(xs)
			if err != nil {
				t.Fatal(err)
			}
		}
		bctx := NewContext()
		bctx.SetTraining(true)
		bout, err := layer.ForwardBatch(bctx, batch)
		if err != nil {
			t.Fatal(err)
		}
		gs := make([]*tensor.Tensor, len(xs))
		for i := range gs {
			s, err := bout.Sample(i)
			if err != nil {
				t.Fatal(err)
			}
			g := tensor.MustNew(s.Shape()...)
			g.FillUniform(rng, -1, 1)
			gs[i] = g
		}
		gbatch, err := tensor.Stack(gs)
		if err != nil {
			t.Fatal(err)
		}
		zeroGrads(layer)
		if _, err := layer.BackwardBatch(bctx, gbatch); err != nil {
			t.Fatal(err)
		}
		biasIdx := len(layer.Params()) - 1 // bias is last in Params order
		bdb := layer.Params()[biasIdx].Grad.Clone()

		zeroGrads(layer)
		ctx := NewContext()
		ctx.SetTraining(true)
		for i, x := range xs {
			if _, err := layer.Forward(ctx, x); err != nil {
				t.Fatal(err)
			}
			if _, err := layer.Backward(ctx, gs[i]); err != nil {
				t.Fatal(err)
			}
		}
		want := layer.Params()[biasIdx].Grad
		for i, v := range want.Data() {
			if bdb.Data()[i] != v {
				t.Fatalf("%s bias grad elem %d: batched %v != per-sample %v (must be bit-identical)",
					layer.Name(), i, bdb.Data()[i], v)
			}
		}
	}
}

// TestBackwardBatchSequentialMicro pins the whole micro-AlexNet training
// step: batched forward + batched softmax-cross-entropy + batched backward
// must match the per-sample loop — losses, every parameter gradient, and
// the input gradient.
func TestBackwardBatchSequentialMicro(t *testing.T) {
	rng := rand.New(rand.NewSource(68))
	net, err := NewMicroAlexNet(DefaultMicroConfig(), rng)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultMicroConfig()
	for _, n := range []int{1, 3, 8} {
		xs, batch := randBatch(t, rng, n, 3, cfg.InputSize, cfg.InputSize)
		labels := make([]int, n)
		for i := range labels {
			labels[i] = rng.Intn(cfg.Classes)
		}

		bctx := NewContext()
		bctx.SetTraining(true)
		blogits, err := net.ForwardBatch(bctx, batch)
		if err != nil {
			t.Fatal(err)
		}
		bloss, bgrad, err := CrossEntropyLossBatch(blogits, labels)
		if err != nil {
			t.Fatal(err)
		}
		net.ZeroGrads()
		bdx, err := net.BackwardBatch(bctx, bgrad)
		if err != nil {
			t.Fatal(err)
		}
		var bgrads []*tensor.Tensor
		for _, p := range net.Params() {
			bgrads = append(bgrads, p.Grad.Clone())
		}

		net.ZeroGrads()
		ctx := NewContext()
		ctx.SetTraining(true)
		var loss float64
		for i, x := range xs {
			logits, err := net.Forward(ctx, x)
			if err != nil {
				t.Fatal(err)
			}
			l, g, err := CrossEntropyLoss(logits, labels[i])
			if err != nil {
				t.Fatal(err)
			}
			loss += l
			dx, err := net.Backward(ctx, g)
			if err != nil {
				t.Fatal(err)
			}
			got, err := bdx.Sample(i)
			if err != nil {
				t.Fatal(err)
			}
			closeGrads(t, fmt.Sprintf("micro dX sample %d (batch %d)", i, n), got, dx)
		}
		if d := bloss - loss; d > 1e-6*float64(n) || d < -1e-6*float64(n) {
			t.Fatalf("batch %d: batched loss %v != per-sample sum %v", n, bloss, loss)
		}
		for pi, p := range net.Params() {
			closeGrads(t, fmt.Sprintf("micro %s (batch %d)", p.Name, n), bgrads[pi], p.Grad)
		}
	}
}

// TestCrossEntropyLossBatchMatchesPerSample pins the batched loss bit for
// bit: same softmax rows, same clamp, same float64 summation order.
func TestCrossEntropyLossBatchMatchesPerSample(t *testing.T) {
	rng := rand.New(rand.NewSource(69))
	n, k := 7, 6
	logits := tensor.MustNew(n, k)
	logits.FillUniform(rng, -4, 4)
	labels := make([]int, n)
	for i := range labels {
		labels[i] = rng.Intn(k)
	}
	bloss, bgrad, err := CrossEntropyLossBatch(logits, labels)
	if err != nil {
		t.Fatal(err)
	}
	var loss float64
	for i := 0; i < n; i++ {
		row, err := logits.Sample(i)
		if err != nil {
			t.Fatal(err)
		}
		l, g, err := CrossEntropyLoss(row, labels[i])
		if err != nil {
			t.Fatal(err)
		}
		loss += l
		brow, err := bgrad.Sample(i)
		if err != nil {
			t.Fatal(err)
		}
		for j, v := range g.Data() {
			if brow.Data()[j] != v {
				t.Fatalf("grad row %d elem %d: batched %v != per-sample %v", i, j, brow.Data()[j], v)
			}
		}
	}
	if bloss != loss {
		t.Fatalf("batched loss %v != per-sample sum %v", bloss, loss)
	}

	// Shape errors name the offending dims.
	if _, _, err := CrossEntropyLossBatch(tensor.MustNew(4), nil); err == nil {
		t.Fatal("rank-1 logits accepted")
	}
	if _, _, err := CrossEntropyLossBatch(logits, make([]int, n-1)); err == nil {
		t.Fatal("short label slice accepted")
	}
	labels[2] = k
	if _, _, err := CrossEntropyLossBatch(logits, labels); err == nil {
		t.Fatal("out-of-range label accepted")
	}
}

// TestBackwardBatchShadowGrads pins that BackwardBatch respects the
// context's shadow-gradient accumulators — the mechanism data-parallel
// training uses to stay race-free.
func TestBackwardBatchShadowGrads(t *testing.T) {
	rng := rand.New(rand.NewSource(70))
	d, err := NewDense("fc", 12, 5, rng)
	if err != nil {
		t.Fatal(err)
	}
	xs := make([]*tensor.Tensor, 4)
	for i := range xs {
		x := tensor.MustNew(12)
		x.FillUniform(rng, -1, 1)
		xs[i] = x
	}
	batch, err := tensor.Stack(xs)
	if err != nil {
		t.Fatal(err)
	}
	ctx := NewContext()
	ctx.SetTraining(true)
	ctx.ShadowGrads(true)
	out, err := d.ForwardBatch(ctx, batch)
	if err != nil {
		t.Fatal(err)
	}
	g := tensor.MustNew(out.Shape()...)
	g.FillUniform(rng, -1, 1)
	zeroGrads(d)
	if _, err := d.BackwardBatch(ctx, g); err != nil {
		t.Fatal(err)
	}
	for _, p := range d.Params() {
		if maxAbs(p.Grad) != 0 {
			t.Fatalf("%s: canonical grad written despite shadowing", p.Name)
		}
	}
	if err := ctx.FlushGrads(); err != nil {
		t.Fatal(err)
	}
	var total float32
	for _, p := range d.Params() {
		total += maxAbs(p.Grad)
	}
	if total == 0 {
		t.Fatal("flush produced no gradient")
	}
}

// TestBackwardBatchErrors pins the failure modes: backward before a
// training-mode batched forward, mismatched gradient shapes, nil contexts.
func TestBackwardBatchErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	conv, err := NewConv2D("conv", 3, 4, 3, 1, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDense("fc", 10, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewMaxPool2D("pool", 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	r := NewReLU("relu")
	f := NewFlatten("flatten")
	l := NewAlexNetLRN("lrn")
	grad4 := tensor.MustNew(2, 4, 8, 8)
	for _, layer := range []Layer{conv, d, p, r, f, l} {
		if _, err := layer.BackwardBatch(nil, grad4); err == nil {
			t.Fatalf("%s: nil context accepted", layer.Name())
		}
		if _, err := layer.BackwardBatch(NewContext(), grad4); err == nil && layer != d {
			// Dropout-style identity layers are exempt by design; none here.
			t.Fatalf("%s: batched backward before batched forward accepted", layer.Name())
		}
	}

	// An INFERENCE ForwardBatch must not arm the batch backward cache.
	ictx := NewContext()
	if _, err := conv.ForwardBatch(ictx, tensor.MustNew(2, 3, 8, 8)); err != nil {
		t.Fatal(err)
	}
	if _, err := conv.BackwardBatch(ictx, grad4); err == nil {
		t.Fatal("conv: inference batched forward armed the backward cache")
	}

	// Wrong gradient shape after a proper training forward.
	tctx := NewContext()
	tctx.SetTraining(true)
	if _, err := conv.ForwardBatch(tctx, tensor.MustNew(2, 3, 8, 8)); err != nil {
		t.Fatal(err)
	}
	if _, err := conv.BackwardBatch(tctx, tensor.MustNew(3, 4, 8, 8)); err == nil {
		t.Fatal("conv: wrong batch size in gradient accepted")
	}

	net, err := NewMicroAlexNet(DefaultMicroConfig(), rng)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.BackwardBatch(nil, grad4); err == nil {
		t.Fatal("sequential: nil context accepted")
	}
}

// TestBackwardBatchScratchReuse pins the batch-sized backward scratch: a
// second batched backward through the same context must reuse the grown
// transpose/column buffers rather than reallocating them.
func TestBackwardBatchScratchReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	conv, err := NewConv2D("conv", 3, 8, 3, 1, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	ctx := NewContext()
	ctx.SetTraining(true)
	_, batch := randBatch(t, rng, 8, 3, 16, 16)
	out, err := conv.ForwardBatch(ctx, batch)
	if err != nil {
		t.Fatal(err)
	}
	g := tensor.MustNew(out.Shape()...)
	g.FillUniform(rng, -1, 1)
	if _, err := conv.BackwardBatch(ctx, g); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := conv.BackwardBatch(ctx, g); err != nil {
			t.Fatal(err)
		}
	})
	// One dx tensor per call plus transient GEMM panel-pool churn; the
	// transpose and column scratch must come from the context. Anything
	// near the scratch sizes would blow straight past this bound.
	if allocs > 16 {
		t.Fatalf("batched conv backward allocates %.0f objects per call; scratch not reused", allocs)
	}
}
