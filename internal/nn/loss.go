package nn

import (
	"fmt"
	"math"

	"repro/internal/mathx"
	"repro/internal/tensor"
)

// Softmax returns the softmax distribution over a flat logits tensor.
func Softmax(logits *tensor.Tensor) ([]float32, error) {
	if logits.Rank() != 1 {
		return nil, fmt.Errorf("nn: softmax wants a flat logits tensor, got %v", logits.Shape())
	}
	probs := make([]float32, logits.Len())
	if err := mathx.Softmax(probs, logits.Data()); err != nil {
		return nil, fmt.Errorf("nn: softmax: %w", err)
	}
	return probs, nil
}

// CrossEntropyLoss computes softmax cross-entropy for one sample and the
// gradient w.r.t. the logits (p − onehot), the combined form that avoids the
// numerically fragile separate softmax backward.
func CrossEntropyLoss(logits *tensor.Tensor, label int) (loss float64, grad *tensor.Tensor, err error) {
	if logits.Rank() != 1 {
		return 0, nil, fmt.Errorf("nn: loss wants flat logits, got %v", logits.Shape())
	}
	n := logits.Len()
	if label < 0 || label >= n {
		return 0, nil, fmt.Errorf("nn: label %d out of range [0,%d)", label, n)
	}
	probs := make([]float32, n)
	if err := mathx.Softmax(probs, logits.Data()); err != nil {
		return 0, nil, fmt.Errorf("nn: loss softmax: %w", err)
	}
	p := float64(probs[label])
	if p < 1e-30 {
		p = 1e-30
	}
	loss = -math.Log(p)
	grad = tensor.MustNew(n)
	g := grad.Data()
	copy(g, probs)
	g[label] -= 1
	return loss, grad, nil
}

// CrossEntropyLossBatch computes softmax cross-entropy for an (N, K) logits
// batch and the (N, K) gradient w.r.t. the logits. Row i of the gradient is
// exactly CrossEntropyLoss(logits[i], labels[i])'s gradient, and the
// returned loss is the SUM of the per-sample losses (the caller owns the
// 1/N averaging, matching how the trainer folds per-sample losses today) —
// so the batched loss is golden-equivalent to N per-sample calls.
func CrossEntropyLossBatch(logits *tensor.Tensor, labels []int) (loss float64, grad *tensor.Tensor, err error) {
	if logits.Rank() != 2 {
		return 0, nil, fmt.Errorf("nn: batch loss wants (N,K) logits, got %v", logits.Shape())
	}
	n, k := logits.Dim(0), logits.Dim(1)
	if len(labels) != n {
		return 0, nil, fmt.Errorf("nn: batch loss got %d labels for %d logit rows", len(labels), n)
	}
	ld := logits.Data()
	grad = tensor.MustNew(n, k)
	g := grad.Data()
	for i, label := range labels {
		if label < 0 || label >= k {
			return 0, nil, fmt.Errorf("nn: batch loss label %d (row %d) out of range [0,%d)", label, i, k)
		}
		row := g[i*k : (i+1)*k]
		if err := mathx.Softmax(row, ld[i*k:(i+1)*k]); err != nil {
			return 0, nil, fmt.Errorf("nn: batch loss softmax (row %d): %w", i, err)
		}
		p := float64(row[label])
		if p < 1e-30 {
			p = 1e-30
		}
		loss += -math.Log(p)
		row[label] -= 1
	}
	return loss, grad, nil
}

// SoftmaxArgmax returns the softmax distribution over a flat logits tensor
// and its argmax class (ties resolve to the lowest index). It is THE
// logits-to-verdict tail shared by every prediction path — per-sample
// (PredictCtx), batched (infer.PredictBatched rows) and hybrid
// (core's result finishing) — so the batched-equals-per-sample
// equivalence guarantee cannot drift between copies.
func SoftmaxArgmax(logits *tensor.Tensor) (probs []float32, class int, err error) {
	probs, err = Softmax(logits)
	if err != nil {
		return nil, 0, err
	}
	for i, p := range probs {
		if p > probs[class] {
			class = i
		}
	}
	return probs, class, nil
}

// Predict runs an inference forward pass through a fresh context and
// returns the class probabilities and the argmax class. For repeated or
// concurrent prediction, allocate a Context per goroutine and use
// PredictCtx so scratch buffers are reused.
func Predict(net *Sequential, x *tensor.Tensor) (probs []float32, class int, err error) {
	return PredictCtx(NewContext(), net, x)
}

// PredictCtx runs a forward pass through ctx and returns the class
// probabilities and the argmax class.
func PredictCtx(ctx *Context, net *Sequential, x *tensor.Tensor) (probs []float32, class int, err error) {
	logits, err := net.Forward(ctx, x)
	if err != nil {
		return nil, 0, fmt.Errorf("nn: predict forward: %w", err)
	}
	return SoftmaxArgmax(logits)
}
