package nn

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// Golden-equivalence suite for the batch-native forward path: for every
// layer and for whole networks, ForwardBatch over a packed batch must match
// per-sample Forward to 1e-5, for N=1 and for batch sizes that are ragged
// against typical worker counts.

const batchTol = 1e-5

// randBatch builds n random CHW samples plus their NCHW pack.
func randBatch(t testing.TB, rng *rand.Rand, n, c, h, w int) ([]*tensor.Tensor, *tensor.Tensor) {
	t.Helper()
	xs := make([]*tensor.Tensor, n)
	for i := range xs {
		x := tensor.MustNew(c, h, w)
		x.FillUniform(rng, -1, 1)
		xs[i] = x
	}
	batch, err := tensor.Stack(xs)
	if err != nil {
		t.Fatal(err)
	}
	return xs, batch
}

// checkBatchMatches runs layer.Forward per sample and layer.ForwardBatch on
// the pack through independent contexts and compares sample for sample.
func checkBatchMatches(t *testing.T, layer Layer, xs []*tensor.Tensor, batch *tensor.Tensor) {
	t.Helper()
	bctx := NewContext()
	bout, err := layer.ForwardBatch(bctx, batch)
	if err != nil {
		t.Fatalf("%s: batched forward: %v", layer.Name(), err)
	}
	if bout.Dim(0) != len(xs) {
		t.Fatalf("%s: batched output leading dim %d != batch %d", layer.Name(), bout.Dim(0), len(xs))
	}
	ctx := NewContext()
	for i, x := range xs {
		want, err := layer.Forward(ctx, x)
		if err != nil {
			t.Fatalf("%s: per-sample forward %d: %v", layer.Name(), i, err)
		}
		got, err := bout.Sample(i)
		if err != nil {
			t.Fatal(err)
		}
		flatWant, err := want.Reshape(want.Len())
		if err != nil {
			t.Fatal(err)
		}
		flatGot, err := got.Reshape(got.Len())
		if err != nil {
			t.Fatal(err)
		}
		d, err := flatGot.MaxAbsDiff(flatWant)
		if err != nil {
			t.Fatalf("%s sample %d: shapes %v vs %v: %v", layer.Name(), i, got.Shape(), want.Shape(), err)
		}
		if d > batchTol {
			t.Fatalf("%s sample %d: batched differs from per-sample by %g", layer.Name(), i, d)
		}
	}
}

// batchSizes includes N=1 and sizes ragged against 2/4/8-worker pools.
var batchSizes = []int{1, 2, 3, 5, 8, 13}

func TestForwardBatchConv2D(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	for _, tc := range []struct{ inC, outC, k, stride, pad, size int }{
		{3, 8, 3, 1, 1, 12},
		{2, 5, 5, 2, 0, 17},
		{4, 7, 3, 2, 1, 9},
		{1, 4, 2, 2, 0, 8},
	} {
		conv, err := NewConv2D(fmt.Sprintf("conv%dx%d", tc.k, tc.stride), tc.inC, tc.outC,
			tc.k, tc.stride, tc.pad, rng)
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range batchSizes {
			xs, batch := randBatch(t, rng, n, tc.inC, tc.size, tc.size)
			checkBatchMatches(t, conv, xs, batch)
		}
	}
}

func TestForwardBatchDense(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	d, err := NewDense("fc", 37, 11, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range batchSizes {
		xs := make([]*tensor.Tensor, n)
		for i := range xs {
			x := tensor.MustNew(37)
			x.FillUniform(rng, -1, 1)
			xs[i] = x
		}
		batch, err := tensor.Stack(xs)
		if err != nil {
			t.Fatal(err)
		}
		checkBatchMatches(t, d, xs, batch)
	}
}

func TestForwardBatchReLU(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	r := NewReLU("relu")
	for _, n := range batchSizes {
		xs, batch := randBatch(t, rng, n, 3, 6, 7)
		checkBatchMatches(t, r, xs, batch)
	}
}

func TestForwardBatchMaxPool(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for _, cfg := range [][2]int{{2, 2}, {3, 2}, {3, 3}} {
		p, err := NewMaxPool2D("pool", cfg[0], cfg[1])
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range batchSizes {
			xs, batch := randBatch(t, rng, n, 4, 11, 9)
			checkBatchMatches(t, p, xs, batch)
		}
	}
}

func TestForwardBatchLRN(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	l := NewAlexNetLRN("lrn")
	for _, n := range batchSizes {
		xs, batch := randBatch(t, rng, n, 8, 5, 6)
		checkBatchMatches(t, l, xs, batch)
	}
}

func TestForwardBatchFlatten(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	f := NewFlatten("flatten")
	for _, n := range batchSizes {
		xs, batch := randBatch(t, rng, n, 3, 4, 5)
		checkBatchMatches(t, f, xs, batch)
	}
}

func TestForwardBatchDropoutInference(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	d, err := NewDropout("drop", 0.5, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Inference contexts: identity, so batched trivially matches per-sample.
	xs, batch := randBatch(t, rng, 5, 2, 3, 3)
	checkBatchMatches(t, d, xs, batch)

	// Training contexts: the mask is stochastic, so only the keep/scale
	// structure is checkable: every output element is 0 or input/(1-rate).
	ctx := NewContext()
	ctx.SetTraining(true)
	ctx.SetRand(rand.New(rand.NewSource(1)))
	out, err := d.ForwardBatch(ctx, batch)
	if err != nil {
		t.Fatal(err)
	}
	in, od := batch.Data(), out.Data()
	var kept int
	for i := range od {
		switch od[i] {
		case 0:
		case in[i] * 2:
			kept++
		default:
			t.Fatalf("element %d: %v is neither 0 nor 2×%v", i, od[i], in[i])
		}
	}
	if kept == 0 {
		t.Fatal("training dropout kept nothing")
	}
}

// TestForwardBatchSequentialMicro pins the whole micro-AlexNet chain:
// batched pass == per-sample pass through every layer composition.
func TestForwardBatchSequentialMicro(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	net, err := NewMicroAlexNet(DefaultMicroConfig(), rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range batchSizes {
		xs, batch := randBatch(t, rng, n, 3, 32, 32)
		bctx := NewContext()
		bout, err := net.ForwardBatch(bctx, batch)
		if err != nil {
			t.Fatal(err)
		}
		ctx := NewContext()
		for i, x := range xs {
			want, err := net.Forward(ctx, x)
			if err != nil {
				t.Fatal(err)
			}
			got, err := bout.Sample(i)
			if err != nil {
				t.Fatal(err)
			}
			d, err := got.MaxAbsDiff(want)
			if err != nil {
				t.Fatal(err)
			}
			if d > batchTol {
				t.Fatalf("batch %d sample %d: logits differ by %g", n, i, d)
			}
		}
	}
}

// TestForwardBatchFromMatchesForwardFrom pins the mid-chain entry point the
// hybrid network uses to continue micro-batches past the reliable prefix.
func TestForwardBatchFromMatchesForwardFrom(t *testing.T) {
	rng := rand.New(rand.NewSource(48))
	net, err := NewMicroAlexNet(DefaultMicroConfig(), rng)
	if err != nil {
		t.Fatal(err)
	}
	conv1, err := FirstConv(net)
	if err != nil {
		t.Fatal(err)
	}
	const n = 5
	xs, batch := randBatch(t, rng, n, 3, 32, 32)
	ctx := NewContext()
	// Feature maps after conv1, per sample and packed.
	feats := make([]*tensor.Tensor, n)
	for i, x := range xs {
		f, err := conv1.Forward(ctx, x)
		if err != nil {
			t.Fatal(err)
		}
		feats[i] = f
	}
	fbatch, err := conv1.ForwardBatch(NewContext(), batch)
	if err != nil {
		t.Fatal(err)
	}
	bout, err := net.ForwardBatchFrom(NewContext(), 1, fbatch)
	if err != nil {
		t.Fatal(err)
	}
	for i := range xs {
		want, err := net.ForwardFrom(ctx, 1, feats[i])
		if err != nil {
			t.Fatal(err)
		}
		got, err := bout.Sample(i)
		if err != nil {
			t.Fatal(err)
		}
		d, err := got.MaxAbsDiff(want)
		if err != nil {
			t.Fatal(err)
		}
		if d > batchTol {
			t.Fatalf("sample %d: ForwardBatchFrom differs by %g", i, d)
		}
	}
}

// TestForwardBatchFullAlexNet runs the paper's full AlexNet (227×227, ~60M
// params) batched vs per-sample. Expensive: skipped in -short runs.
func TestForwardBatchFullAlexNet(t *testing.T) {
	if testing.Short() {
		t.Skip("full AlexNet forward is expensive")
	}
	rng := rand.New(rand.NewSource(49))
	net, err := NewAlexNet(6, rng)
	if err != nil {
		t.Fatal(err)
	}
	const n = 2
	xs, batch := randBatch(t, rng, n, 3, AlexNetInputSize, AlexNetInputSize)
	bout, err := net.ForwardBatch(NewContext(), batch)
	if err != nil {
		t.Fatal(err)
	}
	ctx := NewContext()
	for i, x := range xs {
		want, err := net.Forward(ctx, x)
		if err != nil {
			t.Fatal(err)
		}
		got, err := bout.Sample(i)
		if err != nil {
			t.Fatal(err)
		}
		d, err := got.MaxAbsDiff(want)
		if err != nil {
			t.Fatal(err)
		}
		if d > batchTol {
			t.Fatalf("alexnet sample %d: batched logits differ by %g", i, d)
		}
	}
}

// TestForwardBatchScratchReuse pins the batch-sized context scratch: two
// batched conv calls through one context must reuse the grown buffers
// (second call allocates only its output tensor, not fresh im2col scratch).
func TestForwardBatchScratchReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	conv, err := NewConv2D("conv", 3, 8, 3, 1, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	ctx := NewContext()
	_, batch := randBatch(t, rng, 8, 3, 16, 16)
	if _, err := conv.ForwardBatch(ctx, batch); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := conv.ForwardBatch(ctx, batch); err != nil {
			t.Fatal(err)
		}
	})
	// One output tensor (struct + shape + strides + data) per call; the
	// im2col and GEMM scratch must come from the context. Generous bound:
	// anything near the scratch sizes would blow straight past it.
	if allocs > 8 {
		t.Fatalf("batched conv allocates %.0f objects per call; scratch not reused", allocs)
	}
}

func TestForwardBatchShapeErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	conv, err := NewConv2D("conv", 3, 4, 3, 1, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDense("fc", 10, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	ctx := NewContext()
	if _, err := conv.ForwardBatch(ctx, tensor.MustNew(3, 8, 8)); err == nil {
		t.Fatal("conv accepted rank-3 input on the batched path")
	}
	if _, err := conv.ForwardBatch(ctx, tensor.MustNew(2, 5, 8, 8)); err == nil {
		t.Fatal("conv accepted wrong channel count")
	}
	if _, err := conv.ForwardBatch(nil, tensor.MustNew(2, 3, 8, 8)); err == nil {
		t.Fatal("conv accepted nil context")
	}
	if _, err := d.ForwardBatch(ctx, tensor.MustNew(10)); err == nil {
		t.Fatal("dense accepted rank-1 input on the batched path")
	}
	net, err := NewMicroAlexNet(DefaultMicroConfig(), rng)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.ForwardBatch(nil, tensor.MustNew(1, 3, 32, 32)); err == nil {
		t.Fatal("sequential accepted nil context")
	}
	if _, err := net.ForwardBatchFrom(NewContext(), 99, tensor.MustNew(1, 3, 32, 32)); err == nil {
		t.Fatal("sequential accepted out-of-range from index")
	}
}
