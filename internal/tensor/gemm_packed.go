//go:build amd64 && !noasm

package tensor

import "sync"

// Packed-panel loop nest for the SIMD GEMM path.
//
// Structure (BLIS-style, specialised to this package's shapes): the (j, l)
// blocking of the pure-Go kernels is kept — B is carved into
// (gemmBlockK × gemmBlockN) panels — but the panel is now packed into
// NR-wide slivers (kc×16, zero-padded past the matrix edge) and A is packed
// too, into MR-tall slivers (kc×6, zero-padded), gemmBlockMC rows at a
// time so the A block stays L2-resident while the microkernel sweeps it.
// The innermost computation is the register-tiled 6×16 AVX2/FMA microkernel
// in gemm_amd64.s; tiles touching a matrix edge use its masked variant, so
// every C element — interior or edge — is updated by the exact same
// ascending-k FMA chain. That uniformity is what keeps per-sample and
// batched forwards bit-identical to each other on this path (see the
// contract note in gemm_amd64.s).
//
// All four operand layouts (Gemm, GemmTA, GemmTB, and Linear's x·wᵀ) share
// this nest; they differ only in how the A and B slivers are packed.

// gemmBlockMC rows of packed A per inner block: 192×128 float32 = 96 KiB,
// sized to survive in L2 next to the 512 KiB B panel. (gemmMR/gemmNR, the
// microkernel's register tile, are defined next to the dispatch logic in
// matmul.go because the row splitter aligns chunks to gemmMR on every
// build.)
const gemmBlockMC = 192

// gemmPackBuf holds one worker's packing scratch: an A block of up to
// gemmBlockMC (+ sliver padding) rows × gemmBlockK, and a B panel of up to
// gemmBlockK × gemmBlockN (+ sliver padding). Recycled through a sync.Pool
// so concurrent Gemm calls (scheduler workers × intra-GEMM row workers)
// never share a buffer.
type gemmPackBuf struct {
	a []float32
	b []float32
}

var gemmPackBufs = sync.Pool{
	New: func() any {
		return &gemmPackBuf{
			a: make([]float32, (gemmBlockMC+gemmMR)*gemmBlockK),
			b: make([]float32, (gemmBlockN+gemmNR)*gemmBlockK),
		}
	},
}

// gemmMasks[w] selects the first w of 16 lanes; the edge kernel indexes it
// by the tile's valid column count.
var gemmMasks = func() (m [gemmNR + 1][gemmNR]int32) {
	for w := 1; w <= gemmNR; w++ {
		for i := 0; i < w; i++ {
			m[w][i] = -1
		}
	}
	return
}()

// gemmAsmRows updates rows [i0, i1) of dst (m×n, row-major, stride n):
// dst[r] += A[r]·B. A is a (m×k) row-major with stride lda when !aT, or
// (k×m) with stride lda when aT (the GemmTA layout). B is (k×n) with
// stride ldb when !bT, or (n×k) with stride ldb when bT (the GemmTB /
// Linear weight layout). Row ranges from different goroutines may be
// processed concurrently: each call packs into its own pooled scratch and
// writes only its own dst rows.
func gemmAsmRows(dst, a, b []float32, i0, i1, k, n int, lda, ldb int, aT, bT bool) {
	buf := gemmPackBufs.Get().(*gemmPackBuf)
	ap, bp := buf.a, buf.b
	for j0 := 0; j0 < n; j0 += gemmBlockN {
		jw := min(gemmBlockN, n-j0)
		nsJ := (jw + gemmNR - 1) / gemmNR
		for l0 := 0; l0 < k; l0 += gemmBlockK {
			kc := min(gemmBlockK, k-l0)
			if bT {
				gemmPackBT(bp, b, j0, jw, l0, kc, ldb)
			} else {
				gemmPackB(bp, b, j0, jw, l0, kc, ldb)
			}
			for i := i0; i < i1; i += gemmBlockMC {
				mb := min(gemmBlockMC, i1-i)
				if aT {
					gemmPackAT(ap, a, i, mb, l0, kc, lda)
				} else {
					gemmPackA(ap, a, i, mb, l0, kc, lda)
				}
				nsI := (mb + gemmMR - 1) / gemmMR
				for sj := 0; sj < nsJ; sj++ {
					cols := min(gemmNR, jw-sj*gemmNR)
					bsl := &bp[sj*kc*gemmNR]
					cBase := j0 + sj*gemmNR
					for si := 0; si < nsI; si++ {
						rows := min(gemmMR, mb-si*gemmMR)
						asl := &ap[si*kc*gemmMR]
						cp := &dst[(i+si*gemmMR)*n+cBase]
						if rows == gemmMR && cols == gemmNR {
							gemmKernel6x16(cp, asl, bsl, int64(kc), int64(n))
						} else {
							gemmKernel6x16Edge(cp, asl, bsl, int64(kc), int64(n),
								int64(rows), &gemmMasks[cols][0])
						}
					}
				}
			}
		}
	}
	gemmPackBufs.Put(buf)
}

// linearZeroBias backs the nil-bias case of linearAsm: the dot kernel
// unconditionally adds a (masked) bias vector, so a missing bias reads
// zeros.
var linearZeroBias [8]float32

// linearAsm is the SIMD driver for Linear: dst = x·wᵀ + bias, x (n × in),
// w (out × in), dst (n × out), all row-major. It deliberately skips the
// packed GEMM nest — for Linear's shapes (a few batch rows against a weight
// matrix far larger than any cache) packing the weight operand costs more
// than the multiply — and instead sweeps 8-output groups of weight rows
// with the pack-free dot kernel, reusing each group across all n samples so
// the weight matrix streams from memory exactly once per call.
//
// Intra-GEMM parallelism splits the OUTPUT dimension (not the batch: n is
// small here) in kernel-aligned groups of 8; each worker writes disjoint
// dst columns, and the kernel's accumulation chain is position-independent,
// so results are bit-identical for every worker count.
func linearAsm(dst, x, w, bias []float32, n, in, out int) {
	if n == 0 || out == 0 {
		return
	}
	if in == 0 {
		for i := 0; i < n; i++ {
			row := dst[i*out : i*out+out]
			if bias != nil {
				copy(row, bias[:out])
			} else {
				for j := range row {
					row[j] = 0
				}
			}
		}
		return
	}
	kfull := int64(in / 8)
	ktail := int64(in % 8)
	kmask := &gemmMasks[ktail][0]
	gemmSplitRows(out, 8, int64(n)*int64(in)*int64(out), func(o0, o1 int) {
		for o := o0; o < o1; o += 8 {
			rows := min(8, o1-o)
			omask := &gemmMasks[rows][0]
			wp := &w[o*in]
			bp := &linearZeroBias[0]
			if bias != nil {
				bp = &bias[o]
			}
			for i := 0; i < n; i++ {
				linearKernel8(&dst[i*out+o], &x[i*in], wp, bp,
					int64(in), kfull, ktail, int64(rows), kmask, omask)
			}
		}
	})
}

// gemmPackA packs rows [i0, i0+mb) × k range [l0, l0+kc) of a row-major A
// (stride lda) into MR-tall slivers: ap[s][l][r] = A[i0+6s+r][l0+l], with
// the last sliver's missing rows zeroed.
func gemmPackA(ap, a []float32, i0, mb, l0, kc, lda int) {
	ns := (mb + gemmMR - 1) / gemmMR
	for s := 0; s < ns; s++ {
		rows := min(gemmMR, mb-s*gemmMR)
		base := s * kc * gemmMR
		for r := 0; r < rows; r++ {
			src := a[(i0+s*gemmMR+r)*lda+l0:]
			dst := ap[base+r:]
			for l := 0; l < kc; l++ {
				dst[l*gemmMR] = src[l]
			}
		}
		for r := rows; r < gemmMR; r++ {
			dst := ap[base+r:]
			for l := 0; l < kc; l++ {
				dst[l*gemmMR] = 0
			}
		}
	}
}

// gemmPackAT is gemmPackA for the transposed layout (A stored k×m, stride
// lda = m): each k step's six row values are contiguous in the source, so
// packing is a short copy per k.
func gemmPackAT(ap, a []float32, i0, mb, l0, kc, lda int) {
	ns := (mb + gemmMR - 1) / gemmMR
	for s := 0; s < ns; s++ {
		rows := min(gemmMR, mb-s*gemmMR)
		base := s * kc * gemmMR
		col := i0 + s*gemmMR
		for l := 0; l < kc; l++ {
			src := a[(l0+l)*lda+col : (l0+l)*lda+col+rows]
			dst := ap[base+l*gemmMR : base+l*gemmMR+gemmMR]
			copy(dst, src)
			for r := rows; r < gemmMR; r++ {
				dst[r] = 0
			}
		}
	}
}

// gemmPackB packs columns [j0, j0+jw) × k range [l0, l0+kc) of a row-major
// B (k×n, stride ldb) into NR-wide slivers: bp[s][l][c] = B[l0+l][j0+16s+c],
// with the last sliver's missing columns zeroed so the masked kernel can
// run full-width FMAs over it.
func gemmPackB(bp, b []float32, j0, jw, l0, kc, ldb int) {
	ns := (jw + gemmNR - 1) / gemmNR
	for s := 0; s < ns; s++ {
		cols := min(gemmNR, jw-s*gemmNR)
		base := s * kc * gemmNR
		js := j0 + s*gemmNR
		for l := 0; l < kc; l++ {
			src := b[(l0+l)*ldb+js : (l0+l)*ldb+js+cols]
			dst := bp[base+l*gemmNR : base+l*gemmNR+gemmNR]
			copy(dst, src)
			for c := cols; c < gemmNR; c++ {
				dst[c] = 0
			}
		}
	}
}

// gemmPackBT is gemmPackB for the transposed layout (B stored n×k, stride
// ldb = k — the GemmTB operand and the Dense layer's natural weight
// layout): packing reads each source row contiguously and scatters it into
// the sliver's column, fixing the strided re-reads the pre-packing kernels
// paid per output row.
func gemmPackBT(bp, b []float32, j0, jw, l0, kc, ldb int) {
	ns := (jw + gemmNR - 1) / gemmNR
	for s := 0; s < ns; s++ {
		cols := min(gemmNR, jw-s*gemmNR)
		base := s * kc * gemmNR
		for c := 0; c < cols; c++ {
			src := b[(j0+s*gemmNR+c)*ldb+l0:]
			dst := bp[base+c:]
			for l := 0; l < kc; l++ {
				dst[l*gemmNR] = src[l]
			}
		}
		if cols < gemmNR {
			for l := 0; l < kc; l++ {
				row := bp[base+l*gemmNR : base+l*gemmNR+gemmNR]
				for c := cols; c < gemmNR; c++ {
					row[c] = 0
				}
			}
		}
	}
}
