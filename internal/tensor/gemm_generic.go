//go:build !amd64 || noasm

package tensor

// Fallback build (non-amd64 architectures, or `-tags noasm`): the SIMD
// microkernel path is compiled out, gemmAsmActive stays false, and every
// GEMM runs the pure-Go blocked kernels in matmul.go — bit-identical to the
// pre-SIMD implementation. Intra-GEMM row parallelism (SetGemmWorkers)
// still applies; it splits the same scalar kernels across row blocks.

// gemmAsmRows is never reached when gemmAsmActive is false; the stub keeps
// the dispatch sites in matmul.go compiling on every platform.
func gemmAsmRows(dst, a, b []float32, i0, i1, k, n int, lda, ldb int, aT, bT bool) {
	panic("tensor: SIMD gemm kernel called in a noasm build")
}

// linearAsm is the SIMD Linear driver; same never-reached contract as
// gemmAsmRows.
func linearAsm(dst, x, w, bias []float32, n, in, out int) {
	panic("tensor: SIMD linear kernel called in a noasm build")
}
