package tensor

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

// Randomized-shape harness for the GEMM kernel generations. The golden
// contract: whichever inner kernel is active (SIMD microkernel or pure-Go
// fallback — GemmKernel says which; the noasm CI job runs this same file
// against the fallback), every public entry point must match a float64
// schoolbook reference within FMA-rounding tolerance, for ragged shapes
// whose tails are smaller than one register tile, one packed sliver, or
// one cache block. On the SIMD path each result is additionally checked
// against the pure-Go scalar kernel, pinning the two generations together.

// gemmFuzzShapes draws dimension triples biased toward the boundaries
// where the kernels switch behavior: sub-tile tails (< 6 rows, < 16
// columns), sub-panel depths (< 128), and sizes straddling the cache
// blocks (128, 192, 1024).
func gemmFuzzShapes(rng *rand.Rand, n int) [][3]int {
	edges := []int{1, 2, 5, 6, 7, 15, 16, 17, 127, 128, 129, 191, 192, 193}
	draw := func() int {
		if rng.Intn(2) == 0 {
			return edges[rng.Intn(len(edges))]
		}
		return 1 + rng.Intn(260)
	}
	shapes := [][3]int{
		{1, 1, 1}, {6, 16, 16}, {7, 17, 17}, {5, 1030, 15}, {200, 129, 33},
	}
	for len(shapes) < n {
		shapes = append(shapes, [3]int{draw(), draw(), draw()})
	}
	return shapes
}

// gemmFuzzTol scales the comparison tolerance with the accumulation depth:
// inputs are in [-1, 1), so per-element error grows with k times the float32
// epsilon regardless of which kernel ordered the additions.
func gemmFuzzTol(k int) float64 { return 1e-6 * float64(k+32) }

func TestGemmFuzzAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for _, dims := range gemmFuzzShapes(rng, 40) {
		m, k, n := dims[0], dims[1], dims[2]
		a, b := randSlice(rng, m*k), randSlice(rng, k*n)
		got := make([]float32, m*n)
		Gemm(got, a, b, m, k, n)
		want := make([]float32, m*n)
		gemmRef(want, a, b, m, k, n)
		closeSlices(t, "gemm", got, want, gemmFuzzTol(k))

		if gemmAsmActive {
			scalar := make([]float32, m*n)
			gemmAccScalar(scalar, a, b, 0, m, k, n)
			closeSlices(t, "gemm asm-vs-scalar", got, scalar, gemmFuzzTol(k))
		}
	}
}

func TestGemmTAFuzzAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	for _, dims := range gemmFuzzShapes(rng, 25) {
		m, k, n := dims[0], dims[1], dims[2]
		aT, b := randSlice(rng, k*m), randSlice(rng, k*n)
		got := make([]float32, m*n)
		GemmTA(got, aT, b, m, k, n)
		a := make([]float32, m*k)
		for l := 0; l < k; l++ {
			for i := 0; i < m; i++ {
				a[i*k+l] = aT[l*m+i]
			}
		}
		want := make([]float32, m*n)
		gemmRef(want, a, b, m, k, n)
		closeSlices(t, "gemmTA", got, want, gemmFuzzTol(k))

		if gemmAsmActive {
			scalar := make([]float32, m*n)
			gemmTAScalar(scalar, aT, b, 0, m, k, n, m)
			closeSlices(t, "gemmTA asm-vs-scalar", got, scalar, gemmFuzzTol(k))
		}
	}
}

func TestGemmTBFuzzAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	for _, dims := range gemmFuzzShapes(rng, 25) {
		m, k, n := dims[0], dims[1], dims[2]
		a, bT := randSlice(rng, m*k), randSlice(rng, n*k)
		got := make([]float32, m*n)
		GemmTB(got, a, bT, m, k, n)
		b := make([]float32, k*n)
		for j := 0; j < n; j++ {
			for l := 0; l < k; l++ {
				b[l*n+j] = bT[j*k+l]
			}
		}
		want := make([]float32, m*n)
		gemmRef(want, a, b, m, k, n)
		closeSlices(t, "gemmTB", got, want, gemmFuzzTol(k))

		if gemmAsmActive {
			scalar := make([]float32, m*n)
			gemmTBScalar(scalar, a, bT, 0, m, k, n, k)
			closeSlices(t, "gemmTB asm-vs-scalar", got, scalar, gemmFuzzTol(k))
		}
	}
}

func TestLinearFuzzAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(74))
	for si, dims := range gemmFuzzShapes(rng, 25) {
		n, in, out := dims[0], dims[1], dims[2]
		x, w := randSlice(rng, n*in), randSlice(rng, out*in)
		var bias []float32
		if si%2 == 0 {
			bias = randSlice(rng, out)
		}
		got := make([]float32, n*out)
		Linear(got, x, w, bias, n, in, out)
		for i := 0; i < n; i++ {
			for o := 0; o < out; o++ {
				var acc float64
				if bias != nil {
					acc = float64(bias[o])
				}
				for l := 0; l < in; l++ {
					acc += float64(x[i*in+l]) * float64(w[o*in+l])
				}
				g := float64(got[i*out+o])
				if math.Abs(g-acc) > gemmFuzzTol(in) {
					t.Fatalf("linear n=%d in=%d out=%d [%d,%d]: got %v want %v", n, in, out, i, o, g, acc)
				}
			}
		}
		// Per-sample forwards must be exactly the batched rows: the serving
		// plane's sub-batch equivalence rests on this being bitwise.
		row := make([]float32, out)
		for i := 0; i < n; i++ {
			Linear(row, x[i*in:(i+1)*in], w, bias, 1, in, out)
			for o, v := range row {
				if v != got[i*out+o] {
					t.Fatalf("linear n=%d in=%d out=%d row %d col %d: per-sample %v != batched %v",
						n, in, out, i, o, v, got[i*out+o])
				}
			}
		}
	}
}

// TestGemmWorkersBitIdentical pins the intra-GEMM parallelism contract:
// splitting a call's rows (or, for Linear, output columns) across workers
// changes scheduling only, never a single output bit, including worker
// counts that do not divide the dimension.
func TestGemmWorkersBitIdentical(t *testing.T) {
	defer SetGemmWorkers(1)
	rng := rand.New(rand.NewSource(75))
	// Big enough to clear gemmParallelMinWork so the split actually engages.
	m, k, n := 61, 140, 200
	a, b := randSlice(rng, max(m*k, k*m)), randSlice(rng, max(k*n, n*k))
	bias := randSlice(rng, n)

	type variant struct {
		name string
		run  func(dst []float32)
	}
	variants := []variant{
		{"gemm", func(dst []float32) { Gemm(dst, a, b, m, k, n) }},
		{"gemmTA", func(dst []float32) { GemmTA(dst, a, b, m, k, n) }},
		{"gemmTB", func(dst []float32) { GemmTB(dst, a, b, m, k, n) }},
		{"linear", func(dst []float32) { Linear(dst, a, b, bias, m, k, n) }},
	}
	for _, v := range variants {
		SetGemmWorkers(1)
		want := make([]float32, m*n)
		v.run(want)
		for _, workers := range []int{2, 4, 7} {
			SetGemmWorkers(workers)
			got := make([]float32, m*n)
			v.run(got)
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%s workers=%d [%d]: %v != %v (must be bit-identical)",
						v.name, workers, i, got[i], want[i])
				}
			}
		}
	}
}

// TestGemmConcurrentCallsWithWorkers runs many simultaneous GEMMs while
// intra-GEMM splitting is on — scheduler workers × row workers is the
// serving plane's real concurrency shape — and checks every result stays
// bit-identical to the quiet single-threaded run. Under -race this also
// pins the sync.Pool packing-scratch reuse (a shared panel between two
// in-flight calls would be an immediate report).
func TestGemmConcurrentCallsWithWorkers(t *testing.T) {
	defer SetGemmWorkers(1)
	rng := rand.New(rand.NewSource(76))
	m, k, n := 48, 130, 96
	a, b := randSlice(rng, m*k), randSlice(rng, k*n)
	bias := randSlice(rng, n)

	SetGemmWorkers(1)
	wantGemm := make([]float32, m*n)
	Gemm(wantGemm, a, b, m, k, n)
	wantLin := make([]float32, m*n)
	Linear(wantLin, a, b, bias, m, k, n)

	SetGemmWorkers(3)
	var wg sync.WaitGroup
	errs := make(chan string, 16)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for iter := 0; iter < 4; iter++ {
				dst := make([]float32, m*n)
				want := wantGemm
				name := "gemm"
				if (g+iter)%2 == 0 {
					Gemm(dst, a, b, m, k, n)
				} else {
					Linear(dst, a, b, bias, m, k, n)
					want, name = wantLin, "linear"
				}
				for i := range dst {
					if dst[i] != want[i] {
						errs <- name
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for name := range errs {
		t.Errorf("concurrent %s diverged from single-threaded result", name)
	}
}
