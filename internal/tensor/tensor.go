// Package tensor provides the dense float32 tensor substrate used by every
// other package in this repository: the CNN framework (internal/nn), the
// reliable execution engine (internal/reliable), the synthetic dataset
// generator (internal/gtsrb) and the shape qualifier (internal/shape).
//
// Tensors are row-major ("C order"). Convolutional data uses CHW layout
// (channels, height, width) per sample and NCHW for micro-batches (Stack
// packs samples, Sample views them back out). The batched kernels —
// Im2colBatch and Linear — lay a whole micro-batch into one matrix so a
// convolution or dense layer runs as a single blocked GEMM per batch; the
// per-sample entry points are their N=1 cases.
//
// The package is deliberately free of global state: all random fills take an
// explicit *rand.Rand so that every experiment in the repository is
// reproducible from a seed.
package tensor

import (
	"fmt"
	"math"
)

// Tensor is a dense, row-major float32 tensor. The zero value is an empty
// (rank-0, no data) tensor; use New or FromSlice to construct usable values.
type Tensor struct {
	shape   []int
	strides []int
	data    []float32
}

// New returns a zero-filled tensor with the given shape. It returns an error
// if any dimension is negative or the element count overflows int.
func New(shape ...int) (*Tensor, error) {
	n := 1
	for _, d := range shape {
		if d < 0 {
			return nil, fmt.Errorf("tensor: negative dimension %d in shape %v", d, shape)
		}
		if d != 0 && n > math.MaxInt/d {
			return nil, fmt.Errorf("tensor: shape %v overflows element count", shape)
		}
		n *= d
	}
	t := &Tensor{
		shape:   append([]int(nil), shape...),
		strides: stridesFor(shape),
		data:    make([]float32, n),
	}
	return t, nil
}

// MustNew is New but panics on error. It is intended for statically known
// shapes in tests, examples and package-internal constructors.
func MustNew(shape ...int) *Tensor {
	t, err := New(shape...)
	if err != nil {
		panic(err)
	}
	return t
}

// FromSlice wraps data in a tensor of the given shape. The data slice is NOT
// copied; the caller must not alias it unless that sharing is intended. Use
// Clone for an owned copy.
func FromSlice(data []float32, shape ...int) (*Tensor, error) {
	n := 1
	for _, d := range shape {
		if d < 0 {
			return nil, fmt.Errorf("tensor: negative dimension %d in shape %v", d, shape)
		}
		n *= d
	}
	if n != len(data) {
		return nil, fmt.Errorf("tensor: shape %v wants %d elements, got %d", shape, n, len(data))
	}
	return &Tensor{
		shape:   append([]int(nil), shape...),
		strides: stridesFor(shape),
		data:    data,
	}, nil
}

// MustFromSlice is FromSlice but panics on error.
func MustFromSlice(data []float32, shape ...int) *Tensor {
	t, err := FromSlice(data, shape...)
	if err != nil {
		panic(err)
	}
	return t
}

func stridesFor(shape []int) []int {
	s := make([]int, len(shape))
	acc := 1
	for i := len(shape) - 1; i >= 0; i-- {
		s[i] = acc
		acc *= shape[i]
	}
	return s
}

// Shape returns a copy of the tensor's shape.
func (t *Tensor) Shape() []int { return append([]int(nil), t.shape...) }

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.shape) }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// Len returns the total number of elements.
func (t *Tensor) Len() int { return len(t.data) }

// Data returns the underlying storage. The slice is shared with the tensor;
// mutating it mutates the tensor. This is the intended fast path for the
// convolution kernels.
func (t *Tensor) Data() []float32 { return t.data }

// SameShape reports whether t and o have identical shapes.
func (t *Tensor) SameShape(o *Tensor) bool {
	if len(t.shape) != len(o.shape) {
		return false
	}
	for i, d := range t.shape {
		if o.shape[i] != d {
			return false
		}
	}
	return true
}

// offset computes the linear offset of a multi-index. It panics on rank
// mismatch or out-of-range indices (programming errors, not runtime inputs).
func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index rank %d != tensor rank %d", len(idx), len(t.shape)))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.shape))
		}
		off += x * t.strides[i]
	}
	return off
}

// At returns the element at the given multi-index.
func (t *Tensor) At(idx ...int) float32 { return t.data[t.offset(idx)] }

// Set stores v at the given multi-index.
func (t *Tensor) Set(v float32, idx ...int) { t.data[t.offset(idx)] = v }

// At3 is a fast-path accessor for rank-3 (CHW) tensors.
func (t *Tensor) At3(c, h, w int) float32 {
	return t.data[c*t.strides[0]+h*t.strides[1]+w]
}

// Set3 is a fast-path setter for rank-3 (CHW) tensors.
func (t *Tensor) Set3(v float32, c, h, w int) {
	t.data[c*t.strides[0]+h*t.strides[1]+w] = v
}

// At4 is a fast-path accessor for rank-4 (NCHW / FCHW filter bank) tensors.
func (t *Tensor) At4(n, c, h, w int) float32 {
	return t.data[n*t.strides[0]+c*t.strides[1]+h*t.strides[2]+w]
}

// Set4 is a fast-path setter for rank-4 tensors.
func (t *Tensor) Set4(v float32, n, c, h, w int) {
	t.data[n*t.strides[0]+c*t.strides[1]+h*t.strides[2]+w] = v
}

// Clone returns a deep copy of t.
func (t *Tensor) Clone() *Tensor {
	c := &Tensor{
		shape:   append([]int(nil), t.shape...),
		strides: append([]int(nil), t.strides...),
		data:    append([]float32(nil), t.data...),
	}
	return c
}

// CopyFrom copies o's data into t. The shapes must match exactly.
func (t *Tensor) CopyFrom(o *Tensor) error {
	if !t.SameShape(o) {
		return fmt.Errorf("tensor: copy shape mismatch %v != %v", t.shape, o.shape)
	}
	copy(t.data, o.data)
	return nil
}

// Reshape returns a view of t with a new shape covering the same data. The
// element counts must match. The returned tensor shares storage with t.
func (t *Tensor) Reshape(shape ...int) (*Tensor, error) {
	n := 1
	for _, d := range shape {
		if d < 0 {
			return nil, fmt.Errorf("tensor: negative dimension %d in reshape to %v", d, shape)
		}
		n *= d
	}
	if n != len(t.data) {
		return nil, fmt.Errorf("tensor: cannot reshape %v (%d elems) to %v (%d elems)",
			t.shape, len(t.data), shape, n)
	}
	return &Tensor{
		shape:   append([]int(nil), shape...),
		strides: stridesFor(shape),
		data:    t.data,
	}, nil
}

// Channel returns a rank-2 view (H, W) of channel c of a rank-3 CHW tensor.
// The view shares storage with t.
func (t *Tensor) Channel(c int) (*Tensor, error) {
	if len(t.shape) != 3 {
		return nil, fmt.Errorf("tensor: Channel needs rank-3 CHW tensor, got rank %d", len(t.shape))
	}
	if c < 0 || c >= t.shape[0] {
		return nil, fmt.Errorf("tensor: channel %d out of range [0,%d)", c, t.shape[0])
	}
	hw := t.shape[1] * t.shape[2]
	return &Tensor{
		shape:   []int{t.shape[1], t.shape[2]},
		strides: []int{t.shape[2], 1},
		data:    t.data[c*hw : (c+1)*hw],
	}, nil
}

// Filter returns a rank-3 view (C, H, W) of filter f of a rank-4 FCHW filter
// bank. The view shares storage with t.
func (t *Tensor) Filter(f int) (*Tensor, error) {
	if len(t.shape) != 4 {
		return nil, fmt.Errorf("tensor: Filter needs rank-4 FCHW tensor, got rank %d", len(t.shape))
	}
	if f < 0 || f >= t.shape[0] {
		return nil, fmt.Errorf("tensor: filter %d out of range [0,%d)", f, t.shape[0])
	}
	chw := t.shape[1] * t.shape[2] * t.shape[3]
	return &Tensor{
		shape:   []int{t.shape[1], t.shape[2], t.shape[3]},
		strides: stridesFor(t.shape[1:]),
		data:    t.data[f*chw : (f+1)*chw],
	}, nil
}

// Stack copies equal-shaped tensors into one new tensor with a leading batch
// dimension: n inputs of shape (d₀,…) become (n, d₀, …). It is the packing
// step of the batch-native forward path — per-sample CHW images become the
// NCHW micro-batch one GEMM per layer consumes. The data is copied, so the
// result does not alias the inputs.
func Stack(ts []*Tensor) (*Tensor, error) {
	if len(ts) == 0 {
		return nil, fmt.Errorf("tensor: stack needs at least one tensor")
	}
	for i, t := range ts {
		if t == nil {
			return nil, fmt.Errorf("tensor: stack input %d is nil", i)
		}
		if !ts[0].SameShape(t) {
			return nil, fmt.Errorf("tensor: stack shape mismatch at input %d: %v != %v",
				i, t.shape, ts[0].shape)
		}
	}
	out, err := New(append([]int{len(ts)}, ts[0].shape...)...)
	if err != nil {
		return nil, err
	}
	per := ts[0].Len()
	for i, t := range ts {
		copy(out.data[i*per:(i+1)*per], t.data)
	}
	return out, nil
}

// Sample returns a rank-(r−1) view of sample i of a batched tensor (leading
// dimension = batch). The view shares storage with t.
func (t *Tensor) Sample(i int) (*Tensor, error) {
	if len(t.shape) < 2 {
		return nil, fmt.Errorf("tensor: Sample needs rank >= 2 (batch-leading), got shape %v", t.shape)
	}
	if i < 0 || i >= t.shape[0] {
		return nil, fmt.Errorf("tensor: sample %d out of range [0,%d) for shape %v", i, t.shape[0], t.shape)
	}
	per := 1
	for _, d := range t.shape[1:] {
		per *= d
	}
	return &Tensor{
		shape:   append([]int(nil), t.shape[1:]...),
		strides: stridesFor(t.shape[1:]),
		data:    t.data[i*per : (i+1)*per],
	}, nil
}

// String renders a compact description (not the full contents) suitable for
// debugging and layer summaries.
func (t *Tensor) String() string {
	return fmt.Sprintf("Tensor%v(%d elems)", t.shape, len(t.data))
}
