package tensor

import "fmt"

// Im2col / Col2im lower 2-D convolution onto GEMM: each k×k receptive field
// of a CHW input becomes one column of a (C·k·k) × (outH·outW) matrix, so
// the convolution with an (F, C, k, k) filter bank is a single
// (F) × (C·k·k) · (C·k·k) × (outH·outW) matrix product.
//
// Both functions are allocation-free over caller-provided slices and carry no
// state, so they are safe for concurrent use with per-caller buffers.

// ConvOut returns the output spatial extent of a convolution of kernel k
// with the given stride and padding over an input extent of in, or 0 if the
// kernel does not fit (in+2·pad < k). The explicit fit check matters:
// Go's truncating division would otherwise map a negative numerator to
// extent 1 and silently convolve past the input's edge.
func ConvOut(in, k, stride, pad int) int {
	if in+2*pad < k {
		return 0
	}
	return (in+2*pad-k)/stride + 1
}

// Im2col expands the CHW input src (c×h×w) into dst as a row-major
// (c·k·k) × (outH·outW) matrix, where row (ch·k+ky)·k+kx holds the input
// value each output position sees through kernel tap (ch, ky, kx); padding
// positions are zero. dst must hold c·k·k·outH·outW elements (use ConvOut
// for the output extents); it returns an error otherwise.
func Im2col(dst, src []float32, c, h, w, k, stride, pad int) error {
	outH := ConvOut(h, k, stride, pad)
	outW := ConvOut(w, k, stride, pad)
	if outH < 1 || outW < 1 {
		return fmt.Errorf("tensor: im2col kernel %d (stride %d, pad %d) does not fit input %dx%d",
			k, stride, pad, h, w)
	}
	n := outH * outW
	if len(dst) < c*k*k*n {
		return fmt.Errorf("tensor: im2col dst length %d < %d", len(dst), c*k*k*n)
	}
	if len(src) < c*h*w {
		return fmt.Errorf("tensor: im2col src length %d < %d", len(src), c*h*w)
	}
	for ch := 0; ch < c; ch++ {
		chBase := ch * h * w
		for ky := 0; ky < k; ky++ {
			for kx := 0; kx < k; kx++ {
				row := dst[((ch*k+ky)*k+kx)*n : ((ch*k+ky)*k+kx)*n+n]
				for oy := 0; oy < outH; oy++ {
					iy := oy*stride - pad + ky
					out := row[oy*outW : (oy+1)*outW]
					if iy < 0 || iy >= h {
						for i := range out {
							out[i] = 0
						}
						continue
					}
					in := src[chBase+iy*w : chBase+(iy+1)*w]
					ix := -pad + kx
					if stride == 1 && ix >= 0 && ix+outW <= w {
						copy(out, in[ix:ix+outW])
						continue
					}
					for ox := 0; ox < outW; ox++ {
						if ix >= 0 && ix < w {
							out[ox] = in[ix]
						} else {
							out[ox] = 0
						}
						ix += stride
					}
				}
			}
		}
	}
	return nil
}

// Col2im scatters a (c·k·k) × (outH·outW) column matrix back onto the CHW
// plane dst (c×h×w), accumulating overlapping contributions — the adjoint of
// Im2col and the heart of the convolution backward pass. dst is accumulated
// into, not cleared; zero it first for a plain gradient.
func Col2im(dst, cols []float32, c, h, w, k, stride, pad int) error {
	outH := ConvOut(h, k, stride, pad)
	outW := ConvOut(w, k, stride, pad)
	if outH < 1 || outW < 1 {
		return fmt.Errorf("tensor: col2im kernel %d (stride %d, pad %d) does not fit input %dx%d",
			k, stride, pad, h, w)
	}
	n := outH * outW
	if len(cols) < c*k*k*n {
		return fmt.Errorf("tensor: col2im cols length %d < %d", len(cols), c*k*k*n)
	}
	if len(dst) < c*h*w {
		return fmt.Errorf("tensor: col2im dst length %d < %d", len(dst), c*h*w)
	}
	for ch := 0; ch < c; ch++ {
		chBase := ch * h * w
		for ky := 0; ky < k; ky++ {
			for kx := 0; kx < k; kx++ {
				row := cols[((ch*k+ky)*k+kx)*n : ((ch*k+ky)*k+kx)*n+n]
				for oy := 0; oy < outH; oy++ {
					iy := oy*stride - pad + ky
					if iy < 0 || iy >= h {
						continue
					}
					out := dst[chBase+iy*w : chBase+(iy+1)*w]
					in := row[oy*outW : (oy+1)*outW]
					ix := -pad + kx
					for ox := 0; ox < outW; ox++ {
						if ix >= 0 && ix < w {
							out[ix] += in[ox]
						}
						ix += stride
					}
				}
			}
		}
	}
	return nil
}
