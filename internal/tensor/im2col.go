package tensor

import "fmt"

// Im2col / Col2im lower 2-D convolution onto GEMM: each k×k receptive field
// of a CHW input becomes one column of a (C·k·k) × (outH·outW) matrix, so
// the convolution with an (F, C, k, k) filter bank is a single
// (F) × (C·k·k) · (C·k·k) × (outH·outW) matrix product. Im2colBatch extends
// the lowering across the batch dimension: all N samples of an NCHW input
// land side by side in ONE (C·k·k) × (N·outH·outW) matrix, so a whole
// micro-batch convolves in a single blocked GEMM per layer. Im2col is the
// N=1 case of that layout.
//
// All functions are allocation-free over caller-provided slices and carry no
// state, so they are safe for concurrent use with per-caller buffers.

// ConvOut returns the output spatial extent of a convolution of kernel k
// with the given stride and padding over an input extent of in, or 0 if the
// kernel does not fit (in+2·pad < k). The explicit fit check matters:
// Go's truncating division would otherwise map a negative numerator to
// extent 1 and silently convolve past the input's edge.
func ConvOut(in, k, stride, pad int) int {
	if in+2*pad < k {
		return 0
	}
	return (in+2*pad-k)/stride + 1
}

// Im2col expands the CHW input src (c×h×w) into dst as a row-major
// (c·k·k) × (outH·outW) matrix, where row (ch·k+ky)·k+kx holds the input
// value each output position sees through kernel tap (ch, ky, kx); padding
// positions are zero. dst must hold c·k·k·outH·outW elements (use ConvOut
// for the output extents); it returns an error otherwise. It is exactly
// Im2colBatch with a batch of one.
func Im2col(dst, src []float32, c, h, w, k, stride, pad int) error {
	return Im2colBatch(dst, src, 1, c, h, w, k, stride, pad)
}

// Im2colBatch expands the NCHW input src (n×c×h×w) into dst as ONE row-major
// (c·k·k) × (n·outH·outW) matrix: row (ch·k+ky)·k+kx holds, for every sample
// s and output position p, the input value sample s's position p sees
// through kernel tap (ch, ky, kx), at column s·outH·outW + p. A convolution
// over the whole batch is then a single
// (F) × (c·k·k) · (c·k·k) × (n·outH·outW) GEMM whose output is F-major
// (F, n, outH·outW) — one contiguous outH·outW run per (filter, sample).
// dst must hold c·k·k·n·outH·outW elements; src n·c·h·w.
func Im2colBatch(dst, src []float32, n, c, h, w, k, stride, pad int) error {
	outH := ConvOut(h, k, stride, pad)
	outW := ConvOut(w, k, stride, pad)
	if outH < 1 || outW < 1 {
		return fmt.Errorf("tensor: im2col kernel %d (stride %d, pad %d) does not fit input %dx%d",
			k, stride, pad, h, w)
	}
	if n < 1 {
		return fmt.Errorf("tensor: im2col batch %d must be >= 1", n)
	}
	hw := outH * outW
	rowLen := n * hw
	if len(dst) < c*k*k*rowLen {
		return fmt.Errorf("tensor: im2col dst length %d < %d for batch %d × (%d,%d,%d) kernel %d stride %d pad %d",
			len(dst), c*k*k*rowLen, n, c, h, w, k, stride, pad)
	}
	if len(src) < n*c*h*w {
		return fmt.Errorf("tensor: im2col src length %d < %d for batch %d × (%d,%d,%d)",
			len(src), n*c*h*w, n, c, h, w)
	}
	for s := 0; s < n; s++ {
		sample := src[s*c*h*w:]
		colOff := s * hw
		for ch := 0; ch < c; ch++ {
			chBase := ch * h * w
			for ky := 0; ky < k; ky++ {
				for kx := 0; kx < k; kx++ {
					rowBase := ((ch*k+ky)*k + kx) * rowLen
					row := dst[rowBase+colOff : rowBase+colOff+hw]
					for oy := 0; oy < outH; oy++ {
						iy := oy*stride - pad + ky
						out := row[oy*outW : (oy+1)*outW]
						if iy < 0 || iy >= h {
							for i := range out {
								out[i] = 0
							}
							continue
						}
						in := sample[chBase+iy*w : chBase+(iy+1)*w]
						ix := -pad + kx
						if stride == 1 && ix >= 0 && ix+outW <= w {
							copy(out, in[ix:ix+outW])
							continue
						}
						for ox := 0; ox < outW; ox++ {
							if ix >= 0 && ix < w {
								out[ox] = in[ix]
							} else {
								out[ox] = 0
							}
							ix += stride
						}
					}
				}
			}
		}
	}
	return nil
}

// Col2im scatters a (c·k·k) × (outH·outW) column matrix back onto the CHW
// plane dst (c×h×w), accumulating overlapping contributions — the adjoint of
// Im2col and the heart of the convolution backward pass. dst is accumulated
// into, not cleared; zero it first for a plain gradient. It is exactly
// Col2imBatch with a batch of one.
func Col2im(dst, cols []float32, c, h, w, k, stride, pad int) error {
	return Col2imBatch(dst, cols, 1, c, h, w, k, stride, pad)
}

// Col2imBatch scatters a batch-wide (c·k·k) × (n·outH·outW) column-gradient
// matrix — the Im2colBatch layout, one GemmTA output for a whole NCHW
// micro-batch — back onto the NCHW plane dst (n×c×h×w), accumulating
// overlapping contributions. It is the adjoint of Im2colBatch and the
// scatter step of the batched convolution backward pass: sample s's columns
// occupy the contiguous column range [s·outH·outW, (s+1)·outH·outW) of every
// row, and scatter only into sample s's CHW plane of dst. Per-element
// accumulation order within a sample is identical to per-sample Col2im.
// dst must hold n·c·h·w elements and is accumulated into, not cleared; zero
// it first for a plain gradient. cols must hold c·k·k·n·outH·outW elements.
func Col2imBatch(dst, cols []float32, n, c, h, w, k, stride, pad int) error {
	outH := ConvOut(h, k, stride, pad)
	outW := ConvOut(w, k, stride, pad)
	if outH < 1 || outW < 1 {
		return fmt.Errorf("tensor: col2im kernel %d (stride %d, pad %d) does not fit input %dx%d",
			k, stride, pad, h, w)
	}
	if n < 1 {
		return fmt.Errorf("tensor: col2im batch %d must be >= 1", n)
	}
	hw := outH * outW
	rowLen := n * hw
	if len(cols) < c*k*k*rowLen {
		return fmt.Errorf("tensor: col2im cols length %d < %d for batch %d × (%d,%d,%d) kernel %d stride %d pad %d",
			len(cols), c*k*k*rowLen, n, c, h, w, k, stride, pad)
	}
	if len(dst) < n*c*h*w {
		return fmt.Errorf("tensor: col2im dst length %d < %d for batch %d × (%d,%d,%d)",
			len(dst), n*c*h*w, n, c, h, w)
	}
	for s := 0; s < n; s++ {
		sample := dst[s*c*h*w:]
		colOff := s * hw
		for ch := 0; ch < c; ch++ {
			chBase := ch * h * w
			for ky := 0; ky < k; ky++ {
				for kx := 0; kx < k; kx++ {
					rowBase := ((ch*k+ky)*k + kx) * rowLen
					row := cols[rowBase+colOff : rowBase+colOff+hw]
					for oy := 0; oy < outH; oy++ {
						iy := oy*stride - pad + ky
						if iy < 0 || iy >= h {
							continue
						}
						out := sample[chBase+iy*w : chBase+(iy+1)*w]
						in := row[oy*outW : (oy+1)*outW]
						ix := -pad + kx
						for ox := 0; ox < outW; ox++ {
							if ix >= 0 && ix < w {
								out[ix] += in[ox]
							}
							ix += stride
						}
					}
				}
			}
		}
	}
	return nil
}
