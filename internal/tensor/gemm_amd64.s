//go:build amd64 && !noasm

#include "textflag.h"

// AVX2/FMA register-tiled GEMM microkernels over packed panels.
//
// Both kernels compute a 6×16 tile of C += A·B from an A sliver packed as
// kc×6 (six A values per k step, contiguous) and a B sliver packed as kc×16
// (sixteen B values per k step, contiguous, zero-padded past the matrix
// edge). The 12 accumulator registers Y0–Y11 hold the tile (two YMM per
// row); Y12/Y13 carry the current B row and Y14/Y15 the broadcast A values.
//
// Numerical contract (load-bearing — the bit-equality tests in
// internal/core depend on it): every C element is updated as a single
// FMA chain in ascending k order, seeded from the element's prior value.
// The chain is identical for the full and the masked kernel and does not
// depend on the tile's position, the matrix width, or the number of GEMM
// workers, so per-sample and batched forwards stay bit-identical to each
// other on the SIMD path (they differ from the pure-Go path only by the
// FMA's fused rounding).

// func gemmKernel6x16(c, a, b *float32, kc, ldc int64)
// Full-tile kernel: all 6 rows and 16 columns of C are in range.
// ldc is C's row stride in float32 elements.
TEXT ·gemmKernel6x16(SB), NOSPLIT, $0-40
	MOVQ c+0(FP), DI
	MOVQ a+8(FP), SI
	MOVQ b+16(FP), BX
	MOVQ kc+24(FP), CX
	MOVQ ldc+32(FP), DX
	SHLQ $2, DX            // row stride in bytes
	LEAQ (DI)(DX*1), R8    // row 1
	LEAQ (DI)(DX*2), R9    // row 2
	LEAQ (R8)(DX*2), R10   // row 3
	LEAQ (R9)(DX*2), R11   // row 4
	LEAQ (R10)(DX*2), R12  // row 5

	// Seed the accumulators with the existing C tile (C += A·B).
	VMOVUPS (DI), Y0
	VMOVUPS 32(DI), Y1
	VMOVUPS (R8), Y2
	VMOVUPS 32(R8), Y3
	VMOVUPS (R9), Y4
	VMOVUPS 32(R9), Y5
	VMOVUPS (R10), Y6
	VMOVUPS 32(R10), Y7
	VMOVUPS (R11), Y8
	VMOVUPS 32(R11), Y9
	VMOVUPS (R12), Y10
	VMOVUPS 32(R12), Y11

kloop:
	VMOVUPS (BX), Y12      // B[l][0:8]
	VMOVUPS 32(BX), Y13    // B[l][8:16]
	VBROADCASTSS (SI), Y14
	VBROADCASTSS 4(SI), Y15
	VFMADD231PS Y12, Y14, Y0
	VFMADD231PS Y13, Y14, Y1
	VFMADD231PS Y12, Y15, Y2
	VFMADD231PS Y13, Y15, Y3
	VBROADCASTSS 8(SI), Y14
	VBROADCASTSS 12(SI), Y15
	VFMADD231PS Y12, Y14, Y4
	VFMADD231PS Y13, Y14, Y5
	VFMADD231PS Y12, Y15, Y6
	VFMADD231PS Y13, Y15, Y7
	VBROADCASTSS 16(SI), Y14
	VBROADCASTSS 20(SI), Y15
	VFMADD231PS Y12, Y14, Y8
	VFMADD231PS Y13, Y14, Y9
	VFMADD231PS Y12, Y15, Y10
	VFMADD231PS Y13, Y15, Y11
	ADDQ $24, SI           // 6 floats per k step
	ADDQ $64, BX           // 16 floats per k step
	DECQ CX
	JNZ  kloop

	VMOVUPS Y0, (DI)
	VMOVUPS Y1, 32(DI)
	VMOVUPS Y2, (R8)
	VMOVUPS Y3, 32(R8)
	VMOVUPS Y4, (R9)
	VMOVUPS Y5, 32(R9)
	VMOVUPS Y6, (R10)
	VMOVUPS Y7, 32(R10)
	VMOVUPS Y8, (R11)
	VMOVUPS Y9, 32(R11)
	VMOVUPS Y10, (R12)
	VMOVUPS Y11, 32(R12)
	VZEROUPPER
	RET

// func gemmKernel6x16Edge(c, a, b *float32, kc, ldc, mr int64, mask *int32)
// Edge-tile kernel: mr (1..6) valid rows, and the 16-lane column mask
// selects the valid columns (the packed B sliver is zero-padded past the
// edge, so masked-out lanes never contaminate live ones). Loads and stores
// of C touch only valid rows and masked columns; the FMA chain per live
// element is identical to the full kernel's.
TEXT ·gemmKernel6x16Edge(SB), NOSPLIT, $0-56
	MOVQ c+0(FP), DI
	MOVQ a+8(FP), SI
	MOVQ b+16(FP), BX
	MOVQ kc+24(FP), CX
	MOVQ ldc+32(FP), DX
	MOVQ mr+40(FP), AX
	MOVQ mask+48(FP), R15
	SHLQ $2, DX
	LEAQ (DI)(DX*1), R8
	LEAQ (DI)(DX*2), R9
	LEAQ (R8)(DX*2), R10
	LEAQ (R9)(DX*2), R11
	LEAQ (R10)(DX*2), R12

	VMOVUPS (R15), Y14     // column mask, lanes 0–7
	VMOVUPS 32(R15), Y15   // column mask, lanes 8–15
	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	VXORPS Y2, Y2, Y2
	VXORPS Y3, Y3, Y3
	VXORPS Y4, Y4, Y4
	VXORPS Y5, Y5, Y5
	VXORPS Y6, Y6, Y6
	VXORPS Y7, Y7, Y7
	VXORPS Y8, Y8, Y8
	VXORPS Y9, Y9, Y9
	VXORPS Y10, Y10, Y10
	VXORPS Y11, Y11, Y11

	// Masked loads for the valid rows only (mr >= 1 always).
	VMASKMOVPS (DI), Y14, Y0
	VMASKMOVPS 32(DI), Y15, Y1
	CMPQ AX, $1
	JLE  body
	VMASKMOVPS (R8), Y14, Y2
	VMASKMOVPS 32(R8), Y15, Y3
	CMPQ AX, $2
	JLE  body
	VMASKMOVPS (R9), Y14, Y4
	VMASKMOVPS 32(R9), Y15, Y5
	CMPQ AX, $3
	JLE  body
	VMASKMOVPS (R10), Y14, Y6
	VMASKMOVPS 32(R10), Y15, Y7
	CMPQ AX, $4
	JLE  body
	VMASKMOVPS (R11), Y14, Y8
	VMASKMOVPS 32(R11), Y15, Y9
	CMPQ AX, $5
	JLE  body
	VMASKMOVPS (R12), Y14, Y10
	VMASKMOVPS 32(R12), Y15, Y11

body:
	VMOVUPS (BX), Y12
	VMOVUPS 32(BX), Y13
	VBROADCASTSS (SI), Y14
	VBROADCASTSS 4(SI), Y15
	VFMADD231PS Y12, Y14, Y0
	VFMADD231PS Y13, Y14, Y1
	VFMADD231PS Y12, Y15, Y2
	VFMADD231PS Y13, Y15, Y3
	VBROADCASTSS 8(SI), Y14
	VBROADCASTSS 12(SI), Y15
	VFMADD231PS Y12, Y14, Y4
	VFMADD231PS Y13, Y14, Y5
	VFMADD231PS Y12, Y15, Y6
	VFMADD231PS Y13, Y15, Y7
	VBROADCASTSS 16(SI), Y14
	VBROADCASTSS 20(SI), Y15
	VFMADD231PS Y12, Y14, Y8
	VFMADD231PS Y13, Y14, Y9
	VFMADD231PS Y12, Y15, Y10
	VFMADD231PS Y13, Y15, Y11
	ADDQ $24, SI
	ADDQ $64, BX
	DECQ CX
	JNZ  body

	// Masked stores mirror the masked loads.
	VMOVUPS (R15), Y14
	VMOVUPS 32(R15), Y15
	VMASKMOVPS Y0, Y14, (DI)
	VMASKMOVPS Y1, Y15, 32(DI)
	CMPQ AX, $1
	JLE  done
	VMASKMOVPS Y2, Y14, (R8)
	VMASKMOVPS Y3, Y15, 32(R8)
	CMPQ AX, $2
	JLE  done
	VMASKMOVPS Y4, Y14, (R9)
	VMASKMOVPS Y5, Y15, 32(R9)
	CMPQ AX, $3
	JLE  done
	VMASKMOVPS Y6, Y14, (R10)
	VMASKMOVPS Y7, Y15, 32(R10)
	CMPQ AX, $4
	JLE  done
	VMASKMOVPS Y8, Y14, (R11)
	VMASKMOVPS Y9, Y15, 32(R11)
	CMPQ AX, $5
	JLE  done
	VMASKMOVPS Y10, Y14, (R12)
	VMASKMOVPS Y11, Y15, 32(R12)

done:
	VZEROUPPER
	RET

// func cpuidAsm(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidAsm(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbvAsm() (eax, edx uint32)
TEXT ·xgetbvAsm(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// func linearKernel8(dst, x, w, bias *float32, ldw, kfull, ktail, rows int64, kmask, omask *int32)
// Dense-layer dot kernel: computes 8 consecutive outputs of one sample,
// dst[0:rows] = bias[0:rows] + x·w[r]ᵀ for the 8 weight rows starting at w
// (row stride ldw floats). Used by Linear instead of the packed GEMM
// because its shapes are tall-skinny (a few batch rows against a weight
// matrix that dwarfs every cache): packing B would cost more than the
// multiply, while this kernel streams each weight row exactly once with no
// packing at all.
//
// Numerical contract: each output is 8 lane-partial FMA chains (lane j
// accumulates the l ≡ j (mod 8) terms in ascending l), reduced by a fixed
// hadd tree, plus bias. The chain depends only on the input width, never
// on the batch size or output position, so per-sample and batched Dense
// forwards are bit-identical to each other.
//
// Weight rows past `rows` are clamped to the last valid row (computed but
// masked off at store), so the kernel never reads out of bounds; the x and
// bias tails use masked loads the same way.
TEXT ·linearKernel8(SB), NOSPLIT, $0-80
	MOVQ dst+0(FP), DI
	MOVQ x+8(FP), SI
	MOVQ w+16(FP), R8
	MOVQ ldw+32(FP), DX
	SHLQ $2, DX            // weight row stride in bytes
	MOVQ rows+56(FP), AX

	// Row pointers R8..R15, advancing by ldw only while rows remain; the
	// clamped tail rows alias the last valid row.
	XORQ BX, BX
	CMPQ AX, $2
	MOVQ DX, CX
	CMOVQLT BX, CX
	LEAQ (R8)(CX*1), R9
	CMPQ AX, $3
	MOVQ DX, CX
	CMOVQLT BX, CX
	LEAQ (R9)(CX*1), R10
	CMPQ AX, $4
	MOVQ DX, CX
	CMOVQLT BX, CX
	LEAQ (R10)(CX*1), R11
	CMPQ AX, $5
	MOVQ DX, CX
	CMOVQLT BX, CX
	LEAQ (R11)(CX*1), R12
	CMPQ AX, $6
	MOVQ DX, CX
	CMOVQLT BX, CX
	LEAQ (R12)(CX*1), R13
	CMPQ AX, $7
	MOVQ DX, CX
	CMOVQLT BX, CX
	LEAQ (R13)(CX*1), R14
	CMPQ AX, $8
	MOVQ DX, CX
	CMOVQLT BX, CX
	LEAQ (R14)(CX*1), R15

	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	VXORPS Y2, Y2, Y2
	VXORPS Y3, Y3, Y3
	VXORPS Y4, Y4, Y4
	VXORPS Y5, Y5, Y5
	VXORPS Y6, Y6, Y6
	VXORPS Y7, Y7, Y7

	MOVQ kfull+40(FP), CX
	TESTQ CX, CX
	JZ   ltail

lloop:
	VMOVUPS (SI), Y8
	VFMADD231PS (R8), Y8, Y0
	VFMADD231PS (R9), Y8, Y1
	VFMADD231PS (R10), Y8, Y2
	VFMADD231PS (R11), Y8, Y3
	VFMADD231PS (R12), Y8, Y4
	VFMADD231PS (R13), Y8, Y5
	VFMADD231PS (R14), Y8, Y6
	VFMADD231PS (R15), Y8, Y7
	ADDQ $32, SI
	ADDQ $32, R8
	ADDQ $32, R9
	ADDQ $32, R10
	ADDQ $32, R11
	ADDQ $32, R12
	ADDQ $32, R13
	ADDQ $32, R14
	ADDQ $32, R15
	DECQ CX
	JNZ  lloop

ltail:
	MOVQ ktail+48(FP), CX
	TESTQ CX, CX
	JZ   lreduce
	MOVQ kmask+64(FP), BX
	VMOVUPS (BX), Y9       // 8-lane k-tail mask
	VMASKMOVPS (SI), Y9, Y8
	VMASKMOVPS (R8), Y9, Y10
	VFMADD231PS Y10, Y8, Y0
	VMASKMOVPS (R9), Y9, Y10
	VFMADD231PS Y10, Y8, Y1
	VMASKMOVPS (R10), Y9, Y10
	VFMADD231PS Y10, Y8, Y2
	VMASKMOVPS (R11), Y9, Y10
	VFMADD231PS Y10, Y8, Y3
	VMASKMOVPS (R12), Y9, Y10
	VFMADD231PS Y10, Y8, Y4
	VMASKMOVPS (R13), Y9, Y10
	VFMADD231PS Y10, Y8, Y5
	VMASKMOVPS (R14), Y9, Y10
	VFMADD231PS Y10, Y8, Y6
	VMASKMOVPS (R15), Y9, Y10
	VFMADD231PS Y10, Y8, Y7

lreduce:
	// Fixed reduction tree: each output's lanes fold as
	// ((p0+p1)+(p2+p3)) + ((p4+p5)+(p6+p7)).
	VHADDPS Y1, Y0, Y0
	VHADDPS Y3, Y2, Y2
	VHADDPS Y5, Y4, Y4
	VHADDPS Y7, Y6, Y6
	VHADDPS Y2, Y0, Y0     // low128 = outs 0-3 lane-lows, high128 = lane-highs
	VHADDPS Y6, Y4, Y4     // same for outs 4-7
	VPERM2F128 $0x20, Y4, Y0, Y1
	VPERM2F128 $0x31, Y4, Y0, Y2
	VADDPS Y2, Y1, Y0      // [d0..d7]

	MOVQ omask+72(FP), BX
	VMOVUPS (BX), Y9       // 8-lane output mask (rows valid lanes)
	MOVQ bias+24(FP), BX
	VMASKMOVPS (BX), Y9, Y1
	VADDPS Y1, Y0, Y0
	VMASKMOVPS Y0, Y9, (DI)
	VZEROUPPER
	RET
