package tensor

import (
	"fmt"
	"sync"
)

// Blocked GEMM kernels over row-major float32 slices. These are the compute
// substrate of the im2col convolution path (internal/nn) and are written for
// the shapes that path produces: from per-sample matrices a few hundred
// elements per side up to batch-wide matrices whose n dimension spans a
// whole NCHW micro-batch of output positions.
//
// The kernels carry no caller-visible state, so they are safe for concurrent
// use; callers own the slices. (Gemm/GemmAcc recycle their internal packing
// panels through a sync.Pool rather than allocating per call.)
//
// Structure: blocking over (j, l) carves B into (gemmBlockK × gemmBlockN)
// panels; each panel is PACKED once into a dense scratch buffer and then
// reused across every row of A (axpy-style i–l–j sweeps, which the compiler
// turns into bounds-check-free streaming code). Packing is what makes the
// batch-wide GEMMs of the NCHW forward path fast: with all N samples' im2col
// columns in one matrix, B's row stride spans megabytes, and walking 128
// such rows per output row would thrash the TLB; the dense panel costs one
// copy per (j, l) block and turns the hot loop into sequential 512 KiB-
// resident streams. Packing never reorders the per-element accumulation
// (l ascends for every output element), so results are bit-identical to the
// unblocked schoolbook loop evaluated in the same order — and the batched
// forward path is bit-identical to the per-sample one.

const (
	// gemmBlockM is the number of output rows processed per B panel in the
	// transposed kernels (GemmTA), which keep the original i-blocked sweep.
	gemmBlockM = 64
	// gemmBlockK is the depth of the packed B panel.
	gemmBlockK = 128
	// gemmBlockN is the width of the packed B panel. 128×1024 float32 =
	// 512 KiB, sized to survive in L2 across the full sweep of A rows.
	gemmBlockN = 1024
)

// gemmPanels recycles packing buffers across GEMM calls (and goroutines:
// each call Gets its own panel, so the kernels stay concurrency-safe).
var gemmPanels = sync.Pool{
	New: func() any {
		s := make([]float32, gemmBlockK*gemmBlockN)
		return &s
	},
}

// Gemm computes dst = a·b for row-major a (m×k), b (k×n), dst (m×n),
// overwriting dst. Slices must have at least m*k, k*n and m*n elements;
// the function panics otherwise (programming error, not runtime input).
func Gemm(dst, a, b []float32, m, k, n int) {
	checkGemm(len(dst), len(a), len(b), m, k, n)
	for i := range dst[:m*n] {
		dst[i] = 0
	}
	gemmAcc(dst, a, b, m, k, n)
}

// GemmAcc computes dst += a·b with the same layout contract as Gemm.
func GemmAcc(dst, a, b []float32, m, k, n int) {
	checkGemm(len(dst), len(a), len(b), m, k, n)
	gemmAcc(dst, a, b, m, k, n)
}

func gemmAcc(dst, a, b []float32, m, k, n int) {
	pp := gemmPanels.Get().(*[]float32)
	panel := *pp
	for j0 := 0; j0 < n; j0 += gemmBlockN {
		jMax := min(j0+gemmBlockN, n)
		jw := jMax - j0
		for l0 := 0; l0 < k; l0 += gemmBlockK {
			lMax := min(l0+gemmBlockK, k)
			// Pack the (lMax−l0) × jw panel of B densely, once, then reuse
			// it across every row of A.
			for l := l0; l < lMax; l++ {
				copy(panel[(l-l0)*jw:(l-l0)*jw+jw], b[l*n+j0:l*n+jMax])
			}
			for i := 0; i < m; i++ {
				cr := dst[i*n+j0 : i*n+jMax]
				ar := a[i*k+l0 : i*k+lMax]
				for li, av := range ar {
					if av == 0 {
						continue
					}
					br := panel[li*jw : li*jw+jw]
					for j, bv := range br {
						cr[j] += av * bv
					}
				}
			}
		}
	}
	gemmPanels.Put(pp)
}

// GemmTA computes dst += aᵀ·b for row-major a (k×m), b (k×n), dst (m×n).
// This is the dX step of the convolution backward pass
// (columns gradient = Wᵀ · dY).
func GemmTA(dst, a, b []float32, m, k, n int) {
	if len(a) < k*m || len(b) < k*n || len(dst) < m*n {
		panic(fmt.Sprintf("tensor: gemmTA operand lengths (%d,%d,%d) too short for m=%d k=%d n=%d",
			len(dst), len(a), len(b), m, k, n))
	}
	for l0 := 0; l0 < k; l0 += gemmBlockK {
		lMax := min(l0+gemmBlockK, k)
		for i0 := 0; i0 < m; i0 += gemmBlockM {
			iMax := min(i0+gemmBlockM, m)
			for l := l0; l < lMax; l++ {
				ar := a[l*m+i0 : l*m+iMax]
				br := b[l*n : (l+1)*n]
				for ii, av := range ar {
					if av == 0 {
						continue
					}
					cr := dst[(i0+ii)*n : (i0+ii)*n+n]
					for j, bv := range br {
						cr[j] += av * bv
					}
				}
			}
		}
	}
}

// GemmTB computes dst += a·bᵀ for row-major a (m×k), b (n×k), dst (m×n).
// The inner step is a dot product of two contiguous rows, which is the
// dW accumulation of the convolution backward pass (dW += dY · colsᵀ).
func GemmTB(dst, a, b []float32, m, k, n int) {
	if len(a) < m*k || len(b) < n*k || len(dst) < m*n {
		panic(fmt.Sprintf("tensor: gemmTB operand lengths (%d,%d,%d) too short for m=%d k=%d n=%d",
			len(dst), len(a), len(b), m, k, n))
	}
	for i := 0; i < m; i++ {
		ar := a[i*k : (i+1)*k]
		cr := dst[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			br := b[j*k : (j+1)*k]
			var acc float32
			for l, av := range ar {
				acc += av * br[l]
			}
			cr[j] += acc
		}
	}
}

func checkGemm(ld, la, lb, m, k, n int) {
	if m < 0 || k < 0 || n < 0 || la < m*k || lb < k*n || ld < m*n {
		panic(fmt.Sprintf("tensor: gemm operand lengths dst=%d a=%d b=%d too short for (m=%d)×(k=%d)·(k=%d)×(n=%d): need dst≥%d a≥%d b≥%d",
			ld, la, lb, m, k, k, n, m*n, m*k, k*n))
	}
}

// Linear computes dst = x·wᵀ + bias over a whole batch of rows: x is
// row-major (n × in), w is (out × in) — the Dense layer's natural layout —
// bias is (out) or nil, dst is (n × out), overwritten. It is the batched
// dense-layer kernel: the weight-row-outer loop order streams each of the
// out weight rows exactly ONCE per call and reuses it against all n input
// rows, so a micro-batch pays the weight-matrix memory traffic once instead
// of once per sample — the dominant cost of the big fully connected layers,
// whose weights dwarf every cache. For n == 1 the accumulation order is
// identical to the historical per-sample loop (bias first, then ascending
// input index), so per-sample Forward is exactly the N=1 case.
func Linear(dst, x, w, bias []float32, n, in, out int) {
	if n < 0 || in < 0 || out < 0 || len(x) < n*in || len(w) < out*in || len(dst) < n*out ||
		(bias != nil && len(bias) < out) {
		panic(fmt.Sprintf("tensor: linear operand lengths dst=%d x=%d w=%d bias=%d too short for (n=%d)×(in=%d)·(out=%d)×(in=%d): need dst≥%d x≥%d w≥%d",
			len(dst), len(x), len(w), len(bias), n, in, out, in, n*out, n*in, out*in))
	}
	for o := 0; o < out; o++ {
		wr := w[o*in : (o+1)*in]
		var bv float32
		if bias != nil {
			bv = bias[o]
		}
		for i := 0; i < n; i++ {
			xr := x[i*in : (i+1)*in]
			acc := bv
			for l, wv := range wr {
				acc += wv * xr[l]
			}
			dst[i*out+o] = acc
		}
	}
}

// MatMul computes the matrix product of two rank-2 tensors: t (m×k) by
// o (k×n), returning a new (m×n) tensor. It is the tensor-level face of the
// blocked GEMM kernel.
func (t *Tensor) MatMul(o *Tensor) (*Tensor, error) {
	if t.Rank() != 2 || o.Rank() != 2 {
		return nil, fmt.Errorf("tensor: matmul wants rank-2 operands, got %v × %v", t.shape, o.shape)
	}
	m, k := t.shape[0], t.shape[1]
	if o.shape[0] != k {
		return nil, fmt.Errorf("tensor: matmul inner dims mismatch %v × %v", t.shape, o.shape)
	}
	n := o.shape[1]
	out, err := New(m, n)
	if err != nil {
		return nil, err
	}
	Gemm(out.data, t.data, o.data, m, k, n)
	return out, nil
}

// GrowSlice returns buf if it has capacity for n elements (re-sliced to
// length n, contents unspecified) or a freshly allocated slice otherwise.
// It is the reuse primitive behind the per-context scratch buffers.
func GrowSlice(buf []float32, n int) []float32 {
	if cap(buf) >= n {
		return buf[:n]
	}
	return make([]float32, n)
}
