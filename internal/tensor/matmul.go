package tensor

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// GEMM kernels over row-major float32 slices. These are the compute
// substrate of the im2col convolution path (internal/nn) and are written for
// the shapes that path produces: from per-sample matrices a few hundred
// elements per side up to batch-wide matrices whose n dimension spans a
// whole NCHW micro-batch of output positions.
//
// Two kernel generations coexist, selected once at init:
//
//   - SIMD path (amd64 with AVX2+FMA, default build): a register-tiled
//     6×16 microkernel in Go assembly (gemm_amd64.s) over packed A and B
//     panels (gemm_packed.go). Every C element is one ascending-k FMA
//     chain, identical for interior and edge tiles and independent of the
//     matrix width, so per-sample and batched forwards remain bit-identical
//     to EACH OTHER; against the pure-Go path results differ only by the
//     FMA's fused rounding (golden-equivalence-tested to 1e-4).
//   - Pure-Go path (other architectures, CPUs without AVX2/FMA, or the
//     `noasm` build tag): the blocked axpy kernels below, bit-identical to
//     the pre-SIMD implementation. Blocking over (j, l) carves B into
//     (gemmBlockK × gemmBlockN) panels, packed once into a dense scratch
//     buffer and reused across every row of A; packing never reorders the
//     per-element accumulation (l ascends for every output element).
//
// GemmKernel reports which path is active; CPUFeatures what was detected.
//
// The kernels carry no caller-visible state, so they are safe for
// concurrent use; callers own the slices. Packing scratch recycles through
// sync.Pools rather than allocating per call.
//
// A single Gemm/GemmAcc/GemmTA/GemmTB call can additionally split its M
// dimension across a bounded set of worker goroutines (SetGemmWorkers,
// default 1 = off). Rows are independent in every kernel — each output
// element's accumulation chain depends only on its own A row and B column —
// so results are bit-identical for every worker count.

const (
	// gemmBlockM is the number of output rows processed per B panel in the
	// pure-Go transposed kernel (GemmTA), which keeps an i-blocked sweep so
	// the C tile stays cache-resident.
	gemmBlockM = 64
	// gemmBlockK is the depth of the packed B panel.
	gemmBlockK = 128
	// gemmBlockN is the width of the packed B panel. 128×1024 float32 =
	// 512 KiB, sized to survive in L2 across the full sweep of A rows.
	gemmBlockN = 1024
	// gemmMR × gemmNR is the SIMD microkernel's register tile: 6 rows × 16
	// columns = 12 YMM accumulators, the classic AVX2 sgemm shape. The row
	// splitter aligns parallel chunks to gemmMR on every build so the SIMD
	// path's sliver padding stays on real block edges.
	gemmMR = 6
	gemmNR = 16
)

// gemmAsmActive selects the SIMD path; set during init by gemm_amd64.go
// when the CPU supports AVX2+FMA (never set in noasm or non-amd64 builds).
var gemmAsmActive bool

// gemmKernelName and cpuFeatures back GemmKernel and CPUFeatures.
var (
	gemmKernelName = "generic"
	cpuFeatures    = ""
)

// GemmKernel reports the active inner-kernel implementation: "avx2-fma"
// (register-tiled SIMD microkernel) or "generic" (pure-Go blocked kernel,
// also the `noasm` build-tag fallback).
func GemmKernel() string { return gemmKernelName }

// CPUFeatures reports the SIMD features detected at init (e.g.
// "avx,avx2,fma,avx512f"), or "" when detection is unavailable for the
// architecture.
func CPUFeatures() string { return cpuFeatures }

// gemmPanels recycles the pure-Go kernels' packing buffers across GEMM
// calls (and goroutines: each call Gets its own panel, so the kernels stay
// concurrency-safe).
var gemmPanels = sync.Pool{
	New: func() any {
		s := make([]float32, gemmBlockK*gemmBlockN)
		return &s
	},
}

// gemmTokenPool bounds the extra goroutines intra-GEMM parallelism may use
// across ALL concurrent GEMM calls in the process: a call takes tokens
// non-blockingly (running single-threaded if none are free), so scheduler
// workers × GEMM workers can never oversubscribe beyond SetGemmWorkers-1
// extras.
type gemmTokenPool struct{ ch chan struct{} }

var (
	gemmTokens      atomic.Pointer[gemmTokenPool]
	gemmWorkerCount atomic.Int64
)

func init() { gemmWorkerCount.Store(1) }

// SetGemmWorkers bounds how many goroutines a single GEMM call may use by
// splitting its M dimension into row blocks. n <= 1 disables intra-GEMM
// parallelism (the default: at GOMAXPROCS=1 extra workers only add
// scheduling overhead). The bound is process-global and shared by all
// concurrent GEMM calls. Results are bit-identical for every setting.
func SetGemmWorkers(n int) {
	if n < 1 {
		n = 1
	}
	// A runaway flag value should not preallocate a huge token pool; beyond
	// a few times the core count extra workers cannot help anyway.
	if ceil := max(64, 4*runtime.NumCPU()); n > ceil {
		n = ceil
	}
	gemmWorkerCount.Store(int64(n))
	if n == 1 {
		gemmTokens.Store(nil)
		return
	}
	p := &gemmTokenPool{ch: make(chan struct{}, n-1)}
	for i := 0; i < n-1; i++ {
		p.ch <- struct{}{}
	}
	gemmTokens.Store(p)
}

// GemmWorkers reports the current intra-GEMM worker bound.
func GemmWorkers() int { return int(gemmWorkerCount.Load()) }

// gemmParallelMinWork is the m·k·n MAC count below which a GEMM always runs
// single-threaded: goroutine handoff costs ~µs, so sub-megaflop calls lose.
const gemmParallelMinWork = 1 << 20

// gemmSplitRows runs body over [0, m) split into row blocks, using up to
// the globally bounded extra workers. body must be safe for concurrent
// calls on disjoint row ranges (every kernel here is: rows write disjoint
// dst regions and packing scratch is pooled per call). Chunks are aligned
// to align — gemmMR for the GEMM kernels so the SIMD path's sliver padding
// stays on real block edges, 8 for the Linear dot kernel's output groups.
func gemmSplitRows(m, align int, work int64, body func(i0, i1 int)) {
	p := gemmTokens.Load()
	if p == nil || m < 2*align || work < gemmParallelMinWork {
		body(0, m)
		return
	}
	maxExtra := m/align - 1
	extra := 0
	for extra < maxExtra {
		ok := false
		select {
		case <-p.ch:
			ok = true
		default:
		}
		if !ok {
			break
		}
		extra++
	}
	if extra == 0 {
		body(0, m)
		return
	}
	parts := extra + 1
	chunk := (m + parts - 1) / parts
	chunk = (chunk + align - 1) / align * align
	var wg sync.WaitGroup
	for lo := chunk; lo < m; lo += chunk {
		hi := min(lo+chunk, m)
		wg.Add(1)
		go func(i0, i1 int) {
			defer wg.Done()
			body(i0, i1)
		}(lo, hi)
	}
	body(0, min(chunk, m))
	wg.Wait()
	for i := 0; i < extra; i++ {
		p.ch <- struct{}{}
	}
}

// Gemm computes dst = a·b for row-major a (m×k), b (k×n), dst (m×n),
// overwriting dst. Slices must have at least m*k, k*n and m*n elements;
// the function panics otherwise (programming error, not runtime input).
func Gemm(dst, a, b []float32, m, k, n int) {
	checkGemm(len(dst), len(a), len(b), m, k, n)
	for i := range dst[:m*n] {
		dst[i] = 0
	}
	gemmAcc(dst, a, b, m, k, n)
}

// GemmAcc computes dst += a·b with the same layout contract as Gemm.
func GemmAcc(dst, a, b []float32, m, k, n int) {
	checkGemm(len(dst), len(a), len(b), m, k, n)
	gemmAcc(dst, a, b, m, k, n)
}

func gemmAcc(dst, a, b []float32, m, k, n int) {
	if m == 0 || k == 0 || n == 0 {
		return
	}
	gemmSplitRows(m, gemmMR, int64(m)*int64(k)*int64(n), func(i0, i1 int) {
		if gemmAsmActive {
			gemmAsmRows(dst, a, b, i0, i1, k, n, k, n, false, false)
		} else {
			gemmAccScalar(dst, a, b, i0, i1, k, n)
		}
	})
}

// gemmAccScalar is the pure-Go blocked kernel for rows [i0, i1), preserved
// bit-identically from the pre-SIMD implementation: B panels are packed
// densely once per (j, l) block and reused across every A row (axpy-style
// i–l–j sweeps the compiler turns into bounds-check-free streaming code).
// Packing is what makes batch-wide GEMMs fast: with all N samples' im2col
// columns in one matrix, B's row stride spans megabytes, and walking 128
// such rows per output row would thrash the TLB; the dense panel costs one
// copy per (j, l) block and turns the hot loop into sequential 512 KiB-
// resident streams.
func gemmAccScalar(dst, a, b []float32, i0, i1, k, n int) {
	pp := gemmPanels.Get().(*[]float32)
	panel := *pp
	for j0 := 0; j0 < n; j0 += gemmBlockN {
		jMax := min(j0+gemmBlockN, n)
		jw := jMax - j0
		for l0 := 0; l0 < k; l0 += gemmBlockK {
			lMax := min(l0+gemmBlockK, k)
			for l := l0; l < lMax; l++ {
				copy(panel[(l-l0)*jw:(l-l0)*jw+jw], b[l*n+j0:l*n+jMax])
			}
			for i := i0; i < i1; i++ {
				cr := dst[i*n+j0 : i*n+jMax]
				ar := a[i*k+l0 : i*k+lMax]
				for li, av := range ar {
					if av == 0 {
						continue
					}
					br := panel[li*jw : li*jw+jw]
					for j, bv := range br {
						cr[j] += av * bv
					}
				}
			}
		}
	}
	gemmPanels.Put(pp)
}

// GemmTA computes dst += aᵀ·b for row-major a (k×m), b (k×n), dst (m×n).
// This is the dX step of the convolution backward pass
// (columns gradient = Wᵀ · dY).
func GemmTA(dst, a, b []float32, m, k, n int) {
	if m < 0 || k < 0 || n < 0 || len(a) < k*m || len(b) < k*n || len(dst) < m*n {
		panic(fmt.Sprintf("tensor: gemmTA operand lengths (%d,%d,%d) too short for m=%d k=%d n=%d",
			len(dst), len(a), len(b), m, k, n))
	}
	if m == 0 || k == 0 || n == 0 {
		return
	}
	gemmSplitRows(m, gemmMR, int64(m)*int64(k)*int64(n), func(i0, i1 int) {
		if gemmAsmActive {
			gemmAsmRows(dst, a, b, i0, i1, k, n, m, n, true, false)
		} else {
			gemmTAScalar(dst, a, b, i0, i1, k, n, m)
		}
	})
}

// gemmTAScalar now gets the same panel treatment as Gemm: B is carved into
// (gemmBlockK × gemmBlockN) panels packed densely once and swept by
// i-blocks of A columns, instead of re-reading full-width B rows per
// i-block (which, for batch-wide n, re-streamed megabytes of B through L1
// per 64 output rows). Per-element accumulation order is unchanged
// (l ascends for every (i, j)), so results are bit-identical to the
// pre-packing kernel.
func gemmTAScalar(dst, a, b []float32, i0, i1, k, n, lda int) {
	pp := gemmPanels.Get().(*[]float32)
	panel := *pp
	for j0 := 0; j0 < n; j0 += gemmBlockN {
		jMax := min(j0+gemmBlockN, n)
		jw := jMax - j0
		for l0 := 0; l0 < k; l0 += gemmBlockK {
			lMax := min(l0+gemmBlockK, k)
			for l := l0; l < lMax; l++ {
				copy(panel[(l-l0)*jw:(l-l0)*jw+jw], b[l*n+j0:l*n+jMax])
			}
			for ib := i0; ib < i1; ib += gemmBlockM {
				iMax := min(ib+gemmBlockM, i1)
				for l := l0; l < lMax; l++ {
					ar := a[l*lda+ib : l*lda+iMax]
					br := panel[(l-l0)*jw : (l-l0)*jw+jw]
					for ii, av := range ar {
						if av == 0 {
							continue
						}
						cr := dst[(ib+ii)*n+j0 : (ib+ii)*n+jMax]
						for j, bv := range br {
							cr[j] += av * bv
						}
					}
				}
			}
		}
	}
	gemmPanels.Put(pp)
}

// GemmTB computes dst += a·bᵀ for row-major a (m×k), b (n×k), dst (m×n).
// This is the dW accumulation of the convolution backward pass
// (dW += dY · colsᵀ).
func GemmTB(dst, a, b []float32, m, k, n int) {
	if m < 0 || k < 0 || n < 0 || len(a) < m*k || len(b) < n*k || len(dst) < m*n {
		panic(fmt.Sprintf("tensor: gemmTB operand lengths (%d,%d,%d) too short for m=%d k=%d n=%d",
			len(dst), len(a), len(b), m, k, n))
	}
	if m == 0 || k == 0 || n == 0 {
		return
	}
	gemmSplitRows(m, gemmMR, int64(m)*int64(k)*int64(n), func(i0, i1 int) {
		if gemmAsmActive {
			gemmAsmRows(dst, a, b, i0, i1, k, n, k, k, false, true)
		} else {
			gemmTBScalar(dst, a, b, i0, i1, k, n, k)
		}
	})
}

// gemmTBScalar packs bᵀ panels densely (transposing during the pack) and
// then runs the same axpy sweep as Gemm, instead of the old row-dot-product
// loop that re-read all n B rows once per A row — n×k cold streams per
// output row for the big backward dW shapes. The accumulation for each
// element now folds into dst per l step (ascending), which differs from
// the old separate-accumulator dot product by at most rounding; the
// backward-pass consumers are all tolerance-tested.
func gemmTBScalar(dst, a, b []float32, i0, i1, k, n, ldb int) {
	pp := gemmPanels.Get().(*[]float32)
	panel := *pp
	for j0 := 0; j0 < n; j0 += gemmBlockN {
		jMax := min(j0+gemmBlockN, n)
		jw := jMax - j0
		for l0 := 0; l0 < k; l0 += gemmBlockK {
			lMax := min(l0+gemmBlockK, k)
			for jj := 0; jj < jw; jj++ {
				src := b[(j0+jj)*ldb+l0 : (j0+jj)*ldb+lMax]
				for li, v := range src {
					panel[li*jw+jj] = v
				}
			}
			for i := i0; i < i1; i++ {
				cr := dst[i*n+j0 : i*n+jMax]
				ar := a[i*k+l0 : i*k+lMax]
				for li, av := range ar {
					if av == 0 {
						continue
					}
					br := panel[li*jw : li*jw+jw]
					for j, bv := range br {
						cr[j] += av * bv
					}
				}
			}
		}
	}
	gemmPanels.Put(pp)
}

func checkGemm(ld, la, lb, m, k, n int) {
	if m < 0 || k < 0 || n < 0 || la < m*k || lb < k*n || ld < m*n {
		panic(fmt.Sprintf("tensor: gemm operand lengths dst=%d a=%d b=%d too short for (m=%d)×(k=%d)·(k=%d)×(n=%d): need dst≥%d a≥%d b≥%d",
			ld, la, lb, m, k, k, n, m*n, m*k, k*n))
	}
}

// Linear computes dst = x·wᵀ + bias over a whole batch of rows: x is
// row-major (n × in), w is (out × in) — the Dense layer's natural layout —
// bias is (out) or nil, dst is (n × out), overwritten. It is the batched
// dense-layer kernel: a micro-batch pays the weight-matrix memory traffic
// once instead of once per sample — the dominant cost of the big fully
// connected layers, whose weights dwarf every cache.
//
// The SIMD path does NOT reuse the packed GEMM: Linear's shapes are
// tall-skinny (a micro-batch of rows against a weight matrix that dwarfs
// every cache), where packing the 150 MB-class weight operand costs more
// than the multiply itself. Instead a dedicated dot-product microkernel
// (linearKernel8 in gemm_amd64.s) computes 8 outputs × 8 SIMD lanes per
// call with no packing, streaming each weight row exactly once per batch.
// Its per-element accumulation (8 lane-partial FMA chains folded by a fixed
// tree, plus bias) depends only on `in`, never on the batch size, so
// per-sample Forward remains exactly the N=1 case, bitwise. The pure-Go
// path keeps the weight-row-outer loop (bias first, then ascending input
// index), bit-identical to the pre-SIMD implementation.
func Linear(dst, x, w, bias []float32, n, in, out int) {
	if n < 0 || in < 0 || out < 0 || len(x) < n*in || len(w) < out*in || len(dst) < n*out ||
		(bias != nil && len(bias) < out) {
		panic(fmt.Sprintf("tensor: linear operand lengths dst=%d x=%d w=%d bias=%d too short for (n=%d)×(in=%d)·(out=%d)×(in=%d): need dst≥%d x≥%d w≥%d",
			len(dst), len(x), len(w), len(bias), n, in, out, in, n*out, n*in, out*in))
	}
	if gemmAsmActive {
		linearAsm(dst, x, w, bias, n, in, out)
		return
	}
	for o := 0; o < out; o++ {
		wr := w[o*in : (o+1)*in]
		var bv float32
		if bias != nil {
			bv = bias[o]
		}
		for i := 0; i < n; i++ {
			xr := x[i*in : (i+1)*in]
			acc := bv
			for l, wv := range wr {
				acc += wv * xr[l]
			}
			dst[i*out+o] = acc
		}
	}
}

// MatMul computes the matrix product of two rank-2 tensors: t (m×k) by
// o (k×n), returning a new (m×n) tensor. It is the tensor-level face of the
// blocked GEMM kernel.
func (t *Tensor) MatMul(o *Tensor) (*Tensor, error) {
	if t.Rank() != 2 || o.Rank() != 2 {
		return nil, fmt.Errorf("tensor: matmul wants rank-2 operands, got %v × %v", t.shape, o.shape)
	}
	m, k := t.shape[0], t.shape[1]
	if o.shape[0] != k {
		return nil, fmt.Errorf("tensor: matmul inner dims mismatch %v × %v", t.shape, o.shape)
	}
	n := o.shape[1]
	out, err := New(m, n)
	if err != nil {
		return nil, err
	}
	Gemm(out.data, t.data, o.data, m, k, n)
	return out, nil
}

// GrowSlice returns buf if it has capacity for n elements (re-sliced to
// length n, contents unspecified) or a freshly allocated slice otherwise.
// It is the reuse primitive behind the per-context scratch buffers.
func GrowSlice(buf []float32, n int) []float32 {
	if cap(buf) >= n {
		return buf[:n]
	}
	return make([]float32, n)
}
