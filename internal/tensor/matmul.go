package tensor

import "fmt"

// Blocked GEMM kernels over row-major float32 slices. These are the compute
// substrate of the im2col convolution path (internal/nn) and are written for
// the shapes that path produces: tall-skinny and fat-short matrices with a
// few hundred to a few thousand elements per side.
//
// The kernels carry no state and never allocate, so they are safe for
// concurrent use; callers own the slices.
//
// Loop order is i–l–j (axpy style): the innermost loop walks contiguous rows
// of both B and C, which the compiler turns into bounds-check-free streaming
// code. Blocking over (i, l) keeps a panel of B resident in cache while a
// block of A rows is consumed.

const (
	// gemmBlockM is the number of A/C rows processed per B panel.
	gemmBlockM = 64
	// gemmBlockK is the depth of the B panel kept cache-resident.
	gemmBlockK = 128
)

// Gemm computes dst = a·b for row-major a (m×k), b (k×n), dst (m×n),
// overwriting dst. Slices must have at least m*k, k*n and m*n elements;
// the function panics otherwise (programming error, not runtime input).
func Gemm(dst, a, b []float32, m, k, n int) {
	checkGemm(len(dst), len(a), len(b), m, k, n)
	for i := range dst[:m*n] {
		dst[i] = 0
	}
	gemmAcc(dst, a, b, m, k, n)
}

// GemmAcc computes dst += a·b with the same layout contract as Gemm.
func GemmAcc(dst, a, b []float32, m, k, n int) {
	checkGemm(len(dst), len(a), len(b), m, k, n)
	gemmAcc(dst, a, b, m, k, n)
}

func gemmAcc(dst, a, b []float32, m, k, n int) {
	for i0 := 0; i0 < m; i0 += gemmBlockM {
		iMax := min(i0+gemmBlockM, m)
		for l0 := 0; l0 < k; l0 += gemmBlockK {
			lMax := min(l0+gemmBlockK, k)
			for i := i0; i < iMax; i++ {
				cr := dst[i*n : (i+1)*n]
				ar := a[i*k+l0 : i*k+lMax]
				for li, av := range ar {
					if av == 0 {
						continue
					}
					br := b[(l0+li)*n : (l0+li)*n+n]
					for j, bv := range br {
						cr[j] += av * bv
					}
				}
			}
		}
	}
}

// GemmTA computes dst += aᵀ·b for row-major a (k×m), b (k×n), dst (m×n).
// This is the dX step of the convolution backward pass
// (columns gradient = Wᵀ · dY).
func GemmTA(dst, a, b []float32, m, k, n int) {
	if len(a) < k*m || len(b) < k*n || len(dst) < m*n {
		panic(fmt.Sprintf("tensor: gemmTA operand lengths (%d,%d,%d) too short for m=%d k=%d n=%d",
			len(dst), len(a), len(b), m, k, n))
	}
	for l0 := 0; l0 < k; l0 += gemmBlockK {
		lMax := min(l0+gemmBlockK, k)
		for i0 := 0; i0 < m; i0 += gemmBlockM {
			iMax := min(i0+gemmBlockM, m)
			for l := l0; l < lMax; l++ {
				ar := a[l*m+i0 : l*m+iMax]
				br := b[l*n : (l+1)*n]
				for ii, av := range ar {
					if av == 0 {
						continue
					}
					cr := dst[(i0+ii)*n : (i0+ii)*n+n]
					for j, bv := range br {
						cr[j] += av * bv
					}
				}
			}
		}
	}
}

// GemmTB computes dst += a·bᵀ for row-major a (m×k), b (n×k), dst (m×n).
// The inner step is a dot product of two contiguous rows, which is the
// dW accumulation of the convolution backward pass (dW += dY · colsᵀ).
func GemmTB(dst, a, b []float32, m, k, n int) {
	if len(a) < m*k || len(b) < n*k || len(dst) < m*n {
		panic(fmt.Sprintf("tensor: gemmTB operand lengths (%d,%d,%d) too short for m=%d k=%d n=%d",
			len(dst), len(a), len(b), m, k, n))
	}
	for i := 0; i < m; i++ {
		ar := a[i*k : (i+1)*k]
		cr := dst[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			br := b[j*k : (j+1)*k]
			var acc float32
			for l, av := range ar {
				acc += av * br[l]
			}
			cr[j] += acc
		}
	}
}

func checkGemm(ld, la, lb, m, k, n int) {
	if m < 0 || k < 0 || n < 0 || la < m*k || lb < k*n || ld < m*n {
		panic(fmt.Sprintf("tensor: gemm operand lengths (%d,%d,%d) too short for m=%d k=%d n=%d",
			ld, la, lb, m, k, n))
	}
}

// MatMul computes the matrix product of two rank-2 tensors: t (m×k) by
// o (k×n), returning a new (m×n) tensor. It is the tensor-level face of the
// blocked GEMM kernel.
func (t *Tensor) MatMul(o *Tensor) (*Tensor, error) {
	if t.Rank() != 2 || o.Rank() != 2 {
		return nil, fmt.Errorf("tensor: matmul wants rank-2 operands, got %v × %v", t.shape, o.shape)
	}
	m, k := t.shape[0], t.shape[1]
	if o.shape[0] != k {
		return nil, fmt.Errorf("tensor: matmul inner dims mismatch %v × %v", t.shape, o.shape)
	}
	n := o.shape[1]
	out, err := New(m, n)
	if err != nil {
		return nil, err
	}
	Gemm(out.data, t.data, o.data, m, k, n)
	return out, nil
}

// GrowSlice returns buf if it has capacity for n elements (re-sliced to
// length n, contents unspecified) or a freshly allocated slice otherwise.
// It is the reuse primitive behind the per-context scratch buffers.
func GrowSlice(buf []float32, n int) []float32 {
	if cap(buf) >= n {
		return buf[:n]
	}
	return make([]float32, n)
}
