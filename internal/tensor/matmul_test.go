package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// gemmRef is the schoolbook reference the blocked kernels are checked
// against.
func gemmRef(dst, a, b []float32, m, k, n int) {
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var acc float64
			for l := 0; l < k; l++ {
				acc += float64(a[i*k+l]) * float64(b[l*n+j])
			}
			dst[i*n+j] += float32(acc)
		}
	}
}

func randSlice(rng *rand.Rand, n int) []float32 {
	s := make([]float32, n)
	for i := range s {
		s[i] = rng.Float32()*2 - 1
	}
	return s
}

func closeSlices(t *testing.T, name string, got, want []float32, tol float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d != %d", name, len(got), len(want))
	}
	for i := range got {
		if math.Abs(float64(got[i])-float64(want[i])) > tol {
			t.Fatalf("%s[%d]: got %v want %v", name, i, got[i], want[i])
		}
	}
}

func TestGemmAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	// Sizes straddle the block boundaries (64, 128) deliberately.
	for _, dims := range [][3]int{
		{1, 1, 1}, {3, 4, 5}, {64, 128, 7}, {65, 129, 33}, {130, 70, 3}, {16, 300, 50},
	} {
		m, k, n := dims[0], dims[1], dims[2]
		a, b := randSlice(rng, m*k), randSlice(rng, k*n)
		got := make([]float32, m*n)
		want := make([]float32, m*n)
		Gemm(got, a, b, m, k, n)
		gemmRef(want, a, b, m, k, n)
		closeSlices(t, "gemm", got, want, 1e-4)

		// Accumulating variant adds on top of existing contents.
		GemmAcc(got, a, b, m, k, n)
		gemmRef(want, a, b, m, k, n)
		closeSlices(t, "gemmAcc", got, want, 1e-4)
	}
}

func TestGemmTransposedVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, dims := range [][3]int{{3, 4, 5}, {65, 130, 17}, {20, 9, 70}} {
		m, k, n := dims[0], dims[1], dims[2]

		// GemmTA: dst += aᵀ·b with a stored (k×m).
		aT := randSlice(rng, k*m)
		b := randSlice(rng, k*n)
		got := make([]float32, m*n)
		GemmTA(got, aT, b, m, k, n)
		a := make([]float32, m*k)
		for l := 0; l < k; l++ {
			for i := 0; i < m; i++ {
				a[i*k+l] = aT[l*m+i]
			}
		}
		want := make([]float32, m*n)
		gemmRef(want, a, b, m, k, n)
		closeSlices(t, "gemmTA", got, want, 1e-4)

		// GemmTB: dst += a·bᵀ with b stored (n×k).
		bT := randSlice(rng, n*k)
		got2 := make([]float32, m*n)
		GemmTB(got2, a, bT, m, k, n)
		b2 := make([]float32, k*n)
		for j := 0; j < n; j++ {
			for l := 0; l < k; l++ {
				b2[l*n+j] = bT[j*k+l]
			}
		}
		want2 := make([]float32, m*n)
		gemmRef(want2, a, b2, m, k, n)
		closeSlices(t, "gemmTB", got2, want2, 1e-4)
	}
}

func TestMatMulTensor(t *testing.T) {
	a := MustFromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	b := MustFromSlice([]float32{7, 8, 9, 10, 11, 12}, 3, 2)
	c, err := a.MatMul(b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float32{58, 64, 139, 154}
	closeSlices(t, "matmul", c.Data(), want, 0)

	if _, err := a.MatMul(a); err == nil {
		t.Error("expected inner-dimension mismatch error")
	}
	if _, err := MustNew(3).MatMul(b); err == nil {
		t.Error("expected rank error")
	}
}

// im2colRef extracts column (oy, ox), row (ch, ky, kx) by direct indexing.
func im2colRef(src []float32, c, h, w, k, stride, pad int) []float32 {
	outH := ConvOut(h, k, stride, pad)
	outW := ConvOut(w, k, stride, pad)
	n := outH * outW
	dst := make([]float32, c*k*k*n)
	for ch := 0; ch < c; ch++ {
		for ky := 0; ky < k; ky++ {
			for kx := 0; kx < k; kx++ {
				for oy := 0; oy < outH; oy++ {
					for ox := 0; ox < outW; ox++ {
						iy := oy*stride - pad + ky
						ix := ox*stride - pad + kx
						var v float32
						if iy >= 0 && iy < h && ix >= 0 && ix < w {
							v = src[(ch*h+iy)*w+ix]
						}
						dst[((ch*k+ky)*k+kx)*n+oy*outW+ox] = v
					}
				}
			}
		}
	}
	return dst
}

func TestIm2colAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, tc := range [][6]int{
		// c, h, w, k, stride, pad
		{1, 4, 4, 2, 1, 0},
		{3, 8, 7, 3, 1, 1},
		{2, 9, 9, 3, 2, 0},
		{3, 11, 11, 5, 2, 2},
		{4, 6, 6, 1, 1, 0},
	} {
		c, h, w, k, stride, pad := tc[0], tc[1], tc[2], tc[3], tc[4], tc[5]
		src := randSlice(rng, c*h*w)
		want := im2colRef(src, c, h, w, k, stride, pad)
		got := make([]float32, len(want))
		if err := Im2col(got, src, c, h, w, k, stride, pad); err != nil {
			t.Fatal(err)
		}
		closeSlices(t, "im2col", got, want, 0)
	}
}

func TestConvOut(t *testing.T) {
	for _, tc := range []struct{ in, k, stride, pad, want int }{
		{227, 11, 4, 0, 55},
		{5, 3, 1, 1, 5},
		{4, 2, 2, 0, 2},
		// Kernel does not fit: must be 0, NOT the 1 that truncating
		// division of the negative numerator would produce.
		{2, 3, 2, 0, 0},
		{1, 5, 1, 1, 0},
		{2, 3, 1, 1, 2}, // fits only thanks to padding
	} {
		if got := ConvOut(tc.in, tc.k, tc.stride, tc.pad); got != tc.want {
			t.Errorf("ConvOut(%d,%d,%d,%d) = %d, want %d",
				tc.in, tc.k, tc.stride, tc.pad, got, tc.want)
		}
	}
}

func TestIm2colErrors(t *testing.T) {
	if err := Im2col(make([]float32, 1), make([]float32, 4), 1, 2, 2, 3, 1, 0); err == nil {
		t.Error("expected kernel-does-not-fit error")
	}
	if err := Im2col(make([]float32, 1), make([]float32, 16), 1, 4, 4, 2, 1, 0); err == nil {
		t.Error("expected short-dst error")
	}
}

// TestCol2imAdjoint checks the defining adjoint identity
// ⟨Im2col(x), g⟩ = ⟨x, Col2im(g)⟩ on random data.
func TestCol2imAdjoint(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	c, h, w, k, stride, pad := 3, 9, 8, 3, 2, 1
	outH, outW := ConvOut(h, k, stride, pad), ConvOut(w, k, stride, pad)
	n := outH * outW
	x := randSlice(rng, c*h*w)
	g := randSlice(rng, c*k*k*n)

	cols := make([]float32, c*k*k*n)
	if err := Im2col(cols, x, c, h, w, k, stride, pad); err != nil {
		t.Fatal(err)
	}
	back := make([]float32, c*h*w)
	if err := Col2im(back, g, c, h, w, k, stride, pad); err != nil {
		t.Fatal(err)
	}
	var lhs, rhs float64
	for i := range cols {
		lhs += float64(cols[i]) * float64(g[i])
	}
	for i := range x {
		rhs += float64(x[i]) * float64(back[i])
	}
	if math.Abs(lhs-rhs) > 1e-2*math.Max(1, math.Abs(lhs)) {
		t.Fatalf("adjoint identity violated: %v != %v", lhs, rhs)
	}
}

func TestGrowSlice(t *testing.T) {
	buf := make([]float32, 10, 20)
	got := GrowSlice(buf, 15)
	if &got[0] != &buf[0] || len(got) != 15 {
		t.Error("GrowSlice should re-slice within capacity")
	}
	got2 := GrowSlice(buf, 30)
	if len(got2) != 30 {
		t.Error("GrowSlice should allocate beyond capacity")
	}
}
